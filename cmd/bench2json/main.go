// Command bench2json converts `go test -bench` text output into a
// stable JSON document, so each PR can record one benchmark trajectory
// point (BENCH_pipeline.json) that later tooling can diff without
// re-parsing the bench text format.
//
//	go test -run '^$' -bench '^BenchmarkSeedIndexBuild$' . | bench2json -o BENCH_pipeline.json
//
// It reads the bench output on stdin, keeps the environment header
// lines (goos/goarch/cpu/pkg), and parses every benchmark result line
// into name, parallelism suffix, iteration count, and the full set of
// reported metrics — the standard ns/op, B/op, allocs/op, MB/s plus
// any custom b.ReportMetric units (the pipeline reports bp/s). It
// exits non-zero if it parses no benchmark lines at all, so a broken
// bench run cannot silently write an empty trajectory point.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkSeedIndexBuild-8   	       7	 156063402 ns/op	 3203881 bp/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Schema    int       `json:"schema"`
	Generated time.Time `json:"generated"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	CPU       string    `json:"cpu,omitempty"`
	Package   string    `json:"pkg,omitempty"`
	Results   []result  `json:"results"`
}

func main() {
	out := flag.String("o", "-", "output path (- = stdout)")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	doc.Generated = time.Now().UTC().Truncate(time.Second)
	doc.GoVersion = runtime.Version()

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data) //nolint:errcheck
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench2json: wrote %d results to %s\n", len(doc.Results), *out)
}

// parse folds bench output into a document. Header lines name the
// environment; result lines become entries; everything else (log
// chatter from the benchmarks themselves, PASS/ok trailers) is
// skipped.
func parse(sc *bufio.Scanner) (*document, error) {
	doc := &document{Schema: 1, GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		default:
			if r, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin (did the bench run fail?)")
	}
	return doc, nil
}

// parseResult parses one result line. The tail after the iteration
// count is a sequence of "<value> <unit>" pairs.
func parseResult(line string) (result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return result{}, false
	}
	iters, err := strconv.ParseInt(m[3], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		r.Metrics[unit] = v
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
