package shuffle

import (
	"bytes"
	"math/rand"
	"testing"
)

func randSeq(rng *rand.Rand, n int) []byte {
	const bases = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

func TestDoubletPreservesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		seq := randSeq(rng, 200+rng.Intn(2000))
		shuf := Doublet(seq, rng)
		if len(shuf) != len(seq) {
			t.Fatalf("length changed: %d -> %d", len(seq), len(shuf))
		}
		want := DoubletCounts(seq)
		got := DoubletCounts(shuf)
		if len(want) != len(got) {
			t.Fatalf("doublet key sets differ: %d vs %d", len(want), len(got))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("doublet %s: %d vs %d", k, got[k], n)
			}
		}
	}
}

func TestDoubletPreservesEnds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seq := randSeq(rng, 500)
	shuf := Doublet(seq, rng)
	if shuf[0] != seq[0] || shuf[len(shuf)-1] != seq[len(seq)-1] {
		t.Error("Eulerian shuffle must preserve first and last symbols")
	}
}

func TestDoubletActuallyShuffles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := randSeq(rng, 5000)
	shuf := Doublet(seq, rng)
	if bytes.Equal(seq, shuf) {
		t.Error("shuffle returned the input unchanged")
	}
	// Longest common prefix should be short.
	lcp := 0
	for lcp < len(seq) && seq[lcp] == shuf[lcp] {
		lcp++
	}
	if lcp > 100 {
		t.Errorf("suspiciously long common prefix: %d", lcp)
	}
}

func TestDoubletDestroysLongMatches(t *testing.T) {
	// The FPR experiment depends on the shuffled genome having no long
	// exact matches with the original: check the longest common
	// substring via 16-mers.
	rng := rand.New(rand.NewSource(4))
	seq := randSeq(rng, 20000)
	shuf := Doublet(seq, rng)
	kmers := make(map[string]bool)
	const k = 16
	for i := 0; i+k <= len(seq); i++ {
		kmers[string(seq[i:i+k])] = true
	}
	shared := 0
	for i := 0; i+k <= len(shuf); i++ {
		if kmers[string(shuf[i:i+k])] {
			shared++
		}
	}
	// Expected shared 16-mers by chance: 20000^2/4^16 ≈ 0.1.
	if shared > 20 {
		t.Errorf("%d shared 16-mers after shuffle", shared)
	}
}

func TestDoubletHandlesN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := []byte("ACGTNNNACGTACGTNNACGT")
	shuf := Doublet(seq, rng)
	want := DoubletCounts(seq)
	got := DoubletCounts(shuf)
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("doublet %s: %d vs %d", k, got[k], n)
		}
	}
}

func TestDoubletShortInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, s := range []string{"", "A", "AC"} {
		shuf := Doublet([]byte(s), rng)
		if string(shuf) != s {
			t.Errorf("short input %q changed to %q", s, shuf)
		}
	}
}

func TestDoubletDeterministicGivenRNG(t *testing.T) {
	seq := randSeq(rand.New(rand.NewSource(7)), 1000)
	a := Doublet(seq, rand.New(rand.NewSource(42)))
	b := Doublet(seq, rand.New(rand.NewSource(42)))
	if !bytes.Equal(a, b) {
		t.Error("same RNG seed produced different shuffles")
	}
	c := Doublet(seq, rand.New(rand.NewSource(43)))
	if bytes.Equal(a, c) {
		t.Error("different RNG seeds produced identical shuffles")
	}
}
