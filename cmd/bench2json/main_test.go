package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: darwinwga
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSeedIndexBuild 	       7	 156063402 ns/op	   3203881 bp/s
BenchmarkBSWFilterTile-8         	   12000	     98213 ns/op	 1043333 cells/s	     128 B/op	       2 allocs/op
some benchmark chatter the parser must skip
BenchmarkDSoftSeeding/dense-4    	     500	   2150000 ns/op
PASS
ok  	darwinwga	12.345s
`

func TestParseSample(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Package != "darwinwga" {
		t.Fatalf("environment header lost: %+v", doc)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu header lost: %q", doc.CPU)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(doc.Results))
	}

	r0 := doc.Results[0]
	if r0.Name != "BenchmarkSeedIndexBuild" || r0.Procs != 0 || r0.Iterations != 7 {
		t.Fatalf("result 0 = %+v", r0)
	}
	if r0.NsPerOp != 156063402 {
		t.Fatalf("result 0 ns/op = %v", r0.NsPerOp)
	}
	if r0.Metrics["bp/s"] != 3203881 {
		t.Fatalf("result 0 custom metric lost: %+v", r0.Metrics)
	}

	r1 := doc.Results[1]
	if r1.Name != "BenchmarkBSWFilterTile" || r1.Procs != 8 {
		t.Fatalf("result 1 = %+v", r1)
	}
	if r1.Metrics["B/op"] != 128 || r1.Metrics["allocs/op"] != 2 || r1.Metrics["cells/s"] != 1043333 {
		t.Fatalf("result 1 metrics = %+v", r1.Metrics)
	}

	r2 := doc.Results[2]
	if r2.Name != "BenchmarkDSoftSeeding/dense" || r2.Procs != 4 {
		t.Fatalf("sub-benchmark name/procs = %+v", r2)
	}
	if r2.Metrics != nil {
		t.Fatalf("result 2 should have no extra metrics: %+v", r2.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok\n"))); err == nil {
		t.Fatal("empty bench output must be an error, not an empty trajectory point")
	}
}
