// Package align implements the dynamic-programming alignment kernels that
// Darwin-WGA builds on: the scoring model (substitution matrix with affine
// gap penalties, Table II of the paper), full Smith-Waterman with
// traceback, Banded Smith-Waterman (the gapped filter), LASTZ-style
// ungapped X-drop filtering, and a reference gapped X-drop extension.
//
// All kernels operate on ASCII sequences over {A,C,G,T,N} and use int32
// scores. Kernels that run in hot loops expose a reusable aligner object
// so per-call allocation is amortized.
package align

import (
	"fmt"

	"darwinwga/internal/genome"
)

// Scoring holds the substitution matrix and affine gap penalties.
//
// Gap convention follows the paper's equations (1)-(2): the first base of
// a gap costs GapOpen and each additional base costs GapExtend, i.e. a
// gap of length L costs GapOpen + (L-1)*GapExtend. Both are stored as
// positive costs and subtracted.
type Scoring struct {
	// Sub is indexed by base codes (genome.CodeA..CodeN).
	Sub [genome.AlphabetSize][genome.AlphabetSize]int32
	// GapOpen is the cost of the first base of a gap (positive).
	GapOpen int32
	// GapExtend is the cost of each subsequent gap base (positive).
	GapExtend int32
}

// DefaultScoring returns the paper's Table IIa parameters: the LASTZ
// default substitution matrix (match 91/100, transition -25, transversion
// -90/-100) with gap open 430 and gap extend 30. Any pairing involving N
// scores -100.
func DefaultScoring() *Scoring {
	s := &Scoring{GapOpen: 430, GapExtend: 30}
	m := [4][4]int32{
		{91, -90, -25, -100},
		{-90, 100, -100, -25},
		{-25, -100, 100, -90},
		{-100, -25, -90, 91},
	}
	for i := 0; i < genome.AlphabetSize; i++ {
		for j := 0; j < genome.AlphabetSize; j++ {
			if i < 4 && j < 4 {
				s.Sub[i][j] = m[i][j]
			} else {
				s.Sub[i][j] = -100 // N against anything
			}
		}
	}
	return s
}

// Score returns the substitution score of two ASCII bases.
func (s *Scoring) Score(a, b byte) int32 {
	ca, cb := genome.EncodeBase(a), genome.EncodeBase(b)
	if ca == 0xFF {
		ca = genome.CodeN
	}
	if cb == 0xFF {
		cb = genome.CodeN
	}
	return s.Sub[ca][cb]
}

// GapCost returns the total cost (positive) of a gap of length n.
func (s *Scoring) GapCost(n int) int32 {
	if n <= 0 {
		return 0
	}
	return s.GapOpen + int32(n-1)*s.GapExtend
}

// Validate sanity-checks the scoring model.
func (s *Scoring) Validate() error {
	if s.GapOpen < 0 || s.GapExtend < 0 {
		return fmt.Errorf("align: gap penalties must be non-negative costs (open=%d extend=%d)", s.GapOpen, s.GapExtend)
	}
	if s.GapExtend > s.GapOpen {
		return fmt.Errorf("align: gap extend (%d) exceeds gap open (%d)", s.GapExtend, s.GapOpen)
	}
	best := int32(-1)
	for i := 0; i < 4; i++ {
		if s.Sub[i][i] > best {
			best = s.Sub[i][i]
		}
	}
	if best <= 0 {
		return fmt.Errorf("align: no positive match score on the diagonal")
	}
	return nil
}

const negInf = int32(-1 << 29) // effectively -infinity, safe from overflow

// max2 and max3 are tiny helpers the DP kernels share.
func max2(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c int32) int32 { return max2(max2(a, b), c) }
