package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Flaky network transport injection. Transport wraps an
// http.RoundTripper and perturbs requests the way real networks do —
// added latency, connection resets, responses that vanish after the
// server did the work, and full partitions — but deterministically:
// rules fire on exact per-host request counts (the transport analogue
// of the Injector's visit rules) and latency runs on a Clock, so a
// ManualClock test can park a delayed request, advance time, and
// observe the release as straight-line code.
//
// The cluster coordinator threads its outbound HTTP through this seam,
// which is what makes every failover path (retry exhaustion, breaker
// trips, lease expiry under partition) testable under -race without
// real sockets misbehaving on cue.

// Errors returned by injected faults. They satisfy errors.Is against
// themselves and read like their net counterparts.
var (
	// ErrInjectedReset models a connection reset before the request
	// reached the peer: the caller cannot know whether any bytes
	// arrived.
	ErrInjectedReset = errors.New("faultinject: connection reset by peer (injected)")
	// ErrInjectedDrop models a response lost in flight: the inner
	// round trip completed (the server did the work) but the caller
	// never sees the response.
	ErrInjectedDrop = errors.New("faultinject: response dropped (injected)")
	// ErrInjectedPartition models a network partition: every request
	// to the partitioned host fails until the partition heals.
	ErrInjectedPartition = errors.New("faultinject: host partitioned (injected)")
	// ErrInjectedTruncate models a connection lost mid-response: the
	// headers arrived clean, the body cut off at an injected byte
	// offset, and the next read fails.
	ErrInjectedTruncate = errors.New("faultinject: response body truncated (injected)")
)

// TransportAction is what a TransportRule does when it fires.
type TransportAction int

const (
	// TransportLatency delays the request by Rule.Latency on the
	// transport's clock, then forwards it.
	TransportLatency TransportAction = iota
	// TransportReset fails the request with ErrInjectedReset without
	// forwarding it.
	TransportReset
	// TransportDrop forwards the request, discards the response, and
	// fails with ErrInjectedDrop — the server-side effects happened.
	TransportDrop
	// TransportTruncateBody forwards the request and returns the
	// response with clean headers but the body cut at Rule.TruncateAt
	// bytes: reads past the cut fail with ErrInjectedTruncate. This is
	// the mid-stream loss a gather plane must survive — a 200 already
	// committed, frames half-delivered.
	TransportTruncateBody
)

func (a TransportAction) String() string {
	switch a {
	case TransportLatency:
		return "latency"
	case TransportReset:
		return "reset"
	case TransportDrop:
		return "drop"
	case TransportTruncateBody:
		return "truncate-body"
	default:
		return fmt.Sprintf("TransportAction(%d)", int(a))
	}
}

// TransportRule selects the requests an action fires on. Matching is
// by request host (URL.Host); an empty Host matches every request.
// Hit fires on the Nth matching request (1-based, counted per rule);
// 0 fires on every match.
type TransportRule struct {
	Host    string
	Hit     int
	Action  TransportAction
	Latency time.Duration
	// TruncateAt is the byte offset a TransportTruncateBody rule cuts
	// the response body at.
	TruncateAt int
}

// TransportEvent records one fired rule, for test assertions.
type TransportEvent struct {
	Host   string
	Action TransportAction
}

// Transport is the flaky http.RoundTripper. The zero value is not
// usable; construct with NewTransport. Safe for concurrent use.
type Transport struct {
	inner http.RoundTripper
	clock Clock

	mu          sync.Mutex
	rules       []TransportRule
	seen        []int
	fired       []TransportEvent
	partitioned map[string]bool
}

// NewTransport wraps inner (nil = http.DefaultTransport) with the
// given fault rules on clock (nil = the wall clock). Rules are tried
// in order; the first match fires at most one action per request.
func NewTransport(inner http.RoundTripper, clock Clock, rules ...TransportRule) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if clock == nil {
		clock = RealClock()
	}
	return &Transport{
		inner:       inner,
		clock:       clock,
		rules:       rules,
		seen:        make([]int, len(rules)),
		partitioned: make(map[string]bool),
	}
}

// AddRule appends a fault rule at runtime, with a fresh hit counter.
// Lets a test break a host whose address is only known mid-scenario.
func (t *Transport) AddRule(r TransportRule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, r)
	t.seen = append(t.seen, 0)
}

// Partition cuts host off: every subsequent request to it fails with
// ErrInjectedPartition until Heal. Partitions are dynamic state, not
// counted rules, because a partition's defining property is that it
// persists for a span of (test-controlled) time.
func (t *Transport) Partition(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned[host] = true
}

// Heal reconnects a partitioned host.
func (t *Transport) Heal(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.partitioned, host)
}

// Partitioned reports whether host is currently cut off.
func (t *Transport) Partitioned(host string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partitioned[host]
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	var act *TransportRule
	t.mu.Lock()
	if t.partitioned[host] {
		t.fired = append(t.fired, TransportEvent{Host: host, Action: TransportReset})
		t.mu.Unlock()
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL, ErrInjectedPartition)
	}
	for i := range t.rules {
		r := &t.rules[i]
		if r.Host != "" && r.Host != host {
			continue
		}
		t.seen[i]++
		if r.Hit == 0 || t.seen[i] == r.Hit {
			t.fired = append(t.fired, TransportEvent{Host: host, Action: r.Action})
			act = r
			break
		}
	}
	t.mu.Unlock()
	if act == nil {
		return t.inner.RoundTrip(req)
	}
	switch act.Action {
	case TransportReset:
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL, ErrInjectedReset)
	case TransportDrop:
		resp, err := t.inner.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain
			resp.Body.Close()              //nolint:errcheck
		}
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL, ErrInjectedDrop)
	case TransportTruncateBody:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remain: act.TruncateAt}
		return resp, nil
	default: // TransportLatency
		t.clock.Sleep(act.Latency)
		return t.inner.RoundTrip(req)
	}
}

// truncatedBody delivers the first remain bytes of the wrapped body,
// then fails every read with ErrInjectedTruncate — the stream-level
// view of a connection cut mid-transfer.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("read past injected cut: %w", ErrInjectedTruncate)
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Fired returns a copy of the events fired so far (partition
// rejections record as resets against the partitioned host).
func (t *Transport) Fired() []TransportEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TransportEvent(nil), t.fired...)
}

// FiredCount returns the number of fired events.
func (t *Transport) FiredCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.fired)
}
