package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"darwinwga/internal/core"
	"darwinwga/internal/genome"
	"darwinwga/internal/obs"
)

// submitRequest is the POST /v1/jobs body. Exactly one of QueryFASTA
// (inline FASTA text) and QueryPath (server-local file) must be set.
type submitRequest struct {
	Target     string `json:"target"`
	QueryFASTA string `json:"query_fasta,omitempty"`
	QueryPath  string `json:"query_path,omitempty"`
	QueryName  string `json:"query_name,omitempty"`
	Client     string `json:"client,omitempty"`

	Ungapped          bool  `json:"ungapped,omitempty"`
	ForwardOnly       bool  `json:"forward_only,omitempty"`
	Hf                int32 `json:"hf,omitempty"`
	He                int32 `json:"he,omitempty"`
	MaxCandidates     int64 `json:"max_candidates,omitempty"`
	MaxFilterTiles    int64 `json:"max_filter_tiles,omitempty"`
	MaxExtensionCells int64 `json:"max_extension_cells,omitempty"`
	DeadlineMS        int64 `json:"deadline_ms,omitempty"`
	// JournalShip is set by a dispatching coordinator: the artifact-store
	// URL this job's pipeline-journal segments ship to (and resume from).
	JournalShip string `json:"journal_ship,omitempty"`
	// TraceID carries the distributed trace id; the X-Darwinwga-Trace
	// header carries the same value and wins when both are set.
	TraceID string `json:"trace_id,omitempty"`
}

// jobStatus is the GET /v1/jobs/{id} response.
type jobStatus struct {
	ID        string     `json:"id"`
	Target    string     `json:"target"`
	QueryName string     `json:"query_name,omitempty"`
	Client    string     `json:"client,omitempty"`
	State     JobState   `json:"state"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	HSPs      int64      `json:"hsps"`
	MAFBytes  int        `json:"maf_bytes"`
	Attempts  int        `json:"attempts,omitempty"`
	// Cached is true when the job's MAF was served from the result
	// cache (no pipeline run).
	Cached    bool           `json:"cached,omitempty"`
	Truncated string         `json:"truncated,omitempty"`
	Error     string         `json:"error,omitempty"`
	Workload  *core.Workload `json:"workload,omitempty"`
	// Replayed is the slice of Workload that was restored from a
	// checkpoint journal rather than recomputed — nonzero exactly when
	// the job resumed (in place or from shipped segments after a
	// failover). Workload − Replayed is what this run actually computed.
	Replayed *core.Workload `json:"replayed,omitempty"`
	Stats    *jobStats      `json:"stats,omitempty"`
	// TraceID is the job's distributed trace id; its spans are at
	// TraceURL and its lifecycle events at EventsURL.
	TraceID   string `json:"trace_id,omitempty"`
	StatusURL string `json:"status_url"`
	MAFURL    string `json:"maf_url"`
	TraceURL  string `json:"trace_url"`
	EventsURL string `json:"events_url"`
}

// jobStats is the per-job telemetry block: queue/run wall-clock and the
// per-stage workload snapshot accumulated by the job's obs.Aggregate.
// For a running job it reflects progress so far.
type jobStats struct {
	QueueWaitMS int64                 `json:"queue_wait_ms"`
	RunMS       int64                 `json:"run_ms"`
	Stages      obs.AggregateSnapshot `json:"stages"`
}

// targetInfo is one entry of GET /v1/targets. The lifecycle fields
// (fingerprint, resident, serialized_index) let operators see index
// cache state directly, without scraping /metrics.
type targetInfo struct {
	Name  string `json:"name"`
	Seqs  int    `json:"seqs"`
	Bases int    `json:"bases"`
	// IndexBytes is the index footprint from its most recent load,
	// reported even while evicted (it is the cost of the next reload).
	IndexBytes int `json:"index_bytes"`
	// IndexMemoryBytes mirrors IndexBytes under the name the index
	// lifecycle docs use.
	IndexMemoryBytes int    `json:"indexMemoryBytes"`
	Fingerprint      string `json:"fingerprint"`
	// Resident is true while the index is in memory, false after LRU
	// eviction (the next job against the target reloads it).
	Resident bool `json:"resident"`
	// SerializedIndex is true when the target is backed by an on-disk
	// index file, so reloads are file loads rather than rebuilds.
	SerializedIndex bool      `json:"serialized_index"`
	RegisteredAt    time.Time `json:"registered_at"`
}

// targetInfoOf snapshots one registry target for JSON.
func targetInfoOf(t *Target) targetInfo {
	ib := t.IndexBytes()
	return targetInfo{
		Name:             t.Name,
		Seqs:             t.NumSeqs,
		Bases:            len(t.Bases),
		IndexBytes:       ib,
		IndexMemoryBytes: ib,
		Fingerprint:      t.Fingerprint,
		Resident:         t.Resident(),
		SerializedIndex:  t.SerializedIndex(),
		RegisteredAt:     t.RegisteredAt,
	}
}

// registerRequest is the POST /v1/targets body. Exactly one of FASTA
// (inline) and Path (server-local file) must be set.
type registerRequest struct {
	Name  string `json:"name"`
	FASTA string `json:"fasta,omitempty"`
	Path  string `json:"path,omitempty"`
}

// handler builds the v1 route table.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/shards", s.handleShard)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/maf", s.handleMAF)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/targets", s.handleTargets)
	mux.HandleFunc("POST /v1/targets", s.handleRegister)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /varz", s.handleVarz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON writes v as a JSON response with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfterSecs derives the Retry-After hint from observed load: the
// p90 of the queue-wait histogram, rounded up to whole seconds and
// clamped to [1s, 10m]. Before any job has waited (empty histogram)
// it falls back to the configured constant — so the hint tracks how
// long rejected clients would actually have queued, instead of a
// number picked at deploy time.
func (s *Server) retryAfterSecs() int {
	if p90 := s.jobs.queueWait.Quantile(0.90); p90 > 0 {
		secs := int(math.Ceil(p90))
		if secs < 1 {
			secs = 1
		}
		if secs > 600 {
			secs = 600
		}
		return secs
	}
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeBusy answers an admission rejection: 429 with Retry-After.
func (s *Server) writeBusy(w http.ResponseWriter, why string) {
	secs := s.retryAfterSecs()
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":            why,
		"retry_after_secs": secs,
	})
}

// clientID identifies the submitter for per-client admission control:
// the request's explicit client field, else the X-Client-ID header,
// else the remote host.
func clientID(r *http.Request, explicit string) string {
	if explicit != "" {
		return explicit
	}
	if h := r.Header.Get("X-Client-ID"); h != "" {
		return h
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// bodyLimit bounds a request body holding FASTA for at most maxBases
// bases: headers, newlines, and slack are a small multiple on top.
func (s *Server) bodyLimit() int64 {
	return int64(s.cfg.MaxQueryBases) + int64(s.cfg.MaxQueryBases)/8 + 1<<20
}

// parseQuery loads the job's query assembly from an inline FASTA
// payload or a server-local path.
func parseQuery(req *submitRequest) (*genome.Assembly, error) {
	switch {
	case req.QueryFASTA != "" && req.QueryPath != "":
		return nil, fmt.Errorf("set exactly one of query_fasta and query_path")
	case req.QueryFASTA != "":
		seqs, err := genome.ReadFASTA(strings.NewReader(req.QueryFASTA))
		if err != nil {
			return nil, err
		}
		name := req.QueryName
		if name == "" {
			name = "query"
		}
		return &genome.Assembly{Name: name, Seqs: seqs}, nil
	case req.QueryPath != "":
		asm, err := genome.ReadFASTAFile(req.QueryPath)
		if err != nil {
			return nil, err
		}
		if req.QueryName != "" {
			asm.Name = req.QueryName
		}
		return asm, nil
	default:
		return nil, fmt.Errorf("set one of query_fasta and query_path")
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit())
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.jobs.RejectedOversize.Inc()
			s.log.Warn("job rejected", "reason", "oversize_body", "limit_bytes", tooBig.Limit)
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, "missing target")
		return
	}
	if req.DeadlineMS < 0 {
		writeError(w, http.StatusBadRequest, "negative deadline_ms")
		return
	}
	query, err := parseQuery(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	if n := query.TotalLen(); n > s.cfg.MaxQueryBases {
		s.jobs.RejectedOversize.Inc()
		s.log.Warn("job rejected", "reason", "oversize_query", "query_bases", n)
		writeError(w, http.StatusRequestEntityTooLarge,
			"query is %d bases; this server accepts at most %d", n, s.cfg.MaxQueryBases)
		return
	}
	params := JobParams{
		Target:             req.Target,
		Ungapped:           req.Ungapped,
		ForwardOnly:        req.ForwardOnly,
		FilterThreshold:    req.Hf,
		ExtensionThreshold: req.He,
		MaxCandidates:      req.MaxCandidates,
		MaxFilterTiles:     req.MaxFilterTiles,
		MaxExtensionCells:  req.MaxExtensionCells,
		Deadline:           time.Duration(req.DeadlineMS) * time.Millisecond,
		JournalShip:        req.JournalShip,
		TraceID:            req.TraceID,
	}
	if h := r.Header.Get(TraceHeader); h != "" {
		params.TraceID = h
	}
	job, err := s.jobs.Submit(params, query, clientID(r, req.Client))
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, s.statusOf(job))
	case errors.Is(err, ErrUnknownTarget):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrQueueFull):
		s.writeBusy(w, "submission queue is full")
	case errors.Is(err, ErrClientBusy):
		s.writeBusy(w, "per-client in-flight limit reached")
	case errors.Is(err, ErrMemoryPressure):
		s.writeBusy(w, "server memory high-watermark reached")
	case errors.Is(err, ErrJobTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge,
			"query alone would exceed the server's memory high-watermark")
	case errors.Is(err, ErrBreakerOpen):
		var bo *breakerOpenError
		secs := s.retryAfterSecs()
		if errors.As(err, &bo) {
			if c := int(math.Ceil(bo.retryAfter.Seconds())); c >= 1 {
				secs = c
			}
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// statusOf snapshots one job for JSON.
func (s *Server) statusOf(j *Job) jobStatus {
	j.mu.Lock()
	sp, agg := j.spool, j.agg
	st := jobStatus{
		ID:        j.ID,
		Target:    j.Params.Target,
		QueryName: j.QueryName,
		Client:    j.Client,
		State:     j.state,
		Created:   j.created,
		Cached:    j.cached,
		Truncated: string(j.truncated),
		Error:     j.errMsg,
		TraceID:   j.Params.TraceID,
		StatusURL: "/v1/jobs/" + j.ID,
		MAFURL:    "/v1/jobs/" + j.ID + "/maf",
		TraceURL:  "/v1/jobs/" + j.ID + "/trace",
		EventsURL: "/v1/jobs/" + j.ID + "/events",
	}
	st.Attempts = j.attempt
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state.terminal() {
		wl := j.workload
		st.Workload = &wl
		if j.replayed != (core.Workload{}) {
			rp := j.replayed
			st.Replayed = &rp
		}
	}
	if !j.started.IsZero() {
		stats := &jobStats{
			QueueWaitMS: j.started.Sub(j.created).Milliseconds(),
			Stages:      agg.Snapshot(),
		}
		// A still-running job reports its run time so far.
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		stats.RunMS = end.Sub(j.started).Milliseconds()
		st.Stats = stats
	}
	j.mu.Unlock()
	st.HSPs = j.hsps.Load()
	st.MAFBytes = sp.size()
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	state, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": state})
}

// handleMAF chunk-streams a job's MAF: bytes are flushed to the client
// as the pipeline emits alignment blocks, and the response ends when
// the job reaches a terminal state. A completed job replays its full
// stream; the bytes are identical to a one-shot CLI run with the same
// parameters.
func (s *Server) handleMAF(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Job-ID", j.ID)
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// Pin the attempt's spool: if the watchdog swaps in a fresh one for
	// a retry, this reader drains the sealed old stream (a valid MAF
	// prefix without a trailer) and ends; re-requesting the URL streams
	// the new attempt.
	sp := j.spoolRef()
	off := 0
	for {
		chunk, done, wait := sp.view(off)
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			rc.Flush() //nolint:errcheck // best-effort chunk delivery
			off += len(chunk)
			continue
		}
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobTrace serves the job's collected pipeline spans. The default
// response is the incremental obs.TraceExport envelope — ?after=N
// returns only events past the cursor, which is how a coordinator polls
// span deltas while the job runs (and keeps them if this worker dies).
// ?format=chrome renders the buffer as a standalone Chrome trace
// instead, loadable directly in Perfetto.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if j.tracer == nil {
		// Tracing disabled (or a pre-tracing job shell): an empty export
		// still identifies the job, so pollers need no special case.
		writeJSON(w, http.StatusOK, obs.TraceExport{
			TraceID: j.Params.TraceID, JobID: j.ID, Events: []obs.Event{},
		})
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		j.tracer.Write(w) //nolint:errcheck // response already committed
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad after cursor %q", v)
			return
		}
		after = n
	}
	ex := j.tracer.Export(after)
	if ex.Events == nil {
		ex.Events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, ex)
}

// handleJobEvents serves the job's flight-recorder ring: the structured
// lifecycle log (admitted, started, stall retries, failover restores,
// breaker trips, ...) that explains what happened to a job without
// grepping server logs. Total counts events ever recorded, so a reader
// can tell when the bounded ring has shed history.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	evs := j.flight.Events()
	if evs == nil {
		evs = []obs.FlightEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job_id":   j.ID,
		"trace_id": j.Params.TraceID,
		"total":    j.flight.Total(),
		"events":   evs,
	})
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	list := s.reg.List()
	out := make([]targetInfo, len(list))
	for i, t := range list {
		out[i] = targetInfoOf(t)
	}
	writeJSON(w, http.StatusOK, map[string]any{"targets": out})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit())
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "missing name")
		return
	}
	var asm *genome.Assembly
	switch {
	case req.FASTA != "" && req.Path != "":
		writeError(w, http.StatusBadRequest, "set exactly one of fasta and path")
		return
	case req.FASTA != "":
		seqs, err := genome.ReadFASTA(strings.NewReader(req.FASTA))
		if err != nil {
			writeError(w, http.StatusBadRequest, "fasta: %v", err)
			return
		}
		asm = &genome.Assembly{Name: req.Name, Seqs: seqs}
	case req.Path != "":
		var err error
		if asm, err = genome.ReadFASTAFile(req.Path); err != nil {
			writeError(w, http.StatusBadRequest, "path: %v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "set one of fasta and path")
		return
	}
	t, err := s.reg.Register(req.Name, asm, s.cfg.Pipeline)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already registered") {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	s.jobs.TargetRegistered(t.Name)
	writeJSON(w, http.StatusCreated, targetInfoOf(t))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports serving readiness, including per-target circuit
// breaker states. The server goes unready (503) when draining, when no
// targets are registered, or when every registered target's breaker is
// open — a partially broken server (some targets open) stays ready and
// lists the broken targets in the body.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	targets := s.reg.List()
	breakers := s.jobs.brk.states()
	openTargets := 0
	for _, t := range targets {
		if s.jobs.brk.openFor(t.Name) {
			openTargets++
		}
	}
	body := map[string]any{
		"draining": s.jobs.Draining(),
		"targets":  len(targets),
	}
	if len(breakers) > 0 {
		body["breakers"] = breakers
	}
	var reason string
	switch {
	case s.jobs.Draining():
		reason = "draining"
	case len(targets) == 0:
		reason = "no targets registered"
	case openTargets == len(targets):
		reason = "all targets' circuit breakers are open"
	}
	if reason != "" {
		body["ready"] = false
		body["reason"] = reason
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["ready"] = true
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the server's registry in the Prometheus text
// exposition format. Every counter /varz reports — plus the per-stage
// pipeline histograms — comes from the same registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w) //nolint:errcheck // response already committed
}

// handleVarz is the deprecated predecessor of GET /metrics, kept so
// existing probes don't break. The legacy keys are served unchanged —
// read from the same registry-backed counters /metrics exposes — and
// the full expvar-style JSON view of the registry rides along under
// "metrics".
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	states := map[JobState]int{}
	s.jobs.mu.Lock()
	for _, j := range s.jobs.jobs {
		states[j.State()]++
	}
	s.jobs.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"deprecated":  "use /metrics",
		"uptime_ms":   time.Since(s.started).Milliseconds(),
		"draining":    s.jobs.Draining(),
		"queue_depth": s.jobs.QueueDepth(),
		"queue_cap":   cap(s.jobs.queue),
		"running":     int64(s.jobs.Running.Value()),
		"jobs":        states,
		"targets":     s.reg.Len(),
		"counters": map[string]int64{
			"accepted":              s.jobs.Accepted.Value(),
			"rejected_queue_full":   s.jobs.RejectedQueueFull.Value(),
			"rejected_client_limit": s.jobs.RejectedClientLimit.Value(),
			"rejected_oversize":     s.jobs.RejectedOversize.Value(),
			"rejected_draining":     s.jobs.RejectedDraining.Value(),
			"rejected_memory":       s.jobs.RejectedMemory.Value(),
			"rejected_breaker_open": s.jobs.RejectedBreaker.Value(),
			"completed":             s.jobs.Completed.Value(),
			"failed":                s.jobs.Failed.Value(),
			"cancelled":             s.jobs.Cancelled.Value(),
			"hsps_streamed":         s.jobs.HSPsStreamed.Value(),
			"stalled":               s.jobs.Stalled.Value(),
			"retried":               s.jobs.Retried.Value(),
			"recovered":             s.jobs.Recovered.Value(),
		},
		"metrics": json.RawMessage(s.metrics.String()),
	})
}
