package core

import "fmt"

// Stage names used by StageError and the fault-injection hook
// (Config.FaultHook). They correspond to the three pipeline stages of
// Figure 4.
const (
	StageSeeding   = "seeding"
	StageFilter    = "filter"
	StageExtension = "extension"
)

// StageError reports a contained failure (a recovered panic) in one
// shard of one pipeline stage. A StageError fails the Align call that
// produced it, not the process: worker panics never escape the pipeline.
type StageError struct {
	// Stage is one of StageSeeding, StageFilter, StageExtension.
	Stage string
	// Shard identifies the failing unit of work: the worker shard for
	// seeding and filtering, the anchor index for extension.
	Shard int
	// Err is the recovered panic value (wrapped as an error when it was
	// not one already).
	Err error
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
}

func (e *StageError) Error() string {
	return fmt.Sprintf("core: %s stage, shard %d: %v", e.Stage, e.Shard, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// TruncationReason explains why a Result is partial. The empty string
// means the pipeline ran to completion.
type TruncationReason string

const (
	// TruncatedCancelled: the caller's context was cancelled mid-call.
	TruncatedCancelled TruncationReason = "cancelled"
	// TruncatedDeadline: Config.Deadline elapsed.
	TruncatedDeadline TruncationReason = "deadline"
	// TruncatedMaxCandidates: seeding stopped at Config.MaxCandidates.
	TruncatedMaxCandidates TruncationReason = "max-candidates"
	// TruncatedMaxFilterTiles: filtering stopped at Config.MaxFilterTiles.
	TruncatedMaxFilterTiles TruncationReason = "max-filter-tiles"
	// TruncatedMaxExtensionCells: extension stopped at
	// Config.MaxExtensionCells.
	TruncatedMaxExtensionCells TruncationReason = "max-extension-cells"
)
