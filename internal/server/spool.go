package server

import (
	"errors"
	"sync"
)

// errSpoolClosed is returned by Write after close — the job has reached
// a terminal state and its output is sealed.
var errSpoolClosed = errors.New("server: write to closed result spool")

// spool is the append-only byte buffer one job streams its MAF into.
// One writer (the job's worker goroutine) appends; any number of HTTP
// readers concurrently consume from their own offsets, waiting for more
// bytes when they catch up. The waiters are woken by closing the
// current wait channel and installing a fresh one — a broadcast that,
// unlike sync.Cond, readers can select against a request context.
//
// The spool retains the whole output for the life of the job record, so
// a reader arriving after completion replays the full stream; memory is
// reclaimed when the job manager evicts the job.
type spool struct {
	mu   sync.Mutex
	buf  []byte
	done bool
	wait chan struct{}
}

func newSpool() *spool {
	return &spool{wait: make(chan struct{})}
}

// Write appends p and wakes all waiting readers. It implements
// io.Writer so a maf.Writer can emit straight into the spool.
func (s *spool) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return 0, errSpoolClosed
	}
	s.buf = append(s.buf, p...)
	close(s.wait)
	s.wait = make(chan struct{})
	return len(p), nil
}

// close seals the spool: no further writes, and readers that drain the
// buffer see end-of-stream. Idempotent.
func (s *spool) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	close(s.wait)
}

// view returns the bytes available past off, whether the spool is
// sealed, and a channel that is closed on the next append or on close.
// The returned slice is immutable: the buffer is append-only and the
// region [off, len) is never rewritten.
func (s *spool) view(off int) (chunk []byte, done bool, wait <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < len(s.buf) {
		chunk = s.buf[off:len(s.buf):len(s.buf)]
	}
	return chunk, s.done, s.wait
}

// size returns the number of bytes spooled so far.
func (s *spool) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// contents snapshots the spooled bytes. The buffer is append-only, so
// the returned slice is immutable for its current length.
func (s *spool) contents() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf[:len(s.buf):len(s.buf)]
}
