package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"darwinwga/internal/maf"
)

// spliceMAF is a two-block document with the standard trailer; the
// offsets below carve it at every edge the failover splice can land on.
const spliceHeader = "##maf version=1 scoring=darwin-wga\n\n"
const spliceBlock1 = "a score=42\ns tgt.chr1 0 4 + 100 ACGT\ns q.chr2 2 4 - 80 AC-GT\n\n"
const spliceBlock2 = "a score=7\ns tgt.chr1 8 4 + 100 TTTT\ns q.chr2 9 4 + 80 TTTT\n\n"

var spliceDoc = spliceHeader + spliceBlock1 + spliceBlock2 + maf.Trailer + "\n"

// trickleReader returns at most a few bytes per Read so splice offsets
// land mid-chunk, mid-line, and mid-trailer rather than on Read
// boundaries.
type trickleReader struct {
	s   string
	pos int
}

func (r *trickleReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.s) {
		return 0, io.EOF
	}
	n := 3
	if n > len(r.s)-r.pos {
		n = len(r.s) - r.pos
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.s[r.pos:r.pos+n])
	r.pos += n
	return n, nil
}

// TestRelayMAFSpliceOffsets: relayMAF must resume a failover stream at
// exactly the byte offset already sent — from byte zero, at a block
// boundary, mid-block, inside the ##eof trailer, and at end-of-stream —
// because the client sees one continuous MAF across worker deaths.
func TestRelayMAFSpliceOffsets(t *testing.T) {
	doc := spliceDoc
	cases := []struct {
		name string
		skip int
	}{
		{"byte zero (fresh stream)", 0},
		{"header boundary", len(spliceHeader)},
		{"mid first block", len(spliceHeader) + 11},
		{"block boundary", len(spliceHeader) + len(spliceBlock1)},
		{"inside the ##eof trailer", len(doc) - 4},
		{"exact end of stream", len(doc)},
	}
	c := &Coordinator{} // relayMAF reads nothing from the coordinator
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			resp := &http.Response{Body: io.NopCloser(&trickleReader{s: doc})}
			sent, err := c.relayMAF(rec, http.NewResponseController(rec), resp, tc.skip)
			if err != nil {
				t.Fatalf("relayMAF: %v", err)
			}
			if sent != len(doc) {
				t.Errorf("sent = %d, want %d (total stream offset)", sent, len(doc))
			}
			if got, want := rec.Body.String(), doc[tc.skip:]; got != want {
				t.Errorf("spliced bytes = %q, want %q", got, want)
			}
		})
	}

	// A second-assignment stream that dies mid-read reports how far it
	// got so the next splice picks up from there.
	t.Run("short second stream keeps the offset", func(t *testing.T) {
		rec := httptest.NewRecorder()
		short := doc[:len(spliceHeader)+len(spliceBlock1)] // worker died before block 2
		resp := &http.Response{Body: io.NopCloser(strings.NewReader(short))}
		sent, err := c.relayMAF(rec, http.NewResponseController(rec), resp, len(spliceHeader))
		if err != nil {
			t.Fatalf("relayMAF: %v", err)
		}
		if sent != len(short) {
			t.Errorf("sent = %d, want %d", sent, len(short))
		}
		if got := rec.Body.String(); got != spliceBlock1 {
			t.Errorf("partial splice = %q, want just block 1", got)
		}
	})
}
