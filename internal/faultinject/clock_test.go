package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestManualClockAdvanceFiresDueTimers(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewManualClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}

	short := c.After(time.Second)
	long := c.After(time.Minute)
	if got := c.Timers(); got != 2 {
		t.Fatalf("Timers = %d, want 2", got)
	}

	c.Advance(time.Second)
	select {
	case at := <-short:
		if !at.Equal(start.Add(time.Second)) {
			t.Errorf("short fired at %v, want %v", at, start.Add(time.Second))
		}
	default:
		t.Fatal("short timer did not fire at its deadline")
	}
	select {
	case <-long:
		t.Fatal("long timer fired early")
	default:
	}

	c.Advance(time.Minute)
	select {
	case <-long:
	default:
		t.Fatal("long timer did not fire after the clock passed it")
	}
	if got := c.Timers(); got != 0 {
		t.Errorf("Timers after firing = %d, want 0", got)
	}
}

func TestManualClockImmediateAfter(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(<0) did not fire immediately")
	}
}

// TestManualClockWaitForTimers pins the scheduler-fault contract: a
// test can block until a loop goroutine is provably parked on the
// clock, then advance — no sleeps, no races.
func TestManualClockWaitForTimers(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	var wg sync.WaitGroup
	woke := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Sleep(5 * time.Second)
		close(woke)
	}()

	c.WaitForTimers(1)
	select {
	case <-woke:
		t.Fatal("sleeper woke before the clock advanced")
	default:
	}
	c.Advance(5 * time.Second)
	wg.Wait()
	select {
	case <-woke:
	default:
		t.Fatal("sleeper did not wake after Advance")
	}
}

func TestRealClockBasics(t *testing.T) {
	c := RealClock()
	if c.Now().IsZero() {
		t.Error("RealClock Now is zero")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("RealClock.After never fired")
	}
	c.Sleep(time.Millisecond)
}
