package experiments

import (
	"fmt"

	"darwinwga/internal/align"
	"darwinwga/internal/chain"
	"darwinwga/internal/evolve"
	"darwinwga/internal/ortho"
	"darwinwga/internal/stats"
)

// Table3Row is the structured result for one species pair.
type Table3Row struct {
	Pair string
	// Top-10 chain score improvement of Darwin-WGA over LASTZ (%).
	Top10DeltaPct float64
	// Matched base pairs in all chains.
	LASTZMatches  int
	DarwinMatches int
	MatchRatio    float64
	// Exon counts: oracle denominator and per-aligner coverage.
	TotalExons   int
	LASTZExons   int
	DarwinExons  int
	ExonDeltaPct float64
}

// Table3Data is the full sensitivity comparison.
type Table3Data struct {
	Rows []Table3Row
}

// RunTable3 computes the Table III sensitivity comparison.
func RunTable3(l *Lab) (*Table3Data, error) {
	data := &Table3Data{}
	params := ortho.DefaultParams()
	sc := align.DefaultScoring()
	for _, name := range evolve.StandardPairNames {
		dRun, err := l.Run(name, ModeDarwin)
		if err != nil {
			return nil, err
		}
		zRun, err := l.Run(name, ModeLASTZ)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Pair: name}
		dTop := chain.SumTopScores(sortedChains(dRun.Chains), 10)
		zTop := chain.SumTopScores(sortedChains(zRun.Chains), 10)
		if zTop > 0 {
			row.Top10DeltaPct = 100 * float64(dTop-zTop) / float64(zTop)
		}
		row.DarwinMatches = chain.TotalMatches(dRun.Chains)
		row.LASTZMatches = chain.TotalMatches(zRun.Chains)
		if row.LASTZMatches > 0 {
			row.MatchRatio = float64(row.DarwinMatches) / float64(row.LASTZMatches)
		}
		exons := ortho.Classify(dRun.Pair, sc, params)
		row.TotalExons = ortho.CountDetectable(exons)
		row.DarwinExons = ortho.CoveredByChains(exons, dRun.Chains, params)
		row.LASTZExons = ortho.CoveredByChains(exons, zRun.Chains, params)
		if row.LASTZExons > 0 {
			row.ExonDeltaPct = 100 * float64(row.DarwinExons-row.LASTZExons) / float64(row.LASTZExons)
		}
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

func sortedChains(chains []chain.Chain) []chain.Chain {
	out := append([]chain.Chain{}, chains...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Score > out[j-1].Score; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Table3 renders the sensitivity comparison (paper Table III).
func Table3(l *Lab) error {
	data, err := RunTable3(l)
	if err != nil {
		return err
	}
	fmt.Fprintln(l.Out(), "Table III: sensitivity comparison of Darwin-WGA and LASTZ")
	fmt.Fprintln(l.Out(), "(paper shapes: top-10 delta +0.03%..+5.73%, matched-bp ratio 1.25x..3.12x,")
	fmt.Fprintln(l.Out(), " exon delta +0.09%..+2.70%, all growing with phylogenetic distance)")
	fmt.Fprintln(l.Out())
	tbl := stats.NewTable("Species pair", "Top-10 Δ", "LASTZ bp", "Darwin-WGA bp", "Ratio",
		"Exons total", "LASTZ", "Darwin-WGA")
	for _, r := range data.Rows {
		tbl.AddRow(r.Pair,
			fmt.Sprintf("%+.2f%%", r.Top10DeltaPct),
			stats.Comma(int64(r.LASTZMatches)),
			stats.Comma(int64(r.DarwinMatches)),
			fmt.Sprintf("%.2fx", r.MatchRatio),
			stats.Comma(int64(r.TotalExons)),
			fmt.Sprintf("%s", stats.Comma(int64(r.LASTZExons))),
			fmt.Sprintf("%s (%+.2f%%)", stats.Comma(int64(r.DarwinExons)), r.ExonDeltaPct))
	}
	_, err = fmt.Fprintln(l.Out(), tbl)
	return err
}
