// Command lastz-go runs the LASTZ-equivalent software baseline: the
// same seed-filter-extend pipeline as darwin-wga but with LASTZ's
// ungapped X-drop filtering and its default thresholds. It exists so
// the baseline of every comparison in the paper is reproducible as its
// own tool (the paper runs LASTZ 1.02.00; see internal/lastz).
//
// Usage:
//
//	lastz-go -target target.fa -query query.fa [-out out.maf]
//	lastz-go -target target.fa -query query.fa -hspthresh 2200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"darwinwga"
	"darwinwga/internal/genome"
	"darwinwga/internal/lastz"
	"darwinwga/internal/stats"
)

func main() {
	var (
		targetPath = flag.String("target", "", "target genome FASTA")
		queryPath  = flag.String("query", "", "query genome FASTA")
		outPath    = flag.String("out", "", "MAF output file (default stdout)")
		hspThresh  = flag.Int("hspthresh", 3000, "ungapped filter threshold (LASTZ --hspthresh)")
		gapThresh  = flag.Int("gappedthresh", 3000, "final alignment threshold (LASTZ --gappedthresh)")
		noTrans    = flag.Bool("notransition", false, "disable the seed transition tolerance")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *targetPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "lastz-go: need -target and -query")
		os.Exit(2)
	}
	if err := run(*targetPath, *queryPath, *outPath, *hspThresh, *gapThresh, !*noTrans, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "lastz-go:", err)
		os.Exit(1)
	}
}

func run(targetPath, queryPath, outPath string, hsp, gapped int, transitions bool, workers int) error {
	target, err := genome.ReadFASTAFile(targetPath)
	if err != nil {
		return err
	}
	query, err := genome.ReadFASTAFile(queryPath)
	if err != nil {
		return err
	}
	cfg := lastz.Config(lastz.Options{
		HSPThreshold:    int32(hsp),
		GappedThreshold: int32(gapped),
		Transitions:     transitions,
		Workers:         workers,
	})
	rep, err := darwinwga.AlignAssemblies(target, query, cfg)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteMAF(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "alignments: %d HSPs in %d chains, %s matched bp\n",
		len(rep.HSPs), len(rep.Chains), stats.Comma(int64(rep.TotalMatches())))
	return nil
}
