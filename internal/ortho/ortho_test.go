package ortho

import (
	"testing"

	"darwinwga/internal/align"
	"darwinwga/internal/chain"
	"darwinwga/internal/evolve"
)

func genPair(t *testing.T, subRate float64) *evolve.Pair {
	t.Helper()
	p, err := evolve.Generate(evolve.Config{
		Name: "test", TargetName: "tgt", QueryName: "qry",
		Length: 60000, SubRate: subRate, IndelRate: 0.01,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClassifyFindsConservedExons(t *testing.T) {
	p := genPair(t, 0.10)
	exons := Classify(p, nil, DefaultParams())
	if len(exons) == 0 {
		t.Fatal("no exons classified")
	}
	total := 0
	for range p.Genes {
	}
	for _, g := range p.Genes {
		total += len(g.Exons)
	}
	if len(exons) != total {
		t.Fatalf("classified %d exons, annotation has %d", len(exons), total)
	}
	det := CountDetectable(exons)
	// At 10% divergence with exons evolving 4x slower, nearly every
	// surviving exon is detectable. Some fall in turned-over regions.
	if det < total/2 {
		t.Errorf("only %d of %d exons detectable at low divergence", det, total)
	}
	for _, e := range exons {
		if e.Detectable && e.OracleScore < DefaultParams().MinScore {
			t.Fatalf("detectable exon with score %d below threshold", e.OracleScore)
		}
	}
}

func TestDetectabilityDropsWithTurnover(t *testing.T) {
	// Exons evolve slowly (purifying selection), so per-base divergence
	// rarely deletes them from the denominator; what does is sequence
	// turnover — exons caught in fully turned-over regions lose their
	// query counterpart entirely.
	gen := func(fastFraction float64) []Exon {
		p, err := evolve.Generate(evolve.Config{
			Name: "test", TargetName: "tgt", QueryName: "qry",
			Length: 60000, SubRate: 0.15, IndelRate: 0.01,
			FastFraction: fastFraction, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return Classify(p, nil, DefaultParams())
	}
	intact := CountDetectable(gen(0.05))
	churned := CountDetectable(gen(0.65))
	if churned >= intact {
		t.Errorf("detectable exons did not drop with turnover: %d vs %d", intact, churned)
	}
}

func TestCoveredByChains(t *testing.T) {
	exons := []Exon{
		{Interval: evolve.Interval{Start: 100, End: 200}, Detectable: true},
		{Interval: evolve.Interval{Start: 500, End: 600}, Detectable: true},
		{Interval: evolve.Interval{Start: 900, End: 1000}, Detectable: false}, // not in denominator
	}
	chains := []chain.Chain{{Blocks: []*chain.Block{
		{TStart: 50, TEnd: 160, QStart: 0, QEnd: 110},     // covers 60% of exon 1
		{TStart: 590, TEnd: 1000, QStart: 200, QEnd: 610}, // covers 10% of exon 2, all of exon 3
	}}}
	got := CoveredByChains(exons, chains, DefaultParams())
	if got != 1 {
		t.Errorf("covered = %d, want 1 (exon 1 only)", got)
	}
	// Lower coverage requirement admits exon 2.
	loose := DefaultParams()
	loose.MinCoverage = 0.05
	if got := CoveredByChains(exons, chains, loose); got != 2 {
		t.Errorf("loose covered = %d, want 2", got)
	}
}

func TestCoverageCapsDoubleCounting(t *testing.T) {
	exons := []Exon{{Interval: evolve.Interval{Start: 0, End: 100}, Detectable: true}}
	// Two fully-overlapping blocks must not make coverage exceed 100%.
	chains := []chain.Chain{{Blocks: []*chain.Block{
		{TStart: 0, TEnd: 40},
		{TStart: 0, TEnd: 40},
	}}}
	if got := CoveredByChains(exons, chains, DefaultParams()); got != 0 {
		t.Errorf("double-counted overlap: covered = %d, want 0 (only 40%% covered)", got)
	}
}

func TestClassifyUnmappedExon(t *testing.T) {
	p := genPair(t, 0.10)
	// Force every map entry to Unmapped: nothing is detectable.
	for i := range p.Map.QPos {
		p.Map.QPos[i] = evolve.Unmapped
	}
	exons := Classify(p, align.DefaultScoring(), DefaultParams())
	if CountDetectable(exons) != 0 {
		t.Error("exons detectable with a fully-unmapped query")
	}
}
