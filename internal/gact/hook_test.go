package gact

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestTileHookMatchesStats checks the hook fires once per executed tile
// with the same cell counts Stats accumulates.
func TestTileHookMatchesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	target := randSeq(rng, 20000)
	query := mutate(rng, target, 0.10, 0.01)

	cfg := DefaultConfig()
	var tiles, cells int64
	cfg.TileHook = func(c int, start time.Time, dur time.Duration) {
		tiles++
		cells += int64(c)
		if start.IsZero() || dur < 0 {
			t.Errorf("hook got start %v dur %v", start, dur)
		}
	}
	e := newExtender(t, cfg)
	var st Stats
	e.Extend(target, query, 10000, 10000-approxShift(target, query, 10000), &st)
	if tiles != int64(st.Tiles) || cells != int64(st.Cells) {
		t.Errorf("hook saw %d tiles / %d cells, Stats has %d / %d",
			tiles, cells, st.Tiles, st.Cells)
	}
	if tiles == 0 {
		t.Fatal("hook never fired")
	}
}

// TestTileHookZeroAllocDelta pins the zero-alloc contract of the tile
// hot path: running the same extension with an allocation-free hook
// must cost exactly the same allocations as running with a nil hook,
// proving the instrumentation branch itself never allocates per tile.
func TestTileHookZeroAllocDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	target := randSeq(rng, 20000)
	query := mutate(rng, target, 0.10, 0.01)
	qpos := 10000 - approxShift(target, query, 10000)

	measure := func(cfg Config) float64 {
		e := newExtender(t, cfg)
		return testing.AllocsPerRun(10, func() {
			e.Extend(target, query, 10000, qpos, nil)
		})
	}
	base := measure(DefaultConfig())

	hooked := DefaultConfig()
	var n atomic.Int64
	hooked.TileHook = func(c int, start time.Time, dur time.Duration) { n.Add(1) }
	withHook := measure(hooked)

	if base != withHook {
		t.Errorf("tile hook changed allocations: nil hook %.1f allocs/op, hook %.1f", base, withHook)
	}
	if n.Load() == 0 {
		t.Fatal("hook never fired during measurement")
	}
}
