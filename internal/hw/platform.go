// Package hw models the three computing platforms of the evaluation —
// the c4.8xlarge CPU baseline, the f1.2xlarge FPGA (Xilinx Virtex
// UltraScale+), and the TSMC 40nm ASIC — and derives the paper's
// performance, cost and power comparisons (Tables IV, V and VI) from
// the systolic cycle model plus per-unit area/power constants.
package hw

import (
	"fmt"
	"time"

	"darwinwga/internal/core"
	"darwinwga/internal/systolic"
)

// Platform describes one accelerator deployment.
type Platform struct {
	Name string
	// Arrays on the device.
	BSWArrays   int
	GACTXArrays int
	// Array is the per-array configuration (NPE, clock).
	Array systolic.Array
	// PowerW is total board/chip power including DRAM (Table VI).
	PowerW float64
	// PricePerHour is the cloud price in dollars (0 if not sold hourly).
	PricePerHour float64
}

// FPGA returns the f1.2xlarge deployment of Section VI-C: 50 BSW and 2
// GACT-X arrays, 32 PEs each, at 150 MHz; 65 W; $1.65/hour.
func FPGA() Platform {
	return Platform{
		Name:         "FPGA (f1.2xlarge, Virtex UltraScale+)",
		BSWArrays:    50,
		GACTXArrays:  2,
		Array:        systolic.Array{NPE: 32, ClockHz: 150e6},
		PowerW:       65,
		PricePerHour: 1.65,
	}
}

// ASIC returns the TSMC 40nm deployment of Section VI-A: 64 BSW and 12
// GACT-X arrays, 64 PEs each, at 1 GHz; 43.34 W total.
func ASIC() Platform {
	return Platform{
		Name:        "ASIC (TSMC 40nm)",
		BSWArrays:   64,
		GACTXArrays: 12,
		Array:       systolic.Array{NPE: 64, ClockHz: 1e9},
		PowerW:      43.34,
	}
}

// CPU returns the software baseline platform (c4.8xlarge: 18 cores / 36
// threads; 215 W including DRAM; $1.59/hour).
func CPU() Platform {
	return Platform{
		Name:         "CPU (c4.8xlarge)",
		PowerW:       215,
		PricePerHour: 1.59,
	}
}

// PaperSWBSWTileRate is the measured Parasail throughput the paper uses
// for the iso-sensitive software baseline: 225K gapped-filter tiles per
// second with all 36 hardware threads busy (Section VI-C).
const PaperSWBSWTileRate = 225e3

// BSWThroughput returns gapped-filter tiles/second across all BSW
// arrays.
func (p Platform) BSWThroughput(tileSize, band int) float64 {
	return float64(p.BSWArrays) * p.Array.BSWTileRate(tileSize, band)
}

// GACTXThroughput returns extension tiles/second across all GACT-X
// arrays, given the workload's average tile shape.
func (p Platform) GACTXThroughput(avgCells, avgRows, avgTraceback int) float64 {
	c := p.Array.GACTXTileCyclesFromCells(avgCells, avgRows, avgTraceback)
	if c == 0 {
		return 0
	}
	return float64(p.GACTXArrays) * p.Array.ClockHz / float64(c)
}

// WGAEstimate is a modeled end-to-end runtime for one whole genome
// alignment on an accelerated platform.
type WGAEstimate struct {
	Platform Platform
	// SeedingSeconds is software time (D-SOFT runs on the host).
	SeedingSeconds float64
	// FilterSeconds and ExtensionSeconds are accelerator time.
	FilterSeconds    float64
	ExtensionSeconds float64
}

// TotalSeconds sums the stages. Filtering and extension overlap with
// seeding in the real system; summing is the conservative estimate the
// paper also makes.
func (e WGAEstimate) TotalSeconds() float64 {
	return e.SeedingSeconds + e.FilterSeconds + e.ExtensionSeconds
}

// Estimate models the runtime of a recorded workload on this platform.
// seedingSeconds is the measured host seeding time; tileSize/band are
// the filter parameters.
func (p Platform) Estimate(w core.Workload, seedingSeconds float64, tileSize, band int) (WGAEstimate, error) {
	if p.BSWArrays == 0 {
		return WGAEstimate{}, fmt.Errorf("hw: %s has no accelerator arrays", p.Name)
	}
	bswRate := p.BSWThroughput(tileSize, band)
	avgCells, avgRows, avgTb := avgExtensionShape(w)
	gactRate := p.GACTXThroughput(avgCells, avgRows, avgTb)
	return WGAEstimate{
		Platform:         p,
		SeedingSeconds:   seedingSeconds,
		FilterSeconds:    float64(w.FilterTiles) / bswRate,
		ExtensionSeconds: float64(w.ExtensionTiles) / gactRate,
	}, nil
}

// avgExtensionShape derives the average extension-tile shape from the
// workload counters.
func avgExtensionShape(w core.Workload) (cells, rows, traceback int) {
	if w.ExtensionTiles == 0 {
		return 1, 1, 0
	}
	cells = int(w.ExtensionCells / w.ExtensionTiles)
	// Rows per tile: cells / average row width; conservatively assume
	// the row width equals the live X-drop band, cells/rows ~ width, so
	// rows ~ sqrt is wrong for long tiles — use tile rows = cells/width
	// with width inferred at 4x NPE as a neutral default. The traceback
	// walk is about one pointer per row.
	width := 256
	rows = max(cells/width, 1)
	traceback = rows
	return cells, rows, traceback
}

// IsoSensitiveSoftwareSeconds is the runtime of software with the same
// sensitivity as Darwin-WGA: the gapped-filter workload executed on the
// CPU baseline at the Parasail tile rate, plus the measured seeding and
// extension software time (Section V-B: "This runtime is obtained using
// the number of gapped filtration tiles required in Darwin-WGA and the
// average tile throughput ... in Parasail").
func IsoSensitiveSoftwareSeconds(w core.Workload, swTileRate float64, seedingSeconds, extensionSeconds float64) float64 {
	if swTileRate <= 0 {
		swTileRate = PaperSWBSWTileRate
	}
	return float64(w.FilterTiles)/swTileRate + seedingSeconds + extensionSeconds
}

// PerfPerDollar returns the performance/$ improvement of running a job
// in accel seconds on p versus sw seconds on the CPU baseline (the
// paper's FPGA metric).
func PerfPerDollar(swSeconds float64, cpu Platform, accelSeconds float64, accel Platform) float64 {
	if accelSeconds <= 0 || accel.PricePerHour <= 0 || cpu.PricePerHour <= 0 {
		return 0
	}
	return (swSeconds * cpu.PricePerHour) / (accelSeconds * accel.PricePerHour)
}

// PerfPerWatt returns the performance/watt improvement (the ASIC
// metric).
func PerfPerWatt(swSeconds float64, cpu Platform, accelSeconds float64, accel Platform) float64 {
	if accelSeconds <= 0 || accel.PowerW <= 0 {
		return 0
	}
	return (swSeconds * cpu.PowerW) / (accelSeconds * accel.PowerW)
}

// Speedup is the plain runtime ratio.
func Speedup(baselineSeconds, accelSeconds float64) float64 {
	if accelSeconds <= 0 {
		return 0
	}
	return baselineSeconds / accelSeconds
}

// FormatDuration renders seconds in the paper's "seconds" style.
func FormatDuration(seconds float64) string {
	if seconds < 1 {
		return fmt.Sprintf("%.3fs", seconds)
	}
	return time.Duration(seconds * float64(time.Second)).Truncate(time.Second).String()
}
