GO ?= go

.PHONY: all build vet test test-race test-resume test-serve test-obs ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The robustness suite (cancellation, budgets, fault-injected panics in
# worker goroutines) is only meaningful under the race detector. -short
# skips the end-to-end experiment renders, which the race detector
# slows by an order of magnitude; the pipeline's race coverage comes
# from the internal/core robustness suite, which always runs.
test-race:
	$(GO) test -race -short -timeout 30m ./...

# Durability suite: the subprocess crash–resume e2e (SIGKILL mid
# journal write, resume, byte-compare the MAF), the journal
# truncation/corruption sweeps, and the in-process resume/retry tests.
# Not -short: the e2e re-execs the test binary as the CLI.
test-resume:
	$(GO) test -timeout 15m -run 'TestCrashResume|TestRetry' ./cmd/darwin-wga/
	$(GO) test -timeout 15m ./internal/checkpoint/
	$(GO) test -timeout 15m -run 'TestResume|TestRetry|TestFailureAggregation' ./internal/core/

# Serving suite: the in-process HTTP job-server lifecycle tests under
# the race detector (shared-aligner concurrency, admission control,
# mid-run cancellation, drain), plus the subprocess `darwin-wga serve`
# e2e — two registered targets, eight concurrent jobs with streamed
# MAF byte-compared against one-shot CLI runs, queue saturation into
# 429s, and a SIGTERM drain. Not -short: the e2e re-execs the test
# binary as the server.
test-serve:
	$(GO) test -race -timeout 15m ./internal/server/
	$(GO) test -timeout 15m -run TestServeE2E ./cmd/darwin-wga/

# Observability suite: the metrics registry / tracer unit tests under
# the race detector, the trace-vs-Workload exactness and zero-alloc
# recorder guards, the /metrics + /varz + pprof HTTP tests, and the
# subprocess `serve -pprof -log-format json` e2e that scrapes /metrics
# and /debug/pprof/heap. Not -short: the e2e re-execs the test binary
# as the server.
test-obs:
	$(GO) test -race -timeout 10m ./internal/obs/
	$(GO) test -timeout 15m -run 'TestTraceCoversWorkload|TestPipelineMetricsMatchWorkload|TestRecorderAllocOverheadConstant' ./internal/core/
	$(GO) test -timeout 10m -run 'TestTileHook' ./internal/gact/
	$(GO) test -timeout 15m -run 'TestMetricsEndpoint|TestJobStatsBlock|TestVarzCompatibility|TestPprofGating' ./internal/server/
	$(GO) test -timeout 15m -run 'TestTraceAndProfileFlagsE2E|TestServeObservabilityE2E' ./cmd/darwin-wga/

ci: build vet test test-race test-resume test-serve test-obs
