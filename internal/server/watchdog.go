package server

import (
	"encoding/json"
	"runtime"
	"time"

	"darwinwga/internal/faultinject"
	"darwinwga/internal/obs"
)

// The stuck-job watchdog. Every running job carries a progress stamp
// (Job.progress, nanoseconds on the manager's clock) refreshed by every
// pipeline telemetry event via progressRecorder — the same obs.Recorder
// seam that feeds /metrics, so "progress" means exactly what the
// metrics mean: seed shards, filter tiles, anchors, extension tiles. A
// healthy alignment emits these continuously; a wedged one (deadlocked
// accelerator shim, livelocked worker, pathological input) goes silent.
//
// The watchdog goroutine wakes every stallTick, and any running job
// whose stamp is older than stallWindow is declared stalled: the event
// is counted, a full goroutine stack dump goes to the log (the
// post-mortem for "what was it doing?"), and the job's context is
// cancelled. The worker running the job notices the stall flag and —
// within the retry budget — resets the job (fresh spool, fresh
// context, fresh aggregate) and runs it again after a backoff; a job
// that exhausts its retries fails, which feeds the per-target circuit
// breaker.
//
// All timing goes through faultinject.Clock, so the chaos suite drives
// stall detection with a ManualClock: park, advance, assert — no
// wall-clock sleeps.

// progressRecorder stamps the job's progress clock on every pipeline
// event. It sits on the tile hot path next to the metrics recorders,
// so each method is one clock read and one atomic store.
type progressRecorder struct {
	j     *Job
	clock faultinject.Clock
}

func (p *progressRecorder) stamp() { p.j.progress.Store(p.clock.Now().UnixNano()) }

func (p *progressRecorder) AlignBegin(int)              { p.stamp() }
func (p *progressRecorder) AlignEnd(int, time.Duration) { p.stamp() }
func (p *progressRecorder) StrandBegin(byte)            { p.stamp() }
func (p *progressRecorder) StrandEnd(byte)              { p.stamp() }
func (p *progressRecorder) StageBegin(byte, obs.Stage)  { p.stamp() }
func (p *progressRecorder) StageEnd(byte, obs.Stage)    { p.stamp() }
func (p *progressRecorder) SeedShard(byte, int, int64, int64, time.Time, time.Duration) {
	p.stamp()
}
func (p *progressRecorder) FilterTile(byte, int, bool, int64, time.Time, time.Duration) {
	p.stamp()
}
func (p *progressRecorder) AnchorBegin(byte, int)   { p.stamp() }
func (p *progressRecorder) AnchorSkipped(byte, int) { p.stamp() }
func (p *progressRecorder) AnchorEnd(byte, int, int64, int64, bool) {
	p.stamp()
}
func (p *progressRecorder) ExtensionTile(byte, int, int64, time.Time, time.Duration) {
	p.stamp()
}

// watchdog is the supervision loop; one per manager, started alongside
// the workers and stopped by Drain.
func (m *Manager) watchdog() {
	defer m.watchWG.Done()
	for {
		select {
		case <-m.drainCh:
			return
		case <-m.clock.After(m.stallTick):
		}
		m.sweepStalled()
	}
}

// sweepStalled scans running jobs for silent ones and cancels them.
func (m *Manager) sweepStalled() {
	now := m.clock.Now()
	var stuck []*Job
	m.mu.Lock()
	for _, id := range m.order {
		j := m.jobs[id]
		if j.State() != JobRunning {
			continue
		}
		if now.Sub(time.Unix(0, j.progress.Load())) >= m.stallWindow {
			stuck = append(stuck, j)
		}
	}
	m.mu.Unlock()
	for _, j := range stuck {
		// The CAS makes each stall counted and dumped once, even if the
		// sweep fires again before the worker reacts.
		if !j.stalled.CompareAndSwap(false, true) {
			continue
		}
		m.Stalled.Inc()
		m.log.Warn("job stalled: no pipeline progress, cancelling",
			"job_id", j.ID, "client", j.Client, "target", j.Params.Target,
			"stall_window", m.stallWindow,
			"last_progress", time.Unix(0, j.progress.Load()))
		m.log.Warn("stalled job stack dump", "job_id", j.ID, "stack", allStacks())
		// The flight record is the job-shaped half of the post-mortem:
		// what the lifecycle looked like before it went silent.
		m.log.Warn("stalled job flight record", "job_id", j.ID,
			"events_total", j.flight.Total(), "events", flightJSON(j.flight))
		j.cancelNow()
	}
}

// flightJSON renders a job's flight ring for the stall post-mortem log
// line (best-effort; the ring is also served at /v1/jobs/{id}/events).
func flightJSON(f *obs.FlightRecorder) string {
	b, err := json.Marshal(f.Events())
	if err != nil {
		return "[]"
	}
	return string(b)
}

// allStacks captures every goroutine's stack (bounded at 1 MiB) for
// the stall post-mortem.
func allStacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return string(buf[:n])
}
