// Package obs is the pipeline's observability layer: a stdlib-only
// metrics registry (atomic counters, gauges, and fixed-bucket
// histograms exposed in Prometheus text format and as expvar-style
// JSON), a span recorder interface the pipeline reports into at tile
// granularity, a Chrome trace_event exporter for one-shot runs, and a
// lock-free per-call aggregate for serving-layer job statistics.
//
// The paper's entire evaluation is per-stage counters — seed hits,
// filter pass rate, BSW tiles, GACT-X cells, matched bp (Tables II-V,
// Figs. 9-10) — so every stage reports the same quantities through one
// Recorder. A nil Recorder is the contract for "no telemetry": the
// instrumented hot paths are branch-guarded and add zero allocations
// (pinned by BenchmarkRecorderOverhead in internal/core).
//
// Metric names follow the convention
//
//	darwinwga_<subsystem>_<name>_<unit>
//
// with an optional fixed label set baked into the registered name, e.g.
// `darwinwga_filter_tiles_total{verdict="pass"}`.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; negative deltas are ignored (counters
// are monotonic by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop (safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets
// (cumulative in the Prometheus exposition, per-bucket internally).
// Observations are lock-free: one atomic add on the bucket, one on the
// count, and a CAS on the float sum.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the early
	// buckets are the hot ones, so this beats binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the cumulative count at each
// bound, ending with the +Inf bucket (== Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append(bounds, h.bounds...)
	bounds = append(bounds, math.Inf(1))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative = append(cumulative, cum)
	}
	return bounds, cumulative
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the observed
// distribution by linear interpolation inside the bucket the rank falls
// in — the same estimate Prometheus' histogram_quantile computes. It
// returns 0 when the histogram is empty, and the largest finite bound
// when the rank lands in the +Inf bucket. The estimate is coarse (it
// is bounded by the bucket ladder's resolution), which is fine for its
// consumers: load-shedding hints, not measurements.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the best finite statement is the last bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n upper bounds starting at start, each factor
// times the previous — the standard latency/size bucket ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad ExpBuckets(%g, %g, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is the registry's uniform view of one named series.
type metric struct {
	family string // name with the label set stripped
	labels string // `{k="v",...}` or ""
	help   string
	kind   string // "counter", "gauge", "histogram"

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// format (WritePrometheus) or as a flat JSON object (WriteJSON, the
// expvar view). Registration is idempotent per name as long as the
// kind matches; a kind conflict panics (programmer error). All value
// operations are lock-free; registration takes a mutex.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// splitName separates the metric family from an optional baked-in
// label set and validates both.
func splitName(name string) (family, labels string) {
	family, labels = name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family, labels = name[:i], name[i:]
		if !strings.HasSuffix(labels, "}") || len(labels) < 3 {
			panic(fmt.Sprintf("obs: malformed label set in metric name %q", name))
		}
	}
	if family == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(family); i++ {
		c := family[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
	return family, labels
}

// register adds (or returns) the named metric, enforcing kind
// consistency.
func (r *Registry) register(name, help, kind string) *metric {
	family, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{family: family, labels: labels, help: help, kind: kind}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, "counter")
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or fetches) a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, "gauge")
	if m.gauge == nil && m.gaugeFn == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, "gauge")
	m.gauge, m.gaugeFn = nil, fn
}

// Histogram registers (or fetches) a histogram with the given upper
// bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, "histogram")
	if m.histogram == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending: %v", name, bounds))
			}
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		m.histogram = h
	}
	return m.histogram
}

// snapshot returns the metrics sorted by (family, labels) for stable
// exposition, holding the lock only for the copy.
func (r *Registry) snapshot() []*metric {
	r.mu.RLock()
	out := make([]*metric, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.metrics[name])
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, +Inf spelled "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// bucketLabels merges a histogram's fixed label set with its le label.
func bucketLabels(fixed string, le float64) string {
	lePair := `le="` + fmtFloat(le) + `"`
	if fixed == "" {
		return "{" + lePair + "}"
	}
	return fixed[:len(fixed)-1] + "," + lePair + "}"
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), one HELP/TYPE header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.snapshot() {
		if m.family != lastFamily {
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.family, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, m.kind)
			lastFamily = m.family
		}
		switch m.kind {
		case "counter":
			fmt.Fprintf(&b, "%s%s %d\n", m.family, m.labels, m.counter.Value())
		case "gauge":
			v := 0.0
			if m.gaugeFn != nil {
				v = m.gaugeFn()
			} else {
				v = m.gauge.Value()
			}
			fmt.Fprintf(&b, "%s%s %s\n", m.family, m.labels, fmtFloat(v))
		case "histogram":
			bounds, cum := m.histogram.Buckets()
			for i, le := range bounds {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.family, bucketLabels(m.labels, le), cum[i])
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.family, m.labels, fmtFloat(m.histogram.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.family, m.labels, m.histogram.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the registry as one flat JSON object — the expvar
// view: counters and gauges map to numbers, histograms to
// {count, sum, buckets} objects keyed by upper bound.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, m := range r.snapshot() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:", m.family+m.labels)
		switch m.kind {
		case "counter":
			fmt.Fprintf(&b, "%d", m.counter.Value())
		case "gauge":
			v := 0.0
			if m.gaugeFn != nil {
				v = m.gaugeFn()
			} else {
				v = m.gauge.Value()
			}
			b.WriteString(jsonFloat(v))
		case "histogram":
			bounds, cum := m.histogram.Buckets()
			b.WriteString(`{"count":`)
			fmt.Fprintf(&b, "%d", m.histogram.Count())
			b.WriteString(`,"sum":`)
			b.WriteString(jsonFloat(m.histogram.Sum()))
			b.WriteString(`,"buckets":{`)
			for i, le := range bounds {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q:%d", fmtFloat(le), cum[i])
			}
			b.WriteString("}}")
		}
	}
	b.WriteString("}")
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the registry as JSON, implementing the expvar.Var
// interface so a Registry can be expvar.Publish'd directly.
func (r *Registry) String() string {
	var b strings.Builder
	r.WriteJSON(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}

// jsonFloat renders a float as a JSON value (JSON has no Inf/NaN; they
// degrade to 0, which only a scrape-time gauge could produce).
func jsonFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
