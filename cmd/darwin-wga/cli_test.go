package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCLIExitCodes pins the exit-code contract: 0 success, 1 runtime
// error, 2 usage error (bad flag, bad value, unknown subcommand).
func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"version subcommand", []string{"version"}, 0},
		{"version flag", []string{"-version"}, 0},
		{"unknown subcommand", []string{"frobnicate"}, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"malformed flag value", []string{"-scale", "pants"}, 2},
		{"stray positional", []string{"-forward-only", "stray"}, 2},
		{"missing inputs", nil, 1},
		{"unknown pair", []string{"-pair", "nope-nope"}, 1},
		{"negative scale", []string{"-pair", "ce11-cb4", "-scale", "-1"}, 1},
		{"serve unknown flag", []string{"serve", "-bogus"}, 2},
		{"serve malformed register", []string{"serve", "-register", "no-equals-sign"}, 2},
		{"serve stray positional", []string{"serve", "stray"}, 2},
		{"serve missing fasta", []string{"serve", "-register", "t=/does/not/exist.fa"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args); got != tc.want {
				t.Errorf("cliMain(%q) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

func TestPrintVersion(t *testing.T) {
	var buf bytes.Buffer
	printVersion(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "darwin-wga ") || !strings.Contains(out, "go1") {
		t.Errorf("version line %q is missing the name or toolchain", out)
	}
}

func TestRegisterListFlag(t *testing.T) {
	var r registerList
	if err := r.Set("dm6=/tmp/dm6.fa"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("ce11=/tmp/ce11.fa"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0].name != "dm6" || r[1].path != "/tmp/ce11.fa" {
		t.Errorf("registerList = %+v", r)
	}
	if got := r.String(); got != "dm6=/tmp/dm6.fa,ce11=/tmp/ce11.fa" {
		t.Errorf("String() = %q", got)
	}
	for _, bad := range []string{"", "noequals", "=path", "name="} {
		if err := r.Set(bad); err == nil {
			t.Errorf("Set(%q) succeeded, want error", bad)
		}
	}
}
