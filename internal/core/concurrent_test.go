package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAlignsOnSharedAligner is the concurrency-safety
// contract the serving layer builds on: one Aligner (one prebuilt
// index) driven by many goroutines at once must produce the same
// Result as a serial call, with no data races (run under -race by
// `make test-serve` and the CI race step).
func TestConcurrentAlignsOnSharedAligner(t *testing.T) {
	p := testPair(t, 18000, 0.10, 0.01)
	cfg := DefaultConfig()
	cfg.Workers = 2
	a := newAligner(t, p.Target.Seqs[0].Bases, cfg)
	query := p.Query.Seqs[0].Bases

	want, err := a.Align(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.HSPs) == 0 {
		t.Fatal("reference alignment found no HSPs; the fixture is too small")
	}

	const goroutines = 8
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = a.AlignContext(context.Background(), query)
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(results[g].HSPs, want.HSPs) {
			t.Errorf("goroutine %d: %d HSPs differing from the serial reference (%d)",
				g, len(results[g].HSPs), len(want.HSPs))
		}
	}
}

// TestWithConfigSharesIndexSafely drives differently-configured
// aligners derived from one shared index concurrently — the serving
// pattern where every job rebinds its own budgets over the registry's
// aligner — and checks the derived configurations really apply.
func TestWithConfigSharesIndexSafely(t *testing.T) {
	p := testPair(t, 18000, 0.10, 0.01)
	base := newAligner(t, p.Target.Seqs[0].Bases, DefaultConfig())
	query := p.Query.Seqs[0].Bases

	want, err := base.Align(query)
	if err != nil {
		t.Fatal(err)
	}

	variants := make([]*Aligner, 6)
	for i := range variants {
		cfg := DefaultConfig()
		if i%2 == 1 {
			cfg.BothStrands = false
		}
		cfg.Workers = 1 + i%3
		v, err := base.WithConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		variants[i] = v
	}

	results := make([]*Result, len(variants))
	errs := make([]error, len(variants))
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v *Aligner) {
			defer wg.Done()
			results[i], errs[i] = v.AlignContext(context.Background(), query)
		}(i, v)
	}
	wg.Wait()

	for i := range variants {
		if errs[i] != nil {
			t.Fatalf("variant %d: %v", i, errs[i])
		}
		if i%2 == 0 {
			// Same effective configuration as the base: identical HSPs.
			if !reflect.DeepEqual(results[i].HSPs, want.HSPs) {
				t.Errorf("variant %d: HSPs differ from the shared-index reference", i)
			}
		} else {
			// Forward-only: no minus-strand alignments may appear.
			for _, h := range results[i].HSPs {
				if h.Strand != '+' {
					t.Errorf("variant %d: minus-strand HSP under BothStrands=false", i)
					break
				}
			}
		}
	}
}

// TestWithConfigRejectsIndexShapeChanges pins the guard: the derived
// configuration may not alter the fields the shared index was built
// under.
func TestWithConfigRejectsIndexShapeChanges(t *testing.T) {
	p := testPair(t, 20000, 0.10, 0.01)
	base := newAligner(t, p.Target.Seqs[0].Bases, DefaultConfig())

	cfg := DefaultConfig()
	cfg.SeedMaxFreq = 99
	if _, err := base.WithConfig(cfg); err == nil {
		t.Error("WithConfig accepted a SeedMaxFreq change")
	}
	cfg = DefaultConfig()
	cfg.SeedPattern = "1111111111"
	if _, err := base.WithConfig(cfg); err == nil {
		t.Error("WithConfig accepted a SeedPattern change")
	}
	bad := DefaultConfig()
	bad.FilterTileSize = -1
	if _, err := base.WithConfig(bad); err == nil {
		t.Error("WithConfig accepted an invalid configuration")
	}
	// Valid rebind: per-call knobs may all change.
	ok := DefaultConfig()
	ok.Deadline = time.Minute
	ok.MaxExtensionCells = 12345
	ok.FilterThreshold = 5000
	derived, err := base.WithConfig(ok)
	if err != nil {
		t.Fatalf("valid rebind rejected: %v", err)
	}
	if derived.Config().FilterThreshold != 5000 || derived.Config().MaxExtensionCells != 12345 {
		t.Errorf("derived config not applied: %+v", derived.Config())
	}
	if derived.Target() == nil || &derived.Target()[0] != &base.Target()[0] {
		t.Error("derived aligner does not share the base target slice")
	}
}

// TestHSPHookObservesEmissionOrder verifies the streaming hook fires
// once per final HSP, in emission order, and that emission order is a
// permutation of the canonically sorted Result.HSPs.
func TestHSPHookObservesEmissionOrder(t *testing.T) {
	p := testPair(t, 18000, 0.10, 0.01)
	cfg := DefaultConfig()
	var streamed []HSP
	cfg.HSPHook = func(h HSP) { streamed = append(streamed, h) }
	a := newAligner(t, p.Target.Seqs[0].Bases, cfg)

	res, err := a.Align(p.Query.Seqs[0].Bases)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.HSPs) {
		t.Fatalf("hook saw %d HSPs, result has %d", len(streamed), len(res.HSPs))
	}
	// Same multiset: sorting the streamed copy must reproduce the
	// canonical Result.HSPs order.
	sorted := append([]HSP(nil), streamed...)
	sortHSPs(sorted)
	if !reflect.DeepEqual(sorted, res.HSPs) {
		t.Error("streamed HSPs are not a permutation of Result.HSPs")
	}
	// Emission order is deterministic: a second identical run streams
	// the same sequence.
	var second []HSP
	cfg2 := cfg
	cfg2.HSPHook = func(h HSP) { second = append(second, h) }
	a2, err := a.WithConfig(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Align(p.Query.Seqs[0].Bases); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, second) {
		t.Error("emission order is not deterministic across identical runs")
	}
}
