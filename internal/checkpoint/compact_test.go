package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCompactReplacesContents: after Compact the journal replays exactly
// the snapshot records, the old segments are gone, and appending
// continues to work.
func TestCompactReplacesContents(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for i := 0; i < 100; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("rec-%03d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	snap := []Record{
		{Kind: 9, Payload: []byte("snapshot")},
		{Kind: 1, Payload: []byte("post-snap")},
	}
	if err := j.Compact(snap); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := j.Append(1, []byte("after")); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, err := Replay(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records after compaction, want 3", len(got))
	}
	if got[0].Kind != 9 || string(got[0].Payload) != "snapshot" {
		t.Fatalf("first record = (%d, %q), want snapshot", got[0].Kind, got[0].Payload)
	}
	if string(got[2].Payload) != "after" {
		t.Fatalf("last record = %q, want post-compaction append", got[2].Payload)
	}

	segs, err := segmentFiles(dir, false)
	if err != nil {
		t.Fatalf("segmentFiles: %v", err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segments on disk after compaction, want 1: %v", len(segs), segs)
	}
}

// TestCompactBoundsReplayAcrossRestarts simulates the coordinator's
// restart loop: each cycle reopens the journal, compacts the folded
// state to a single snapshot record, and appends a session's worth of
// new records. The replayed record count must stay bounded by one
// session, not grow with history.
func TestCompactBoundsReplayAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	const perSession = 50
	for cycle := 0; cycle < 10; cycle++ {
		j, recs, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cycle %d open: %v", cycle, err)
		}
		if max := perSession + 1; len(recs) > max {
			t.Fatalf("cycle %d replayed %d records, want ≤ %d (compaction not bounding replay)", cycle, len(recs), max)
		}
		// Fold-and-snapshot on open, as the cluster journal does.
		if err := j.Compact([]Record{{Kind: 9, Payload: []byte(fmt.Sprintf("snap-%d", cycle))}}); err != nil {
			t.Fatalf("cycle %d compact: %v", cycle, err)
		}
		for i := 0; i < perSession; i++ {
			if err := j.Append(1, []byte(fmt.Sprintf("c%02d-rec-%03d", cycle, i))); err != nil {
				t.Fatalf("cycle %d append: %v", cycle, err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatalf("cycle %d close: %v", cycle, err)
		}
	}
	recs, err := Replay(dir)
	if err != nil {
		t.Fatalf("final replay: %v", err)
	}
	if want := perSession + 1; len(recs) != want {
		t.Fatalf("final replay %d records, want %d", len(recs), want)
	}
	if got := string(recs[0].Payload); got != "snap-9" {
		t.Fatalf("final snapshot payload %q, want snap-9", got)
	}
}

// TestCompactCrashWindowKeepsOldSegments: a crash after the snapshot
// segment is published but before the old segments are unlinked leaves
// both on disk; replay sees old records followed by the snapshot, which
// a fold that resets at snapshot records handles. Simulated by copying
// the pre-compaction segments back after compacting.
func TestCompactCrashWindowKeepsOldSegments(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Snapshot the old segment bytes to restore after Compact, emulating
	// a crash between publishing the snapshot and removing the old.
	segs, err := segmentFiles(dir, false)
	if err != nil {
		t.Fatalf("segmentFiles: %v", err)
	}
	saved := map[string][]byte{}
	for _, s := range segs {
		b, err := os.ReadFile(filepath.Join(dir, s))
		if err != nil {
			t.Fatalf("read %s: %v", s, err)
		}
		saved[s] = b
	}
	if err := j.Compact([]Record{{Kind: 9, Payload: []byte("snap")}}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for name, b := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatalf("restore %s: %v", name, err)
		}
	}

	recs, err := Replay(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(recs) != 11 {
		t.Fatalf("replayed %d records, want 10 old + 1 snapshot", len(recs))
	}
	// Fold-with-reset-at-snapshot recovers exactly the snapshot state.
	var after []Record
	for _, r := range recs {
		if r.Kind == 9 {
			after = after[:0]
		}
		after = append(after, r)
	}
	if len(after) != 1 || string(after[0].Payload) != "snap" {
		t.Fatalf("fold-at-snapshot left %d records, want just the snapshot", len(after))
	}

	// Reopening repairs: Open replays the same prefix and stays usable.
	j2, recs2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(recs2) != 11 {
		t.Fatalf("reopen replayed %d records, want 11", len(recs2))
	}
	if err := j2.Append(1, []byte("alive")); err != nil {
		t.Fatalf("append after crash-window reopen: %v", err)
	}
}

// TestListSegmentsAndNames covers the shipping helpers.
func TestListSegmentsAndNames(t *testing.T) {
	dir := t.TempDir()
	if segs, err := ListSegments(filepath.Join(dir, "missing")); err != nil || len(segs) != 0 {
		t.Fatalf("missing dir: segs=%v err=%v, want empty, nil", segs, err)
	}
	j, _, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := j.Append(1, make([]byte, 48)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatalf("ListSegments: %v", err)
	}
	if len(segs) < 2 {
		t.Fatalf("want rotation to produce ≥2 segments, got %v", segs)
	}
	for i, s := range segs {
		if !IsSegmentName(s.Name) {
			t.Fatalf("segment %q fails IsSegmentName", s.Name)
		}
		if s.Size <= 0 {
			t.Fatalf("segment %q has size %d", s.Name, s.Size)
		}
		if i > 0 && segs[i-1].Name >= s.Name {
			t.Fatalf("segments out of order: %v", segs)
		}
	}
	for _, bad := range []string{"", "seg-1.wal", "seg-00000001.wal.tmp", "../../etc/passwd", "seg-0000000a.wal", "x-00000001.wal"} {
		if IsSegmentName(bad) {
			t.Fatalf("IsSegmentName(%q) = true", bad)
		}
	}
}
