// Package faultinject provides deterministic fault injection for the
// pipeline's stage boundaries. An Injector matches rules against the
// (stage, shard) visits reported through core.Config.FaultHook and
// fires an action — panic, delay, or forced cancellation — on a chosen
// visit. Because rules fire on exact visit counts (or on a single
// seed-derived visit, see Seeded), failures are reproducible, which is
// what makes testing every recovery path under -race practical.
//
// The hooks it drives are compiled into internal/core but nil by
// default: production callers pay nothing.
package faultinject

import (
	"fmt"
	"sync"
	"time"
)

// Action is what a rule does when it fires.
type Action int

const (
	// Panic panics with Rule.Msg (or a descriptive default), modelling
	// a crashed worker.
	Panic Action = iota
	// Delay sleeps for Rule.Delay, modelling a stalled shard.
	Delay
	// Cancel calls Rule.Cancel (typically a context.CancelFunc),
	// modelling an external abort landing at an exact pipeline point.
	Cancel
)

func (a Action) String() string {
	switch a {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Cancel:
		return "cancel"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule selects the visits an action fires on. Zero-valued matchers are
// wildcards: an empty Stage matches every stage and Shard -1 matches
// every shard.
type Rule struct {
	// Stage matches the visit's stage name (core.StageSeeding,
	// core.StageFilter, core.StageExtension); "" matches all.
	Stage string
	// Shard matches the visit's shard index; -1 matches all.
	Shard int
	// Hit fires on the Nth matching visit (1-based); 0 fires on every
	// matching visit.
	Hit int
	// Action is what to do when the rule fires.
	Action Action
	// Delay is the sleep duration for the Delay action.
	Delay time.Duration
	// Cancel is called by the Cancel action.
	Cancel func()
	// Msg is the panic payload for the Panic action ("" selects a
	// descriptive default).
	Msg string
}

// Event records one fired rule, for test assertions.
type Event struct {
	Stage  string
	Shard  int
	Action Action
}

// Injector is a set of rules plus their visit counters. Its Hook method
// plugs into core.Config.FaultHook; it is safe for concurrent use by
// the pipeline's worker goroutines.
type Injector struct {
	mu    sync.Mutex
	rules []Rule
	seen  []int
	fired []Event
}

// New builds an injector from rules. Rules are tried in order; the
// first match fires at most one action per visit.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, seen: make([]int, len(rules))}
}

// Seeded builds a single-rule injector whose action fires on exactly
// one visit of the given stage — the visit number is derived
// deterministically from seed in [1, horizon]. Sweeping seeds places
// the same fault at different pipeline points, fuzzing the recovery
// paths without losing reproducibility.
func Seeded(seed int64, stage string, horizon int, rule Rule) *Injector {
	if horizon < 1 {
		horizon = 1
	}
	rule.Stage = stage
	rule.Shard = -1
	rule.Hit = int(splitmix64(uint64(seed))%uint64(horizon)) + 1
	return New(rule)
}

// Hook returns the function to install as core.Config.FaultHook.
func (in *Injector) Hook() func(stage string, shard int) { return in.visit }

func (in *Injector) visit(stage string, shard int) {
	var act *Rule
	in.mu.Lock()
	for i := range in.rules {
		r := &in.rules[i]
		if r.Stage != "" && r.Stage != stage {
			continue
		}
		if r.Shard >= 0 && r.Shard != shard {
			continue
		}
		in.seen[i]++
		if r.Hit == 0 || in.seen[i] == r.Hit {
			in.fired = append(in.fired, Event{Stage: stage, Shard: shard, Action: r.Action})
			act = r
			break
		}
	}
	in.mu.Unlock()
	if act == nil {
		return
	}
	switch act.Action {
	case Delay:
		time.Sleep(act.Delay)
	case Cancel:
		if act.Cancel != nil {
			act.Cancel()
		}
	case Panic:
		msg := act.Msg
		if msg == "" {
			msg = fmt.Sprintf("faultinject: injected panic at %s shard %d", stage, shard)
		}
		panic(msg)
	}
}

// Fired returns a copy of the events fired so far.
func (in *Injector) Fired() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.fired...)
}

// FiredCount returns the number of fired events.
func (in *Injector) FiredCount() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.fired)
}

// splitmix64 is a tiny, stable mixing function (Vigna's SplitMix64);
// used instead of math/rand so seed placement never shifts between Go
// releases.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
