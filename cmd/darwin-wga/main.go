// Command darwin-wga aligns a query genome against a target genome with
// the Darwin-WGA pipeline (D-SOFT seeding, gapped Banded-Smith-Waterman
// filtering, GACT-X extension) and writes MAF plus a chain summary.
//
// Usage:
//
//	darwin-wga -target target.fa -query query.fa [-out out.maf] [flags]
//	darwin-wga -pair ce11-cb4 -scale 0.004 [-out out.maf] [flags]
//
// The second form synthesizes one of the paper's evaluation species
// pairs instead of reading FASTA files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"darwinwga"
	"darwinwga/internal/stats"
)

func main() {
	var (
		targetPath = flag.String("target", "", "target genome FASTA")
		queryPath  = flag.String("query", "", "query genome FASTA")
		pairName   = flag.String("pair", "", "synthesize a standard pair instead (ce11-cb4, dm6-dp4, dm6-droYak2, dm6-droSim1)")
		scale      = flag.Float64("scale", 0.01, "genome scale for -pair (fraction of real assembly size)")
		outPath    = flag.String("out", "", "MAF output file (default stdout)")
		ungapped   = flag.Bool("ungapped", false, "use LASTZ-style ungapped filtering (baseline mode)")
		hf         = flag.Int("hf", 0, "filter threshold Hf (0 = configuration default)")
		he         = flag.Int("he", 0, "extension threshold He (0 = configuration default)")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		oneStrand  = flag.Bool("forward-only", false, "skip the reverse-complement strand")
		topChains  = flag.Int("top", 10, "number of top chains to summarize")
	)
	flag.Parse()

	if err := run(*targetPath, *queryPath, *pairName, *scale, *outPath,
		*ungapped, int32(*hf), int32(*he), *workers, *oneStrand, *topChains); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga:", err)
		os.Exit(1)
	}
}

func run(targetPath, queryPath, pairName string, scale float64, outPath string,
	ungapped bool, hf, he int32, workers int, oneStrand bool, topChains int) error {

	var target, query *darwinwga.Assembly
	switch {
	case pairName != "":
		cfg, ok := darwinwga.StandardPair(pairName, scale)
		if !ok {
			return fmt.Errorf("unknown pair %q (want one of %v)", pairName, darwinwga.StandardPairNames())
		}
		pair, err := darwinwga.GeneratePair(cfg)
		if err != nil {
			return err
		}
		target, query = pair.Target, pair.Query
		fmt.Fprintf(os.Stderr, "synthesized %s: target %s, query %s\n", pairName, target, query)
	case targetPath != "" && queryPath != "":
		var err error
		if target, err = darwinwga.ReadFASTA(targetPath); err != nil {
			return err
		}
		if query, err = darwinwga.ReadFASTA(queryPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need either -pair or both -target and -query")
	}

	cfg := darwinwga.DefaultConfig()
	if ungapped {
		cfg = darwinwga.LASTZBaselineConfig()
	}
	if hf != 0 {
		cfg.FilterThreshold = hf
	}
	if he != 0 {
		cfg.ExtensionThreshold = he
	}
	cfg.Workers = workers
	cfg.BothStrands = !oneStrand

	rep, err := darwinwga.AlignAssemblies(target, query, cfg)
	if err != nil {
		return err
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteMAF(out); err != nil {
		return err
	}

	w := rep.Workload
	fmt.Fprintf(os.Stderr, "\nfilter mode: %s\n", cfg.Filter)
	fmt.Fprintf(os.Stderr, "workload: %s seed hits, %s filter tiles, %s passed, %s extension tiles\n",
		stats.Comma(w.SeedHits), stats.Comma(w.FilterTiles), stats.Comma(w.PassedFilter), stats.Comma(w.ExtensionTiles))
	fmt.Fprintf(os.Stderr, "timings: seeding %v, filtering %v, extension %v\n",
		rep.Timings.Seeding, rep.Timings.Filtering, rep.Timings.Extension)
	fmt.Fprintf(os.Stderr, "alignments: %d HSPs in %d chains, %s matched bp\n",
		len(rep.HSPs), len(rep.Chains), stats.Comma(int64(rep.TotalMatches())))
	for i, s := range rep.TopChainScores(topChains) {
		fmt.Fprintf(os.Stderr, "chain %2d: score %s\n", i+1, stats.Comma(s))
	}
	return nil
}
