package core

import (
	"math/rand"
	"testing"

	"darwinwga/internal/align"
	"darwinwga/internal/evolve"
	"darwinwga/internal/genome"
)

func testPair(t *testing.T, length int, subRate, indelRate float64) *evolve.Pair {
	t.Helper()
	p, err := evolve.Generate(evolve.Config{
		Name: "test", TargetName: "tgt", QueryName: "qry",
		Length: length, SubRate: subRate, IndelRate: indelRate,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newAligner(t *testing.T, target []byte, cfg Config) *Aligner {
	t.Helper()
	a, err := NewAligner(target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigs(t *testing.T) {
	def := DefaultConfig()
	if err := def.Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
	lz := LASTZConfig()
	if err := lz.Validate(); err != nil {
		t.Errorf("lastz config: %v", err)
	}
	if lz.Filter != FilterUngapped || lz.FilterThreshold != 3000 {
		t.Errorf("lastz config wrong: %+v", lz)
	}
	if FilterGapped.String() != "gapped" || FilterUngapped.String() != "ungapped" {
		t.Error("FilterMode strings")
	}
	bad := DefaultConfig()
	bad.SeedPattern = "0"
	if err := bad.Validate(); err == nil {
		t.Error("bad seed pattern accepted")
	}
	bad = DefaultConfig()
	bad.FilterTileSize = 10
	if err := bad.Validate(); err == nil {
		t.Error("tile smaller than band accepted")
	}
}

func TestSelfAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	target := make([]byte, 20000)
	for i := range target {
		target[i] = "ACGT"[rng.Intn(4)]
	}
	cfg := DefaultConfig()
	cfg.BothStrands = false
	cfg.Workers = 2
	a := newAligner(t, target, cfg)
	res, err := a.Align(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HSPs) == 0 {
		t.Fatal("self alignment found nothing")
	}
	// The top HSP must cover essentially the whole sequence on the main
	// diagonal with 100% identity.
	best := res.HSPs[0]
	for _, h := range res.HSPs {
		if h.Score > best.Score {
			best = h
		}
	}
	if best.TSpan() < len(target)*95/100 {
		t.Errorf("best HSP spans %d of %d", best.TSpan(), len(target))
	}
	if best.Matches < best.TSpan()*99/100 {
		t.Errorf("matches %d over span %d", best.Matches, best.TSpan())
	}
	if res.Workload.SeedHits == 0 || res.Workload.FilterTiles == 0 || res.Workload.ExtensionTiles == 0 {
		t.Errorf("workload not recorded: %+v", res.Workload)
	}
	if res.Timings.Total() <= 0 {
		t.Error("timings not recorded")
	}
}

func TestHSPConsistency(t *testing.T) {
	p := testPair(t, 30000, 0.10, 0.01)
	cfg := DefaultConfig()
	cfg.BothStrands = true
	a := newAligner(t, p.TargetSeq(), cfg)
	res, err := a.Align(p.QuerySeq())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HSPs) == 0 {
		t.Fatal("no HSPs on 90% identical pair")
	}
	query := p.QuerySeq()
	rc := genome.ReverseComplement(query)
	for i, h := range res.HSPs {
		q := query
		if h.Strand == '-' {
			q = rc
		} else if h.Strand != '+' {
			t.Fatalf("HSP %d: bad strand %q", i, h.Strand)
		}
		if err := h.CheckConsistency(len(p.TargetSeq()), len(q)); err != nil {
			t.Fatalf("HSP %d: %v", i, err)
		}
		if got := h.Rescore(a.cfg.scoring(), p.TargetSeq(), q); got != h.Score {
			t.Fatalf("HSP %d: Rescore %d != Score %d", i, got, h.Score)
		}
		if h.Score < cfg.ExtensionThreshold {
			t.Fatalf("HSP %d: score %d below He %d", i, h.Score, cfg.ExtensionThreshold)
		}
		m, _, _ := h.Counts(p.TargetSeq(), q)
		if m != h.Matches {
			t.Fatalf("HSP %d: Matches %d != recomputed %d", i, h.Matches, m)
		}
	}
}

func TestGappedBeatsUngappedOnDistantPair(t *testing.T) {
	// The paper's central claim (Table III): on the most diverged pair,
	// gapped filtering recovers more aligned matches than ungapped
	// filtering. Uses the calibrated standard pair (ce11-cb4) whose
	// twilight-zone islands are exactly the content ungapped filtering
	// loses.
	cfg, ok := evolve.StandardPair("ce11-cb4", 0.002)
	if !ok {
		t.Fatal("missing standard pair")
	}
	p, err := evolve.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	gapped := DefaultConfig()
	gapped.BothStrands = false
	ag := newAligner(t, p.TargetSeq(), gapped)
	resG, err := ag.Align(p.QuerySeq())
	if err != nil {
		t.Fatal(err)
	}

	ungapped := LASTZConfig()
	ungapped.BothStrands = false
	au := newAligner(t, p.TargetSeq(), ungapped)
	resU, err := au.Align(p.QuerySeq())
	if err != nil {
		t.Fatal(err)
	}

	mG, mU := totalMatches(resG), totalMatches(resU)
	if mG <= mU {
		t.Errorf("gapped matches %d <= ungapped %d; expected gapped to win on the distant pair", mG, mU)
	}
	// The gapped filter must also pass more anchors than ungapped.
	if resG.Workload.PassedFilter <= resU.Workload.PassedFilter {
		t.Errorf("gapped passed %d anchors, ungapped %d", resG.Workload.PassedFilter, resU.Workload.PassedFilter)
	}
	t.Logf("gapped matches %d vs ungapped %d (%.2fx)", mG, mU, float64(mG)/float64(mU))
}

func totalMatches(res *Result) int {
	n := 0
	for _, h := range res.HSPs {
		n += h.Matches
	}
	return n
}

func TestReverseStrandDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	target := make([]byte, 20000)
	for i := range target {
		target[i] = "ACGT"[rng.Intn(4)]
	}
	// Query = reverse complement of a target slice: only '-' HSPs exist.
	query := genome.ReverseComplement(target[5000:15000])
	cfg := DefaultConfig()
	a := newAligner(t, target, cfg)
	res, err := a.Align(query)
	if err != nil {
		t.Fatal(err)
	}
	var plus, minus int
	for _, h := range res.HSPs {
		if h.Strand == '-' {
			minus++
		} else {
			plus++
		}
	}
	if minus == 0 {
		t.Error("reverse-complement query produced no minus-strand HSPs")
	}
	if plus > minus {
		t.Errorf("plus %d > minus %d on a pure-RC query", plus, minus)
	}
}

func TestAbsorptionSuppressesDuplicates(t *testing.T) {
	p := testPair(t, 15000, 0.08, 0.005)
	with := DefaultConfig()
	with.BothStrands = false
	aw := newAligner(t, p.TargetSeq(), with)
	resW, err := aw.Align(p.QuerySeq())
	if err != nil {
		t.Fatal(err)
	}
	without := with
	without.AbsorbBand = 0
	ao := newAligner(t, p.TargetSeq(), without)
	resO, err := ao.Align(p.QuerySeq())
	if err != nil {
		t.Fatal(err)
	}
	if resW.Workload.Absorbed == 0 {
		t.Error("absorption never triggered")
	}
	if resW.Workload.ExtensionTiles >= resO.Workload.ExtensionTiles {
		t.Errorf("absorption did not reduce extension work: %d vs %d",
			resW.Workload.ExtensionTiles, resO.Workload.ExtensionTiles)
	}
	// With absorption the HSP set must be duplicate-free...
	seen := map[[4]int]bool{}
	for _, h := range resW.HSPs {
		key := [4]int{h.TStart, h.TEnd, h.QStart, h.QEnd}
		if seen[key] {
			t.Errorf("duplicate HSP survived absorption: %v", key)
		}
		seen[key] = true
	}
	// ...while preserving sensitivity: the target bases covered by the
	// de-duplicated HSP set must be nearly the same as without
	// absorption. (Exact per-alignment equality does not hold — an
	// absorbed anchor can occasionally be the one whose extension would
	// have bridged further, a property real LASTZ's absorption shares.)
	coverage := func(res *Result) int {
		covered := make([]bool, 20000)
		for _, h := range res.HSPs {
			for t := h.TStart; t < h.TEnd && t < len(covered); t++ {
				covered[t] = true
			}
		}
		n := 0
		for _, c := range covered {
			if c {
				n++
			}
		}
		return n
	}
	cw, co := coverage(resW), coverage(resO)
	if cw < co*8/10 {
		t.Errorf("absorption lost coverage: %d vs %d target bases", cw, co)
	}
	distinct := map[[4]int]bool{}
	for _, h := range resO.HSPs {
		distinct[[4]int{h.TStart, h.TEnd, h.QStart, h.QEnd}] = true
	}
	if len(seen) > len(distinct) {
		t.Errorf("absorption invented alignments: %d vs %d distinct", len(seen), len(distinct))
	}
}

func TestQueryTooShort(t *testing.T) {
	target := []byte("ACGTACGTACGTACGTACGTACGTACGT")
	a := newAligner(t, target, DefaultConfig())
	if _, err := a.Align([]byte("ACGT")); err == nil {
		t.Error("query shorter than seed span accepted")
	}
}

func TestFilterThresholdControlsPassRate(t *testing.T) {
	p := testPair(t, 30000, 0.15, 0.02)
	strict := DefaultConfig()
	strict.BothStrands = false
	strict.FilterThreshold = 8000
	as := newAligner(t, p.TargetSeq(), strict)
	resS, _ := as.Align(p.QuerySeq())

	loose := strict
	loose.FilterThreshold = 2000
	al := newAligner(t, p.TargetSeq(), loose)
	resL, _ := al.Align(p.QuerySeq())

	if resS.Workload.PassedFilter >= resL.Workload.PassedFilter {
		t.Errorf("strict Hf passed %d >= loose %d", resS.Workload.PassedFilter, resL.Workload.PassedFilter)
	}
}

func TestAbsorberUnit(t *testing.T) {
	ab := newAbsorber(256)
	// Alignment over T[1000,2000) whose path wanders diagonals -150..+80.
	ab.add(1000, 2000, -150, 80)
	if !ab.covered(1500, 1600) { // diag -100, inside range
		t.Error("anchor inside footprint not absorbed")
	}
	if !ab.covered(2000, 1920) { // exactly at the exclusive end, diag 80
		t.Error("end-boundary anchor not absorbed")
	}
	if ab.covered(5000, 5100) {
		t.Error("distant anchor absorbed")
	}
	if ab.covered(1500, 5000) {
		t.Error("same target, far diagonal absorbed")
	}
	off := newAbsorber(0)
	off.add(0, 100, 0, 0)
	if off.covered(50, 50) {
		t.Error("disabled absorber absorbed")
	}
}

func TestPathDiagRange(t *testing.T) {
	ops := []align.EditOp{'M', 'I', 'I', 'M', 'D', 'D', 'D', 'M'}
	dMin, dMax := pathDiagRange(100, 100, ops)
	if dMin != -2 || dMax != 1 {
		t.Errorf("diag range = [%d,%d], want [-2,1]", dMin, dMax)
	}
}

func TestDiagBin(t *testing.T) {
	if diagBin(0, 256) != 0 || diagBin(255, 256) != 0 || diagBin(256, 256) != 1 {
		t.Error("positive diag binning")
	}
	if diagBin(-1, 256) != -1 || diagBin(-256, 256) != -1 || diagBin(-257, 256) != -2 {
		t.Errorf("negative diag binning: %d %d %d",
			diagBin(-1, 256), diagBin(-256, 256), diagBin(-257, 256))
	}
}

func TestWorkersProduceSameHSPCount(t *testing.T) {
	p := testPair(t, 20000, 0.10, 0.01)
	counts := map[int]int{}
	for _, w := range []int{1, 3} {
		cfg := DefaultConfig()
		cfg.BothStrands = false
		cfg.Workers = w
		a := newAligner(t, p.TargetSeq(), cfg)
		res, err := a.Align(p.QuerySeq())
		if err != nil {
			t.Fatal(err)
		}
		counts[w] = totalMatches(res)
	}
	if counts[1] != counts[3] {
		t.Errorf("worker count changed results: %v", counts)
	}
}
