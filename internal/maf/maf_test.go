package maf

import (
	"bytes"
	"strings"
	"testing"
)

func sampleBlock() *Block {
	return &Block{
		Score: 12345,
		TName: "tgt.chr1", TStart: 100, TSize: 8, TSrc: 1000, TText: "ACGT--ACGT",
		QName: "qry.chr1", QStart: 200, QSize: 10, QSrc: 2000, QStrand: '+', QText: "ACGTGGACGT",
	}
}

func TestBlockValidate(t *testing.T) {
	b := sampleBlock()
	if err := b.Validate(); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
	bad := sampleBlock()
	bad.TText = "ACGT"
	if err := bad.Validate(); err == nil {
		t.Error("unequal text lengths accepted")
	}
	bad = sampleBlock()
	bad.TSize = 99
	if err := bad.Validate(); err == nil {
		t.Error("wrong TSize accepted")
	}
	bad = sampleBlock()
	bad.QStrand = 'x'
	if err := bad.Validate(); err == nil {
		t.Error("bad strand accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b1 := sampleBlock()
	b2 := sampleBlock()
	b2.QStrand = '-'
	b2.Score = -5
	if err := w.Write(b1); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(b2); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "##maf") {
		t.Error("missing ##maf header")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d blocks, want 2", len(got))
	}
	if *got[0] != *b1 {
		t.Errorf("block 0 mismatch:\n got %+v\nwant %+v", got[0], b1)
	}
	if got[1].QStrand != '-' || got[1].Score != -5 {
		t.Errorf("block 1 mismatch: %+v", got[1])
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"s tgt 0 4 + 10 ACGT\n",                                                // s before a
		"a score=1\ns tgt 0 4 + 10\n",                                          // too few fields
		"a score=bogus\ns tgt 0 4 + 10 ACGT\n",                                 // bad score
		"a score=1\ns t 0 4 + 10 ACGT\ns q 0 4 + 10 ACGT\ns x 0 4 + 10 ACGT\n", // 3 s-lines
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "##maf version=1\n# comment\n\na score=10\ns t 0 4 + 10 ACGT\ns q 0 4 + 10 ACGT\n\n"
	blocks, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0].Score != 10 {
		t.Errorf("blocks = %+v", blocks)
	}
}

func TestRenderTexts(t *testing.T) {
	target := []byte("AACCGGTT")
	query := []byte("AAXCGG")
	ops := []byte{'M', 'M', 'D', 'M', 'M', 'M', 'M'}
	ttext, qtext := RenderTexts(target, query, 0, 0, ops)
	if ttext != "AACCGGT" {
		t.Errorf("ttext = %q", ttext)
	}
	if qtext != "AA-XCGG" {
		t.Errorf("qtext = %q", qtext)
	}
	// Insertions gap the target.
	ops = []byte{'M', 'I', 'M'}
	ttext, qtext = RenderTexts(target, query, 0, 0, ops)
	if ttext != "A-A" || qtext != "AAX" {
		t.Errorf("insert render = %q / %q", ttext, qtext)
	}
}

func TestCloseWritesTrailer(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleBlock()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), Trailer) {
		t.Fatalf("output does not end with the trailer:\n%s", out)
	}
	// A closed zero-block file is still a valid, complete MAF.
	buf.Reset()
	if err := NewWriter(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	blocks, complete, err := ReadVerified(&buf)
	if err != nil || !complete || len(blocks) != 0 {
		t.Fatalf("empty closed file: blocks=%d complete=%v err=%v", len(blocks), complete, err)
	}
}

func TestReadVerified(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleBlock()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	blocks, complete, err := ReadVerified(strings.NewReader(full))
	if err != nil || !complete || len(blocks) != 1 {
		t.Fatalf("complete file: blocks=%d complete=%v err=%v", len(blocks), complete, err)
	}

	// Cut before the trailer: same blocks, complete=false — and the
	// tolerant Read still accepts it.
	cut := strings.TrimSuffix(full, Trailer+"\n")
	blocks, complete, err = ReadVerified(strings.NewReader(cut))
	if err != nil || complete || len(blocks) != 1 {
		t.Fatalf("truncated file: blocks=%d complete=%v err=%v", len(blocks), complete, err)
	}
	if got, err := Read(strings.NewReader(cut)); err != nil || len(got) != 1 {
		t.Fatalf("Read must stay trailer-tolerant: %d, %v", len(got), err)
	}

	// Trailer not at the end does not count.
	swapped := cut + Trailer + "\na score=1\n"
	if _, complete, _ = ReadVerified(strings.NewReader(swapped)); complete {
		t.Error("mid-file trailer counted as completion")
	}
}
