package server

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"darwinwga/internal/faultinject"
	"darwinwga/internal/obs"
)

// breaker is the per-target circuit breaker: a target whose jobs fail
// repeatedly (including watchdog-detected stalls, which surface as
// failures once retries are exhausted) stops admitting work for a
// cooldown, then lets one probe job through. The states are the
// classic three:
//
//	closed    admitting; consecutive failures counted
//	open      rejecting until cooldown elapses
//	half-open one probe job in flight; success closes, failure reopens
//
// Cancellations are the client's doing and count as neither. Breaker
// state is visible in /readyz (per-target) and /metrics
// (darwinwga_breaker_open gauges, darwinwga_breaker_trips_total).
//
// A nil *breaker admits everything and records nothing — the disabled
// mode, threaded unconditionally like the job store.
type breaker struct {
	clock     faultinject.Clock
	threshold int
	cooldown  time.Duration
	metrics   *obs.Registry
	trips     *obs.Counter

	mu      sync.Mutex
	targets map[string]*targetBreaker
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// gaugeValue is the /metrics encoding of a state: 0 closed, 1 open,
// 0.5 half-open.
func (s breakerState) gaugeValue() float64 {
	switch s {
	case breakerOpen:
		return 1
	case breakerHalfOpen:
		return 0.5
	default:
		return 0
	}
}

type targetBreaker struct {
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // half-open: a probe job is in flight
}

// newBreaker builds a breaker; threshold <= 0 disables it (returns nil).
func newBreaker(clock faultinject.Clock, threshold int, cooldown time.Duration, metrics *obs.Registry) *breaker {
	if threshold <= 0 {
		return nil
	}
	return &breaker{
		clock:     clock,
		threshold: threshold,
		cooldown:  cooldown,
		metrics:   metrics,
		trips:     metrics.Counter("darwinwga_breaker_trips_total", "circuit breaker open transitions"),
		targets:   make(map[string]*targetBreaker),
	}
}

// forTarget returns (creating and registering a state gauge on first
// sight) the per-target state. Requires b.mu.
func (b *breaker) forTarget(target string) *targetBreaker {
	tb, ok := b.targets[target]
	if !ok {
		tb = &targetBreaker{}
		b.targets[target] = tb
		name := fmt.Sprintf(`darwinwga_breaker_open{target="%s"}`, metricLabelSafe(target))
		b.metrics.GaugeFunc(name, "circuit breaker state: 0 closed, 0.5 half-open, 1 open",
			func() float64 {
				b.mu.Lock()
				defer b.mu.Unlock()
				return b.currentLocked(tb).gaugeValue()
			})
	}
	return tb
}

// currentLocked resolves the effective state, applying the open →
// half-open transition lazily once the cooldown has elapsed. Requires
// b.mu.
func (b *breaker) currentLocked(tb *targetBreaker) breakerState {
	if tb.state == breakerOpen && b.clock.Now().Sub(tb.openedAt) >= b.cooldown {
		tb.state = breakerHalfOpen
		tb.probing = false
	}
	return tb.state
}

// allow decides admission for one job against target. ok=false comes
// with the remaining cooldown as a Retry-After hint. In half-open
// state the first allowed job is marked as the probe; callers that
// admit a job and then fail to enqueue it must releaseProbe so the
// half-open state does not wedge.
func (b *breaker) allow(target string) (retryAfter time.Duration, ok bool) {
	if b == nil {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tb := b.forTarget(target)
	switch b.currentLocked(tb) {
	case breakerOpen:
		return b.cooldown - b.clock.Now().Sub(tb.openedAt), false
	case breakerHalfOpen:
		if tb.probing {
			return b.cooldown, false // a probe is already in flight
		}
		tb.probing = true
		return 0, true
	default:
		return 0, true
	}
}

// releaseProbe undoes allow's probe claim when the admitted job never
// made it into the queue (or was cancelled before it could prove
// anything).
func (b *breaker) releaseProbe(target string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if tb, ok := b.targets[target]; ok && tb.state == breakerHalfOpen {
		tb.probing = false
	}
}

// record feeds one terminal job state back: done closes (or keeps
// closed) the breaker, failed counts toward tripping it, cancelled is
// neutral but releases a probe slot. It reports whether this exact
// outcome tripped the breaker open, so the caller can log and record
// the trip against the job that caused it.
func (b *breaker) record(target string, state JobState) (tripped bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tb := b.forTarget(target)
	cur := b.currentLocked(tb)
	switch state {
	case JobDone:
		tb.state = breakerClosed
		tb.fails = 0
		tb.probing = false
	case JobFailed:
		switch cur {
		case breakerHalfOpen:
			// The probe failed: reopen for another cooldown.
			tb.state = breakerOpen
			tb.openedAt = b.clock.Now()
			tb.probing = false
			b.trips.Inc()
			tripped = true
		case breakerClosed:
			tb.fails++
			if tb.fails >= b.threshold {
				tb.state = breakerOpen
				tb.openedAt = b.clock.Now()
				tb.fails = 0
				b.trips.Inc()
				tripped = true
			}
		}
	case JobCancelled:
		tb.probing = false
	}
	return tripped
}

// states snapshots every target's effective breaker state, for /readyz.
func (b *breaker) states() map[string]string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]string, len(b.targets))
	for name, tb := range b.targets {
		out[name] = b.currentLocked(tb).String()
	}
	return out
}

// openCount reports how many targets' breakers are fully open, for the
// heartbeat-piggybacked worker snapshot.
func (b *breaker) openCount() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, tb := range b.targets {
		if b.currentLocked(tb) == breakerOpen {
			n++
		}
	}
	return n
}

// openFor reports whether target is currently rejecting (fully open;
// half-open admits probes, so it does not count).
func (b *breaker) openFor(target string) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	tb, ok := b.targets[target]
	return ok && b.currentLocked(tb) == breakerOpen
}

// metricLabelSafe maps an arbitrary target name into the registry's
// label-value alphabet.
func metricLabelSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.', r == ':', r == '/':
			return r
		default:
			return '_'
		}
	}, s)
}
