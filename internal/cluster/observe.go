package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"darwinwga/internal/obs"
)

// Cluster-wide observability endpoints: the merged distributed trace
// (GET /v1/jobs/{id}/trace), the merged flight record
// (GET /v1/jobs/{id}/events), and the federated fleet metrics
// (GET /metrics/cluster).
//
// The trace merge is the part failover makes interesting. The
// coordinator drains each worker's span buffer incrementally while it
// watches the job (see Coordinator.watch), so by the time a worker is
// SIGKILLed its spans up to the last poll already live coordinator-side.
// The merge lays each assignment out as its own Chrome-trace process
// (pid 1, 2, …) under the one trace id, names the processes after the
// workers, and marks every assignment after the first as replayed —
// the deterministic pipeline re-executes the lost workload, and the
// trace should say so rather than present the re-run as new work.

// handleJobTrace serves the merged Chrome trace for one coordinator job.
// ?format=chrome is accepted for symmetry with the worker endpoint (the
// output is already the Chrome object form).
func (c *Coordinator) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := c.getJob(r.PathValue("id"))
	if !ok {
		cWriteError(w, http.StatusNotFound, "unknown job")
		return
	}
	// Drain the live assignment's tail first, so a fetch immediately
	// after completion does not miss the spans emitted since the last
	// watch poll. Best-effort: a dead worker just yields nothing new.
	if a, assigned := j.lastAssignment(); assigned {
		c.pollSpans(j, a, j.spanSink(a))
	}
	events := c.mergedTrace(j)
	cWriteJSON(w, http.StatusOK, map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"trace_id": j.TraceID,
			"job_id":   j.ID,
		},
	})
}

// mergedTrace flattens the job's per-assignment span buffers into one
// Chrome trace_event list: one pid per assignment, a process_name
// metadata event naming the worker, and replayed attribution on every
// event of a post-failover attempt.
func (c *Coordinator) mergedTrace(j *coordJob) []obs.Event {
	spans := j.spanSnapshot()
	out := make([]obs.Event, 0, 16)
	for i, ws := range spans {
		pid := i + 1
		name := "worker " + ws.WorkerID + " (" + ws.WorkerJobID + ")"
		if ws.Replayed {
			name += " [failover replay]"
		}
		out = append(out, obs.Event{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		if ws.Replayed {
			out = append(out, obs.Event{
				Name: "replayed", Ph: "i", Pid: pid,
				Args: map[string]any{
					"trace_id": j.TraceID,
					"job_id":   j.ID,
					"worker":   ws.WorkerID,
					"detail":   "workload re-executed after failover",
				},
			})
		}
		if ws.Dropped > 0 {
			out = append(out, obs.Event{
				Name: "spans-dropped", Ph: "i", Pid: pid,
				Args: map[string]any{"dropped": ws.Dropped, "worker": ws.WorkerID},
			})
		}
		for _, e := range ws.Events {
			e.Pid = pid
			if ws.Replayed {
				// Copy-on-write: the Args maps are shared with the stored
				// buffer, which later polls keep appending next to.
				args := make(map[string]any, len(e.Args)+1)
				for k, v := range e.Args {
					args[k] = v
				}
				args["replayed"] = true
				e.Args = args
			}
			out = append(out, e)
		}
	}
	return out
}

// handleJobEvents serves the job's merged flight record: the
// coordinator's routing-side ring plus — best-effort — the current
// worker's ring, sorted into one timeline.
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := c.getJob(r.PathValue("id"))
	if !ok {
		cWriteError(w, http.StatusNotFound, "unknown job")
		return
	}
	events := j.flight.Events()
	if a, assigned := j.lastAssignment(); assigned {
		if wev, err := c.workerEvents(j, a); err == nil {
			events = append(events, wev...)
		}
	}
	sort.SliceStable(events, func(i, k int) bool { return events[i].At.Before(events[k].At) })
	cWriteJSON(w, http.StatusOK, map[string]any{
		"job_id":   j.ID,
		"trace_id": j.TraceID,
		"total":    j.flight.Total(),
		"events":   events,
	})
}

// handleClusterMetrics serves the federated fleet view in Prometheus
// text format: per-worker series from the heartbeat-piggybacked
// snapshots, per-follower standby replication lag from the hub's
// shipping positions, and per-job checkpoint-shipping lag.
func (c *Coordinator) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.writeClusterMetrics(w)
}

// workerSeries is one per-worker gauge/counter family derived from the
// snapshot.
type workerSeries struct {
	name  string
	help  string
	typ   string
	value func(s *obs.WorkerSnapshot) float64
}

var workerSeriesTable = []workerSeries{
	{"darwinwga_cluster_worker_queue_depth", "queued jobs on the worker, from its last heartbeat snapshot", "gauge",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.QueueDepth) }},
	{"darwinwga_cluster_worker_running", "running jobs on the worker, from its last heartbeat snapshot", "gauge",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.Running) }},
	{"darwinwga_cluster_worker_breakers_open", "per-target circuit breakers open on the worker", "gauge",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.BreakersOpen) }},
	{"darwinwga_cluster_worker_index_resident_bytes", "bytes of target indexes resident on the worker", "gauge",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.IndexResidentBytes) }},
	{"darwinwga_cluster_worker_index_resident_targets", "target indexes resident on the worker", "gauge",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.IndexResidentTargets) }},
	{"darwinwga_cluster_worker_index_evictions_total", "lifetime index-cache evictions on the worker", "counter",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.IndexEvictions) }},
	{"darwinwga_cluster_worker_result_cache_hits_total", "lifetime result-cache hits on the worker", "counter",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.ResultCacheHits) }},
	{"darwinwga_cluster_worker_result_cache_misses_total", "lifetime result-cache misses on the worker", "counter",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.ResultCacheMisses) }},
	{"darwinwga_cluster_worker_result_cache_bytes", "bytes held by the worker's result cache", "gauge",
		func(s *obs.WorkerSnapshot) float64 { return float64(s.ResultCacheBytes) }},
	{"darwinwga_cluster_worker_result_cache_hit_ratio", "result-cache hits over lookups on the worker", "gauge",
		func(s *obs.WorkerSnapshot) float64 { return s.HitRatio() }},
}

func (c *Coordinator) writeClusterMetrics(w io.Writer) {
	members := c.ms.list() // sorted by ID
	now := c.cfg.Clock.Now()
	for _, fam := range workerSeriesTable {
		wrote := false
		for _, m := range members {
			if m.Snapshot == nil {
				continue
			}
			if !wrote {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
				wrote = true
			}
			fmt.Fprintf(w, "%s{worker=%q} %g\n", fam.name, clusterLabelSafe(m.ID), fam.value(m.Snapshot))
		}
	}
	// Snapshot age makes staleness visible: a worker whose series froze
	// is distinguishable from one that is genuinely idle.
	wroteAge := false
	for _, m := range members {
		if m.Snapshot == nil {
			continue
		}
		if !wroteAge {
			fmt.Fprint(w, "# HELP darwinwga_cluster_worker_snapshot_age_seconds seconds since the worker's last heartbeat snapshot\n# TYPE darwinwga_cluster_worker_snapshot_age_seconds gauge\n")
			wroteAge = true
		}
		fmt.Fprintf(w, "darwinwga_cluster_worker_snapshot_age_seconds{worker=%q} %g\n",
			clusterLabelSafe(m.ID), now.Sub(m.SnapshotAt).Seconds())
	}
	if c.hub != nil {
		lags := c.hub.followerLags()
		ids := make([]string, 0, len(lags))
		for id := range lags {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		if len(ids) > 0 {
			fmt.Fprint(w, "# HELP darwinwga_standby_replication_lag_frames journal records the standby has not yet shipped\n# TYPE darwinwga_standby_replication_lag_frames gauge\n")
			for _, id := range ids {
				fmt.Fprintf(w, "darwinwga_standby_replication_lag_frames{standby=%q} %d\n",
					clusterLabelSafe(id), lags[id].frames)
			}
			fmt.Fprint(w, "# HELP darwinwga_standby_replication_lag_bytes journal payload bytes the standby has not yet shipped\n# TYPE darwinwga_standby_replication_lag_bytes gauge\n")
			for _, id := range ids {
				fmt.Fprintf(w, "darwinwga_standby_replication_lag_bytes{standby=%q} %d\n",
					clusterLabelSafe(id), lags[id].bytes)
			}
		}
	}
	ship := c.shipLags()
	if len(ship) > 0 {
		ids := make([]string, 0, len(ship))
		for id := range ship {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprint(w, "# HELP darwinwga_cluster_job_ship_lag_seconds seconds since the job's worker last shipped a checkpoint segment\n# TYPE darwinwga_cluster_job_ship_lag_seconds gauge\n")
		for _, id := range ids {
			fmt.Fprintf(w, "darwinwga_cluster_job_ship_lag_seconds{job_id=%q} %g\n",
				clusterLabelSafe(id), ship[id].Seconds())
		}
	}
}

// clusterLabelSafe maps arbitrary ids into a conservative label-value
// alphabet (quotes and backslashes would otherwise need escaping).
func clusterLabelSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.', r == ':', r == '/':
			return r
		default:
			return '_'
		}
	}, s)
}
