package main

import (
	"io"
	"reflect"
	"testing"
)

func doc(results ...result) *document { return &document{Schema: 1, Results: results} }

func TestDiffMatchesByNameAndProcs(t *testing.T) {
	oldDoc := doc(
		result{Name: "BenchmarkA", Procs: 8, NsPerOp: 100},
		result{Name: "BenchmarkA", Procs: 4, NsPerOp: 150},
		result{Name: "BenchmarkGone", NsPerOp: 10},
	)
	newDoc := doc(
		result{Name: "BenchmarkA", Procs: 8, NsPerOp: 130},
		result{Name: "BenchmarkA", Procs: 4, NsPerOp: 75},
		result{Name: "BenchmarkNew", NsPerOp: 5},
	)
	c := diff(oldDoc, newDoc)
	if !reflect.DeepEqual(c.Added, []string{"BenchmarkNew"}) {
		t.Errorf("Added = %v", c.Added)
	}
	if !reflect.DeepEqual(c.Removed, []string{"BenchmarkGone"}) {
		t.Errorf("Removed = %v", c.Removed)
	}
	if len(c.Rows) != 2 {
		t.Fatalf("Rows = %+v, want 2 matched", c.Rows)
	}
	// Sorted worst-regression first: the -8 variant slowed 30%, the -4
	// variant halved.
	if c.Rows[0].Name != "BenchmarkA-8" || c.Rows[0].DeltaPct != 30 {
		t.Errorf("worst row = %+v, want BenchmarkA-8 at +30%%", c.Rows[0])
	}
	if c.Rows[1].Name != "BenchmarkA-4" || c.Rows[1].DeltaPct != -50 {
		t.Errorf("second row = %+v, want BenchmarkA-4 at -50%%", c.Rows[1])
	}
}

func TestDiffSameProcsDifferentBenchmarksDoNotCollide(t *testing.T) {
	oldDoc := doc(result{Name: "BenchmarkX", Procs: 8, NsPerOp: 100})
	newDoc := doc(result{Name: "BenchmarkY", Procs: 8, NsPerOp: 100})
	c := diff(oldDoc, newDoc)
	if len(c.Rows) != 0 || len(c.Added) != 1 || len(c.Removed) != 1 {
		t.Errorf("diff = %+v, want disjoint add/remove", c)
	}
}

func TestDiffZeroBaselineHasNoDelta(t *testing.T) {
	// A baseline entry without ns/op (custom-metric-only benchmark) must
	// not divide by zero; delta stays 0 and never flags.
	c := diff(doc(result{Name: "BenchmarkM"}), doc(result{Name: "BenchmarkM", NsPerOp: 50}))
	if len(c.Rows) != 1 || c.Rows[0].DeltaPct != 0 {
		t.Errorf("rows = %+v, want one row with zero delta", c.Rows)
	}
}

func TestRenderCountsRegressions(t *testing.T) {
	c := change{Rows: []deltaRow{
		{Name: "slow", OldNs: 100, NewNs: 130, DeltaPct: 30},
		{Name: "ok", OldNs: 100, NewNs: 105, DeltaPct: 5},
		{Name: "fast", OldNs: 100, NewNs: 70, DeltaPct: -30},
	}}
	if n := render(io.Discard, c, 15); n != 1 {
		t.Errorf("render flagged %d regressions, want 1 (improvements never flag)", n)
	}
}
