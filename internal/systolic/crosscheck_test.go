package systolic

import (
	"math/rand"
	"testing"

	"darwinwga/internal/align"
)

// Cross-check: replaying a real GACT-X tile's row widths through the
// stripe schedule yields a cycle count consistent with both the
// cells-based estimate and the software DP's cell count.
func TestGACTXCyclesAgainstRealTile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1920
	target := make([]byte, n)
	for i := range target {
		target[i] = "ACGT"[rng.Intn(4)]
	}
	query := make([]byte, 0, n)
	for _, b := range target { // ~10% substitutions, 1% indels
		r := rng.Float64()
		switch {
		case r < 0.005:
		case r < 0.01:
			query = append(query, "ACGT"[rng.Intn(4)], b)
		case r < 0.11:
			query = append(query, "ACGT"[rng.Intn(4)])
		default:
			query = append(query, b)
		}
	}
	xa := align.NewXDropAligner(align.DefaultScoring(), 9430)
	res := xa.Align(target, query)
	if res.Score <= 0 {
		t.Fatal("tile did not align")
	}
	widths := xa.LastRowWidths(nil)
	// Group rows into NPE-row stripes: a stripe's streamed column count
	// is the max row width within it (columns stream once per stripe).
	a := Array{NPE: 32, ClockHz: 150e6}
	var stripeWidths []int
	for i := 0; i < len(widths); i += a.NPE {
		w := 0
		for j := i; j < min(i+a.NPE, len(widths)); j++ {
			if widths[j] > w {
				w = widths[j]
			}
		}
		stripeWidths = append(stripeWidths, w)
	}
	exact := a.GACTXTileCycles(stripeWidths, len(res.Ops))
	est := a.GACTXTileCyclesFromCells(res.Cells, res.TEnd, len(res.Ops))
	ratio := float64(est) / float64(exact)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("estimate %d vs exact replay %d (ratio %.2f)", est, exact, ratio)
	}
	// Sanity: the tile must take at least one cycle per streamed column
	// and fewer cycles than computing every cell serially.
	if exact < int64(res.TEnd) {
		t.Errorf("exact cycles %d below row count %d", exact, res.TEnd)
	}
	if exact > int64(res.Cells) {
		t.Errorf("exact cycles %d exceed serial cell count %d (no speedup?)", exact, res.Cells)
	}
}
