package cluster

import (
	"sort"
	"sync"
	"time"

	"darwinwga/internal/faultinject"
	"darwinwga/internal/obs"
)

// Member is one registered worker as the coordinator sees it.
type Member struct {
	ID   string
	Addr string // base URL, e.g. "http://127.0.0.1:9001"
	// Targets maps target name -> content fingerprint for every index
	// this worker holds.
	Targets map[string]string
	// Serialized marks the targets this worker holds as serialized index
	// files (reloads are loads, not rebuilds).
	Serialized   map[string]bool
	RegisteredAt time.Time
	ExpiresAt    time.Time
	// Snapshot is the worker's last heartbeat-piggybacked metrics
	// snapshot (nil until the first heartbeat that carried one), and
	// SnapshotAt is when it landed — the federation feed behind
	// GET /metrics/cluster.
	Snapshot   *obs.WorkerSnapshot
	SnapshotAt time.Time
}

// clone returns a snapshot safe to hand outside the lock.
func (m *Member) clone() *Member {
	c := *m
	c.Targets = make(map[string]string, len(m.Targets))
	for k, v := range m.Targets {
		c.Targets[k] = v
	}
	c.Serialized = make(map[string]bool, len(m.Serialized))
	for k, v := range m.Serialized {
		c.Serialized[k] = v
	}
	if m.Snapshot != nil {
		snap := *m.Snapshot
		c.Snapshot = &snap
	}
	return &c
}

// membership is the coordinator's lease table: who is alive, what they
// hold, and when their lease runs out. Every mutation rebuilds the
// consistent-hash ring and broadcasts a change notification (the spool
// pattern: close the channel, swap in a fresh one) so parked job
// runners re-evaluate their replica sets.
type membership struct {
	clock faultinject.Clock
	ttl   time.Duration

	mu      sync.Mutex
	members map[string]*Member
	ring    *ring
	changed chan struct{}
	// knownTargets remembers every target fingerprint any worker ever
	// advertised, surviving worker death. It is what distinguishes "no
	// such target" (404) from "target temporarily has no replicas"
	// (503 + Retry-After).
	knownTargets map[string]string
}

func newMembership(clock faultinject.Clock, ttl time.Duration) *membership {
	return &membership{
		clock:        clock,
		ttl:          ttl,
		members:      make(map[string]*Member),
		ring:         buildRing(nil, 0),
		changed:      make(chan struct{}),
		knownTargets: make(map[string]string),
	}
}

// changedCh returns a channel closed on the next membership change.
func (ms *membership) changedCh() <-chan struct{} {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.changed
}

// broadcastLocked wakes everyone waiting on changedCh.
func (ms *membership) broadcastLocked() {
	close(ms.changed)
	ms.changed = make(chan struct{})
}

// rebuildLocked recomputes the ring from the current member set.
func (ms *membership) rebuildLocked() {
	ids := make([]string, 0, len(ms.members))
	for id := range ms.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ms.ring = buildRing(ids, 0)
}

// register adds or refreshes a worker. Re-registering an existing ID
// replaces its address and target set (the worker restarted). serialized
// marks which of those targets the worker holds as serialized index
// files; nil means none. Returns whether the worker was new.
func (ms *membership) register(id, addr string, targets map[string]string, serialized map[string]bool) bool {
	now := ms.clock.Now()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	_, existed := ms.members[id]
	m := &Member{
		ID:           id,
		Addr:         addr,
		Targets:      make(map[string]string, len(targets)),
		Serialized:   make(map[string]bool, len(serialized)),
		RegisteredAt: now,
		ExpiresAt:    now.Add(ms.ttl),
	}
	for name, fp := range targets {
		m.Targets[name] = fp
		ms.knownTargets[name] = fp
	}
	for name, ok := range serialized {
		if _, holds := m.Targets[name]; holds && ok {
			m.Serialized[name] = true
		}
	}
	ms.members[id] = m
	ms.rebuildLocked()
	ms.broadcastLocked()
	return !existed
}

// heartbeat renews a worker's lease and stores the metrics snapshot the
// worker piggybacked on the renewal (nil leaves the previous snapshot in
// place, so a heartbeat from an old agent doesn't blank the series).
// False means the coordinator does not know this worker (it expired, or
// the coordinator restarted) and the worker must re-register.
func (ms *membership) heartbeat(id string, snap *obs.WorkerSnapshot) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[id]
	if !ok {
		return false
	}
	now := ms.clock.Now()
	m.ExpiresAt = now.Add(ms.ttl)
	if snap != nil {
		m.Snapshot = snap
		m.SnapshotAt = now
	}
	return true
}

// remove drops a worker immediately (explicit deregistration).
func (ms *membership) remove(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.members[id]; !ok {
		return
	}
	delete(ms.members, id)
	ms.rebuildLocked()
	ms.broadcastLocked()
}

// sweep expires every lease older than now and returns the IDs of the
// workers it declared dead.
func (ms *membership) sweep(now time.Time) []string {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	var dead []string
	for id, m := range ms.members {
		if now.After(m.ExpiresAt) {
			dead = append(dead, id)
			delete(ms.members, id)
		}
	}
	if len(dead) > 0 {
		sort.Strings(dead)
		ms.rebuildLocked()
		ms.broadcastLocked()
	}
	return dead
}

// alive reports whether a worker currently holds a live lease, and
// returns its current snapshot.
func (ms *membership) alive(id string) (*Member, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[id]
	if !ok {
		return nil, false
	}
	return m.clone(), true
}

// list returns a snapshot of all live members sorted by ID.
func (ms *membership) list() []*Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]*Member, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, m.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// size returns the live member count.
func (ms *membership) size() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.members)
}

// targetKnown reports whether any worker (alive or dead) ever
// advertised this target, and the fingerprint it advertised.
func (ms *membership) targetKnown(name string) (string, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	fp, ok := ms.knownTargets[name]
	return fp, ok
}

// noteTarget records a target fingerprint learned from the WAL, so a
// restarted coordinator can distinguish 404 from 503 before any worker
// re-registers.
func (ms *membership) noteTarget(name, fp string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.knownTargets[name]; !ok {
		ms.knownTargets[name] = fp
	}
}

// knownTargetNames returns every target name ever advertised, sorted.
func (ms *membership) knownTargetNames() []string {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]string, 0, len(ms.knownTargets))
	for name := range ms.knownTargets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// replicasFor returns up to rf live workers holding target, in
// consistent-hash preference order keyed on the target's fingerprint.
// Keying on content rather than name means renaming an assembly does
// not reshuffle placement, and two workers advertising different bases
// under one name hash to where each fingerprint's replicas belong.
func (ms *membership) replicasFor(target string, rf int) []*Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	fp := ms.knownTargets[target]
	key := fp
	if key == "" {
		key = target
	}
	var out []*Member
	for _, id := range ms.ring.order(key) {
		m, ok := ms.members[id]
		if !ok {
			continue
		}
		if _, holds := m.Targets[target]; !holds {
			continue
		}
		out = append(out, m.clone())
		if rf > 0 && len(out) >= rf {
			break
		}
	}
	return out
}

// replicaCount returns how many live workers hold each known target.
func (ms *membership) replicaCount() map[string]int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	counts := make(map[string]int, len(ms.knownTargets))
	for name := range ms.knownTargets {
		counts[name] = 0
	}
	for _, m := range ms.members {
		for name := range m.Targets {
			counts[name]++
		}
	}
	return counts
}
