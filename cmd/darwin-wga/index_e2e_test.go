package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"darwinwga"
	"darwinwga/internal/evolve"
)

// e2eSeedPattern is a 9-of-13 spaced seed: dense enough to stay fast on
// the tiny e2e assemblies, sparse enough that each serialized index is
// only ~1 MiB — so a 1 MiB -index-budget-mb forces real LRU eviction.
const e2eSeedPattern = "1101101011011"

// scrapeCounter fetches /metrics and returns series's value (0 when the
// series is absent).
func scrapeCounter(t *testing.T, base, series string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + `\s+(\S+)$`)
	m := re.FindSubmatch(data)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("parsing %s value %q: %v", series, m[1], err)
	}
	return v
}

// TestIndexLifecycleE2E drives the whole index lifecycle through real
// subprocesses: `index build` serializes two targets, `serve -index-dir`
// loads them from disk instead of rebuilding (proven by the
// source="file" load counter and log line), a repeated submission is a
// result-cache hit with a byte-identical MAF and "cached": true, a
// 1 MiB index budget forces LRU eviction, and a job against the evicted
// target transparently reloads from its file.
func TestIndexLifecycleE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess index e2e is not -short")
	}
	dir := t.TempDir()
	idxDir := filepath.Join(dir, "indexes")
	if err := os.MkdirAll(idxDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// Two on-disk targets plus one query against the first.
	type fixture struct {
		targetName, targetPath string
		queryPath              string
	}
	var fixtures []fixture
	for _, pc := range []struct {
		pair  string
		scale float64
	}{
		{"dm6-droSim1", 0.0004},
		{"ce11-cb4", 0.0003},
	} {
		cfg, ok := evolve.StandardPair(pc.pair, pc.scale)
		if !ok {
			t.Fatalf("unknown pair %q", pc.pair)
		}
		pair, err := evolve.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tPath := filepath.Join(dir, pair.Target.Name+".fa")
		qPath := filepath.Join(dir, pair.Query.Name+".fa")
		if err := darwinwga.WriteFASTA(tPath, pair.Target); err != nil {
			t.Fatal(err)
		}
		if err := darwinwga.WriteFASTA(qPath, pair.Query); err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{
			targetName: pair.Target.Name, targetPath: tPath, queryPath: qPath,
		})
	}

	// Phase 1: `index build` + `verify` as real subprocesses.
	for _, fx := range fixtures {
		out := filepath.Join(idxDir, fx.targetName+".dwx")
		for _, args := range [][]string{
			{"index", "build", "-target", fx.targetPath, "-out", out, "-seed-pattern", e2eSeedPattern},
			{"index", "verify", "-in", out, "-target", fx.targetPath, "-seed-pattern", e2eSeedPattern},
		} {
			cmd := exec.Command(os.Args[0], args...)
			cmd.Env = append(os.Environ(), "DARWINWGA_E2E_CHILD=1")
			if outBytes, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("%v: %v\n%s", args, err, outBytes)
			}
		}
		if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
			t.Fatalf("index build left no file at %s (err %v)", out, err)
		}
	}

	// Phase 2: serve with the index dir, a 1 MiB index budget (each
	// index is bigger, so eviction must fire), and the result cache on.
	cmd := exec.Command(os.Args[0],
		"serve", "-addr", "127.0.0.1:0",
		"-register", fixtures[0].targetName+"="+fixtures[0].targetPath,
		"-register", fixtures[1].targetName+"="+fixtures[1].targetPath,
		"-index-dir", idxDir,
		"-seed-pattern", e2eSeedPattern,
		"-index-budget-mb", "1",
		"-result-cache-mb", "8",
		"-job-workers", "2", "-drain-grace", "2m",
	)
	cmd.Env = append(os.Environ(), "DARWINWGA_E2E_CHILD=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // backstop for early test failures

	addrCh := make(chan string, 1)
	childLog := &bytes.Buffer{}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(childLog, line)
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case <-time.After(2 * time.Minute):
		t.Fatalf("server never reported its address; log:\n%s", childLog.String())
	}
	waitHTTP(t, base+"/readyz", http.StatusOK, 30*time.Second)

	// Startup must have loaded both indexes from their files, not built
	// them: the source-labelled counters and the registry log line agree.
	fileLoads := scrapeCounter(t, base, `darwinwga_index_loads_total{source="file"}`)
	if fileLoads < 2 {
		t.Fatalf(`darwinwga_index_loads_total{source="file"} = %g at startup, want >= 2; log:
%s`, fileLoads, childLog.String())
	}
	if builds := scrapeCounter(t, base, `darwinwga_index_loads_total{source="build"}`); builds != 0 {
		t.Fatalf(`darwinwga_index_loads_total{source="build"} = %g at startup, want 0`, builds)
	}
	if log := childLog.String(); !strings.Contains(log, "index loaded") || !strings.Contains(log, "source=file") {
		t.Fatalf("child log is missing the file-load notice:\n%s", log)
	}

	// GET /v1/targets reflects the lifecycle: fingerprints and the
	// serialized_index flag for both targets.
	{
		resp, err := http.Get(base + "/v1/targets")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var body struct {
			Targets []struct {
				Name             string `json:"name"`
				Fingerprint      string `json:"fingerprint"`
				IndexMemoryBytes int    `json:"indexMemoryBytes"`
				SerializedIndex  bool   `json:"serialized_index"`
			} `json:"targets"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			t.Fatalf("decoding targets: %v (%s)", err, data)
		}
		if len(body.Targets) != 2 {
			t.Fatalf("got %d targets, want 2 (%s)", len(body.Targets), data)
		}
		for _, tgt := range body.Targets {
			if len(tgt.Fingerprint) != 16 || tgt.IndexMemoryBytes <= 0 || !tgt.SerializedIndex {
				t.Fatalf("target %s: fingerprint %q, indexMemoryBytes %d, serialized_index %v",
					tgt.Name, tgt.Fingerprint, tgt.IndexMemoryBytes, tgt.SerializedIndex)
			}
		}
	}

	submitJob := func(body map[string]any) string {
		t.Helper()
		code, data := postJSON(t, base+"/v1/jobs", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d (%s)", code, data)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		return st.ID
	}
	fetch := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cachedFlag := func(id string) bool {
		t.Helper()
		var st struct {
			Cached bool `json:"cached"`
		}
		if err := json.Unmarshal(fetch("/v1/jobs/"+id), &st); err != nil {
			t.Fatal(err)
		}
		return st.Cached
	}

	// Phase 3: the same submission twice. The first runs the pipeline;
	// the second must be a result-cache hit — still a journaled job, but
	// marked cached and byte-identical.
	jobBody := map[string]any{
		"target":     fixtures[0].targetName,
		"query_path": fixtures[0].queryPath,
		"client":     "lifecycle",
	}
	id1 := submitJob(jobBody)
	if state := awaitTerminal(t, base, id1, 3*time.Minute); state != "done" {
		t.Fatalf("first job: state %q; log:\n%s", state, childLog.String())
	}
	if cachedFlag(id1) {
		t.Fatalf("first job reported cached")
	}
	maf1 := fetch("/v1/jobs/" + id1 + "/maf")

	id2 := submitJob(jobBody)
	if state := awaitTerminal(t, base, id2, time.Minute); state != "done" {
		t.Fatalf("cached job: state %q; log:\n%s", state, childLog.String())
	}
	if !cachedFlag(id2) {
		t.Fatalf("repeat submission not marked cached; log:\n%s", childLog.String())
	}
	if maf2 := fetch("/v1/jobs/" + id2 + "/maf"); !bytes.Equal(maf2, maf1) {
		t.Fatalf("cached MAF not byte-identical (%d vs %d bytes)", len(maf2), len(maf1))
	}
	if hits := scrapeCounter(t, base, "darwinwga_result_cache_hits_total"); hits < 1 {
		t.Fatalf("darwinwga_result_cache_hits_total = %g, want >= 1", hits)
	}

	// Phase 4: the 1 MiB budget is smaller than either index, so the
	// post-job idle index must have been evicted already (registration
	// of the second target evicted the first, too).
	if ev := scrapeCounter(t, base, "darwinwga_index_evictions_total"); ev < 1 {
		t.Fatalf("darwinwga_index_evictions_total = %g, want >= 1; log:\n%s", ev, childLog.String())
	}

	// Phase 5: a fresh (cache-missing) job against the evicted target
	// must transparently reload the index from its file and succeed.
	preLoads := scrapeCounter(t, base, `darwinwga_index_loads_total{source="file"}`)
	id3 := submitJob(map[string]any{
		"target":     fixtures[0].targetName,
		"query_path": fixtures[0].queryPath,
		"query_name": "reload-probe",
		"client":     "lifecycle",
	})
	if state := awaitTerminal(t, base, id3, 3*time.Minute); state != "done" {
		t.Fatalf("job after eviction: state %q; log:\n%s", state, childLog.String())
	}
	if cachedFlag(id3) {
		t.Fatalf("renamed-query job unexpectedly served from cache")
	}
	if postLoads := scrapeCounter(t, base, `darwinwga_index_loads_total{source="file"}`); postLoads <= preLoads {
		t.Fatalf(`file loads did not grow across the post-eviction job (%g -> %g): reload did not come from the serialized index`,
			preLoads, postLoads)
	}
	if builds := scrapeCounter(t, base, `darwinwga_index_loads_total{source="build"}`); builds != 0 {
		t.Fatalf(`darwinwga_index_loads_total{source="build"} = %g after reloads, want 0`, builds)
	}

	// Drain cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v; log:\n%s", err, childLog.String())
		}
	case <-time.After(3 * time.Minute):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("server did not drain after SIGTERM; log:\n%s", childLog.String())
	}
}
