package hw

import (
	"math"
	"strings"
	"testing"

	"darwinwga/internal/core"
)

func TestASICBreakdownMatchesTableIV(t *testing.T) {
	comps := ASICBreakdown(64, 12, 64)
	want := map[string][2]float64{ // name -> {area, power}
		"BSW Logic":      {16.6, 25.6},
		"GACT-X Logic":   {4.2, 6.72},
		"Traceback SRAM": {15.12, 7.92},
		"DRAM":           {0, 3.10},
	}
	for _, c := range comps {
		w, ok := want[c.Name]
		if !ok {
			t.Fatalf("unexpected component %q", c.Name)
		}
		if math.Abs(c.AreaMM2-w[0]) > 0.01 || math.Abs(c.PowerW-w[1]) > 0.01 {
			t.Errorf("%s: area %.2f power %.2f, want %.2f/%.2f", c.Name, c.AreaMM2, c.PowerW, w[0], w[1])
		}
		delete(want, c.Name)
	}
	area, power := Totals(comps)
	if math.Abs(area-35.92) > 0.05 {
		t.Errorf("total area = %.2f mm2, Table IV says 35.92", area)
	}
	if math.Abs(power-43.34) > 0.05 {
		t.Errorf("total power = %.2f W, Table IV says 43.34", power)
	}
}

func TestASICBreakdownScales(t *testing.T) {
	half := ASICBreakdown(32, 6, 64)
	full := ASICBreakdown(64, 12, 64)
	ah, _ := Totals(half)
	af, _ := Totals(full)
	if ah >= af {
		t.Errorf("half deployment area %.2f >= full %.2f", ah, af)
	}
	// BSW logic should scale exactly 2x.
	if math.Abs(full[0].AreaMM2-2*half[0].AreaMM2) > 1e-9 {
		t.Error("BSW area does not scale linearly with arrays")
	}
}

func TestPlatformConstants(t *testing.T) {
	f := FPGA()
	if f.BSWArrays != 50 || f.GACTXArrays != 2 || f.Array.NPE != 32 || f.Array.ClockHz != 150e6 {
		t.Errorf("FPGA config: %+v", f)
	}
	a := ASIC()
	if a.BSWArrays != 64 || a.GACTXArrays != 12 || a.Array.NPE != 64 || a.Array.ClockHz != 1e9 {
		t.Errorf("ASIC config: %+v", a)
	}
	c := CPU()
	if c.PowerW != 215 || c.PricePerHour != 1.59 {
		t.Errorf("CPU config: %+v", c)
	}
	// Table VI ordering: CPU > FPGA > ASIC power.
	if !(c.PowerW > f.PowerW && f.PowerW > a.PowerW) {
		t.Error("platform power ordering violated")
	}
}

func TestFPGAThroughputNearPaper(t *testing.T) {
	f := FPGA()
	bsw := f.BSWThroughput(320, 32)
	// Paper: 6.25M tiles/s across 50 arrays.
	if bsw < 3e6 || bsw > 12e6 {
		t.Errorf("FPGA BSW throughput = %.2fM tiles/s, paper says 6.25M", bsw/1e6)
	}
	asic := ASIC().BSWThroughput(320, 32)
	// Paper: 70M tiles/s.
	if asic < 35e6 || asic > 140e6 {
		t.Errorf("ASIC BSW throughput = %.1fM tiles/s, paper says 70M", asic/1e6)
	}
	// The ASIC must beat the FPGA by roughly clock x arrays.
	if asic < 5*bsw {
		t.Errorf("ASIC (%.1fM) should be ~11x FPGA (%.1fM)", asic/1e6, bsw/1e6)
	}
}

func TestEstimateAndImprovementMetrics(t *testing.T) {
	w := core.Workload{
		FilterTiles:    10_000_000,
		ExtensionTiles: 3_000,
		ExtensionCells: 3_000 * 500_000,
	}
	fpga := FPGA()
	est, err := fpga.Estimate(w, 5.0, 320, 32)
	if err != nil {
		t.Fatal(err)
	}
	if est.FilterSeconds <= 0 || est.ExtensionSeconds <= 0 {
		t.Fatalf("estimate: %+v", est)
	}
	if est.TotalSeconds() < est.FilterSeconds {
		t.Error("total < filter")
	}
	// Iso-sensitive software at the paper's Parasail rate: 10M tiles /
	// 225K tiles/s ≈ 44s plus stages.
	sw := IsoSensitiveSoftwareSeconds(w, 0, 5.0, 100.0)
	if sw < 44 || sw > 44.5+105 {
		t.Errorf("iso-sensitive software = %.1fs", sw)
	}
	// Improvement metrics are positive and favor the accelerator for
	// this filter-dominated workload.
	ppd := PerfPerDollar(sw, CPU(), est.TotalSeconds(), fpga)
	if ppd <= 1 {
		t.Errorf("perf/$ = %.2f, expected > 1", ppd)
	}
	asicEst, err := ASIC().Estimate(w, 5.0, 320, 32)
	if err != nil {
		t.Fatal(err)
	}
	ppw := PerfPerWatt(sw, CPU(), asicEst.TotalSeconds(), ASIC())
	if ppw <= ppd {
		t.Errorf("ASIC perf/W (%.0f) should dwarf FPGA perf/$ (%.1f)", ppw, ppd)
	}
	if Speedup(100, 10) != 10 {
		t.Error("Speedup arithmetic")
	}
}

func TestEstimateRequiresAccelerator(t *testing.T) {
	if _, err := CPU().Estimate(core.Workload{FilterTiles: 1}, 0, 320, 32); err == nil {
		t.Error("CPU estimate should fail (no arrays)")
	}
}

func TestIsoSensitiveDefaultsToPaperRate(t *testing.T) {
	w := core.Workload{FilterTiles: 225_000}
	if got := IsoSensitiveSoftwareSeconds(w, 0, 0, 0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("default rate: %v, want 1s", got)
	}
	if got := IsoSensitiveSoftwareSeconds(w, 450_000, 0, 0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("explicit rate: %v, want 0.5s", got)
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(0.5); got != "0.500s" {
		t.Errorf("FormatDuration(0.5) = %q", got)
	}
	if got := FormatDuration(3900); !strings.Contains(got, "h") {
		t.Errorf("FormatDuration(3900) = %q", got)
	}
}
