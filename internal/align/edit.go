package align

import (
	"fmt"
	"strings"
)

// EditOp is one alignment operation in an edit transcript.
type EditOp byte

const (
	// OpMatch consumes one base of both sequences (match or mismatch).
	OpMatch EditOp = 'M'
	// OpInsert consumes one base of the query only (gap in the target).
	OpInsert EditOp = 'I'
	// OpDelete consumes one base of the target only (gap in the query).
	OpDelete EditOp = 'D'
)

// Alignment is a local alignment between a target and a query interval.
// Coordinates are half-open within the sequences handed to the aligner.
type Alignment struct {
	Score  int32
	TStart int
	TEnd   int
	QStart int
	QEnd   int
	// Ops is the edit transcript from (TStart,QStart) to (TEnd,QEnd).
	Ops []EditOp
}

// TSpan and QSpan return the aligned lengths on target and query.
func (a *Alignment) TSpan() int { return a.TEnd - a.TStart }
func (a *Alignment) QSpan() int { return a.QEnd - a.QStart }

// Counts tallies matches, mismatches and gap bases against the two
// sequences the alignment refers to.
func (a *Alignment) Counts(target, query []byte) (matches, mismatches, gapBases int) {
	ti, qi := a.TStart, a.QStart
	for _, op := range a.Ops {
		switch op {
		case OpMatch:
			if target[ti] == query[qi] && target[ti] != 'N' {
				matches++
			} else {
				mismatches++
			}
			ti++
			qi++
		case OpInsert:
			gapBases++
			qi++
		case OpDelete:
			gapBases++
			ti++
		}
	}
	return matches, mismatches, gapBases
}

// Identity returns the fraction of OpMatch columns whose bases agree.
func (a *Alignment) Identity(target, query []byte) float64 {
	m, mm, _ := a.Counts(target, query)
	if m+mm == 0 {
		return 0
	}
	return float64(m) / float64(m+mm)
}

// Rescore recomputes the alignment score from the transcript; useful as a
// consistency oracle in tests.
func (a *Alignment) Rescore(sc *Scoring, target, query []byte) int32 {
	var score int32
	ti, qi := a.TStart, a.QStart
	i := 0
	for i < len(a.Ops) {
		switch a.Ops[i] {
		case OpMatch:
			score += sc.Score(target[ti], query[qi])
			ti++
			qi++
			i++
		case OpInsert, OpDelete:
			op := a.Ops[i]
			runLen := 0
			for i < len(a.Ops) && a.Ops[i] == op {
				runLen++
				if op == OpInsert {
					qi++
				} else {
					ti++
				}
				i++
			}
			score -= sc.GapCost(runLen)
		}
	}
	return score
}

// CheckConsistency verifies that the transcript consumes exactly the
// intervals the alignment claims. It returns a descriptive error on any
// violation; tests use it as an invariant oracle.
func (a *Alignment) CheckConsistency(tLen, qLen int) error {
	if a.TStart < 0 || a.QStart < 0 || a.TEnd > tLen || a.QEnd > qLen {
		return fmt.Errorf("align: interval out of range: T[%d,%d) of %d, Q[%d,%d) of %d",
			a.TStart, a.TEnd, tLen, a.QStart, a.QEnd, qLen)
	}
	if a.TStart > a.TEnd || a.QStart > a.QEnd {
		return fmt.Errorf("align: inverted interval")
	}
	tUsed, qUsed := 0, 0
	for _, op := range a.Ops {
		switch op {
		case OpMatch:
			tUsed++
			qUsed++
		case OpInsert:
			qUsed++
		case OpDelete:
			tUsed++
		default:
			return fmt.Errorf("align: unknown op %q", op)
		}
	}
	if tUsed != a.TSpan() || qUsed != a.QSpan() {
		return fmt.Errorf("align: transcript consumes T=%d Q=%d, interval is T=%d Q=%d",
			tUsed, qUsed, a.TSpan(), a.QSpan())
	}
	return nil
}

// CIGAR renders the transcript in run-length CIGAR notation, e.g.
// "12M1D30M".
func (a *Alignment) CIGAR() string {
	var b strings.Builder
	i := 0
	for i < len(a.Ops) {
		j := i
		for j < len(a.Ops) && a.Ops[j] == a.Ops[i] {
			j++
		}
		fmt.Fprintf(&b, "%d%c", j-i, a.Ops[i])
		i = j
	}
	return b.String()
}

// ReverseOps reverses an edit transcript in place. Extension kernels that
// align reversed sequences use it to restore forward orientation.
func ReverseOps(ops []EditOp) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}

// UngappedBlocks splits the transcript into maximal runs of OpMatch,
// returning the length of each run. Figure 2 of the paper plots the
// distribution of these block lengths for top chains.
func (a *Alignment) UngappedBlocks() []int {
	var blocks []int
	run := 0
	for _, op := range a.Ops {
		if op == OpMatch {
			run++
		} else if run > 0 {
			blocks = append(blocks, run)
			run = 0
		}
	}
	if run > 0 {
		blocks = append(blocks, run)
	}
	return blocks
}
