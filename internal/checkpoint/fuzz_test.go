package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzFrame renders one valid journal frame, for seeding the corpus
// with well-formed segments the mutator can then tear apart.
func fuzzFrame(kind uint8, payload []byte) []byte {
	var b bytes.Buffer
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = kind
	crc := crc32.New(castagnoli)
	crc.Write([]byte{kind}) //nolint:errcheck
	crc.Write(payload)      //nolint:errcheck
	binary.LittleEndian.PutUint32(hdr[5:9], crc.Sum32())
	b.Write(hdr[:])
	b.Write(payload)
	return b.Bytes()
}

// FuzzWALRecover writes arbitrary bytes as a journal segment and
// recovers it. Properties: replay never panics, Replay and Open agree
// on the recovered prefix, and the journal stays appendable after
// recovery — a record appended over a torn tail must itself replay,
// with the recovered prefix unchanged.
func FuzzWALRecover(f *testing.F) {
	valid := append([]byte(magic), fuzzFrame(1, []byte(`{"version":1}`))...)
	valid = append(valid, fuzzFrame(2, []byte("payload two"))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])            // torn mid-frame
	f.Add(append(valid, 0xde, 0xad, 0xbe)) // torn garbage tail
	f.Add([]byte(magic))                   // header only
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), data, 0o644); err != nil {
			t.Fatalf("writing segment: %v", err)
		}
		replayed, err := Replay(dir)
		if err != nil {
			t.Fatalf("Replay on a single segment must tolerate any tail: %v", err)
		}
		j, opened, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("Open on a single segment must tolerate any tail: %v", err)
		}
		if len(opened) != len(replayed) {
			t.Fatalf("Open recovered %d records, Replay %d", len(opened), len(replayed))
		}
		for i := range opened {
			if opened[i].Kind != replayed[i].Kind || !bytes.Equal(opened[i].Payload, replayed[i].Payload) {
				t.Fatalf("record %d differs between Open and Replay", i)
			}
		}
		// The journal must accept appends positioned after the valid
		// prefix, and the new record must replay behind it.
		if err := j.Append(7, []byte("appended-after-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		again, err := Replay(dir)
		if err != nil {
			t.Fatalf("Replay after append: %v", err)
		}
		if len(again) != len(replayed)+1 {
			t.Fatalf("replay after append: %d records, want %d", len(again), len(replayed)+1)
		}
		for i := range replayed {
			if again[i].Kind != replayed[i].Kind || !bytes.Equal(again[i].Payload, replayed[i].Payload) {
				t.Fatalf("append rewrote history at record %d", i)
			}
		}
		last := again[len(again)-1]
		if last.Kind != 7 || string(last.Payload) != "appended-after-recovery" {
			t.Fatalf("appended record replayed as kind=%d payload=%q", last.Kind, last.Payload)
		}
	})
}
