package cluster

// Chaos tests for the per-shard scatter/gather plane: scripted shard
// workers, the ManualClock driving unit leases, retry backoff, and the
// hedge tick, and the faultinject transport/IO seams injecting the
// failure modes the design doc's matrix names — worker death mid-unit,
// straggler hedging, retry exhaustion into partial results, truncated
// response bodies, disk-full artifact stores, and coordinator restart
// re-dispatching only unfinished units. Run under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darwinwga/internal/core"
	"darwinwga/internal/faultinject"
	"darwinwga/internal/maf"
	"darwinwga/internal/server"
)

// shardQueryBases sizes the test query so PlanShards with 2 units per
// strand yields 4 units: 0:'+'[0:128) 1:'+'[128:200) 2:'-'[0:128)
// 3:'-'[128:200) (chunk size 64, span 128).
const shardQueryBases = 200

var shardTestFASTA = ">q\n" + strings.Repeat("ACGTACGTAC", shardQueryBases/10) + "\n"

// shardTestPlan recomputes the decomposition the coordinator journals —
// tests derive expected unit identities from it instead of hardcoding.
func shardTestPlan(unitsPerStrand int) []core.ShardUnit {
	cfg := core.DefaultConfig()
	cfg.BothStrands = true
	return core.PlanShards(&cfg, shardQueryBases, unitsPerStrand)
}

// cannedShardFrame fabricates one deterministic frame per unit. Anchor
// positions grow with the unit seq and sit far apart (1000 > absorb
// band), so the merge keeps every frame and its canonical order equals
// plan order within each strand — making the merged MAF predictable.
func cannedShardFrame(u core.ShardUnit) server.ShardResultFrame {
	at := 10_000 + u.Seq*1000
	diag := at - u.QStart
	return server.ShardResultFrame{
		ShardFrame: core.ShardFrame{
			AnchorT: at, AnchorQ: u.QStart, FilterScore: 100, Score: 80,
			TStart: at, TEnd: at + 8, DMin: diag, DMax: diag,
		},
		Block: &maf.Block{
			Score: 80, TName: "tgt.chr1", TStart: at, TSize: 8, TSrc: 50_000,
			TText: "ACGTACGT", QName: "q", QStart: u.QStart, QSize: 8,
			QSrc: shardQueryBases, QStrand: u.Strand, QText: "ACGTACGT",
		},
	}
}

func cannedShardResponse(u core.ShardUnit) server.ShardResponse {
	return server.ShardResponse{Unit: u, Frames: []server.ShardResultFrame{cannedShardFrame(u)}}
}

// expectedShardMAF renders the MAF the coordinator must produce for the
// canned frames: '+' blocks then '-' blocks, plan order within each
// strand, skipping the given seqs (failed units in the partial tests).
func expectedShardMAF(t *testing.T, plan []core.ShardUnit, skip map[int]bool) string {
	t.Helper()
	var buf bytes.Buffer
	mw := maf.NewWriter(&buf)
	for _, strand := range []byte{'+', '-'} {
		for _, u := range plan {
			if u.Strand != strand || skip[u.Seq] {
				continue
			}
			if err := mw.Write(cannedShardFrame(u).Block); err != nil {
				t.Fatalf("rendering expected MAF: %v", err)
			}
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatalf("closing expected MAF: %v", err)
	}
	return buf.String()
}

// shardRecorder logs (worker label, unit seq) pairs as scripted workers
// receive unit dispatches.
type shardRecorder struct {
	mu    sync.Mutex
	calls []struct {
		label string
		seq   int
	}
}

func (r *shardRecorder) add(label string, seq int) {
	r.mu.Lock()
	r.calls = append(r.calls, struct {
		label string
		seq   int
	}{label, seq})
	r.mu.Unlock()
}

func (r *shardRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.calls)
}

func (r *shardRecorder) countFor(label string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.calls {
		if c.label == label {
			n++
		}
	}
	return n
}

// workersFor returns the labels that served seq, in arrival order.
func (r *shardRecorder) workersFor(seq int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, c := range r.calls {
		if c.seq == seq {
			out = append(out, c.label)
		}
	}
	return out
}

// seqsSince returns the sorted distinct unit seqs seen at call index
// >= from — how the restart test isolates post-recovery dispatches.
func (r *shardRecorder) seqsSince(from int) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := map[int]bool{}
	for _, c := range r.calls[from:] {
		set[c.seq] = true
	}
	var out []int
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// shardFn scripts one worker's answer to a unit dispatch. ok=false is
// an HTTP 500; the fn may block to model a dead or straggling worker.
type shardFn func(req server.ShardRequest) (server.ShardResponse, bool)

// newShardWorker is a fakeWorker whose handler additionally serves
// POST /v1/shards from fn (nil = always the canned single-frame
// success), recording every dispatch in rec under label.
func newShardWorker(t *testing.T, label string, rec *shardRecorder, fn shardFn) *fakeWorker {
	t.Helper()
	return newFakeWorkerWrapped(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost || r.URL.Path != "/v1/shards" {
				next.ServeHTTP(rw, r)
				return
			}
			var req server.ShardRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				rw.WriteHeader(http.StatusBadRequest)
				return
			}
			if rec != nil {
				rec.add(label, req.Unit.Seq)
			}
			var resp server.ShardResponse
			ok := true
			if fn != nil {
				resp, ok = fn(req)
			} else {
				resp = cannedShardResponse(req.Unit)
			}
			if !ok {
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(http.StatusInternalServerError)
				rw.Write([]byte(`{"error":"scripted shard failure"}`)) //nolint:errcheck
				return
			}
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(resp) //nolint:errcheck
		})
	})
}

// submitFASTA posts a job with a caller-chosen query.
func (cc *chaosCluster) submitFASTA(t *testing.T, fasta string, extra map[string]any) string {
	t.Helper()
	req := map[string]any{"target": testTarget, "query_fasta": fasta, "client": "shard-chaos"}
	for k, v := range extra {
		req[k] = v
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(cc.front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, data)
	}
	var st clusterJobStatus
	json.Unmarshal(data, &st) //nolint:errcheck
	return st.ID
}

// fetchMAF GETs the merged artifact once the job is terminal.
func (cc *chaosCluster) fetchMAF(t *testing.T, id string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(cc.front.URL + "/v1/jobs/" + id + "/maf")
	if err != nil {
		t.Fatalf("maf: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, string(data)
}

func shardChaosConfig(mutate func(*Config)) func(*Config) {
	return func(cfg *Config) {
		cfg.ShardDispatch = []string{"*"}
		cfg.ShardUnits = 2
		if mutate != nil {
			mutate(cfg)
		}
	}
}

// TestShardScatterGatherHappyPath: with two workers holding the target,
// a sharded job scatters its 4 units across both, gathers every frame,
// and serves the deterministic merge — plan order per strand, '+'
// before '-' — with a clean 200 and a full shard map in status.
func TestShardScatterGatherHappyPath(t *testing.T) {
	cc := newChaosCluster(t, shardChaosConfig(nil))
	rec := &shardRecorder{}
	w1 := newShardWorker(t, "w1", rec, nil)
	w2 := newShardWorker(t, "w2", rec, nil)
	cc.register(t, "w1", w1)
	cc.register(t, "w2", w2)

	id := cc.submitFASTA(t, shardTestFASTA, nil)
	cc.pump(t, "sharded job done", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})

	st := cc.jobStatus(t, id)
	if !st.Sharded {
		t.Error("status not marked sharded")
	}
	if st.Shards == nil || st.Shards.Total != 4 || st.Shards.Done != 4 || st.Shards.Failed != 0 {
		t.Errorf("shard map = %+v, want 4/4 done", st.Shards)
	}
	if len(st.FailedShards) != 0 || st.Truncated != "" {
		t.Errorf("clean run reported partial: truncated=%q failed=%v", st.Truncated, st.FailedShards)
	}
	if got := cc.coord.c.shardDispatched.Value(); got != 4 {
		t.Errorf("dispatched counter = %d, want 4", got)
	}
	if got := cc.coord.c.shardMerged.Value(); got != 4 {
		t.Errorf("merged counter = %d, want 4", got)
	}
	// The units spread across the fleet, not a single worker.
	if rec.countFor("w1") == 0 || rec.countFor("w2") == 0 {
		t.Errorf("units did not scatter: w1=%d w2=%d", rec.countFor("w1"), rec.countFor("w2"))
	}
	code, _, body := cc.fetchMAF(t, id)
	if code != http.StatusOK {
		t.Fatalf("maf: HTTP %d, want 200", code)
	}
	if want := expectedShardMAF(t, shardTestPlan(2), nil); body != want {
		t.Errorf("merged MAF differs from canonical order:\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestShardBudgetedJobKeepsWholeJob: budget caps are job-wide, so a
// budgeted submission bypasses shard dispatch even when the target is
// enrolled, and routes whole to one worker.
func TestShardBudgetedJobKeepsWholeJob(t *testing.T) {
	cc := newChaosCluster(t, shardChaosConfig(nil))
	rec := &shardRecorder{}
	w1 := newShardWorker(t, "w1", rec, nil)
	cc.register(t, "w1", w1)

	id := cc.submitFASTA(t, shardTestFASTA, map[string]any{"max_candidates": 5})
	cc.pump(t, "whole-job dispatch", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		return w1.submitCount() > 0
	})
	w1.finishAll()
	cc.pump(t, "whole job done", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})
	st := cc.jobStatus(t, id)
	if st.Sharded || st.Shards != nil {
		t.Errorf("budgeted job took the shard path: %+v", st.Shards)
	}
	if rec.count() != 0 {
		t.Errorf("budgeted job dispatched %d shard units, want 0", rec.count())
	}
}

// TestShardWorkerDeathFailover: one worker takes its units and goes
// silent mid-flight (the SIGKILL analogue: its shard requests hang and
// its membership lease expires). The units' leases run out, retries
// fail over to the survivor, and the merged MAF is byte-identical to a
// run with no failure.
func TestShardWorkerDeathFailover(t *testing.T) {
	cc := newChaosCluster(t, shardChaosConfig(func(cfg *Config) {
		// Longer than the membership lease so the dead worker is
		// already expired when its units' leases lapse — the retry
		// observes a lost worker, the failed-over path.
		cfg.ShardLease = 15 * time.Second
	}))
	rec := &shardRecorder{}
	gate := make(chan struct{})
	release := sync.OnceFunc(func() { close(gate) })
	w1 := newShardWorker(t, "w1", rec, func(server.ShardRequest) (server.ShardResponse, bool) {
		<-gate // dead worker: holds the unit forever
		return server.ShardResponse{}, false
	})
	w2 := newShardWorker(t, "w2", rec, nil)
	t.Cleanup(release)
	cc.register(t, "w1", w1)
	cc.register(t, "w2", w2)

	id := cc.submitFASTA(t, shardTestFASTA, nil)
	cc.pump(t, "doomed worker holds a unit", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		return rec.countFor("w1") >= 1
	})

	// w1 is killed: no more heartbeats, its in-flight units hang until
	// their leases expire on the manual clock.
	cc.pump(t, "units fail over to the survivor", func() {
		cc.heartbeat(t, "w2")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})
	release()

	st := cc.jobStatus(t, id)
	if st.Shards == nil || st.Shards.Done != 4 || st.Shards.Failed != 0 {
		t.Fatalf("shard map = %+v, want 4/4 done with none failed", st.Shards)
	}
	if len(st.FailedShards) != 0 {
		t.Errorf("failover must not drop units: failed=%v", st.FailedShards)
	}
	if got := cc.coord.c.shardFailedOver.Value(); got < 1 {
		t.Errorf("failed-over counter = %d, want >= 1", got)
	}
	code, _, body := cc.fetchMAF(t, id)
	if code != http.StatusOK {
		t.Fatalf("maf: HTTP %d, want 200", code)
	}
	if want := expectedShardMAF(t, shardTestPlan(2), nil); body != want {
		t.Errorf("post-failover MAF not byte-identical:\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestShardHedgedStraggler: three units finish in ~1s of manual time,
// establishing the p90; the fourth hangs. Past factor×p90 the gather
// loop speculatively re-dispatches it — to the other worker — and the
// hedge's result completes the job (first result wins).
func TestShardHedgedStraggler(t *testing.T) {
	cc := newChaosCluster(t, shardChaosConfig(nil))
	rec := &shardRecorder{}
	gate := make(chan struct{})
	release := sync.OnceFunc(func() { close(gate) })
	var seq3Calls atomic.Int32
	fn := func(req server.ShardRequest) (server.ShardResponse, bool) {
		if req.Unit.Seq == 3 && seq3Calls.Add(1) == 1 {
			<-gate // the straggler: the first attempt never returns
			return server.ShardResponse{}, false
		}
		// Normal units take ~1s of manual time so completed-unit
		// durations are nonzero and the p90 threshold exists.
		from := cc.clock.Now()
		for cc.clock.Now().Sub(from) < time.Second {
			time.Sleep(time.Millisecond)
		}
		return cannedShardResponse(req.Unit), true
	}
	w1 := newShardWorker(t, "w1", rec, fn)
	w2 := newShardWorker(t, "w2", rec, fn)
	t.Cleanup(release)
	cc.register(t, "w1", w1)
	cc.register(t, "w2", w2)

	id := cc.submitFASTA(t, shardTestFASTA, nil)
	cc.pump(t, "straggler hedged and job done", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})
	release()

	if got := cc.coord.c.shardHedged.Value(); got != 1 {
		t.Errorf("hedged counter = %d, want 1", got)
	}
	st := cc.jobStatus(t, id)
	if st.Shards == nil || st.Shards.Done != 4 || st.Shards.Hedged != 1 {
		t.Fatalf("shard map = %+v, want 4 done with 1 hedged", st.Shards)
	}
	// The hedge avoided the straggler's worker.
	servers := rec.workersFor(3)
	if len(servers) < 2 || servers[0] == servers[1] {
		t.Errorf("hedge did not move workers: unit 3 served by %v", servers)
	}
	// First result won: exactly one result per unit merged.
	if got := cc.coord.c.shardMerged.Value(); got != 4 {
		t.Errorf("merged counter = %d, want 4", got)
	}
	code, _, body := cc.fetchMAF(t, id)
	if code != http.StatusOK {
		t.Fatalf("maf: HTTP %d, want 200", code)
	}
	if want := expectedShardMAF(t, shardTestPlan(2), nil); body != want {
		t.Errorf("hedged MAF not byte-identical:\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestShardRetryExhaustionPartialResult: one unit fails every attempt
// on the only worker. The job still completes — as a partial result:
// state done, truncated=shard-failures, the unit listed in
// failed_shards, and the MAF a 206 missing exactly that unit's block.
func TestShardRetryExhaustionPartialResult(t *testing.T) {
	cc := newChaosCluster(t, shardChaosConfig(nil))
	rec := &shardRecorder{}
	w1 := newShardWorker(t, "w1", rec, func(req server.ShardRequest) (server.ShardResponse, bool) {
		if req.Unit.Seq == 1 {
			return server.ShardResponse{}, false
		}
		return cannedShardResponse(req.Unit), true
	})
	cc.register(t, "w1", w1)

	id := cc.submitFASTA(t, shardTestFASTA, nil)
	cc.pump(t, "partial completion", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})

	plan := shardTestPlan(2)
	st := cc.jobStatus(t, id)
	if st.Truncated != shardTruncatedReason {
		t.Errorf("truncated = %q, want %q", st.Truncated, shardTruncatedReason)
	}
	if want := []string{plan[1].String()}; len(st.FailedShards) != 1 || st.FailedShards[0] != want[0] {
		t.Errorf("failed_shards = %v, want %v", st.FailedShards, want)
	}
	if st.Shards == nil || st.Shards.Done != 3 || st.Shards.Failed != 1 {
		t.Errorf("shard map = %+v, want 3 done / 1 failed", st.Shards)
	}
	if !strings.Contains(st.Error, "partial result") {
		t.Errorf("status error = %q, want a partial-result note", st.Error)
	}
	if got := cc.coord.c.shardFailed.Value(); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}
	code, hdr, body := cc.fetchMAF(t, id)
	if code != http.StatusPartialContent {
		t.Fatalf("maf: HTTP %d, want 206", code)
	}
	if hdr.Get("X-Truncated") != shardTruncatedReason {
		t.Errorf("X-Truncated = %q, want %q", hdr.Get("X-Truncated"), shardTruncatedReason)
	}
	if hdr.Get("X-Failed-Shards") != plan[1].String() {
		t.Errorf("X-Failed-Shards = %q, want %q", hdr.Get("X-Failed-Shards"), plan[1].String())
	}
	if want := expectedShardMAF(t, plan, map[int]bool{1: true}); body != want {
		t.Errorf("partial MAF wrong:\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestShardTruncatedBodyRetry: the transport cuts one shard response
// mid-body. The frame decode fails, the idempotent unit retries, and
// the job completes with a byte-identical merge — a half-delivered
// frame set never reaches the merge.
func TestShardTruncatedBodyRetry(t *testing.T) {
	cc := newChaosCluster(t, shardChaosConfig(nil))
	rec := &shardRecorder{}
	w1 := newShardWorker(t, "w1", rec, nil)
	cc.tr.AddRule(faultinject.TransportRule{
		Host: w1.host(), Hit: 1, Action: faultinject.TransportTruncateBody, TruncateAt: 10,
	})
	cc.register(t, "w1", w1)

	id := cc.submitFASTA(t, shardTestFASTA, nil)
	cc.pump(t, "job survives the truncated body", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})

	if got := cc.coord.c.shardRetried.Value(); got < 1 {
		t.Errorf("retried counter = %d, want >= 1", got)
	}
	st := cc.jobStatus(t, id)
	if st.Shards == nil || st.Shards.Done != 4 || st.Shards.Failed != 0 {
		t.Fatalf("shard map = %+v, want 4/4 done", st.Shards)
	}
	code, _, body := cc.fetchMAF(t, id)
	if code != http.StatusOK {
		t.Fatalf("maf: HTTP %d, want 200", code)
	}
	if want := expectedShardMAF(t, shardTestPlan(2), nil); body != want {
		t.Errorf("MAF after truncated-body retry not byte-identical:\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestShardJournalRestartRedispatchOnlyUnfinished: two units complete
// and journal before the coordinator dies mid-job. The restarted
// coordinator adopts their spilled frames (recovered counter) and
// re-dispatches only the other two; the final MAF is still complete.
func TestShardJournalRestartRedispatchOnlyUnfinished(t *testing.T) {
	dir := t.TempDir()
	rec := &shardRecorder{}
	var allowAll atomic.Bool
	fn := func(req server.ShardRequest) (server.ShardResponse, bool) {
		if req.Unit.Seq >= 2 {
			// Held until the first coordinator is gone, so units 2 and
			// 3 are in flight — not journaled — at the crash point.
			for !allowAll.Load() {
				time.Sleep(time.Millisecond)
			}
		}
		return cannedShardResponse(req.Unit), true
	}
	w1 := newShardWorker(t, "w1", rec, fn)
	t.Cleanup(func() { allowAll.Store(true) })

	cc := newChaosCluster(t, shardChaosConfig(func(cfg *Config) { cfg.JournalDir = dir }))
	cc.register(t, "w1", w1)
	id := cc.submitFASTA(t, shardTestFASTA, nil)
	cc.pump(t, "two units journaled before the crash", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		st := cc.jobStatus(t, id)
		return st.Shards != nil && st.Shards.Done == 2
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := cc.coord.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	cc.front.Close()
	allowAll.Store(true)
	preRestart := rec.count()

	cc2 := newChaosCluster(t, shardChaosConfig(func(cfg *Config) { cfg.JournalDir = dir }))
	cc2.register(t, "w1", w1)
	cc2.pump(t, "job done after restart", func() {
		cc2.heartbeat(t, "w1")
	}, func() bool {
		return cc2.jobStatus(t, id).State == StateDone
	})

	if got := cc2.coord.c.shardRecovered.Value(); got != 2 {
		t.Errorf("recovered counter = %d, want 2 (adopted journaled units)", got)
	}
	if got := cc2.coord.c.shardMerged.Value(); got != 2 {
		t.Errorf("merged counter after restart = %d, want 2 (only unfinished units re-ran)", got)
	}
	redispatched := rec.seqsSince(preRestart)
	for _, seq := range redispatched {
		if seq < 2 {
			t.Errorf("finished unit %d was re-dispatched after restart (got %v)", seq, redispatched)
		}
	}
	if len(redispatched) == 0 {
		t.Error("no units re-dispatched after restart")
	}
	st := cc2.jobStatus(t, id)
	if !st.Sharded || st.Shards == nil || st.Shards.Done != 4 {
		t.Fatalf("post-restart shard map = %+v, want 4 done", st.Shards)
	}
	code, _, body := cc2.fetchMAF(t, id)
	if code != http.StatusOK {
		t.Fatalf("maf: HTTP %d, want 200", code)
	}
	if want := expectedShardMAF(t, shardTestPlan(2), nil); body != want {
		t.Errorf("post-restart MAF not byte-identical:\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestShardArtifactStoreENOSPCSubmit: a full disk at query-spill time
// answers 503 + Retry-After, leaves no artifact (whole or partial)
// behind, and the same submission succeeds once space returns.
func TestShardArtifactStoreENOSPCSubmit(t *testing.T) {
	dir := t.TempDir()
	enospc := errors.New("no space left on device")
	cc := newChaosCluster(t, shardChaosConfig(func(cfg *Config) {
		cfg.JournalDir = dir
		// Only the first artifact write fails — the disk "fills"
		// exactly once.
		cfg.IOFaults = faultinject.NewIO(faultinject.IORule{
			Op: faultinject.OpWrite, Hit: 1, Action: faultinject.IOErr, Err: enospc,
		})
	}))
	rec := &shardRecorder{}
	w1 := newShardWorker(t, "w1", rec, nil)
	cc.register(t, "w1", w1)

	body, _ := json.Marshal(map[string]any{
		"target": testTarget, "query_fasta": shardTestFASTA, "client": "shard-chaos",
	})
	resp, err := http.Post(cc.front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on full disk: HTTP %d (%s), want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("store 503 without Retry-After")
	}
	if got := cc.coord.c.store503.Value(); got != 1 {
		t.Errorf("store-unavailable counter = %d, want 1", got)
	}
	// No corrupt artifact: the atomic writer must leave nothing behind
	// for the failed spill — no query file, no .tmp.
	ents, _ := os.ReadDir(filepath.Join(dir, "queries"))
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("failed spill left temp file %s", e.Name())
		}
	}
	if n := len(ents); n > 1 {
		t.Errorf("queries dir has %d entries after one failed and one ok spill, want <= 1", n)
	}

	// Space is back: the retried submission is accepted and completes.
	id := cc.submitFASTA(t, shardTestFASTA, nil)
	cc.pump(t, "job done after disk recovered", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})
}

// TestShardArtifactStoreENOSPCShippedPut: a full disk during a shipped
// checkpoint-segment PUT answers 503 + Retry-After and stores nothing,
// so the worker can simply re-PUT the same segment later.
func TestShardArtifactStoreENOSPCShippedPut(t *testing.T) {
	dir := t.TempDir()
	enospc := errors.New("no space left on device")
	cc := newChaosCluster(t, func(cfg *Config) {
		cfg.JournalDir = dir
		// Hit 2: the submission's query spill passes, the shipped
		// segment write fails.
		cfg.IOFaults = faultinject.NewIO(faultinject.IORule{
			Op: faultinject.OpWrite, Hit: 2, Action: faultinject.IOErr, Err: enospc,
		})
	})
	w1 := newFakeWorker(t)
	cc.register(t, "w1", w1)
	id := cc.submit(t)
	cc.pump(t, "whole-job dispatch", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		return w1.submitCount() > 0
	})

	put := func() (int, http.Header) {
		req, err := http.NewRequest(http.MethodPut,
			cc.front.URL+"/cluster/v1/jobs/"+id+"/journal/seg-00000001.wal",
			strings.NewReader("segment-bytes"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()                               //nolint:errcheck
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
		return resp.StatusCode, resp.Header
	}
	code, hdr := put()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("shipped PUT on full disk: HTTP %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("shipped 503 without Retry-After")
	}
	if ents, _ := os.ReadDir(filepath.Join(dir, "shipped", id)); len(ents) != 0 {
		t.Errorf("failed shipped PUT left %d files behind", len(ents))
	}
	// The fault was one-shot; the worker's retry lands.
	if code, _ := put(); code != http.StatusNoContent {
		t.Errorf("retried shipped PUT: HTTP %d, want 204", code)
	}
	w1.finishAll()
	cc.pump(t, "whole job done", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})
}
