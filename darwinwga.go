// Package darwinwga is a pure-Go implementation of Darwin-WGA
// (Turakhia, Goenka, Bejerano, Dally — HPCA 2019), a whole genome
// aligner built on the seed-filter-extend paradigm with two departures
// from classic software aligners like LASTZ:
//
//   - the filtering stage is gapped: candidate seed hits are scored with
//     Banded Smith-Waterman instead of ungapped X-drop extension, which
//     recovers the indel-dense, weakly-conserved alignments ungapped
//     filtering throws away;
//   - the extension stage uses GACT-X, a tiled X-drop algorithm that
//     aligns arbitrarily long sequences in constant traceback memory.
//
// The package also contains cycle-level models of the paper's FPGA and
// ASIC systolic-array deployments, an AXTCHAIN-style chainer, a MAF
// writer, a neutral-evolution genome simulator for reproducible
// experiments, and a harness that regenerates every table and figure of
// the paper's evaluation (see cmd/experiments).
//
// # Quickstart
//
//	cfg := darwinwga.DefaultConfig()
//	aligner, err := darwinwga.NewAligner(target, cfg) // target: []byte over ACGTN
//	if err != nil { ... }
//	res, err := aligner.Align(query)
//	for _, hsp := range res.HSPs { ... }
//
// For whole assemblies (FASTA files with many sequences) use
// AlignAssemblies, which returns chained, MAF-writable results.
//
// # Robustness
//
// Long-running calls take a context: AlignContext and
// AlignAssembliesContext stop at tile granularity when the context is
// cancelled and return the partial result together with ctx.Err().
// Config carries per-call resource budgets (MaxCandidates,
// MaxFilterTiles, MaxExtensionCells, Deadline) whose exhaustion is not
// an error — the partial result comes back with a TruncationReason
// instead. A panic in any pipeline worker is contained and surfaced as
// a *StageError, failing the call rather than the process.
//
// # Durability and resume
//
// Setting Config.CheckpointDir makes a run journal its progress to a
// crash-safe write-ahead log: completed seeding/filtering per strand
// and each finished extension anchor. A run killed mid-flight (even by
// SIGKILL) and restarted with the same configuration, target, query,
// and CheckpointDir replays the journaled work and continues where it
// stopped, producing the same Result as an uninterrupted run; a journal
// from a different run is refused with ErrCheckpointMismatch.
// Config.Retry adds per-shard retry with exponential backoff: a shard
// that keeps failing after MaxAttempts is dropped and the call returns
// a partial Result tagged TruncatedShardFailures, with the per-shard
// causes in Result.FailedShards.
//
// # Observability
//
// Setting Config.Recorder streams pipeline telemetry — stage spans,
// per-shard seeding, per-tile filter and extension work — to any
// Recorder implementation; the nil default is free (a benchmark-pinned
// zero-allocation contract). NewTracer collects a Chrome trace_event
// span tree (the CLI's -trace flag), NewPipelineMetrics folds events
// into a MetricsRegistry served as Prometheus text and expvar JSON
// (the server's /metrics endpoint), and MultiRecorder fans out to
// several at once.
//
// # Serving
//
// NewServer wraps the pipeline in a long-lived alignment service: a
// target registry that builds each assembly's seed index once, a
// bounded job queue with admission control (429 + Retry-After under
// load), and an HTTP JSON API that streams each job's MAF output block
// by block as the pipeline emits it — byte-identical to a one-shot
// AlignAssemblies run with the same parameters. The CLI front end is
// `darwin-wga serve`.
package darwinwga

import (
	"darwinwga/internal/align"
	"darwinwga/internal/chain"
	"darwinwga/internal/core"
	"darwinwga/internal/evolve"
	"darwinwga/internal/genome"
	"darwinwga/internal/obs"
	"darwinwga/internal/server"
)

// Core pipeline types, re-exported as the public API surface.
type (
	// Config holds every pipeline parameter; see DefaultConfig.
	Config = core.Config
	// FilterMode selects gapped (Darwin-WGA) or ungapped (LASTZ)
	// filtering.
	FilterMode = core.FilterMode
	// Aligner runs the pipeline against a prebuilt target index.
	Aligner = core.Aligner
	// Result is the outcome of one Align call.
	Result = core.Result
	// HSP is one final local alignment.
	HSP = core.HSP
	// Workload tallies per-stage work items (Table V's columns).
	Workload = core.Workload
	// TruncationReason explains why a Result or Report is partial
	// (cancellation, deadline, or an exhausted resource budget).
	TruncationReason = core.TruncationReason
	// StageError is a contained worker failure: a panic in one shard of
	// one pipeline stage, surfaced as an error instead of a crash.
	StageError = core.StageError
	// RetryPolicy re-runs a failed shard with exponential backoff before
	// the run degrades to a partial result (Config.Retry).
	RetryPolicy = core.RetryPolicy
	// Scoring is the substitution matrix and affine-gap model.
	Scoring = align.Scoring
	// Alignment is a local alignment with an edit transcript.
	Alignment = align.Alignment
	// Chain is an ordered, co-linear set of alignments (AXTCHAIN).
	Chain = chain.Chain
	// Assembly is a named set of sequences.
	Assembly = genome.Assembly
	// Sequence is one named nucleotide sequence.
	Sequence = genome.Sequence
	// Pair is a synthesized species pair with ground-truth orthology.
	Pair = evolve.Pair
	// PairConfig parameterizes synthetic species-pair generation.
	PairConfig = evolve.Config
	// Server is the embedded alignment-as-a-service layer; see NewServer.
	Server = server.Server
	// ServerConfig parameterizes a Server; the zero value is usable.
	ServerConfig = server.Config
	// ServerTarget is one registered target assembly with its shared,
	// prebuilt seed index.
	ServerTarget = server.Target
	// JobState is the lifecycle state of one server-side alignment job.
	JobState = server.JobState
	// JobParams are the per-job pipeline knobs a submission may set.
	JobParams = server.JobParams
	// Recorder receives pipeline telemetry (Config.Recorder); nil — the
	// default — disables instrumentation at zero cost.
	Recorder = obs.Recorder
	// Tracer is a Recorder collecting a Chrome trace_event span tree
	// (the CLI's -trace flag); load its output in Perfetto.
	Tracer = obs.Tracer
	// MetricsRegistry holds named counters, gauges, and histograms and
	// renders Prometheus text or expvar-style JSON.
	MetricsRegistry = obs.Registry
	// PipelineMetrics is a Recorder folding pipeline events into a
	// MetricsRegistry under the darwinwga_* metric names.
	PipelineMetrics = obs.PipelineMetrics
	// WorkloadAggregate is a Recorder accumulating one call's per-stage
	// workload for cheap point-in-time snapshots.
	WorkloadAggregate = obs.Aggregate
)

// Filter modes.
const (
	FilterGapped   = core.FilterGapped
	FilterUngapped = core.FilterUngapped
)

// Truncation reasons carried by partial results (Result.Truncated,
// Report.Truncated); the empty string means the run completed.
const (
	TruncatedCancelled         = core.TruncatedCancelled
	TruncatedDeadline          = core.TruncatedDeadline
	TruncatedMaxCandidates     = core.TruncatedMaxCandidates
	TruncatedMaxFilterTiles    = core.TruncatedMaxFilterTiles
	TruncatedMaxExtensionCells = core.TruncatedMaxExtensionCells
	TruncatedShardFailures     = core.TruncatedShardFailures
)

// Job lifecycle states reported by the serving layer.
const (
	JobQueued    = server.JobQueued
	JobRunning   = server.JobRunning
	JobDone      = server.JobDone
	JobFailed    = server.JobFailed
	JobCancelled = server.JobCancelled
)

// ErrCheckpointMismatch is returned when Config.CheckpointDir points at
// a journal written by a run with a different configuration, target, or
// query; resuming it would splice incompatible work into the result.
var ErrCheckpointMismatch = core.ErrCheckpointMismatch

// DefaultConfig returns Darwin-WGA's default parameters (the paper's
// Table II, with the Hf=4000 default of Section VI-B).
func DefaultConfig() Config { return core.DefaultConfig() }

// LASTZBaselineConfig returns the software baseline: the same pipeline
// with LASTZ's ungapped filter and its lower default thresholds.
func LASTZBaselineConfig() Config { return core.LASTZConfig() }

// DefaultScoring returns the paper's substitution matrix and gap
// penalties (Table IIa).
func DefaultScoring() *Scoring { return align.DefaultScoring() }

// NewAligner indexes a target sequence for repeated Align calls.
func NewAligner(target []byte, cfg Config) (*Aligner, error) {
	return core.NewAligner(target, cfg)
}

// NewTracer returns an empty trace collector; set it as Config.Recorder
// and write the collected trace with Tracer.Write after the call.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewPipelineMetrics registers the standard pipeline metric set on reg
// and returns the Recorder that feeds it.
func NewPipelineMetrics(reg *MetricsRegistry) *PipelineMetrics { return obs.NewPipelineMetrics(reg) }

// MultiRecorder fans pipeline telemetry out to several recorders; nil
// entries are dropped, and a nil result means "no telemetry".
func MultiRecorder(recs ...Recorder) Recorder { return obs.Multi(recs...) }

// NewServer builds an alignment job server over the pipeline and
// starts its workers: register targets with Server.RegisterTarget, then
// serve Server.Handler (or call Server.ListenAndServe) and drain with
// Server.Shutdown. When cfg.JournalDir is set, NewServer also replays
// the durable job journal and re-queues every job a previous process
// left unfinished (the only error path). See the internal/server
// package documentation for the HTTP API.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ReadFASTA loads an assembly from a FASTA file.
func ReadFASTA(path string) (*Assembly, error) { return genome.ReadFASTAFile(path) }

// WriteFASTA stores an assembly as a FASTA file.
func WriteFASTA(path string, a *Assembly) error { return genome.WriteFASTAFile(path, a) }

// GeneratePair synthesizes a reproducible species pair for experiments;
// see StandardPair for the paper's four evaluation pairs.
func GeneratePair(cfg PairConfig) (*Pair, error) { return evolve.Generate(cfg) }

// StandardPair returns the configuration of one of the paper's four
// evaluation pairs ("ce11-cb4", "dm6-dp4", "dm6-droYak2",
// "dm6-droSim1") at the given genome scale (0 = default 1/100 of the
// real assembly sizes).
func StandardPair(name string, scale float64) (PairConfig, bool) {
	return evolve.StandardPair(name, scale)
}

// StandardPairNames lists the paper's evaluation pairs in Table III
// order.
func StandardPairNames() []string {
	return append([]string{}, evolve.StandardPairNames...)
}
