package ucsc

import (
	"bytes"
	"strings"
	"testing"

	"darwinwga/internal/chain"
)

func sampleAXT() []AXTBlock {
	return []AXTBlock{
		{Number: 0, TName: "chr1", TStart: 101, TEnd: 110, QName: "chr2",
			QStart: 201, QEnd: 210, QStrand: '+', Score: 3500,
			TText: "ACGTACGTAC", QText: "ACGTACGTAC"},
		{Number: 1, TName: "chr1", TStart: 500, TEnd: 504, QName: "chr3",
			QStart: 10, QEnd: 15, QStrand: '-', Score: 900,
			TText: "AC-GTA", QText: "ACCGTA"},
	}
}

func TestAXTRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAXT(&buf, sampleAXT()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAXT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleAXT()
	if len(got) != len(want) {
		t.Fatalf("got %d blocks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("block %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestAXTRejectsMalformed(t *testing.T) {
	if _, err := ReadAXT(strings.NewReader("0 chr1 1 2 chr2\nACGT\nACGT\n")); err == nil {
		t.Error("short header accepted")
	}
	if _, err := ReadAXT(strings.NewReader("0 chr1 1 4 chr2 1 4 + 100\nACGT\n")); err == nil {
		t.Error("missing query line accepted")
	}
	if _, err := ReadAXT(strings.NewReader("0 chr1 1 4 chr2 1 4 + 100\nACGT\nACG\n")); err == nil {
		t.Error("unequal texts accepted")
	}
	bad := sampleAXT()
	bad[0].QText = "AC"
	var buf bytes.Buffer
	if err := WriteAXT(&buf, bad); err == nil {
		t.Error("WriteAXT accepted unequal texts")
	}
}

func testChain() *chain.Chain {
	return &chain.Chain{
		Score: 123456,
		Blocks: []*chain.Block{
			{TStart: 100, TEnd: 200, QStart: 1000, QEnd: 1100, Score: 5000, Matches: 95},
			{TStart: 250, TEnd: 400, QStart: 1160, QEnd: 1310, Score: 7000, Matches: 140},
		},
	}
}

func TestFromChain(t *testing.T) {
	rec := FromChain(testChain(), 7, "chrT", 10000, "chrQ", 20000, '+')
	if rec.Header.Score != 123456 || rec.Header.ID != 7 {
		t.Errorf("header: %+v", rec.Header)
	}
	if rec.Header.TStart != 100 || rec.Header.TEnd != 400 {
		t.Errorf("target extent: %+v", rec.Header)
	}
	if len(rec.Sizes) != 2 || rec.Sizes[0] != 100 || rec.Sizes[1] != 150 {
		t.Errorf("sizes: %v", rec.Sizes)
	}
	if len(rec.DT) != 1 || rec.DT[0] != 50 || rec.DQ[0] != 60 {
		t.Errorf("gaps: %v %v", rec.DT, rec.DQ)
	}
	if err := rec.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestChainRoundTrip(t *testing.T) {
	recs := []ChainRecord{
		FromChain(testChain(), 1, "chrT", 10000, "chrQ", 20000, '+'),
		FromChain(testChain(), 2, "chrT", 10000, "chrQ2", 5000, '-'),
	}
	var buf bytes.Buffer
	if err := WriteChains(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChains(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i].Header != recs[i].Header {
			t.Errorf("record %d header:\n got %+v\nwant %+v", i, got[i].Header, recs[i].Header)
		}
		if len(got[i].Sizes) != len(recs[i].Sizes) {
			t.Fatalf("record %d sizes: %v vs %v", i, got[i].Sizes, recs[i].Sizes)
		}
		for j := range recs[i].Sizes {
			if got[i].Sizes[j] != recs[i].Sizes[j] {
				t.Errorf("record %d size %d mismatch", i, j)
			}
		}
		if err := got[i].Validate(); err != nil {
			t.Errorf("record %d: %v", i, err)
		}
	}
}

func TestChainValidateCatchesCorruption(t *testing.T) {
	rec := FromChain(testChain(), 1, "chrT", 10000, "chrQ", 20000, '+')
	rec.Sizes[0] = 9999
	if err := rec.Validate(); err == nil {
		t.Error("corrupted sizes validated")
	}
	empty := ChainRecord{}
	if err := empty.Validate(); err == nil {
		t.Error("empty record validated")
	}
	rec = FromChain(testChain(), 1, "chrT", 10000, "chrQ", 20000, '+')
	rec.DT = nil
	if err := rec.Validate(); err == nil {
		t.Error("missing gaps validated")
	}
}

func TestReadChainsRejectsMalformed(t *testing.T) {
	if _, err := ReadChains(strings.NewReader("100\n")); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ReadChains(strings.NewReader("chain 1 2 3\n")); err == nil {
		t.Error("short header accepted")
	}
	if _, err := ReadChains(strings.NewReader("chain 10 t 100 + 0 50 q 100 + 0 50 1\n10 5\n")); err == nil {
		t.Error("two-field block line accepted")
	}
}
