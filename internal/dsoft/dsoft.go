// Package dsoft implements the modified D-SOFT seeding stage of
// Darwin-WGA (Section III-B). The query genome is divided into chunks;
// for each chunk, seed hits against the target are grouped into diagonal
// bands (a band is the intersection of a target bin with the chunk, see
// Figure 4a). A band whose hit count reaches the threshold h produces at
// most one candidate anchor, which downstream stages filter with banded
// Smith-Waterman.
package dsoft

import (
	"fmt"

	"darwinwga/internal/genome"
	"darwinwga/internal/seed"
)

// Params configures D-SOFT. The defaults follow the paper's description:
// chunk and bin sizes large enough that closely spaced hits collapse to
// one extension, small enough not to miss hits LASTZ would find.
type Params struct {
	// ChunkSize is the query chunk length c.
	ChunkSize int
	// BinSize is the target bin (diagonal band) width b.
	BinSize int
	// Threshold is h: a band needs at least this many seed hits before
	// it emits a candidate.
	Threshold int
	// Transitions enables one transition substitution in the seed
	// (Weight+1 lookups per query position).
	Transitions bool
	// Stride samples query seed positions every Stride bases (1 = every
	// position).
	Stride int
}

// DefaultParams returns the defaults used throughout the evaluation.
func DefaultParams() Params {
	return Params{ChunkSize: 64, BinSize: 64, Threshold: 1, Transitions: true, Stride: 1}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.ChunkSize < 1 || p.BinSize < 1 || p.Threshold < 1 || p.Stride < 1 {
		return fmt.Errorf("dsoft: parameters must be positive: %+v", p)
	}
	return nil
}

// Anchor is a candidate seed hit: a target/query position pair at the
// start of the matched seed window.
type Anchor struct {
	TPos int
	QPos int
}

// Diagonal returns tpos - qpos, the anchor's diagonal.
func (a Anchor) Diagonal() int { return a.TPos - a.QPos }

// Stats reports work done during seeding; Table V's workload column
// ("Seeds") comes from here.
type Stats struct {
	// QueryPositions is the number of query seed windows examined.
	QueryPositions int
	// Lookups is the number of table lookups (Weight+1 per window when
	// transitions are enabled).
	Lookups int
	// SeedHits is the total number of (target, query) hit pairs seen.
	SeedHits int
	// Candidates is the number of anchors emitted.
	Candidates int
}

// Seeder runs D-SOFT over query chunks against a prebuilt target index.
// A Seeder is safe for concurrent use; per-call state lives on the
// stack or in the caller-provided scratch.
type Seeder struct {
	ix     *seed.Index
	params Params
}

// NewSeeder creates a seeder. The index must be non-nil: with the index
// lifecycle (eviction + reload from serialized files) in play, a nil
// index here means a caller skipped Registry.Acquire, and failing fast
// with a typed error beats a panic deep inside Collect.
func NewSeeder(ix *seed.Index, params Params) (*Seeder, error) {
	if ix == nil {
		return nil, fmt.Errorf("dsoft: nil target index")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Seeder{ix: ix, params: params}, nil
}

// Params returns the seeder's parameters.
func (s *Seeder) Params() Params { return s.params }

// Scratch holds reusable per-worker state for Collect.
type Scratch struct {
	keys   []genome.KmerKey
	counts map[int]int // band id -> hit count (reset per chunk)
	emit   map[int]bool
}

// NewScratch allocates scratch for one worker.
func NewScratch() *Scratch {
	return &Scratch{counts: make(map[int]int), emit: make(map[int]bool)}
}

// Collect appends candidate anchors for query[qStart:qEnd) (one or more
// whole chunks) to dst and returns it, accumulating statistics in stats.
// Candidates are deduplicated per diagonal band: at most one anchor per
// band per chunk, following the paper's "at most 1 seed hit is extended
// per diagonal band".
func (s *Seeder) Collect(query []byte, qStart, qEnd int, dst []Anchor, stats *Stats, scratch *Scratch) []Anchor {
	if scratch == nil {
		scratch = NewScratch()
	}
	p := s.params
	shape := s.ix.Shape()
	tLen := s.ix.TargetLen()
	if qEnd > len(query) {
		qEnd = len(query)
	}
	for chunkStart := qStart; chunkStart < qEnd; chunkStart += p.ChunkSize {
		chunkEnd := min(chunkStart+p.ChunkSize, qEnd)
		// Reset per-chunk band state.
		clear(scratch.counts)
		clear(scratch.emit)
		for qPos := chunkStart; qPos < chunkEnd; qPos += p.Stride {
			if qPos+shape.Span > len(query) {
				break
			}
			stats.QueryPositions++
			scratch.keys = scratch.keys[:0]
			if p.Transitions {
				scratch.keys = shape.TransitionKeys(query, qPos, scratch.keys)
			} else if key, ok := shape.Key(query, qPos); ok {
				scratch.keys = append(scratch.keys, key)
			}
			for _, key := range scratch.keys {
				stats.Lookups++
				for _, tPos := range s.ix.Positions(key) {
					stats.SeedHits++
					band := (int(tPos) - qPos + tLen) / p.BinSize
					c := scratch.counts[band] + 1
					scratch.counts[band] = c
					if c >= p.Threshold && !scratch.emit[band] {
						scratch.emit[band] = true
						dst = append(dst, Anchor{TPos: int(tPos), QPos: qPos})
						stats.Candidates++
					}
				}
			}
		}
	}
	return dst
}
