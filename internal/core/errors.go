package core

import (
	"errors"
	"fmt"
)

// Stage names used by StageError and the fault-injection hook
// (Config.FaultHook). They correspond to the three pipeline stages of
// Figure 4.
const (
	StageSeeding   = "seeding"
	StageFilter    = "filter"
	StageExtension = "extension"
)

// StageError reports a contained failure (a recovered panic) in one
// shard of one pipeline stage. A StageError fails the Align call that
// produced it, not the process: worker panics never escape the pipeline.
type StageError struct {
	// Stage is one of StageSeeding, StageFilter, StageExtension.
	Stage string
	// Shard identifies the failing unit of work: the worker shard for
	// seeding and filtering, the anchor index for extension.
	Shard int
	// Err is the recovered panic value (wrapped as an error when it was
	// not one already).
	Err error
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
}

func (e *StageError) Error() string {
	return fmt.Sprintf("core: %s stage, shard %d: %v", e.Stage, e.Shard, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// TruncationReason explains why a Result is partial. The empty string
// means the pipeline ran to completion.
type TruncationReason string

const (
	// TruncatedCancelled: the caller's context was cancelled mid-call.
	TruncatedCancelled TruncationReason = "cancelled"
	// TruncatedDeadline: Config.Deadline elapsed.
	TruncatedDeadline TruncationReason = "deadline"
	// TruncatedMaxCandidates: seeding stopped at Config.MaxCandidates.
	TruncatedMaxCandidates TruncationReason = "max-candidates"
	// TruncatedMaxFilterTiles: filtering stopped at Config.MaxFilterTiles.
	TruncatedMaxFilterTiles TruncationReason = "max-filter-tiles"
	// TruncatedMaxExtensionCells: extension stopped at
	// Config.MaxExtensionCells.
	TruncatedMaxExtensionCells TruncationReason = "max-extension-cells"
	// TruncatedShardFailures: one or more shards were dropped after
	// exhausting the Config.Retry policy; the per-shard causes are in
	// Result.FailedShards.
	TruncatedShardFailures TruncationReason = "shard-failures"
)

// ErrCheckpointMismatch means a checkpoint journal was written by a run
// with a different configuration, target, or query than the current
// call — resuming it would splice incompatible work into the result,
// so the call refuses. Point CheckpointDir at a fresh directory (or
// remove the stale journal) to start over.
var ErrCheckpointMismatch = errors.New("core: checkpoint journal does not match this run's config and inputs")

// errReplayedShardFailure is the cause attached to a FailedShards entry
// reconstructed from a checkpoint journal: the original error text was
// not journaled, only the fact and location of the permanent failure.
var errReplayedShardFailure = errors.New("shard failure replayed from checkpoint journal")
