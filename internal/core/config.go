// Package core implements the Darwin-WGA pipeline (Figure 4): D-SOFT
// seeding, filtering, and GACT-X extension, orchestrated across worker
// goroutines. The filtering stage is switchable between the paper's
// gapped filter (Banded Smith-Waterman) and LASTZ's ungapped X-drop
// filter, which makes the paper's central comparison — and its LASTZ
// baseline — two configurations of the same pipeline.
package core

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"darwinwga/internal/align"
	"darwinwga/internal/dsoft"
	"darwinwga/internal/faultinject"
	"darwinwga/internal/gact"
	"darwinwga/internal/obs"
	"darwinwga/internal/seed"
)

// FilterMode selects the filtering algorithm.
type FilterMode int

const (
	// FilterGapped is Darwin-WGA's Banded Smith-Waterman filter.
	FilterGapped FilterMode = iota
	// FilterUngapped is LASTZ's ungapped X-drop filter.
	FilterUngapped
)

func (m FilterMode) String() string {
	switch m {
	case FilterGapped:
		return "gapped"
	case FilterUngapped:
		return "ungapped"
	default:
		return fmt.Sprintf("FilterMode(%d)", int(m))
	}
}

// Config holds every pipeline parameter. DefaultConfig and LASTZConfig
// return the two configurations evaluated in the paper (Table II).
type Config struct {
	// SeedPattern is the spaced-seed shape (default 12-of-19).
	SeedPattern string
	// SeedMaxFreq masks seeds occurring more often in the target
	// (0 = no masking).
	SeedMaxFreq int
	// DSoft parameterizes the seeding stage.
	DSoft dsoft.Params

	// Filter selects gapped (BSW) or ungapped (LASTZ) filtering.
	Filter FilterMode
	// FilterTileSize is the BSW tile edge Tf (default 320).
	FilterTileSize int
	// FilterBand is the BSW band radius B (default 32).
	FilterBand int
	// FilterThreshold is Hf: anchors scoring below it are discarded.
	// The paper's default is 4000 for Darwin-WGA (Section VI-B) and
	// 3000 for LASTZ.
	FilterThreshold int32
	// UngappedXDrop is the drop threshold of the ungapped filter.
	UngappedXDrop int32

	// Extension parameterizes GACT-X (tile size Te, overlap O, Y-drop).
	Extension gact.Config
	// ExtensionThreshold is He: alignments scoring below it are dropped.
	ExtensionThreshold int32
	// AbsorbBand is the diagonal granularity of anchor absorption
	// (Section III-D's duplicate-suppression hash); 0 disables.
	AbsorbBand int

	// Scoring is the substitution/gap model (nil = Table IIa defaults).
	Scoring *align.Scoring
	// Workers is the goroutine count (0 = GOMAXPROCS).
	Workers int
	// BothStrands also aligns the reverse complement of the query.
	BothStrands bool

	// Resource budgets. Each is a whole-call (both strands) budget;
	// 0 means unlimited. When a budget is exhausted the pipeline stops
	// starting new work and returns the partial Result with
	// Result.Truncated set — exhaustion is graceful degradation, not an
	// error. See also AlignContext for caller-driven cancellation.

	// MaxCandidates stops seeding once this many D-SOFT candidates have
	// been emitted (checked at chunk-block granularity per worker, so
	// the final count can overshoot slightly; the reported Workload is
	// always the work actually done).
	MaxCandidates int64
	// MaxFilterTiles caps the number of filter invocations.
	MaxFilterTiles int64
	// MaxExtensionCells caps the DP cells computed during extension
	// (checked at GACT-X tile granularity).
	MaxExtensionCells int64
	// Deadline is a soft per-call wall-clock budget. Unlike a
	// context deadline it is not an error: when it elapses the call
	// returns the partial Result tagged TruncatedDeadline.
	Deadline time.Duration

	// FaultHook, when non-nil, is invoked at stage boundaries — once
	// per seeding shard, per filter shard, and per extension anchor —
	// with the stage name (StageSeeding, StageFilter, StageExtension)
	// and the shard index. It exists for deterministic fault injection
	// (see internal/faultinject); a panic from the hook is contained
	// like any worker panic and surfaces as a *StageError. Nil (the
	// default) costs nothing. Under a Retry policy the hook is invoked
	// again on every retry attempt, which is how injectors model
	// transient (fire-once) versus persistent (fire-always) faults.
	FaultHook func(stage string, shard int)

	// Recorder, when non-nil, receives pipeline telemetry: strand and
	// stage spans, per-seeding-shard seed-hit counts, per-filter-tile
	// verdicts and cells, and per-GACT-X-tile cells and latencies — the
	// span tree documented on obs.Recorder. Implementations must be
	// safe for concurrent use (events arrive from every worker
	// goroutine). Nil — the default — is free: the instrumentation
	// sites are branch-guarded, take no timestamps, and add zero
	// allocations (pinned by BenchmarkRecorderOverhead). Like FaultHook
	// and HSPHook it observes the run and cannot change it, so it is
	// excluded from the checkpoint fingerprint.
	Recorder obs.Recorder

	// TraceID and JobID carry the distributed-trace identity assigned
	// at job admission (cluster mode propagates it coordinator → worker
	// on the X-Darwinwga-Trace header). When TraceID is non-empty and
	// the Recorder implements obs.TraceIdentifier (the Tracer does,
	// including through obs.Multi), AlignContext hands the identity to
	// the recorder once at call start, so the recorded span tree is
	// taggable back to the cluster-wide trace. Observe-only: like
	// Recorder itself, both are excluded from the checkpoint
	// fingerprint, so a resumed job keeps its journal regardless of
	// trace identity.
	TraceID string
	JobID   string

	// HSPHook, when non-nil, is invoked from the extension stage's
	// orchestration goroutine each time a final alignment is produced —
	// including alignments replayed from a checkpoint journal — in the
	// pipeline's deterministic emission order: '+'-strand anchors in
	// canonical extension order (best filter score first), then the '-'
	// strand. The HSP is delivered exactly as it will appear in
	// Result.HSPs, so consumers can stream results (e.g. render MAF
	// blocks over HTTP) without waiting for the call to return. The hook
	// runs on the pipeline's critical path; keep it cheap or hand off to
	// another goroutine. Like FaultHook it does not participate in the
	// checkpoint fingerprint: it observes the result, it cannot change
	// it.
	HSPHook func(HSP)

	// Retry is the per-shard retry policy. With MaxAttempts > 1, a
	// shard that fails with a contained error (a worker panic, e.g. an
	// injected fault) is re-run with exponential backoff instead of
	// failing the call; a shard that exhausts its attempts is dropped
	// and the call degrades to a partial Result tagged
	// TruncatedShardFailures, with the per-shard causes in
	// Result.FailedShards. The zero value preserves the strict
	// behaviour: the first contained failure fails the whole call.
	Retry RetryPolicy

	// CheckpointDir, when non-empty, journals pipeline progress (input
	// fingerprints, per-strand filter survivors, per-anchor extension
	// outcomes) to an append-only journal in that directory, fsynced
	// record by record. A later call with the same config, target, and
	// query — e.g. a rerun after a SIGKILL — verifies the fingerprints,
	// replays the journaled work into the Result without recomputing
	// it, and re-enters the pipeline at the first unfinished anchor,
	// producing a Result identical to an uninterrupted run. A journal
	// written under a different config or input is refused with
	// ErrCheckpointMismatch.
	CheckpointDir string

	// CheckpointNoSync skips the per-record fsync of the checkpoint
	// journal, trading crash durability for speed. Tests use it; leave
	// it false when the journal is the crash-recovery story.
	CheckpointNoSync bool

	// CheckpointFaults injects I/O faults (transient errors, torn
	// writes, crash-at-offset) into the checkpoint writer; nil injects
	// nothing. See internal/faultinject.
	CheckpointFaults *faultinject.IOFaults
}

// RetryPolicy bounds how persistently the pipeline re-runs a failing
// shard (and how persistently the checkpoint writer re-tries a failing
// journal append). Backoff before attempt n+1 is
// BaseDelay·2^(n-1), capped at MaxDelay, with deterministic ±50%
// jitter derived from the (stage, shard, attempt) triple.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per shard; 0 and 1
	// both mean "no retry".
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (0 = retry
	// immediately).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0 = uncapped).
	MaxDelay time.Duration
}

// attempts normalizes MaxAttempts to at least one attempt.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Attempts returns the total attempt budget, normalized to at least
// one.
func (p RetryPolicy) Attempts() int { return p.attempts() }

// Backoff returns the delay to wait after failed attempt `attempt`
// (1-based): BaseDelay·2^(attempt-1) capped at MaxDelay with
// deterministic ±50% jitter derived from seed. It is the policy the
// pipeline applies to shard retries, exported so other layers (the
// cluster coordinator's per-worker request retries) share one backoff
// shape.
func (p RetryPolicy) Backoff(attempt int, seed uint64) time.Duration {
	return p.delay(attempt, seed)
}

// delay returns the backoff to sleep after failed attempt `attempt`
// (1-based), jittered deterministically by seed.
func (p RetryPolicy) delay(attempt int, seed uint64) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 20 {
		shift = 20 // past ~10^6× the base the cap always governs
	}
	d := p.BaseDelay << shift
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter to [0.5d, 1.5d): splitmix64 keeps placement stable across
	// Go releases, so retry schedules are reproducible in tests.
	frac := float64(mix64(seed)>>11) / float64(1<<53)
	return time.Duration((0.5 + frac) * float64(d))
}

// mix64 is Vigna's SplitMix64 finalizer (same as internal/faultinject's;
// duplicated to keep the dependency one-directional).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DefaultConfig returns Darwin-WGA's default parameters (Table II plus
// the Hf=4000 noise-analysis default of Section VI-B).
func DefaultConfig() Config {
	return Config{
		SeedPattern:        seed.DefaultPattern,
		SeedMaxFreq:        30,
		DSoft:              dsoft.DefaultParams(),
		Filter:             FilterGapped,
		FilterTileSize:     320,
		FilterBand:         32,
		FilterThreshold:    4000,
		UngappedXDrop:      340,
		Extension:          gact.DefaultConfig(),
		ExtensionThreshold: 4000,
		AbsorbBand:         256,
		BothStrands:        true,
	}
}

// LASTZConfig returns the iso-parameter LASTZ baseline: ungapped
// filtering with the lower default thresholds (both 3000).
func LASTZConfig() Config {
	cfg := DefaultConfig()
	cfg.Filter = FilterUngapped
	cfg.FilterThreshold = 3000
	cfg.ExtensionThreshold = 3000
	return cfg
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if _, err := seed.ParseShape(c.SeedPattern); err != nil {
		return err
	}
	if err := c.DSoft.Validate(); err != nil {
		return err
	}
	if c.FilterTileSize < 2*c.FilterBand {
		return fmt.Errorf("core: filter tile %d smaller than band span %d", c.FilterTileSize, 2*c.FilterBand)
	}
	if err := c.Extension.Validate(); err != nil {
		return err
	}
	if c.Scoring != nil {
		if err := c.Scoring.Validate(); err != nil {
			return err
		}
	}
	if c.MaxCandidates < 0 || c.MaxFilterTiles < 0 || c.MaxExtensionCells < 0 {
		return fmt.Errorf("core: negative resource budget: candidates %d, filter tiles %d, extension cells %d",
			c.MaxCandidates, c.MaxFilterTiles, c.MaxExtensionCells)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("core: negative deadline %v", c.Deadline)
	}
	if c.Retry.MaxAttempts < 0 {
		return fmt.Errorf("core: negative retry attempts %d", c.Retry.MaxAttempts)
	}
	if c.Retry.BaseDelay < 0 || c.Retry.MaxDelay < 0 {
		return fmt.Errorf("core: negative retry delay: base %v, max %v", c.Retry.BaseDelay, c.Retry.MaxDelay)
	}
	return nil
}

// fingerprint hashes every configuration field that determines the
// pipeline's output, so a checkpoint journal is only resumed under the
// configuration that wrote it. Operational knobs that cannot change
// the alignment set — Workers (anchor order is canonicalized), Retry,
// FaultHook, Recorder, the checkpoint settings themselves — are
// excluded, as is
// the wall-clock Deadline (a deadline-truncated run is inherently
// non-reproducible). Resource budgets are included: they shape the
// result.
func (c *Config) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%q maxfreq=%d dsoft=%+v filter=%d ftile=%d fband=%d hf=%d xdrop=%d",
		c.SeedPattern, c.SeedMaxFreq, c.DSoft, c.Filter, c.FilterTileSize, c.FilterBand,
		c.FilterThreshold, c.UngappedXDrop)
	fmt.Fprintf(h, " ext=%d/%d/%d he=%d absorb=%d strands=%t",
		c.Extension.TileSize, c.Extension.Overlap, c.Extension.Y,
		c.ExtensionThreshold, c.AbsorbBand, c.BothStrands)
	fmt.Fprintf(h, " budget=%d/%d/%d", c.MaxCandidates, c.MaxFilterTiles, c.MaxExtensionCells)
	sc := c.scoring()
	fmt.Fprintf(h, " scoring=%v/%d/%d", sc.Sub, sc.GapOpen, sc.GapExtend)
	return h.Sum64()
}

// Fingerprint exposes the output-shaping configuration hash to the
// serving layer, which keys its result cache on (target fp, query fp,
// config fp). Two configs with equal Fingerprints produce identical
// alignment sets for the same inputs (modulo deadline truncation, which
// the caller must exclude separately).
func (c *Config) Fingerprint() uint64 { return c.fingerprint() }

// hashBytes fingerprints an input sequence (FNV-1a 64).
func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b) //nolint:errcheck // fnv never errors
	return h.Sum64()
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) scoring() *align.Scoring {
	if c.Scoring != nil {
		return c.Scoring
	}
	return align.DefaultScoring()
}

// HSP is one final alignment produced by the pipeline ("high-scoring
// pair" in BLAST terminology). Query coordinates are on the reported
// strand: for Strand '-' they index into the reverse-complemented query.
type HSP struct {
	align.Alignment
	// Strand is '+' or '-' (query strand).
	Strand byte
	// Matches counts identical aligned bases.
	Matches int
	// FilterScore is the score the anchor achieved in the filter stage.
	FilterScore int32
}

// Workload tallies the three stages' work items — the paper's Table V
// workload columns.
type Workload struct {
	// SeedHits is the number of raw (target, query) seed hits.
	SeedHits int64
	// Candidates is the number of D-SOFT anchors (= filter tiles).
	Candidates int64
	// FilterTiles is the number of filter invocations that ran.
	FilterTiles int64
	// FilterCells is the DP cells computed during filtering.
	FilterCells int64
	// PassedFilter counts anchors above Hf.
	PassedFilter int64
	// Absorbed counts anchors skipped by the duplicate-absorption hash.
	Absorbed int64
	// ExtensionTiles is the number of GACT-X tile DPs.
	ExtensionTiles int64
	// ExtensionCells is the DP cells computed during extension.
	ExtensionCells int64
}

// Timings records wall-clock per stage.
type Timings struct {
	Seeding   time.Duration
	Filtering time.Duration
	Extension time.Duration
}

// Total returns the summed stage time.
func (t Timings) Total() time.Duration { return t.Seeding + t.Filtering + t.Extension }

// Result is the outcome of aligning one query against the target.
// A partial result (cancellation, deadline, or budget exhaustion)
// carries the HSPs completed so far, workload counters for the work
// that actually ran, and a non-empty Truncated reason.
type Result struct {
	HSPs     []HSP
	Workload Workload
	// Replayed counts the subset of Workload that was restored from a
	// checkpoint journal (Config.CheckpointDir) rather than recomputed.
	// A fresh run leaves it zero; a resumed run's actually-computed work
	// is Workload minus Replayed. Failover machinery uses it to assert
	// resume-not-recompute.
	Replayed Workload
	Timings  Timings
	// Truncated is non-empty when the pipeline stopped early; the
	// result is then a valid prefix of the full computation.
	Truncated TruncationReason
	// FailedShards lists the shards dropped after exhausting the Retry
	// policy (capped at a small number), one *StageError per shard with
	// its final cause. Non-empty only when Truncated is
	// TruncatedShardFailures.
	FailedShards []*StageError
}
