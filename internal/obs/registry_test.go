package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-2.5)
	g.Add(1)
	if got := g.Value(); got != 8.5 {
		t.Fatalf("gauge = %g, want 8.5", got)
	}
}

func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("darwinwga_test_ops_total", "test")
	g := reg.Gauge("darwinwga_test_level", "test")
	h := reg.Histogram("darwinwga_test_hist", "test", []float64{1, 10, 100})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to an upper bound lands in that bucket (le is inclusive), and
// the exposition is cumulative ending at +Inf == Count.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("darwinwga_test_seconds", "test", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0001, 2, 4, 4.0001, 100} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	wantBounds := []float64{1, 2, 4, math.Inf(1)}
	wantCum := []int64{2, 4, 5, 7} // <=1: {0.5, 1}; <=2: +{1.0001, 2}; <=4: +{4}; +Inf: all
	if len(bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
	}
	for i := range bounds {
		if bounds[i] != wantBounds[i] {
			t.Errorf("bounds[%d] = %g, want %g", i, bounds[i], wantBounds[i])
		}
		if cum[i] != wantCum[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], wantCum[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if want := 0.5 + 1 + 1.0001 + 2 + 4 + 4.0001 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
}

// TestHistogramQuantile pins the interpolated-quantile estimate the
// server's adaptive Retry-After is computed from.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("darwinwga_test_q_seconds", "test", []float64{1, 2, 4})

	if got := h.Quantile(0.9); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}

	// Ten observations in (1, 2]: every quantile interpolates inside
	// the (1, 2] bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("p50 = %g, want 1.5 (midpoint of (1,2])", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("p100 = %g, want 2 (bucket upper bound)", got)
	}

	// An observation past every bound lands in +Inf; a quantile ranking
	// into it reports the largest finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 with +Inf sample = %g, want 4 (largest finite bound)", got)
	}

	// q outside (0, 1] is clamped/zeroed.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q=0 quantile = %g, want 0", got)
	}
	if got, gotClamped := h.Quantile(1), h.Quantile(7); got != gotClamped {
		t.Errorf("q>1 not clamped: %g vs %g", gotClamped, got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad ExpBuckets did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestWritePrometheusGolden pins the text exposition format: HELP/TYPE
// headers, labeled series sharing one family header, cumulative
// histogram buckets with le labels, _sum and _count lines.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`darwinwga_jobs_rejected_total{reason="queue_full"}`, "rejections").Add(3)
	reg.Counter(`darwinwga_jobs_rejected_total{reason="oversize"}`, "rejections").Add(1)
	reg.Counter("darwinwga_core_aligns_total", "align calls").Add(2)
	reg.Gauge("darwinwga_server_queue_depth", "queue depth").Set(5)
	h := reg.Histogram("darwinwga_jobs_run_seconds", "run time", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(10)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP darwinwga_core_aligns_total align calls
# TYPE darwinwga_core_aligns_total counter
darwinwga_core_aligns_total 2
# HELP darwinwga_jobs_rejected_total rejections
# TYPE darwinwga_jobs_rejected_total counter
darwinwga_jobs_rejected_total{reason="oversize"} 1
darwinwga_jobs_rejected_total{reason="queue_full"} 3
# HELP darwinwga_jobs_run_seconds run time
# TYPE darwinwga_jobs_run_seconds histogram
darwinwga_jobs_run_seconds_bucket{le="0.5"} 1
darwinwga_jobs_run_seconds_bucket{le="2"} 2
darwinwga_jobs_run_seconds_bucket{le="+Inf"} 3
darwinwga_jobs_run_seconds_sum 11.25
darwinwga_jobs_run_seconds_count 3
# HELP darwinwga_server_queue_depth queue depth
# TYPE darwinwga_server_queue_depth gauge
darwinwga_server_queue_depth 5
`
	if got := b.String(); got != want {
		t.Errorf("prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("darwinwga_test_total", "t").Add(7)
	reg.GaugeFunc("darwinwga_test_gauge", "t", func() float64 { return 1.5 })
	reg.Histogram("darwinwga_test_seconds", "t", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(b.String()), &v); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, b.String())
	}
	if v["darwinwga_test_total"] != float64(7) {
		t.Errorf("counter in JSON = %v", v["darwinwga_test_total"])
	}
	if v["darwinwga_test_gauge"] != 1.5 {
		t.Errorf("gauge in JSON = %v", v["darwinwga_test_gauge"])
	}
	hist, ok := v["darwinwga_test_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("histogram in JSON = %v", v["darwinwga_test_seconds"])
	}
	// String() is the expvar.Var view of the same bytes.
	if reg.String() != b.String() {
		t.Error("String() differs from WriteJSON output")
	}
}

func TestRegistryIdempotentAndKindConflict(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("darwinwga_test_total", "t")
	c2 := reg.Counter("darwinwga_test_total", "t")
	if c1 != c2 {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	reg.Gauge("darwinwga_test_total", "t")
}

func TestBadMetricNamesPanic(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"", "1bad", "has space", `bad{label="x"`, "{}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			reg.Counter(name, "t")
		}()
	}
}
