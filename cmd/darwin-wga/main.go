// Command darwin-wga aligns a query genome against a target genome with
// the Darwin-WGA pipeline (D-SOFT seeding, gapped Banded-Smith-Waterman
// filtering, GACT-X extension) and writes MAF plus a chain summary.
//
// Usage:
//
//	darwin-wga -target target.fa -query query.fa [-out out.maf] [flags]
//	darwin-wga -pair ce11-cb4 -scale 0.004 [-out out.maf] [flags]
//
// The second form synthesizes one of the paper's evaluation species
// pairs instead of reading FASTA files.
//
// A run can be bounded with -timeout (soft wall-clock budget) or
// interrupted with SIGINT/SIGTERM; in both cases the partial alignments
// computed so far are still written, and the summary is tagged
// (truncated).
//
// With -checkpoint <dir> the pipeline journals its progress to a
// crash-safe write-ahead log in <dir>; a killed run rerun with the same
// flags resumes from the journal and produces byte-identical output.
// -retries (with -retry-delay/-retry-max-delay backoff) re-runs failed
// pipeline shards before degrading to a partial result. The final MAF
// is written atomically: to <out>.tmp first, fsynced, then renamed over
// <out>, so an existing output file is never left half-overwritten.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"darwinwga"
	"darwinwga/internal/checkpoint"
	"darwinwga/internal/faultinject"
	"darwinwga/internal/stats"
)

// options collects every flag so run stays testable without a real
// command line.
type options struct {
	targetPath, queryPath string
	pairName              string
	scale                 float64
	outPath               string
	ungapped              bool
	hf, he                int32
	workers               int
	oneStrand             bool
	topChains             int
	timeout               time.Duration
	checkpointDir         string
	retries               int
	retryDelay            time.Duration
	retryMaxDelay         time.Duration
}

func main() {
	var (
		opts options
		hf   = flag.Int("hf", 0, "filter threshold Hf (0 = configuration default)")
		he   = flag.Int("he", 0, "extension threshold He (0 = configuration default)")
	)
	flag.StringVar(&opts.targetPath, "target", "", "target genome FASTA")
	flag.StringVar(&opts.queryPath, "query", "", "query genome FASTA")
	flag.StringVar(&opts.pairName, "pair", "", "synthesize a standard pair instead (ce11-cb4, dm6-dp4, dm6-droYak2, dm6-droSim1)")
	flag.Float64Var(&opts.scale, "scale", 0.01, "genome scale for -pair (fraction of real assembly size)")
	flag.StringVar(&opts.outPath, "out", "", "MAF output file (default stdout)")
	flag.BoolVar(&opts.ungapped, "ungapped", false, "use LASTZ-style ungapped filtering (baseline mode)")
	flag.IntVar(&opts.workers, "workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flag.BoolVar(&opts.oneStrand, "forward-only", false, "skip the reverse-complement strand")
	flag.IntVar(&opts.topChains, "top", 10, "number of top chains to summarize")
	flag.DurationVar(&opts.timeout, "timeout", 0, "soft wall-clock budget; on expiry the partial result is still written (0 = none)")
	flag.StringVar(&opts.checkpointDir, "checkpoint", "", "journal progress to this directory; a killed run rerun with the same flags resumes from it")
	flag.IntVar(&opts.retries, "retries", 0, "re-run a failed pipeline shard up to this many extra times before dropping it (0 = fail the call on first shard failure)")
	flag.DurationVar(&opts.retryDelay, "retry-delay", 100*time.Millisecond, "base backoff before a shard retry (doubles per attempt, with jitter)")
	flag.DurationVar(&opts.retryMaxDelay, "retry-max-delay", 5*time.Second, "cap on the per-retry backoff delay")
	flag.Parse()
	opts.hf, opts.he = int32(*hf), int32(*he)

	// SIGINT/SIGTERM cancel the pipeline; run still writes whatever was
	// aligned before the signal landed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, opts options) error {
	switch {
	case opts.scale <= 0:
		return fmt.Errorf("-scale must be positive, got %g", opts.scale)
	case opts.topChains < 0:
		return fmt.Errorf("-top must be non-negative, got %d", opts.topChains)
	case opts.timeout < 0:
		return fmt.Errorf("-timeout must be non-negative, got %v", opts.timeout)
	case opts.retries < 0:
		return fmt.Errorf("-retries must be non-negative, got %d", opts.retries)
	case opts.retryDelay < 0:
		return fmt.Errorf("-retry-delay must be non-negative, got %v", opts.retryDelay)
	case opts.retryMaxDelay < 0:
		return fmt.Errorf("-retry-max-delay must be non-negative, got %v", opts.retryMaxDelay)
	}

	var target, query *darwinwga.Assembly
	switch {
	case opts.pairName != "":
		cfg, ok := darwinwga.StandardPair(opts.pairName, opts.scale)
		if !ok {
			return fmt.Errorf("unknown pair %q (want one of %v)", opts.pairName, darwinwga.StandardPairNames())
		}
		pair, err := darwinwga.GeneratePair(cfg)
		if err != nil {
			return err
		}
		target, query = pair.Target, pair.Query
		fmt.Fprintf(os.Stderr, "synthesized %s: target %s, query %s\n", opts.pairName, target, query)
	case opts.targetPath != "" && opts.queryPath != "":
		var err error
		if target, err = darwinwga.ReadFASTA(opts.targetPath); err != nil {
			return err
		}
		if query, err = darwinwga.ReadFASTA(opts.queryPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need either -pair or both -target and -query")
	}

	cfg := darwinwga.DefaultConfig()
	if opts.ungapped {
		cfg = darwinwga.LASTZBaselineConfig()
	}
	if opts.hf != 0 {
		cfg.FilterThreshold = opts.hf
	}
	if opts.he != 0 {
		cfg.ExtensionThreshold = opts.he
	}
	cfg.Workers = opts.workers
	cfg.BothStrands = !opts.oneStrand
	cfg.Deadline = opts.timeout
	cfg.CheckpointDir = opts.checkpointDir
	if opts.retries > 0 {
		cfg.Retry = darwinwga.RetryPolicy{
			MaxAttempts: opts.retries + 1,
			BaseDelay:   opts.retryDelay,
			MaxDelay:    opts.retryMaxDelay,
		}
	}
	cfg.CheckpointFaults = crashFaultsFromEnv()

	rep, alignErr := darwinwga.AlignAssembliesContext(ctx, target, query, cfg)
	if rep == nil {
		return alignErr
	}
	if alignErr != nil {
		fmt.Fprintf(os.Stderr, "interrupted (%v): writing partial results\n", alignErr)
	}

	if opts.outPath != "" {
		if err := writeMAFAtomic(rep, opts.outPath); err != nil {
			return err
		}
	} else if err := rep.WriteMAF(os.Stdout); err != nil {
		return err
	}

	// A complete run has no further use for its journal; removing it
	// keeps a later run with different inputs from tripping over a stale
	// ErrCheckpointMismatch. Partial runs keep theirs for resuming.
	if opts.checkpointDir != "" && alignErr == nil && rep.Truncated == "" {
		if err := checkpoint.Remove(opts.checkpointDir); err != nil {
			fmt.Fprintf(os.Stderr, "warning: removing completed checkpoint journal: %v\n", err)
		}
	}

	trunc := ""
	if rep.Truncated != "" {
		trunc = fmt.Sprintf(" (truncated: %s)", rep.Truncated)
	}
	w := rep.Workload
	fmt.Fprintf(os.Stderr, "\nfilter mode: %s%s\n", cfg.Filter, trunc)
	fmt.Fprintf(os.Stderr, "workload: %s seed hits, %s filter tiles, %s passed, %s extension tiles\n",
		stats.Comma(w.SeedHits), stats.Comma(w.FilterTiles), stats.Comma(w.PassedFilter), stats.Comma(w.ExtensionTiles))
	fmt.Fprintf(os.Stderr, "timings: seeding %v, filtering %v, extension %v\n",
		rep.Timings.Seeding, rep.Timings.Filtering, rep.Timings.Extension)
	fmt.Fprintf(os.Stderr, "alignments: %d HSPs in %d chains, %s matched bp%s\n",
		len(rep.HSPs), len(rep.Chains), stats.Comma(int64(rep.TotalMatches())), trunc)
	for i, s := range rep.TopChainScores(opts.topChains) {
		fmt.Fprintf(os.Stderr, "chain %2d: score %s\n", i+1, stats.Comma(s))
	}
	return alignErr
}

// writeMAFAtomic writes the report's MAF to path via a temp file in the
// same directory, fsyncs it, and renames it into place, so a crash at
// any point leaves either the previous file or the complete new one —
// never a torn mixture.
func writeMAFAtomic(rep *darwinwga.Report, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = rep.WriteMAF(f)
	if err == nil {
		err = f.Sync()
	}
	// Close errors matter: on a full or failing filesystem the data may
	// only be rejected at close time.
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("closing %s: %w", tmp, cerr)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return checkpoint.SyncDir(filepath.Dir(path))
}

// crashFaultsFromEnv builds the deterministic I/O fault plan the
// crash–resume end-to-end test injects into a child process:
//
//	DARWINWGA_CRASH_AFTER_CKPT_WRITES=N   SIGKILL self on the Nth
//	                                      (1-based) checkpoint write
//	DARWINWGA_CRASH_SHORT=K               first write K bytes of that
//	                                      record's frame (torn write)
//	DARWINWGA_IOERR_ON_CKPT_WRITE=N       fail the Nth checkpoint write
//	                                      with a transient error
//
// Unset (the normal case) returns nil — no injection.
func crashFaultsFromEnv() *faultinject.IOFaults {
	var rules []faultinject.IORule
	if hit, ok := envHit("DARWINWGA_CRASH_AFTER_CKPT_WRITES"); ok {
		short := 0
		if s, ok := envHit("DARWINWGA_CRASH_SHORT"); ok {
			short = s
		}
		rules = append(rules, faultinject.IORule{
			Op: faultinject.OpWrite, Hit: hit,
			Action: faultinject.IOCrash, Short: short,
		})
	}
	if hit, ok := envHit("DARWINWGA_IOERR_ON_CKPT_WRITE"); ok {
		rules = append(rules, faultinject.IORule{
			Op: faultinject.OpWrite, Hit: hit, Action: faultinject.IOErr,
		})
	}
	if len(rules) == 0 {
		return nil
	}
	return faultinject.NewIO(rules...)
}

// envHit parses a positive integer fault-injection variable; malformed
// values are ignored with a warning rather than failing a real run.
func envHit(name string) (int, bool) {
	s := os.Getenv(name)
	if s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 1 {
		fmt.Fprintf(os.Stderr, "warning: ignoring bad %s=%q\n", name, s)
		return 0, false
	}
	return n, true
}
