// Command darwin-wga aligns a query genome against a target genome with
// the Darwin-WGA pipeline (D-SOFT seeding, gapped Banded-Smith-Waterman
// filtering, GACT-X extension) and writes MAF plus a chain summary.
//
// Usage:
//
//	darwin-wga -target target.fa -query query.fa [-out out.maf] [flags]
//	darwin-wga -pair ce11-cb4 -scale 0.004 [-out out.maf] [flags]
//	darwin-wga serve -register dm6=dm6.fa [-addr host:port] [flags]
//	darwin-wga index build -target dm6.fa -out idx/dm6.dwx [flags]
//	darwin-wga index inspect|verify -in idx/dm6.dwx [flags]
//	darwin-wga version
//
// The second form synthesizes one of the paper's evaluation species
// pairs instead of reading FASTA files. The serve subcommand runs the
// alignment job server (see internal/server): targets are indexed once
// at startup, jobs are submitted over an HTTP JSON API, and each job's
// MAF is chunk-streamed as it is computed. SIGINT/SIGTERM drain the
// server gracefully.
//
// A one-shot run can be bounded with -timeout (soft wall-clock budget)
// or interrupted with SIGINT/SIGTERM; in both cases the partial
// alignments computed so far are still written, and the summary is
// tagged (truncated).
//
// With -checkpoint <dir> the pipeline journals its progress to a
// crash-safe write-ahead log in <dir>; a killed run rerun with the same
// flags resumes from the journal and produces byte-identical output.
// -retries (with -retry-delay/-retry-max-delay backoff) re-runs failed
// pipeline shards before degrading to a partial result. The final MAF
// is written atomically: to <out>.tmp first, fsynced, then renamed over
// <out>, so an existing output file is never left half-overwritten.
//
// Telemetry: -trace out.json records the run's span tree (strands,
// stages, per-tile work) as Chrome trace_event JSON for Perfetto;
// -cpuprofile/-memprofile write pprof profiles. The serve subcommand
// exposes a Prometheus registry at /metrics, takes -log-format
// text|json for structured slog output, and mounts net/http/pprof
// under /debug/pprof/ with -pprof.
//
// Exit status: 0 on success, 1 on a runtime error (including an
// interrupted one-shot run), 2 on a usage error (bad flag or unknown
// subcommand).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"darwinwga"
	"darwinwga/internal/checkpoint"
	"darwinwga/internal/cluster"
	"darwinwga/internal/faultinject"
	"darwinwga/internal/obs"
	"darwinwga/internal/stats"
)

// options collects every flag so run stays testable without a real
// command line.
type options struct {
	targetPath, queryPath string
	pairName              string
	scale                 float64
	outPath               string
	ungapped              bool
	hf, he                int32
	workers               int
	oneStrand             bool
	topChains             int
	timeout               time.Duration
	checkpointDir         string
	retries               int
	retryDelay            time.Duration
	retryMaxDelay         time.Duration
	tracePath             string
	cpuProfile            string
	memProfile            string
}

func main() {
	os.Exit(cliMain(os.Args[1:]))
}

// cliMain dispatches subcommands and maps outcomes onto exit codes:
// 0 success, 1 runtime error, 2 usage error. It is the testable
// entry point — main only adds os.Exit.
func cliMain(args []string) int {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "serve":
			return serveMain(args[1:])
		case "index":
			return indexMain(args[1:])
		case "version":
			printVersion(os.Stdout)
			return 0
		case "align":
			// Explicit spelling of the default one-shot mode.
			return alignMain(args[1:])
		default:
			fmt.Fprintf(os.Stderr, "darwin-wga: unknown command %q (want align, index, serve, or version)\n", args[0])
			return 2
		}
	}
	return alignMain(args)
}

// printVersion reports the module version (when built with module
// metadata), the Go toolchain, and the platform.
func printVersion(w io.Writer) {
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	fmt.Fprintf(w, "darwin-wga %s %s %s/%s\n", version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// alignMain is the classic one-shot CLI: parse flags, align, write MAF.
func alignMain(args []string) int {
	fs := flag.NewFlagSet("darwin-wga", flag.ContinueOnError)
	var (
		opts        options
		showVersion = fs.Bool("version", false, "print version and exit")
		hf          = fs.Int("hf", 0, "filter threshold Hf (0 = configuration default)")
		he          = fs.Int("he", 0, "extension threshold He (0 = configuration default)")
	)
	fs.StringVar(&opts.targetPath, "target", "", "target genome FASTA")
	fs.StringVar(&opts.queryPath, "query", "", "query genome FASTA")
	fs.StringVar(&opts.pairName, "pair", "", "synthesize a standard pair instead (ce11-cb4, dm6-dp4, dm6-droYak2, dm6-droSim1)")
	fs.Float64Var(&opts.scale, "scale", 0.01, "genome scale for -pair (fraction of real assembly size)")
	fs.StringVar(&opts.outPath, "out", "", "MAF output file (default stdout)")
	fs.BoolVar(&opts.ungapped, "ungapped", false, "use LASTZ-style ungapped filtering (baseline mode)")
	fs.IntVar(&opts.workers, "workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	fs.BoolVar(&opts.oneStrand, "forward-only", false, "skip the reverse-complement strand")
	fs.IntVar(&opts.topChains, "top", 10, "number of top chains to summarize")
	fs.DurationVar(&opts.timeout, "timeout", 0, "soft wall-clock budget; on expiry the partial result is still written (0 = none)")
	fs.StringVar(&opts.checkpointDir, "checkpoint", "", "journal progress to this directory; a killed run rerun with the same flags resumes from it")
	fs.IntVar(&opts.retries, "retries", 0, "re-run a failed pipeline shard up to this many extra times before dropping it (0 = fail the call on first shard failure)")
	fs.DurationVar(&opts.retryDelay, "retry-delay", 100*time.Millisecond, "base backoff before a shard retry (doubles per attempt, with jitter)")
	fs.DurationVar(&opts.retryMaxDelay, "retry-max-delay", 5*time.Second, "cap on the per-retry backoff delay")
	fs.StringVar(&opts.tracePath, "trace", "", "write a Chrome trace_event JSON span tree of the run here (open in Perfetto or about://tracing)")
	fs.StringVar(&opts.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run here")
	fs.StringVar(&opts.memProfile, "memprofile", "", "write a pprof heap profile (taken after the run) here")
	if err := fs.Parse(args); err != nil {
		// The flag package has already printed the error and usage.
		return 2
	}
	if *showVersion {
		printVersion(os.Stdout)
		return 0
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "darwin-wga: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	opts.hf, opts.he = int32(*hf), int32(*he)

	// SIGINT/SIGTERM cancel the pipeline; run still writes whatever was
	// aligned before the signal landed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga:", err)
		return 1
	}
	return 0
}

// registerList collects repeated -register name=path flags.
type registerList []registerSpec

type registerSpec struct{ name, path string }

func (r *registerList) String() string {
	parts := make([]string, len(*r))
	for i, s := range *r {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (r *registerList) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*r = append(*r, registerSpec{name: name, path: path})
	return nil
}

// serveMain runs the alignment job server until SIGINT/SIGTERM, then
// drains it gracefully: running jobs finish (bounded by -drain-grace),
// queued jobs are cancelled, and in-flight MAF streams complete.
func serveMain(args []string) int {
	fs := flag.NewFlagSet("darwin-wga serve", flag.ContinueOnError)
	var (
		registers   registerList
		role        = fs.String("role", "standalone", "standalone, coordinator, or worker")
		coordURL    = fs.String("coordinator", "", "coordinator base URL to register with (worker role)")
		coordList   = fs.String("coordinators", "", "comma-separated additional coordinator URLs the worker fails over to (worker role)")
		advertise   = fs.String("advertise", "", "base URL the coordinator dials back (worker role; default http://<bound addr>)")
		workerID    = fs.String("worker-id", "", "stable worker identity across restarts (worker role; default the bound addr)")
		standbyOf   = fs.String("standby-of", "", "run as a warm standby of this leader coordinator URL (coordinator role; requires -journal-dir)")
		standbyURLs = fs.String("standbys", "", "comma-separated standby coordinator URLs advertised to workers (coordinator role)")
		advURL      = fs.String("advertise-url", "", "base URL workers dial this coordinator back at (coordinator role; default http://<addr>)")
		shipEvery   = fs.Duration("ship-interval", 2*time.Second, "how often a running job's checkpoint segments ship to its coordinator (worker role with -checkpoint-root)")
		shardTgts   = fs.String("shard-dispatch", "", `comma-separated targets whose jobs scatter as per-shard work units across every worker holding the target ("*" = all targets; coordinator role)`)
		shardUnits  = fs.Int("shard-units", 0, "work units per strand a sharded job decomposes into (coordinator role; 0 = default)")
		replication = fs.Int("replication", 2, "replicas considered per target (coordinator role)")
		leaseTTL    = fs.Duration("lease-ttl", 10*time.Second, "worker lease lifetime without a heartbeat (coordinator role)")
		pollEvery   = fs.Duration("poll-interval", 500*time.Millisecond, "worker status poll cadence per routed job (coordinator role)")
		dispatchTO  = fs.Duration("dispatch-timeout", 10*time.Second, "per-request timeout talking to workers (coordinator role)")
		addr        = fs.String("addr", "127.0.0.1:8053", "listen address (host:port, port 0 picks a free port)")
		jobWorkers  = fs.Int("job-workers", 2, "jobs aligned concurrently")
		queueDepth  = fs.Int("queue", 16, "submission queue depth; a full queue answers 429")
		maxInflight = fs.Int("max-inflight", 8, "per-client queued+running job cap (-1 = unlimited)")
		maxQueryMB  = fs.Int("max-query-mb", 64, "largest accepted query in MiB of bases")
		maxDeadline = fs.Duration("max-deadline", 0, "clamp (and default) for per-job soft deadlines (0 = none)")
		retryAfter  = fs.Duration("retry-after", 2*time.Second, "Retry-After hint on 429 responses")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long shutdown lets running jobs finish")
		retain      = fs.Int("retain", 256, "finished jobs kept queryable")
		ckptRoot    = fs.String("checkpoint-root", "", "per-job crash-safe journals under this directory (empty = off)")
		journalDir  = fs.String("journal-dir", "", "durable job store: lifecycle WAL + query/MAF artifacts; replayed on startup (empty = off)")
		stallWindow = fs.Duration("stall-window", 2*time.Minute, "cancel+retry a job with no pipeline progress for this long (0 = watchdog off)")
		stallRetry  = fs.Int("stall-retries", 1, "re-runs allowed per stalled job before it fails (0 = none)")
		stallDelay  = fs.Duration("stall-retry-delay", time.Second, "pause before re-running a stalled job")
		brkThresh   = fs.Int("breaker-threshold", 5, "consecutive job failures tripping a target's circuit breaker (0 = breaker off)")
		brkCooldown = fs.Duration("breaker-cooldown", 30*time.Second, "how long a tripped breaker rejects before probing")
		memHighMB   = fs.Int64("mem-highwater-mb", 0, "reject submissions that would push the heap past this many MiB (0 = off)")
		indexDir    = fs.String("index-dir", "", "directory of serialized target indexes (<name>.dwx, written by darwin-wga index build); matching files load near-instantly instead of rebuilding")
		indexBudMB  = fs.Int64("index-budget-mb", 0, "evict least-recently-used idle target indexes past this many MiB resident (0 = half of -mem-highwater-mb, -1 = eviction off)")
		resCacheMB  = fs.Int64("result-cache-mb", 64, "cache finished MAF results up to this many MiB, serving repeated identical submissions without a pipeline run (0 = off)")
		seedPattern = fs.String("seed-pattern", "", "spaced-seed pattern shaping every target index (default: the pipeline default; must match any serialized indexes)")
		traceCap    = fs.Int("trace-events", 4096, "span-buffer events retained per job for GET /v1/jobs/{id}/trace (-1 = tracing off)")
		workers     = fs.Int("workers", 0, "pipeline worker goroutines per job (0 = GOMAXPROCS)")
		enablePprof = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the API handler")
		logFormat   = fs.String("log-format", "text", "operational log format: text or json")
	)
	fs.Var(&registers, "register", "name=path of a target FASTA to index at startup (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "darwin-wga serve: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "darwin-wga serve: -log-format must be text or json, got %q\n", *logFormat)
		return 2
	}

	switch *role {
	case "standalone", "worker":
	case "coordinator":
		return coordinatorMain(coordinatorOptions{
			addr:          *addr,
			shardDispatch: splitURLList(*shardTgts),
			shardUnits:    *shardUnits,
			replication:   *replication,
			leaseTTL:      *leaseTTL,
			poll:          *pollEvery,
			dispatchTO:    *dispatchTO,
			maxQuery:      *maxQueryMB << 20,
			journalDir:    *journalDir,
			standbyOf:     strings.TrimSuffix(*standbyOf, "/"),
			standbys:      splitURLList(*standbyURLs),
			advertise:     strings.TrimSuffix(*advURL, "/"),
			log:           logger,
		})
	default:
		fmt.Fprintf(os.Stderr, "darwin-wga serve: -role must be standalone, coordinator, or worker, got %q\n", *role)
		return 2
	}
	if *role == "worker" && *coordURL == "" {
		fmt.Fprintln(os.Stderr, "darwin-wga serve: -role=worker requires -coordinator")
		return 2
	}

	pipeline := darwinwga.DefaultConfig()
	pipeline.Workers = *workers
	if *seedPattern != "" {
		pipeline.SeedPattern = *seedPattern
	}
	// -index-budget-mb follows the CLI's "0 = default, negative = off"
	// convention; the library uses the same encoding, so only the MiB
	// scaling needs mapping.
	indexBudget := *indexBudMB << 20
	if *indexBudMB < 0 {
		indexBudget = -1
	}
	// On the CLI "0" reads as "off"; the library uses 0 for "default"
	// and negatives for "off", so map explicitly.
	for _, z := range []*int{stallRetry, brkThresh} {
		if *z <= 0 {
			*z = -1
		}
	}
	if *stallWindow <= 0 {
		*stallWindow = -1
	}
	// The crash-injection env contract (DARWINWGA_CRASH_AFTER_CKPT_WRITES
	// and friends) applies to the per-job pipeline checkpoints in serve
	// mode too — the SIGKILL-restart e2e test uses it to die mid-job.
	pipeline.CheckpointFaults = crashFaultsFromEnv()
	srv, err := darwinwga.NewServer(darwinwga.ServerConfig{
		Addr:                 *addr,
		Pipeline:             pipeline,
		JobWorkers:           *jobWorkers,
		QueueDepth:           *queueDepth,
		MaxInFlightPerClient: *maxInflight,
		MaxQueryBases:        *maxQueryMB << 20,
		MaxDeadline:          *maxDeadline,
		RetryAfter:           *retryAfter,
		DrainGrace:           *drainGrace,
		RetainJobs:           *retain,
		CheckpointRoot:       *ckptRoot,
		JournalDir:           *journalDir,
		StallWindow:          *stallWindow,
		StallRetries:         *stallRetry,
		StallRetryDelay:      *stallDelay,
		BreakerThreshold:     *brkThresh,
		BreakerCooldown:      *brkCooldown,
		MemoryHighWater:      *memHighMB << 20,
		IndexDir:             *indexDir,
		IndexBudget:          indexBudget,
		ResultCacheBytes:     *resCacheMB << 20,
		TraceEventCap:        *traceCap,
		ShipInterval:         *shipEvery,
		ShardFaults:          shardFaultsFromEnv(),
		Log:                  logger,
		EnablePprof:          *enablePprof,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	for _, reg := range registers {
		asm, err := darwinwga.ReadFASTA(reg.path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "darwin-wga serve: loading %s: %v\n", reg.path, err)
			return 1
		}
		if _, err := srv.RegisterTarget(reg.name, asm); err != nil {
			fmt.Fprintf(os.Stderr, "darwin-wga serve: registering %s: %v\n", reg.name, err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	// The bound address line is load-bearing: with -addr :0 it is how
	// callers (and the e2e test) discover the actual port.
	fmt.Fprintf(os.Stderr, "darwin-wga serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *role == "worker" {
		id := *workerID
		if id == "" {
			id = ln.Addr().String()
		}
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		agent, err := cluster.NewAgent(cluster.AgentConfig{
			Coordinator:  strings.TrimSuffix(*coordURL, "/"),
			Coordinators: splitURLList(*coordList),
			WorkerID:     id,
			Advertise:    adv,
			Server:       srv,
			Log:          logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
			return 1
		}
		go agent.Run(ctx) //nolint:errcheck // exits with ctx at shutdown
	}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("signal received, draining")
		drained <- srv.Shutdown(context.Background())
	}()

	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	if err := <-drained; err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve: drain:", err)
		return 1
	}
	logger.Info("drained, exiting")
	return 0
}

// coordinatorOptions is the flag subset the coordinator role consumes.
type coordinatorOptions struct {
	addr          string
	shardDispatch []string
	shardUnits    int
	replication   int
	leaseTTL      time.Duration
	poll          time.Duration
	dispatchTO    time.Duration
	maxQuery      int
	journalDir    string
	standbyOf     string
	standbys      []string
	advertise     string
	log           *slog.Logger
}

// splitURLList parses a comma-separated URL list flag, dropping empties
// and trailing slashes.
func splitURLList(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

// clusterConfig builds the coordinator configuration shared by the
// leader path and the standby's promotion path.
func (opts coordinatorOptions) clusterConfig() cluster.Config {
	return cluster.Config{
		Addr:              opts.addr,
		AdvertiseURL:      opts.advertise,
		ShardDispatch:     opts.shardDispatch,
		ShardUnits:        opts.shardUnits,
		Standbys:          opts.standbys,
		ReplicationFactor: opts.replication,
		LeaseTTL:          opts.leaseTTL,
		PollInterval:      opts.poll,
		DispatchTimeout:   opts.dispatchTO,
		MaxQueryBases:     opts.maxQuery,
		JournalDir:        opts.journalDir,
		Log:               opts.log,
	}
}

// coordinatorMain runs the cluster coordinator until SIGINT/SIGTERM.
// Shutdown is crash-only: in-flight jobs are not failed, they are
// journaled and resume on the next start exactly as after a crash.
// With -standby-of it instead runs as a warm standby: it tails the
// leader's routing WAL, serves 503 (pointing at the leader) until the
// replication stream goes silent past the lease TTL, then promotes
// itself to a full coordinator on the same address with a higher
// fencing epoch.
func coordinatorMain(opts coordinatorOptions) int {
	if opts.standbyOf != "" {
		return standbyMain(opts)
	}
	coord, err := cluster.New(opts.clusterConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	// Same load-bearing line as the server roles: with -addr :0 this is
	// how callers discover the bound port.
	fmt.Fprintf(os.Stderr, "darwin-wga serve: listening on %s\n", ln.Addr())
	opts.log.Info("serving", "addr", ln.Addr().String(), "role", "coordinator",
		"version", obs.BuildVersion())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		opts.log.Info("signal received, stopping coordinator")
		drained <- coord.Shutdown(context.Background())
	}()
	if err := coord.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	if err := <-drained; err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve: shutdown:", err)
		return 1
	}
	opts.log.Info("coordinator stopped, exiting")
	return 0
}

// standbyMain runs the warm-standby coordinator: tail the leader's
// journal, promote on silence, keep serving on the same listener
// throughout (503 before promotion, the full coordinator API after).
func standbyMain(opts coordinatorOptions) int {
	if opts.journalDir == "" {
		fmt.Fprintln(os.Stderr, "darwin-wga serve: -standby-of requires -journal-dir")
		return 2
	}
	sb, err := cluster.NewStandby(cluster.StandbyConfig{
		LeaderURL:   opts.standbyOf,
		JournalDir:  opts.journalDir,
		Coordinator: opts.clusterConfig(),
		Log:         opts.log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "darwin-wga serve: listening on %s\n", ln.Addr())
	opts.log.Info("serving", "addr", ln.Addr().String(), "role", "standby",
		"version", obs.BuildVersion())
	opts.log.Info("standby replicating", "leader", opts.standbyOf)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := sb.Run(ctx); err != nil && ctx.Err() == nil {
			opts.log.Error("standby replication loop", "err", err)
		}
	}()
	httpSrv := &http.Server{Handler: sb.Handler()}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		opts.log.Info("signal received, stopping standby")
		err := sb.Shutdown(context.Background())
		if cerr := httpSrv.Close(); err == nil {
			err = cerr
		}
		drained <- err
	}()
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve:", err)
		return 1
	}
	if err := <-drained; err != nil {
		fmt.Fprintln(os.Stderr, "darwin-wga serve: shutdown:", err)
		return 1
	}
	opts.log.Info("standby stopped, exiting")
	return 0
}

func run(ctx context.Context, opts options) error {
	switch {
	case opts.scale <= 0:
		return fmt.Errorf("-scale must be positive, got %g", opts.scale)
	case opts.topChains < 0:
		return fmt.Errorf("-top must be non-negative, got %d", opts.topChains)
	case opts.timeout < 0:
		return fmt.Errorf("-timeout must be non-negative, got %v", opts.timeout)
	case opts.retries < 0:
		return fmt.Errorf("-retries must be non-negative, got %d", opts.retries)
	case opts.retryDelay < 0:
		return fmt.Errorf("-retry-delay must be non-negative, got %v", opts.retryDelay)
	case opts.retryMaxDelay < 0:
		return fmt.Errorf("-retry-max-delay must be non-negative, got %v", opts.retryMaxDelay)
	}

	if opts.cpuProfile != "" {
		f, err := os.Create(opts.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "warning: closing CPU profile: %v\n", err)
			}
		}()
	}
	if opts.memProfile != "" {
		defer func() {
			if err := writeHeapProfile(opts.memProfile); err != nil {
				fmt.Fprintf(os.Stderr, "warning: writing heap profile: %v\n", err)
			}
		}()
	}

	var target, query *darwinwga.Assembly
	switch {
	case opts.pairName != "":
		cfg, ok := darwinwga.StandardPair(opts.pairName, opts.scale)
		if !ok {
			return fmt.Errorf("unknown pair %q (want one of %v)", opts.pairName, darwinwga.StandardPairNames())
		}
		pair, err := darwinwga.GeneratePair(cfg)
		if err != nil {
			return err
		}
		target, query = pair.Target, pair.Query
		fmt.Fprintf(os.Stderr, "synthesized %s: target %s, query %s\n", opts.pairName, target, query)
	case opts.targetPath != "" && opts.queryPath != "":
		var err error
		if target, err = darwinwga.ReadFASTA(opts.targetPath); err != nil {
			return err
		}
		if query, err = darwinwga.ReadFASTA(opts.queryPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need either -pair or both -target and -query")
	}

	cfg := darwinwga.DefaultConfig()
	if opts.ungapped {
		cfg = darwinwga.LASTZBaselineConfig()
	}
	if opts.hf != 0 {
		cfg.FilterThreshold = opts.hf
	}
	if opts.he != 0 {
		cfg.ExtensionThreshold = opts.he
	}
	cfg.Workers = opts.workers
	cfg.BothStrands = !opts.oneStrand
	cfg.Deadline = opts.timeout
	cfg.CheckpointDir = opts.checkpointDir
	if opts.retries > 0 {
		cfg.Retry = darwinwga.RetryPolicy{
			MaxAttempts: opts.retries + 1,
			BaseDelay:   opts.retryDelay,
			MaxDelay:    opts.retryMaxDelay,
		}
	}
	cfg.CheckpointFaults = crashFaultsFromEnv()

	var tracer *darwinwga.Tracer
	if opts.tracePath != "" {
		tracer = darwinwga.NewTracer()
		cfg.Recorder = tracer
	}

	rep, alignErr := darwinwga.AlignAssembliesContext(ctx, target, query, cfg)
	// The trace is written even for partial or failed runs — a run worth
	// tracing is often exactly one that misbehaves.
	if tracer != nil {
		if err := writeTrace(tracer, opts.tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "warning: writing trace: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "trace written to %s\n", opts.tracePath)
		}
	}
	if rep == nil {
		return alignErr
	}
	if alignErr != nil {
		fmt.Fprintf(os.Stderr, "interrupted (%v): writing partial results\n", alignErr)
	}

	if opts.outPath != "" {
		if err := writeMAFAtomic(rep, opts.outPath); err != nil {
			return err
		}
	} else if err := rep.WriteMAF(os.Stdout); err != nil {
		return err
	}

	// A complete run has no further use for its journal; removing it
	// keeps a later run with different inputs from tripping over a stale
	// ErrCheckpointMismatch. Partial runs keep theirs for resuming.
	if opts.checkpointDir != "" && alignErr == nil && rep.Truncated == "" {
		if err := checkpoint.Remove(opts.checkpointDir); err != nil {
			fmt.Fprintf(os.Stderr, "warning: removing completed checkpoint journal: %v\n", err)
		}
	}

	trunc := ""
	if rep.Truncated != "" {
		trunc = fmt.Sprintf(" (truncated: %s)", rep.Truncated)
	}
	w := rep.Workload
	fmt.Fprintf(os.Stderr, "\nfilter mode: %s%s\n", cfg.Filter, trunc)
	fmt.Fprintf(os.Stderr, "workload: %s seed hits, %s filter tiles, %s passed, %s extension tiles\n",
		stats.Comma(w.SeedHits), stats.Comma(w.FilterTiles), stats.Comma(w.PassedFilter), stats.Comma(w.ExtensionTiles))
	fmt.Fprintf(os.Stderr, "timings: seeding %v, filtering %v, extension %v\n",
		rep.Timings.Seeding, rep.Timings.Filtering, rep.Timings.Extension)
	fmt.Fprintf(os.Stderr, "alignments: %d HSPs in %d chains, %s matched bp%s\n",
		len(rep.HSPs), len(rep.Chains), stats.Comma(int64(rep.TotalMatches())), trunc)
	for i, s := range rep.TopChainScores(opts.topChains) {
		fmt.Fprintf(os.Stderr, "chain %2d: score %s\n", i+1, stats.Comma(s))
	}
	return alignErr
}

// writeTrace stores the collected span tree as Chrome trace_event JSON.
func writeTrace(t *darwinwga.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = t.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeHeapProfile snapshots the heap after a GC, so the profile shows
// live retention rather than garbage awaiting collection.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeMAFAtomic writes the report's MAF to path via a temp file in the
// same directory, fsyncs it, and renames it into place, so a crash at
// any point leaves either the previous file or the complete new one —
// never a torn mixture.
func writeMAFAtomic(rep *darwinwga.Report, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = rep.WriteMAF(f)
	if err == nil {
		err = f.Sync()
	}
	// Close errors matter: on a full or failing filesystem the data may
	// only be rejected at close time.
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("closing %s: %w", tmp, cerr)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return checkpoint.SyncDir(filepath.Dir(path))
}

// crashFaultsFromEnv builds the deterministic I/O fault plan the
// crash–resume end-to-end test injects into a child process:
//
//	DARWINWGA_CRASH_AFTER_CKPT_WRITES=N   SIGKILL self on the Nth
//	                                      (1-based) checkpoint write
//	DARWINWGA_CRASH_SHORT=K               first write K bytes of that
//	                                      record's frame (torn write)
//	DARWINWGA_IOERR_ON_CKPT_WRITE=N       fail the Nth checkpoint write
//	                                      with a transient error
//
// Unset (the normal case) returns nil — no injection.
func crashFaultsFromEnv() *faultinject.IOFaults {
	var rules []faultinject.IORule
	if hit, ok := envHit("DARWINWGA_CRASH_AFTER_CKPT_WRITES"); ok {
		short := 0
		if s, ok := envHit("DARWINWGA_CRASH_SHORT"); ok {
			short = s
		}
		rules = append(rules, faultinject.IORule{
			Op: faultinject.OpWrite, Hit: hit,
			Action: faultinject.IOCrash, Short: short,
		})
	}
	if hit, ok := envHit("DARWINWGA_IOERR_ON_CKPT_WRITE"); ok {
		rules = append(rules, faultinject.IORule{
			Op: faultinject.OpWrite, Hit: hit, Action: faultinject.IOErr,
		})
	}
	if len(rules) == 0 {
		return nil
	}
	return faultinject.NewIO(rules...)
}

// shardFaultsFromEnv parses DARWINWGA_SHARD_FAULTS, the deterministic
// shard-unit failure plan the partial-result e2e test injects into
// worker children: comma-separated "seq[:strand[:hit]]" rules ("*"
// wildcards), each failing the matching POST /v1/shards unit with a
// 500. Unset (the normal case) returns nil — no injection.
func shardFaultsFromEnv() *faultinject.ShardFaults {
	spec := os.Getenv("DARWINWGA_SHARD_FAULTS")
	sf, err := faultinject.ParseShardFaults(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: ignoring bad DARWINWGA_SHARD_FAULTS=%q: %v\n", spec, err)
		return nil
	}
	return sf
}

// envHit parses a positive integer fault-injection variable; malformed
// values are ignored with a warning rather than failing a real run.
func envHit(name string) (int, bool) {
	s := os.Getenv(name)
	if s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 1 {
		fmt.Fprintf(os.Stderr, "warning: ignoring bad %s=%q\n", name, s)
		return 0, false
	}
	return n, true
}
