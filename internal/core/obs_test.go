package core

import (
	"testing"

	"darwinwga/internal/evolve"
	"darwinwga/internal/genome"
	"darwinwga/internal/obs"
)

// obsTestConfig returns a small-but-real configuration: both strands,
// two workers, no budgets.
func obsTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.BothStrands = true
	return cfg
}

// TestTraceCoversWorkload aligns a diverged pair with a Tracer and an
// Aggregate attached and checks that the span tree is complete — both
// strands, every surviving filter anchor, every GACT-X tile — and that
// the trace's aggregated counters reproduce Result.Workload exactly.
func TestTraceCoversWorkload(t *testing.T) {
	p := testPair(t, 30000, 0.1, 0.02)
	tBases, _ := genome.Concat(p.Target.Seqs)
	qBases, _ := genome.Concat(p.Query.Seqs)

	tr := obs.NewTracer()
	agg := &obs.Aggregate{}
	cfg := obsTestConfig()
	cfg.Recorder = obs.Multi(tr, agg)
	a := newAligner(t, tBases, cfg)
	res, err := a.Align(qBases)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HSPs) == 0 {
		t.Fatal("alignment found nothing; the trace test needs real work")
	}
	wl := res.Workload

	// Aggregate the trace back into workload counters.
	var (
		seedHits, candidates      int64
		filterTiles, filterCells  int64
		extTiles, extCells        int64
		anchorTiles, anchorCells  int64
		anchorsEnded, anchorsSkip int64
		strands                   = map[string]bool{}
		opens                     = map[int]int{} // per-tid B/E balance
		alignSpans, unknownPhases int
	)
	for _, e := range tr.Events() {
		if s, ok := e.Args["strand"].(string); ok {
			strands[s] = true
		}
		switch e.Ph {
		case "B":
			opens[e.Tid]++
			if e.Name == "align" {
				alignSpans++
			}
		case "E":
			opens[e.Tid]--
		case "X", "i":
		default:
			unknownPhases++
		}
		switch e.Name {
		case "seed-shard":
			seedHits += e.Args["seed_hits"].(int64)
			candidates += e.Args["candidates"].(int64)
		case "filter-tile":
			filterTiles++
			filterCells += e.Args["cells"].(int64)
		case "gact-tile":
			extTiles++
			extCells += e.Args["cells"].(int64)
		case "anchor":
			if e.Ph == "E" {
				anchorsEnded++
				anchorTiles += e.Args["tiles"].(int64)
				anchorCells += e.Args["cells"].(int64)
			}
		case "anchor-absorbed":
			anchorsSkip++
		}
	}
	if unknownPhases > 0 {
		t.Errorf("%d events with unknown phase", unknownPhases)
	}
	for tid, n := range opens {
		if n != 0 {
			t.Errorf("tid %d: %d unbalanced B/E spans", tid, n)
		}
	}
	if alignSpans != 1 {
		t.Errorf("align spans = %d, want 1", alignSpans)
	}
	if !strands["+"] || !strands["-"] {
		t.Errorf("trace covers strands %v, want both", strands)
	}
	if seedHits != wl.SeedHits || candidates != wl.Candidates {
		t.Errorf("trace seeding = (%d hits, %d candidates), workload = (%d, %d)",
			seedHits, candidates, wl.SeedHits, wl.Candidates)
	}
	if filterTiles != wl.FilterTiles || filterCells != wl.FilterCells {
		t.Errorf("trace filter = (%d tiles, %d cells), workload = (%d, %d)",
			filterTiles, filterCells, wl.FilterTiles, wl.FilterCells)
	}
	if extTiles != wl.ExtensionTiles || extCells != wl.ExtensionCells {
		t.Errorf("trace extension = (%d tiles, %d cells), workload = (%d, %d)",
			extTiles, extCells, wl.ExtensionTiles, wl.ExtensionCells)
	}
	if anchorTiles != wl.ExtensionTiles || anchorCells != wl.ExtensionCells {
		t.Errorf("anchor span totals = (%d tiles, %d cells), workload = (%d, %d)",
			anchorTiles, anchorCells, wl.ExtensionTiles, wl.ExtensionCells)
	}
	// Every surviving filter anchor appears: extended or absorbed.
	if anchorsEnded+anchorsSkip != wl.PassedFilter {
		t.Errorf("anchor events = %d extended + %d absorbed, workload passed = %d",
			anchorsEnded, anchorsSkip, wl.PassedFilter)
	}
	if anchorsSkip != wl.Absorbed {
		t.Errorf("absorbed events = %d, workload = %d", anchorsSkip, wl.Absorbed)
	}

	// The Aggregate recorder — the serving layer's per-job stats — must
	// agree with the same workload.
	snap := agg.Snapshot()
	if snap.Seeding.SeedHits != wl.SeedHits || snap.Seeding.Candidates != wl.Candidates {
		t.Errorf("aggregate seeding = %+v, workload = %+v", snap.Seeding, wl)
	}
	if snap.Filter.TilesPassed+snap.Filter.TilesFailed != wl.FilterTiles || snap.Filter.Cells != wl.FilterCells {
		t.Errorf("aggregate filter = %+v, workload = %+v", snap.Filter, wl)
	}
	if snap.Filter.TilesPassed != wl.PassedFilter {
		t.Errorf("aggregate passed = %d, workload = %d", snap.Filter.TilesPassed, wl.PassedFilter)
	}
	if snap.Extension.Tiles != wl.ExtensionTiles || snap.Extension.Cells != wl.ExtensionCells {
		t.Errorf("aggregate extension = %+v, workload = %+v", snap.Extension, wl)
	}
	if snap.Extension.HSPs != int64(len(res.HSPs)) {
		t.Errorf("aggregate hsps = %d, result = %d", snap.Extension.HSPs, len(res.HSPs))
	}
}

// TestPipelineMetricsMatchWorkload checks the registry totals after one
// instrumented Align match the Result exactly.
func TestPipelineMetricsMatchWorkload(t *testing.T) {
	p := testPair(t, 20000, 0.1, 0.02)
	tBases, _ := genome.Concat(p.Target.Seqs)
	qBases, _ := genome.Concat(p.Query.Seqs)

	reg := obs.NewRegistry()
	cfg := obsTestConfig()
	cfg.Recorder = obs.NewPipelineMetrics(reg)
	a := newAligner(t, tBases, cfg)
	res, err := a.Align(qBases)
	if err != nil {
		t.Fatal(err)
	}
	wl := res.Workload
	counter := func(name string) int64 { return reg.Counter(name, "").Value() }
	if got := counter("darwinwga_dsoft_seed_hits_total"); got != wl.SeedHits {
		t.Errorf("seed hits metric = %d, workload = %d", got, wl.SeedHits)
	}
	pass := counter(`darwinwga_filter_tiles_total{verdict="pass"}`)
	fail := counter(`darwinwga_filter_tiles_total{verdict="fail"}`)
	if pass+fail != wl.FilterTiles || pass != wl.PassedFilter {
		t.Errorf("filter tile metrics = (%d pass, %d fail), workload = (%d tiles, %d passed)",
			pass, fail, wl.FilterTiles, wl.PassedFilter)
	}
	if got := counter("darwinwga_filter_cells_total"); got != wl.FilterCells {
		t.Errorf("filter cells metric = %d, workload = %d", got, wl.FilterCells)
	}
	if got := counter("darwinwga_gact_tiles_total"); got != wl.ExtensionTiles {
		t.Errorf("extension tiles metric = %d, workload = %d", got, wl.ExtensionTiles)
	}
	if got := counter("darwinwga_gact_cells_total"); got != wl.ExtensionCells {
		t.Errorf("extension cells metric = %d, workload = %d", got, wl.ExtensionCells)
	}
	if got := counter("darwinwga_core_hsps_total"); got != int64(len(res.HSPs)) {
		t.Errorf("hsps metric = %d, result = %d", got, len(res.HSPs))
	}
	if got := reg.Histogram("darwinwga_gact_tile_seconds", "", []float64{1}).Count(); got != wl.ExtensionTiles {
		t.Errorf("extension tile latency observations = %d, workload tiles = %d", got, wl.ExtensionTiles)
	}
}

// TestRecorderAllocOverheadConstant pins the zero-alloc contract of the
// tile hot paths: the allocation overhead of attaching a recorder must
// be a small per-call constant (closures, span bookkeeping), not
// O(tiles). A regression that allocates per filter or extension tile
// shows up as a delta that grows with the workload.
func TestRecorderAllocOverheadConstant(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow")
	}
	measure := func(length int, rec obs.Recorder) float64 {
		p := testPair(t, length, 0.08, 0.01)
		tBases, _ := genome.Concat(p.Target.Seqs)
		qBases, _ := genome.Concat(p.Query.Seqs)
		cfg := obsTestConfig()
		cfg.Workers = 1
		cfg.Recorder = rec
		a := newAligner(t, tBases, cfg)
		return testing.AllocsPerRun(3, func() {
			if _, err := a.Align(qBases); err != nil {
				t.Fatal(err)
			}
		})
	}
	const small, large = 8000, 32000
	deltaSmall := measure(small, &obs.Aggregate{}) - measure(small, nil)
	deltaLarge := measure(large, &obs.Aggregate{}) - measure(large, nil)
	// Slack absorbs goroutine-scheduling noise; a per-tile allocation
	// would add hundreds at the large size.
	const slack = 64
	if deltaLarge > deltaSmall+slack {
		t.Errorf("recorder alloc overhead grew with workload: small delta %.0f, large delta %.0f",
			deltaSmall, deltaLarge)
	}
	if deltaSmall > 128 {
		t.Errorf("recorder alloc overhead per call too high: %.0f allocs", deltaSmall)
	}
}

// BenchmarkRecorderOverhead compares the full pipeline with no
// recorder, a lock-free aggregate, and a live metrics registry. The
// nil case is the baseline: its allocs/op must match a build without
// instrumentation (the sites are branch-guarded), and the registry
// case bounds the serving-mode overhead.
func BenchmarkRecorderOverhead(b *testing.B) {
	p, err := evolve.Generate(evolve.Config{
		Name: "bench", TargetName: "tgt", QueryName: "qry",
		Length: 24000, SubRate: 0.08, IndelRate: 0.01,
		Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	tBases, _ := genome.Concat(p.Target.Seqs)
	qBases, _ := genome.Concat(p.Query.Seqs)

	variants := []struct {
		name string
		rec  obs.Recorder
	}{
		{"nil", nil},
		{"aggregate", &obs.Aggregate{}},
		{"registry", obs.NewPipelineMetrics(obs.NewRegistry())},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := obsTestConfig()
			cfg.Recorder = v.rec
			a, err := NewAligner(tBases, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Align(qBases); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
