package protein

import (
	"bytes"
	"math/rand"
	"testing"

	"darwinwga/internal/genome"
)

func TestTranslateCodonKnown(t *testing.T) {
	cases := map[string]byte{
		"ATG": 'M', "TGG": 'W', "AAA": 'K', "TTT": 'F',
		"TAA": '*', "TAG": '*', "TGA": '*',
		"GGG": 'G', "CCC": 'P', "ATT": 'I', "ATA": 'I',
		"AGA": 'R', "CGA": 'R', "TCA": 'S', "AGC": 'S',
	}
	for codon, want := range cases {
		if got := TranslateCodon(codon[0], codon[1], codon[2]); got != want {
			t.Errorf("TranslateCodon(%s) = %c, want %c", codon, got, want)
		}
	}
	if got := TranslateCodon('A', 'N', 'G'); got != UnknownAA {
		t.Errorf("codon with N = %c, want X", got)
	}
}

func TestTranslate(t *testing.T) {
	if got := Translate([]byte("ATGAAATAG")); string(got) != "MK*" {
		t.Errorf("Translate = %s, want MK*", got)
	}
	// Partial trailing codon dropped.
	if got := Translate([]byte("ATGAA")); string(got) != "M" {
		t.Errorf("Translate partial = %s, want M", got)
	}
}

func TestTranslateFrames(t *testing.T) {
	dna := []byte("ATGAAATTTGGG")
	f1, err := TranslateFrame(dna, 1)
	if err != nil || string(f1) != "MKFG" {
		t.Errorf("frame +1 = %s (%v)", f1, err)
	}
	f2, _ := TranslateFrame(dna, 2)
	if !bytes.Equal(f2, Translate(dna[1:])) {
		t.Errorf("frame +2 = %s, want %s", f2, Translate(dna[1:]))
	}
	// Reverse frames translate the reverse complement.
	rc := genome.ReverseComplement(dna)
	fm1, _ := TranslateFrame(dna, -1)
	if !bytes.Equal(fm1, Translate(rc)) {
		t.Errorf("frame -1 = %s, want %s", fm1, Translate(rc))
	}
	if _, err := TranslateFrame(dna, 4); err == nil {
		t.Error("invalid frame accepted")
	}
	if got := SixFrames(dna); len(got) != 6 {
		t.Errorf("SixFrames returned %d frames", len(got))
	}
}

func TestBlosumScores(t *testing.T) {
	cases := []struct {
		a, b byte
		want int32
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'C', 'C', 9},
		{'R', 'K', 2}, {'I', 'V', 3}, {'W', 'D', -4},
		{'A', 'R', -1},
	}
	for _, c := range cases {
		if got := Score(c.a, c.b); got != c.want {
			t.Errorf("Score(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Score(c.b, c.a); got != c.want {
			t.Errorf("Score not symmetric for %c,%c", c.a, c.b)
		}
	}
	if Score('*', 'A') != -4 || Score('X', 'A') != -1 {
		t.Error("stop/unknown scoring wrong")
	}
}

func TestSearchFindsCodingHomology(t *testing.T) {
	// Build a "gene": a protein-coding sequence, then a copy with
	// synonymous-ish DNA divergence (third positions randomized), which
	// preserves much of the protein but only ~2/3 of the DNA.
	rng := rand.New(rand.NewSource(1))
	codons := []string{"ATG", "AAA", "GAA", "GAT", "TGG", "TTT", "CTG", "CAC", "GGC", "CGT"}
	var tDNA, qDNA []byte
	for i := 0; i < 60; i++ {
		c := codons[rng.Intn(len(codons))]
		tDNA = append(tDNA, c...)
		// Mutate the third base (usually synonymous).
		q := []byte(c)
		if rng.Float64() < 0.8 {
			q[2] = "ACGT"[rng.Intn(4)]
		}
		qDNA = append(qDNA, q...)
	}
	best, _ := Search(tDNA, qDNA, DefaultSearchParams())
	if best.Score <= 0 {
		t.Fatal("no translated hit found")
	}
	if best.TFrame != 1 || best.QFrame != 1 {
		t.Errorf("best frames = %d/%d, want +1/+1", best.TFrame, best.QFrame)
	}
	// The protein-space alignment must span most of the 60 codons.
	if best.TEnd-best.TStart < 40 {
		t.Errorf("hit spans only %d aa", best.TEnd-best.TStart)
	}
}

func TestSearchRejectsRandomDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func() []byte {
		out := make([]byte, 300)
		for i := range out {
			out[i] = "ACGT"[rng.Intn(4)]
		}
		return out
	}
	best, _ := Search(mk(), mk(), DefaultSearchParams())
	// Random 100-aa sequences should only reach modest local scores.
	if best.Score > 60 {
		t.Errorf("random DNA scored %d in protein space", best.Score)
	}
}

func TestSearchMinScoreCollectsHits(t *testing.T) {
	dna := []byte("ATGAAAGAAGATTGGTTTCTGCACGGCCGTATGAAAGAAGATTGGTTTCTGCACGGCCGT")
	p := DefaultSearchParams()
	p.MinScore = 20
	_, hits := Search(dna, dna, p)
	if len(hits) == 0 {
		t.Error("no hits collected above MinScore")
	}
	for _, h := range hits {
		if h.Score < p.MinScore {
			t.Errorf("hit below MinScore: %+v", h)
		}
	}
}

func TestFrameOffsetsDiffer(t *testing.T) {
	dna := []byte("ATGATGATGATG")
	f1, _ := TranslateFrame(dna, 1)
	f2, _ := TranslateFrame(dna, 2)
	if string(f1) != "MMMM" {
		t.Errorf("frame 1 = %s", f1)
	}
	if string(f2) == string(f1) {
		t.Error("frames 1 and 2 identical")
	}
}
