package chain

import (
	"math/rand"
	"testing"
)

func block(ts, te, qs, qe int, score int32) *Block {
	return &Block{TStart: ts, TEnd: te, QStart: qs, QEnd: qe, Score: score, Matches: (te - ts)}
}

func TestGapCost(t *testing.T) {
	if GapCost(0, 0) != 0 {
		t.Error("zero gap should cost 0")
	}
	if GapCost(-1, 0) < 1<<50 {
		t.Error("negative gap should be forbidden")
	}
	// One-sided gaps cost less than double-sided of the same size.
	if GapCost(100, 0) >= GapCost(100, 100) {
		t.Errorf("one-sided %d >= both-sided %d", GapCost(100, 0), GapCost(100, 100))
	}
	// Monotone in gap size.
	last := int64(0)
	for _, g := range []int{1, 5, 50, 500, 5000, 50000, 500000} {
		c := GapCost(g, 0)
		if c < last {
			t.Errorf("GapCost(%d) = %d < previous %d", g, c, last)
		}
		last = c
	}
	// Extrapolation beyond the table keeps growing.
	if GapCost(1000000, 0) <= GapCost(252111, 0) {
		t.Error("no extrapolation beyond table end")
	}
}

func TestBuildSimpleChain(t *testing.T) {
	blocks := []*Block{
		block(0, 100, 0, 100, 5000),
		block(150, 250, 160, 260, 5000),
		block(300, 400, 310, 410, 5000),
	}
	chains := Build(blocks, DefaultOptions())
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1", len(chains))
	}
	c := chains[0]
	if len(c.Blocks) != 3 {
		t.Fatalf("chain has %d blocks, want 3", len(c.Blocks))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	wantScore := int64(15000) - GapCost(50, 60) - GapCost(50, 50)
	if c.Score != wantScore {
		t.Errorf("score = %d, want %d", c.Score, wantScore)
	}
	if c.Matches() != 300 {
		t.Errorf("matches = %d, want 300", c.Matches())
	}
}

func TestBuildRespectsColinearity(t *testing.T) {
	// Second block goes backwards in query: cannot chain.
	blocks := []*Block{
		block(0, 100, 1000, 1100, 5000),
		block(200, 300, 100, 200, 5000),
	}
	chains := Build(blocks, DefaultOptions())
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2 (non-colinear blocks)", len(chains))
	}
	for i := range chains {
		if err := chains[i].Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestBuildPrefersCheaperGaps(t *testing.T) {
	// Block C can follow A (small gap) or B (huge gap): must pick A.
	a := block(0, 100, 0, 100, 5000)
	b := block(0, 100, 50000, 50100, 6000)
	c := block(120, 220, 120, 220, 5000)
	chains := Build([]*Block{a, b, c}, DefaultOptions())
	var withC *Chain
	for i := range chains {
		for _, blk := range chains[i].Blocks {
			if blk == c {
				withC = &chains[i]
			}
		}
	}
	if withC == nil {
		t.Fatal("block c not in any chain")
	}
	if len(withC.Blocks) != 2 || withC.Blocks[0] != a {
		t.Errorf("c chained to wrong predecessor")
	}
}

func TestBuildEachBlockInExactlyOneChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var blocks []*Block
	for i := 0; i < 200; i++ {
		ts := rng.Intn(100000)
		qs := rng.Intn(100000)
		l := 50 + rng.Intn(200)
		blocks = append(blocks, block(ts, ts+l, qs, qs+l, int32(3000+rng.Intn(5000))))
	}
	opts := DefaultOptions()
	opts.MinScore = 0
	chains := Build(blocks, opts)
	seen := make(map[*Block]int)
	total := 0
	for i := range chains {
		if err := chains[i].Validate(); err != nil {
			t.Fatal(err)
		}
		for _, b := range chains[i].Blocks {
			seen[b]++
			total++
		}
	}
	for b, n := range seen {
		if n != 1 {
			t.Fatalf("block %+v appears %d times", b, n)
		}
	}
	if total != len(blocks) {
		t.Errorf("%d of %d blocks assigned (MinScore=0 keeps all)", total, len(blocks))
	}
}

func TestBuildChainScoreBeatsBlocks(t *testing.T) {
	// Chaining colinear blocks must outscore any single block when gaps
	// are cheap relative to block scores.
	blocks := []*Block{
		block(0, 1000, 0, 1000, 50000),
		block(1010, 2000, 1015, 2005, 45000),
	}
	chains := Build(blocks, DefaultOptions())
	if len(chains) != 1 {
		t.Fatalf("got %d chains", len(chains))
	}
	if chains[0].Score <= 50000 {
		t.Errorf("chain score %d not better than best block", chains[0].Score)
	}
}

func TestMinScoreFilters(t *testing.T) {
	blocks := []*Block{block(0, 10, 0, 10, 500)}
	opts := DefaultOptions()
	opts.MinScore = 1000
	if chains := Build(blocks, opts); len(chains) != 0 {
		t.Errorf("low-scoring chain not filtered")
	}
	opts.MinScore = 0
	if chains := Build(blocks, opts); len(chains) != 1 {
		t.Errorf("chain lost with MinScore=0")
	}
}

func TestTopScoresAndTotals(t *testing.T) {
	blocks := []*Block{
		block(0, 100, 0, 100, 9000),
		block(5000, 5100, 50000, 50100, 7000),
		block(90000, 90100, 20000, 20100, 8000),
	}
	opts := DefaultOptions()
	opts.MaxGap = 10 // forbid chaining: three singleton chains
	chains := Build(blocks, opts)
	if len(chains) != 3 {
		t.Fatalf("got %d chains, want 3", len(chains))
	}
	top2 := TopScores(chains, 2)
	if len(top2) != 2 || top2[0] != 9000 || top2[1] != 8000 {
		t.Errorf("TopScores = %v", top2)
	}
	if got := SumTopScores(chains, 10); got != 24000 {
		t.Errorf("SumTopScores = %d, want 24000", got)
	}
	if got := TotalMatches(chains); got != 300 {
		t.Errorf("TotalMatches = %d, want 300", got)
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	if chains := Build(nil, DefaultOptions()); chains != nil {
		t.Error("nil blocks should give nil chains")
	}
	chains := Build([]*Block{block(0, 100, 0, 100, 5000)}, DefaultOptions())
	if len(chains) != 1 || len(chains[0].Blocks) != 1 {
		t.Error("single block should form one singleton chain")
	}
}

func TestChainsSortedByScore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var blocks []*Block
	for i := 0; i < 100; i++ {
		ts := rng.Intn(1000000)
		qs := rng.Intn(1000000)
		blocks = append(blocks, block(ts, ts+100, qs, qs+100, int32(2000+rng.Intn(9000))))
	}
	opts := DefaultOptions()
	opts.MinScore = 0
	chains := Build(blocks, opts)
	for i := 1; i < len(chains); i++ {
		if chains[i].Score > chains[i-1].Score {
			t.Fatalf("chains not sorted: %d after %d", chains[i].Score, chains[i-1].Score)
		}
	}
}

func TestChainExtentAccessors(t *testing.T) {
	c := Chain{Blocks: []*Block{block(10, 20, 30, 40, 1), block(50, 60, 70, 80, 1)}}
	if c.TStart() != 10 || c.TEnd() != 60 || c.QStart() != 30 || c.QEnd() != 80 {
		t.Errorf("extent = T[%d,%d) Q[%d,%d)", c.TStart(), c.TEnd(), c.QStart(), c.QEnd())
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	c := Chain{Blocks: []*Block{block(0, 100, 0, 100, 1), block(50, 150, 200, 300, 1)}}
	if err := c.Validate(); err == nil {
		t.Error("overlapping blocks passed validation")
	}
	empty := Chain{}
	if err := empty.Validate(); err == nil {
		t.Error("empty chain passed validation")
	}
}
