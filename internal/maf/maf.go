// Package maf reads and writes Multiple Alignment Format (MAF) files,
// the output format both LASTZ and Darwin-WGA produce (Section V-E).
// Only pairwise blocks (one target line, one query line) are emitted,
// which is what AXTCHAIN consumes.
package maf

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Block is one pairwise MAF alignment block.
type Block struct {
	Score int64
	// Target line.
	TName  string
	TStart int // 0-based start on the + strand
	TSize  int // aligned bases consumed on the target
	TSrc   int // full source sequence length
	TText  string
	// Query line.
	QName   string
	QStart  int // 0-based start on QStrand
	QSize   int
	QSrc    int
	QStrand byte // '+' or '-'
	QText   string
}

// Validate checks the block's internal consistency: equal text lengths
// and size fields matching the non-gap character counts.
func (b *Block) Validate() error {
	if len(b.TText) != len(b.QText) {
		return fmt.Errorf("maf: text lengths differ: %d vs %d", len(b.TText), len(b.QText))
	}
	if n := countNonGap(b.TText); n != b.TSize {
		return fmt.Errorf("maf: target size %d != non-gap count %d", b.TSize, n)
	}
	if n := countNonGap(b.QText); n != b.QSize {
		return fmt.Errorf("maf: query size %d != non-gap count %d", b.QSize, n)
	}
	if b.QStrand != '+' && b.QStrand != '-' {
		return fmt.Errorf("maf: bad strand %q", b.QStrand)
	}
	return nil
}

func countNonGap(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '-' {
			n++
		}
	}
	return n
}

// Writer emits MAF blocks.
type Writer struct {
	w         *bufio.Writer
	header    bool
	flushEach bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<20)}
}

// NewStreamWriter wraps w for incremental delivery: the ##maf header
// is written and flushed immediately, and every block is flushed as it
// is written, so each block reaches the underlying writer the moment
// it exists. This is the mode the serving layer chunk-streams jobs
// with — a consumer polling the stream always sees a valid MAF prefix.
// The byte sequence produced is identical to NewWriter's for the same
// blocks, and Close still appends the Trailer, so ReadVerified treats
// both modes the same.
func NewStreamWriter(w io.Writer) (*Writer, error) {
	mw := &Writer{w: bufio.NewWriterSize(w, 1<<16), flushEach: true}
	if err := mw.writeHeader(); err != nil {
		return nil, err
	}
	return mw, mw.w.Flush()
}

// writeHeader emits the ##maf header once.
func (mw *Writer) writeHeader() error {
	if mw.header {
		return nil
	}
	if _, err := fmt.Fprintf(mw.w, "##maf version=1 scoring=darwin-wga\n"); err != nil {
		return err
	}
	mw.header = true
	return nil
}

// Write emits one block (writing the ##maf header first if needed).
func (mw *Writer) Write(b *Block) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if err := mw.writeHeader(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(mw.w, "a score=%d\n", b.Score); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(mw.w, "s %s %d %d + %d %s\n",
		b.TName, b.TStart, b.TSize, b.TSrc, b.TText); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(mw.w, "s %s %d %d %c %d %s\n\n",
		b.QName, b.QStart, b.QSize, b.QStrand, b.QSrc, b.QText); err != nil {
		return err
	}
	if mw.flushEach {
		return mw.w.Flush()
	}
	return nil
}

// Flush flushes buffered output, writing the ##maf header first if no
// block ever did — zero-block output (e.g. a truncated run with no
// alignments) is still a valid, self-identifying MAF file.
func (mw *Writer) Flush() error {
	if err := mw.writeHeader(); err != nil {
		return err
	}
	return mw.w.Flush()
}

// Trailer is the end-of-file marker Close appends. MAF comments start
// with '#', so readers that do not know the trailer skip it; readers
// that do (ReadVerified) use it to distinguish a complete file from
// one cut short by a crash.
const Trailer = "##eof maf"

// Close finalizes the output: the ##maf header if nothing was written,
// the Trailer line, and a flush. It does not close the underlying
// io.Writer. Use Close instead of Flush when the output is a file whose
// completeness a later reader must be able to verify.
func (mw *Writer) Close() error {
	if err := mw.writeHeader(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(mw.w, "%s\n", Trailer); err != nil {
		return err
	}
	return mw.w.Flush()
}

// Read parses all pairwise blocks from r.
func Read(r io.Reader) ([]*Block, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var blocks []*Block
	var cur *Block
	sLines := 0
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "a"):
			cur = &Block{}
			sLines = 0
			if i := strings.Index(line, "score="); i >= 0 {
				field := line[i+len("score="):]
				if j := strings.IndexByte(field, ' '); j >= 0 {
					field = field[:j]
				}
				score, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("maf: line %d: bad score: %v", lineno, err)
				}
				cur.Score = score
			}
			blocks = append(blocks, cur)
		case strings.HasPrefix(line, "s "):
			if cur == nil {
				return nil, fmt.Errorf("maf: line %d: s-line before a-line", lineno)
			}
			f := strings.Fields(line)
			if len(f) != 7 {
				return nil, fmt.Errorf("maf: line %d: want 7 fields, got %d", lineno, len(f))
			}
			start, err1 := strconv.Atoi(f[2])
			size, err2 := strconv.Atoi(f[3])
			src, err3 := strconv.Atoi(f[5])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("maf: line %d: bad numeric field", lineno)
			}
			switch sLines {
			case 0:
				cur.TName, cur.TStart, cur.TSize, cur.TSrc, cur.TText = f[1], start, size, src, f[6]
			case 1:
				cur.QName, cur.QStart, cur.QSize, cur.QSrc, cur.QText = f[1], start, size, src, f[6]
				cur.QStrand = f[4][0]
			default:
				return nil, fmt.Errorf("maf: line %d: more than two s-lines in a block", lineno)
			}
			sLines++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i, b := range blocks {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("maf: block %d: %w", i, err)
		}
	}
	return blocks, nil
}

// ReadVerified parses all pairwise blocks from r and additionally
// reports whether the stream ends with the Trailer line — i.e. whether
// it was finalized by (*Writer).Close rather than cut short. Parsing
// stays tolerant: a trailer-less file still yields its blocks, with
// complete=false.
func ReadVerified(r io.Reader) (blocks []*Block, complete bool, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, false, err
	}
	blocks, err = Read(bytes.NewReader(data))
	if err != nil {
		return nil, false, err
	}
	last := ""
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			last = line
		}
	}
	return blocks, last == Trailer, nil
}

// RenderTexts builds the gapped text pair for an alignment transcript
// over raw sequences. ops consume target[ti:] and query[qi:].
func RenderTexts(target, query []byte, ti, qi int, ops []byte) (ttext, qtext string) {
	var tb, qb strings.Builder
	for _, op := range ops {
		switch op {
		case 'M':
			tb.WriteByte(target[ti])
			qb.WriteByte(query[qi])
			ti++
			qi++
		case 'I':
			tb.WriteByte('-')
			qb.WriteByte(query[qi])
			qi++
		case 'D':
			tb.WriteByte(target[ti])
			qb.WriteByte('-')
			ti++
		}
	}
	return tb.String(), qb.String()
}
