package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"darwinwga/internal/checkpoint"
	"darwinwga/internal/core"
	"darwinwga/internal/faultinject"
	"darwinwga/internal/obs"
)

// Journal shipping: a warm standby tails the leader's routing WAL over
// a chunked HTTP stream (GET /cluster/v1/replicate?after=N) and applies
// every record into its own WAL, so at promotion time its journal — and
// therefore its recovered routing state — matches the leader's up to
// the last shipped record.
//
// The stream is newline-delimited JSON. The first frame is a hello
// carrying the leader's epoch and total record count (a total below the
// follower's position means the leader's journal was compacted or
// replaced: the follower wipes and resyncs from zero). Record frames
// carry (index, kind, payload); submitted records additionally carry
// the spilled query FASTA so the standby can preserve the
// spill-before-journal invariant on its own disk. Keepalive frames flow
// when the log is idle; frame silence longer than the standby's
// promotion window is the leader-loss signal.

// repFrame is one line of the replication stream.
type repFrame struct {
	Hello bool   `json:"hello,omitempty"`
	KA    bool   `json:"ka,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	Total uint64 `json:"total,omitempty"`

	Index   uint64 `json:"index,omitempty"` // 1-based record position
	Kind    uint8  `json:"kind,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	Query   []byte `json:"query,omitempty"` // submitted records: spilled FASTA
}

// replicationHub is the leader's in-memory copy of the routing WAL's
// record sequence, seeded from the journal at startup and appended to
// under the journal's own lock (so hub order is WAL order). Streams
// read from it by index. The hub also tracks each follower's shipped
// position — records and payload bytes — which is what the
// replication-lag gauges on /metrics/cluster are computed from.
type replicationHub struct {
	mu      sync.Mutex
	recs    []checkpoint.Record
	cum     []uint64 // cum[i] = payload bytes of recs[:i+1]
	changed chan struct{}
	// followers maps a follower id (the ?follower= the standby sends, or
	// its remote address) to the last position its stream acknowledged by
	// consuming it. Entries persist after disconnect on purpose: a dead
	// standby's lag keeps growing, which is exactly the alert signal.
	followers map[string]followerPos
}

// followerPos is how far one follower's stream has shipped.
type followerPos struct {
	frames uint64
	bytes  uint64
}

// replLag is one follower's distance behind the leader.
type replLag struct {
	frames uint64
	bytes  uint64
}

func newReplicationHub(seed []checkpoint.Record) *replicationHub {
	recs := make([]checkpoint.Record, len(seed))
	copy(recs, seed)
	h := &replicationHub{recs: recs, changed: make(chan struct{}), followers: make(map[string]followerPos)}
	h.cum = make([]uint64, len(recs))
	var sum uint64
	for i, rec := range recs {
		sum += uint64(len(rec.Payload))
		h.cum[i] = sum
	}
	return h
}

func (h *replicationHub) publish(rec checkpoint.Record) {
	h.mu.Lock()
	h.recs = append(h.recs, rec)
	var prev uint64
	if n := len(h.cum); n > 0 {
		prev = h.cum[n-1]
	}
	h.cum = append(h.cum, prev+uint64(len(rec.Payload)))
	close(h.changed)
	h.changed = make(chan struct{})
	h.mu.Unlock()
}

// bytesAtLocked returns the cumulative payload bytes of the first n
// records. Requires h.mu.
func (h *replicationHub) bytesAtLocked(n uint64) uint64 {
	if n == 0 || len(h.cum) == 0 {
		return 0
	}
	if n > uint64(len(h.cum)) {
		n = uint64(len(h.cum))
	}
	return h.cum[n-1]
}

// observeFollower records that follower id's stream has shipped the
// first pos records.
func (h *replicationHub) observeFollower(id string, pos uint64) {
	h.mu.Lock()
	h.followers[id] = followerPos{frames: pos, bytes: h.bytesAtLocked(pos)}
	h.mu.Unlock()
}

// followerLags snapshots every known follower's lag behind the hub.
func (h *replicationHub) followerLags() map[string]replLag {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := uint64(len(h.recs))
	totalBytes := h.bytesAtLocked(total)
	out := make(map[string]replLag, len(h.followers))
	for id, p := range h.followers {
		lag := replLag{}
		if p.frames < total {
			lag.frames = total - p.frames
		}
		if p.bytes < totalBytes {
			lag.bytes = totalBytes - p.bytes
		}
		out[id] = lag
	}
	return out
}

// since returns the records after position `after` (a record count), the
// current total, and a channel closed on the next publish.
func (h *replicationHub) since(after uint64) ([]checkpoint.Record, uint64, <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := uint64(len(h.recs))
	if after >= total {
		return nil, total, h.changed
	}
	out := make([]checkpoint.Record, total-after)
	copy(out, h.recs[after:])
	return out, total, h.changed
}

func (h *replicationHub) total() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return uint64(len(h.recs))
}

// serveReplicate streams the routing WAL to one follower.
func (c *Coordinator) serveReplicate(w http.ResponseWriter, r *http.Request) {
	if c.hub == nil {
		cWriteError(w, http.StatusServiceUnavailable, "replication requires -journal-dir")
		return
	}
	var after uint64
	if s := r.URL.Query().Get("after"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			cWriteError(w, http.StatusBadRequest, "bad after offset %q", s)
			return
		}
		after = v
	}
	// The follower's stable identity keys its replication-lag series; a
	// standby that reconnects under the same id resumes the same series
	// rather than leaving a stale one per ephemeral port.
	follower := r.URL.Query().Get("follower")
	if follower == "" {
		follower = r.RemoteAddr
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		cWriteError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	if err := enc.Encode(repFrame{Hello: true, Epoch: c.epoch, Total: c.hub.total()}); err != nil {
		return
	}
	fl.Flush()
	c.hub.observeFollower(follower, after)
	keepalive := c.cfg.LeaseTTL / 3
	for {
		recs, total, changed := c.hub.since(after)
		for i, rec := range recs {
			f := repFrame{Index: after + uint64(i) + 1, Kind: rec.Kind, Payload: rec.Payload}
			if rec.Kind == ckKindSubmitted {
				var sub ckSubmitted
				if err := json.Unmarshal(rec.Payload, &sub); err == nil {
					if q, err := c.wal.loadQuery(sub.ID); err == nil {
						f.Query = []byte(q)
					}
				}
			}
			if err := enc.Encode(f); err != nil {
				return
			}
		}
		if len(recs) > 0 {
			fl.Flush()
			after = total
			c.hub.observeFollower(follower, after)
			continue
		}
		select {
		case <-changed:
		case <-c.cfg.Clock.After(keepalive):
			// Keepalives carry the current total so an idle follower can
			// keep its own lag gauge honest without a record flowing.
			if err := enc.Encode(repFrame{KA: true, Epoch: c.epoch, Total: c.hub.total()}); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-c.ctx.Done():
			return
		}
	}
}

// StandbyConfig parameterizes a warm standby.
type StandbyConfig struct {
	// LeaderURL is the base URL of the coordinator to replicate.
	LeaderURL string
	// JournalDir is where the shipped journal lands. Required — a
	// standby exists to hold a durable copy.
	JournalDir string
	// PromoteAfter is how long the replication stream may go silent
	// (no record, no keepalive, no reconnect) before the standby
	// declares the leader dead and promotes (default: the coordinator
	// config's lease TTL, after defaults).
	PromoteAfter time.Duration
	// Coordinator is the configuration the standby promotes with;
	// JournalDir is overridden with the standby's own.
	Coordinator Config
	// Transport reaches the leader (default http.DefaultTransport).
	Transport http.RoundTripper
	// Clock drives reconnect backoff and the promotion window.
	Clock faultinject.Clock
	// Log receives operational messages.
	Log *slog.Logger
}

// Standby tails a leader's routing WAL into a local journal and
// promotes itself to a full Coordinator when the leader goes silent.
// Its Handler serves 503 (pointing at the leader) until promotion, then
// delegates to the promoted coordinator — so a standby can sit behind
// the same address before and after failover.
type Standby struct {
	cfg     StandbyConfig
	client  *http.Client
	log     *slog.Logger
	metrics *obs.Registry

	j       *checkpoint.Journal
	dir     string
	records uint64

	mu          sync.Mutex
	lastFrame   time.Time
	epoch       uint64 // last epoch seen from the leader
	leaderTotal uint64 // leader's record count, from hello/keepalive frames
	coord       *Coordinator

	promotedCh chan struct{}
}

// NewStandby opens (creating if needed) the standby's local journal.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.JournalDir == "" {
		return nil, errors.New("cluster: standby requires JournalDir")
	}
	if cfg.Clock == nil {
		cfg.Clock = faultinject.RealClock()
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = cfg.Coordinator.withDefaults().LeaseTTL
	}
	if err := os.MkdirAll(filepath.Join(cfg.JournalDir, "queries"), 0o755); err != nil {
		return nil, err
	}
	j, recs, err := checkpoint.Open(filepath.Join(cfg.JournalDir, "wal"), checkpoint.Options{})
	if err != nil {
		return nil, fmt.Errorf("cluster: opening standby journal: %w", err)
	}
	s := &Standby{
		cfg:        cfg,
		client:     &http.Client{Transport: cfg.Transport},
		log:        cfg.Log,
		metrics:    obs.NewRegistry(),
		j:          j,
		dir:        cfg.JournalDir,
		records:    uint64(len(recs)),
		lastFrame:  cfg.Clock.Now(),
		promotedCh: make(chan struct{}),
	}
	obs.RegisterBuildInfo(s.metrics)
	s.metrics.GaugeFunc("darwinwga_standby_records", "journal records the standby holds",
		func() float64 { return float64(s.Records()) })
	s.metrics.GaugeFunc("darwinwga_standby_replication_lag_frames",
		"journal records the standby is behind the leader's last-announced total",
		func() float64 { return float64(s.LagFrames()) })
	s.metrics.GaugeFunc("darwinwga_standby_silence_seconds",
		"seconds since the last replication frame from the leader",
		func() float64 { return s.silentFor().Seconds() })
	return s, nil
}

// LagFrames is how many records the standby is behind the leader's
// last-announced journal total (hello and keepalive frames carry it).
func (s *Standby) LagFrames() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leaderTotal <= s.records {
		return 0
	}
	return s.leaderTotal - s.records
}

// followerID is the stable identity the standby announces on its
// replication stream, keying its lag series on the leader.
func (s *Standby) followerID() string {
	return "standby:" + filepath.Base(s.dir)
}

// Records returns how many WAL records the standby holds.
func (s *Standby) Records() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Promoted returns the promoted coordinator, or nil before promotion.
func (s *Standby) Promoted() *Coordinator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord
}

// PromotedCh is closed at promotion.
func (s *Standby) PromotedCh() <-chan struct{} { return s.promotedCh }

// Handler serves 503 + the leader's address until promotion, then the
// promoted coordinator's full API.
func (s *Standby) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c := s.Promoted(); c != nil {
			c.Handler().ServeHTTP(w, r)
			return
		}
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"ok":true,"role":"standby","leader":%q,"records":%d,"lag_frames":%d}`+"\n",
				s.cfg.LeaderURL, s.Records(), s.LagFrames())
			return
		}
		if r.URL.Path == "/metrics" || r.URL.Path == "/metrics/cluster" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			s.metrics.WritePrometheus(w) //nolint:errcheck // response committed
			return
		}
		w.Header().Set("Retry-After", "1")
		cWriteError(w, http.StatusServiceUnavailable, "standby for %s: not leader", s.cfg.LeaderURL)
	})
}

// Run tails the leader until promotion (returns nil) or ctx ends. The
// promotion decision is frame silence: records, keepalives, and even
// failed reconnect attempts that reach the leader all count as life;
// only PromoteAfter without any of them promotes.
func (s *Standby) Run(ctx context.Context) error {
	retry := core.RetryPolicy{MaxAttempts: 0, BaseDelay: 250 * time.Millisecond, MaxDelay: 2 * time.Second}
	attempt := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if s.silentFor() >= s.cfg.PromoteAfter {
			return s.promote()
		}
		err := s.tailOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			attempt++
			s.log.Warn("replication stream lost", "leader", s.cfg.LeaderURL, "err", err, "attempt", attempt)
		} else {
			attempt = 0
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.cfg.Clock.After(retry.Backoff(attempt+1, hash64(s.cfg.LeaderURL))):
		}
	}
}

func (s *Standby) silentFor() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Clock.Now().Sub(s.lastFrame)
}

func (s *Standby) stampFrame(epoch, leaderTotal uint64) {
	s.mu.Lock()
	s.lastFrame = s.cfg.Clock.Now()
	if epoch > s.epoch {
		s.epoch = epoch
	}
	if leaderTotal > s.leaderTotal {
		s.leaderTotal = leaderTotal
	}
	s.mu.Unlock()
}

// tailOnce opens one replication stream and consumes it until it breaks
// or the watchdog cancels it for silence.
func (s *Standby) tailOnce(ctx context.Context) error {
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Watchdog: a stream that stops delivering frames (half-open TCP
	// after a leader SIGKILL, a partition) must not hold tailOnce open
	// past the promotion window.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		tick := s.cfg.PromoteAfter / 4
		if tick <= 0 {
			tick = time.Second
		}
		for {
			select {
			case <-watchdogDone:
				return
			case <-reqCtx.Done():
				return
			case <-s.cfg.Clock.After(tick):
				if s.silentFor() >= s.cfg.PromoteAfter {
					cancel()
					return
				}
			}
		}
	}()

	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet,
		s.cfg.LeaderURL+"/cluster/v1/replicate?after="+strconv.FormatUint(s.Records(), 10)+
			"&follower="+url.QueryEscape(s.followerID()), nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("leader replied %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 128<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f repFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return fmt.Errorf("bad replication frame: %w", err)
		}
		// A record at index N proves the leader holds at least N records,
		// even though only hello/keepalive frames carry an explicit total.
		leaderTotal := f.Total
		if f.Index > leaderTotal {
			leaderTotal = f.Index
		}
		s.stampFrame(f.Epoch, leaderTotal)
		switch {
		case f.Hello:
			if !first {
				return errors.New("hello frame mid-stream")
			}
			if f.Total < s.Records() {
				// The leader's journal shrank past our position — it was
				// compacted or replaced. Resync from zero.
				s.log.Warn("leader journal behind local copy; resyncing",
					"leader_total", f.Total, "local", s.Records())
				if err := s.resetJournal(); err != nil {
					return err
				}
				return nil // reconnect with after=0
			}
		case f.KA:
			// Liveness only; already stamped.
		default:
			if err := s.applyRecord(f); err != nil {
				return err
			}
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return errors.New("replication stream closed")
}

// applyRecord appends one shipped record to the local WAL, spilling the
// query first for submitted records — the same spill-before-journal
// order the leader used.
func (s *Standby) applyRecord(f repFrame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.Index != s.records+1 {
		return fmt.Errorf("replication gap: got index %d, have %d records", f.Index, s.records)
	}
	if f.Kind == ckKindSubmitted && len(f.Query) > 0 {
		var sub ckSubmitted
		if err := json.Unmarshal(f.Payload, &sub); err != nil {
			return fmt.Errorf("shipped submitted record: %w", err)
		}
		if err := writeFileAtomicCluster(filepath.Join(s.dir, "queries", sub.ID+".fa"), f.Query); err != nil {
			return fmt.Errorf("spilling shipped query: %w", err)
		}
	}
	if err := s.j.Append(f.Kind, f.Payload); err != nil {
		return err
	}
	s.records++
	return nil
}

// resetJournal wipes the local WAL so the next connect resyncs from 0.
func (s *Standby) resetJournal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.j.Close(); err != nil {
		return err
	}
	walDir := filepath.Join(s.dir, "wal")
	if err := checkpoint.Remove(walDir); err != nil {
		return err
	}
	j, recs, err := checkpoint.Open(walDir, checkpoint.Options{})
	if err != nil {
		return err
	}
	if len(recs) != 0 {
		j.Close() //nolint:errcheck
		return fmt.Errorf("journal not empty after reset: %d records", len(recs))
	}
	s.j = j
	s.records = 0
	return nil
}

// promote closes the replica journal and constructs a full Coordinator
// over it. Coordinator.New bumps the epoch past everything journaled —
// including the old leader's — which is what fences the old leader out.
func (s *Standby) promote() error {
	s.mu.Lock()
	if err := s.j.Close(); err != nil {
		s.mu.Unlock()
		return err
	}
	cfg := s.cfg.Coordinator
	cfg.JournalDir = s.dir
	records, lastEpoch := s.records, s.epoch
	s.mu.Unlock()

	coord, err := New(cfg)
	if err != nil {
		return fmt.Errorf("cluster: standby promotion: %w", err)
	}
	s.log.Info("standby promoted to leader",
		"records", records, "old_epoch", lastEpoch, "epoch", coord.Epoch())
	s.mu.Lock()
	s.coord = coord
	s.mu.Unlock()
	close(s.promotedCh)
	return nil
}

// Shutdown stops the standby (or its promoted coordinator).
func (s *Standby) Shutdown(ctx context.Context) error {
	if c := s.Promoted(); c != nil {
		return c.Shutdown(ctx)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Close()
}
