package obs

import (
	"runtime"
	"runtime/debug"
	"strings"
)

// BuildVersion returns the module version baked into the binary, or
// "(devel)" for a non-module build — the same string the CLI's
// `version` subcommand prints.
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
}

// RegisterBuildInfo publishes the conventional build-info gauge
//
//	darwinwga_build_info{version="...",go_version="..."} 1
//
// on reg, so every scrape identifies the binary it came from, and
// returns the version string for startup log lines. Label values are
// escaped per the Prometheus text format.
func RegisterBuildInfo(reg *Registry) string {
	v := BuildVersion()
	name := `darwinwga_build_info{version="` + escapeLabel(v) +
		`",go_version="` + escapeLabel(runtime.Version()) + `"}`
	reg.Gauge(name, "build metadata; always 1").Set(1)
	return v
}

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline).
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
