package darwinwga

import (
	"context"
	"fmt"
	"io"
	"sort"

	"darwinwga/internal/chain"
	"darwinwga/internal/core"
	"darwinwga/internal/genome"
	"darwinwga/internal/maf"
)

// Report is the outcome of a whole-assembly alignment: the raw HSPs in
// the concatenated coordinate space, the chains built from them, and
// enough metadata to write MAF with per-sequence names and coordinates.
type Report struct {
	// TargetName and QueryName label the two assemblies.
	TargetName, QueryName string
	// HSPs are all alignments in canonical coordinate order (target
	// start, query start, score); target coordinates address the
	// concatenated target, query coordinates the (strand-oriented)
	// concatenated query.
	HSPs []HSP
	// Chains are the AXTCHAIN-style chains, sorted by descending score.
	Chains []Chain
	// Workload and Timings aggregate the pipeline stages.
	Workload Workload
	Timings  core.Timings
	// Truncated is non-empty when the underlying pipeline run stopped
	// early (cancellation, deadline, budget exhaustion, or dropped
	// shards); the HSPs and chains are then a valid partial result.
	Truncated TruncationReason
	// FailedShards reports the shards dropped after exhausting
	// Config.Retry when Truncated is TruncatedShardFailures.
	FailedShards []*StageError

	// emitted holds the HSPs in the pipeline's deterministic emission
	// order — the order WriteMAF serializes blocks in, and the order the
	// serving layer streams them in, so the two outputs are
	// byte-identical.
	emitted []HSP

	target []byte
	query  []byte
	tMap   *maf.SeqMap
	qMap   *maf.SeqMap
}

// AlignAssemblies aligns a query assembly against a target assembly:
// the pipeline runs over concatenated sequences, then alignments are
// chained per strand. The target index is built once per call; to
// align many queries against one target, use NewAligner directly.
func AlignAssemblies(target, query *Assembly, cfg Config) (*Report, error) {
	return AlignAssembliesContext(context.Background(), target, query, cfg)
}

// AlignAssembliesContext is AlignAssemblies with cancellation and the
// Config resource budgets. When ctx is cancelled mid-run the partial
// report — with the HSPs and chains completed so far and
// Report.Truncated set — is returned together with ctx.Err(), so
// callers can persist what was computed. Budget exhaustion
// (Config.MaxCandidates, MaxFilterTiles, MaxExtensionCells, Deadline)
// returns a truncated report with a nil error.
//
// A caller-provided cfg.HSPHook still fires (after the report's own
// bookkeeping) for each alignment as it is produced.
func AlignAssembliesContext(ctx context.Context, target, query *Assembly, cfg Config) (*Report, error) {
	tBases, tStarts := genome.Concat(target.Seqs)
	qBases, qStarts := genome.Concat(query.Seqs)
	rep := &Report{
		TargetName: target.Name,
		QueryName:  query.Name,
		target:     tBases,
		query:      qBases,
	}
	var err error
	if rep.tMap, err = maf.NewSeqMap(target.Name, seqNames(target), tStarts); err != nil {
		return nil, err
	}
	if rep.qMap, err = maf.NewSeqMap(query.Name, seqNames(query), qStarts); err != nil {
		return nil, err
	}
	// Capture the deterministic emission order for WriteMAF, forwarding
	// to any hook the caller installed.
	userHook := cfg.HSPHook
	cfg.HSPHook = func(h HSP) {
		rep.emitted = append(rep.emitted, h)
		if userHook != nil {
			userHook(h)
		}
	}
	aligner, err := core.NewAligner(tBases, cfg)
	if err != nil {
		return nil, err
	}
	res, alignErr := aligner.AlignContext(ctx, qBases)
	if res == nil {
		return nil, alignErr
	}
	rep.HSPs = res.HSPs
	rep.Workload = res.Workload
	rep.Timings = res.Timings
	rep.Truncated = res.Truncated
	rep.FailedShards = res.FailedShards
	rep.Chains = BuildChains(res.HSPs, rep.target, rep.query, chain.DefaultOptions())
	return rep, alignErr
}

// seqNames lists an assembly's sequence names in concatenation order.
func seqNames(a *Assembly) []string {
	names := make([]string, len(a.Seqs))
	for i, s := range a.Seqs {
		names[i] = s.Name
	}
	return names
}

// BuildChains chains HSPs per query strand and returns all chains
// sorted by descending score. The sequences are needed to tally
// matched bases and ungapped block lengths per alignment.
func BuildChains(hsps []HSP, target, query []byte, opts chain.Options) []Chain {
	rc := []byte(nil)
	var byStrand [2][]*chain.Block
	for i := range hsps {
		h := &hsps[i]
		q := query
		si := 0
		if h.Strand == '-' {
			if rc == nil {
				rc = genome.ReverseComplement(query)
			}
			q = rc
			si = 1
		}
		matches, _, _ := h.Counts(target, q)
		byStrand[si] = append(byStrand[si], &chain.Block{
			TStart: h.TStart, TEnd: h.TEnd,
			QStart: h.QStart, QEnd: h.QEnd,
			Score:          h.Score,
			Matches:        matches,
			UngappedBlocks: h.UngappedBlocks(),
		})
	}
	var chains []Chain
	for _, blocks := range byStrand {
		chains = append(chains, chain.Build(blocks, opts)...)
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].Score > chains[j].Score })
	return chains
}

// TotalMatches sums matched base pairs over all chains (Table III's
// matched-base-pairs metric).
func (r *Report) TotalMatches() int { return chain.TotalMatches(r.Chains) }

// TopChainScores returns the scores of the k best chains.
func (r *Report) TopChainScores(k int) []int64 { return chain.TopScores(r.Chains, k) }

// SumTopChainScores sums the k best chain scores (the paper compares
// the top 10).
func (r *Report) SumTopChainScores(k int) int64 { return chain.SumTopScores(r.Chains, k) }

// Renderer returns the MAF block renderer over this report's
// concatenated coordinate space — the same renderer the serving layer
// uses to stream blocks.
func (r *Report) renderer() *maf.BlockRenderer {
	return &maf.BlockRenderer{TMap: r.tMap, QMap: r.qMap, Target: r.target, Query: r.query}
}

// mafOrder returns the HSPs in the order WriteMAF serializes them: the
// pipeline's deterministic emission order (best-filter-score-first per
// strand, '+' before '-') — identical to the order the serving layer
// streams blocks in, and stable across worker counts and
// checkpoint-resume histories.
func (r *Report) mafOrder() []HSP {
	if len(r.emitted) > 0 {
		return r.emitted
	}
	return r.HSPs
}

// WriteMAF writes every HSP as a pairwise MAF block with per-sequence
// names and strand-correct query coordinates, in the pipeline's
// deterministic emission order.
func (r *Report) WriteMAF(w io.Writer) error {
	mw := maf.NewWriter(w)
	br := r.renderer()
	for i, h := range r.mafOrder() {
		block, err := renderHSP(br, &h)
		if err != nil {
			return fmt.Errorf("darwinwga: rendering MAF block %d: %w", i, err)
		}
		if err := mw.Write(block); err != nil {
			return fmt.Errorf("darwinwga: writing MAF block %d: %w", i, err)
		}
	}
	// Close (not Flush) appends the maf.Trailer marker so downstream
	// consumers can tell a complete file from one cut short by a crash.
	return mw.Close()
}

// renderHSP converts one pipeline HSP into a MAF block.
func renderHSP(br *maf.BlockRenderer, h *HSP) (*maf.Block, error) {
	ops := make([]byte, len(h.Ops))
	for k, op := range h.Ops {
		ops[k] = byte(op)
	}
	return br.Render(int64(h.Score), h.Strand, h.TStart, h.QStart, ops)
}
