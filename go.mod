module darwinwga

go 1.22
