package chain

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genBlocks derives a random block set from quick's raw bytes.
func genBlocks(raw []byte) []*Block {
	if len(raw) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(int64(raw[0]) + int64(len(raw))))
	n := 1 + len(raw)%60
	blocks := make([]*Block, n)
	for i := range blocks {
		ts := rng.Intn(500000)
		qs := rng.Intn(500000)
		l := 20 + rng.Intn(500)
		blocks[i] = &Block{
			TStart: ts, TEnd: ts + l,
			QStart: qs, QEnd: qs + l + rng.Intn(50),
			Score:   int32(1000 + rng.Intn(20000)),
			Matches: l,
		}
	}
	return blocks
}

// Property: chaining is a partition — every block lands in exactly one
// chain when MinScore is zero, and every chain validates.
func TestQuickChainsPartitionBlocks(t *testing.T) {
	opts := DefaultOptions()
	opts.MinScore = 0
	f := func(raw []byte) bool {
		blocks := genBlocks(raw)
		chains := Build(blocks, opts)
		seen := make(map[*Block]int)
		for i := range chains {
			if chains[i].Validate() != nil {
				return false
			}
			for _, b := range chains[i].Blocks {
				seen[b]++
			}
		}
		if len(seen) != len(blocks) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the best chain scores at least as much as the best single
// block (a singleton chain is always available).
func TestQuickBestChainBeatsBestBlock(t *testing.T) {
	opts := DefaultOptions()
	opts.MinScore = 0
	f := func(raw []byte) bool {
		blocks := genBlocks(raw)
		if len(blocks) == 0 {
			return true
		}
		var best int32
		for _, b := range blocks {
			if b.Score > best {
				best = b.Score
			}
		}
		chains := Build(blocks, opts)
		return len(chains) > 0 && chains[0].Score >= int64(best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: gap costs are monotone in each argument.
func TestQuickGapCostMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw) % 300000
		b := a + 1 + int(bRaw)%1000
		return GapCost(a, 0) <= GapCost(b, 0) &&
			GapCost(0, a) <= GapCost(0, b) &&
			GapCost(a, a) <= GapCost(b, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
