package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"darwinwga/internal/core"
	"darwinwga/internal/genome"
	"darwinwga/internal/maf"
	"darwinwga/internal/obs"
	"darwinwga/internal/server"
)

// The per-shard scatter/gather plane. For targets in cfg.ShardDispatch
// the coordinator does not route a job to one worker: it decomposes the
// query into strand/seed-shard work units (core.PlanShards), scatters
// them across every worker advertising the target, and gathers the
// per-unit HSP frames back through a deterministic reorder/merge so the
// final MAF is byte-identical to a one-shot run. Each unit has its own
// lease (the in-flight HTTP request, bounded by ShardLease), its own
// retry/failover loop, a straggler hedge past a p90-based threshold
// with first-result-wins dedup (units are idempotent: pure functions of
// fingerprint + query + range), and a journaled completion record so a
// coordinator restart re-dispatches only unfinished units. Units that
// exhaust retries degrade the job into a partial result instead of
// failing it.

// shardTruncatedReason marks a partial result in job status: the merge
// completed but FailedShards exhausted their retry budget.
const shardTruncatedReason = "shard-failures"

// shardEnabled reports whether a job against target takes the
// scatter/gather path. Budgeted or deadlined jobs always keep whole-job
// routing: a work unit is all-or-nothing (mid-unit truncation would
// break the deterministic merge), so those budgets can only be
// accounted job-wide.
func (c *Coordinator) shardEnabled(target string, spec jobSpec) bool {
	if spec.MaxCandidates != 0 || spec.MaxFilterTiles != 0 ||
		spec.MaxExtensionCells != 0 || spec.DeadlineMS != 0 {
		return false
	}
	for _, t := range c.cfg.ShardDispatch {
		if t == "*" || t == target {
			return true
		}
	}
	return false
}

// shardUnitStatus is one unit's client-visible lifecycle state.
type shardUnitStatus struct {
	Unit     core.ShardUnit `json:"unit"`
	State    string         `json:"state"` // pending | running | done | failed
	Worker   string         `json:"worker,omitempty"`
	Attempts int            `json:"attempts,omitempty"`
	Hedged   bool           `json:"hedged,omitempty"`
}

// shardStatusView is the shard map exposed on job status.
type shardStatusView struct {
	Total  int               `json:"total"`
	Done   int               `json:"done"`
	Failed int               `json:"failed"`
	Hedged int               `json:"hedged"`
	Units  []shardUnitStatus `json:"units"`
}

type shardUnitInfo struct {
	shardUnitStatus
	startedAt time.Time // first dispatch, the straggler clock
}

// shardProgress tracks per-unit state for status reporting and hedge
// decisions. Its lock nests inside coordJob.mu (statusOf holds j.mu
// then takes prog.mu); nothing takes j.mu while holding prog.mu.
type shardProgress struct {
	mu    sync.Mutex
	units map[int]*shardUnitInfo
	order []int
	durs  []time.Duration // completed unit wall times; p90 hedge input
}

func newShardProgress(plan []core.ShardUnit) *shardProgress {
	p := &shardProgress{units: make(map[int]*shardUnitInfo, len(plan))}
	for _, u := range plan {
		p.units[u.Seq] = &shardUnitInfo{shardUnitStatus: shardUnitStatus{Unit: u, State: "pending"}}
		p.order = append(p.order, u.Seq)
	}
	return p
}

func (p *shardProgress) markRunning(seq int, worker string, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.units[seq]
	if u == nil || u.State == "done" {
		return
	}
	u.State = "running"
	u.Worker = worker
	u.Attempts++
	if u.startedAt.IsZero() {
		u.startedAt = now
	}
}

func (p *shardProgress) markDone(seq int, worker string, dur time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.units[seq]
	if u == nil {
		return
	}
	u.State = "done"
	if worker != "" {
		u.Worker = worker
	}
	if dur > 0 {
		p.durs = append(p.durs, dur)
	}
}

func (p *shardProgress) markFailed(seq int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if u := p.units[seq]; u != nil && u.State != "done" {
		u.State = "failed"
	}
}

func (p *shardProgress) markHedged(seq int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if u := p.units[seq]; u != nil {
		u.Hedged = true
	}
}

// currentWorker is the worker a unit is (or was last) running on — the
// one a hedge should avoid.
func (p *shardProgress) currentWorker(seq int) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if u := p.units[seq]; u != nil {
		return u.Worker
	}
	return ""
}

// hedgeCandidates returns running, not-yet-hedged units whose age
// exceeds factor × p90 of completed unit durations. No threshold exists
// until minDone units have completed — hedging needs evidence of what
// "normal" looks like before calling anything a straggler.
func (p *shardProgress) hedgeCandidates(now time.Time, minDone int, factor float64) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.durs) < minDone {
		return nil
	}
	d := append([]time.Duration(nil), p.durs...)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	idx := len(d) * 9 / 10
	if idx >= len(d) {
		idx = len(d) - 1
	}
	thr := time.Duration(factor * float64(d[idx]))
	if thr <= 0 {
		return nil
	}
	var out []int
	for seq, u := range p.units {
		if u.State == "running" && !u.Hedged && !u.startedAt.IsZero() && now.Sub(u.startedAt) > thr {
			out = append(out, seq)
		}
	}
	sort.Ints(out)
	return out
}

func (p *shardProgress) snapshot() *shardStatusView {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := &shardStatusView{Total: len(p.order)}
	for _, seq := range p.order {
		u := p.units[seq]
		v.Units = append(v.Units, u.shardUnitStatus)
		switch u.State {
		case "done":
			v.Done++
		case "failed":
			v.Failed++
		}
		if u.Hedged {
			v.Hedged++
		}
	}
	return v
}

// shardOutcome is one runner's verdict on one unit attempt chain.
type shardOutcome struct {
	seq    int
	hedge  bool
	worker string
	dur    time.Duration
	frames []server.ShardResultFrame
	err    error
}

// fastaBaseCount totals the bases in a normalized FASTA text — the
// query length shard planning splits.
func fastaBaseCount(fasta string) (int, error) {
	seqs, err := genome.ReadFASTA(strings.NewReader(fasta))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, s := range seqs {
		n += len(s.Bases)
	}
	return n, nil
}

// runShardJob is the scatter/gather state machine for one job: plan (or
// adopt the journaled plan), adopt units a previous incarnation already
// completed, scatter the rest as independent runners, gather
// first-result-wins, hedge stragglers, then merge deterministically.
func (c *Coordinator) runShardJob(j *coordJob, rec *recoveredRouting) {
	defer c.wg.Done()

	queryLen, err := fastaBaseCount(j.queryFASTA)
	if err != nil {
		c.finalize(j, StateFailed, fmt.Sprintf("shard planning: %v", err))
		return
	}
	var plan []core.ShardUnit
	if rec != nil && len(rec.shardPlan) > 0 {
		plan = rec.shardPlan
	} else {
		// The plan is journaled before any dispatch so a restarted
		// coordinator reuses the identical decomposition — unit seq
		// numbers must mean the same ranges across incarnations.
		// Planning uses the default seeding geometry; shard dispatch
		// assumes workers run the same (chunk-aligned ranges only
		// partition the candidate space when the chunk size matches).
		pcfg := core.DefaultConfig()
		pcfg.BothStrands = !j.Spec.ForwardOnly
		plan = core.PlanShards(&pcfg, queryLen, c.cfg.ShardUnits)
		if err := c.wal.shardPlanned(j, plan); err != nil {
			c.log.Error("journaling shard plan failed", "job_id", j.ID, "err", err)
		}
	}
	if len(plan) == 0 {
		c.finalize(j, StateFailed, "shard planning produced no units")
		return
	}
	prog := newShardProgress(plan)
	j.mu.Lock()
	j.shard = prog
	j.state = StateRunning
	j.mu.Unlock()

	unitBySeq := make(map[int]core.ShardUnit, len(plan))
	for _, u := range plan {
		unitBySeq[u.Seq] = u
	}

	// Adopt results a previous incarnation journaled: a done record
	// implies readable frames (spill-before-journal), but an unreadable
	// spill degrades to re-dispatch rather than failure.
	results := make(map[int][]server.ShardResultFrame, len(plan))
	if rec != nil {
		for _, seq := range rec.shardDone {
			if _, ok := unitBySeq[seq]; !ok {
				continue
			}
			data, err := c.wal.loadShardFrames(j.ID, seq)
			if err != nil {
				c.log.Warn("spilled shard frames unreadable; re-dispatching unit",
					"job_id", j.ID, "seq", seq, "err", err)
				continue
			}
			var frames []server.ShardResultFrame
			if err := json.Unmarshal(data, &frames); err != nil {
				c.log.Warn("spilled shard frames corrupt; re-dispatching unit",
					"job_id", j.ID, "seq", seq, "err", err)
				continue
			}
			results[seq] = frames
			prog.markDone(seq, "", 0)
			c.c.shardRecovered.Inc()
		}
		if len(results) > 0 {
			c.log.Info("recovered shard results from journal",
				"job_id", j.ID, "done", len(results), "total", len(plan))
		}
	}

	// Every runner sends at most one outcome and each unit has at most
	// two runners (primary + hedge), so the channel can never block a
	// sender even after the gather loop exits.
	resultCh := make(chan shardOutcome, 2*len(plan))
	sem := make(chan struct{}, c.cfg.ShardParallel)
	stops := make(map[int]chan struct{}, len(plan))
	stopped := make(map[int]bool, len(plan))
	runners := make(map[int]int, len(plan))
	pending := 0
	for _, u := range plan {
		if _, done := results[u.Seq]; done {
			continue
		}
		pending++
		stops[u.Seq] = make(chan struct{})
		runners[u.Seq] = 1
		c.wg.Add(1)
		go c.runShardUnit(j, prog, u, false, sem, stops[u.Seq], resultCh)
	}
	stopAll := func() {
		for seq, ch := range stops {
			if !stopped[seq] {
				stopped[seq] = true
				close(ch)
			}
		}
	}

	var failed []core.ShardUnit
	for pending > 0 {
		select {
		case out := <-resultCh:
			runners[out.seq]--
			if out.err != nil {
				if _, done := results[out.seq]; !done && runners[out.seq] <= 0 {
					// Every runner for this unit is out of retries: the
					// unit degrades the job to a partial result instead
					// of failing it.
					pending--
					prog.markFailed(out.seq)
					c.c.shardFailed.Inc()
					failed = append(failed, unitBySeq[out.seq])
					c.recordFlight(j, obs.FlightShardFailed, out.worker,
						fmt.Sprintf("unit %s exhausted retries: %v", unitBySeq[out.seq], out.err))
					c.log.Warn("shard unit failed permanently",
						"job_id", j.ID, "unit", unitBySeq[out.seq].String(), "err", out.err)
				}
				continue
			}
			if _, dup := results[out.seq]; dup {
				// The hedge twin finished second: first result won.
				c.c.shardDuplicate.Inc()
				continue
			}
			results[out.seq] = out.frames
			pending--
			if !stopped[out.seq] {
				stopped[out.seq] = true
				close(stops[out.seq])
			}
			prog.markDone(out.seq, out.worker, out.dur)
			c.c.shardMerged.Inc()
			c.recordFlight(j, obs.FlightShardMerged, out.worker,
				fmt.Sprintf("unit %s: %d frames", unitBySeq[out.seq], len(out.frames)))
			// Spill-before-journal, same invariant as the query
			// artifact: a done record implies readable frames. A failed
			// spill (disk full) skips the record — the in-memory result
			// still merges; only a restart would redo the unit.
			if c.wal != nil {
				if data, merr := json.Marshal(out.frames); merr == nil {
					if err := c.wal.saveShardFrames(j.ID, out.seq, data); err != nil {
						c.log.Warn("spilling shard frames failed; a restart re-dispatches this unit",
							"job_id", j.ID, "seq", out.seq, "err", err)
					} else if err := c.wal.shardDone(j, out.seq, out.worker, c.cfg.Clock.Now()); err != nil {
						c.log.Error("journaling shard completion failed",
							"job_id", j.ID, "seq", out.seq, "err", err)
					}
				}
			}
		case <-c.cfg.Clock.After(c.cfg.PollInterval):
			now := c.cfg.Clock.Now()
			for _, seq := range prog.hedgeCandidates(now, c.cfg.ShardHedgeMinDone, c.cfg.ShardHedgeFactor) {
				if stopped[seq] || runners[seq] > 1 {
					continue
				}
				runners[seq]++
				prog.markHedged(seq)
				c.c.shardHedged.Inc()
				c.recordFlight(j, obs.FlightShardHedged, prog.currentWorker(seq),
					fmt.Sprintf("unit %s past straggler threshold; speculative re-dispatch", unitBySeq[seq]))
				c.wg.Add(1)
				go c.runShardUnit(j, prog, unitBySeq[seq], true, sem, stops[seq], resultCh)
			}
		case <-j.cancelCh:
			stopAll()
			c.finalize(j, StateCancelled, "cancelled by client")
			return
		case <-c.ctx.Done():
			stopAll()
			return // journal carries the job into the next incarnation
		}
	}
	stopAll()
	c.finishShardJob(j, plan, results, failed)
}

// runShardUnit owns one unit's retry chain: pick a worker, execute the
// unit synchronously under its lease, back off and move to the next
// replica on failure. Exactly one outcome is sent unless the unit was
// settled elsewhere (stop) or the job ended.
func (c *Coordinator) runShardUnit(j *coordJob, prog *shardProgress, u core.ShardUnit, hedge bool,
	sem chan struct{}, stop <-chan struct{}, out chan<- shardOutcome) {
	defer c.wg.Done()
	attempts := c.cfg.Retry.Attempts()
	seed := j.ID + "/" + strconv.Itoa(u.Seq)
	if hedge {
		seed += "/hedge"
	}
	var lastErr error
	var lastWorker string
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			select {
			case <-c.cfg.Clock.After(c.cfg.Retry.Backoff(attempt-1, hash64(seed))):
			case <-stop:
				return
			case <-j.cancelCh:
				return
			case <-c.ctx.Done():
				return
			}
		}
		if c.fenced.Load() {
			out <- shardOutcome{seq: u.Seq, hedge: hedge,
				err: fmt.Errorf("coordinator fenced at epoch %d", c.epoch)}
			return
		}
		avoid := lastWorker
		if avoid == "" && hedge {
			avoid = prog.currentWorker(u.Seq)
		}
		m := c.pickShardWorker(j.Target, u.Seq, attempt, avoid)
		if m == nil {
			// No eligible replica right now: park WITHOUT charging the
			// attempt — a breaker cool-down or a membership change
			// (re-register, lease handoff) can rescue the unit, and
			// burning the retry budget on parks would fail units whose
			// only worker is merely briefly breaker-open. The park is
			// bounded by one lease plus one breaker cool-down so a
			// target nobody holds still consumes an attempt and the
			// unit eventually fails.
			lastErr = fmt.Errorf("no live replica holds target %q", j.Target)
			deadline := c.cfg.Clock.Now().Add(c.cfg.LeaseTTL + c.cfg.BreakerCooldown)
			for m == nil && c.cfg.Clock.Now().Before(deadline) {
				select {
				case <-c.ms.changedCh():
				case <-c.cfg.Clock.After(c.cfg.PollInterval):
				case <-stop:
					return
				case <-j.cancelCh:
					return
				case <-c.ctx.Done():
					return
				}
				m = c.pickShardWorker(j.Target, u.Seq, attempt, avoid)
			}
			if m == nil {
				continue
			}
		}
		switch {
		case attempt == 1 && !hedge:
			c.c.shardDispatched.Inc()
			c.recordFlight(j, obs.FlightShardDispatched, m.ID, "unit "+u.String())
		case attempt > 1:
			if _, live := c.ms.alive(lastWorker); lastWorker != "" && !live && m.ID != lastWorker {
				c.c.shardFailedOver.Inc()
				c.recordFlight(j, obs.FlightShardFailedOver, m.ID,
					fmt.Sprintf("unit %s: worker %s lost; attempt %d", u, lastWorker, attempt))
			} else {
				c.c.shardRetried.Inc()
				c.recordFlight(j, obs.FlightShardRetried, m.ID,
					fmt.Sprintf("unit %s attempt %d", u, attempt))
			}
		}
		select {
		case sem <- struct{}{}:
		case <-stop:
			return
		case <-j.cancelCh:
			return
		case <-c.ctx.Done():
			return
		}
		prog.markRunning(u.Seq, m.ID, c.cfg.Clock.Now())
		start := c.cfg.Clock.Now()
		frames, err := c.dispatchShardTo(j, m, u, stop)
		dur := c.cfg.Clock.Now().Sub(start)
		<-sem
		lastWorker = m.ID
		if err == nil {
			out <- shardOutcome{seq: u.Seq, hedge: hedge, worker: m.ID, dur: dur, frames: frames}
			return
		}
		lastErr = err
		c.log.Warn("shard unit attempt failed", "job_id", j.ID, "unit", u.String(),
			"worker", m.ID, "attempt", attempt, "err", err)
	}
	out <- shardOutcome{seq: u.Seq, hedge: hedge, worker: lastWorker, err: lastErr}
}

// pickShardWorker chooses a worker for one unit attempt: the full
// replica list for the target (every worker advertising it), rotated by
// unit seq — spreading a job's units across the fleet — and by attempt,
// so retries move to the next replica. avoid is demoted to last: a
// hedge lands on a different worker than the straggler when one exists,
// and a retry leaves the worker that just failed, unless it is the only
// one left.
func (c *Coordinator) pickShardWorker(target string, seq, attempt int, avoid string) *Member {
	replicas := c.ms.replicasFor(target, 0)
	if len(replicas) == 0 {
		return nil
	}
	var demoted *Member
	if avoid != "" && len(replicas) > 1 {
		kept := make([]*Member, 0, len(replicas))
		for _, m := range replicas {
			if m.ID == avoid {
				demoted = m
				continue
			}
			kept = append(kept, m)
		}
		replicas = kept
	}
	// The rotation runs over the non-avoided replicas only — otherwise
	// an offset landing on the demoted tail would defeat the demotion
	// and re-pick the very worker a hedge or retry is escaping.
	off := (seq + attempt - 1) % len(replicas)
	for i := 0; i < len(replicas); i++ {
		m := replicas[(off+i)%len(replicas)]
		if c.brk.allow(m.ID) {
			return m
		}
	}
	if demoted != nil && c.brk.allow(demoted.ID) {
		return demoted
	}
	return nil
}

// dispatchShardTo executes one work unit on one worker synchronously.
// The in-flight request is the unit's lease: ShardLease bounds it on
// the coordinator's clock, and stop (hedge twin won, job over) aborts
// it early. Transport failures charge the worker's breaker; a 200 whose
// body dies mid-frame (connection cut, injected truncation) is a
// decode error — the unit is idempotent, so the caller just retries.
func (c *Coordinator) dispatchShardTo(j *coordJob, m *Member, u core.ShardUnit, stop <-chan struct{}) ([]server.ShardResultFrame, error) {
	payload, err := json.Marshal(server.ShardRequest{
		Target:      j.Target,
		Fingerprint: j.Fingerprint,
		QueryFASTA:  j.queryFASTA,
		QueryName:   j.QueryName,
		Ungapped:    j.Spec.Ungapped,
		Hf:          j.Spec.Hf,
		He:          j.Spec.He,
		JobID:       j.ID,
		TraceID:     j.TraceID,
		Unit:        u,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, m.Addr+"/v1/shards", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, j.TraceID)
	resp, err := c.doRequestTimeout(req, stop, c.cfg.ShardLease)
	if err != nil {
		c.brk.failure(m.ID)
		c.c.dispatchErrors.Inc()
		return nil, err
	}
	c.brk.success(m.ID)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		drainClose(resp)
		return nil, fmt.Errorf("cluster: worker %s: unit %s: HTTP %d: %s",
			m.ID, u, resp.StatusCode, bytes.TrimSpace(body))
	}
	var sr server.ShardResponse
	derr := json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close() //nolint:errcheck
	if derr != nil {
		return nil, fmt.Errorf("cluster: worker %s: unit %s: decoding frames: %w", m.ID, u, derr)
	}
	return sr.Frames, nil
}

// finishShardJob runs the deterministic merge and finalizes. Per
// strand, frames concatenate in plan order (= canonical emission
// order), then MergeShardFrames re-runs the whole-strand absorption
// walk the one-shot pipeline would have run, and the kept blocks render
// strand-major '+' then '-' — byte-identical to a single-worker MAF.
// Failed units make the result partial (206-style status), not an
// error, unless nothing at all succeeded.
func (c *Coordinator) finishShardJob(j *coordJob, plan []core.ShardUnit,
	results map[int][]server.ShardResultFrame, failed []core.ShardUnit) {
	if len(failed) == len(plan) {
		c.finalize(j, StateFailed, fmt.Sprintf("all %d shard units failed", len(plan)))
		return
	}
	var buf bytes.Buffer
	mw := maf.NewWriter(&buf)
	absorbBand := core.DefaultConfig().AbsorbBand
	for _, strand := range []byte{'+', '-'} {
		var frames []core.ShardFrame
		var blocks []*maf.Block
		for _, u := range plan {
			if u.Strand != strand {
				continue
			}
			for _, f := range results[u.Seq] {
				frames = append(frames, f.ShardFrame)
				blocks = append(blocks, f.Block)
			}
		}
		keep, _ := core.MergeShardFrames(frames, absorbBand)
		for _, i := range keep {
			if err := mw.Write(blocks[i]); err != nil {
				c.finalize(j, StateFailed, fmt.Sprintf("rendering merged MAF: %v", err))
				return
			}
		}
	}
	if err := mw.Close(); err != nil {
		c.finalize(j, StateFailed, fmt.Sprintf("rendering merged MAF: %v", err))
		return
	}

	sort.Slice(failed, func(a, b int) bool { return failed[a].Seq < failed[b].Seq })
	var failedNames []string
	for _, u := range failed {
		failedNames = append(failedNames, u.String())
	}
	j.mu.Lock()
	j.mafData = buf.Bytes()
	j.failedShards = failedNames
	if len(failedNames) > 0 {
		j.truncated = shardTruncatedReason
	}
	j.mu.Unlock()
	if c.wal != nil {
		if err := c.wal.saveShardMAF(j.ID, buf.Bytes()); err != nil {
			c.log.Warn("spilling merged MAF failed; result served from memory only",
				"job_id", j.ID, "err", err)
		}
	}
	errMsg := ""
	if len(failedNames) > 0 {
		errMsg = fmt.Sprintf("partial result: %d/%d shard units failed (%s)",
			len(failedNames), len(plan), strings.Join(failedNames, ", "))
	}
	c.finalize(j, StateDone, errMsg)
}

// serveShardMAF serves a sharded job's coordinator-merged MAF: wait for
// the merge (there is no partial stream — determinism needs every
// frame), then the whole artifact, 206 when shards were dropped.
func (c *Coordinator) serveShardMAF(w http.ResponseWriter, r *http.Request, j *coordJob) {
	select {
	case <-j.doneCh:
	case <-r.Context().Done():
		return
	}
	state, errMsg := j.snapshotState()
	if state != StateDone {
		cWriteError(w, http.StatusGone, "job %s: no MAF (state %s: %s)", j.ID, state, errMsg)
		return
	}
	j.mu.Lock()
	data := j.mafData
	failed := append([]string(nil), j.failedShards...)
	truncated := j.truncated
	j.mu.Unlock()
	if data == nil {
		if c.wal == nil {
			cWriteError(w, http.StatusGone, "job %s: merged MAF not retained", j.ID)
			return
		}
		loaded, err := c.wal.loadShardMAF(j.ID)
		if err != nil {
			cWriteError(w, http.StatusBadGateway, "job %s: merged MAF artifact unreadable: %v", j.ID, err)
			return
		}
		data = loaded
		j.mu.Lock()
		j.mafData = data
		j.mu.Unlock()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Job-ID", j.ID)
	code := http.StatusOK
	if len(failed) > 0 {
		w.Header().Set("X-Truncated", truncated)
		w.Header().Set("X-Failed-Shards", strings.Join(failed, ","))
		code = http.StatusPartialContent
	}
	w.WriteHeader(code)
	w.Write(data) //nolint:errcheck // response committed
}
