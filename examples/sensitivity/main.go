// Sensitivity: the paper's central experiment in miniature — synthesize
// a diverged species pair and compare gapped filtering (Darwin-WGA)
// against ungapped filtering (LASTZ) on matched base pairs and chain
// scores.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"darwinwga"
	"darwinwga/internal/chain"
)

func main() {
	// A distant pair (the simulator analogue of C. elegans vs
	// C. briggsae) at 1/250 of the real genome size so this example runs
	// in under a minute.
	cfg, ok := darwinwga.StandardPair("ce11-cb4", 0.004)
	if !ok {
		log.Fatal("unknown pair")
	}
	pair, err := darwinwga.GeneratePair(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pair: %s vs %s\n\n", pair.Target, pair.Query)

	type outcome struct {
		name    string
		matches int
		top10   int64
		hsps    int
	}
	run := func(name string, cfg darwinwga.Config) outcome {
		rep, err := darwinwga.AlignAssemblies(pair.Target, pair.Query, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return outcome{
			name:    name,
			matches: rep.TotalMatches(),
			top10:   rep.SumTopChainScores(10),
			hsps:    len(rep.HSPs),
		}
	}

	lastz := run("LASTZ (ungapped filter)", darwinwga.LASTZBaselineConfig())
	darwin := run("Darwin-WGA (gapped filter)", darwinwga.DefaultConfig())

	for _, o := range []outcome{lastz, darwin} {
		fmt.Printf("%-28s %8d HSPs  %12d matched bp  top-10 chains %d\n",
			o.name, o.hsps, o.matches, o.top10)
	}
	fmt.Printf("\ngapped/ungapped matched-bp ratio: %.2fx\n",
		float64(darwin.matches)/float64(lastz.matches))
	fmt.Printf("top-10 chain score improvement:   %+.2f%%\n",
		100*float64(darwin.top10-lastz.top10)/float64(lastz.top10))
	_ = chain.DefaultOptions() // the chain package is what scores these; see internal/chain
}
