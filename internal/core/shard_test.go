package core

import (
	"context"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"darwinwga/internal/evolve"
	"darwinwga/internal/genome"
)

func TestPlanShards(t *testing.T) {
	cfg := DefaultConfig()
	chunk := cfg.DSoft.ChunkSize
	plan := PlanShards(&cfg, 100_000, 4)
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	seenMinus := false
	covered := map[byte]int{}
	for i, u := range plan {
		if u.Seq != i {
			t.Errorf("unit %d has seq %d", i, u.Seq)
		}
		if u.Strand == '-' {
			seenMinus = true
		}
		if u.QStart%chunk != 0 {
			t.Errorf("unit %v start not chunk-aligned", u)
		}
		if u.QStart != covered[u.Strand] {
			t.Errorf("unit %v leaves gap after %d", u, covered[u.Strand])
		}
		covered[u.Strand] = u.QEnd
	}
	if covered['+'] != 100_000 || covered['-'] != 100_000 {
		t.Errorf("plan covers +%d -%d of 100000", covered['+'], covered['-'])
	}
	if !seenMinus {
		t.Error("BothStrands plan has no '-' units")
	}
	fwd := cfg
	fwd.BothStrands = false
	for _, u := range PlanShards(&fwd, 5000, 8) {
		if u.Strand != '+' {
			t.Errorf("forward-only plan has unit %v", u)
		}
	}
	// Degenerate unit counts still cover the query.
	one := PlanShards(&cfg, 100, 0)
	if len(one) != 2 || one[0].QEnd != 100 {
		t.Errorf("unitsPerStrand=0 plan: %v", one)
	}
}

func TestAlignShardUnitRejectsBudgetsAndBadRanges(t *testing.T) {
	p := testPair(t, 4000, 0.05, 0.005)
	cfg := DefaultConfig()
	cfg.MaxCandidates = 10
	a := newAligner(t, p.TargetSeq(), cfg)
	q := p.QuerySeq()
	if _, _, err := a.AlignShardUnit(context.Background(), q, ShardUnit{Strand: '+', QStart: 0, QEnd: len(q)}); err == nil {
		t.Error("budgeted shard unit accepted")
	}
	cfg = DefaultConfig()
	a = newAligner(t, p.TargetSeq(), cfg)
	if _, _, err := a.AlignShardUnit(context.Background(), q, ShardUnit{Strand: '+', QStart: 100, QEnd: 100}); err == nil {
		t.Error("empty shard range accepted")
	}
	if _, _, err := a.AlignShardUnit(context.Background(), q, ShardUnit{Strand: '+', QStart: 0, QEnd: len(q) + 1}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := a.AlignShardUnit(ctx, q, ShardUnit{Strand: '+', QStart: 0, QEnd: len(q)}); err == nil {
		t.Error("cancelled shard unit returned frames")
	}
}

// TestShardMergeMatchesOneShot is the determinism property behind the
// cluster's scatter/gather plane: for any unit decomposition, any
// arrival order, and duplicated (hedged) unit results, merging the
// per-unit frames reproduces the one-shot pipeline's HSP set in its
// exact emission order.
func TestShardMergeMatchesOneShot(t *testing.T) {
	pair, err := evolve.Generate(evolve.Config{
		Name: "shard", TargetName: "tgt", QueryName: "qry",
		Length: 16_000, SubRate: 0.12, IndelRate: 0.015, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BothStrands = true
	cfg.Workers = 3
	a := newAligner(t, pair.TargetSeq(), cfg)
	query := pair.QuerySeq()

	// One-shot reference, in emission order (the order MAF serializes).
	var want []HSP
	hooked := cfg
	hooked.HSPHook = func(h HSP) { want = append(want, h) }
	ah, err := a.WithConfig(hooked)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ah.Align(query); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("one-shot run emitted no HSPs")
	}

	rc := genome.ReverseComplement(query)
	rng := rand.New(rand.NewSource(99))
	for _, units := range []int{1, 3, 5} {
		plan := PlanShards(&cfg, len(query), units)
		type unitResult struct {
			unit   ShardUnit
			frames []ShardFrame
			hsps   []HSP
		}
		var results []unitResult
		for _, u := range plan {
			q := query
			if u.Strand == '-' {
				q = rc
			}
			frames, hsps, err := a.AlignShardUnit(context.Background(), q, u)
			if err != nil {
				t.Fatalf("units=%d unit %v: %v", units, u, err)
			}
			results = append(results, unitResult{u, frames, hsps})
		}
		// Simulate the gather: shuffled arrival with some units delivered
		// twice (a hedged duplicate); first result per seq wins.
		arrivals := append(append([]unitResult(nil), results...), results[rng.Intn(len(results))], results[rng.Intn(len(results))])
		rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })
		taken := map[int]bool{}
		frames := map[byte][]ShardFrame{}
		hsps := map[byte][]HSP{}
		for _, ar := range arrivals {
			if taken[ar.unit.Seq] {
				continue
			}
			taken[ar.unit.Seq] = true
			frames[ar.unit.Strand] = append(frames[ar.unit.Strand], ar.frames...)
			hsps[ar.unit.Strand] = append(hsps[ar.unit.Strand], ar.hsps...)
		}
		var got []HSP
		for _, strand := range []byte{'+', '-'} {
			keep, _ := MergeShardFrames(frames[strand], cfg.AbsorbBand)
			for _, i := range keep {
				got = append(got, hsps[strand][i])
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("units=%d: merged %d HSPs != one-shot %d (or order differs)", units, len(got), len(want))
		}
	}
}

// FuzzShardMerge drives the merge with arbitrary frame sets and checks
// its core invariant: the kept-frame sequence (by content) is identical
// under any permutation of the input, and every kept frame's anchor is
// outside the footprint of the frames kept before it.
func FuzzShardMerge(f *testing.F) {
	seed := make([]byte, 0, 64)
	for _, v := range []int32{100, 5, 5, 200, 7, 9, 100, 5, 6} {
		seed = binary.LittleEndian.AppendUint32(seed, uint32(v))
	}
	f.Add(seed, uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, permSeed uint16) {
		var frames []ShardFrame
		for len(data) >= 20 && len(frames) < 64 {
			u := func(i int) int32 { return int32(binary.LittleEndian.Uint32(data[i:])) }
			tStart := int(u(4) % 1_000_000)
			if tStart < 0 {
				tStart = -tStart
			}
			span := int(u(8) % 10_000)
			if span < 0 {
				span = -span
			}
			d := int(u(12) % 5_000)
			frames = append(frames, ShardFrame{
				FilterScore: u(0) % 100_000,
				AnchorT:     tStart + span/2,
				AnchorQ:     tStart + span/2 - d,
				Score:       u(16),
				TStart:      tStart,
				TEnd:        tStart + span,
				DMin:        d - int(u(16)%64),
				DMax:        d + int(u(8)%64),
			})
			data = data[20:]
		}
		keep, absorbed := MergeShardFrames(frames, 256)
		if len(keep)+absorbed != len(frames) {
			t.Fatalf("kept %d + absorbed %d != %d frames", len(keep), absorbed, len(frames))
		}
		kept := make([]ShardFrame, len(keep))
		for i, k := range keep {
			kept[i] = frames[k]
		}
		// Permutation invariance: shuffle deterministically and re-merge.
		perm := append([]ShardFrame(nil), frames...)
		rng := rand.New(rand.NewSource(int64(permSeed)))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		keep2, absorbed2 := MergeShardFrames(perm, 256)
		if absorbed2 != absorbed {
			t.Fatalf("absorbed %d != %d after permutation", absorbed2, absorbed)
		}
		kept2 := make([]ShardFrame, len(keep2))
		for i, k := range keep2 {
			kept2[i] = perm[k]
		}
		if !reflect.DeepEqual(kept, kept2) {
			t.Fatalf("kept set differs after permutation:\n%v\nvs\n%v", kept, kept2)
		}
	})
}
