// Package server is the alignment-as-a-service layer: a long-lived
// net/http job server over the Darwin-WGA pipeline. It owns three
// pieces the one-shot CLI cannot provide:
//
//   - a target registry that loads each assembly and builds its D-SOFT
//     seed index exactly once, sharing the immutable core.Aligner
//     across every request against that target;
//   - a job manager — bounded submission queue, per-job IDs and states,
//     worker-pool execution through AlignContext with per-job budgets
//     and deadlines — with admission control (queue-full and per-client
//     in-flight limits answer 429 with Retry-After) and graceful drain;
//   - chunked MAF streaming: each job's alignments are rendered to MAF
//     blocks as the pipeline emits them (core.Config.HSPHook) and
//     byte-identical to a one-shot CLI run on the same inputs.
//
// The package is stdlib-only and embeddable: construct a Server, mount
// Server.Handler on any mux or serve it directly, and Shutdown drains.
package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"darwinwga/internal/core"
	"darwinwga/internal/genome"
	"darwinwga/internal/maf"
)

// Target is one registered assembly: the concatenated bases, the
// prebuilt aligner (whose seed index is the expensive part), and the
// coordinate map MAF rendering needs. Immutable after registration and
// shared by every job against it.
type Target struct {
	Name string
	// Aligner owns the prebuilt index; jobs derive per-call
	// configurations from it with WithConfig.
	Aligner *core.Aligner
	// Bases is the concatenated target sequence.
	Bases []byte
	// Map renders concatenated-space coordinates back to sequences.
	Map *maf.SeqMap
	// Fingerprint identifies the assembly's content (FNV-64a over the
	// concatenated bases, hex). The cluster coordinator hashes it onto
	// the routing ring and uses it to check that replicas of a target
	// name actually hold the same assembly.
	Fingerprint string

	NumSeqs      int
	IndexBytes   int
	RegisteredAt time.Time
}

// fingerprintBases computes the content fingerprint of a concatenated
// assembly.
func fingerprintBases(bases []byte) string {
	h := fnv.New64a()
	h.Write(bases) //nolint:errcheck // hash.Hash never errors
	return fmt.Sprintf("%016x", h.Sum64())
}

// Registry holds the targets a server aligns against. Registration is
// rare and expensive (index construction); lookup is on every request.
type Registry struct {
	mu      sync.RWMutex
	targets map[string]*Target
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{targets: make(map[string]*Target)}
}

// Register loads an assembly under name, building its seed index once.
// cfg supplies the index-shaping parameters (SeedPattern, SeedMaxFreq);
// per-job knobs are rebound later with WithConfig. Registering a name
// twice is an error — targets are immutable once published.
func (r *Registry) Register(name string, asm *genome.Assembly, cfg core.Config) (*Target, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty target name")
	}
	if asm == nil || len(asm.Seqs) == 0 {
		return nil, fmt.Errorf("server: target %q has no sequences", name)
	}
	bases, starts := genome.Concat(asm.Seqs)
	names := make([]string, len(asm.Seqs))
	for i, s := range asm.Seqs {
		names[i] = s.Name
	}
	m, err := maf.NewSeqMap(name, names, starts)
	if err != nil {
		return nil, err
	}
	aligner, err := core.NewAligner(bases, cfg)
	if err != nil {
		return nil, fmt.Errorf("server: indexing target %q: %w", name, err)
	}
	t := &Target{
		Name:         name,
		Aligner:      aligner,
		Bases:        bases,
		Map:          m,
		Fingerprint:  fingerprintBases(bases),
		NumSeqs:      len(asm.Seqs),
		IndexBytes:   aligner.IndexMemoryBytes(),
		RegisteredAt: time.Now(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.targets[name]; dup {
		return nil, fmt.Errorf("server: target %q already registered", name)
	}
	r.targets[name] = t
	return t, nil
}

// Get returns the target registered under name.
func (r *Registry) Get(name string) (*Target, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.targets[name]
	return t, ok
}

// List returns all targets sorted by name.
func (r *Registry) List() []*Target {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Target, 0, len(r.targets))
	for _, t := range r.targets {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered targets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.targets)
}
