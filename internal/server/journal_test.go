package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"darwinwga/internal/evolve"
	"darwinwga/internal/genome"
)

// These are white-box tests: they drive the jobStore directly to
// synthesize the journal a crashed server would leave behind, then
// verify that New replays it correctly. The black-box crash path — a
// real process SIGKILLed mid-job — lives in the cmd/darwin-wga restart
// e2e; here the point is exhaustive coverage of the replay states.

func testQuery(name string) *genome.Assembly {
	return &genome.Assembly{Name: name, Seqs: []*genome.Sequence{
		{Name: "chr1", Bases: []byte("ACGTACGTACGTACGTACGTACGTACGT")},
	}}
}

// storeJob builds the minimal Job shell the jobStore methods read.
func storeJob(id, client string, params JobParams, created time.Time) *Job {
	return &Job{ID: id, Client: client, Params: params, QueryName: "q-" + id, created: created}
}

// TestJobStoreRoundTrip journals one job in each lifecycle shape,
// reopens the store, and requires the fold to reproduce them all in
// submission order.
func TestJobStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, recovered, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("openJobStore: %v", err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh store recovered %d jobs, want 0", len(recovered))
	}

	now := time.Unix(1700000000, 0)
	params := JobParams{Target: "tgt", ForwardOnly: true, Deadline: 90 * time.Millisecond}
	mafBody := []byte("##maf version=1\n\na score=1\n")

	jobs := []*Job{
		storeJob("job-queued", "alice", params, now),
		storeJob("job-running", "bob", params, now.Add(time.Second)),
		storeJob("job-done", "alice", params, now.Add(2*time.Second)),
		storeJob("job-evicted", "carol", params, now.Add(3*time.Second)),
	}
	for _, j := range jobs {
		if _, err := store.saveQuery(j.ID, testQuery(j.QueryName)); err != nil {
			t.Fatalf("saveQuery(%s): %v", j.ID, err)
		}
		if err := store.submitted(j); err != nil {
			t.Fatalf("submitted(%s): %v", j.ID, err)
		}
	}
	if err := store.started(jobs[1], now.Add(5*time.Second)); err != nil {
		t.Fatalf("started: %v", err)
	}
	if err := store.started(jobs[2], now.Add(6*time.Second)); err != nil {
		t.Fatalf("started: %v", err)
	}
	if err := store.finished(jobs[2], JobDone, "", "deadline", 7, mafBody, now.Add(7*time.Second)); err != nil {
		t.Fatalf("finished: %v", err)
	}
	if err := store.finished(jobs[3], JobFailed, "boom", "", 0, nil, now.Add(8*time.Second)); err != nil {
		t.Fatalf("finished: %v", err)
	}
	store.removeArtifacts("job-evicted")
	store.close()

	store2, recovered, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.close()
	if len(recovered) != 4 {
		t.Fatalf("recovered %d jobs, want 4", len(recovered))
	}
	for i, want := range []string{"job-queued", "job-running", "job-done", "job-evicted"} {
		if recovered[i].sub.ID != want {
			t.Errorf("recovered[%d] = %q, want %q (submission order)", i, recovered[i].sub.ID, want)
		}
	}

	queued := recovered[0]
	if queued.started || queued.fin != nil {
		t.Errorf("job-queued: started=%v fin=%v, want neither", queued.started, queued.fin)
	}
	if p := recoverParams(&queued.sub); p != params {
		t.Errorf("job-queued params round-trip = %+v, want %+v", p, params)
	}
	if queued.sub.Client != "alice" || queued.sub.QueryName != "q-job-queued" {
		t.Errorf("job-queued identity lost: %+v", queued.sub)
	}
	if asm, err := store2.loadQuery(&queued); err != nil {
		t.Errorf("loadQuery: %v", err)
	} else if got, want := fastaRoundTrip(t, asm), fastaRoundTrip(t, testQuery("q-job-queued")); got != want {
		t.Errorf("query did not round-trip:\n got %q\nwant %q", got, want)
	}

	running := recovered[1]
	if !running.started || running.fin != nil {
		t.Errorf("job-running: started=%v fin=%v, want started and unfinished", running.started, running.fin)
	}
	if running.startedNS != now.Add(5*time.Second).UnixNano() {
		t.Errorf("job-running startedNS = %d", running.startedNS)
	}

	done := recovered[2]
	if done.fin == nil || done.fin.State != string(JobDone) || done.fin.HSPs != 7 || done.fin.Truncated != "deadline" {
		t.Errorf("job-done record = %+v", done.fin)
	}
	if done.mafPath == "" {
		t.Fatal("job-done lost its MAF artifact")
	}
	if data, err := os.ReadFile(done.mafPath); err != nil || !bytes.Equal(data, mafBody) {
		t.Errorf("job-done MAF = %q, %v; want %q", data, err, mafBody)
	}

	evicted := recovered[3]
	if evicted.fin == nil || evicted.fin.State != string(JobFailed) || evicted.fin.Error != "boom" {
		t.Errorf("job-evicted record = %+v", evicted.fin)
	}
	if evicted.mafPath != "" {
		t.Errorf("job-evicted still has a MAF artifact at %q", evicted.mafPath)
	}
}

func fastaRoundTrip(t *testing.T, asm *genome.Assembly) string {
	t.Helper()
	var buf bytes.Buffer
	if err := genome.WriteFASTA(&buf, asm.Seqs, 0); err != nil {
		t.Fatalf("WriteFASTA: %v", err)
	}
	return buf.String()
}

// TestJobStoreTornTail appends garbage to the journal's live segment —
// the shape a crash mid-append leaves — and requires replay to trust
// every record before the tear and open cleanly for new writes.
func TestJobStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	store, _, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("openJobStore: %v", err)
	}
	j := storeJob("job-1", "c", JobParams{Target: "tgt"}, time.Unix(1700000000, 0))
	if _, err := store.saveQuery(j.ID, testQuery("q")); err != nil {
		t.Fatalf("saveQuery: %v", err)
	}
	if err := store.submitted(j); err != nil {
		t.Fatalf("submitted: %v", err)
	}
	store.close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("finding segments: %v (%d found)", err, len(segs))
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("opening segment: %v", err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad}); err != nil {
		t.Fatalf("tearing segment: %v", err)
	}
	f.Close()

	store2, recovered, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer store2.close()
	if len(recovered) != 1 || recovered[0].sub.ID != "job-1" {
		t.Fatalf("recovered = %+v, want the one pre-tear job", recovered)
	}
	// The store must still accept appends after recovering a torn tail.
	if err := store2.started(storeJob("job-1", "c", JobParams{}, time.Time{}), time.Unix(1700000100, 0)); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
}

// recoveryPair caches one small evolved pair for the recovery and
// watchdog tests (generation is deterministic but not free).
var (
	recoveryPairOnce sync.Once
	recoveryPairVal  *evolve.Pair
	recoveryPairErr  error
)

func recoveryPair(t *testing.T) *evolve.Pair {
	t.Helper()
	recoveryPairOnce.Do(func() {
		cfg, ok := evolve.StandardPair("dm6-droSim1", 0.0004)
		if !ok {
			recoveryPairErr = errors.New("unknown standard pair")
			return
		}
		recoveryPairVal, recoveryPairErr = evolve.Generate(cfg)
	})
	if recoveryPairErr != nil {
		t.Fatalf("generating pair: %v", recoveryPairErr)
	}
	return recoveryPairVal
}

// waitJobTerminal polls a manager-owned job to a terminal state.
func waitJobTerminal(t *testing.T, m *Manager, id string) JobState {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st := j.State(); st.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached a terminal state (now %q)", id, j.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestRestartRecoversQueuedJobByteIdentical is the tentpole's
// in-process acceptance check: a journal holding a submitted-but-
// unfinished job (exactly what a crash leaves) is replayed by New, the
// job waits for its target to be re-registered, runs, and produces MAF
// byte-identical to the same submission on an uninterrupted server.
func TestRestartRecoversQueuedJobByteIdentical(t *testing.T) {
	pair := recoveryPair(t)
	params := JobParams{Target: "tgt", ForwardOnly: true}

	// Reference: an uninterrupted server aligning the same pair.
	ref, err := New(Config{})
	if err != nil {
		t.Fatalf("reference server: %v", err)
	}
	if _, err := ref.RegisterTarget("tgt", pair.Target); err != nil {
		t.Fatalf("register reference target: %v", err)
	}
	refJob, err := ref.Jobs().Submit(params, pair.Query, "ref-client")
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	if st := waitJobTerminal(t, ref.Jobs(), refJob.ID); st != JobDone {
		t.Fatalf("reference job state = %q", st)
	}
	want := refJob.spoolRef().contents()
	if len(want) == 0 {
		t.Fatal("reference MAF is empty; fixture produces no alignments")
	}
	shutdownServer(t, ref)

	// Synthesize the crashed server's journal: submitted + started, no
	// finished record — the job was mid-run when the process died.
	dir := t.TempDir()
	store, _, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("openJobStore: %v", err)
	}
	created := time.Unix(1700000000, 0)
	crashed := storeJob("job-crashed", "alice", params, created)
	crashed.QueryName = pair.Query.Name
	if _, err := store.saveQuery(crashed.ID, pair.Query); err != nil {
		t.Fatalf("saveQuery: %v", err)
	}
	if err := store.submitted(crashed); err != nil {
		t.Fatalf("submitted: %v", err)
	}
	if err := store.started(crashed, created.Add(time.Second)); err != nil {
		t.Fatalf("started: %v", err)
	}
	store.close()

	// Restart: New replays the journal. The job must be recovered but
	// held until the target is re-registered, then run to completion.
	srv, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatalf("restarted server: %v", err)
	}
	defer shutdownServer(t, srv)

	j, ok := srv.Jobs().Get("job-crashed")
	if !ok {
		t.Fatal("recovered job not in the job table")
	}
	if st := j.State(); st != JobQueued {
		t.Fatalf("recovered job state = %q before target registration, want queued", st)
	}
	time.Sleep(50 * time.Millisecond) // must hold, not fail, without its target
	if st := j.State(); st != JobQueued {
		t.Fatalf("recovered job reached %q before its target was registered", st)
	}

	if _, err := srv.RegisterTarget("tgt", pair.Target); err != nil {
		t.Fatalf("re-register target: %v", err)
	}
	if st := waitJobTerminal(t, srv.Jobs(), "job-crashed"); st != JobDone {
		t.Fatalf("recovered job state = %q, err %q", st, j.errMsg)
	}
	got := j.spoolRef().contents()
	if !bytes.Equal(got, want) {
		t.Errorf("recovered MAF differs from uninterrupted run: %d vs %d bytes", len(got), len(want))
	}

	// The terminal state must itself have been journaled: a second
	// restart restores the job as a queryable finished record.
	shutdownServer(t, srv)
	srv2, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatalf("third server: %v", err)
	}
	defer shutdownServer(t, srv2)
	j2, ok := srv2.Jobs().Get("job-crashed")
	if !ok {
		t.Fatal("finished job not restored on second restart")
	}
	if st := j2.State(); st != JobDone {
		t.Fatalf("restored job state = %q, want done", st)
	}
	if data := j2.spoolRef().contents(); !bytes.Equal(data, want) {
		t.Errorf("restored MAF differs: %d vs %d bytes", len(data), len(want))
	}
}

// TestRestartFailsJobWithLostQuery covers the degraded replay path: a
// submitted record whose query artifact is gone must surface as a
// failed job the client can observe, not vanish.
func TestRestartFailsJobWithLostQuery(t *testing.T) {
	dir := t.TempDir()
	store, _, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("openJobStore: %v", err)
	}
	j := storeJob("job-lost", "alice", JobParams{Target: "tgt"}, time.Unix(1700000000, 0))
	if _, err := store.saveQuery(j.ID, testQuery("q")); err != nil {
		t.Fatalf("saveQuery: %v", err)
	}
	if err := store.submitted(j); err != nil {
		t.Fatalf("submitted: %v", err)
	}
	store.close()
	if err := os.Remove(filepath.Join(dir, "queries", "job-lost.fa")); err != nil {
		t.Fatalf("removing query artifact: %v", err)
	}

	srv, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdownServer(t, srv)
	got, ok := srv.Jobs().Get("job-lost")
	if !ok {
		t.Fatal("job with lost query not in the job table")
	}
	if st := got.State(); st != JobFailed {
		t.Fatalf("state = %q, want failed", st)
	}
	got.mu.Lock()
	msg := got.errMsg
	got.mu.Unlock()
	if msg == "" {
		t.Error("failed job carries no error message")
	}
}

// TestRestartDropsEvictedJob: a finished record whose artifacts were
// evicted before the crash stays gone after replay.
func TestRestartDropsEvictedJob(t *testing.T) {
	dir := t.TempDir()
	store, _, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("openJobStore: %v", err)
	}
	j := storeJob("job-gone", "alice", JobParams{Target: "tgt"}, time.Unix(1700000000, 0))
	if _, err := store.saveQuery(j.ID, testQuery("q")); err != nil {
		t.Fatalf("saveQuery: %v", err)
	}
	if err := store.submitted(j); err != nil {
		t.Fatalf("submitted: %v", err)
	}
	if err := store.finished(j, JobDone, "", "", 1, []byte("##maf version=1\n"), time.Unix(1700000001, 0)); err != nil {
		t.Fatalf("finished: %v", err)
	}
	store.removeArtifacts(j.ID)
	store.close()

	srv, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdownServer(t, srv)
	if _, ok := srv.Jobs().Get("job-gone"); ok {
		t.Fatal("evicted job resurrected by replay")
	}
}
