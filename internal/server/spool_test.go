package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestSpoolStreamsAllBytes: concurrent readers starting at arbitrary
// times all observe the full byte stream in order.
func TestSpoolStreamsAllBytes(t *testing.T) {
	s := newSpool()
	var want bytes.Buffer
	const writes = 200

	var wg sync.WaitGroup
	results := make([][]byte, 8)
	for r := range results {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var got []byte
			off := 0
			for {
				chunk, done, wait := s.view(off)
				if len(chunk) > 0 {
					got = append(got, chunk...)
					off += len(chunk)
					continue
				}
				if done {
					break
				}
				<-wait
			}
			results[r] = got
		}(r)
	}

	for i := 0; i < writes; i++ {
		p := []byte(fmt.Sprintf("block %d\n", i))
		want.Write(p)
		if _, err := s.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	s.close()
	wg.Wait()

	for r, got := range results {
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("reader %d: got %d bytes, want %d", r, len(got), want.Len())
		}
	}
	if s.size() != want.Len() {
		t.Errorf("size() = %d, want %d", s.size(), want.Len())
	}
	if _, err := s.Write([]byte("late")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestNewJobIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := newJobID()
		if len(id) != 36 || id[8] != '-' || id[13] != '-' || id[18] != '-' || id[23] != '-' {
			t.Fatalf("malformed job id %q", id)
		}
		if id[14] != '4' {
			t.Fatalf("job id %q is not version 4", id)
		}
		if seen[id] {
			t.Fatalf("duplicate job id %q", id)
		}
		seen[id] = true
	}
}
