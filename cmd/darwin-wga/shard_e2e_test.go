package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"darwinwga"
	"darwinwga/internal/evolve"
	"darwinwga/internal/maf"
)

// shardStatus is the slice of the coordinator's job status the shard
// e2e tests read: the partial-result contract plus the per-unit map.
type shardStatus struct {
	State        string   `json:"state"`
	Error        string   `json:"error"`
	Truncated    string   `json:"truncated"`
	FailedShards []string `json:"failed_shards"`
	Shards       *struct {
		Total  int `json:"total"`
		Done   int `json:"done"`
		Failed int `json:"failed"`
		Units  []struct {
			State  string `json:"state"`
			Worker string `json:"worker"`
			Unit   struct {
				Seq int `json:"seq"`
			} `json:"unit"`
		} `json:"units"`
	} `json:"shards"`
}

func fetchShardStatus(t *testing.T, base, id string) shardStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var st shardStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding shard status: %v (%s)", err, data)
	}
	return st
}

// fetchMAFFull is fetchMAF without the 200-only check: the partial
// test needs the 206 and its headers.
func fetchMAFFull(t *testing.T, base, id string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/maf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// shardMetric reads one outcome of the coordinator's
// darwinwga_cluster_shard_units_total counter from /metrics.
func shardMetric(t *testing.T, base, outcome string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prefix := `darwinwga_cluster_shard_units_total{outcome="` + outcome + `"}`
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// shardPairFiles synthesizes a species pair, writes its FASTAs, and
// produces the one-shot CLI reference MAF every sharded result must
// byte-match.
func shardPairFiles(t *testing.T, dir string, scale float64) (tPath, qPath, queryFASTA, targetName, queryName string, ref []byte) {
	t.Helper()
	cfg, ok := evolve.StandardPair("dm6-droSim1", scale)
	if !ok {
		t.Fatal("unknown pair dm6-droSim1")
	}
	pair, err := evolve.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tPath = filepath.Join(dir, pair.Target.Name+".fa")
	qPath = filepath.Join(dir, pair.Query.Name+".fa")
	if err := darwinwga.WriteFASTA(tPath, pair.Target); err != nil {
		t.Fatal(err)
	}
	if err := darwinwga.WriteFASTA(qPath, pair.Query); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(qPath)
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.maf")
	if err := run(context.Background(), options{
		targetPath: tPath, queryPath: qPath, outPath: refPath,
		scale: 0.01, topChains: 3,
	}); err != nil {
		t.Fatalf("one-shot reference: %v", err)
	}
	ref, err = os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if blocks, complete, err := maf.ReadVerified(bytes.NewReader(ref)); err != nil || !complete || len(blocks) == 0 {
		t.Fatalf("reference MAF unusable (blocks=%d complete=%v err=%v)", len(blocks), complete, err)
	}
	return tPath, qPath, string(raw), pair.Target.Name, pair.Query.Name, ref
}

// TestShardDispatchFailoverE2E: under -shard-dispatch the coordinator
// scatters a job's work units across two real worker processes; one
// worker is SIGKILLed while it holds units mid-flight. Only that
// worker's unfinished units re-dispatch (its finished units stay
// merged — first dispatches never repeat), and the final MAF is
// byte-identical to an uninterrupted one-shot CLI run.
func TestShardDispatchFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess shard e2e is not -short")
	}
	dir := t.TempDir()
	// Scale 0.0002 keeps every work unit's un-absorbed extension pass
	// to seconds even on a single-core CI box where the post-SIGKILL
	// pile-up (failed-over units plus hedges) shares one CPU — each
	// unit must finish far inside the 2m shard lease.
	tPath, _, queryFASTA, targetName, queryName, ref := shardPairFiles(t, dir, 0.0002)

	journalDir := filepath.Join(dir, "coord-journal")
	_, coordBase, coordLog := spawnServe(t, []string{
		"serve", "-role=coordinator", "-addr", "127.0.0.1:0",
		"-shard-dispatch", targetName,
		"-shard-units", "3",
		"-lease-ttl", "3s",
		"-journal-dir", journalDir,
	})
	waitHTTP(t, coordBase+"/healthz", http.StatusOK, 30*time.Second)

	workerArgs := func(id string) []string {
		return []string{
			"serve", "-role=worker", "-addr", "127.0.0.1:0",
			"-coordinator", coordBase,
			"-worker-id", id,
			"-register", targetName + "=" + tPath,
		}
	}
	w1Cmd, _, _ := spawnServe(t, workerArgs("w1"))
	_, _, w2Log := spawnServe(t, workerArgs("w2"))
	waitReplicas(t, coordBase, targetName, 2, 30*time.Second)

	code, body := postJSON(t, coordBase+"/v1/jobs", map[string]any{
		"target": targetName, "query_fasta": queryFASTA, "query_name": queryName, "client": "shard-e2e",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", code, body)
	}
	var sub struct {
		ID      string `json:"id"`
		Sharded bool   `json:"sharded"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if !sub.Sharded {
		t.Fatalf("job not sharded at admission: %s", body)
	}

	// Wait for the mid-job window: w1 is actively running at least one
	// unit and the job is not finished — then SIGKILL it.
	killDeadline := time.Now().Add(time.Minute)
	for {
		st := fetchShardStatus(t, coordBase, sub.ID)
		if st.State == "done" || st.State == "failed" {
			t.Fatalf("job reached %q before the kill window (shards %+v)", st.State, st.Shards)
		}
		running := false
		if st.Shards != nil {
			for _, u := range st.Shards.Units {
				if u.State == "running" && u.Worker == "w1" {
					running = true
				}
			}
		}
		if running {
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("w1 never held a running unit; status %+v", st.Shards)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := w1Cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go w1Cmd.Wait() //nolint:errcheck // reap the killed worker

	termDeadline := time.Now().Add(3 * time.Minute)
	var st shardStatus
	for {
		st = fetchShardStatus(t, coordBase, sub.ID)
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(termDeadline) {
			t.Fatalf("job %s stuck in %q after worker SIGKILL; shards %+v\ncoordinator log:\n%s\nsurvivor log:\n%s",
				sub.ID, st.State, st.Shards, coordLog.String(), w2Log.String())
		}
		time.Sleep(250 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job %s after worker SIGKILL: state %q (%s), want done; coordinator log:\n%s",
			sub.ID, st.State, st.Error, coordLog.String())
	}
	if st.Shards == nil || st.Shards.Done != st.Shards.Total || st.Shards.Failed != 0 {
		t.Fatalf("shard map after failover = %+v, want all done", st.Shards)
	}
	if len(st.FailedShards) != 0 {
		t.Errorf("failover dropped units: %v", st.FailedShards)
	}
	total := int64(st.Shards.Total)
	// Only unfinished units re-dispatched: every unit was first-dispatched
	// exactly once, recoveries show up as retries/failovers, and each
	// unit merged exactly once.
	if got := shardMetric(t, coordBase, "dispatched"); got != total {
		t.Errorf("dispatched = %d, want %d (finished units must not re-dispatch)", got, total)
	}
	if retried, failedOver := shardMetric(t, coordBase, "retried"), shardMetric(t, coordBase, "failed-over"); retried+failedOver < 1 {
		t.Errorf("no unit recovery recorded after SIGKILL (retried=%d failed-over=%d)", retried, failedOver)
	}
	if got := shardMetric(t, coordBase, "merged"); got != total {
		t.Errorf("merged = %d, want %d", got, total)
	}
	codeMAF, _, got := fetchMAFFull(t, coordBase, sub.ID)
	if codeMAF != http.StatusOK {
		t.Fatalf("maf: HTTP %d, want 200", codeMAF)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("sharded MAF after SIGKILL (%d bytes) differs from one-shot reference (%d bytes); survivor log:\n%s",
			len(got), len(ref), w2Log.String())
	}
}

// TestShardPartialResultE2E: a worker child with
// DARWINWGA_SHARD_FAULTS=1 fails unit seq 1 on every attempt. The job
// must still complete — as a partial result: state done with the unit
// in failed_shards, a 206 MAF carrying the partial-result headers, and
// the artifact still a well-formed, trailer-verified MAF.
func TestShardPartialResultE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess shard e2e is not -short")
	}
	dir := t.TempDir()
	tPath, _, queryFASTA, targetName, queryName, _ := shardPairFiles(t, dir, 0.0004)

	_, coordBase, coordLog := spawnServe(t, []string{
		"serve", "-role=coordinator", "-addr", "127.0.0.1:0",
		"-shard-dispatch", "*",
		"-shard-units", "2",
	})
	waitHTTP(t, coordBase+"/healthz", http.StatusOK, 30*time.Second)
	spawnServe(t, []string{
		"serve", "-role=worker", "-addr", "127.0.0.1:0",
		"-coordinator", coordBase,
		"-worker-id", "w1",
		"-register", targetName + "=" + tPath,
	}, "DARWINWGA_SHARD_FAULTS=1")
	waitReplicas(t, coordBase, targetName, 1, 30*time.Second)

	code, body := postJSON(t, coordBase+"/v1/jobs", map[string]any{
		"target": targetName, "query_fasta": queryFASTA, "query_name": queryName, "client": "shard-e2e",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", code, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	if state := awaitTerminal(t, coordBase, sub.ID, 3*time.Minute); state != "done" {
		t.Fatalf("job %s with a poisoned unit: state %q, want done (partial); coordinator log:\n%s",
			sub.ID, state, coordLog.String())
	}
	st := fetchShardStatus(t, coordBase, sub.ID)
	if st.Truncated != "shard-failures" {
		t.Errorf("truncated = %q, want shard-failures", st.Truncated)
	}
	if len(st.FailedShards) != 1 || !strings.HasPrefix(st.FailedShards[0], "1/") {
		t.Errorf("failed_shards = %v, want exactly unit seq 1", st.FailedShards)
	}
	if st.Shards == nil || st.Shards.Failed != 1 || st.Shards.Done != st.Shards.Total-1 {
		t.Errorf("shard map = %+v, want one failed and the rest done", st.Shards)
	}
	if !strings.Contains(st.Error, "partial result") {
		t.Errorf("status error = %q, want a partial-result note", st.Error)
	}
	if got := shardMetric(t, coordBase, "failed"); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}

	codeMAF, hdr, got := fetchMAFFull(t, coordBase, sub.ID)
	if codeMAF != http.StatusPartialContent {
		t.Fatalf("maf: HTTP %d, want 206", codeMAF)
	}
	if hdr.Get("X-Truncated") != "shard-failures" {
		t.Errorf("X-Truncated = %q, want shard-failures", hdr.Get("X-Truncated"))
	}
	if !strings.HasPrefix(hdr.Get("X-Failed-Shards"), "1/") {
		t.Errorf("X-Failed-Shards = %q, want unit seq 1", hdr.Get("X-Failed-Shards"))
	}
	if _, complete, err := maf.ReadVerified(bytes.NewReader(got)); err != nil || !complete {
		t.Errorf("partial MAF not a verified artifact (complete=%v err=%v)", complete, err)
	}
}
