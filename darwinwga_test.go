package darwinwga_test

import (
	"bytes"
	"strings"
	"testing"

	"darwinwga"
	"darwinwga/internal/maf"
)

func TestPublicAPISurface(t *testing.T) {
	cfg := darwinwga.DefaultConfig()
	if cfg.FilterThreshold != 4000 || cfg.FilterTileSize != 320 || cfg.FilterBand != 32 {
		t.Errorf("defaults drifted: %+v", cfg)
	}
	lz := darwinwga.LASTZBaselineConfig()
	if lz.Filter != darwinwga.FilterUngapped {
		t.Error("baseline config is not ungapped")
	}
	sc := darwinwga.DefaultScoring()
	if sc.Score('A', 'A') != 91 {
		t.Error("scoring drifted")
	}
	names := darwinwga.StandardPairNames()
	if len(names) != 4 || names[0] != "ce11-cb4" {
		t.Errorf("pair names: %v", names)
	}
	if _, ok := darwinwga.StandardPair("ce11-cb4", 0.001); !ok {
		t.Error("StandardPair lookup failed")
	}
}

func TestAlignAssembliesEndToEnd(t *testing.T) {
	cfg, _ := darwinwga.StandardPair("dm6-droSim1", 0.0004)
	pair, err := darwinwga.GeneratePair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := darwinwga.AlignAssemblies(pair.Target, pair.Query, darwinwga.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HSPs) == 0 || len(rep.Chains) == 0 {
		t.Fatalf("no alignments: %d HSPs, %d chains", len(rep.HSPs), len(rep.Chains))
	}
	if rep.TotalMatches() == 0 {
		t.Error("no matched bases")
	}
	if got := rep.TopChainScores(3); len(got) == 0 || got[0] <= 0 {
		t.Errorf("top chain scores: %v", got)
	}
	if rep.SumTopChainScores(10) < rep.TopChainScores(1)[0] {
		t.Error("top-10 sum below top-1")
	}

	// MAF output parses back and is internally consistent.
	var buf bytes.Buffer
	if err := rep.WriteMAF(&buf); err != nil {
		t.Fatal(err)
	}
	blocks, err := maf.Read(&buf)
	if err != nil {
		t.Fatalf("MAF round trip: %v", err)
	}
	if len(blocks) != len(rep.HSPs) {
		t.Errorf("MAF has %d blocks, want %d", len(blocks), len(rep.HSPs))
	}
	for i, b := range blocks {
		if !strings.HasPrefix(b.TName, pair.Target.Name+".") {
			t.Errorf("block %d target name %q", i, b.TName)
		}
		if b.TStart < 0 || b.TStart+b.TSize > b.TSrc {
			t.Errorf("block %d target coords out of range", i)
		}
		if b.QStart < 0 || b.QStart+b.QSize > b.QSrc {
			t.Errorf("block %d query coords out of range", i)
		}
		// The gapped texts must reproduce the underlying sequences for
		// '+' strand blocks.
		if b.QStrand == '+' {
			tSeq := strings.ReplaceAll(b.TText, "-", "")
			want := string(pair.TargetSeq()[b.TStart : b.TStart+b.TSize])
			if tSeq != want {
				t.Errorf("block %d target text mismatch", i)
			}
		}
	}
}

func TestAlignAssembliesMultiSequence(t *testing.T) {
	// Multi-sequence assemblies exercise the coordinate translation.
	target := &darwinwga.Assembly{Name: "tgt", Seqs: []*darwinwga.Sequence{
		{Name: "chrA", Bases: bytesRepeat("ACGTTGCAGGTCAATCGCAT", 400)},
		{Name: "chrB", Bases: bytesRepeat("TTGACCGGTATCAGGCATAC", 400)},
	}}
	query := &darwinwga.Assembly{Name: "qry", Seqs: []*darwinwga.Sequence{
		{Name: "scaf1", Bases: bytesRepeat("TTGACCGGTATCAGGCATAC", 300)},
	}}
	cfg := darwinwga.DefaultConfig()
	cfg.SeedMaxFreq = 0 // the repeats ARE the signal here
	rep, err := darwinwga.AlignAssemblies(target, query, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteMAF(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tgt.chrB") {
		t.Error("MAF missing chrB alignment")
	}
}

func bytesRepeat(unit string, n int) []byte {
	out := make([]byte, 0, len(unit)*n)
	for i := 0; i < n; i++ {
		out = append(out, unit...)
	}
	return out
}
