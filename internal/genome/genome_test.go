package genome

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeBase(t *testing.T) {
	cases := []struct {
		ascii byte
		code  byte
	}{
		{'A', CodeA}, {'C', CodeC}, {'G', CodeG}, {'T', CodeT}, {'N', CodeN},
		{'a', CodeA}, {'c', CodeC}, {'g', CodeG}, {'t', CodeT}, {'n', CodeN},
	}
	for _, c := range cases {
		if got := EncodeBase(c.ascii); got != c.code {
			t.Errorf("EncodeBase(%q) = %d, want %d", c.ascii, got, c.code)
		}
	}
	for code := byte(0); code < AlphabetSize; code++ {
		if EncodeBase(DecodeBase(code)) != code {
			t.Errorf("round trip failed for code %d", code)
		}
	}
	if EncodeBase('X') != 0xFF {
		t.Errorf("EncodeBase('X') should be invalid")
	}
}

func TestTransitionPairs(t *testing.T) {
	trans := [][2]byte{{'A', 'G'}, {'G', 'A'}, {'C', 'T'}, {'T', 'C'}}
	for _, p := range trans {
		if !IsTransition(p[0], p[1]) {
			t.Errorf("IsTransition(%q,%q) = false, want true", p[0], p[1])
		}
	}
	notTrans := [][2]byte{{'A', 'A'}, {'A', 'C'}, {'A', 'T'}, {'G', 'C'}, {'G', 'T'}, {'N', 'A'}, {'A', 'N'}, {'N', 'N'}}
	for _, p := range notTrans {
		if IsTransition(p[0], p[1]) {
			t.Errorf("IsTransition(%q,%q) = true, want false", p[0], p[1])
		}
	}
}

func TestReverseComplement(t *testing.T) {
	in := []byte("ACGTN")
	want := []byte("NACGT")
	if got := ReverseComplement(in); !bytes.Equal(got, want) {
		t.Errorf("ReverseComplement(%s) = %s, want %s", in, got, want)
	}
	// Involution property on random sequences.
	f := func(raw []byte) bool {
		seq := randomizeToDNA(raw)
		rc := ReverseComplement(seq)
		rcrc := ReverseComplement(rc)
		return bytes.Equal(seq, rcrc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementInPlace(t *testing.T) {
	for _, s := range []string{"", "A", "AC", "ACG", "ACGT", "GATTACA"} {
		seq := []byte(s)
		want := ReverseComplement(seq)
		ReverseComplementInPlace(seq)
		if !bytes.Equal(seq, want) {
			t.Errorf("in-place RC of %q = %s, want %s", s, seq, want)
		}
	}
}

func randomizeToDNA(raw []byte) []byte {
	const bases = "ACGT"
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = bases[int(b)%4]
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		seq := randomizeToDNA(raw)
		return bytes.Equal(Decode(Encode(seq)), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeInvalidBecomesN(t *testing.T) {
	got := Encode([]byte("AXC"))
	if got[1] != CodeN {
		t.Errorf("invalid base encoded as %d, want CodeN", got[1])
	}
}

func TestSequenceValidate(t *testing.T) {
	s := &Sequence{Name: "s", Bases: []byte("acgtN")}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if string(s.Bases) != "ACGTN" {
		t.Errorf("Validate did not upper-case: %s", s.Bases)
	}
	bad := &Sequence{Name: "bad", Bases: []byte("AC-GT")}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted invalid base")
	}
}

func TestGCContent(t *testing.T) {
	s := &Sequence{Bases: []byte("GGCCAATT")}
	if gc := s.GC(); gc != 0.5 {
		t.Errorf("GC = %v, want 0.5", gc)
	}
	n := &Sequence{Bases: []byte("NNNN")}
	if gc := n.GC(); gc != 0 {
		t.Errorf("GC of all-N = %v, want 0", gc)
	}
	withN := &Sequence{Bases: []byte("GCNN")}
	if gc := withN.GC(); gc != 1.0 {
		t.Errorf("GC ignoring N = %v, want 1.0", gc)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	seqs := []*Sequence{
		{Name: "chr1", Bases: []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT")},
		{Name: "chr2", Bases: []byte("NNNACGT")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs, 10); err != nil {
		t.Fatalf("WriteFASTA: %v", err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d sequences, want 2", len(got))
	}
	for i := range seqs {
		if got[i].Name != seqs[i].Name || !bytes.Equal(got[i].Bases, seqs[i].Bases) {
			t.Errorf("sequence %d mismatch", i)
		}
	}
}

func TestFASTAHeaderParsing(t *testing.T) {
	in := ">chrX some description here\nACGT\nacgt\n"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if seqs[0].Name != "chrX" {
		t.Errorf("name = %q, want chrX", seqs[0].Name)
	}
	if string(seqs[0].Bases) != "ACGTACGT" {
		t.Errorf("bases = %s", seqs[0].Bases)
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">s\nAC!GT\n")); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestFASTAErrorsCarryLineNumbers(t *testing.T) {
	_, err := ReadFASTA(strings.NewReader(">s\nACGT\nAC!GT\n"))
	if err == nil {
		t.Fatal("invalid base accepted")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "column 3") {
		t.Errorf("error lacks line/column position: %v", err)
	}
	_, err = ReadFASTA(strings.NewReader(">a\nACGT\n>\nACGT\n"))
	if err == nil {
		t.Fatal("empty sequence name accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("empty-name error lacks line number: %v", err)
	}
	// A bare ">" with trailing spaces must error too, not panic.
	if _, err := ReadFASTA(strings.NewReader(">   \nACGT\n")); err == nil {
		t.Error("whitespace-only sequence name accepted")
	}
}

func TestFASTACRLFAndTrailingWhitespace(t *testing.T) {
	in := ">chr1 desc\r\nACGT\r\nacgt  \r\n>chr2\r\nTTTT\r\n"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0].Name != "chr1" || seqs[1].Name != "chr2" {
		t.Fatalf("parsed %d sequences: %+v", len(seqs), seqs)
	}
	if string(seqs[0].Bases) != "ACGTACGT" {
		t.Errorf("chr1 bases = %s", seqs[0].Bases)
	}
	if string(seqs[1].Bases) != "TTTT" {
		t.Errorf("chr2 bases = %s", seqs[1].Bases)
	}
}

func TestFASTAIUPACToN(t *testing.T) {
	seqs, err := ReadFASTA(strings.NewReader(">s\nAcRySWkmBdHVun\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(seqs[0].Bases) != "ACNNNNNNNNNNNN" {
		t.Errorf("IUPAC mapping: %s", seqs[0].Bases)
	}
	// Gap and alignment characters stay invalid.
	for _, bad := range []string{">s\nAC-GT\n", ">s\nAC.GT\n", ">s\nAC*GT\n"} {
		if _, err := ReadFASTA(strings.NewReader(bad)); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestNormalizeBase(t *testing.T) {
	for _, tc := range []struct {
		in   byte
		want byte
		ok   bool
	}{
		{'A', 'A', true}, {'c', 'C', true}, {'N', 'N', true},
		{'r', 'N', true}, {'V', 'N', true}, {'u', 'N', true},
		{'-', 0, false}, {'!', 0, false}, {' ', 0, false}, {0, 0, false},
	} {
		got, ok := NormalizeBase(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("NormalizeBase(%q) = %q,%v want %q,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestPackUnpackKmer(t *testing.T) {
	seq := []byte("ACGTACGTACGT")
	key, ok := PackKmer(seq)
	if !ok {
		t.Fatal("PackKmer failed")
	}
	if got := UnpackKmer(key, len(seq)); !bytes.Equal(got, seq) {
		t.Errorf("round trip = %s, want %s", got, seq)
	}
	if _, ok := PackKmer([]byte("ACGN")); ok {
		t.Error("PackKmer accepted N")
	}
	long := bytes.Repeat([]byte("A"), 32)
	if _, ok := PackKmer(long); ok {
		t.Error("PackKmer accepted 32-mer")
	}
}

func TestPackKmerDistinct(t *testing.T) {
	// All 4^6 6-mers must pack to distinct keys.
	seen := make(map[KmerKey]bool)
	var gen func(prefix []byte)
	gen = func(prefix []byte) {
		if len(prefix) == 6 {
			key, ok := PackKmer(prefix)
			if !ok {
				t.Fatalf("PackKmer(%s) failed", prefix)
			}
			if seen[key] {
				t.Fatalf("duplicate key for %s", prefix)
			}
			seen[key] = true
			return
		}
		for _, b := range []byte("ACGT") {
			gen(append(prefix, b))
		}
	}
	gen(nil)
	if len(seen) != 4096 {
		t.Errorf("distinct keys = %d, want 4096", len(seen))
	}
}

func TestCountKmers(t *testing.T) {
	if n := CountKmers([]byte("AAAA"), 2); n != 1 {
		t.Errorf("CountKmers(AAAA,2) = %d, want 1", n)
	}
	if n := CountKmers([]byte("ACGT"), 2); n != 3 {
		t.Errorf("CountKmers(ACGT,2) = %d, want 3", n)
	}
	if n := CountKmers([]byte("ACNGT"), 2); n != 2 {
		t.Errorf("CountKmers with N = %d, want 2", n)
	}
	if n := CountKmers([]byte("AC"), 3); n != 0 {
		t.Errorf("CountKmers short = %d, want 0", n)
	}
}

func TestConcat(t *testing.T) {
	seqs := []*Sequence{
		{Name: "a", Bases: []byte("AAA")},
		{Name: "b", Bases: []byte("CC")},
		{Name: "c", Bases: []byte("G")},
	}
	bases, starts := Concat(seqs)
	if string(bases) != "AAACCG" {
		t.Errorf("bases = %s", bases)
	}
	wantStarts := []int{0, 3, 5, 6}
	for i, w := range wantStarts {
		if starts[i] != w {
			t.Errorf("starts[%d] = %d, want %d", i, starts[i], w)
		}
	}
}

func TestAssemblyHelpers(t *testing.T) {
	a := FromString("test", "acgt")
	if a.TotalLen() != 4 {
		t.Errorf("TotalLen = %d", a.TotalLen())
	}
	if a.Seq("test") == nil || a.Seq("missing") != nil {
		t.Error("Seq lookup wrong")
	}
	if got := a.String(); !strings.Contains(got, "test") {
		t.Errorf("String = %q", got)
	}
}

func TestFormatBP(t *testing.T) {
	cases := map[int]string{
		5:          "5 bp",
		1500:       "1.5 Kbp",
		2500000:    "2.5 Mbp",
		3000000000: "3.0 Gbp",
	}
	for n, want := range cases {
		if got := FormatBP(n); got != want {
			t.Errorf("FormatBP(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFASTAFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/toy.fa"
	rng := rand.New(rand.NewSource(1))
	bases := make([]byte, 1000)
	for i := range bases {
		bases[i] = "ACGT"[rng.Intn(4)]
	}
	a := &Assembly{Name: "toy", Seqs: []*Sequence{{Name: "chr1", Bases: bases}}}
	if err := WriteFASTAFile(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "toy" {
		t.Errorf("assembly name = %q, want toy", got.Name)
	}
	if !bytes.Equal(got.Seqs[0].Bases, bases) {
		t.Error("bases mismatch after file round trip")
	}
}
