package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"darwinwga"
	"darwinwga/internal/evolve"
)

func TestRunSyntheticPairToMAF(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.maf")
	err := run("", "", "dm6-droSim1", 0.0004, out, false, 0, 0, 0, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "##maf") {
		t.Errorf("output is not MAF: %q", string(data[:min(len(data), 40)]))
	}
	if !strings.Contains(string(data), "dm6.chr1") {
		t.Error("MAF missing target sequence names")
	}
}

func TestRunFASTAFiles(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := evolve.StandardPair("dm6-droSim1", 0.0004)
	pair, err := evolve.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tPath := filepath.Join(dir, "t.fa")
	qPath := filepath.Join(dir, "q.fa")
	if err := darwinwga.WriteFASTA(tPath, pair.Target); err != nil {
		t.Fatal(err)
	}
	if err := darwinwga.WriteFASTA(qPath, pair.Query); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.maf")
	if err := run(tPath, qPath, "", 0, out, true /* ungapped baseline */, 0, 0, 0, true, 3); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("MAF output missing or empty: %v", err)
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := run("", "", "", 0, "", false, 0, 0, 0, false, 5); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run("", "", "bogus-pair", 1, "", false, 0, 0, 0, false, 5); err == nil {
		t.Error("unknown pair accepted")
	}
}
