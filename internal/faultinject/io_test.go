package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// syncBuffer records whether Sync was called, modeling a file the crash
// action flushes before dying.
type syncBuffer struct {
	bytes.Buffer
	synced bool
}

func (b *syncBuffer) Sync() error { b.synced = true; return nil }

func TestNilIOFaultsPassThrough(t *testing.T) {
	var f *IOFaults
	var buf bytes.Buffer
	n, err := f.Write(&buf, []byte("hello"))
	if n != 5 || err != nil {
		t.Fatalf("nil Write = (%d, %v), want (5, nil)", n, err)
	}
	if err := f.Check(OpSync); err != nil {
		t.Fatalf("nil Check: %v", err)
	}
	if got := f.FiredIO(); got != nil {
		t.Fatalf("nil FiredIO = %v, want nil", got)
	}
}

func TestIOErrHitCounting(t *testing.T) {
	f := NewIO(IORule{Op: OpWrite, Hit: 3, Action: IOErr})
	var buf bytes.Buffer
	for i := 1; i <= 5; i++ {
		n, err := f.Write(&buf, []byte("ab"))
		if i == 3 {
			if err == nil || !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: err = %v, want ErrInjected", i, err)
			}
			if n != 0 {
				t.Fatalf("write %d: n = %d, want 0", i, n)
			}
		} else if err != nil || n != 2 {
			t.Fatalf("write %d: (%d, %v), want (2, nil)", i, n, err)
		}
	}
	if got := buf.String(); got != "abababab" {
		t.Fatalf("buffer %q: the faulted write must not reach the file", got)
	}
	fired := f.FiredIO()
	if len(fired) != 1 || fired[0] != (IOEvent{Op: OpWrite, Action: IOErr}) {
		t.Fatalf("FiredIO = %v", fired)
	}
}

func TestIOErrEveryHit(t *testing.T) {
	f := NewIO(IORule{Op: OpSync, Action: IOErr}) // Hit 0: every sync
	for i := 0; i < 3; i++ {
		if err := f.Check(OpSync); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if err := f.Check(OpRename); err != nil {
		t.Fatalf("rename must not match an OpSync rule: %v", err)
	}
}

func TestIOShortWrite(t *testing.T) {
	f := NewIO(IORule{Op: OpWrite, Hit: 1, Action: IOShortWrite, Short: 3})
	var buf bytes.Buffer
	n, err := f.Write(&buf, []byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 3 || buf.String() != "abc" {
		t.Fatalf("wrote (%d, %q), want (3, %q)", n, buf.String(), "abc")
	}
	// Short longer than the payload writes it all, still fails.
	f = NewIO(IORule{Op: OpWrite, Hit: 1, Action: IOShortWrite, Short: 99})
	buf.Reset()
	n, err = f.Write(&buf, []byte("xy"))
	if !errors.Is(err, ErrInjected) || n != 2 || buf.String() != "xy" {
		t.Fatalf("over-long short write: (%d, %q, %v)", n, buf.String(), err)
	}
}

func TestIOErrCustomError(t *testing.T) {
	custom := fmt.Errorf("disk on fire")
	f := NewIO(IORule{Op: OpRename, Hit: 1, Action: IOErr, Err: custom})
	if err := f.Check(OpRename); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want the custom error", err)
	}
}

func TestIOCrashKillOverride(t *testing.T) {
	f := NewIO(IORule{Op: OpWrite, Hit: 2, Action: IOCrash, Short: 4})
	crashed := false
	f.SetKill(func() { crashed = true; panic("crashed") })
	buf := &syncBuffer{}
	if _, err := f.Write(buf, []byte("first")); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		f.Write(buf, []byte("second"))
		t.Error("crash write returned without panicking")
	}()
	if !crashed {
		t.Fatal("kill override never ran")
	}
	if got := buf.String(); got != "firstseco" {
		t.Fatalf("on-disk bytes %q, want %q (torn second write)", got, "firstseco")
	}
	if !buf.synced {
		t.Fatal("crash action must sync the torn bytes so they model on-disk state")
	}
}

func TestIOFirstMatchingRuleWins(t *testing.T) {
	f := NewIO(
		IORule{Op: OpWrite, Hit: 1, Action: IOErr},
		IORule{Op: OpWrite, Hit: 1, Action: IOShortWrite, Short: 1},
	)
	var buf bytes.Buffer
	if _, err := f.Write(&buf, []byte("zz")); !errors.Is(err, ErrInjected) {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("first rule (IOErr) must win; buffer has %q", buf.String())
	}
	// Matching stops at the firing rule, so rule two's visit count did
	// not advance; its Hit:1 fires on the next write.
	n, err := f.Write(&buf, []byte("zz"))
	if !errors.Is(err, ErrInjected) || n != 1 || buf.String() != "z" {
		t.Fatalf("second write: (%d, %q, %v), want rule two's short write", n, buf.String(), err)
	}
}
