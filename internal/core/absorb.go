package core

import "darwinwga/internal/align"

// absorber implements the anchor-absorption hash of Section III-D: an
// anchor that lands inside a region already covered by a previous
// alignment (on a nearby diagonal) would reproduce that alignment, so
// it is skipped. Coverage is tracked per diagonal bin as a list of
// target intervals.
type absorber struct {
	band int
	bins map[int][]tspan
}

type tspan struct {
	start, end int
}

func newAbsorber(band int) *absorber {
	if band <= 0 {
		return &absorber{band: 0}
	}
	return &absorber{band: band, bins: make(map[int][]tspan)}
}

// covered reports whether (tPos, qPos) lies inside a recorded
// alignment's diagonal footprint.
func (ab *absorber) covered(tPos, qPos int) bool {
	if ab.band == 0 {
		return false
	}
	bin := diagBin(tPos-qPos, ab.band)
	for _, s := range ab.bins[bin] {
		// End-inclusive: filter Vmax positions are exclusive ends, so an
		// anchor at the very end of a recorded alignment is a duplicate.
		if tPos >= s.start && tPos <= s.end {
			return true
		}
	}
	return false
}

// add records an alignment's footprint: every diagonal bin between the
// path's minimum and maximum diagonal (padded one bin each side) covers
// the target span. The path's diagonal can wander far outside the range
// spanned by its corner diagonals when insertions and deletions balance,
// so callers must pass the true min/max diagonal along the path.
func (ab *absorber) add(tStart, tEnd, dMin, dMax int) {
	if ab.band == 0 {
		return
	}
	d0 := diagBin(dMin, ab.band) - 1
	d1 := diagBin(dMax, ab.band) + 1
	for bin := d0; bin <= d1; bin++ {
		ab.bins[bin] = append(ab.bins[bin], tspan{start: tStart, end: tEnd})
	}
}

// pathDiagRange walks an alignment and returns the minimum and maximum
// diagonal (t - q) its path touches.
func pathDiagRange(tStart, qStart int, ops []align.EditOp) (dMin, dMax int) {
	d := tStart - qStart
	dMin, dMax = d, d
	for _, op := range ops {
		switch op {
		case align.OpInsert:
			d--
		case align.OpDelete:
			d++
		default:
			continue
		}
		if d < dMin {
			dMin = d
		}
		if d > dMax {
			dMax = d
		}
	}
	return dMin, dMax
}

// diagBin buckets a diagonal; negative diagonals round toward negative
// infinity so adjacent diagonals share bins consistently.
func diagBin(diag, band int) int {
	if diag < 0 {
		return -((-diag - 1) / band) - 1
	}
	return diag / band
}
