package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Shard-targeted fault injection. The scatter/gather dispatch plane
// retries individual work units across workers, which means its failure
// handling is keyed on *which shard* failed, not which request. These
// rules let a test (or a subprocess e2e, via ParseShardFaults on an
// environment variable) fail exactly the work units it names — on every
// worker, on a specific strand, or only the first N attempts — so retry
// exhaustion and partial-result degradation fire on cue.

// ErrInjectedShard is the cause of every fault injected by shard rules.
var ErrInjectedShard = errors.New("faultinject: shard unit fault (injected)")

// ShardRule selects the shard work units a fault fires on. Zero-valued
// matchers are wildcards, mirroring IORule.
type ShardRule struct {
	// Seq matches the work unit's sequence number; -1 matches every
	// unit.
	Seq int
	// Strand matches the unit's strand ('+' or '-'); 0 matches both.
	Strand byte
	// Hit fires on the Nth matching check (1-based, counted per rule);
	// 0 fires on every match — the shape retry-exhaustion tests need,
	// since the unit must fail on every worker it lands on.
	Hit int
}

// ShardFaults matches ShardRules against shard work-unit executions.
// A nil *ShardFaults is valid and injects nothing, so serving code can
// thread it unconditionally.
type ShardFaults struct {
	mu    sync.Mutex
	rules []ShardRule
	seen  []int
	fired int
}

// NewShard builds a shard fault set from rules. Rules are tried in
// order; the first match fires at most once per check.
func NewShard(rules ...ShardRule) *ShardFaults {
	return &ShardFaults{rules: rules, seen: make([]int, len(rules))}
}

// Check reports the injected error for one execution of the (seq,
// strand) work unit, or nil when no rule fires. A nil receiver is a
// no-op.
func (f *ShardFaults) Check(seq int, strand byte) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.rules {
		r := &f.rules[i]
		if r.Seq >= 0 && r.Seq != seq {
			continue
		}
		if r.Strand != 0 && r.Strand != strand {
			continue
		}
		f.seen[i]++
		if r.Hit == 0 || f.seen[i] == r.Hit {
			f.fired++
			return fmt.Errorf("unit %d/%c: %w", seq, strand, ErrInjectedShard)
		}
	}
	return nil
}

// FiredShard returns how many shard faults have fired.
func (f *ShardFaults) FiredShard() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// ParseShardFaults builds a fault set from a compact spec, the form a
// subprocess test passes through an environment variable. The spec is
// comma-separated rules of the form seq[:strand[:hit]] with "*" as the
// wildcard: "2" fails unit 2 always, "*:-" fails every '-' unit,
// "3:+:1" fails the first attempt of unit 3/+. An empty spec returns
// nil (no faults).
func ParseShardFaults(spec string) (*ShardFaults, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []ShardRule
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("faultinject: shard rule %q has more than seq:strand:hit", part)
		}
		r := ShardRule{Seq: -1}
		if fields[0] != "*" && fields[0] != "" {
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: shard rule %q: bad seq %q", part, fields[0])
			}
			r.Seq = n
		}
		if len(fields) > 1 && fields[1] != "*" && fields[1] != "" {
			if fields[1] != "+" && fields[1] != "-" {
				return nil, fmt.Errorf("faultinject: shard rule %q: strand must be + or -", part)
			}
			r.Strand = fields[1][0]
		}
		if len(fields) > 2 && fields[2] != "*" && fields[2] != "" {
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: shard rule %q: bad hit %q", part, fields[2])
			}
			r.Hit = n
		}
		rules = append(rules, r)
	}
	return NewShard(rules...), nil
}
