package gact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"darwinwga/internal/align"
)

// Property: every extension produces a consistent transcript that
// rescores exactly, contains the anchor, and stays within bounds —
// for random anchors over random related pairs.
func TestQuickExtensionInvariants(t *testing.T) {
	sc := align.DefaultScoring()
	ext, err := NewExtender(sc, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte, anchorRaw uint16) bool {
		if len(raw) == 0 {
			raw = []byte{1}
		}
		rng := rand.New(rand.NewSource(int64(raw[0]) + int64(len(raw))<<8))
		n := 100 + len(raw)%2000
		target := randSeq(rng, n)
		query := mutate(rng, target, 0.12, 0.02)
		tA := int(anchorRaw) % (n + 1)
		qA := min(tA, len(query))
		a := ext.Extend(target, query, tA, qA, nil)
		if err := a.CheckConsistency(len(target), len(query)); err != nil {
			return false
		}
		if a.TStart > tA || a.TEnd < tA || a.QStart > qA || a.QEnd < qA {
			return false // the anchor must lie inside the extension
		}
		return a.Rescore(sc, target, query) == a.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: smaller tiles never let the extension escape the sequence
// bounds, and stats cells grow with tile size on identical sequences.
func TestQuickTileSizeSafety(t *testing.T) {
	sc := align.DefaultScoring()
	f := func(raw []byte, tileRaw uint8) bool {
		if len(raw) == 0 {
			raw = []byte{7}
		}
		rng := rand.New(rand.NewSource(int64(raw[0])))
		n := 50 + len(raw)%500
		seq := randSeq(rng, n)
		tile := 32 + int(tileRaw)%512
		cfg := Config{TileSize: tile, Overlap: min(16, tile/4), Y: 9430}
		ext, err := NewExtender(sc, cfg)
		if err != nil {
			return false
		}
		a := ext.Extend(seq, seq, n/2, n/2, nil)
		return a.TStart == 0 && a.TEnd == n && a.QStart == 0 && a.QEnd == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
