package indexstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"darwinwga/internal/seed"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.dwx from the deterministic fixture")

// goldenPattern is deliberately low-weight so the checked-in fixture
// stays a few KB.
const goldenPattern = "110101011"

// goldenTarget returns the deterministic fixture target. math/rand's
// legacy source is sequence-stable across Go releases, so the golden
// file reproduces bit-for-bit.
func goldenTarget() []byte {
	rng := rand.New(rand.NewSource(42))
	const bases = "ACGT"
	out := make([]byte, 2000)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

func buildTestIndex(t testing.TB) (*seed.Index, []byte, string) {
	t.Helper()
	target := goldenTarget()
	sh, err := seed.ParseShape(goldenPattern)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := seed.BuildIndex(target, sh, seed.IndexOptions{MaxFreq: 8})
	if err != nil {
		t.Fatal(err)
	}
	return ix, target, FingerprintBases(target)
}

func TestRoundTrip(t *testing.T) {
	ix, _, fp := buildTestIndex(t)
	data, err := Encode(ix, fp)
	if err != nil {
		t.Fatal(err)
	}
	got, hdr, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.FormatVersion != FormatVersion || hdr.SeedPattern != goldenPattern ||
		hdr.MaxFreq != 8 || hdr.TargetFingerprint != fp || hdr.TargetLen != ix.TargetLen() {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	ws, wp := ix.RawParts()
	gs, gp := got.RawParts()
	if !reflect.DeepEqual(ws, gs) || !reflect.DeepEqual(wp, gp) {
		t.Fatal("decoded tables differ from originals")
	}
	if got.MaxFreq() != ix.MaxFreq() || got.TargetLen() != ix.TargetLen() ||
		got.Shape().Pattern != ix.Shape().Pattern {
		t.Fatal("decoded index parameters differ")
	}
}

func TestWriteLoadAtomic(t *testing.T) {
	ix, _, fp := buildTestIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.dwx")
	if err := Write(path, ix, fp); err != nil {
		t.Fatal(err)
	}
	// No temp droppings after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "t.dwx" {
		t.Fatalf("directory not clean after Write: %v", entries)
	}
	got, hdr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.TargetFingerprint != fp {
		t.Fatalf("fingerprint %s, want %s", hdr.TargetFingerprint, fp)
	}
	if got.TargetLen() != ix.TargetLen() {
		t.Fatalf("target len %d, want %d", got.TargetLen(), ix.TargetLen())
	}
	h2, err := ReadHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if *h2 != *hdr {
		t.Fatalf("ReadHeader %+v != Load header %+v", h2, hdr)
	}
}

// TestTruncated cuts the file at every length from 0 to full-1; each
// prefix must fail with a typed error, never panic, never succeed.
func TestTruncated(t *testing.T) {
	ix, _, fp := buildTestIndex(t)
	data, err := Encode(ix, fp)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		_, _, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(data))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("truncation to %d bytes: error %v is not ErrCorrupt/ErrBadMagic", n, err)
		}
	}
}

// TestFlippedBytes flips every byte of the serialized file in turn; the
// CRC framing (or the magic check) must catch each flip with a typed
// error.
func TestFlippedBytes(t *testing.T) {
	ix, _, fp := buildTestIndex(t)
	data, err := Encode(ix, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		_, _, err := Decode(mut)
		if err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("flip at byte %d: error %v is not ErrCorrupt/ErrBadMagic", i, err)
		}
	}
}

// reframe rewrites the header section of a valid file with hdr,
// recomputing the CRC so only the header content differs.
func reframe(t *testing.T, data []byte, hdr Header) []byte {
	t.Helper()
	// Skip magic, drop the original header frame, keep the rest.
	rest := data[len(magic):]
	n := binary.LittleEndian.Uint32(rest[0:4])
	tail := rest[9+n:]
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte{}, magic...)
	out = appendFrame(out, kindHeader, hdrJSON)
	return append(out, tail...)
}

func TestWrongFormatVersion(t *testing.T) {
	ix, _, fp := buildTestIndex(t)
	data, err := Encode(ix, fp)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := ReadHeaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	hdr.FormatVersion = FormatVersion + 1
	_, _, err = Decode(reframe(t, data, *hdr))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("future-version file: error %v, want ErrVersion", err)
	}
}

func TestWrongFingerprintAndConfig(t *testing.T) {
	ix, _, fp := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "t.dwx")
	if err := Write(path, ix, fp); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadForTarget(path, fp, goldenPattern, 8); err != nil {
		t.Fatalf("matching LoadForTarget failed: %v", err)
	}
	if _, _, err := LoadForTarget(path, "00000000deadbeef", goldenPattern, 8); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("wrong fingerprint: error %v, want ErrFingerprintMismatch", err)
	}
	if _, _, err := LoadForTarget(path, fp, "1111", 8); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("wrong pattern: error %v, want ErrConfigMismatch", err)
	}
	if _, _, err := LoadForTarget(path, fp, goldenPattern, 99); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("wrong maxfreq: error %v, want ErrConfigMismatch", err)
	}
}

// TestGeometryLies corrupts header geometry fields with valid CRCs; the
// cross-checks against section sizes must reject them.
func TestGeometryLies(t *testing.T) {
	ix, _, fp := buildTestIndex(t)
	data, err := Encode(ix, fp)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReadHeaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Header){
		"buckets":    func(h *Header) { h.Buckets++ },
		"positions":  func(h *Header) { h.Positions-- },
		"target-len": func(h *Header) { h.TargetLen = 1 },
		"bad-shape":  func(h *Header) { h.SeedPattern = "0" },
	} {
		hdr := *base
		mutate(&hdr)
		if _, _, err := Decode(reframe(t, data, hdr)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s lie: error %v, want ErrCorrupt", name, err)
		}
	}
}

// TestGoldenFixture loads the checked-in serialized index and compares
// it against a fresh build of the same deterministic target. A format
// change that forgets to bump FormatVersion breaks here, in plain
// `go test` and CI, before it breaks an operator's index directory.
func TestGoldenFixture(t *testing.T) {
	path := filepath.Join("testdata", "golden.dwx")
	ix, _, fp := buildTestIndex(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := Write(path, ix, fp); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}
	got, hdr, err := Load(path)
	if err != nil {
		t.Fatalf("golden fixture failed to load (format break without a version bump?): %v", err)
	}
	if hdr.FormatVersion != FormatVersion {
		t.Fatalf("golden fixture has version %d, build writes %d: regenerate with -update-golden",
			hdr.FormatVersion, FormatVersion)
	}
	if hdr.TargetFingerprint != fp {
		t.Fatalf("golden fingerprint %s, fixture target fingerprints to %s", hdr.TargetFingerprint, fp)
	}
	ws, wp := ix.RawParts()
	gs, gp := got.RawParts()
	if !reflect.DeepEqual(ws, gs) || !reflect.DeepEqual(wp, gp) {
		t.Fatal("golden fixture tables differ from a fresh deterministic build")
	}
}

func TestFingerprintBasesFormat(t *testing.T) {
	fp := FingerprintBases([]byte("ACGT"))
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex digits", fp)
	}
	if fp == FingerprintBases([]byte("ACGA")) {
		t.Fatal("different bases share a fingerprint")
	}
}

// ReadHeaderBytes parses the header from an in-memory encoding (test
// helper mirroring ReadHeader).
func ReadHeaderBytes(data []byte) (*Header, error) {
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic) {
		return nil, ErrBadMagic
	}
	_, payload, _, err := readFrame(data[len(magic):])
	if err != nil {
		return nil, err
	}
	var hdr Header
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, err
	}
	return &hdr, nil
}
