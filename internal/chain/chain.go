// Package chain implements AXTCHAIN-style chaining (Kent et al., PNAS
// 2003) of local alignments into maximally-scoring ordered chains, the
// post-processing step both LASTZ and Darwin-WGA outputs go through
// before sensitivity is measured (Section II). Gap costs follow the
// UCSC "loose" linear-gap schedule (axtChain -linearGap=loose).
package chain

import (
	"fmt"
	"sort"
)

// Block is one local alignment to be chained. Coordinates are half-open
// in the (target, query) coordinate space of a single strand; callers
// chain each strand separately.
type Block struct {
	TStart, TEnd int
	QStart, QEnd int
	// Score is the alignment's own score.
	Score int32
	// Matches counts identical base pairs in the alignment (used by the
	// paper's matched-base-pair sensitivity metric).
	Matches int
	// UngappedBlocks holds the lengths of the alignment's maximal
	// gap-free runs (Figure 2's statistic); optional.
	UngappedBlocks []int
}

// Chain is an ordered, co-linear sequence of blocks with a combined
// score (block scores minus inter-block gap costs).
type Chain struct {
	Blocks []*Block
	Score  int64
}

// Matches sums matched base pairs over the chain's blocks.
func (c *Chain) Matches() int {
	n := 0
	for _, b := range c.Blocks {
		n += b.Matches
	}
	return n
}

// TStart/TEnd and QStart/QEnd return the chain's extent.
func (c *Chain) TStart() int { return c.Blocks[0].TStart }
func (c *Chain) TEnd() int   { return c.Blocks[len(c.Blocks)-1].TEnd }
func (c *Chain) QStart() int { return c.Blocks[0].QStart }
func (c *Chain) QEnd() int   { return c.Blocks[len(c.Blocks)-1].QEnd }

// Options configures chaining.
type Options struct {
	// MaxGap is the largest target or query gap bridged between blocks.
	MaxGap int
	// MaxPredecessors bounds the DP scan per block (0 = unbounded); the
	// nearest predecessors by target end are considered first.
	MaxPredecessors int
	// MinScore drops chains scoring below this from the output.
	MinScore int64
}

// DefaultOptions mirror axtChain's practical behaviour at our genome
// scale.
func DefaultOptions() Options {
	return Options{MaxGap: 100000, MaxPredecessors: 500, MinScore: 1000}
}

// looseGap is the axtChain -linearGap=loose piecewise-linear gap cost
// schedule (qGap/tGap for one-sided gaps, bothGap for double-sided).
var looseGapSizes = []int{1, 2, 3, 11, 111, 2111, 12111, 32111, 72111, 152111, 252111}
var looseGapOne = []int64{350, 425, 450, 600, 900, 2900, 22900, 57900, 117900, 217900, 317900}
var looseGapBoth = []int64{750, 825, 850, 1000, 1300, 3300, 23300, 58300, 118300, 218300, 318300}

// GapCost returns the cost of bridging a target gap dt and query gap dq
// between consecutive chain blocks. Negative gaps (overlaps) are not
// allowed by the chaining DP and cost "infinity" here.
func GapCost(dt, dq int) int64 {
	if dt < 0 || dq < 0 {
		return 1 << 60
	}
	if dt == 0 && dq == 0 {
		return 0
	}
	size := max(dt, dq)
	table := looseGapOne
	if dt > 0 && dq > 0 {
		table = looseGapBoth
	}
	return interpolate(looseGapSizes, table, size)
}

// interpolate evaluates the piecewise-linear schedule at size,
// extrapolating the final segment's slope beyond the table.
func interpolate(sizes []int, costs []int64, size int) int64 {
	if size <= sizes[0] {
		return costs[0]
	}
	n := len(sizes)
	if size >= sizes[n-1] {
		slope := float64(costs[n-1]-costs[n-2]) / float64(sizes[n-1]-sizes[n-2])
		return costs[n-1] + int64(slope*float64(size-sizes[n-1]))
	}
	i := sort.SearchInts(sizes, size)
	// sizes[i-1] < size <= sizes[i]
	frac := float64(size-sizes[i-1]) / float64(sizes[i]-sizes[i-1])
	return costs[i-1] + int64(frac*float64(costs[i]-costs[i-1]))
}

// Build chains the blocks and returns chains sorted by descending score.
// Each block is assigned to exactly one chain. Blocks must all be on
// the same strand.
func Build(blocks []*Block, opts Options) []Chain {
	if len(blocks) == 0 {
		return nil
	}
	// Sort by target start (ties: query start) — the DP order.
	sorted := make([]*Block, len(blocks))
	copy(sorted, blocks)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TStart != sorted[j].TStart {
			return sorted[i].TStart < sorted[j].TStart
		}
		return sorted[i].QStart < sorted[j].QStart
	})

	n := len(sorted)
	best := make([]int64, n) // best chain score ending at i
	prev := make([]int, n)   // predecessor index or -1
	for i := range sorted {
		best[i] = int64(sorted[i].Score)
		prev[i] = -1
	}
	for i := 1; i < n; i++ {
		bi := sorted[i]
		scanned := 0
		for j := i - 1; j >= 0; j-- {
			bj := sorted[j]
			if opts.MaxPredecessors > 0 {
				scanned++
				if scanned > opts.MaxPredecessors {
					break
				}
			}
			dt := bi.TStart - bj.TEnd
			dq := bi.QStart - bj.QEnd
			if dt < 0 || dq < 0 || dt > opts.MaxGap || dq > opts.MaxGap {
				continue
			}
			cand := best[j] + int64(bi.Score) - GapCost(dt, dq)
			if cand > best[i] {
				best[i] = cand
				prev[i] = j
			}
		}
	}

	// Greedy extraction: highest-scoring chain end first; a block may
	// appear in only one chain.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return best[order[a]] > best[order[b]] })
	used := make([]bool, n)
	var chains []Chain
	for _, end := range order {
		if used[end] {
			continue
		}
		// Walk predecessors; a chain truncates where it meets a block
		// already claimed by a higher-scoring chain.
		var rev []*Block
		for i := end; i >= 0 && !used[i]; i = prev[i] {
			used[i] = true
			rev = append(rev, sorted[i])
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		// Recompute the (possibly truncated) chain's score exactly.
		score := int64(rev[0].Score)
		for k := 1; k < len(rev); k++ {
			dt := rev[k].TStart - rev[k-1].TEnd
			dq := rev[k].QStart - rev[k-1].QEnd
			score += int64(rev[k].Score) - GapCost(dt, dq)
		}
		if score >= opts.MinScore {
			chains = append(chains, Chain{Blocks: rev, Score: score})
		}
	}
	sort.Slice(chains, func(a, b int) bool { return chains[a].Score > chains[b].Score })
	return chains
}

// TopScores returns the scores of the k highest-scoring chains (fewer if
// there are fewer chains).
func TopScores(chains []Chain, k int) []int64 {
	out := make([]int64, 0, k)
	for i := 0; i < len(chains) && i < k; i++ {
		out = append(out, chains[i].Score)
	}
	return out
}

// TotalMatches sums matched base pairs over all chains — the paper's
// Table III "Matched Base-Pairs Counts" metric.
func TotalMatches(chains []Chain) int {
	n := 0
	for i := range chains {
		n += chains[i].Matches()
	}
	return n
}

// SumTopScores sums the top-k chain scores; Table III's "Top 10 chain
// scores" comparisons use k=10.
func SumTopScores(chains []Chain, k int) int64 {
	var sum int64
	for _, s := range TopScores(chains, k) {
		sum += s
	}
	return sum
}

// Validate checks chain invariants: blocks strictly ordered and
// non-overlapping in both coordinates. Tests use it as an oracle.
func (c *Chain) Validate() error {
	if len(c.Blocks) == 0 {
		return fmt.Errorf("chain: empty chain")
	}
	for k := 1; k < len(c.Blocks); k++ {
		a, b := c.Blocks[k-1], c.Blocks[k]
		if b.TStart < a.TEnd || b.QStart < a.QEnd {
			return fmt.Errorf("chain: blocks %d and %d overlap: T %d<%d or Q %d<%d",
				k-1, k, b.TStart, a.TEnd, b.QStart, a.QEnd)
		}
	}
	return nil
}
