// Package genome provides the fundamental sequence representation used
// throughout Darwin-WGA: nucleotide sequences over the extended DNA
// alphabet {A, C, G, T, N}, their 3-bit codes (matching the encoding the
// hardware stores in BRAM), FASTA input/output, and k-mer utilities.
//
// Sequences are stored as upper-case ASCII bytes. The package never
// allocates in per-base hot paths; callers that need packed codes use
// Encode/EncodeTo with reusable buffers.
package genome

import (
	"fmt"
	"strings"
)

// Base codes. The hardware encodes the extended alphabet in 3 bits; codes
// 0-3 are chosen so that code^2 is the transition partner (A<->G, C<->T)
// and 3-code is the complement (A<->T, C<->G).
const (
	CodeA = 0
	CodeC = 1
	CodeG = 2
	CodeT = 3
	CodeN = 4

	// AlphabetSize counts the extended alphabet {A,C,G,T,N}.
	AlphabetSize = 5
)

// encodeTable maps ASCII to base codes; 0xFF marks invalid characters.
var encodeTable [256]byte

// normalizeTable maps ASCII to the canonical upper-case alphabet stored
// in sequences: ACGTN map to themselves (case-folded), IUPAC ambiguity
// codes and U map to 'N'; 0 marks characters outside the FASTA
// nucleotide alphabet.
var normalizeTable [256]byte

// decodeTable maps base codes back to ASCII.
var decodeTable = [AlphabetSize]byte{'A', 'C', 'G', 'T', 'N'}

// complementTable maps ASCII bases to their complement.
var complementTable [256]byte

func init() {
	for i := range encodeTable {
		encodeTable[i] = 0xFF
	}
	set := func(b byte, code byte) {
		encodeTable[b] = code
		encodeTable[b|0x20] = code // lower case
	}
	set('A', CodeA)
	set('C', CodeC)
	set('G', CodeG)
	set('T', CodeT)
	set('N', CodeN)

	for _, b := range []byte("ACGTN") {
		normalizeTable[b] = b
		normalizeTable[b|0x20] = b
	}
	// IUPAC ambiguity codes, plus U (RNA): all collapse to N, the
	// pipeline's catch-all base. Gap characters are deliberately NOT
	// accepted — aligners consume unaligned sequence.
	for _, b := range []byte("URYSWKMBDHV") {
		normalizeTable[b] = 'N'
		normalizeTable[b|0x20] = 'N'
	}

	for i := range complementTable {
		complementTable[i] = 'N'
	}
	comp := func(a, b byte) {
		complementTable[a] = b
		complementTable[a|0x20] = b
	}
	comp('A', 'T')
	comp('T', 'A')
	comp('C', 'G')
	comp('G', 'C')
	comp('N', 'N')
}

// EncodeBase returns the 3-bit code of an ASCII base, or 0xFF if the byte
// is not a valid extended-alphabet character.
func EncodeBase(b byte) byte { return encodeTable[b] }

// DecodeBase returns the ASCII character for a base code.
func DecodeBase(code byte) byte {
	if int(code) < len(decodeTable) {
		return decodeTable[code]
	}
	return 'N'
}

// ComplementBase returns the Watson-Crick complement of an ASCII base.
func ComplementBase(b byte) byte { return complementTable[b] }

// NormalizeBase maps an ASCII character onto the canonical {A,C,G,T,N}
// alphabet after case folding: the IUPAC ambiguity codes
// (R,Y,S,W,K,M,B,D,H,V) and U become 'N'. ok is false for any other
// character.
func NormalizeBase(b byte) (canon byte, ok bool) {
	c := normalizeTable[b]
	return c, c != 0
}

// IsTransition reports whether two ASCII bases form a transition pair
// (A<->G or C<->T). Identical bases are not transitions.
func IsTransition(a, b byte) bool {
	ca, cb := encodeTable[a], encodeTable[b]
	if ca >= CodeN || cb >= CodeN {
		return false
	}
	return ca != cb && ca^2 == cb
}

// Sequence is a named nucleotide sequence, e.g. one chromosome of an
// assembly. Bases holds upper-case ASCII over {A,C,G,T,N}.
type Sequence struct {
	Name  string
	Bases []byte
}

// Len returns the number of bases.
func (s *Sequence) Len() int { return len(s.Bases) }

// Sub returns the half-open interval [start, end) of the sequence as a
// sub-slice (no copy). It panics if the interval is out of range.
func (s *Sequence) Sub(start, end int) []byte { return s.Bases[start:end] }

// Validate checks that every byte is a valid extended-alphabet character
// and upper-cases the sequence in place.
func (s *Sequence) Validate() error {
	for i, b := range s.Bases {
		code := encodeTable[b]
		if code == 0xFF {
			return fmt.Errorf("genome: sequence %q: invalid base %q at offset %d", s.Name, b, i)
		}
		s.Bases[i] = decodeTable[code]
	}
	return nil
}

// GC returns the fraction of G or C bases, ignoring Ns. It returns 0 for
// an empty sequence.
func (s *Sequence) GC() float64 {
	gc, acgt := 0, 0
	for _, b := range s.Bases {
		switch encodeTable[b] {
		case CodeG, CodeC:
			gc++
			acgt++
		case CodeA, CodeT:
			acgt++
		}
	}
	if acgt == 0 {
		return 0
	}
	return float64(gc) / float64(acgt)
}

// ReverseComplement returns a newly allocated reverse complement of seq.
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = complementTable[b]
	}
	return out
}

// ReverseComplementInPlace reverse-complements seq in place.
func ReverseComplementInPlace(seq []byte) {
	i, j := 0, len(seq)-1
	for i < j {
		seq[i], seq[j] = complementTable[seq[j]], complementTable[seq[i]]
		i++
		j--
	}
	if i == j {
		seq[i] = complementTable[seq[i]]
	}
}

// Encode converts ASCII bases to 3-bit codes in a new slice. Invalid
// characters become CodeN.
func Encode(seq []byte) []byte {
	out := make([]byte, len(seq))
	EncodeTo(out, seq)
	return out
}

// EncodeTo converts ASCII bases into dst, which must be at least
// len(seq) long. Invalid characters become CodeN.
func EncodeTo(dst, seq []byte) {
	for i, b := range seq {
		code := encodeTable[b]
		if code == 0xFF {
			code = CodeN
		}
		dst[i] = code
	}
}

// Decode converts 3-bit codes back to ASCII bases.
func Decode(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = DecodeBase(c)
	}
	return out
}

// Assembly is a named collection of sequences (an "assembly" in genome-
// database terms, e.g. ce11). Darwin-WGA aligns one target assembly
// against one query assembly.
type Assembly struct {
	Name string
	Seqs []*Sequence
}

// TotalLen returns the summed length of all sequences.
func (a *Assembly) TotalLen() int {
	n := 0
	for _, s := range a.Seqs {
		n += len(s.Bases)
	}
	return n
}

// Seq returns the sequence with the given name, or nil.
func (a *Assembly) Seq(name string) *Sequence {
	for _, s := range a.Seqs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// String summarizes the assembly, e.g. "ce11 (2 seqs, 1.0 Mbp)".
func (a *Assembly) String() string {
	return fmt.Sprintf("%s (%d seqs, %s)", a.Name, len(a.Seqs), FormatBP(a.TotalLen()))
}

// FormatBP renders a base-pair count with a human-readable unit
// (bp, Kbp, Mbp, Gbp).
func FormatBP(n int) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1f Gbp", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1f Mbp", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1f Kbp", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d bp", n)
	}
}

// Concat joins sequences into one contiguous byte slice with their
// cumulative start offsets, which is how the pipeline addresses a whole
// assembly as a single coordinate space. The returned starts slice has
// len(seqs)+1 entries; starts[len(seqs)] is the total length.
func Concat(seqs []*Sequence) (bases []byte, starts []int) {
	total := 0
	for _, s := range seqs {
		total += len(s.Bases)
	}
	bases = make([]byte, 0, total)
	starts = make([]int, 0, len(seqs)+1)
	for _, s := range seqs {
		starts = append(starts, len(bases))
		bases = append(bases, s.Bases...)
	}
	starts = append(starts, len(bases))
	return bases, starts
}

// FromString builds a single-sequence assembly from a literal string;
// convenient in tests and examples.
func FromString(name, bases string) *Assembly {
	s := &Sequence{Name: name, Bases: []byte(strings.ToUpper(bases))}
	return &Assembly{Name: name, Seqs: []*Sequence{s}}
}
