package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darwinwga"
	"darwinwga/internal/evolve"
)

func TestRunSyntheticPairToMAF(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.maf")
	err := run(context.Background(), options{
		pairName: "dm6-droSim1", scale: 0.0004, outPath: out,
		oneStrand: true, topChains: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "##maf") {
		t.Errorf("output is not MAF: %q", string(data[:min(len(data), 40)]))
	}
	if !strings.Contains(string(data), "dm6.chr1") {
		t.Error("MAF missing target sequence names")
	}
}

func TestRunFASTAFiles(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := evolve.StandardPair("dm6-droSim1", 0.0004)
	pair, err := evolve.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tPath := filepath.Join(dir, "t.fa")
	qPath := filepath.Join(dir, "q.fa")
	if err := darwinwga.WriteFASTA(tPath, pair.Target); err != nil {
		t.Fatal(err)
	}
	if err := darwinwga.WriteFASTA(qPath, pair.Query); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.maf")
	err = run(context.Background(), options{
		targetPath: tPath, queryPath: qPath, outPath: out,
		ungapped: true /* baseline */, scale: 0.01, oneStrand: true, topChains: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("MAF output missing or empty: %v", err)
	}
}

func TestRunArgumentValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, options{scale: 0.01, topChains: 5}); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run(ctx, options{pairName: "bogus-pair", scale: 1, topChains: 5}); err == nil {
		t.Error("unknown pair accepted")
	}
	if err := run(ctx, options{pairName: "dm6-droSim1", scale: 0, topChains: 5}); err == nil {
		t.Error("-scale 0 accepted")
	}
	if err := run(ctx, options{pairName: "dm6-droSim1", scale: -0.5, topChains: 5}); err == nil {
		t.Error("negative -scale accepted")
	}
	if err := run(ctx, options{pairName: "dm6-droSim1", scale: 0.001, topChains: -1}); err == nil {
		t.Error("negative -top accepted")
	}
	if err := run(ctx, options{pairName: "dm6-droSim1", scale: 0.001, topChains: 5, timeout: -time.Second}); err == nil {
		t.Error("negative -timeout accepted")
	}
}

func TestRunTimeoutWritesPartialOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.maf")
	err := run(context.Background(), options{
		pairName: "dm6-droSim1", scale: 0.001, outPath: out,
		topChains: 3, timeout: time.Nanosecond,
	})
	// A soft -timeout is graceful degradation, not a failure.
	if err != nil {
		t.Fatalf("soft timeout returned error: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "##maf") {
		t.Errorf("partial output is not MAF: %q", string(data[:min(len(data), 40)]))
	}
}

func TestRunCancelledContextWritesPartialOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.maf")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the pipeline starts: everything truncates
	err := run(ctx, options{
		pairName: "dm6-droSim1", scale: 0.001, outPath: out,
		topChains: 3,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The (empty) partial MAF must still have been written.
	data, rerr := os.ReadFile(out)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !strings.HasPrefix(string(data), "##maf") {
		t.Errorf("partial output is not MAF: %q", string(data[:min(len(data), 40)]))
	}
}
