package genome

import (
	"bytes"
	"testing"
)

// FuzzReadFASTA throws arbitrary bytes at the FASTA parser. Two
// properties: the parser never panics, and anything it accepts is
// already normalized — writing the parsed sequences back out and
// re-parsing must reproduce them exactly (names and bases), which is
// the invariant the server's crash-recovery query spill depends on.
func FuzzReadFASTA(f *testing.F) {
	f.Add([]byte(">chr1\nACGTACGT\nNNNN\n>chr2 description text\nacgtn\n"))
	f.Add([]byte(">s\r\nACGT\r\n; legacy comment\r\nTTTT\r\n"))
	f.Add([]byte(">lower\nacgturyswkmbdhvn\n"))
	f.Add([]byte(">empty-seq\n>next\nAC\n"))
	f.Add([]byte("ACGT\n"))  // data before any header
	f.Add([]byte(">\nACGT")) // empty name
	f.Add([]byte(""))
	f.Add([]byte(">x\nACGT!"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, err := ReadFASTA(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(seqs) == 0 {
			t.Fatal("ReadFASTA returned no sequences and no error")
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, seqs, 0); err != nil {
			t.Fatalf("WriteFASTA on parsed sequences: %v", err)
		}
		again, err := ReadFASTA(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing written FASTA: %v\noutput:\n%s", err, buf.Bytes())
		}
		if len(again) != len(seqs) {
			t.Fatalf("round-trip: %d sequences became %d", len(seqs), len(again))
		}
		for i := range seqs {
			if seqs[i].Name != again[i].Name {
				t.Errorf("sequence %d name %q round-tripped to %q", i, seqs[i].Name, again[i].Name)
			}
			if !bytes.Equal(seqs[i].Bases, again[i].Bases) {
				t.Errorf("sequence %d bases changed across round-trip", i)
			}
		}
	})
}
