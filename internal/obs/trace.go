package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one Chrome trace_event record. Complete spans use Ph "X"
// with Ts/Dur; nested begin/end pairs use "B"/"E". Ts and Dur are in
// microseconds, as the trace_event format specifies; Ts is relative to
// the Tracer's creation so traces start at zero.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer is a Recorder that collects the pipeline's span tree as
// Chrome trace_event JSON, loadable in about://tracing or Perfetto.
//
// Track (tid) layout: the orchestration goroutine — the Align call,
// strand and stage spans, and the single-goroutine extension stage
// with its per-anchor and per-tile spans — is tid 0; seeding and
// filter worker shards appear on tid 1+shard, with each shard's leaf
// tile events nested inside its shard span.
//
// Every leaf event carries the stage counters as args (seed_hits,
// candidates, cells, pass), so the trace aggregates back to exactly
// the run's Result.Workload. A Tracer records every event it is
// handed; traces of large runs are large, so it is meant for one-shot
// diagnostic runs (the CLI's -trace flag), not for always-on serving.
type Tracer struct {
	zero time.Time
	cap  int // 0 = unbounded (the one-shot CLI contract)

	mu      sync.Mutex
	events  []Event
	dropped int64
	traceID string
	jobID   string
}

// NewTracer returns an empty tracer; timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{zero: time.Now()}
}

// NewTracerCapped returns a tracer that retains at most capEvents
// events and counts the rest as dropped — the always-on serving mode,
// where an unbounded span buffer per job would be a memory leak.
// capEvents <= 0 means unbounded.
func NewTracerCapped(capEvents int) *Tracer {
	return &Tracer{zero: time.Now(), cap: capEvents}
}

// Identify tags this tracer with the cluster-wide trace id and the
// serving-layer job id. The ids ride on the root align span's args and
// on the export envelope; the per-tile hot path is unaffected.
func (t *Tracer) Identify(traceID, jobID string) {
	t.mu.Lock()
	t.traceID, t.jobID = traceID, jobID
	t.mu.Unlock()
}

// Identity returns the ids set by Identify.
func (t *Tracer) Identity() (traceID, jobID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID, t.jobID
}

// Dropped returns how many events the cap discarded.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// micros converts an absolute time to trace microseconds.
func (t *Tracer) micros(at time.Time) float64 {
	return float64(at.Sub(t.zero)) / float64(time.Microsecond)
}

func (t *Tracer) append(e Event) {
	t.mu.Lock()
	if t.cap > 0 && len(t.events) >= t.cap {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// begin emits a B event at now on tid.
func (t *Tracer) begin(name string, tid int, args map[string]any) {
	t.append(Event{Name: name, Ph: "B", Ts: t.micros(time.Now()), Tid: tid, Args: args})
}

// end emits an E event at now on tid.
func (t *Tracer) end(name string, tid int, args map[string]any) {
	t.append(Event{Name: name, Ph: "E", Ts: t.micros(time.Now()), Tid: tid, Args: args})
}

// complete emits an X event covering [start, start+dur) on tid.
func (t *Tracer) complete(name string, tid int, start time.Time, dur time.Duration, args map[string]any) {
	t.append(Event{
		Name: name, Ph: "X",
		Ts:  t.micros(start),
		Dur: float64(dur) / float64(time.Microsecond),
		Tid: tid, Args: args,
	})
}

// AlignBegin implements Recorder. When Identify has been called, the
// root span carries the trace/job identity in its args — the map is
// allocated here regardless, so the tagging is free.
func (t *Tracer) AlignBegin(qLen int) {
	args := map[string]any{"query_len": qLen}
	t.mu.Lock()
	traceID, jobID := t.traceID, t.jobID
	t.mu.Unlock()
	if traceID != "" {
		args["trace_id"] = traceID
	}
	if jobID != "" {
		args["job_id"] = jobID
	}
	t.begin("align", 0, args)
}

// AlignEnd implements Recorder.
func (t *Tracer) AlignEnd(hsps int, dur time.Duration) {
	t.end("align", 0, map[string]any{"hsps": hsps})
}

// StrandBegin implements Recorder.
func (t *Tracer) StrandBegin(strand byte) {
	t.begin("strand "+string(strand), 0, nil)
}

// StrandEnd implements Recorder.
func (t *Tracer) StrandEnd(strand byte) {
	t.end("strand "+string(strand), 0, nil)
}

// StageBegin implements Recorder.
func (t *Tracer) StageBegin(strand byte, stage Stage) {
	t.begin(stage.String(), 0, map[string]any{"strand": string(strand)})
}

// StageEnd implements Recorder.
func (t *Tracer) StageEnd(strand byte, stage Stage) {
	t.end(stage.String(), 0, nil)
}

// SeedShard implements Recorder.
func (t *Tracer) SeedShard(strand byte, shard int, seedHits, candidates int64, start time.Time, dur time.Duration) {
	t.complete("seed-shard", 1+shard, start, dur, map[string]any{
		"strand":     string(strand),
		"shard":      shard,
		"seed_hits":  seedHits,
		"candidates": candidates,
	})
}

// FilterTile implements Recorder.
func (t *Tracer) FilterTile(strand byte, shard int, pass bool, cells int64, start time.Time, dur time.Duration) {
	t.complete("filter-tile", 1+shard, start, dur, map[string]any{
		"strand": string(strand),
		"pass":   pass,
		"cells":  cells,
	})
}

// AnchorBegin implements Recorder.
func (t *Tracer) AnchorBegin(strand byte, anchor int) {
	t.begin("anchor", 0, map[string]any{"strand": string(strand), "index": anchor})
}

// AnchorSkipped implements Recorder: an instant event marking an
// anchor absorbed by an earlier alignment's coverage.
func (t *Tracer) AnchorSkipped(strand byte, anchor int) {
	t.append(Event{
		Name: "anchor-absorbed", Ph: "i", Ts: t.micros(time.Now()), Tid: 0,
		Args: map[string]any{"strand": string(strand), "index": anchor},
	})
}

// AnchorEnd implements Recorder.
func (t *Tracer) AnchorEnd(strand byte, anchor int, tiles, cells int64, hsp bool) {
	t.end("anchor", 0, map[string]any{"tiles": tiles, "cells": cells, "hsp": hsp})
}

// ExtensionTile implements Recorder.
func (t *Tracer) ExtensionTile(strand byte, anchor int, cells int64, start time.Time, dur time.Duration) {
	t.complete("gact-tile", 0, start, dur, map[string]any{
		"strand": string(strand),
		"anchor": anchor,
		"cells":  cells,
	})
}

// Events returns a snapshot of the collected events.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// TraceExport is the span-buffer envelope a worker serves at
// GET /v1/jobs/{id}/trace: the job's identity, the full buffer length
// (the caller's next cursor), and the events past the requested
// cursor. The coordinator polls this incrementally while the job runs,
// which is what lets it keep a dead worker's spans after a failover.
type TraceExport struct {
	TraceID string  `json:"trace_id,omitempty"`
	JobID   string  `json:"job_id,omitempty"`
	Total   int     `json:"total"`
	Dropped int64   `json:"dropped,omitempty"`
	Events  []Event `json:"events"`
}

// Export snapshots the events past cursor `after` (0 = everything)
// together with the tracer's identity.
func (t *Tracer) Export(after int) TraceExport {
	t.mu.Lock()
	defer t.mu.Unlock()
	ex := TraceExport{TraceID: t.traceID, JobID: t.jobID, Total: len(t.events), Dropped: t.dropped}
	if after < 0 {
		after = 0
	}
	if after < len(t.events) {
		ex.Events = append([]Event(nil), t.events[after:]...)
	}
	return ex
}

// Write writes the trace as Chrome trace_event JSON (the object
// form, {"traceEvents": [...]}), loadable in about://tracing and
// Perfetto.
func (t *Tracer) Write(w io.Writer) error {
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

var _ Recorder = (*Tracer)(nil)
