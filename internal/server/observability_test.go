package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"darwinwga/internal/obs"
	"darwinwga/internal/server"
)

// submitTraced submits a job carrying a distributed trace id in the
// X-Darwinwga-Trace header — the coordinator's propagation path.
func submitTraced(t *testing.T, base, traceID string, body map[string]any) jobStatus {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// tracedStatus decodes the trace-aware fields on the status payload.
type tracedStatus struct {
	TraceID   string `json:"trace_id"`
	TraceURL  string `json:"trace_url"`
	EventsURL string `json:"events_url"`
}

// TestJobTraceEndpoint: a job submitted with a trace header serves its
// span buffer at /v1/jobs/{id}/trace under that trace id, with working
// incremental cursors and a Chrome-format rendering.
func TestJobTraceEndpoint(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatal(err)
	}
	st := submitTraced(t, ts.URL, "tr-test-0001", map[string]any{
		"target":      pair.Target.Name,
		"query_fasta": fastaText(t, pair.Query),
		"query_name":  pair.Query.Name,
		"client":      "trace-test",
	})
	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %q (err %q)", final.State, final.Error)
	}

	// The status payload advertises the trace identity and both URLs.
	_, body := get(t, ts.URL+"/v1/jobs/"+st.ID)
	var tst tracedStatus
	if err := json.Unmarshal(body, &tst); err != nil {
		t.Fatal(err)
	}
	if tst.TraceID != "tr-test-0001" {
		t.Errorf("status trace_id = %q, want the header's id", tst.TraceID)
	}
	if tst.TraceURL != "/v1/jobs/"+st.ID+"/trace" || tst.EventsURL != "/v1/jobs/"+st.ID+"/events" {
		t.Errorf("trace/events URLs = %q, %q", tst.TraceURL, tst.EventsURL)
	}

	resp, body := get(t, ts.URL+tst.TraceURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d (%s)", resp.StatusCode, body)
	}
	var ex obs.TraceExport
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.TraceID != "tr-test-0001" || ex.JobID != st.ID {
		t.Errorf("export identity = %q/%q", ex.TraceID, ex.JobID)
	}
	if ex.Total == 0 || len(ex.Events) != ex.Total {
		t.Fatalf("full export: total %d, %d events", ex.Total, len(ex.Events))
	}
	// The root align span carries the trace id in its args.
	foundRoot := false
	for _, e := range ex.Events {
		if e.Name == "align" && e.Ph == "B" {
			foundRoot = true
			if e.Args["trace_id"] != "tr-test-0001" || e.Args["job_id"] != st.ID {
				t.Errorf("root span args = %v", e.Args)
			}
		}
	}
	if !foundRoot {
		t.Error("no root align span in the export")
	}

	// Cursor: events past N, with Total unchanged.
	cut := ex.Total / 2
	_, body = get(t, fmt.Sprintf("%s%s?after=%d", ts.URL, tst.TraceURL, cut))
	var tail obs.TraceExport
	if err := json.Unmarshal(body, &tail); err != nil {
		t.Fatal(err)
	}
	if tail.Total != ex.Total || len(tail.Events) != ex.Total-cut {
		t.Errorf("after=%d: total %d, %d events (want %d, %d)",
			cut, tail.Total, len(tail.Events), ex.Total, ex.Total-cut)
	}
	// Cursor at the end: empty events array, not null.
	_, body = get(t, fmt.Sprintf("%s%s?after=%d", ts.URL, tst.TraceURL, ex.Total))
	var done struct {
		Events json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(body, &done); err != nil {
		t.Fatal(err)
	}
	if trimmed := strings.TrimSpace(string(done.Events)); trimmed != "[]" {
		t.Errorf("exhausted cursor events = %s, want []", trimmed)
	}
	// Bad cursor: 400.
	resp, _ = get(t, ts.URL+tst.TraceURL+"?after=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor: HTTP %d, want 400", resp.StatusCode)
	}

	// Chrome form: a standalone trace_event object.
	_, body = get(t, ts.URL+tst.TraceURL+"?format=chrome")
	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome form not JSON: %v", err)
	}
	if len(doc.TraceEvents) != ex.Total {
		t.Errorf("chrome form has %d events, export total %d", len(doc.TraceEvents), ex.Total)
	}

	resp, _ = get(t, ts.URL+"/v1/jobs/no-such-job/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: HTTP %d", resp.StatusCode)
	}
}

// TestJobTraceDisabled: with TraceEventCap < 0 tracing is off; the
// endpoint still identifies the job and serves an empty buffer so
// pollers need no special case.
func TestJobTraceDisabled(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{TraceEventCap: -1}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatal(err)
	}
	final := runOneJob(t, ts.URL, pair.Target.Name, fastaText(t, pair.Query), pair.Query.Name)
	resp, body := get(t, ts.URL+"/v1/jobs/"+final.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace (disabled): HTTP %d", resp.StatusCode)
	}
	var ex obs.TraceExport
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.JobID != final.ID || ex.Total != 0 || len(ex.Events) != 0 {
		t.Errorf("disabled trace export = %+v", ex)
	}
}

// TestJobEventsEndpoint: the flight recorder captures the lifecycle in
// order — admitted before started before finished — and the endpoint
// reports the ring's running total.
func TestJobEventsEndpoint(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatal(err)
	}
	final := runOneJob(t, ts.URL, pair.Target.Name, fastaText(t, pair.Query), pair.Query.Name)

	resp, body := get(t, ts.URL+"/v1/jobs/"+final.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d (%s)", resp.StatusCode, body)
	}
	var doc struct {
		JobID  string            `json:"job_id"`
		Total  uint64            `json:"total"`
		Events []obs.FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.JobID != final.ID {
		t.Errorf("events job_id = %q", doc.JobID)
	}
	if doc.Total != uint64(len(doc.Events)) {
		t.Errorf("total %d but %d events retained (nothing should have been shed)", doc.Total, len(doc.Events))
	}
	idx := map[string]int{}
	for i, ev := range doc.Events {
		if _, seen := idx[ev.Type]; !seen {
			idx[ev.Type] = i
		}
		if ev.At.IsZero() {
			t.Errorf("event %d (%s) has a zero timestamp", i, ev.Type)
		}
	}
	for _, typ := range []string{obs.FlightAdmitted, obs.FlightStarted, obs.FlightFinished} {
		if _, ok := idx[typ]; !ok {
			t.Fatalf("lifecycle event %q missing: %+v", typ, doc.Events)
		}
	}
	if !(idx[obs.FlightAdmitted] < idx[obs.FlightStarted] && idx[obs.FlightStarted] < idx[obs.FlightFinished]) {
		t.Errorf("lifecycle out of order: admitted@%d started@%d finished@%d",
			idx[obs.FlightAdmitted], idx[obs.FlightStarted], idx[obs.FlightFinished])
	}

	resp, _ = get(t, ts.URL+"/v1/jobs/no-such-job/events")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: HTTP %d", resp.StatusCode)
	}
}

// TestLatencyHistograms: one completed streaming job must land one
// observation in both the first-MAF-block and the end-to-end
// histograms.
func TestLatencyHistograms(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatal(err)
	}
	runOneJob(t, ts.URL, pair.Target.Name, fastaText(t, pair.Query), pair.Query.Name)

	_, body := get(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		"darwinwga_job_first_block_seconds_count 1",
		"darwinwga_job_e2e_seconds_count 1",
		"# TYPE darwinwga_job_first_block_seconds histogram",
		"# TYPE darwinwga_job_e2e_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// ---------------------------------------------------------------------------
// Prometheus text-format lint: a hand-rolled parser over the full
// exposition of an instrumented server. Guards against malformed names,
// unescaped label values, duplicate TYPE headers, and samples that
// precede their family metadata — the failure modes that silently break
// real scrapers.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promLint parses one exposition and reports violations through t.
// It returns the set of sample family names seen (histogram suffixes
// stripped back to the family).
func promLint(t *testing.T, text string) map[string]bool {
	t.Helper()
	typed := map[string]string{}  // family -> declared type
	families := map[string]bool{} // families with at least one sample
	for ln, line := range strings.Split(text, "\n") {
		ln++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line[2:], " ", 3)
			if len(fields) < 3 || !promNameRe.MatchString(fields[1]) {
				t.Errorf("line %d: malformed metadata: %q", ln, line)
				continue
			}
			if fields[0] == "TYPE" {
				name, typ := fields[1], strings.TrimSpace(fields[2])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Errorf("line %d: unknown TYPE %q for %s", ln, typ, name)
				}
				if prev, dup := typed[name]; dup {
					t.Errorf("line %d: duplicate TYPE for %s (already %s)", ln, name, prev)
				}
				typed[name] = typ
				if families[name] {
					t.Errorf("line %d: TYPE %s after its first sample", ln, name)
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		name, labels, value, ok := parsePromSample(line)
		if !ok {
			t.Errorf("line %d: unparseable sample: %q", ln, line)
			continue
		}
		if !promNameRe.MatchString(name) {
			t.Errorf("line %d: invalid metric name %q", ln, name)
		}
		for k := range labels {
			if !promLabelRe.MatchString(k) {
				t.Errorf("line %d: invalid label name %q", ln, k)
			}
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("line %d: invalid sample value %q", ln, value)
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				if suffix == "_bucket" {
					if _, hasLe := labels["le"]; !hasLe {
						t.Errorf("line %d: histogram bucket without le label: %q", ln, line)
					}
				}
				break
			}
		}
		families[family] = true
	}
	return families
}

// parsePromSample splits `name{labels} value` (or `name value`) and
// decodes the label pairs, honoring \\, \", and \n escapes.
func parsePromSample(line string) (name string, labels map[string]string, value string, ok bool) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		rest = line[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, "", false
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' && j+1 < len(rest) {
					j++
					switch rest[j] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, "", false
					}
					continue
				}
				if c == '"' {
					rest = rest[j+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, "", false
			}
			labels[key] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = strings.TrimPrefix(rest[1:], " ")
				break
			}
			return "", nil, "", false
		}
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", nil, "", false
		}
		name, rest = line[:sp], line[sp+1:]
	}
	value = strings.TrimSpace(rest)
	if value == "" || strings.ContainsRune(value, ' ') {
		// A trailing timestamp would appear here; this exposition never
		// emits one, so a remaining space is a parse failure.
		return "", nil, "", false
	}
	return name, labels, value, true
}

// TestMetricsPrometheusLint scrapes a fully instrumented server — after
// real pipeline work, so every registered family has samples — and runs
// the full exposition through the lint parser.
func TestMetricsPrometheusLint(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatal(err)
	}
	runOneJob(t, ts.URL, pair.Target.Name, fastaText(t, pair.Query), pair.Query.Name)

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	families := promLint(t, string(body))
	for _, want := range []string{
		"darwinwga_build_info",
		"darwinwga_jobs_accepted_total",
		"darwinwga_job_first_block_seconds",
		"darwinwga_job_e2e_seconds",
		"darwinwga_core_aligns_total",
	} {
		if !families[want] {
			t.Errorf("instrumented server exposes no %s samples", want)
		}
	}
	// The build-info gauge must carry both identity labels.
	_, labels, value, ok := parsePromSample(firstSample(string(body), "darwinwga_build_info"))
	if !ok || labels["version"] == "" || !strings.HasPrefix(labels["go_version"], "go") || value != "1" {
		t.Errorf("build info sample: labels=%v value=%q ok=%v", labels, value, ok)
	}
}

// firstSample returns the first sample line of the named family.
func firstSample(text, family string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, family) && (strings.HasPrefix(line[len(family):], "{") || strings.HasPrefix(line[len(family):], " ")) {
			return line
		}
	}
	return ""
}
