package experiments

import (
	"fmt"

	"darwinwga/internal/core"
	"darwinwga/internal/evolve"
	"darwinwga/internal/hw"
	"darwinwga/internal/stats"
)

// Table5Row is the performance comparison for one species pair.
type Table5Row struct {
	Pair string
	// LASTZSeconds is the measured runtime of the LASTZ baseline here.
	LASTZSeconds float64
	// Workload of the Darwin-WGA run.
	Workload core.Workload
	// IsoSWSeconds models iso-sensitive software on the paper's CPU
	// baseline (gapped-filter tiles at the Parasail rate).
	IsoSWSeconds float64
	// LocalIsoSWSeconds is this machine's measured Darwin-WGA software
	// runtime (our pipeline IS the iso-sensitive software).
	LocalIsoSWSeconds float64
	// FPGASeconds and ASICSeconds are cycle-model estimates.
	FPGASeconds float64
	ASICSeconds float64
	// FPGAPerfPerDollar and ASICPerfPerWatt are the improvement metrics
	// against the modeled iso-sensitive software.
	FPGAPerfPerDollar float64
	ASICPerfPerWatt   float64
}

// Table5Data is the full performance comparison.
type Table5Data struct {
	Rows []Table5Row
}

// RunTable5 computes Table V. The software side is measured (our
// pipeline at both configurations); the hardware side comes from the
// systolic cycle model, with the iso-sensitive CPU baseline normalized
// to the paper's measured Parasail throughput so the improvement
// factors are comparable to the paper's.
func RunTable5(l *Lab) (*Table5Data, error) {
	data := &Table5Data{}
	cfg := core.DefaultConfig()
	for _, name := range evolve.StandardPairNames {
		dRun, err := l.Run(name, ModeDarwin)
		if err != nil {
			return nil, err
		}
		zRun, err := l.Run(name, ModeLASTZ)
		if err != nil {
			return nil, err
		}
		w := dRun.Result.Workload
		t := dRun.Result.Timings
		seedSec := t.Seeding.Seconds()

		// The paper's workload is ~100/scale times ours; scale the
		// seeding software time the same way hardware tile counts scale
		// so that per-pair ratios are size-independent.
		row := Table5Row{Pair: name, LASTZSeconds: zRun.WallSeconds, Workload: w}
		row.LocalIsoSWSeconds = dRun.WallSeconds
		row.IsoSWSeconds = hw.IsoSensitiveSoftwareSeconds(w, 0, seedSec, t.Extension.Seconds())

		fpga, err := hw.FPGA().Estimate(w, seedSec, cfg.FilterTileSize, cfg.FilterBand)
		if err != nil {
			return nil, err
		}
		asic, err := hw.ASIC().Estimate(w, seedSec, cfg.FilterTileSize, cfg.FilterBand)
		if err != nil {
			return nil, err
		}
		row.FPGASeconds = fpga.TotalSeconds()
		row.ASICSeconds = asic.TotalSeconds()
		row.FPGAPerfPerDollar = hw.PerfPerDollar(row.IsoSWSeconds, hw.CPU(), row.FPGASeconds, hw.FPGA())
		row.ASICPerfPerWatt = hw.PerfPerWatt(row.IsoSWSeconds, hw.CPU(), row.ASICSeconds, hw.ASIC())
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

// Table5 renders the performance comparison (paper Table V).
func Table5(l *Lab) error {
	data, err := RunTable5(l)
	if err != nil {
		return err
	}
	out := l.Out()
	fmt.Fprintln(out, "Table V: runtimes, workload, and improvement metrics")
	fmt.Fprintln(out, "(paper shapes: iso-sensitive software ~135-225x slower than LASTZ;")
	fmt.Fprintln(out, " FPGA 19-24x perf/$ and ASIC ~1,500x perf/W over iso-sensitive software)")
	fmt.Fprintln(out)
	tbl := stats.NewTable("Species pair", "LASTZ (s)", "Seeds", "Filter tiles", "Ext tiles",
		"Iso-SW (s)", "FPGA (s)", "ASIC (s)", "FPGA perf/$", "ASIC perf/W")
	for _, r := range data.Rows {
		tbl.AddRow(r.Pair,
			fmt.Sprintf("%.1f", r.LASTZSeconds),
			stats.Comma(r.Workload.SeedHits),
			stats.Comma(r.Workload.FilterTiles),
			stats.Comma(r.Workload.ExtensionTiles),
			fmt.Sprintf("%.1f", r.IsoSWSeconds),
			fmt.Sprintf("%.2f", r.FPGASeconds),
			fmt.Sprintf("%.2f", r.ASICSeconds),
			fmt.Sprintf("%.1fx", r.FPGAPerfPerDollar),
			fmt.Sprintf("%.0fx", r.ASICPerfPerWatt))
	}
	fmt.Fprintln(out, tbl)
	fmt.Fprintln(out, "Iso-SW: gapped-filter tiles at the paper's Parasail rate (225K tiles/s")
	fmt.Fprintln(out, "on c4.8xlarge) plus measured seeding and extension software time.")
	// The paper's workload is filter-dominated (its tile counts per bp
	// are ~100x ours because of its far denser seeding); in that regime
	// the ASIC improvement reduces to the rate and power ratios alone.
	cpu := hw.CPU()
	asicP := hw.ASIC()
	pipeCfg := core.DefaultConfig()
	filterOnly := (asicP.BSWThroughput(pipeCfg.FilterTileSize, pipeCfg.FilterBand) / hw.PaperSWBSWTileRate) *
		(cpu.PowerW / asicP.PowerW)
	fmt.Fprintf(out, "Filter-stage-only ASIC perf/W (the paper's filter-dominated regime): %.0fx\n", filterOnly)
	fmt.Fprintf(out, "Local measured iso-sensitive software runtimes (this machine): ")
	for i, r := range data.Rows {
		if i > 0 {
			fmt.Fprint(out, ", ")
		}
		fmt.Fprintf(out, "%s %.1fs", r.Pair, r.LocalIsoSWSeconds)
	}
	fmt.Fprintln(out)
	return nil
}

// Table4 renders the ASIC area/power breakdown (paper Table IV).
func Table4(l *Lab) error {
	out := l.Out()
	fmt.Fprintln(out, "Table IV: ASIC area and power breakdown (TSMC 40nm, 1 GHz)")
	fmt.Fprintln(out)
	comps := hw.ASICBreakdown(64, 12, 64)
	tbl := stats.NewTable("Component", "Configuration", "Area (mm2)", "Power (W)")
	for _, c := range comps {
		area := "-"
		if c.AreaMM2 > 0 {
			area = fmt.Sprintf("%.2f", c.AreaMM2)
		}
		tbl.AddRow(c.Name, c.Config, area, fmt.Sprintf("%.2f", c.PowerW))
	}
	area, power := hw.Totals(comps)
	tbl.AddRow("Total", "", fmt.Sprintf("%.2f", area), fmt.Sprintf("%.2f", power))
	_, err := fmt.Fprintln(out, tbl)
	return err
}

// Table6 renders the platform power comparison (paper Table VI).
func Table6(l *Lab) error {
	out := l.Out()
	fmt.Fprintln(out, "Table VI: power (including DRAM) of the three platforms")
	fmt.Fprintln(out)
	tbl := stats.NewTable("Platform", "Power (W)")
	for _, p := range []hw.Platform{hw.CPU(), hw.FPGA(), hw.ASIC()} {
		tbl.AddRow(p.Name, fmt.Sprintf("%.0f", p.PowerW))
	}
	_, err := fmt.Fprintln(out, tbl)
	return err
}
