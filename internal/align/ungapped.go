package align

// Ungapped X-drop extension — the filtering stage of LASTZ (Section
// III-C). From a seed hit the diagonal is extended in both directions,
// accumulating substitution scores only (no indels are possible), and an
// extension direction terminates when the running score drops more than
// XDrop below the best seen. This is the 200×-faster-but-less-sensitive
// filter that Darwin-WGA's gapped filter replaces.

// UngappedResult is the outcome of one ungapped filter invocation.
type UngappedResult struct {
	// Score is the best total score of the extended ungapped segment.
	Score int32
	// TStart/TEnd and QStart/QEnd delimit the best segment (half open).
	TStart, TEnd int
	QStart, QEnd int
	// Cells is the number of diagonal positions scored (workload).
	Cells int
}

// UngappedExtender performs ungapped X-drop extension.
type UngappedExtender struct {
	sc    *Scoring
	xdrop int32
}

// NewUngappedExtender returns an extender with drop threshold xdrop
// (positive).
func NewUngappedExtender(sc *Scoring, xdrop int32) *UngappedExtender {
	return &UngappedExtender{sc: sc, xdrop: xdrop}
}

// Extend extends along the diagonal through (tPos,qPos) — typically a
// seed hit's start — covering seedLen bases to the right before further
// extension. It returns the best-scoring ungapped segment containing the
// seed span.
func (u *UngappedExtender) Extend(target, query []byte, tPos, qPos, seedLen int) UngappedResult {
	res := UngappedResult{TStart: tPos, TEnd: tPos, QStart: qPos, QEnd: qPos}
	sc, xdrop := u.sc, u.xdrop

	// Right extension from the seed start (covers the seed itself).
	var run, best int32
	bestLen := 0
	maxRight := min(len(target)-tPos, len(query)-qPos)
	for k := 0; k < maxRight; k++ {
		run += sc.Score(target[tPos+k], query[qPos+k])
		res.Cells++
		if run > best {
			best = run
			bestLen = k + 1
		}
		if run < best-xdrop {
			break
		}
	}
	// Require the seed span itself to be included, then extend left.
	if bestLen < seedLen {
		bestLen = min(seedLen, maxRight)
		best = 0
		for k := 0; k < bestLen; k++ {
			best += sc.Score(target[tPos+k], query[qPos+k])
		}
	}
	res.TEnd = tPos + bestLen
	res.QEnd = qPos + bestLen
	rightScore := best

	run, best = 0, 0
	bestLen = 0
	maxLeft := min(tPos, qPos)
	for k := 1; k <= maxLeft; k++ {
		run += sc.Score(target[tPos-k], query[qPos-k])
		res.Cells++
		if run > best {
			best = run
			bestLen = k
		}
		if run < best-xdrop {
			break
		}
	}
	res.TStart = tPos - bestLen
	res.QStart = qPos - bestLen
	res.Score = rightScore + best
	return res
}
