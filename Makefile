GO ?= go

.PHONY: all build vet test test-race test-resume test-serve test-obs test-obs-cluster test-chaos test-cluster test-index test-shard test-fuzz bench bench-diff lint ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The robustness suite (cancellation, budgets, fault-injected panics in
# worker goroutines) is only meaningful under the race detector. -short
# skips the end-to-end experiment renders, which the race detector
# slows by an order of magnitude; the pipeline's race coverage comes
# from the internal/core robustness suite, which always runs.
test-race:
	$(GO) test -race -short -timeout 30m ./...

# Durability suite: the subprocess crash–resume e2e (SIGKILL mid
# journal write, resume, byte-compare the MAF), the journal
# truncation/corruption sweeps, and the in-process resume/retry tests.
# Not -short: the e2e re-execs the test binary as the CLI.
test-resume:
	$(GO) test -timeout 15m -run 'TestCrashResume|TestRetry' ./cmd/darwin-wga/
	$(GO) test -timeout 15m ./internal/checkpoint/
	$(GO) test -timeout 15m -run 'TestResume|TestRetry|TestFailureAggregation' ./internal/core/

# Serving suite: the in-process HTTP job-server lifecycle tests under
# the race detector (shared-aligner concurrency, admission control,
# mid-run cancellation, drain), plus the subprocess `darwin-wga serve`
# e2e — two registered targets, eight concurrent jobs with streamed
# MAF byte-compared against one-shot CLI runs, queue saturation into
# 429s, and a SIGTERM drain. Not -short: the e2e re-execs the test
# binary as the server.
test-serve:
	$(GO) test -race -timeout 15m ./internal/server/
	$(GO) test -timeout 15m -run TestServeE2E ./cmd/darwin-wga/

# Observability suite: the metrics registry / tracer unit tests under
# the race detector, the trace-vs-Workload exactness and zero-alloc
# recorder guards, the /metrics + /varz + pprof HTTP tests, and the
# subprocess `serve -pprof -log-format json` e2e that scrapes /metrics
# and /debug/pprof/heap. Not -short: the e2e re-execs the test binary
# as the server.
test-obs:
	$(GO) test -race -timeout 10m ./internal/obs/
	$(GO) test -timeout 15m -run 'TestTraceCoversWorkload|TestPipelineMetricsMatchWorkload|TestRecorderAllocOverheadConstant' ./internal/core/
	$(GO) test -timeout 10m -run 'TestTileHook' ./internal/gact/
	$(GO) test -timeout 15m -run 'TestMetricsEndpoint|TestJobStatsBlock|TestVarzCompatibility|TestPprofGating' ./internal/server/
	$(GO) test -timeout 15m -run 'TestTraceAndProfileFlagsE2E|TestServeObservabilityE2E' ./cmd/darwin-wga/

# Cluster observability suite: the flight-recorder ring / capped-tracer
# / federation-snapshot unit tests with the zero-alloc disabled-path
# guards, the worker-side trace + flight-record endpoints and the
# Prometheus text-format lint over a fully instrumented server, the
# coordinator-side merged-trace-across-failover, fleet-federation,
# replication-lag, and ship-lag tests on a manual clock, and the
# subprocess failover e2e that SIGKILLs a worker mid-job and requires
# the merged trace to span both workers under one trace id. All under
# the race detector where processes are in-process; every line carries
# an explicit -timeout.
test-obs-cluster:
	$(GO) test -race -timeout 10m ./internal/obs/
	$(GO) test -race -timeout 15m -run 'TestJobTrace|TestJobEvents|TestLatencyHistograms|TestMetricsPrometheusLint' ./internal/server/
	$(GO) test -race -timeout 15m -run 'TestClusterTraceMergeAcrossFailover|TestClusterMetricsFederation|TestReplicationHubFollowerLags|TestStandbyReplicationLagMetrics|TestShipLagMetric' ./internal/cluster/
	$(GO) test -timeout 20m -run 'TestClusterFailoverE2E|TestHALeaderFailoverE2E' ./cmd/darwin-wga/

# Chaos suite: crash-only serving under the race detector — the
# durable job store (journal round-trip, torn tails, restart recovery
# with byte-identical MAF), the stuck-job watchdog on a manual clock
# (stall → cancel → retry, exhausted retries tripping the breaker),
# the circuit-breaker state machine, and overload hardening (memory
# watermarks, slowloris header timeout, body caps). Then the
# subprocess crash–restart e2e: SIGKILL `serve` mid-job, restart on
# the same journal/checkpoint dirs, and require the recovered job's
# MAF byte-identical to an uninterrupted run.
test-chaos:
	$(GO) test -race -timeout 20m -run 'TestJobStore|TestRestart|TestWatchdog|TestBreaker|TestMemoryAdmission|TestSlowloris|TestBodyCap' ./internal/server/
	$(GO) test -timeout 15m -run 'TestServeCrashRestartRecoversJob' ./cmd/darwin-wga/

# Cluster suite: the coordinator/worker topology under the race
# detector — consistent-hash ring properties, lease membership on a
# manual clock, per-worker circuit breakers, the routing WAL
# round-trip, and the ManualClock + flaky-transport chaos tests
# (lease-expiry failover, retry exhaustion opening a breaker then
# parking, partition failover, all-replicas-down degradation,
# coordinator restart reattach) plus the faultinject seam's own
# determinism tests, and the warm-standby HA chaos tests (journal
# shipping, fenced promotion, snapshot compaction, shipped-segment
# failover). Then the subprocess failover e2e: SIGKILL a worker
# mid-job and later the coordinator itself; both recovered MAFs must
# be byte-identical to a one-shot run. The HA e2e additionally
# SIGKILLs a leader with a live warm standby (promotion must finish
# the job under its original id) and a shipping worker mid-pipeline
# (the replacement must resume from the shipped checkpoints with a
# nonzero replayed workload). Not -short: the e2e re-execs the test
# binary as coordinator, standby, and workers. Every line carries an
# explicit -timeout so a wedged subprocess can never hang the target.
test-cluster:
	$(GO) test -race -timeout 15m ./internal/cluster/ ./internal/faultinject/
	$(GO) test -timeout 20m -run 'TestClusterFailoverE2E|TestHALeaderFailoverE2E|TestHAWorkerFailoverResumesFromShippedE2E' ./cmd/darwin-wga/

# Index lifecycle suite: the serialized-index store under the race
# detector (format round-trip, corruption rejection typed-error tests,
# the checked-in golden fixture), the capacity-accounted index memory
# estimator, and the server-side lifecycle — LRU eviction against the
# index budget, pinning, transparent reload, serialized-index startup
# loads, and the fingerprint-keyed result cache (repeat submissions
# served byte-identical with "cached": true). Then the subprocess e2e:
# `index build` two targets, `serve -index-dir` must load (not rebuild)
# them, a repeated submission must be a cache hit, a 1 MiB budget must
# force eviction, and the evicted target must reload from its file.
test-index:
	$(GO) test -race -timeout 10m ./internal/indexstore/
	$(GO) test -race -timeout 10m -run 'TestMemoryBytes' ./internal/seed/
	$(GO) test -race -timeout 15m -run 'TestIndex|TestResultCache|TestTargetsExpose' ./internal/server/
	$(GO) test -timeout 15m -run 'TestIndexLifecycleE2E' ./cmd/darwin-wga/

# Shard scatter/gather suite: the core decomposition/merge property
# tests (any unit count, arrival order, and hedged duplicates must
# reproduce the one-shot HSP stream byte-exactly) plus a fuzz smoke of
# the merge's permutation invariance, the in-process chaos tests of the
# coordinator's shard plane under the race detector (worker-death
# failover, hedged stragglers, retry-exhaustion partial results,
# truncated-body retries, journal restart re-dispatching only
# unfinished units, ENOSPC 503s from the artifact store), and the
# subprocess e2e pair: SIGKILL one of two workers mid-job under
# -shard-dispatch (byte-identical MAF, recovery metrics), and a
# fault-injected worker exhausting one unit's retries into a 206
# partial result. Not -short: the e2e re-execs the test binary as
# coordinator and workers. Every line carries an explicit -timeout.
test-shard:
	$(GO) test -race -timeout 15m -run 'TestPlanShards|TestAlignShardUnit|TestShardMergeMatchesOneShot' ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzShardMerge -fuzztime 10s ./internal/core/
	$(GO) test -race -timeout 15m -run 'TestShard' ./internal/cluster/
	$(GO) test -timeout 20m -run 'TestShardDispatchFailoverE2E|TestShardPartialResultE2E' ./cmd/darwin-wga/

# Benchmark trajectory: one point per PR. Runs the pipeline kernel
# benchmarks (filter tiles, GACT-X extension, seeding, index build,
# reference Smith-Waterman) and records them as BENCH_pipeline.json
# via cmd/bench2json, so the perf history is diffable across PRs.
# Non-gating in CI: a slow shared runner must not fail the build.
BENCH_PATTERN := ^(BenchmarkBSWFilterTile|BenchmarkUngappedFilterTile|BenchmarkGACTXExtension|BenchmarkSeedIndexBuild|BenchmarkIndexBuild|BenchmarkIndexLoad|BenchmarkDSoftSeeding|BenchmarkSmithWaterman|BenchmarkShardScatterGather)$$
BENCH_OUT ?= BENCH_pipeline.json
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1s -timeout 30m . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/bench2json -o $(BENCH_OUT) < bench.out
	@rm -f bench.out

# Benchmark delta: run the kernels fresh and diff ns/op against the
# committed BENCH_pipeline.json via cmd/benchdiff. Exits non-zero when
# any benchmark regressed past the threshold — advisory locally and
# non-gating in CI, because shared-runner noise routinely exceeds it.
bench-diff:
	$(MAKE) bench BENCH_OUT=bench-new.json
	$(GO) run ./cmd/benchdiff -old BENCH_pipeline.json -new bench-new.json -threshold-pct 25; \
		st=$$?; rm -f bench-new.json; exit $$st

# Static analysis and vulnerability scan. Both tools are optional: the
# build must work on machines (and CI runners) that do not have them,
# and nothing is ever downloaded or installed here — a missing tool is
# reported and skipped.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed; skipping"; fi

# Fuzz smoke: ten seconds per parser on the three crash-recovery
# attack surfaces — FASTA queries (the spill the job store replays),
# MAF streams (the recovered artifacts), and WAL segments (arbitrary
# torn tails must recover and stay appendable). Corpus misses fail the
# build; longer runs are `go test -fuzz=<name> -fuzztime=10m`.
test-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadFASTA -fuzztime 10s ./internal/genome/
	$(GO) test -run '^$$' -fuzz FuzzReadMAF -fuzztime 10s ./internal/maf/
	$(GO) test -run '^$$' -fuzz FuzzWALRecover -fuzztime 10s ./internal/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzIndexLoad -fuzztime 10s ./internal/indexstore/

ci: build vet test test-race test-resume test-serve test-obs test-obs-cluster test-chaos test-cluster test-index test-shard test-fuzz
