package seed

import (
	"math/rand"
	"testing"

	"darwinwga/internal/genome"
)

func randSeq(rng *rand.Rand, n int) []byte {
	const bases = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

func TestParseShape(t *testing.T) {
	sh, err := ParseShape(DefaultPattern)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Span != 19 || sh.Weight != 12 {
		t.Errorf("span/weight = %d/%d, want 19/12", sh.Span, sh.Weight)
	}
	if _, err := ParseShape("0110"); err == nil {
		t.Error("pattern starting with 0 accepted")
	}
	if _, err := ParseShape("1abc1"); err == nil {
		t.Error("invalid characters accepted")
	}
	if _, err := ParseShape(""); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestShapeKeyContiguous(t *testing.T) {
	sh, _ := ParseShape("1111")
	seq := []byte("ACGTACGT")
	key, ok := sh.Key(seq, 0)
	if !ok {
		t.Fatal("no key")
	}
	want, _ := genome.PackKmer([]byte("ACGT"))
	if key != want {
		t.Errorf("key = %x, want %x", key, want)
	}
}

func TestShapeKeySpaced(t *testing.T) {
	sh, _ := ParseShape("101")
	seq := []byte("AXGTC")
	// Position 1: window "XGT" has informative bases X and T; X invalid.
	if _, ok := sh.Key(seq, 1); ok {
		t.Error("key over invalid base accepted")
	}
	// Position 2: window "GTC" -> informative G, C.
	key, ok := sh.Key(seq, 2)
	if !ok {
		t.Fatal("no key at position 2")
	}
	want, _ := genome.PackKmer([]byte("GC"))
	if key != want {
		t.Errorf("key = %x, want %x", key, want)
	}
	// Don't-care positions must not influence the key.
	a, _ := sh.Key([]byte("GAC"), 0)
	b, _ := sh.Key([]byte("GTC"), 0)
	if a != b {
		t.Error("don't-care position changed the key")
	}
}

func TestShapeKeyBounds(t *testing.T) {
	sh, _ := ParseShape("111")
	seq := []byte("ACGT")
	if _, ok := sh.Key(seq, 1); !ok {
		t.Error("last valid window rejected")
	}
	if _, ok := sh.Key(seq, 2); ok {
		t.Error("overrunning window accepted")
	}
	if _, ok := sh.Key(seq, -1); ok {
		t.Error("negative position accepted")
	}
	if _, ok := sh.Key([]byte("ACN"), 0); ok {
		t.Error("window with N accepted")
	}
}

func TestTransitionKeys(t *testing.T) {
	sh, _ := ParseShape("11")
	seq := []byte("AC")
	keys := sh.TransitionKeys(seq, 0, nil)
	if len(keys) != 3 { // exact + 2 single-transition variants
		t.Fatalf("got %d keys, want 3", len(keys))
	}
	exact, _ := genome.PackKmer([]byte("AC"))
	v1, _ := genome.PackKmer([]byte("GC")) // A->G at position 0
	v2, _ := genome.PackKmer([]byte("AT")) // C->T at position 1
	want := map[genome.KmerKey]bool{exact: true, v1: true, v2: true}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected key %s", genome.UnpackKmer(k, 2))
		}
		delete(want, k)
	}
	if len(want) != 0 {
		t.Errorf("missing keys: %v", want)
	}
}

func TestTransitionKeysMatchIsTransition(t *testing.T) {
	// Property: every variant key differs from the exact key in exactly
	// one informative position, and that difference is a transition.
	sh := DefaultShape()
	rng := rand.New(rand.NewSource(1))
	seq := randSeq(rng, 100)
	for pos := 0; pos+sh.Span <= len(seq); pos += 7 {
		keys := sh.TransitionKeys(seq, pos, nil)
		if keys == nil {
			continue
		}
		exact := keys[0]
		for _, k := range keys[1:] {
			diff := exact ^ k
			// Exactly one 2-bit group set, and its value is 2 (the
			// transition flip).
			if diff == 0 || diff&(diff-1)>>1&diff != 0 {
				// crude check below instead
			}
			cnt := 0
			for s := uint(0); s < uint(2*sh.Weight); s += 2 {
				g := (diff >> s) & 3
				if g != 0 {
					cnt++
					if g != 2 {
						t.Fatalf("non-transition flip: group value %d", g)
					}
				}
			}
			if cnt != 1 {
				t.Fatalf("variant differs in %d positions, want 1", cnt)
			}
		}
	}
}

func TestBuildIndexFindsAllOccurrences(t *testing.T) {
	sh, _ := ParseShape("111")
	seq := []byte("ACGACGACG")
	ix, err := BuildIndex(seq, sh, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key, _ := sh.Key([]byte("ACG"), 0)
	pos := ix.Positions(key)
	want := []uint32{0, 3, 6}
	if len(pos) != len(want) {
		t.Fatalf("positions = %v, want %v", pos, want)
	}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("positions = %v, want %v", pos, want)
		}
	}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	sh, _ := ParseShape("1101")
	rng := rand.New(rand.NewSource(2))
	seq := randSeq(rng, 2000)
	ix, err := BuildIndex(seq, sh, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: collect positions per key.
	brute := make(map[genome.KmerKey][]uint32)
	for p := 0; p+sh.Span <= len(seq); p++ {
		if k, ok := sh.Key(seq, p); ok {
			brute[k] = append(brute[k], uint32(p))
		}
	}
	size, _ := sh.TableSize()
	for k := 0; k < size; k++ {
		got := ix.Positions(genome.KmerKey(k))
		want := brute[genome.KmerKey(k)]
		if len(got) != len(want) {
			t.Fatalf("key %d: %d positions, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %d: positions %v, want %v", k, got, want)
			}
		}
	}
}

func TestIndexPositionsSorted(t *testing.T) {
	sh := DefaultShape()
	rng := rand.New(rand.NewSource(3))
	seq := randSeq(rng, 5000)
	ix, err := BuildIndex(seq, sh, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	size, _ := sh.TableSize()
	checked := 0
	for k := 0; k < size && checked < 10000; k += 997 {
		pos := ix.Positions(genome.KmerKey(k))
		for i := 1; i < len(pos); i++ {
			if pos[i-1] >= pos[i] {
				t.Fatalf("key %d positions not ascending: %v", k, pos)
			}
		}
		checked++
	}
}

func TestIndexMaxFreqMasking(t *testing.T) {
	sh, _ := ParseShape("11")
	seq := []byte("AAAAAAAAAA") // "AA" occurs 9 times
	ix, err := BuildIndex(seq, sh, IndexOptions{MaxFreq: 5})
	if err != nil {
		t.Fatal(err)
	}
	key, _ := sh.Key([]byte("AA"), 0)
	if got := ix.Positions(key); got != nil {
		t.Errorf("masked bucket returned %v", got)
	}
	if got := ix.RawPositions(key); len(got) != 9 {
		t.Errorf("RawPositions = %d entries, want 9", len(got))
	}
	_, _, _, masked := ix.Stats()
	if masked != 1 {
		t.Errorf("masked buckets = %d, want 1", masked)
	}
}

func TestIndexSkipsN(t *testing.T) {
	sh, _ := ParseShape("111")
	seq := []byte("ACGNACG")
	ix, err := BuildIndex(seq, sh, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key, _ := sh.Key([]byte("ACG"), 0)
	pos := ix.Positions(key)
	if len(pos) != 2 || pos[0] != 0 || pos[1] != 4 {
		t.Errorf("positions = %v, want [0 4]", pos)
	}
	_, _, total, _ := ix.Stats()
	if total != 2 { // windows covering N contribute nothing
		t.Errorf("total positions = %d, want 2", total)
	}
}

func TestIndexStatsAndMemory(t *testing.T) {
	sh, _ := ParseShape("1111")
	rng := rand.New(rand.NewSource(5))
	seq := randSeq(rng, 1000)
	ix, err := BuildIndex(seq, sh, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	buckets, filled, total, _ := ix.Stats()
	if buckets != 256 {
		t.Errorf("buckets = %d, want 256", buckets)
	}
	if total != len(seq)-sh.Span+1 {
		t.Errorf("total = %d, want %d", total, len(seq)-sh.Span+1)
	}
	if filled == 0 || filled > buckets {
		t.Errorf("filled = %d", filled)
	}
	if ix.MemoryBytes() <= 0 {
		t.Error("MemoryBytes <= 0")
	}
	if ix.TargetLen() != 1000 {
		t.Errorf("TargetLen = %d", ix.TargetLen())
	}
}

func TestTableSizeLimit(t *testing.T) {
	sh, _ := ParseShape("11111111111111111") // weight 17
	if _, err := sh.TableSize(); err == nil {
		t.Error("weight 17 table accepted")
	}
}
