package align

// Banded Smith-Waterman — the gapped filtering kernel (Section III-C).
// A tile of TileSize bases from each sequence is laid out with the seed
// hit at its center; only cells within Band of the tile's main diagonal
// are computed. The kernel is score-only (the hardware BSW array emits
// just Vmax and its position), and reports the number of DP cells it
// computed so the performance model can account workload.

// FilterResult is the outcome of one gapped-filter tile.
type FilterResult struct {
	// Score is Vmax, the best local score inside the band.
	Score int32
	// TPos and QPos are the coordinates (within the tile) of Vmax,
	// exclusive ends of the best local alignment: the extension anchor.
	TPos int
	QPos int
	// Cells is the number of DP cells computed.
	Cells int
}

// BandedAligner computes banded Smith-Waterman tiles with reusable
// buffers. Not safe for concurrent use; create one per worker.
type BandedAligner struct {
	sc   *Scoring
	band int

	vPrev, vCur []int32
	dPrev, dCur []int32
}

// NewBandedAligner returns an aligner with band radius band (the paper's
// B, default 32).
func NewBandedAligner(sc *Scoring, band int) *BandedAligner {
	if band < 1 {
		band = 1
	}
	return &BandedAligner{sc: sc, band: band}
}

// Band returns the band radius.
func (b *BandedAligner) Band() int { return b.band }

// Align runs banded SW over target×query (each at most the tile size)
// and returns the maximum local score with its position. Cells outside
// the band |i-j| <= band are never read or written.
func (b *BandedAligner) Align(target, query []byte) FilterResult {
	n, m := len(target), len(query)
	if n == 0 || m == 0 {
		return FilterResult{}
	}
	width := m + 1
	if cap(b.vPrev) < width {
		b.vPrev = make([]int32, width)
		b.vCur = make([]int32, width)
		b.dPrev = make([]int32, width)
		b.dCur = make([]int32, width)
	}
	vPrev := b.vPrev[:width]
	vCur := b.vCur[:width]
	dPrev := b.dPrev[:width]
	dCur := b.dCur[:width]

	res := FilterResult{}
	sc := b.sc
	band := b.band

	// Row 0: only columns within the band of i=0 need initializing, plus
	// one guard column on each side that row 1 may read.
	hi0 := min(m, band+1)
	for j := 0; j <= hi0; j++ {
		vPrev[j] = 0
		dPrev[j] = negInf
	}
	for i := 1; i <= n; i++ {
		lo := max(1, i-band)
		hi := min(m, i+band)
		if lo > hi {
			break
		}
		// Guard cells just outside the band read as empty. A cell (i-1, j)
		// that row i-1 never computed (j above its window top) must read
		// as a fresh local start: V=0, no open gap.
		vCur[lo-1] = 0
		dCur[lo-1] = negInf
		if prevHi := min(m, i-1+band); prevHi < hi {
			vPrev[hi] = 0
			dPrev[hi] = negInf
		}
		iRow := negInf
		tb := target[i-1]
		for j := lo; j <= hi; j++ {
			iRow = max2(vCur[j-1]-sc.GapOpen, iRow-sc.GapExtend)
			dCur[j] = max2(vPrev[j]-sc.GapOpen, dPrev[j]-sc.GapExtend)
			v := max3(vPrev[j-1]+sc.Score(tb, query[j-1]), dCur[j], iRow)
			if v < 0 {
				v = 0
			}
			vCur[j] = v
			if v > res.Score {
				res.Score = v
				res.TPos = i
				res.QPos = j
			}
		}
		res.Cells += hi - lo + 1
		vPrev, vCur = vCur, vPrev
		dPrev, dCur = dCur, dPrev
	}
	return res
}

// FilterTile carves the gapped-filter tile around a seed hit at
// (tPos, qPos) in (target, query): tileSize bases with the hit at the
// center (clipped at sequence boundaries), then runs banded SW. The
// returned result's TPos/QPos are translated to absolute sequence
// coordinates.
func (b *BandedAligner) FilterTile(target, query []byte, tPos, qPos, tileSize int) FilterResult {
	half := tileSize / 2
	t0 := max(0, tPos-half)
	t1 := min(len(target), tPos+half)
	q0 := max(0, qPos-half)
	q1 := min(len(query), qPos+half)
	res := b.Align(target[t0:t1], query[q0:q1])
	res.TPos += t0
	res.QPos += q0
	return res
}
