// Package server is the alignment-as-a-service layer: a long-lived
// net/http job server over the Darwin-WGA pipeline. It owns three
// pieces the one-shot CLI cannot provide:
//
//   - a target registry that loads each assembly and builds (or loads
//     from a serialized index file) its D-SOFT seed index exactly once,
//     sharing the immutable core.Aligner across every request against
//     that target — and evicting least-recently-used idle indexes when
//     their aggregate footprint crosses the index budget;
//   - a job manager — bounded submission queue, per-job IDs and states,
//     worker-pool execution through AlignContext with per-job budgets
//     and deadlines — with admission control (queue-full and per-client
//     in-flight limits answer 429 with Retry-After) and graceful drain;
//   - chunked MAF streaming: each job's alignments are rendered to MAF
//     blocks as the pipeline emits them (core.Config.HSPHook) and
//     byte-identical to a one-shot CLI run on the same inputs.
//
// The package is stdlib-only and embeddable: construct a Server, mount
// Server.Handler on any mux or serve it directly, and Shutdown drains.
package server

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"darwinwga/internal/core"
	"darwinwga/internal/genome"
	"darwinwga/internal/indexstore"
	"darwinwga/internal/maf"
	"darwinwga/internal/obs"
)

// Target is one registered assembly: the concatenated bases, the
// coordinate map MAF rendering needs, and the aligner whose seed index
// is the expensive part. The identity fields are immutable after
// registration; the index itself has a lifecycle — it may be evicted
// while idle and transparently reloaded (from its serialized file when
// one exists, else rebuilt) on the next Acquire.
type Target struct {
	Name string
	// Bases is the concatenated target sequence. Always resident: it is
	// an order of magnitude smaller than the index and is what makes
	// eviction safe (the index can always be rebuilt from it).
	Bases []byte
	// Map renders concatenated-space coordinates back to sequences.
	Map *maf.SeqMap
	// Fingerprint identifies the assembly's content (FNV-64a over the
	// concatenated bases, hex). The cluster coordinator hashes it onto
	// the routing ring; serialized index files embed it so a stale file
	// can never serve a changed assembly.
	Fingerprint string

	NumSeqs      int
	RegisteredAt time.Time

	reg *Registry
	cfg core.Config // index-shaping config the aligner is (re)built under
	// indexPath is the serialized index file backing this target, or ""
	// when the index was built from bases and has no file.
	indexPath string

	mu      sync.Mutex
	aligner *core.Aligner // nil while evicted
	// indexBytes is the index footprint (capacity-accounted) from the
	// most recent load; it stays populated across eviction so operators
	// and the budget planner can still see the cost of reloading.
	indexBytes int
	pins       int // running jobs holding the index; >0 blocks eviction
	lastUsed   time.Time
	fromFile   bool // whether the most recent load came from indexPath
}

// IndexBytes returns the index footprint from the most recent load
// (sticky across eviction).
func (t *Target) IndexBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.indexBytes
}

// Resident reports whether the target's index is currently in memory.
func (t *Target) Resident() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.aligner != nil
}

// SerializedIndex reports whether this target is backed by a serialized
// index file (so reloads are loads, not rebuilds). The cluster agent
// advertises this to the coordinator.
func (t *Target) SerializedIndex() bool { return t.indexPath != "" }

// IndexFromFile reports whether the most recent load of this target's
// index came from its serialized file rather than a build.
func (t *Target) IndexFromFile() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fromFile
}

// fingerprintBases computes the content fingerprint of a concatenated
// assembly. It delegates to indexstore so the registry, the serialized
// files, and the checkpoint layer all agree on one definition.
func fingerprintBases(bases []byte) string {
	return indexstore.FingerprintBases(bases)
}

// indexMetrics is the registry's obs wiring. All fields may be nil (a
// bare NewRegistry has no metrics); every use is nil-guarded.
type indexMetrics struct {
	loadsFile   *obs.Counter
	loadsBuild  *obs.Counter
	loadSeconds *obs.Histogram
	evictions   *obs.Counter
}

// Registry holds the targets a server aligns against and manages their
// index lifecycle: loading serialized indexes from indexDir, accounting
// resident bytes, and evicting least-recently-used idle indexes when
// the aggregate crosses budget. Registration is rare; lookup is on
// every request.
type Registry struct {
	mu      sync.RWMutex
	targets map[string]*Target

	// Lifecycle knobs, set by server.New before the first Register.
	indexDir string
	// budget caps aggregate resident index bytes; <= 0 disables
	// eviction.
	budget  int64
	log     *slog.Logger
	metrics indexMetrics
}

// NewRegistry returns an empty registry with no index directory, no
// eviction budget, and no metrics (the embedded-library configuration).
func NewRegistry() *Registry {
	return &Registry{
		targets: make(map[string]*Target),
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// IndexFileName is the serialized-index filename convention inside an
// index directory: <target name>.dwx.
func IndexFileName(name string) string { return name + ".dwx" }

// Register loads an assembly under name, acquiring its seed index once:
// from <indexDir>/<name>.dwx when the file exists and matches the
// assembly's fingerprint and cfg's seed parameters, else by building
// it. cfg supplies the index-shaping parameters (SeedPattern,
// SeedMaxFreq); per-job knobs are rebound later with WithConfig.
// Registering a name twice is an error — targets are immutable once
// published.
func (r *Registry) Register(name string, asm *genome.Assembly, cfg core.Config) (*Target, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty target name")
	}
	if asm == nil || len(asm.Seqs) == 0 {
		return nil, fmt.Errorf("server: target %q has no sequences", name)
	}
	bases, starts := genome.Concat(asm.Seqs)
	names := make([]string, len(asm.Seqs))
	for i, s := range asm.Seqs {
		names[i] = s.Name
	}
	m, err := maf.NewSeqMap(name, names, starts)
	if err != nil {
		return nil, err
	}
	t := &Target{
		Name:         name,
		Bases:        bases,
		Map:          m,
		Fingerprint:  fingerprintBases(bases),
		NumSeqs:      len(asm.Seqs),
		RegisteredAt: time.Now(),
		reg:          r,
		cfg:          cfg,
	}
	if r.indexDir != "" {
		p := filepath.Join(r.indexDir, IndexFileName(name))
		if _, statErr := os.Stat(p); statErr == nil {
			t.indexPath = p
		}
	}
	// Load (or build) eagerly so registration surfaces index problems
	// immediately, as it always has.
	t.mu.Lock()
	err = t.loadLocked()
	t.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("server: indexing target %q: %w", name, err)
	}
	r.mu.Lock()
	if _, dup := r.targets[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("server: target %q already registered", name)
	}
	r.targets[name] = t
	r.mu.Unlock()
	r.maybeEvict(t)
	return t, nil
}

// loadLocked materializes the target's aligner (t.mu held). Serialized
// files are preferred; any typed indexstore failure — corruption, stale
// fingerprint, mismatched seed config, format version — degrades to a
// rebuild from bases with a warning, because a damaged cache file must
// cost latency, never availability.
func (t *Target) loadLocked() error {
	if t.aligner != nil {
		return nil
	}
	r := t.reg
	start := time.Now()
	if t.indexPath != "" {
		ix, _, err := indexstore.LoadForTarget(t.indexPath, t.Fingerprint,
			t.cfg.SeedPattern, t.cfg.SeedMaxFreq)
		if err == nil {
			aligner, aerr := core.NewAlignerWithIndex(t.Bases, t.cfg, ix)
			if aerr == nil {
				t.finishLoadLocked(aligner, true, start)
				return nil
			}
			err = aerr
		}
		if isIndexFileError(err) {
			r.log.Warn("serialized index unusable; rebuilding",
				"target", t.Name, "path", t.indexPath, "err", err)
		} else if err != nil {
			return err
		}
	}
	aligner, err := core.NewAligner(t.Bases, t.cfg)
	if err != nil {
		return err
	}
	t.finishLoadLocked(aligner, false, start)
	return nil
}

// isIndexFileError reports whether err is a typed indexstore rejection
// or an I/O failure reading the file — the cases where rebuilding from
// bases is the right fallback.
func isIndexFileError(err error) bool {
	return errors.Is(err, indexstore.ErrBadMagic) ||
		errors.Is(err, indexstore.ErrVersion) ||
		errors.Is(err, indexstore.ErrCorrupt) ||
		errors.Is(err, indexstore.ErrFingerprintMismatch) ||
		errors.Is(err, indexstore.ErrConfigMismatch) ||
		errors.Is(err, os.ErrNotExist) ||
		func() bool { var pe *os.PathError; return errors.As(err, &pe) }()
}

// finishLoadLocked installs a freshly loaded aligner and records the
// load in logs and metrics.
func (t *Target) finishLoadLocked(aligner *core.Aligner, fromFile bool, start time.Time) {
	r := t.reg
	t.aligner = aligner
	t.indexBytes = aligner.IndexMemoryBytes()
	t.fromFile = fromFile
	t.lastUsed = time.Now()
	elapsed := time.Since(start)
	source := "build"
	ctr := r.metrics.loadsBuild
	if fromFile {
		source = "file"
		ctr = r.metrics.loadsFile
	}
	if ctr != nil {
		ctr.Inc()
	}
	if r.metrics.loadSeconds != nil {
		r.metrics.loadSeconds.Observe(elapsed.Seconds())
	}
	r.log.Info("index loaded", "target", t.Name, "source", source,
		"index_bytes", t.indexBytes, "elapsed", elapsed)
}

// Acquire returns the target and a resident aligner, pinning the index
// against eviction until release is called. An evicted index is
// reloaded here — concurrent acquirers of the same target serialize on
// the load, surfacing as queue latency, never as an error. Acquiring
// may push aggregate resident bytes over budget, in which case the
// least-recently-used idle indexes of *other* targets are evicted.
func (r *Registry) Acquire(name string) (*Target, *core.Aligner, func(), error) {
	t, ok := r.Get(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("server: unknown target %q", name)
	}
	t.mu.Lock()
	if err := t.loadLocked(); err != nil {
		t.mu.Unlock()
		return nil, nil, nil, fmt.Errorf("server: reloading index for target %q: %w", name, err)
	}
	t.pins++
	t.lastUsed = time.Now()
	aligner := t.aligner
	t.mu.Unlock()

	r.maybeEvict(t)
	var once sync.Once
	release := func() {
		once.Do(func() {
			t.mu.Lock()
			t.pins--
			t.mu.Unlock()
			r.maybeEvict(nil)
		})
	}
	return t, aligner, release, nil
}

// ResidentIndexBytes sums the footprint of currently resident indexes.
func (r *Registry) ResidentIndexBytes() int64 {
	var total int64
	for _, t := range r.List() {
		t.mu.Lock()
		if t.aligner != nil {
			total += int64(t.indexBytes)
		}
		t.mu.Unlock()
	}
	return total
}

// ResidentTargets counts targets whose index is currently in memory.
func (r *Registry) ResidentTargets() int {
	n := 0
	for _, t := range r.List() {
		if t.Resident() {
			n++
		}
	}
	return n
}

// maybeEvict drops least-recently-used idle indexes until aggregate
// resident bytes fit the budget. keep, when non-nil, is exempt — it is
// the index just loaded on behalf of a running acquire. Pinned targets
// are never evicted; if everything resident is pinned or kept, the
// registry simply runs over budget until load subsides (jobs in flight
// are the floor of memory use, exactly as with the admission
// watermark).
func (r *Registry) maybeEvict(keep *Target) {
	if r.budget <= 0 {
		return
	}
	type candidate struct {
		t        *Target
		lastUsed time.Time
	}
	for {
		var total int64
		var idle []candidate
		for _, t := range r.List() {
			t.mu.Lock()
			if t.aligner != nil {
				total += int64(t.indexBytes)
				if t.pins == 0 && t != keep {
					idle = append(idle, candidate{t, t.lastUsed})
				}
			}
			t.mu.Unlock()
		}
		if total <= r.budget || len(idle) == 0 {
			return
		}
		sort.Slice(idle, func(i, j int) bool { return idle[i].lastUsed.Before(idle[j].lastUsed) })
		victim := idle[0].t
		victim.mu.Lock()
		// Re-check under the victim's lock: it may have been pinned (or
		// already evicted) since the scan.
		if victim.aligner != nil && victim.pins == 0 {
			r.log.Info("evicting idle index", "target", victim.Name,
				"index_bytes", victim.indexBytes, "idle", time.Since(victim.lastUsed))
			victim.aligner = nil
			if r.metrics.evictions != nil {
				r.metrics.evictions.Inc()
			}
		}
		victim.mu.Unlock()
	}
}

// Get returns the target registered under name.
func (r *Registry) Get(name string) (*Target, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.targets[name]
	return t, ok
}

// List returns all targets sorted by name.
func (r *Registry) List() []*Target {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Target, 0, len(r.targets))
	for _, t := range r.targets {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered targets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.targets)
}
