package hw

import "darwinwga/internal/stats"

// ASIC area/power model (Table IV). The paper derives these numbers
// from Synopsys Design Compiler synthesis (logic), Cacti (SRAM) and
// DRAMPower (memory) at TSMC 40nm, 1 GHz, worst-case PVT. We encode the
// resulting per-unit constants — area and power per PE for each array
// type, per-KB SRAM costs, and per-channel DRAM power — and rebuild the
// table from the deployment's configuration, so alternative
// configurations (ablations) re-derive consistent area/power.
const (
	// BSW PE: score-only banded Smith-Waterman datapath.
	asicBSWAreaPerPE  = 16.6 / (64.0 * 64.0) // mm^2
	asicBSWPowerPerPE = 25.6 / (64.0 * 64.0) // W
	// GACT-X PE: adds traceback-pointer generation and X-drop control.
	asicGACTXAreaPerPE  = 4.2 / (12.0 * 64.0)  // mm^2
	asicGACTXPowerPerPE = 6.72 / (12.0 * 64.0) // W
	// Traceback SRAM (Cacti): per-KB costs; 16 KB per GACT-X PE.
	asicSRAMAreaPerKB  = 15.12 / (12.0 * 64.0 * 16.0) // mm^2
	asicSRAMPowerPerKB = 7.92 / (12.0 * 64.0 * 16.0)  // W
	asicSRAMKBPerPE    = 16.0
	// DRAM: four DDR4-2400R x8 channels (DRAMPower estimate).
	asicDRAMPowerPerChannel = 3.10 / 4.0 // W
	asicDRAMChannels        = 4
)

// Component is one row of the Table IV breakdown.
type Component struct {
	Name    string
	Config  string
	AreaMM2 float64
	PowerW  float64
}

// ASICBreakdown rebuilds Table IV for a deployment with the given array
// counts and PEs per array.
func ASICBreakdown(bswArrays, gactxArrays, npe int) []Component {
	bswPEs := float64(bswArrays * npe)
	gactxPEs := float64(gactxArrays * npe)
	sramKB := gactxPEs * asicSRAMKBPerPE
	comps := []Component{
		{
			Name:    "BSW Logic",
			Config:  configString(bswArrays, npe),
			AreaMM2: bswPEs * asicBSWAreaPerPE,
			PowerW:  bswPEs * asicBSWPowerPerPE,
		},
		{
			Name:    "GACT-X Logic",
			Config:  configString(gactxArrays, npe),
			AreaMM2: gactxPEs * asicGACTXAreaPerPE,
			PowerW:  gactxPEs * asicGACTXPowerPerPE,
		},
		{
			Name:    "Traceback SRAM",
			Config:  configString(gactxArrays, npe) + " x 16KB/PE",
			AreaMM2: sramKB * asicSRAMAreaPerKB,
			PowerW:  sramKB * asicSRAMPowerPerKB,
		},
		{
			Name:   "DRAM",
			Config: "4 x DDR4-2400R",
			PowerW: asicDRAMChannels * asicDRAMPowerPerChannel,
		},
	}
	return comps
}

func configString(arrays, npe int) string {
	return stats.Comma(int64(arrays)) + " x (" + stats.Comma(int64(npe)) + "PE array)"
}

// Totals sums a breakdown.
func Totals(comps []Component) (areaMM2, powerW float64) {
	for _, c := range comps {
		areaMM2 += c.AreaMM2
		powerW += c.PowerW
	}
	return areaMM2, powerW
}
