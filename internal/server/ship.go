package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"darwinwga/internal/checkpoint"
)

// Checkpoint shipping is the worker half of mid-pipeline failover: while
// a dispatched job runs, its pipeline-WAL segments are periodically
// PUT to the coordinator's artifact store (the job's JournalShip URL).
// If the worker dies, the coordinator re-dispatches the job elsewhere
// and the replacement downloads those segments before starting, so the
// pipeline resumes from the last shipped checkpoint — byte-identical
// output, strictly less recomputation.
//
// Shipping is deliberately lossy-tolerant in both directions. A failed
// PUT just means the next tick re-ships (segments are re-PUT whole, and
// saveShipped writes atomically, so a torn upload can never be
// observed). A failed download means the replacement recomputes from
// scratch — correct, just slower. The active segment is shipped too:
// the WAL's CRC framing means a reader of any prefix recovers the
// longest valid record sequence, so a mid-append snapshot of the file
// is still a usable journal.

// restoreShipped downloads the job's shipped journal segments into dir
// when no local journal exists. It reports whether anything was
// restored; any failure leaves the job running from scratch.
func (m *Manager) restoreShipped(j *Job, dir string) bool {
	local, err := checkpoint.ListSegments(dir)
	if err != nil || len(local) > 0 {
		return false // keep the local (same-worker restart) journal
	}
	resp, err := m.shipClient.Get(j.Params.JournalShip)
	if err != nil {
		m.log.Warn("listing shipped checkpoint segments", "job_id", j.ID, "error", err)
		return false
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
		return false
	}
	var listing struct {
		Segments []checkpoint.SegmentInfo `json:"segments"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&listing); err != nil {
		m.log.Warn("decoding shipped segment listing", "job_id", j.ID, "error", err)
		return false
	}
	if len(listing.Segments) == 0 {
		return false
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		m.log.Warn("creating checkpoint dir for shipped segments", "job_id", j.ID, "error", err)
		return false
	}
	for _, seg := range listing.Segments {
		if !checkpoint.IsSegmentName(seg.Name) {
			continue
		}
		if err := m.downloadSegment(j, dir, seg.Name); err != nil {
			// A partial segment set is a shorter valid journal prefix
			// only if it's a prefix by segment order; a gap in the middle
			// would splice unrelated records. Wipe and recompute.
			m.log.Warn("downloading shipped segment; recomputing from scratch",
				"job_id", j.ID, "segment", seg.Name, "error", err)
			if rmErr := checkpoint.Remove(dir); rmErr != nil {
				m.log.Warn("removing partial shipped restore", "job_id", j.ID, "error", rmErr)
			}
			return false
		}
	}
	m.log.Info("restored shipped checkpoint journal",
		"job_id", j.ID, "segments", len(listing.Segments))
	return true
}

// downloadSegment fetches one shipped segment and writes it atomically.
func (m *Manager) downloadSegment(j *Job, dir, name string) error {
	resp, err := m.shipClient.Get(j.Params.JournalShip + "/" + name)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
		return errHTTPStatus(resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, checkpoint.DefaultSegmentBytes*4))
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return checkpoint.SyncDir(dir)
}

type errHTTPStatus int

func (e errHTTPStatus) Error() string { return "HTTP " + http.StatusText(int(e)) }

// startShipper launches the per-attempt goroutine that ships the job's
// journal segments every shipInterval. The returned stop function
// performs one final ship (so an orderly attempt end — e.g. a watchdog
// retry — leaves the freshest possible state upstream) and waits for
// the goroutine to exit.
func (m *Manager) startShipper(j *Job, dir string) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	s := &shipper{m: m, j: j, dir: dir, sizes: make(map[string]int64)}
	go func() {
		defer close(done)
		for {
			select {
			case <-stopCh:
				return
			case <-m.clock.After(m.shipInterval):
				s.shipOnce()
			}
		}
	}()
	return func() {
		close(stopCh)
		<-done
		s.shipOnce()
	}
}

// shipper tracks what has already been uploaded so quiescent segments
// are not re-PUT every tick.
type shipper struct {
	m     *Manager
	j     *Job
	dir   string
	sizes map[string]int64
	dead  bool // coordinator said the job is terminal: stop shipping
}

// shipOnce uploads every segment that grew since the last successful
// ship. Errors are logged and retried next tick — shipping is an
// optimization for failover, never a correctness dependency of the run.
func (s *shipper) shipOnce() {
	if s.dead {
		return
	}
	segs, err := checkpoint.ListSegments(s.dir)
	if err != nil {
		return
	}
	for _, seg := range segs {
		if seg.Size == s.sizes[seg.Name] {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, seg.Name))
		if err != nil {
			continue // rotated or removed under us; next tick re-lists
		}
		req, err := http.NewRequest(http.MethodPut,
			s.j.Params.JournalShip+"/"+seg.Name, bytes.NewReader(data))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := s.m.shipClient.Do(req)
		if err != nil {
			s.m.log.Debug("shipping checkpoint segment",
				"job_id", s.j.ID, "segment", seg.Name, "error", err)
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
		resp.Body.Close()                                     //nolint:errcheck
		switch resp.StatusCode {
		case http.StatusNoContent, http.StatusOK:
			s.sizes[seg.Name] = int64(len(data))
		case http.StatusConflict, http.StatusNotFound:
			// Terminal or evicted coordinator-side; nothing will ever
			// resume from these segments.
			s.dead = true
			return
		default:
			s.m.log.Debug("shipping checkpoint segment rejected",
				"job_id", s.j.ID, "segment", seg.Name, "status", resp.StatusCode)
			return
		}
	}
}
