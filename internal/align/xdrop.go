package align

// Gapped X-drop extension DP — the per-tile kernel of GACT-X (Section
// III-D). Scoring is Needleman-Wunsch-style from the tile origin (0,0)
// so that scores may go negative and gaps at the beginning of a tile are
// part of the alignment (which is what lets neighbouring tiles stitch).
// A row's computation starts at the first column where the previous row
// was still above (Vmax - Y) and stops once every live value has fallen
// below it. Traceback pointers are stored only for computed cells, so
// memory is proportional to the cells actually visited.

// XDropResult is the outcome of one gapped X-drop tile.
type XDropResult struct {
	// Score is Vmax, the best score of any path from the origin.
	Score int32
	// TEnd and QEnd are the (exclusive) end coordinates of the best path.
	TEnd, QEnd int
	// Ops is the transcript from (0,0) to (TEnd,QEnd).
	Ops []EditOp
	// Cells is the number of DP cells computed.
	Cells int
	// MaxRowWidth is the widest computed row (diagnostic: how far the
	// computation wandered from the diagonal).
	MaxRowWidth int
}

// XDropAligner runs gapped X-drop tiles with reusable buffers. Not safe
// for concurrent use.
type XDropAligner struct {
	sc *Scoring
	y  int32

	vPrev, vCur []int32
	dPrev, dCur []int32
	rowLo       []int
	rowDirs     [][]byte
}

// NewXDropAligner returns an aligner with drop threshold y (the paper's
// Y, default 9430).
func NewXDropAligner(sc *Scoring, y int32) *XDropAligner {
	return &XDropAligner{sc: sc, y: y}
}

// Y returns the drop threshold.
func (x *XDropAligner) Y() int32 { return x.y }

// Align extends from the origin of target×query. Both slices are one
// tile (or less) long. Rows index the target, columns the query.
func (x *XDropAligner) Align(target, query []byte) XDropResult {
	n, m := len(target), len(query)
	res := XDropResult{}
	sc, y := x.sc, x.y
	width := m + 1
	if cap(x.vPrev) < width {
		x.vPrev = make([]int32, width)
		x.vCur = make([]int32, width)
		x.dPrev = make([]int32, width)
		x.dCur = make([]int32, width)
	}
	vPrev := x.vPrev[:width]
	vCur := x.vCur[:width]
	dPrev := x.dPrev[:width]
	dCur := x.dCur[:width]
	x.rowLo = x.rowLo[:0]
	x.rowDirs = x.rowDirs[:0]

	var vmax int32
	bestI, bestJ := 0, 0

	// Row 0: the origin plus leading insertions along the query.
	row0 := []byte{dirNone}
	vPrev[0] = 0
	dPrev[0] = negInf
	prevStart, prevEnd := 0, 0
	for j := 1; j <= m; j++ {
		v := -sc.GapCost(j)
		if v < vmax-y {
			break
		}
		vPrev[j] = v
		dPrev[j] = negInf
		flags := byte(0)
		if j > 1 {
			flags = flagIExtend
		}
		row0 = append(row0, dirLeft|flags)
		prevEnd = j
	}
	x.rowLo = append(x.rowLo, 0)
	x.rowDirs = append(x.rowDirs, row0)
	res.Cells += len(row0)
	res.MaxRowWidth = len(row0)
	// Alive range of row 0 (scores within Y of vmax).
	aliveLo, aliveHi := 0, prevEnd

	for i := 1; i <= n; i++ {
		rowStart := aliveLo
		tb := target[i-1]
		dirs := make([]byte, 0, aliveHi-aliveLo+2)
		newAliveLo, newAliveHi := -1, -1
		iRow := negInf

		prevV := func(j int) int32 {
			if j >= prevStart && j <= prevEnd {
				return vPrev[j]
			}
			return negInf
		}
		prevD := func(j int) int32 {
			if j >= prevStart && j <= prevEnd {
				return dPrev[j]
			}
			return negInf
		}

		j := rowStart
		for ; j <= m; j++ {
			var v int32
			var dir, flags byte
			if j == 0 {
				v = -sc.GapCost(i)
				dir = dirUp
				if i > 1 {
					flags = flagDExtend
				}
				dCur[0] = v
				iRow = negInf
			} else {
				vLeft := negInf
				if j-1 >= rowStart {
					vLeft = vCur[j-1]
				}
				openI := saturSub(vLeft, sc.GapOpen)
				extI := saturSub(iRow, sc.GapExtend)
				if extI > openI {
					iRow = extI
					flags |= flagIExtend
				} else {
					iRow = openI
				}
				openD := saturSub(prevV(j), sc.GapOpen)
				extD := saturSub(prevD(j), sc.GapExtend)
				if extD > openD {
					dCur[j] = extD
					flags |= flagDExtend
				} else {
					dCur[j] = openD
				}
				diag := negInf
				if pv := prevV(j - 1); pv > negInf {
					diag = pv + sc.Score(tb, query[j-1])
				}
				v = diag
				dir = dirDiag
				if dCur[j] > v {
					v = dCur[j]
					dir = dirUp
				}
				if iRow > v {
					v = iRow
					dir = dirLeft
				}
			}
			vCur[j] = v
			dirs = append(dirs, dir|flags)
			if v > vmax {
				vmax = v
				bestI, bestJ = i, j
			}
			if v >= vmax-y {
				if newAliveLo < 0 {
					newAliveLo = j
				}
				newAliveHi = j
			}
			// Past everything the previous row can feed, with a dead
			// horizontal run, nothing to the right can come back to life.
			if j > prevEnd && v < vmax-y && iRow < vmax-y {
				break
			}
		}
		rowEnd := rowStart + len(dirs) - 1
		res.Cells += len(dirs)
		if len(dirs) > res.MaxRowWidth {
			res.MaxRowWidth = len(dirs)
		}
		x.rowLo = append(x.rowLo, rowStart)
		x.rowDirs = append(x.rowDirs, dirs)
		if newAliveLo < 0 {
			break // entire row below (vmax - Y): X-drop termination
		}
		aliveLo, aliveHi = newAliveLo, newAliveHi
		prevStart, prevEnd = rowStart, rowEnd
		vPrev, vCur = vCur, vPrev
		dPrev, dCur = dCur, dPrev
	}

	res.Score = vmax
	res.TEnd, res.QEnd = bestI, bestJ
	res.Ops = x.traceback(bestI, bestJ)
	return res
}

// LastRowWidths appends the computed width (column count) of every row
// of the most recent Align call to dst. The systolic hardware model
// replays the GACT-X stripe schedule from these widths to obtain exact
// per-tile cycle counts (Section IV).
func (x *XDropAligner) LastRowWidths(dst []int) []int {
	for _, d := range x.rowDirs {
		dst = append(dst, len(d))
	}
	return dst
}

// saturSub subtracts a cost without drifting further below negInf.
func saturSub(v, cost int32) int32 {
	if v <= negInf {
		return negInf
	}
	return v - cost
}

// traceback walks from (i,j) back to the origin using the ragged
// direction rows.
func (x *XDropAligner) traceback(i, j int) []EditOp {
	var rev []EditOp
	state := 0
	for i > 0 || j > 0 {
		cell := x.rowDirs[i][j-x.rowLo[i]]
		switch state {
		case 0:
			switch cell & dirVMask {
			case dirDiag:
				rev = append(rev, OpMatch)
				i--
				j--
			case dirLeft:
				state = 1
			case dirUp:
				state = 2
			default:
				i, j = 0, 0 // dirNone: origin reached
			}
		case 1:
			rev = append(rev, OpInsert)
			ext := cell&flagIExtend != 0
			j--
			if !ext {
				state = 0
			}
		case 2:
			rev = append(rev, OpDelete)
			ext := cell&flagDExtend != 0
			i--
			if !ext {
				state = 0
			}
		}
	}
	ReverseOps(rev)
	return rev
}
