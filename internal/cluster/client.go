package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"darwinwga/internal/obs"
	"darwinwga/internal/server"
)

// EpochHeader carries the dispatching coordinator's fencing epoch on
// every coordinator→worker request. Workers track the highest epoch
// seen and reject lower ones with 409, which is what keeps a partitioned
// old leader from split-brain dispatching. Requests without the header
// (standalone clients) are not fenced.
const EpochHeader = server.ClusterEpochHeader

// TraceHeader propagates the distributed trace id on coordinator→worker
// dispatches (and is honored on client→coordinator submissions).
const TraceHeader = server.TraceHeader

// workerSubmit is the body dispatched to a worker's POST /v1/jobs — the
// server's submitRequest shape with the query inlined from the
// coordinator's spill.
type workerSubmit struct {
	Target     string `json:"target"`
	QueryFASTA string `json:"query_fasta"`
	QueryName  string `json:"query_name,omitempty"`
	Client     string `json:"client,omitempty"`
	// TraceID propagates the cluster-wide distributed trace id so every
	// attempt's spans — on whichever worker — tag into one trace.
	TraceID string `json:"trace_id,omitempty"`
	// JournalShip is the coordinator artifact-store base URL the worker
	// ships this job's pipeline-journal segments to (and downloads them
	// from when resuming after a failover).
	JournalShip string `json:"journal_ship,omitempty"`

	Ungapped          bool  `json:"ungapped,omitempty"`
	ForwardOnly       bool  `json:"forward_only,omitempty"`
	Hf                int32 `json:"hf,omitempty"`
	He                int32 `json:"he,omitempty"`
	MaxCandidates     int64 `json:"max_candidates,omitempty"`
	MaxFilterTiles    int64 `json:"max_filter_tiles,omitempty"`
	MaxExtensionCells int64 `json:"max_extension_cells,omitempty"`
	DeadlineMS        int64 `json:"deadline_ms,omitempty"`
}

// workerStatus is the subset of a worker's job status the coordinator
// reads.
type workerStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	HSPs     int64  `json:"hsps"`
	MAFBytes int    `json:"maf_bytes"`
}

// cancelOnClose ties a request's context cancel to the response body's
// lifetime so doRequest's watchdog goroutine can always be released.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// doRequest performs one HTTP request against a worker with the
// per-request timeout driven by the coordinator's Clock — not a context
// deadline — so ManualClock chaos tests control exactly when a slow
// worker "times out". cancelCh (may be nil) aborts the request early.
func (c *Coordinator) doRequest(req *http.Request, cancelCh <-chan struct{}) (*http.Response, error) {
	return c.doRequestTimeout(req, cancelCh, c.cfg.DispatchTimeout)
}

// doRequestTimeout is doRequest with an explicit timeout — shard work
// units run under their own lease (cfg.ShardLease), much longer than
// the control-plane DispatchTimeout, because the in-flight request is
// the unit's execution.
func (c *Coordinator) doRequestTimeout(req *http.Request, cancelCh <-chan struct{}, timeout time.Duration) (*http.Response, error) {
	ctx, cancel := context.WithCancel(req.Context())
	req = req.WithContext(ctx)
	req.Header.Set(EpochHeader, strconv.FormatUint(c.epoch, 10))
	type result struct {
		resp *http.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := c.client.Do(req)
		ch <- result{resp, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			cancel()
			return nil, r.err
		}
		if r.resp.StatusCode == http.StatusConflict && r.resp.Header.Get(EpochHeader) != "" {
			// The worker knows a newer epoch: a standby promoted past us.
			// Stop dispatching — the new leader owns these jobs.
			if c.fenced.CompareAndSwap(false, true) {
				c.log.Error("fenced: worker rejected stale epoch; ceasing dispatch",
					"worker", req.URL.Host, "epoch", c.epoch,
					"worker_epoch", r.resp.Header.Get(EpochHeader))
			}
		}
		r.resp.Body = &cancelOnClose{ReadCloser: r.resp.Body, cancel: cancel}
		return r.resp, nil
	case <-c.cfg.Clock.After(timeout):
		cancel()
		<-ch
		return nil, fmt.Errorf("cluster: request to %s timed out after %v",
			req.URL.Host, timeout)
	case <-cancelCh:
		cancel()
		<-ch
		return nil, fmt.Errorf("cluster: request to %s aborted: job cancelled", req.URL.Host)
	case <-c.ctx.Done():
		cancel()
		<-ch
		return nil, fmt.Errorf("cluster: request to %s aborted: coordinator shutting down", req.URL.Host)
	}
}

// drainClose discards and closes a response body so the transport's
// connection can be reused.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
	resp.Body.Close()                                     //nolint:errcheck
}

// dispatchTo places the job on one worker, retrying per the retry
// policy with exponential backoff and jitter. Transport failures are
// charged to the worker's breaker; HTTP-level rejections are not (the
// transport worked). Returns the worker-side job id.
func (c *Coordinator) dispatchTo(j *coordJob, m *Member) (string, error) {
	payload, err := json.Marshal(workerSubmit{
		Target:            j.Target,
		QueryFASTA:        j.queryFASTA,
		QueryName:         j.QueryName,
		Client:            "coord/" + j.Client,
		TraceID:           j.TraceID,
		JournalShip:       c.shipURLFor(j.ID),
		Ungapped:          j.Spec.Ungapped,
		ForwardOnly:       j.Spec.ForwardOnly,
		Hf:                j.Spec.Hf,
		He:                j.Spec.He,
		MaxCandidates:     j.Spec.MaxCandidates,
		MaxFilterTiles:    j.Spec.MaxFilterTiles,
		MaxExtensionCells: j.Spec.MaxExtensionCells,
		DeadlineMS:        j.Spec.DeadlineMS,
	})
	if err != nil {
		return "", err
	}
	attempts := c.cfg.Retry.Attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			select {
			case <-c.cfg.Clock.After(c.cfg.Retry.Backoff(attempt-1, hash64(j.ID+m.ID))):
			case <-j.cancelCh:
				return "", fmt.Errorf("cluster: dispatch aborted: job cancelled")
			case <-c.ctx.Done():
				return "", fmt.Errorf("cluster: dispatch aborted: shutting down")
			}
		}
		req, rerr := http.NewRequest(http.MethodPost, m.Addr+"/v1/jobs", bytes.NewReader(payload))
		if rerr != nil {
			return "", rerr
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(TraceHeader, j.TraceID)
		resp, rerr := c.doRequest(req, j.cancelCh)
		if rerr != nil {
			c.brk.failure(m.ID)
			c.c.dispatchErrors.Inc()
			lastErr = rerr
			continue
		}
		// The transport worked regardless of the status code.
		c.brk.success(m.ID)
		if resp.StatusCode == http.StatusAccepted {
			var st workerStatus
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close() //nolint:errcheck
			if derr != nil {
				lastErr = fmt.Errorf("cluster: decoding worker accept: %w", derr)
				continue
			}
			if st.ID == "" {
				lastErr = fmt.Errorf("cluster: worker accepted without a job id")
				continue
			}
			return st.ID, nil
		}
		code := resp.StatusCode
		drainClose(resp)
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			// Worker admission pushed back; backoff and retry.
			lastErr = fmt.Errorf("cluster: worker %s busy (%d)", m.ID, code)
			continue
		}
		// Anything else (404 unknown target, 4xx) will not get better
		// by retrying against this worker.
		return "", fmt.Errorf("cluster: worker %s rejected dispatch: HTTP %d", m.ID, code)
	}
	return "", lastErr
}

// workerTrace fetches the incremental span buffer an assignment's
// worker holds for its job — events past cursor `after`, plus the
// worker's identity and drop count. Best-effort by contract: callers
// treat every error as "no new spans this poll".
func (c *Coordinator) workerTrace(j *coordJob, a assignment, after int) (*obs.TraceExport, error) {
	req, err := http.NewRequest(http.MethodGet,
		a.WorkerAddr+"/v1/jobs/"+a.WorkerJobID+"/trace?after="+strconv.Itoa(after), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.doRequest(req, j.cancelCh)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		drainClose(resp)
		return nil, fmt.Errorf("cluster: worker %s: trace HTTP %d", a.WorkerID, resp.StatusCode)
	}
	var ex obs.TraceExport
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		return nil, fmt.Errorf("cluster: decoding worker trace: %w", err)
	}
	return &ex, nil
}

// workerEvents fetches an assignment's worker-side flight-recorder
// events, for merging into the coordinator's GET /v1/jobs/{id}/events.
func (c *Coordinator) workerEvents(j *coordJob, a assignment) ([]obs.FlightEvent, error) {
	req, err := http.NewRequest(http.MethodGet,
		a.WorkerAddr+"/v1/jobs/"+a.WorkerJobID+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.doRequest(req, j.cancelCh)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		drainClose(resp)
		return nil, fmt.Errorf("cluster: worker %s: events HTTP %d", a.WorkerID, resp.StatusCode)
	}
	var body struct {
		Events []obs.FlightEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("cluster: decoding worker events: %w", err)
	}
	return body.Events, nil
}

// workerJobStatus polls one assignment's status on its worker.
func (c *Coordinator) workerJobStatus(j *coordJob, a assignment) (*workerStatus, error) {
	req, err := http.NewRequest(http.MethodGet, a.WorkerAddr+"/v1/jobs/"+a.WorkerJobID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.doRequest(req, j.cancelCh)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		drainClose(resp)
		return nil, fmt.Errorf("cluster: worker %s: status HTTP %d", a.WorkerID, resp.StatusCode)
	}
	var st workerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("cluster: decoding worker status: %w", err)
	}
	return &st, nil
}

// openMAFStream opens a streaming GET of an assignment's MAF. The
// caller owns the response body. No clock timeout: MAF streams
// legitimately run for the life of a job; the caller's request context
// bounds it.
func (c *Coordinator) openMAFStream(ctx context.Context, a assignment) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		a.WorkerAddr+"/v1/jobs/"+a.WorkerJobID+"/maf", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(EpochHeader, strconv.FormatUint(c.epoch, 10))
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		drainClose(resp)
		return nil, fmt.Errorf("cluster: worker %s: maf HTTP %d", a.WorkerID, resp.StatusCode)
	}
	return resp, nil
}
