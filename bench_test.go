// Benchmarks regenerating the paper's evaluation artifacts (one bench
// per table and figure of Section VI, as indexed in DESIGN.md) plus the
// kernel-level benches the hardware comparison needs (software BSW
// tiles/second is the local stand-in for the paper's Parasail rate) and
// ablations over the design knobs.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment benches run at a small genome scale so a full sweep
// finishes in minutes; cmd/experiments regenerates the same artifacts
// at larger scales.
package darwinwga_test

import (
	"context"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"darwinwga"
	"darwinwga/internal/align"
	"darwinwga/internal/core"
	"darwinwga/internal/dsoft"
	"darwinwga/internal/evolve"
	"darwinwga/internal/experiments"
	"darwinwga/internal/gact"
	"darwinwga/internal/genome"
	"darwinwga/internal/indexstore"
	"darwinwga/internal/seed"
)

func randSeq(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = "ACGT"[rng.Intn(4)]
	}
	return out
}

func benchPair(b *testing.B, name string, scale float64) *evolve.Pair {
	b.Helper()
	cfg, ok := evolve.StandardPair(name, scale)
	if !ok {
		b.Fatalf("unknown pair %s", name)
	}
	p, err := evolve.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- Kernel benchmarks -------------------------------------------------

// BenchmarkBSWFilterTile measures software gapped-filter throughput in
// tiles/second — the local equivalent of the paper's Parasail 225K
// tiles/s baseline (Section V-B). Table V's iso-sensitive software
// column divides the recorded filter-tile workload by this rate.
func BenchmarkBSWFilterTile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	target := randSeq(rng, 100_000)
	query := randSeq(rng, 100_000)
	copy(query[40_000:60_000], target[40_000:60_000])
	ba := align.NewBandedAligner(align.DefaultScoring(), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := 40_000 + (i*331)%20_000
		ba.FilterTile(target, query, pos, pos, 320)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tiles/s")
}

// BenchmarkUngappedFilterTile measures the LASTZ-style ungapped filter
// on the false-positive anchors that dominate the filter workload (the
// vast majority of seed hits are junk and terminate within a few dozen
// bases). This is the regime behind the paper's "ungapped filtering is
// 200x faster than gapped alignment in software" — compare against
// BenchmarkBSWFilterTile, whose banded tile costs the same whether the
// anchor is real or junk.
func BenchmarkUngappedFilterTile(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	target := randSeq(rng, 100_000)
	query := randSeq(rng, 100_000) // unrelated: every anchor is junk
	ue := align.NewUngappedExtender(align.DefaultScoring(), 340)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := 40_000 + (i*331)%20_000
		ue.Extend(target, query, pos, pos, 19)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tiles/s")
}

// BenchmarkGACTXExtension measures extension throughput in aligned
// bases per second over a realistic diverged pair.
func BenchmarkGACTXExtension(b *testing.B) {
	p := benchPair(b, "dm6-droYak2", 0.0005)
	ext, err := gact.NewExtender(align.DefaultScoring(), gact.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	anchor := len(p.TargetSeq()) / 2
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		a := ext.Extend(p.TargetSeq(), p.QuerySeq(), anchor, anchor, nil)
		total += a.TSpan()
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "bp/s")
}

// BenchmarkSeedIndexBuild measures position-table construction.
func BenchmarkSeedIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	target := randSeq(rng, 500_000)
	shape := seed.DefaultShape()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seed.BuildIndex(target, shape, seed.IndexOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(target))*float64(b.N)/b.Elapsed().Seconds(), "bp/s")
}

// BenchmarkIndexBuild and BenchmarkIndexLoad are the index-lifecycle
// pair: the same 500 kb target's D-SOFT index built from bases versus
// deserialized from its indexstore file. The ratio is the startup
// speedup `serve -index-dir` buys per target.
func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	target := randSeq(rng, 500_000)
	shape := seed.DefaultShape()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seed.BuildIndex(target, shape, seed.IndexOptions{MaxFreq: 30}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(target))*float64(b.N)/b.Elapsed().Seconds(), "bp/s")
}

func BenchmarkIndexLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	target := randSeq(rng, 500_000)
	ix, err := seed.BuildIndex(target, seed.DefaultShape(), seed.IndexOptions{MaxFreq: 30})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.dwx")
	if err := indexstore.Write(path, ix, indexstore.FingerprintBases(target)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := indexstore.Load(path); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(target))*float64(b.N)/b.Elapsed().Seconds(), "bp/s")
}

// BenchmarkDSoftSeeding measures the seeding stage alone.
func BenchmarkDSoftSeeding(b *testing.B) {
	p := benchPair(b, "dm6-droYak2", 0.001)
	ix, err := seed.BuildIndex(p.TargetSeq(), seed.DefaultShape(), seed.IndexOptions{MaxFreq: 30})
	if err != nil {
		b.Fatal(err)
	}
	s, err := dsoft.NewSeeder(ix, dsoft.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	scratch := dsoft.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st dsoft.Stats
		s.Collect(p.QuerySeq(), 0, len(p.QuerySeq()), nil, &st, scratch)
	}
	b.ReportMetric(float64(len(p.QuerySeq()))*float64(b.N)/b.Elapsed().Seconds(), "bp/s")
}

// BenchmarkSmithWaterman measures the exact-DP oracle on exon-sized
// problems (the TBLASTX-substitute workload).
func BenchmarkSmithWaterman(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	target := randSeq(rng, 200)
	query := randSeq(rng, 400)
	copy(query[100:300], target)
	sc := align.DefaultScoring()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.SmithWaterman(sc, target, query)
	}
	b.ReportMetric(float64(len(target)*len(query))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkShardScatterGather measures the cluster's scatter/gather
// round-trip in-process: decompose a both-strand query into shard work
// units, execute every unit (extension runs un-absorbed by design),
// and deterministically merge the frames. Against BenchmarkGACTXExtension
// and the one-shot pipeline this tracks the wasted-work overhead a
// -shard-dispatch job pays for its failover/hedging granularity.
func BenchmarkShardScatterGather(b *testing.B) {
	pair, err := evolve.Generate(evolve.Config{
		Name: "shard-bench", TargetName: "tgt", QueryName: "qry",
		Length: 8_000, SubRate: 0.12, IndelRate: 0.015, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.BothStrands = true
	a, err := core.NewAligner(pair.TargetSeq(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	query := pair.QuerySeq()
	rc := genome.ReverseComplement(query)
	plan := core.PlanShards(&cfg, len(query), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames := map[byte][]core.ShardFrame{}
		for _, u := range plan {
			q := query
			if u.Strand == '-' {
				q = rc
			}
			fr, _, err := a.AlignShardUnit(context.Background(), q, u)
			if err != nil {
				b.Fatal(err)
			}
			frames[u.Strand] = append(frames[u.Strand], fr...)
		}
		kept := 0
		for _, s := range []byte{'+', '-'} {
			keep, _ := core.MergeShardFrames(frames[s], cfg.AbsorbBand)
			kept += len(keep)
		}
		if kept == 0 {
			b.Fatal("merge kept no frames")
		}
	}
	b.ReportMetric(float64(len(plan)*b.N)/b.Elapsed().Seconds(), "units/s")
}

// --- Table / figure benchmarks -----------------------------------------

func benchLab() *experiments.Lab {
	return experiments.NewLab(experiments.Options{Scale: 0.0005, Repeats: 1, Out: io.Discard})
}

// BenchmarkTable3Sensitivity regenerates the Table III sensitivity
// comparison end to end (all four pairs, both pipelines, chaining and
// the exon oracle).
func BenchmarkTable3Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(benchLab()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Performance regenerates Table V (workload recording
// plus FPGA/ASIC cycle-model estimates).
func BenchmarkTable5Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable5(benchLab()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2UngappedBlocks regenerates Figure 2's block-size
// distributions.
func BenchmarkFig2UngappedBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig2(benchLab()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10GACTvsGACTX regenerates the Figure 10 comparison (same
// anchors through GACT and GACT-X at three traceback-memory budgets).
func BenchmarkFig10GACTvsGACTX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10(benchLab()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPRNoise regenerates the Section VI-B noise analysis
// (shuffled-target false positive rate).
func BenchmarkFPRNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFPR(benchLab()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationFilterMode sweeps the pipeline's central switch:
// gapped (Darwin-WGA) versus ungapped (LASTZ) filtering on the same
// pair, measuring full-pipeline time. The paper's Table V shows the
// software cost of sensitivity; this is the direct measurement.
func BenchmarkAblationFilterMode(b *testing.B) {
	p := benchPair(b, "ce11-cb4", 0.0005)
	for _, mode := range []core.FilterMode{core.FilterGapped, core.FilterUngapped} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := darwinwga.DefaultConfig()
			if mode == core.FilterUngapped {
				cfg = darwinwga.LASTZBaselineConfig()
			}
			cfg.BothStrands = false
			aligner, err := darwinwga.NewAligner(p.TargetSeq(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := aligner.Align(p.QuerySeq()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBandWidth sweeps the BSW band radius B: wider bands
// tolerate larger indels inside the filter tile at linearly more work
// per tile (Section III-C).
func BenchmarkAblationBandWidth(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	target := randSeq(rng, 10_000)
	query := append([]byte{}, target...)
	for _, band := range []int{8, 16, 32, 64} {
		b.Run(benchName("B", band), func(b *testing.B) {
			ba := align.NewBandedAligner(align.DefaultScoring(), band)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ba.FilterTile(target, query, 5000, 5000, 320)
			}
		})
	}
}

// BenchmarkAblationYDrop sweeps GACT-X's Y threshold: larger Y crosses
// larger gaps but computes more cells per tile (Section III-D).
func BenchmarkAblationYDrop(b *testing.B) {
	p := benchPair(b, "dm6-dp4", 0.0005)
	anchor := len(p.TargetSeq()) / 2
	for _, y := range []int32{1000, 4000, 9430, 20000} {
		b.Run(benchName("Y", int(y)), func(b *testing.B) {
			cfg := gact.DefaultConfig()
			cfg.Y = y
			ext, err := gact.NewExtender(align.DefaultScoring(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			matched := 0
			for i := 0; i < b.N; i++ {
				var st gact.Stats
				a := ext.Extend(p.TargetSeq(), p.QuerySeq(), anchor, anchor, &st)
				matched += a.TSpan()
			}
			b.ReportMetric(float64(matched)/float64(b.N), "span/op")
		})
	}
}

// BenchmarkAblationTransitions toggles the seed's one-transition
// tolerance, which multiplies seeding work by (weight+1) for extra
// sensitivity (Section III-B).
func BenchmarkAblationTransitions(b *testing.B) {
	p := benchPair(b, "dm6-droYak2", 0.0005)
	for _, tr := range []bool{false, true} {
		name := "off"
		if tr {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := darwinwga.DefaultConfig()
			cfg.DSoft.Transitions = tr
			cfg.BothStrands = false
			aligner, err := darwinwga.NewAligner(p.TargetSeq(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := aligner.Align(p.QuerySeq()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
