package genome

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadFASTA parses FASTA-formatted sequences from r. Header lines begin
// with '>'; the first whitespace-delimited token becomes the sequence
// name. Bases are upper-cased and validated against the extended
// alphabet.
func ReadFASTA(r io.Reader) ([]*Sequence, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var seqs []*Sequence
	var cur *Sequence
	lineno := 0
	for {
		line, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, fmt.Errorf("genome: reading FASTA: %w", err)
		}
		lineno++
		line = bytes.TrimRight(line, "\r\n")
		if len(line) > 0 {
			if line[0] == '>' {
				name := string(bytes.Fields(line[1:])[0])
				cur = &Sequence{Name: name}
				seqs = append(seqs, cur)
			} else if line[0] != ';' { // ';' comments are legacy FASTA
				if cur == nil {
					return nil, fmt.Errorf("genome: FASTA line %d: sequence data before first header", lineno)
				}
				cur.Bases = append(cur.Bases, line...)
			}
		}
		if atEOF {
			break
		}
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("genome: FASTA input contains no sequences")
	}
	for _, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return seqs, nil
}

// ReadFASTAFile reads a FASTA file from disk and labels the assembly with
// the file's base name (without extension).
func ReadFASTAFile(path string) (*Assembly, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seqs, err := ReadFASTA(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.IndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	return &Assembly{Name: name, Seqs: seqs}, nil
}

// WriteFASTA writes sequences in FASTA format with the given line width
// (60 if width <= 0).
func WriteFASTA(w io.Writer, seqs []*Sequence, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name); err != nil {
			return err
		}
		for i := 0; i < len(s.Bases); i += width {
			end := min(i+width, len(s.Bases))
			if _, err := bw.Write(s.Bases[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes an assembly to a FASTA file.
func WriteFASTAFile(path string, a *Assembly) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFASTA(f, a.Seqs, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
