package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darwinwga"
	"darwinwga/internal/evolve"
	"darwinwga/internal/maf"
)

// freePort reserves an ephemeral 127.0.0.1 port and returns it as
// "127.0.0.1:<port>". The listener is closed before return, so the
// port can (rarely) be stolen before the server binds it — acceptable
// in tests, where the bind failure is loud and immediate.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck
	return addr
}

// haTestPair writes the standard e2e pair to dir and produces the
// one-shot reference MAF every HA outcome must match byte for byte.
func haTestPair(t *testing.T, dir string) (pair *evolve.Pair, tPath, queryFASTA string, ref []byte) {
	t.Helper()
	cfg, ok := evolve.StandardPair("dm6-droSim1", 0.0004)
	if !ok {
		t.Fatal("unknown pair dm6-droSim1")
	}
	pair, err := evolve.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tPath = filepath.Join(dir, pair.Target.Name+".fa")
	qPath := filepath.Join(dir, pair.Query.Name+".fa")
	if err := darwinwga.WriteFASTA(tPath, pair.Target); err != nil {
		t.Fatal(err)
	}
	if err := darwinwga.WriteFASTA(qPath, pair.Query); err != nil {
		t.Fatal(err)
	}
	queryRaw, err := os.ReadFile(qPath)
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.maf")
	if err := run(context.Background(), options{
		targetPath: tPath, queryPath: qPath, outPath: refPath,
		scale: 0.01, topChains: 3,
	}); err != nil {
		t.Fatalf("one-shot reference: %v", err)
	}
	ref, err = os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if blocks, complete, err := maf.ReadVerified(bytes.NewReader(ref)); err != nil || !complete || len(blocks) == 0 {
		t.Fatalf("reference MAF unusable (blocks=%d complete=%v err=%v)", len(blocks), complete, err)
	}
	return pair, tPath, string(queryRaw), ref
}

// TestHALeaderFailoverE2E is warm-standby promotion over real processes
// and real sockets: a coordinator with a journal and an advertised
// standby routes a job, then is SIGKILLed mid-job. The standby — which
// has been tailing the leader's routing WAL over HTTP — must detect the
// silence, promote itself within roughly one lease TTL, reattach to the
// running job via its replicated journal, and finish it under the
// original job id with a MAF byte-identical to a one-shot CLI run.
func TestHALeaderFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess HA e2e is not -short")
	}
	dir := t.TempDir()
	pair, tPath, queryFASTA, ref := haTestPair(t, dir)

	leaderAddr := freePort(t)
	standbyAddr := freePort(t)
	leaderBase := "http://" + leaderAddr
	standbyBase := "http://" + standbyAddr

	// Fixed (pre-allocated) addresses: the leader must advertise the
	// standby before the standby exists, and both must advertise
	// themselves at URLs that survive their own restarts.
	leaderCmd, leaderGot, leaderLog := spawnServe(t, []string{
		"serve", "-role=coordinator", "-addr", leaderAddr,
		"-replication", "1",
		"-lease-ttl", "3s",
		"-poll-interval", "2s",
		"-journal-dir", filepath.Join(dir, "leader-journal"),
		"-standbys", standbyBase,
	})
	if leaderGot != leaderBase {
		t.Fatalf("leader bound %s, want %s", leaderGot, leaderBase)
	}
	waitHTTP(t, leaderBase+"/healthz", http.StatusOK, 30*time.Second)

	_, standbyGot, standbyLog := spawnServe(t, []string{
		"serve", "-role=coordinator", "-addr", standbyAddr,
		"-standby-of", leaderBase,
		"-lease-ttl", "3s",
		"-poll-interval", "2s",
		"-journal-dir", filepath.Join(dir, "standby-journal"),
	})
	if standbyGot != standbyBase {
		t.Fatalf("standby bound %s, want %s", standbyGot, standbyBase)
	}

	_, _, w1Log := spawnServe(t, []string{
		"serve", "-role=worker", "-addr", "127.0.0.1:0",
		"-coordinator", leaderBase,
		"-worker-id", "w1",
		"-register", pair.Target.Name + "=" + tPath,
		"-job-workers", "1",
	})
	waitReplicas(t, leaderBase, pair.Target.Name, 1, 30*time.Second)

	// Before the leader dies the standby must identify as such.
	if body := getBody(t, standbyBase+"/healthz"); !strings.Contains(body, `"standby"`) {
		t.Fatalf("standby healthz does not identify as standby: %s", body)
	}

	code, body := postJSON(t, leaderBase+"/v1/jobs", map[string]any{
		"target":      pair.Target.Name,
		"query_fasta": queryFASTA,
		"query_name":  pair.Query.Name,
		"client":      "ha-e2e",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", code, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	awaitAssignment(t, leaderBase, st.ID, 30*time.Second)

	// Observability while both sides live: the leader federates the
	// standby's replication position as a lag gauge on /metrics/cluster,
	// and the standby serves its own replication gauges pre-promotion.
	awaitClusterSeries(t, leaderBase, "darwinwga_standby_replication_lag_frames{standby=", 30*time.Second)
	if !scrapeContains(t, standbyBase+"/metrics", "darwinwga_standby_records") {
		t.Error("standby /metrics has no replication gauges pre-promotion")
	}

	if err := leaderCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go leaderCmd.Wait() //nolint:errcheck // reap the killed leader
	_ = leaderLog

	// Promotion: the standby serves the coordinator API (readyz 200)
	// once the replication stream has been silent past the lease TTL.
	promoteDeadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(standbyBase + "/readyz")
		if err == nil {
			resp.Body.Close() //nolint:errcheck
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(promoteDeadline) {
			t.Fatalf("standby never promoted; standby log:\n%s", standbyLog.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The job replicated before the crash completes under its original
	// id on the promoted coordinator.
	if state := awaitTerminal(t, standbyBase, st.ID, 3*time.Minute); state != "done" {
		t.Fatalf("job %s after leader crash: state %q, want done; standby log:\n%s\nworker log:\n%s",
			st.ID, state, standbyLog.String(), w1Log.String())
	}
	got := fetchMAF(t, standbyBase, st.ID)
	if !bytes.Equal(got, ref) {
		t.Errorf("post-promotion MAF (%d bytes) differs from one-shot reference (%d bytes)",
			len(got), len(ref))
	}

	// The promoted coordinator accepts new work end to end.
	code, body = postJSON(t, standbyBase+"/v1/jobs", map[string]any{
		"target":      pair.Target.Name,
		"query_fasta": queryFASTA,
		"query_name":  pair.Query.Name,
		"client":      "ha-e2e-post",
	})
	if code != http.StatusAccepted {
		t.Fatalf("post-promotion submit: HTTP %d (%s)", code, body)
	}
	var st2 struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	if state := awaitTerminal(t, standbyBase, st2.ID, 3*time.Minute); state != "done" {
		t.Fatalf("post-promotion job %s: state %q, want done; standby log:\n%s",
			st2.ID, state, standbyLog.String())
	}
	if got2 := fetchMAF(t, standbyBase, st2.ID); !bytes.Equal(got2, ref) {
		t.Errorf("post-promotion second MAF differs from reference")
	}
}

// TestHAWorkerFailoverResumesFromShippedE2E is mid-pipeline failover
// over real processes: a worker running a job ships its checkpoint
// segments to the coordinator's artifact store, is SIGKILLed mid-job,
// and the replacement worker must download those segments, resume
// (reporting a nonzero replayed workload), and complete the job with a
// MAF byte-identical to a one-shot CLI run.
func TestHAWorkerFailoverResumesFromShippedE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess HA e2e is not -short")
	}
	dir := t.TempDir()
	pair, tPath, queryFASTA, ref := haTestPair(t, dir)

	// The coordinator needs a real (pre-bound) address: its advertise
	// URL is baked into every dispatched job's journal_ship URL.
	coordAddr := freePort(t)
	coordBase := "http://" + coordAddr
	coordJournal := filepath.Join(dir, "coord-journal")
	_, coordGot, coordLog := spawnServe(t, []string{
		"serve", "-role=coordinator", "-addr", coordAddr,
		"-replication", "2",
		"-lease-ttl", "3s",
		"-poll-interval", "2s",
		"-journal-dir", coordJournal,
	})
	if coordGot != coordBase {
		t.Fatalf("coordinator bound %s, want %s", coordGot, coordBase)
	}
	waitHTTP(t, coordBase+"/healthz", http.StatusOK, 30*time.Second)

	workerArgs := func(id string) []string {
		return []string{
			"serve", "-role=worker", "-addr", "127.0.0.1:0",
			"-coordinator", coordBase,
			"-worker-id", id,
			"-register", pair.Target.Name + "=" + tPath,
			"-job-workers", "1",
			"-checkpoint-root", filepath.Join(dir, "ckpt-"+id),
			"-ship-interval", "100ms",
		}
	}
	w1Cmd, w1Base, w1Log := spawnServe(t, workerArgs("w1"))
	w2Cmd, w2Base, w2Log := spawnServe(t, workerArgs("w2"))
	waitReplicas(t, coordBase, pair.Target.Name, 2, 30*time.Second)

	code, body := postJSON(t, coordBase+"/v1/jobs", map[string]any{
		"target":      pair.Target.Name,
		"query_fasta": queryFASTA,
		"query_name":  pair.Query.Name,
		"client":      "ha-e2e-ship",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", code, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	assigned := awaitAssignment(t, coordBase, st.ID, 30*time.Second)

	// Wait for real pipeline progress on the assigned worker (at least
	// one emitted HSP means at least one extension-anchor outcome is in
	// the journal), then for a shipped segment carrying it to land in
	// the coordinator's artifact store. Killing any earlier would ship a
	// header-only journal, and the resume — while correct — would have
	// nothing to replay.
	victimJob := clusterStatus(t, coordBase, st.ID).Worker
	if victimJob == nil {
		t.Fatal("assigned job has no worker attribution")
	}
	progressDeadline := time.Now().Add(time.Minute)
	for {
		var wps struct {
			HSPs int64 `json:"hsps"`
		}
		if body := getBody(t, assigned+"/v1/jobs/"+victimJob.WorkerJobID); json.Unmarshal([]byte(body), &wps) == nil && wps.HSPs >= 1 {
			break
		}
		if st := clusterStatus(t, coordBase, st.ID); st.State == "done" || st.State == "failed" {
			t.Fatalf("job reached %q before the victim showed progress", st.State)
		}
		if time.Now().After(progressDeadline) {
			t.Fatalf("victim worker never emitted an HSP; coordinator log:\n%s", coordLog.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A few -ship-interval (100ms) ticks to get the progress upstream.
	time.Sleep(400 * time.Millisecond)
	shippedGlob := filepath.Join(coordJournal, "shipped", st.ID, "seg-*.wal")
	if segs, _ := filepath.Glob(shippedGlob); len(segs) == 0 {
		t.Fatalf("no shipped segments under %s; coordinator log:\n%s", shippedGlob, coordLog.String())
	}

	victim, victimLog := w1Cmd, w1Log
	survivorBase, survivorLog := w2Base, w2Log
	if assigned == w2Base {
		victim, victimLog = w2Cmd, w2Log
		survivorBase, survivorLog = w1Base, w1Log
	}
	_ = victimLog
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go victim.Wait() //nolint:errcheck // reap the killed worker

	if state := awaitTerminal(t, coordBase, st.ID, 3*time.Minute); state != "done" {
		t.Fatalf("job %s after worker crash: state %q, want done; coordinator log:\n%s\nsurvivor log:\n%s",
			st.ID, state, coordLog.String(), survivorLog.String())
	}
	final := clusterStatus(t, coordBase, st.ID)
	if final.Dispatches < 2 {
		t.Errorf("job finished with %d dispatches, want >= 2 (failover)", final.Dispatches)
	}
	if final.Worker == nil || final.Worker.WorkerAddr == assigned {
		t.Fatalf("job still credited to the killed worker %s", assigned)
	}
	if final.Worker.WorkerAddr != survivorBase {
		t.Fatalf("job finished on %s, expected survivor %s", final.Worker.WorkerAddr, survivorBase)
	}

	// The survivor's own status must account the restored work: replayed
	// nonzero proves it resumed from the shipped checkpoints instead of
	// recomputing from scratch.
	var wst struct {
		State    string          `json:"state"`
		Replayed json.RawMessage `json:"replayed"`
	}
	wURL := survivorBase + "/v1/jobs/" + final.Worker.WorkerJobID
	wResp, err := http.Get(wURL)
	if err != nil {
		t.Fatal(err)
	}
	wBody, err := io.ReadAll(wResp.Body)
	wResp.Body.Close() //nolint:errcheck
	if err != nil || wResp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d, err %v (%s)", wURL, wResp.StatusCode, err, wBody)
	}
	if err := json.Unmarshal(wBody, &wst); err != nil {
		t.Fatal(err)
	}
	if len(wst.Replayed) == 0 || string(wst.Replayed) == "null" {
		t.Errorf("survivor job status has no replayed workload (%s); survivor log:\n%s",
			wBody, survivorLog.String())
	}

	got := fetchMAF(t, coordBase, st.ID)
	if !bytes.Equal(got, ref) {
		t.Errorf("post-failover MAF (%d bytes) differs from one-shot reference (%d bytes); survivor log:\n%s",
			len(got), len(ref), survivorLog.String())
	}

	// Terminal jobs drop their shipped segments from the store.
	cleanupDeadline := time.Now().Add(30 * time.Second)
	for {
		segs, _ := filepath.Glob(shippedGlob)
		if len(segs) == 0 {
			break
		}
		if time.Now().After(cleanupDeadline) {
			t.Errorf("shipped segments survive the terminal state: %v", segs)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// getBody GETs a URL and returns the body as a string (any status).
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
