package core

import (
	"encoding/json"
	"fmt"
	"time"

	"darwinwga/internal/align"
	"darwinwga/internal/checkpoint"
)

// Checkpoint record kinds. The journal itself (framing, CRC, rotation,
// crash recovery) lives in internal/checkpoint; this file defines what
// the pipeline journals and how a later run replays it.
//
// Record semantics follow the dependency structure of the pipeline:
// seeding+filtering for a strand is one unit (its output, the sorted
// anchor list, is journaled whole once the stage completes), and each
// extension anchor is an independent unit journaled as it finishes.
// Records are written before the in-memory Result is mutated, so a
// crash between the two is invisible: replaying the record reproduces
// the mutation exactly.
const (
	ckKindHeader uint8 = 1
	ckKindStrand uint8 = 2
	ckKindAnchor uint8 = 3
)

// ckVersion gates the record schema; a journal written by a different
// version is refused like any other mismatch.
const ckVersion = 1

// ckptHeader fingerprints the run a journal belongs to. It is the
// journal's first record; resuming verifies it before trusting any
// replayed work.
type ckptHeader struct {
	Version int    `json:"version"`
	Config  uint64 `json:"config"`
	Target  uint64 `json:"target"`
	Query   uint64 `json:"query"`
}

// ckptAnchorPos is one filter survivor in canonical extension order.
type ckptAnchorPos struct {
	T int   `json:"t"`
	Q int   `json:"q"`
	S int32 `json:"s"`
}

// ckptStrandRec journals the completed seeding+filtering of one strand:
// the sorted extension anchors, the workload those stages performed,
// and any budget truncation that shaped the anchor set.
type ckptStrandRec struct {
	Strand    string          `json:"strand"`
	Anchors   []ckptAnchorPos `json:"anchors"`
	Workload  Workload        `json:"workload"`
	Truncated string          `json:"truncated,omitempty"`
}

// ckptAnchorRec journals the outcome of one extension anchor: an HSP,
// an absorbed duplicate, a sub-threshold discard (neither flag, nil
// HSP), or a shard dropped after retry exhaustion.
type ckptAnchorRec struct {
	Strand   string   `json:"strand"`
	Index    int      `json:"index"`
	Absorbed bool     `json:"absorbed,omitempty"`
	Failed   bool     `json:"failed,omitempty"`
	Tiles    int64    `json:"tiles,omitempty"`
	Cells    int64    `json:"cells,omitempty"`
	HSP      *ckptHSP `json:"hsp,omitempty"`
}

// ckptHSP serializes one final alignment.
type ckptHSP struct {
	Score       int32  `json:"score"`
	TStart      int    `json:"tstart"`
	TEnd        int    `json:"tend"`
	QStart      int    `json:"qstart"`
	QEnd        int    `json:"qend"`
	Ops         string `json:"ops"`
	Matches     int    `json:"matches"`
	FilterScore int32  `json:"filterScore"`
}

func (c *ckptHSP) toHSP(strand byte) HSP {
	ops := make([]align.EditOp, len(c.Ops))
	for i := 0; i < len(c.Ops); i++ {
		ops[i] = align.EditOp(c.Ops[i])
	}
	return HSP{
		Alignment: align.Alignment{
			Score:  c.Score,
			TStart: c.TStart, TEnd: c.TEnd,
			QStart: c.QStart, QEnd: c.QEnd,
			Ops: ops,
		},
		Strand:      strand,
		Matches:     c.Matches,
		FilterScore: c.FilterScore,
	}
}

func hspToCkpt(h *HSP) *ckptHSP {
	ops := make([]byte, len(h.Ops))
	for i, op := range h.Ops {
		ops[i] = byte(op)
	}
	return &ckptHSP{
		Score:  h.Score,
		TStart: h.TStart, TEnd: h.TEnd,
		QStart: h.QStart, QEnd: h.QEnd,
		Ops:         string(ops),
		Matches:     h.Matches,
		FilterScore: h.FilterScore,
	}
}

// ckptStrand is the replayed state of one strand.
type ckptStrand struct {
	anchors   []passedAnchor
	workload  Workload
	truncated TruncationReason
	outcomes  []ckptAnchorRec // outcome i belongs to anchors[i]
}

// ckptWriter owns the open journal plus the state replayed from it.
// All methods are called from the pipeline's orchestration goroutine,
// never from workers, so it needs no locking.
type ckptWriter struct {
	j       *checkpoint.Journal
	retry   RetryPolicy
	strands map[byte]*ckptStrand
}

// openCheckpoint opens (or creates) the journal for this (config,
// target, query) triple and replays its records into resume state. A
// journal whose header names a different triple is refused with
// ErrCheckpointMismatch.
func openCheckpoint(cfg *Config, target, query []byte) (*ckptWriter, error) {
	j, recs, err := checkpoint.Open(cfg.CheckpointDir, checkpoint.Options{
		NoSync: cfg.CheckpointNoSync,
		Faults: cfg.CheckpointFaults,
	})
	if err != nil {
		return nil, fmt.Errorf("core: opening checkpoint journal: %w", err)
	}
	w := &ckptWriter{j: j, retry: cfg.Retry, strands: make(map[byte]*ckptStrand)}
	want := ckptHeader{
		Version: ckVersion,
		Config:  cfg.fingerprint(),
		Target:  hashBytes(target),
		Query:   hashBytes(query),
	}
	if len(recs) == 0 {
		if err := w.append(ckKindHeader, want); err != nil {
			j.Close()
			return nil, err
		}
		return w, nil
	}
	var got ckptHeader
	if recs[0].Kind != ckKindHeader || json.Unmarshal(recs[0].Payload, &got) != nil {
		j.Close()
		return nil, fmt.Errorf("%w: journal does not begin with a header record", ErrCheckpointMismatch)
	}
	if got != want {
		j.Close()
		return nil, fmt.Errorf("%w: journal %+v, run %+v", ErrCheckpointMismatch, got, want)
	}
	w.replay(recs[1:])
	return w, nil
}

// replay folds journal records into per-strand resume state. Records
// that do not fit the expected progression (an anchor outcome for an
// unknown strand or out of sequence) end the replay: everything before
// them is trusted, everything after recomputed.
func (w *ckptWriter) replay(recs []checkpoint.Record) {
	for _, rec := range recs {
		switch rec.Kind {
		case ckKindStrand:
			var sr ckptStrandRec
			if json.Unmarshal(rec.Payload, &sr) != nil || len(sr.Strand) != 1 {
				return
			}
			s := &ckptStrand{
				workload:  sr.Workload,
				truncated: TruncationReason(sr.Truncated),
				anchors:   make([]passedAnchor, len(sr.Anchors)),
			}
			for i, a := range sr.Anchors {
				s.anchors[i] = passedAnchor{tPos: a.T, qPos: a.Q, score: a.S}
			}
			w.strands[sr.Strand[0]] = s
		case ckKindAnchor:
			var ar ckptAnchorRec
			if json.Unmarshal(rec.Payload, &ar) != nil || len(ar.Strand) != 1 {
				return
			}
			s := w.strands[ar.Strand[0]]
			if s == nil || ar.Index != len(s.outcomes) || ar.Index >= len(s.anchors) {
				return
			}
			s.outcomes = append(s.outcomes, ar)
		default:
			// Unknown kinds from a newer writer would have bumped
			// ckVersion and failed the header check; anything else is
			// noise we refuse to interpret.
			return
		}
	}
}

// strand returns the replayed state for a strand, or nil. A nil
// receiver (checkpointing off) returns nil.
func (w *ckptWriter) strand(b byte) *ckptStrand {
	if w == nil {
		return nil
	}
	return w.strands[b]
}

// recordStrand journals the completed seeding+filtering of a strand. A
// nil receiver is a no-op.
func (w *ckptWriter) recordStrand(strand byte, passed []passedAnchor, wl Workload, trunc TruncationReason) error {
	if w == nil {
		return nil
	}
	sr := ckptStrandRec{
		Strand:    string(strand),
		Workload:  wl,
		Truncated: string(trunc),
		Anchors:   make([]ckptAnchorPos, len(passed)),
	}
	for i, p := range passed {
		sr.Anchors[i] = ckptAnchorPos{T: p.tPos, Q: p.qPos, S: p.score}
	}
	return w.append(ckKindStrand, sr)
}

// recordAnchor journals one extension anchor's outcome. A nil receiver
// is a no-op.
func (w *ckptWriter) recordAnchor(rec ckptAnchorRec) error {
	if w == nil {
		return nil
	}
	return w.append(ckKindAnchor, rec)
}

// append marshals and appends one record, retrying transient I/O
// failures under the run's retry policy (the journal truncates a torn
// frame before each retry, so a retried append never duplicates).
func (w *ckptWriter) append(kind uint8, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("core: encoding checkpoint record: %w", err)
	}
	attempts := w.retry.attempts()
	for attempt := 1; ; attempt++ {
		err = w.j.Append(kind, payload)
		if err == nil {
			return nil
		}
		if attempt >= attempts {
			return fmt.Errorf("core: checkpoint append failed after %d attempt(s): %w", attempt, err)
		}
		if d := w.retry.delay(attempt, backoffSeed("checkpoint", int(kind), attempt)); d > 0 {
			time.Sleep(d)
		}
	}
}

func (w *ckptWriter) close() error {
	if w == nil {
		return nil
	}
	return w.j.Close()
}
