// Package cluster provides the sharded coordinator/worker topology on
// top of the embedded alignment server: workers register which target
// indexes they hold and keep a lease alive with heartbeats; a
// coordinator routes jobs by consistent hashing on the target's content
// fingerprint, proxies status and MAF streaming, journals every routing
// decision through the checkpoint WAL so its own restart is crash-only,
// and fails jobs over to surviving replicas when a worker dies
// mid-flight. Because the pipeline is deterministic, a failed-over job
// produces MAF byte-identical to an uninterrupted run — which is also
// what lets the MAF proxy splice a stream across a failover.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVirtualNodes is how many points each worker contributes to the
// ring. Enough to smooth placement across a handful of workers without
// making ring rebuilds (every membership change) expensive.
const defaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a worker.
type ringPoint struct {
	hash   uint64
	worker string
}

// ring is a consistent-hash ring over worker IDs. Immutable once built;
// membership rebuilds it on every change.
type ring struct {
	points  []ringPoint
	workers int
}

// hash64 positions a key on the ring.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // hash.Hash never errors
	return h.Sum64()
}

// buildRing places vnodes virtual nodes per worker on the ring.
func buildRing(workers []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	points := make([]ringPoint, 0, len(workers)*vnodes)
	for _, w := range workers {
		for i := 0; i < vnodes; i++ {
			points = append(points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", w, i)),
				worker: w,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].worker < points[j].worker
	})
	return &ring{points: points, workers: len(workers)}
}

// order returns every distinct worker in ring order starting at key's
// position. The caller filters by liveness/target/breaker and takes the
// replication factor's worth; returning the full preference order keeps
// that policy out of the ring.
func (r *ring) order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, r.workers)
	seen := make(map[string]bool, r.workers)
	for i := 0; i < len(r.points) && len(out) < r.workers; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}
