package hw

import (
	"testing"

	"darwinwga/internal/systolic"
)

func TestMemoryBandwidth(t *testing.T) {
	m := DDR4x2400R4()
	peak := m.PeakBandwidth()
	// 4 channels x 2400 MT/s x 8 B = 76.8 GB/s.
	if peak < 76.7e9 || peak > 76.9e9 {
		t.Errorf("peak = %.2f GB/s, want 76.8", peak/1e9)
	}
	if eff := m.EffectiveBandwidth(); eff >= peak || eff <= 0 {
		t.Errorf("effective = %.2f GB/s vs peak %.2f", eff/1e9, peak/1e9)
	}
}

func TestTileTraffic(t *testing.T) {
	// The paper's throughput/bandwidth pairs imply ~2 bytes per tile
	// base: 70M tiles/s at 44.8 GB/s for 320-base BSW tiles, 300K
	// tiles/s at 1.15 GB/s for 1920-base GACT-X tiles.
	if got := BSWTileBytes(320); got != 640 {
		t.Errorf("BSW tile bytes = %d, want 640", got)
	}
	if got := GACTXTileBytes(1920); got != 3840 {
		t.Errorf("GACT-X tile bytes = %d, want 3840", got)
	}
}

func TestASICIsBandwidthBound(t *testing.T) {
	// Section VI-A: "The performance of this chip is limited by the
	// available memory bandwidth." The 64-BSW/12-GACT-X deployment's
	// demand must sit near (and not hugely above) the effective
	// bandwidth of the four-channel DDR4 system.
	m := DDR4x2400R4()
	asic := ASIC()
	d := BandwidthDemand(asic, 320, 32, 1920, 500_000, 1920, 1920)
	u := Utilization(m, d)
	if u < 0.5 || u > 1.6 {
		t.Errorf("ASIC bandwidth utilization = %.2f; the paper provisions for ~1.0", u)
	}
	// The BSW traffic dominates, matching the paper's 44.8 vs 1.15 GB/s
	// split.
	if d.BSWBytesPerSec < 5*d.GACTXBytesPerSec {
		t.Errorf("BSW demand %.2f GB/s should dwarf GACT-X %.2f GB/s",
			d.BSWBytesPerSec/1e9, d.GACTXBytesPerSec/1e9)
	}
}

func TestProvisionBSWArrays(t *testing.T) {
	m := DDR4x2400R4()
	arr := systolic.Array{NPE: 64, ClockHz: 1e9}
	asic := ASIC()
	gactxDemand := asic.GACTXThroughput(500_000, 1920, 1920) * float64(GACTXTileBytes(1920))
	n := ProvisionBSWArrays(m, arr, 320, 32, gactxDemand)
	// The paper lands on 64 arrays; the model must reproduce that scale
	// (not 10, not 500).
	if n < 32 || n > 128 {
		t.Errorf("provisioned %d BSW arrays; paper uses 64", n)
	}
	// Degenerate budgets.
	if got := ProvisionBSWArrays(m, arr, 320, 32, m.EffectiveBandwidth()*2); got != 0 {
		t.Errorf("over-committed memory still provisioned %d arrays", got)
	}
	if got := ProvisionBSWArrays(m, systolic.Array{NPE: 64, ClockHz: 0}, 320, 32, 0); got != 0 {
		t.Errorf("zero-clock array provisioned %d", got)
	}
}

func TestFPGAWellUnderBandwidth(t *testing.T) {
	// The FPGA's 2.1 GB/s BSW demand is far below even one DDR4
	// channel; it is compute- (area-) bound, not bandwidth-bound.
	m := DDR4x2400R4()
	d := BandwidthDemand(FPGA(), 320, 32, 1920, 500_000, 1920, 1920)
	if u := Utilization(m, d); u > 0.25 {
		t.Errorf("FPGA utilization %.2f; should be far below 1", u)
	}
}
