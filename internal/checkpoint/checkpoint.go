// Package checkpoint implements the durability layer under resumable
// pipeline runs: an append-only, CRC-framed journal stored as numbered
// segment files in a directory. The design goals, in order:
//
//   - a crash (SIGKILL, power loss) at any byte offset never corrupts
//     acknowledged records — a reader recovers the longest valid prefix
//     and a writer truncates the torn tail before appending;
//   - every record is acknowledged only after it is framed, written,
//     and fsynced (unless Options.NoSync), so "Append returned nil"
//     means "survives a crash";
//   - segment rotation is atomic: a new segment is prepared as a
//     temp file, fsynced, renamed into place, and the directory is
//     fsynced, so readers never observe a half-created segment.
//
// The package knows nothing about the pipeline: records are opaque
// (kind, payload) pairs; internal/core defines their meaning. I/O
// faults (torn writes, transient errors, crash-at-offset) are injected
// through internal/faultinject's IOFaults, which makes every recovery
// path deterministically testable.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"darwinwga/internal/faultinject"
)

// magic opens every segment file; a segment without it contributes no
// records (a crash can only produce such a file transiently, as an
// unrenamed temp).
const magic = "DWGAWAL1"

// Frame layout: u32-LE payload length, u8 kind, u32-LE CRC32-Castagnoli
// over (kind ‖ payload), then the payload.
const frameHeader = 4 + 1 + 4

// maxPayload bounds a frame so a corrupt length field cannot make the
// reader attempt a giant allocation.
const maxPayload = 64 << 20

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports corruption before the journal's tail — inside a
// sealed segment — which a crash cannot produce and recovery therefore
// refuses to paper over.
var ErrCorrupt = errors.New("checkpoint: journal corrupt before its tail")

// Record is one journaled entry. Kind is defined by the journal's user;
// the payload is opaque bytes.
type Record struct {
	Kind    uint8
	Payload []byte
}

// Options configures a Journal.
type Options struct {
	// SegmentBytes is the size past which the active segment is sealed
	// and a new one rotated in (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Records are then durable only
	// on rotation/Close; tests use it for speed.
	NoSync bool
	// Faults injects I/O failures into writes, syncs, and renames; nil
	// injects nothing.
	Faults *faultinject.IOFaults
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

// Journal is an open, appendable journal. It is not safe for concurrent
// use; the pipeline appends from a single goroutine.
type Journal struct {
	dir    string
	opts   Options
	f      *os.File
	seq    int
	size   int64 // valid bytes in the active segment
	closed bool
}

// Open opens (creating if necessary) the journal in dir, replays every
// valid record, repairs the active segment's torn tail, and positions
// the writer to append. Stray temp files from a crashed rotation are
// removed. Corruption anywhere but the journal's tail returns
// ErrCorrupt.
func Open(dir string, opts Options) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := segmentFiles(dir, true)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opts: opts}
	var records []Record
	for i, seg := range segs {
		recs, valid, torn := replaySegment(filepath.Join(dir, seg))
		records = append(records, recs...)
		if torn != nil && i < len(segs)-1 {
			return nil, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, seg, torn)
		}
		if i == len(segs)-1 {
			// Reopen the tail segment for appending, truncating any
			// torn suffix a crash left behind.
			f, err := os.OpenFile(filepath.Join(dir, seg), os.O_RDWR, 0)
			if err != nil {
				return nil, nil, err
			}
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, nil, err
			}
			if _, err := f.Seek(valid, io.SeekStart); err != nil {
				f.Close()
				return nil, nil, err
			}
			if valid < int64(len(magic)) {
				// The segment lost its magic (external truncation or
				// corruption — a crash cannot produce this, since
				// segments are published by rename after the magic is
				// fsynced). Rewrite it so appended records land in a
				// replayable file instead of vanishing behind the bad
				// prefix.
				if _, err := opts.Faults.Write(f, []byte(magic)); err != nil {
					f.Close()
					return nil, nil, err
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return nil, nil, err
				}
				valid = int64(len(magic))
			}
			j.f, j.size, j.seq = f, valid, seqOf(seg)
		}
	}
	if j.f == nil {
		j.seq = 1
		if err := j.openSegment(); err != nil {
			return nil, nil, err
		}
	}
	return j, records, nil
}

// Replay reads the journal in dir without opening it for writing and
// returns the longest valid prefix of its records. A missing or empty
// directory yields no records; corruption or truncation anywhere simply
// ends the prefix.
func Replay(dir string) ([]Record, error) {
	segs, err := segmentFiles(dir, false)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var records []Record
	for _, seg := range segs {
		recs, _, torn := replaySegment(filepath.Join(dir, seg))
		records = append(records, recs...)
		if torn != nil {
			break // prefix semantics: everything after the bad frame is lost
		}
	}
	return records, nil
}

// Append frames, writes, and (unless NoSync) fsyncs one record. On any
// error the active segment is truncated back to its last valid offset,
// so a failed append can be retried without poisoning the journal with
// a torn frame.
func (j *Journal) Append(kind uint8, payload []byte) error {
	if j.closed {
		return errors.New("checkpoint: append to closed journal")
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("checkpoint: payload %d bytes exceeds limit %d", len(payload), maxPayload)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	frame[4] = kind
	crc := crc32.Update(0, castagnoli, frame[4:5])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(frame[5:9], crc)
	copy(frame[frameHeader:], payload)

	if err := j.writeDurably(frame); err != nil {
		j.repairTail()
		return err
	}
	j.size += int64(len(frame))
	if j.size >= j.opts.segmentBytes() {
		return j.rotate()
	}
	return nil
}

func (j *Journal) writeDurably(frame []byte) error {
	if _, err := j.opts.Faults.Write(j.f, frame); err != nil {
		return err
	}
	if j.opts.NoSync {
		return nil
	}
	return j.sync()
}

func (j *Journal) sync() error {
	if err := j.opts.Faults.Check(faultinject.OpSync); err != nil {
		return err
	}
	return j.f.Sync()
}

// repairTail discards the bytes of a failed append (a torn or unsynced
// frame) so the next append lands at the last acknowledged offset.
// Best effort: if the truncate itself fails the next append will fail
// too, and the reader still recovers the acknowledged prefix.
func (j *Journal) repairTail() {
	j.f.Truncate(j.size)           //nolint:errcheck
	j.f.Seek(j.size, io.SeekStart) //nolint:errcheck
}

// rotate seals the active segment (fsync + close) and atomically brings
// up the next one.
func (j *Journal) rotate() error {
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.seq++
	return j.openSegment()
}

// openSegment creates segment j.seq via temp-file + rename + directory
// fsync, leaving j.f open on the renamed file.
func (j *Journal) openSegment() error {
	name := segName(j.seq)
	tmp := filepath.Join(j.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := j.opts.Faults.Write(f, []byte(magic)); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := j.opts.Faults.Check(faultinject.OpRename); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, name)); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := SyncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.size = int64(len(magic))
	return nil
}

// Compact atomically replaces the journal's contents with the given
// records (typically a snapshot of the folded state): they are appended
// to a fresh segment and made durable, and only then are the older
// segments removed. Crash windows are safe by construction — a crash
// before the new segment is published leaves the old records intact; a
// crash after it is published but before the old segments are removed
// leaves old records followed by the snapshot, which a fold that resets
// its state at a snapshot record replays to the same result. The
// journal stays open for appending after the snapshot.
func (j *Journal) Compact(records []Record) error {
	if j.closed {
		return errors.New("checkpoint: compact on closed journal")
	}
	old, err := segmentFiles(j.dir, true)
	if err != nil {
		return err
	}
	// Seal the active segment and bring up a fresh one for the snapshot.
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.seq++
	if err := j.openSegment(); err != nil {
		return err
	}
	for _, r := range records {
		if err := j.Append(r.Kind, r.Payload); err != nil {
			return err
		}
	}
	// With NoSync the snapshot records may still be buffered; the old
	// segments must not disappear before their replacement is durable.
	if err := j.sync(); err != nil {
		return err
	}
	for _, seg := range old {
		if err := os.Remove(filepath.Join(j.dir, seg)); err != nil {
			return err
		}
	}
	return SyncDir(j.dir)
}

// SegmentInfo describes one on-disk segment file, for callers that ship
// journal bytes elsewhere (replication, checkpoint handoff).
type SegmentInfo struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// ListSegments returns the journal segments in dir in append order with
// their current sizes. A missing directory yields an empty list.
func ListSegments(dir string) ([]SegmentInfo, error) {
	segs, err := segmentFiles(dir, false)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	out := make([]SegmentInfo, 0, len(segs))
	for _, seg := range segs {
		fi, err := os.Stat(filepath.Join(dir, seg))
		if err != nil {
			return nil, err
		}
		out = append(out, SegmentInfo{Name: seg, Size: fi.Size()})
	}
	return out, nil
}

// IsSegmentName reports whether name is a well-formed segment file name
// ("seg-%08d.wal"). Callers accepting shipped segment uploads use it to
// reject path-traversal or junk names.
func IsSegmentName(name string) bool { return isSegName(name) }

// Close fsyncs and closes the active segment.
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Remove deletes the journal's segment and temp files from dir, leaving
// the directory itself (which the caller may not own) in place.
func Remove(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range ents {
		n := e.Name()
		if isSegName(strings.TrimSuffix(n, ".tmp")) {
			if err := os.Remove(filepath.Join(dir, n)); err != nil {
				return err
			}
		}
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a preceding create/rename in it is
// durable — the step that makes rename-based publication atomic across
// power loss.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// replaySegment reads one segment's records. It returns the records of
// the longest valid prefix, the byte offset that prefix ends at, and a
// non-nil torn error when the file has an invalid suffix (truncated or
// corrupt frame, or missing magic).
func replaySegment(path string) (records []Record, valid int64, torn error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("bad segment magic")
	}
	off := int64(len(magic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return records, off, nil
		}
		if len(rest) < frameHeader {
			return records, off, fmt.Errorf("torn frame header at offset %d", off)
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if n > maxPayload || frameHeader+n > int64(len(rest)) {
			return records, off, fmt.Errorf("torn frame at offset %d (payload %d bytes)", off, n)
		}
		kind := rest[4]
		want := binary.LittleEndian.Uint32(rest[5:9])
		payload := rest[frameHeader : frameHeader+n]
		crc := crc32.Update(0, castagnoli, rest[4:5])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != want {
			return records, off, fmt.Errorf("bad frame CRC at offset %d", off)
		}
		records = append(records, Record{Kind: kind, Payload: append([]byte(nil), payload...)})
		off += frameHeader + n
	}
}

// segmentFiles lists the journal's segments in append order. When
// cleanTemps is set, leftover ".tmp" files (a rotation interrupted
// before its rename — by construction empty of records) are deleted.
func segmentFiles(dir string, cleanTemps bool) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasSuffix(n, ".tmp") {
			if cleanTemps && isSegName(strings.TrimSuffix(n, ".tmp")) {
				if err := os.Remove(filepath.Join(dir, n)); err != nil {
					return nil, err
				}
			}
			continue
		}
		if isSegName(n) {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func segName(seq int) string { return fmt.Sprintf("seg-%08d.wal", seq) }

func isSegName(n string) bool {
	if !strings.HasPrefix(n, "seg-") || !strings.HasSuffix(n, ".wal") {
		return false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(n, "seg-"), ".wal")
	if len(mid) != 8 {
		return false
	}
	for i := 0; i < len(mid); i++ {
		if mid[i] < '0' || mid[i] > '9' {
			return false
		}
	}
	return true
}

func seqOf(n string) int {
	var seq int
	fmt.Sscanf(n, "seg-%08d.wal", &seq) //nolint:errcheck
	return seq
}
