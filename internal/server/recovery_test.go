package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRecoverySummaryCountsAndMetric covers the startup replay
// summary: one journal holding a never-started job, a mid-run job, a
// finished job, and a job with a lost query must replay into exactly
// requeued=1 resumed=1 restored=1 failed=1, both in RecoverySummary
// and in darwinwga_recovered_jobs_total{outcome}.
func TestRecoverySummaryCountsAndMetric(t *testing.T) {
	dir := t.TempDir()
	store, _, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("openJobStore: %v", err)
	}
	now := time.Unix(1700000000, 0)
	params := JobParams{Target: "tgt"}

	queued := storeJob("job-requeued", "a", params, now)
	running := storeJob("job-resumed", "b", params, now.Add(time.Second))
	done := storeJob("job-restored", "c", params, now.Add(2*time.Second))
	lost := storeJob("job-lost-query", "d", params, now.Add(3*time.Second))
	for _, j := range []*Job{queued, running, done, lost} {
		if _, err := store.saveQuery(j.ID, testQuery(j.QueryName)); err != nil {
			t.Fatalf("saveQuery(%s): %v", j.ID, err)
		}
		if err := store.submitted(j); err != nil {
			t.Fatalf("submitted(%s): %v", j.ID, err)
		}
	}
	if err := store.started(running, now.Add(4*time.Second)); err != nil {
		t.Fatalf("started: %v", err)
	}
	if err := store.started(done, now.Add(5*time.Second)); err != nil {
		t.Fatalf("started: %v", err)
	}
	if err := store.finished(done, JobDone, "", "", 2, []byte("##maf version=1\n"), now.Add(6*time.Second)); err != nil {
		t.Fatalf("finished: %v", err)
	}
	store.close()
	if err := os.Remove(filepath.Join(dir, "queries", "job-lost-query.fa")); err != nil {
		t.Fatalf("removing query artifact: %v", err)
	}

	srv, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdownServer(t, srv)

	want := RecoverySummary{Requeued: 1, Resumed: 1, Restored: 1, Failed: 1}
	if got := srv.Jobs().RecoverySummary(); got != want {
		t.Errorf("RecoverySummary = %+v, want %+v", got, want)
	}
	for _, c := range []struct {
		name string
		got  int64
	}{
		{"requeued", srv.Jobs().RecoveredRequeued.Value()},
		{"resumed", srv.Jobs().RecoveredResumed.Value()},
		{"restored", srv.Jobs().RecoveredRestored.Value()},
		{"failed", srv.Jobs().RecoveredFailed.Value()},
	} {
		if c.got != 1 {
			t.Errorf("darwinwga_recovered_jobs_total{outcome=%q} = %d, want 1", c.name, c.got)
		}
	}
	// The labeled series must render on /metrics.
	text := srv.Metrics().String()
	if !strings.Contains(text, "darwinwga_recovered_jobs_total") {
		t.Errorf("metrics JSON missing darwinwga_recovered_jobs_total:\n%s", text)
	}
}

// TestCancelParkedRecoveredJob is the regression test for DELETE on a
// recovered-queued job still parked awaiting target re-registration:
// the cancel must settle the job cleanly (terminal state journaled,
// parking lot purged) instead of leaving a parked orphan that a later
// registration could trip over.
func TestCancelParkedRecoveredJob(t *testing.T) {
	pair := recoveryPair(t)
	dir := t.TempDir()
	store, _, err := openJobStore(dir)
	if err != nil {
		t.Fatalf("openJobStore: %v", err)
	}
	parked := storeJob("job-parked", "alice", JobParams{Target: "tgt"}, time.Unix(1700000000, 0))
	parked.QueryName = pair.Query.Name
	if _, err := store.saveQuery(parked.ID, pair.Query); err != nil {
		t.Fatalf("saveQuery: %v", err)
	}
	if err := store.submitted(parked); err != nil {
		t.Fatalf("submitted: %v", err)
	}
	store.close()

	// Restart without registering "tgt": the job parks.
	srv, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := srv.Jobs()
	j, ok := m.Get("job-parked")
	if !ok {
		t.Fatal("recovered job not in the job table")
	}
	if st := j.State(); st != JobQueued {
		t.Fatalf("parked job state = %q, want queued", st)
	}
	m.mu.Lock()
	nParked := len(m.pendingRecovery["tgt"])
	m.mu.Unlock()
	if nParked != 1 {
		t.Fatalf("pendingRecovery holds %d jobs, want 1", nParked)
	}

	// DELETE while parked.
	st, ok := m.Cancel("job-parked")
	if !ok || st != JobCancelled {
		t.Fatalf("Cancel = (%q, %v), want (cancelled, true)", st, ok)
	}
	m.mu.Lock()
	_, stillParked := m.pendingRecovery["tgt"]
	perClient := m.perClient["alice"]
	m.mu.Unlock()
	if stillParked {
		t.Error("cancelled job still parked in pendingRecovery (orphan)")
	}
	if perClient != 0 {
		t.Errorf("per-client slot not released: %d", perClient)
	}

	// Late registration must not resurrect it.
	if _, err := srv.RegisterTarget("tgt", pair.Target); err != nil {
		t.Fatalf("register target: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := j.State(); got != JobCancelled {
		t.Fatalf("job state after late registration = %q, want cancelled", got)
	}
	shutdownServer(t, srv)

	// The cancellation was journaled: a second restart restores the job
	// as terminal history instead of parking it again.
	srv2, err := New(Config{JournalDir: dir})
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	defer shutdownServer(t, srv2)
	j2, ok := srv2.Jobs().Get("job-parked")
	if !ok {
		t.Fatal("cancelled job not restored as history")
	}
	if got := j2.State(); got != JobCancelled {
		t.Fatalf("restored state = %q, want cancelled", got)
	}
	srv2.Jobs().mu.Lock()
	nParked2 := len(srv2.Jobs().pendingRecovery)
	srv2.Jobs().mu.Unlock()
	if nParked2 != 0 {
		t.Errorf("second restart parked %d targets, want none", nParked2)
	}
}
