package server

import (
	"bytes"
	"fmt"
	"testing"
)

func rcKey(i int) resultKey {
	return resultKey{target: "t", query: fmt.Sprintf("q%03d", i), config: 7}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(100)
	art := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, 40) }

	c.put(rcKey(0), art(0), 1)
	c.put(rcKey(1), art(1), 2)
	if c.count() != 2 || c.bytesUsed() != 80 {
		t.Fatalf("count=%d bytes=%d, want 2/80", c.count(), c.bytesUsed())
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, _, ok := c.get(rcKey(0)); !ok {
		t.Fatalf("get(0) missed")
	}
	c.put(rcKey(2), art(2), 3)
	if c.count() != 2 || c.bytesUsed() != 80 {
		t.Fatalf("after eviction: count=%d bytes=%d, want 2/80", c.count(), c.bytesUsed())
	}
	if _, _, ok := c.get(rcKey(1)); ok {
		t.Fatalf("LRU entry 1 survived eviction")
	}
	maf, hsps, ok := c.get(rcKey(0))
	if !ok || hsps != 1 || !bytes.Equal(maf, art(0)) {
		t.Fatalf("recently-used entry 0 lost or corrupted (ok=%v hsps=%d)", ok, hsps)
	}
	if _, _, ok := c.get(rcKey(2)); !ok {
		t.Fatalf("newest entry 2 missing")
	}
}

func TestResultCacheOversizeAndDisabled(t *testing.T) {
	c := newResultCache(10)
	c.put(rcKey(0), make([]byte, 11), 1)
	if c.count() != 0 {
		t.Fatalf("artifact larger than the whole budget was cached")
	}

	var nilCache *resultCache
	if nilCache.enabled() {
		t.Fatalf("nil cache reports enabled")
	}
	nilCache.put(rcKey(0), []byte("x"), 1) // must not panic
	if _, _, ok := nilCache.get(rcKey(0)); ok {
		t.Fatalf("nil cache returned a hit")
	}
	if nilCache.bytesUsed() != 0 || nilCache.count() != 0 {
		t.Fatalf("nil cache reports non-zero usage")
	}

	disabled := newResultCache(0)
	disabled.put(rcKey(1), []byte("y"), 1)
	if _, _, ok := disabled.get(rcKey(1)); ok {
		t.Fatalf("disabled cache returned a hit")
	}
}

func TestResultCacheKeyComponents(t *testing.T) {
	c := newResultCache(1 << 20)
	base := resultKey{target: "tfp", query: "qfp", config: 1}
	c.put(base, []byte("maf"), 1)
	for _, k := range []resultKey{
		{target: "tfp2", query: "qfp", config: 1},
		{target: "tfp", query: "qfp2", config: 1},
		{target: "tfp", query: "qfp", config: 2},
	} {
		if _, _, ok := c.get(k); ok {
			t.Fatalf("key %+v hit despite differing from %+v", k, base)
		}
	}
	if _, _, ok := c.get(base); !ok {
		t.Fatalf("exact key missed")
	}
}
