// Package systolic models the linear systolic arrays of Section IV at
// cycle granularity. A stripe of NPE query rows is processed per pass:
// query characters are loaded into the PEs, target characters stream
// through, and one anti-diagonal wavefront of NPE cells (scores + 4-bit
// pointers) completes per cycle. The model reproduces the stripe
// schedule of the RTL — including the BSW band's closed-form jstart and
// jstop (equations 4 and 5) and GACT-X's data-dependent row windows —
// so cycles-per-tile matches what the hardware would take, which is how
// the paper derives its FPGA and ASIC throughput numbers.
package systolic

import "fmt"

// Array describes one linear systolic array.
type Array struct {
	// NPE is the number of processing elements.
	NPE int
	// ClockHz is the operating frequency.
	ClockHz float64
}

// Validate checks the array parameters.
func (a Array) Validate() error {
	if a.NPE < 1 || a.ClockHz <= 0 {
		return fmt.Errorf("systolic: invalid array %+v", a)
	}
	return nil
}

// Fixed per-tile overheads, in cycles: configuration load plus the DRAM
// round trip fetching the two sequence windows into BRAM.
const (
	tileSetupCycles = 64
	dramFetchCycles = 256
)

// BSWTileCycles returns the cycle count for one banded Smith-Waterman
// tile of edge tileSize with band radius band. The band makes jstart
// and jstop closed-form functions of the stripe number (equations 4-5):
// each stripe computes about NPE + 2*band columns, one column per cycle
// after an NPE-cycle wavefront fill.
func (a Array) BSWTileCycles(tileSize, band int) int64 {
	if tileSize <= 0 {
		return 0
	}
	stripes := (tileSize + a.NPE - 1) / a.NPE
	var cycles int64 = tileSetupCycles + dramFetchCycles
	for n := 1; n <= stripes; n++ {
		jstart := max(0, (n-1)*a.NPE+1-band)
		jstop := min(tileSize-1, n*a.NPE+band)
		cols := jstop - jstart + 1
		if cols < 0 {
			cols = 0
		}
		// One column per cycle once the wavefront is full; NPE cycles of
		// fill at the stripe start.
		cycles += int64(cols + a.NPE)
	}
	return cycles
}

// BSWTileRate returns tiles/second for one array.
func (a Array) BSWTileRate(tileSize, band int) float64 {
	c := a.BSWTileCycles(tileSize, band)
	if c == 0 {
		return 0
	}
	return a.ClockHz / float64(c)
}

// GACTXTileCycles returns the cycle count for one GACT-X extension tile
// given the observed DP shape: rowWidths[i] is the number of columns
// row stripe i actually computed (data-dependent under X-drop), and
// tracebackLen is the committed path length (the traceback logic emits
// one pointer per cycle).
func (a Array) GACTXTileCycles(rowWidths []int, tracebackLen int) int64 {
	var cycles int64 = tileSetupCycles + dramFetchCycles
	for _, w := range rowWidths {
		cycles += int64(w + a.NPE)
	}
	cycles += int64(tracebackLen)
	return cycles
}

// GACTXTileCyclesFromCells estimates the cycle count when only the
// total computed cell count and row count are known (which is what the
// software pipeline records): cells/NPE streaming cycles plus the
// per-stripe fill and the traceback walk.
func (a Array) GACTXTileCyclesFromCells(cells, rows, tracebackLen int) int64 {
	stripes := (rows + a.NPE - 1) / a.NPE
	if stripes == 0 {
		stripes = 1
	}
	stream := int64(cells) / int64(a.NPE)
	return tileSetupCycles + dramFetchCycles + stream + int64(stripes*a.NPE) + int64(tracebackLen)
}

// Seconds converts cycles to seconds on this array.
func (a Array) Seconds(cycles int64) float64 { return float64(cycles) / a.ClockHz }

// TracebackBRAMBytes returns the per-array traceback storage needed for
// a worst-case tile: 4 bits per computed cell, bounded by tile area.
func TracebackBRAMBytes(maxTileCells int) int { return (maxTileCells + 1) / 2 }
