// Command experiments regenerates the paper's evaluation artifacts:
// every table (I-VI) and measured figure (2, 8, 9, 10) plus the
// Section VI-B noise analysis. See EXPERIMENTS.md for paper-vs-measured
// notes.
//
// Usage:
//
//	experiments -run all
//	experiments -run table3,fig10 -scale 0.004
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"darwinwga/internal/experiments"
)

func main() {
	var (
		runArg  = flag.String("run", "all", "comma-separated experiment names, or 'all'")
		scale   = flag.Float64("scale", 0.004, "genome scale (fraction of the paper's assembly sizes)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		repeats = flag.Int("repeats", 3, "shuffled-genome repetitions for the FPR analysis")
		list    = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	lab := experiments.NewLab(experiments.Options{
		Scale:   *scale,
		Workers: *workers,
		Repeats: *repeats,
		Out:     os.Stdout,
	})

	var selected []experiments.Experiment
	if *runArg == "all" {
		selected = experiments.All()
	} else {
		for _, name := range strings.Split(*runArg, ",") {
			e, ok := experiments.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("==== %s: %s ====\n\n", e.Name, e.Title)
		start := time.Now()
		if err := e.Run(lab); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(start).Truncate(time.Millisecond))
	}
}
