package maf

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadMAF throws arbitrary bytes at the MAF reader. Properties:
// neither Read nor ReadVerified panics, they agree on parse success,
// and any stream Read accepts round-trips — writing the parsed blocks
// back and re-reading yields equal blocks, because a successful parse
// implies every block validated.
func FuzzReadMAF(f *testing.F) {
	f.Add([]byte("##maf version=1 scoring=darwin-wga\n\na score=42\ns tchr 0 4 + 100 ACGT\ns qchr 2 4 - 80 AC-GT\n\n##eof maf\n"))
	f.Add([]byte("a score=5\ns t 0 2 + 10 AC\ns q 0 2 + 10 AC\n"))
	f.Add([]byte("a score=1\ns only-one-line 0 2 + 10 AC\n"))
	f.Add([]byte("##maf version=1\n# comment only\n"))
	f.Add([]byte("s orphan 0 1 + 2 A\n"))
	f.Add([]byte("a score=bad\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, err := Read(bytes.NewReader(data))
		vBlocks, complete, vErr := ReadVerified(bytes.NewReader(data))
		if (err == nil) != (vErr == nil) {
			t.Fatalf("Read err=%v but ReadVerified err=%v", err, vErr)
		}
		if err != nil {
			return
		}
		if complete && len(vBlocks) != len(blocks) {
			t.Fatalf("ReadVerified found %d blocks, Read found %d", len(vBlocks), len(blocks))
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, b := range blocks {
			if err := w.Write(b); err != nil {
				t.Fatalf("re-writing accepted block %d: %v", i, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("closing writer: %v", err)
		}
		again, complete, err := ReadVerified(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written MAF: %v\noutput:\n%s", err, buf.Bytes())
		}
		if !complete {
			t.Fatal("closed writer output is missing the trailer")
		}
		if !reflect.DeepEqual(blocks, again) {
			t.Fatalf("blocks changed across round-trip:\nbefore %+v\nafter  %+v", blocks, again)
		}
	})
}
