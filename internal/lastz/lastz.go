// Package lastz is the software baseline of the evaluation: a
// LASTZ-equivalent whole genome aligner (seed, ungapped X-drop filter,
// gapped extension) built from the same substrates as Darwin-WGA. The
// paper's framing — Darwin-WGA is LASTZ with the ungapped filter
// swapped for hardware-accelerated gapped filtering — makes the
// baseline a configuration of the shared pipeline; this package pins
// that configuration (LASTZ 1.02.00 defaults: ungapped filtering,
// filter and extension thresholds at 3000) under its own name and adds
// the baseline-specific knobs the paper varies.
package lastz

import (
	"darwinwga/internal/core"
)

// Options are the LASTZ parameters the paper discusses varying.
type Options struct {
	// HSPThreshold is the ungapped filter score cutoff (LASTZ's
	// --hspthresh, default 3000). Lowering it recovers more alignments
	// at a steep cost — the observation from [16], [18] that motivates
	// the paper.
	HSPThreshold int32
	// GappedThreshold is the final alignment score cutoff (LASTZ's
	// --gappedthresh, default 3000).
	GappedThreshold int32
	// Transitions enables the seed's one-transition tolerance (LASTZ
	// default: on).
	Transitions bool
	// Workers is the process/thread parallelism (the paper shards LASTZ
	// across 36 hardware threads with GNU parallel).
	Workers int
}

// DefaultOptions mirrors LASTZ 1.02.00 defaults.
func DefaultOptions() Options {
	return Options{HSPThreshold: 3000, GappedThreshold: 3000, Transitions: true}
}

// Config expands the options into a full pipeline configuration.
func Config(opts Options) core.Config {
	cfg := core.LASTZConfig()
	if opts.HSPThreshold != 0 {
		cfg.FilterThreshold = opts.HSPThreshold
	}
	if opts.GappedThreshold != 0 {
		cfg.ExtensionThreshold = opts.GappedThreshold
	}
	cfg.DSoft.Transitions = opts.Transitions
	cfg.Workers = opts.Workers
	return cfg
}

// NewAligner builds the LASTZ-baseline aligner over a target genome.
func NewAligner(target []byte, opts Options) (*core.Aligner, error) {
	return core.NewAligner(target, Config(opts))
}
