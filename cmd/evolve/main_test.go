package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStandardPair(t *testing.T) {
	dir := t.TempDir()
	if err := run("dm6-droSim1", 0.0005, 0, 0, 0, 0, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"dm6.fa", "droSim1.fa", "dm6.exons.bed"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
	bed, err := os.ReadFile(filepath.Join(dir, "dm6.exons.bed"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(bed), "gene0000.exon1") {
		t.Error("BED missing exon annotation")
	}
}

func TestRunCustomPair(t *testing.T) {
	dir := t.TempDir()
	if err := run("", 0, 50000, 0.1, 0.01, 7, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "target.fa")); err != nil {
		t.Error("missing custom target")
	}
}

func TestRunUnknownPair(t *testing.T) {
	if err := run("nope", 1, 0, 0, 0, 0, t.TempDir()); err == nil {
		t.Error("unknown pair accepted")
	}
}
