package dsoft

import (
	"math/rand"
	"testing"

	"darwinwga/internal/seed"
)

func randSeq(rng *rand.Rand, n int) []byte {
	const bases = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

func buildIndex(t *testing.T, target []byte) *seed.Index {
	t.Helper()
	ix, err := seed.BuildIndex(target, seed.DefaultShape(), seed.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.ChunkSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero chunk size accepted")
	}
	if _, err := NewSeeder(nil, bad); err == nil {
		t.Error("NewSeeder accepted invalid params")
	}
	if _, err := NewSeeder(nil, DefaultParams()); err == nil {
		t.Error("NewSeeder accepted a nil index")
	}
}

func TestSelfAlignmentProducesDiagonalAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	target := randSeq(rng, 2000)
	ix := buildIndex(t, target)
	s, err := NewSeeder(ix, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	anchors := s.Collect(target, 0, len(target), nil, &stats, nil)
	if len(anchors) == 0 {
		t.Fatal("no anchors on self alignment")
	}
	// The main diagonal must be hit in essentially every chunk.
	onDiag := 0
	for _, a := range anchors {
		if a.Diagonal() == 0 {
			onDiag++
		}
	}
	chunks := len(target) / DefaultParams().ChunkSize
	if onDiag < chunks*8/10 {
		t.Errorf("main-diagonal anchors = %d, want >= 80%% of %d chunks", onDiag, chunks)
	}
	if stats.SeedHits == 0 || stats.Candidates != len(anchors) {
		t.Errorf("stats inconsistent: %+v vs %d anchors", stats, len(anchors))
	}
}

func TestAnchorsFindTranslocatedSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	target := randSeq(rng, 3000)
	query := randSeq(rng, 3000)
	copy(query[1000:1400], target[2000:2400]) // segment at diagonal +1000
	ix := buildIndex(t, target)
	s, _ := NewSeeder(ix, DefaultParams())
	var stats Stats
	anchors := s.Collect(query, 0, len(query), nil, &stats, nil)
	found := false
	for _, a := range anchors {
		if a.Diagonal() == 1000 && a.QPos >= 1000 && a.QPos < 1400 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("translocated segment not seeded; %d anchors, stats %+v", len(anchors), stats)
	}
}

func TestBandDeduplication(t *testing.T) {
	// A long identical region produces many seed hits on one diagonal;
	// each chunk must emit at most one anchor per band.
	rng := rand.New(rand.NewSource(3))
	target := randSeq(rng, 1000)
	ix := buildIndex(t, target)
	p := DefaultParams()
	p.Transitions = false
	s, _ := NewSeeder(ix, p)
	var stats Stats
	anchors := s.Collect(target, 0, len(target), nil, &stats, nil)
	// Count anchors per (chunk, band).
	seen := make(map[[2]int]int)
	for _, a := range anchors {
		chunk := a.QPos / p.ChunkSize
		band := (a.Diagonal() + len(target)) / p.BinSize
		seen[[2]int{chunk, band}]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("chunk/band %v emitted %d anchors, want <= 1", k, n)
		}
	}
	if stats.SeedHits <= stats.Candidates {
		t.Errorf("expected many more hits (%d) than candidates (%d)", stats.SeedHits, stats.Candidates)
	}
}

func TestThresholdSuppressesSparseBands(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	target := randSeq(rng, 4000)
	query := randSeq(rng, 4000)
	// With random sequences, isolated chance hits exist; requiring h=3
	// hits per band should suppress nearly all of them.
	ix := buildIndex(t, target)
	p1 := DefaultParams()
	p1.Transitions = false
	p1.Threshold = 1
	s1, _ := NewSeeder(ix, p1)
	var st1 Stats
	a1 := s1.Collect(query, 0, len(query), nil, &st1, nil)

	p3 := p1
	p3.Threshold = 3
	s3, _ := NewSeeder(ix, p3)
	var st3 Stats
	a3 := s3.Collect(query, 0, len(query), nil, &st3, nil)

	if len(a3) > len(a1)/2 {
		t.Errorf("threshold 3 kept %d of %d anchors; expected strong suppression", len(a3), len(a1))
	}
}

func TestTransitionsIncreaseSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	target := randSeq(rng, 2000)
	// Query: copy with transition substitutions sprinkled in (every 9th
	// base becomes its transition partner), so exact 12-mers are rare.
	query := append([]byte{}, target...)
	trans := map[byte]byte{'A': 'G', 'G': 'A', 'C': 'T', 'T': 'C'}
	for i := 4; i < len(query); i += 9 {
		query[i] = trans[query[i]]
	}
	ix := buildIndex(t, target)

	pOff := DefaultParams()
	pOff.Transitions = false
	sOff, _ := NewSeeder(ix, pOff)
	var stOff Stats
	aOff := sOff.Collect(query, 0, len(query), nil, &stOff, nil)

	pOn := DefaultParams()
	sOn, _ := NewSeeder(ix, pOn)
	var stOn Stats
	aOn := sOn.Collect(query, 0, len(query), nil, &stOn, nil)

	if len(aOn) <= len(aOff) {
		t.Errorf("transitions: %d anchors vs %d without; expected increase", len(aOn), len(aOff))
	}
	wantLookups := stOff.Lookups * (seed.DefaultShape().Weight + 1)
	if stOn.Lookups != wantLookups {
		t.Errorf("lookups with transitions = %d, want %d (m+1 rule)", stOn.Lookups, wantLookups)
	}
}

func TestStrideReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	target := randSeq(rng, 2000)
	ix := buildIndex(t, target)
	p := DefaultParams()
	p.Stride = 4
	s, _ := NewSeeder(ix, p)
	var st Stats
	s.Collect(target, 0, len(target), nil, &st, nil)
	p1 := DefaultParams()
	s1, _ := NewSeeder(ix, p1)
	var st1 Stats
	s1.Collect(target, 0, len(target), nil, &st1, nil)
	if st.QueryPositions*3 > st1.QueryPositions {
		t.Errorf("stride 4 examined %d positions vs %d at stride 1", st.QueryPositions, st1.QueryPositions)
	}
}

func TestCollectRangeClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	target := randSeq(rng, 500)
	ix := buildIndex(t, target)
	s, _ := NewSeeder(ix, DefaultParams())
	var st Stats
	// qEnd beyond the sequence must clip, not panic.
	anchors := s.Collect(target, 400, 10000, nil, &st, nil)
	for _, a := range anchors {
		if a.QPos < 400 || a.QPos >= 500 {
			t.Errorf("anchor qpos %d outside requested range", a.QPos)
		}
	}
}

func TestCollectAppendsToDst(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	target := randSeq(rng, 300)
	ix := buildIndex(t, target)
	s, _ := NewSeeder(ix, DefaultParams())
	var st Stats
	seedAnchors := []Anchor{{TPos: 1, QPos: 2}}
	out := s.Collect(target, 0, len(target), seedAnchors, &st, NewScratch())
	if len(out) < 1 || out[0] != seedAnchors[0] {
		t.Error("Collect did not append to dst")
	}
}
