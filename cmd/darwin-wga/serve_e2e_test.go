package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"darwinwga"
	"darwinwga/internal/evolve"
)

// TestServeE2E is the subprocess smoke test of `darwin-wga serve`: it
// re-execs this test binary as the server (the resume e2e's TestMain
// hook), registers two targets, pushes eight concurrent jobs through
// the HTTP API, checks every streamed MAF against a one-shot CLI run
// on the same FASTA files, saturates the queue into 429s, and finally
// SIGTERMs the server and requires a graceful, exit-0 drain.
func TestServeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess serve e2e is not -short")
	}
	dir := t.TempDir()

	// Two species pairs on disk. File basenames matter: both the server
	// and the one-shot CLI derive assembly names from them, and the
	// names are embedded in the MAF, so sharing files is what makes
	// byte-identity meaningful.
	type fixture struct {
		targetName string
		targetPath string
		queryPath  string
		ref        []byte
	}
	var fixtures []fixture
	for _, pc := range []struct {
		pair  string
		scale float64
	}{
		{"dm6-droSim1", 0.0004},
		{"ce11-cb4", 0.0003},
	} {
		cfg, ok := evolve.StandardPair(pc.pair, pc.scale)
		if !ok {
			t.Fatalf("unknown pair %q", pc.pair)
		}
		pair, err := evolve.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tPath := filepath.Join(dir, pair.Target.Name+".fa")
		qPath := filepath.Join(dir, pair.Query.Name+".fa")
		if err := darwinwga.WriteFASTA(tPath, pair.Target); err != nil {
			t.Fatal(err)
		}
		if err := darwinwga.WriteFASTA(qPath, pair.Query); err != nil {
			t.Fatal(err)
		}
		// One-shot CLI reference over the very same files.
		refPath := filepath.Join(dir, pair.Target.Name+"-ref.maf")
		if err := run(context.Background(), options{
			targetPath: tPath, queryPath: qPath, outPath: refPath,
			scale: 0.01, topChains: 3,
		}); err != nil {
			t.Fatalf("one-shot reference for %s: %v", pc.pair, err)
		}
		ref, err := os.ReadFile(refPath)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{
			targetName: pair.Target.Name,
			targetPath: tPath,
			queryPath:  qPath,
			ref:        ref,
		})
	}

	// Spawn the server on an ephemeral port; small queue so the later
	// burst saturates it deterministically. The result cache is off:
	// the burst re-submits an already-completed job, and cache hits
	// would bypass the queue this test is trying to saturate (the
	// cached path has its own e2e in index_e2e_test.go).
	cmd := exec.Command(os.Args[0],
		"serve", "-addr", "127.0.0.1:0",
		"-register", fixtures[0].targetName+"="+fixtures[0].targetPath,
		"-register", fixtures[1].targetName+"="+fixtures[1].targetPath,
		"-job-workers", "4", "-queue", "8", "-max-inflight", "-1",
		"-result-cache-mb", "0",
		"-drain-grace", "2m",
	)
	cmd.Env = append(os.Environ(), "DARWINWGA_E2E_CHILD=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // backstop for early test failures

	// The bound-address line on stderr is the port-discovery contract.
	addrCh := make(chan string, 1)
	childLog := &bytes.Buffer{}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(childLog, line)
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case <-time.After(2 * time.Minute):
		t.Fatalf("server never reported its address; log:\n%s", childLog.String())
	}

	waitHTTP(t, base+"/readyz", http.StatusOK, 30*time.Second)

	// Eight concurrent jobs across both targets.
	type job struct {
		id  string
		ref []byte
	}
	var jobs []job
	for i := 0; i < 8; i++ {
		fx := fixtures[i%2]
		code, body := postJSON(t, base+"/v1/jobs", map[string]any{
			"target":     fx.targetName,
			"query_path": fx.queryPath,
			"client":     fmt.Sprintf("e2e-%d", i),
		})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d (%s)", i, code, body)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{id: st.ID, ref: fx.ref})
	}
	for i, j := range jobs {
		state := awaitTerminal(t, base, j.id, 3*time.Minute)
		if state != "done" {
			t.Fatalf("job %d: state %q, want done; log:\n%s", i, state, childLog.String())
		}
		resp, err := http.Get(base + "/v1/jobs/" + j.id + "/maf")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, j.ref) {
			t.Errorf("job %d: streamed MAF (%d bytes) differs from one-shot CLI output (%d bytes)",
				i, len(got), len(j.ref))
		}
	}

	// Saturation burst: 24 submissions against a queue of 8 with 4
	// workers must shed load with 429 + Retry-After.
	accepted, shed := 0, 0
	for i := 0; i < 24; i++ {
		code, _, hdr := postJSONHdr(t, base+"/v1/jobs", map[string]any{
			"target":     fixtures[0].targetName,
			"query_path": fixtures[0].queryPath,
			"client":     "burst",
		})
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
			if hdr.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("burst submit %d: HTTP %d", i, code)
		}
	}
	if accepted == 0 || shed == 0 {
		t.Fatalf("burst: %d accepted, %d shed — expected both load acceptance and shedding", accepted, shed)
	}
	t.Logf("burst: %d accepted, %d shed with 429", accepted, shed)

	// SIGTERM: the server must drain (finish running, cancel queued)
	// and exit 0 without losing the completed jobs above.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v; log:\n%s", err, childLog.String())
		}
	case <-time.After(3 * time.Minute):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("server did not drain after SIGTERM; log:\n%s", childLog.String())
	}
	if !strings.Contains(childLog.String(), "draining") {
		t.Errorf("child log is missing the drain notice:\n%s", childLog.String())
	}
}

// waitHTTP polls url until it answers with want.
func waitHTTP(t *testing.T, url string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never answered %d (last: %v)", url, want, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	code, data, _ := postJSONHdr(t, url, body)
	return code, data
}

func postJSONHdr(t *testing.T, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// awaitTerminal polls a job's status until it reaches a terminal state.
func awaitTerminal(t *testing.T, base, id string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding status: %v (%s)", err, data)
		}
		switch st.State {
		case "done", "failed", "cancelled":
			if st.Error != "" {
				t.Logf("job %s: %s (%s)", id, st.State, st.Error)
			}
			return st.State
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
