package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestEpochGateFencing pins the worker-side half of fenced leader
// election: requests stamped with a stale cluster epoch are refused 409
// with the current epoch echoed back, newer epochs ratchet the worker
// forward, and unstamped requests (standalone clients, health checks)
// are never gated.
func TestEpochGateFencing(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Shutdown(context.Background()) //nolint:errcheck
	srv.ObserveClusterEpoch(5)

	do := func(epoch string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if epoch != "" {
			req.Header.Set(ClusterEpochHeader, epoch)
		}
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		return rec
	}

	rec := do("4")
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale epoch: HTTP %d, want 409", rec.Code)
	}
	if got := rec.Header().Get(ClusterEpochHeader); got != "5" {
		t.Errorf("stale rejection echoed epoch %q, want %q", got, "5")
	}
	if got := srv.staleEpochRejects.Value(); got != 1 {
		t.Errorf("stale rejection counter = %d, want 1", got)
	}

	if rec := do(""); rec.Code != http.StatusOK {
		t.Errorf("unstamped request: HTTP %d, want 200", rec.Code)
	}
	if rec := do("5"); rec.Code != http.StatusOK {
		t.Errorf("current epoch: HTTP %d, want 200", rec.Code)
	}

	// A newer epoch passes and ratchets the worker forward, fencing the
	// previous value.
	if rec := do("6"); rec.Code != http.StatusOK {
		t.Errorf("newer epoch: HTTP %d, want 200", rec.Code)
	}
	if got := srv.ClusterEpoch(); got != 6 {
		t.Errorf("ClusterEpoch = %d, want 6 after observing a newer epoch", got)
	}
	if rec := do("5"); rec.Code != http.StatusConflict {
		t.Errorf("previously current epoch after ratchet: HTTP %d, want 409", rec.Code)
	}

	if rec := do("not-a-number"); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage epoch header: HTTP %d, want 400", rec.Code)
	}

	// Epochs never move backward.
	srv.ObserveClusterEpoch(2)
	if got := srv.ClusterEpoch(); got != 6 {
		t.Errorf("ClusterEpoch = %d after observing lower value, want 6", got)
	}
}
