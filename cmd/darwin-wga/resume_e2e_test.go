package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"

	"darwinwga/internal/maf"
)

// TestMain lets this test binary double as the darwin-wga CLI: the
// crash–resume test re-execs itself with DARWINWGA_E2E_CHILD=1 so the
// child process runs main() — and can be SIGKILLed mid-write — without
// needing a separately built binary.
func TestMain(m *testing.M) {
	if os.Getenv("DARWINWGA_E2E_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// e2eArgs are the CLI arguments shared by every process in the
// crash–resume test; the runs must be flag-identical for the resume to
// be byte-identical.
func e2eArgs(out, ckpt string) []string {
	return []string{
		"-pair", "dm6-droSim1", "-scale", "0.001",
		"-forward-only", "-workers", "2",
		"-out", out, "-checkpoint", ckpt,
	}
}

// runChild re-execs the test binary as the darwin-wga CLI.
func runChild(t *testing.T, args []string, extraEnv ...string) error {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DARWINWGA_E2E_CHILD=1")
	cmd.Env = append(cmd.Env, extraEnv...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err != nil {
		t.Logf("child stderr:\n%s", stderr.String())
	}
	return err
}

// TestCrashResumeByteIdentical is the end-to-end durability contract: a
// run SIGKILLed mid-journal-write (a torn frame, via injected I/O
// faults) and rerun with the same flags resumes from the journal and
// produces byte-identical MAF output to a never-interrupted run.
func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash–resume e2e is not -short")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.maf")
	ckpt := filepath.Join(dir, "ckpt")

	// Reference: an uninterrupted run with its own output and journal.
	cleanOut := filepath.Join(dir, "clean.maf")
	if err := run(context.Background(), options{
		pairName: "dm6-droSim1", scale: 0.001, oneStrand: true,
		workers: 2, topChains: 3,
		outPath: cleanOut, checkpointDir: filepath.Join(dir, "clean-ckpt"),
	}); err != nil {
		t.Fatal(err)
	}
	cleanData, err := os.ReadFile(cleanOut)
	if err != nil {
		t.Fatal(err)
	}

	// Crash run: power loss on the 4th checkpoint write (segment magic,
	// header, strand record, then mid-frame of the first anchor record —
	// 7 bytes is inside the frame header, so the tail is torn).
	err = runChild(t, e2eArgs(out, ckpt),
		"DARWINWGA_CRASH_AFTER_CKPT_WRITES=4", "DARWINWGA_CRASH_SHORT=7")
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("crash child: err = %v, want an exit error", err)
	}
	ws, ok := exitErr.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("crash child: status %v, want death by SIGKILL", exitErr)
	}
	if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("crashed run left output %s (err %v); output must appear atomically at the end", out, err)
	}
	segs, err := filepath.Glob(filepath.Join(ckpt, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("crashed run left no journal segments (err %v)", err)
	}

	// Resume: same flags, no fault injection.
	if err := runChild(t, e2eArgs(out, ckpt)); err != nil {
		t.Fatalf("resume child failed: %v", err)
	}
	resumedData, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedData, cleanData) {
		t.Errorf("resumed MAF differs from uninterrupted MAF (%d vs %d bytes)",
			len(resumedData), len(cleanData))
	}
	blocks, complete, err := maf.ReadVerified(bytes.NewReader(resumedData))
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Error("resumed MAF lacks the end-of-file trailer")
	}
	if len(blocks) == 0 {
		t.Error("resumed MAF has no alignment blocks")
	}

	// A completed run cleans its journal and leaves no temp output.
	segs, _ = filepath.Glob(filepath.Join(ckpt, "seg-*.wal"))
	if len(segs) != 0 {
		t.Errorf("completed run left journal segments %v", segs)
	}
	if _, err := os.Stat(out + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stray temp output left behind: %v", err)
	}
}

// TestRetryFlagSurvivesTransientJournalFaults: with -retries, injected
// transient write errors in the checkpoint journal are retried and the
// run still completes with a full (trailer-terminated) MAF.
func TestRetryFlagSurvivesTransientJournalFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e is not -short")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.maf")
	args := append(e2eArgs(out, filepath.Join(dir, "ckpt")),
		"-retries", "2", "-retry-delay", "1ms", "-retry-max-delay", "10ms")
	// The 3rd checkpoint write (the first anchor record) fails once with
	// a transient error; the journal truncates the torn frame and the
	// retry policy re-appends it.
	if err := runChild(t, args, "DARWINWGA_IOERR_ON_CKPT_WRITE=3"); err != nil {
		t.Fatalf("child with retry flags failed despite transient journal fault: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, complete, err := maf.ReadVerified(bytes.NewReader(data)); err != nil || !complete {
		t.Fatalf("output not a complete MAF (complete=%v err=%v)", complete, err)
	}
}

func TestRetryFlagValidation(t *testing.T) {
	ctx := context.Background()
	base := options{pairName: "dm6-droSim1", scale: 0.001, topChains: 3}
	o := base
	o.retries = -1
	if err := run(ctx, o); err == nil {
		t.Error("negative -retries accepted")
	}
	o = base
	o.retryDelay = -1
	if err := run(ctx, o); err == nil {
		t.Error("negative -retry-delay accepted")
	}
	o = base
	o.retryMaxDelay = -1
	if err := run(ctx, o); err == nil {
		t.Error("negative -retry-max-delay accepted")
	}
}
