// Hardware: model a whole genome alignment on the paper's FPGA and
// ASIC deployments. The pipeline runs in software to record the
// workload (filter tiles, extension tiles), then the systolic-array
// cycle model prices that workload on each platform and derives the
// paper's performance/$ and performance/W improvements.
//
//	go run ./examples/hardware
package main

import (
	"fmt"
	"log"

	"darwinwga"
	"darwinwga/internal/core"
	"darwinwga/internal/hw"
)

func main() {
	cfg, _ := darwinwga.StandardPair("dm6-dp4", 0.002)
	pair, err := darwinwga.GeneratePair(cfg)
	if err != nil {
		log.Fatal(err)
	}
	aligner, err := darwinwga.NewAligner(pair.TargetSeq(), darwinwga.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := aligner.Align(pair.QuerySeq())
	if err != nil {
		log.Fatal(err)
	}
	w := res.Workload
	fmt.Printf("workload: %d filter tiles, %d extension tiles\n\n", w.FilterTiles, w.ExtensionTiles)

	pipelineCfg := core.DefaultConfig()
	seedSec := res.Timings.Seeding.Seconds()
	swSec := hw.IsoSensitiveSoftwareSeconds(w, 0, seedSec, res.Timings.Extension.Seconds())
	fmt.Printf("iso-sensitive software (c4.8xlarge @ 225K tiles/s): %8.2fs\n", swSec)

	for _, platform := range []hw.Platform{hw.FPGA(), hw.ASIC()} {
		est, err := platform.Estimate(w, seedSec, pipelineCfg.FilterTileSize, pipelineCfg.FilterBand)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", platform.Name)
		fmt.Printf("  BSW throughput:    %10.2fM tiles/s\n",
			platform.BSWThroughput(pipelineCfg.FilterTileSize, pipelineCfg.FilterBand)/1e6)
		fmt.Printf("  filter stage:      %10.3fs\n", est.FilterSeconds)
		fmt.Printf("  extension stage:   %10.3fs\n", est.ExtensionSeconds)
		fmt.Printf("  total runtime:     %10.3fs (%.0fx speedup over iso-sensitive software)\n",
			est.TotalSeconds(), hw.Speedup(swSec, est.TotalSeconds()))
		if platform.PricePerHour > 0 {
			fmt.Printf("  performance/$:     %10.1fx\n",
				hw.PerfPerDollar(swSec, hw.CPU(), est.TotalSeconds(), platform))
		}
		fmt.Printf("  performance/watt:  %10.0fx\n",
			hw.PerfPerWatt(swSec, hw.CPU(), est.TotalSeconds(), platform))
	}

	fmt.Println("\nASIC floorplan (Table IV):")
	comps := hw.ASICBreakdown(64, 12, 64)
	for _, c := range comps {
		fmt.Printf("  %-16s %-24s %6.2f mm2  %6.2f W\n", c.Name, c.Config, c.AreaMM2, c.PowerW)
	}
	area, power := hw.Totals(comps)
	fmt.Printf("  %-16s %-24s %6.2f mm2  %6.2f W\n", "Total", "", area, power)
}
