package server_test

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"darwinwga/internal/server"
)

// Overload-control and slow-client hardening tests: the memory
// high-watermark admission check, the raw-socket header timeout, and
// the request-body cap.

// TestMemoryAdmission drives both watermark rejections without any
// fault injection, purely by watermark arithmetic: the job footprint
// estimate is a fixed multiple of the query size, and the live heap is
// megabytes, so a watermark of 1 byte forces the "job can never fit"
// 413 while a watermark of ~2x the footprint forces the "transient
// pressure" 429 (heap alone exceeds it, the job alone does not).
func TestMemoryAdmission(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	body := map[string]any{
		"target":      pair.Target.Name,
		"query_fasta": fastaText(t, pair.Query),
		"query_name":  pair.Query.Name,
	}

	t.Run("oversize job 413", func(t *testing.T) {
		srv, ts := newTestServer(t, server.Config{MemoryHighWater: 1}, nil)
		if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
			t.Fatalf("register: %v", err)
		}
		resp, data := submitRaw(t, ts.URL, body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("HTTP %d, want 413 (%s)", resp.StatusCode, data)
		}
	})

	t.Run("memory pressure 429 with constant Retry-After", func(t *testing.T) {
		srv, ts := newTestServer(t, server.Config{
			MemoryHighWater: 16 * int64(pair.Query.TotalLen()),
			RetryAfter:      7 * time.Second,
		}, nil)
		if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
			t.Fatalf("register: %v", err)
		}
		resp, data := submitRaw(t, ts.URL, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("HTTP %d, want 429 (%s)", resp.StatusCode, data)
		}
		// No job has ever been dequeued, so the queue-wait histogram is
		// empty and the adaptive hint must fall back to the configured
		// constant.
		if ra := resp.Header.Get("Retry-After"); ra != "7" {
			t.Errorf("Retry-After = %q, want \"7\" (configured fallback)", ra)
		}
	})

	t.Run("generous watermark admits", func(t *testing.T) {
		srv, ts := newTestServer(t, server.Config{MemoryHighWater: 1 << 40}, nil)
		if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
			t.Fatalf("register: %v", err)
		}
		resp, st := submit(t, ts.URL, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("HTTP %d, want 202", resp.StatusCode)
		}
		waitTerminal(t, ts.URL, st.ID)
	})
}

// TestSlowlorisHeaderTimeout opens a raw TCP connection, sends a
// partial request line, and never finishes the headers: the server's
// ReadHeaderTimeout must close the connection instead of letting the
// client pin a goroutine forever.
func TestSlowlorisHeaderTimeout(t *testing.T) {
	srv, err := server.New(server.Config{ReadHeaderTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: slow\r\nX-Drip")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The header is never completed. The server must hang up within the
	// header timeout (plus scheduling slack), observed as EOF/reset here
	// well before our own generous read deadline.
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	buf := make([]byte, 256)
	for {
		_, err := conn.Read(buf)
		if err != nil {
			if strings.Contains(err.Error(), "timeout") {
				t.Fatal("server did not close the slow connection within 10s")
			}
			break // closed by the server: hardening worked
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("connection closed after %s; ReadHeaderTimeout was 250ms", elapsed)
	}
}

// TestBodyCapRejectsHugePost sends a body far over the server's body
// limit: the MaxBytesReader cap must answer 413 instead of buffering an
// unbounded request.
func TestBodyCapRejectsHugePost(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{MaxQueryBases: 1000}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatalf("register: %v", err)
	}
	// bodyLimit for MaxQueryBases=1000 is ~1 MiB of slack; send 4 MiB.
	huge := map[string]any{
		"target":      pair.Target.Name,
		"query_fasta": strings.Repeat("A", 4<<20),
	}
	for _, path := range []string{"/v1/jobs", "/v1/targets"} {
		resp, data := postJSON(t, ts.URL+path, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with 4 MiB body: HTTP %d, want 413 (%.80s)", path, resp.StatusCode, data)
		}
	}
}
