// Package experiments regenerates every table and figure of the
// paper's evaluation (Section VI). Each experiment is a function over a
// Lab, which caches generated species pairs and pipeline runs so that a
// full `-run all` does not repeat the expensive whole genome
// alignments. The experiment index (which paper artifact each function
// reproduces, with workloads and module mapping) lives in DESIGN.md.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"darwinwga/internal/chain"
	"darwinwga/internal/core"
	"darwinwga/internal/evolve"
	"darwinwga/internal/genome"
)

// Options configures a Lab.
type Options struct {
	// Scale is the genome scale relative to the paper's Table I sizes
	// (default 0.004, i.e. 400-550 Kbp genomes; the paper's are ~100x
	// larger). Larger scales sharpen the statistics and stretch the
	// runtimes.
	Scale float64
	// Workers bounds pipeline goroutines (0 = GOMAXPROCS).
	Workers int
	// Repeats is the number of shuffled-genome repetitions in the noise
	// analysis (the paper uses 3).
	Repeats int
	// Out receives the rendered tables (default os.Stdout).
	Out io.Writer
}

func (o *Options) fillDefaults() {
	if o.Scale <= 0 {
		o.Scale = 0.004
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
}

// Lab owns the cached pairs and runs.
type Lab struct {
	opts Options

	mu    sync.Mutex
	pairs map[string]*evolve.Pair
	runs  map[string]*PairRun
}

// NewLab creates a lab.
func NewLab(opts Options) *Lab {
	opts.fillDefaults()
	return &Lab{
		opts:  opts,
		pairs: make(map[string]*evolve.Pair),
		runs:  make(map[string]*PairRun),
	}
}

// Options returns the lab's (defaults-filled) options.
func (l *Lab) Options() Options { return l.opts }

// Out returns the output writer.
func (l *Lab) Out() io.Writer { return l.opts.Out }

// Pair returns (generating and caching on first use) one of the
// standard species pairs.
func (l *Lab) Pair(name string) (*evolve.Pair, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p, ok := l.pairs[name]; ok {
		return p, nil
	}
	cfg, ok := evolve.StandardPair(name, l.opts.Scale)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown pair %q", name)
	}
	p, err := evolve.Generate(cfg)
	if err != nil {
		return nil, err
	}
	l.pairs[name] = p
	return p, nil
}

// Mode selects the aligner configuration of a run.
type Mode string

const (
	// ModeDarwin is Darwin-WGA (gapped filtering, Table II defaults).
	ModeDarwin Mode = "darwin-wga"
	// ModeLASTZ is the LASTZ baseline (ungapped filtering, 3000
	// thresholds).
	ModeLASTZ Mode = "lastz"
)

// PairRun is one cached pipeline execution.
type PairRun struct {
	PairName string
	Mode     Mode
	Pair     *evolve.Pair
	Config   core.Config
	Result   *core.Result
	Chains   []chain.Chain
	// WallSeconds is the measured end-to-end software time (the local
	// equivalent of Table V's runtime column).
	WallSeconds float64
}

// ModeConfig returns the pipeline configuration for a mode.
func (l *Lab) ModeConfig(mode Mode) core.Config {
	var cfg core.Config
	if mode == ModeLASTZ {
		cfg = core.LASTZConfig()
	} else {
		cfg = core.DefaultConfig()
	}
	cfg.Workers = l.opts.Workers
	return cfg
}

// Run executes (and caches) a pipeline over a standard pair.
func (l *Lab) Run(pairName string, mode Mode) (*PairRun, error) {
	key := pairName + "/" + string(mode)
	l.mu.Lock()
	if r, ok := l.runs[key]; ok {
		l.mu.Unlock()
		return r, nil
	}
	l.mu.Unlock()

	p, err := l.Pair(pairName)
	if err != nil {
		return nil, err
	}
	cfg := l.ModeConfig(mode)
	run, err := ExecuteRun(p, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s %s: %w", pairName, mode, err)
	}
	run.PairName = pairName
	run.Mode = mode

	l.mu.Lock()
	l.runs[key] = run
	l.mu.Unlock()
	return run, nil
}

// ExecuteRun aligns a pair under cfg, measuring wall time and building
// chains. Exposed so ablations can run non-standard configurations
// without the cache.
func ExecuteRun(p *evolve.Pair, cfg core.Config) (*PairRun, error) {
	start := time.Now()
	aligner, err := core.NewAligner(p.TargetSeq(), cfg)
	if err != nil {
		return nil, err
	}
	res, err := aligner.Align(p.QuerySeq())
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	return &PairRun{
		Pair:        p,
		Config:      cfg,
		Result:      res,
		Chains:      BuildChains(res.HSPs, p.TargetSeq(), p.QuerySeq()),
		WallSeconds: wall,
	}, nil
}

// BuildChains chains HSPs per strand (AXTCHAIN post-processing).
func BuildChains(hsps []core.HSP, target, query []byte) []chain.Chain {
	var rc []byte
	var byStrand [2][]*chain.Block
	for i := range hsps {
		h := &hsps[i]
		q := target[:0]
		si := 0
		if h.Strand == '-' {
			if rc == nil {
				rc = genome.ReverseComplement(query)
			}
			q = rc
			si = 1
		} else {
			q = query
		}
		matches, _, _ := h.Counts(target, q)
		byStrand[si] = append(byStrand[si], &chain.Block{
			TStart: h.TStart, TEnd: h.TEnd,
			QStart: h.QStart, QEnd: h.QEnd,
			Score:          h.Score,
			Matches:        matches,
			UngappedBlocks: h.UngappedBlocks(),
		})
	}
	var chains []chain.Chain
	for _, blocks := range byStrand {
		chains = append(chains, chain.Build(blocks, chain.DefaultOptions())...)
	}
	return chains
}

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	Name  string
	Title string
	Run   func(*Lab) error
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: species and assembly sizes", Table1},
		{"table2", "Table II: Darwin-WGA parameters", Table2},
		{"table3", "Table III: sensitivity comparison", Table3},
		{"table4", "Table IV: ASIC area and power breakdown", Table4},
		{"table5", "Table V: runtimes, workload, perf/$ and perf/W", Table5},
		{"table6", "Table VI: platform power", Table6},
		{"fig2", "Figure 2: ungapped block size distribution", Fig2},
		{"fig8", "Figure 8: phylogenetic distances", Fig8},
		{"fig9", "Figure 9: alignment found by Darwin-WGA, missed by LASTZ", Fig9},
		{"fig10", "Figure 10: GACT vs GACT-X quality and throughput", Fig10},
		{"fpr", "Section VI-B: false positive rate (noise) analysis", FPR},
		{"truth", "Ground-truth recall/precision (simulator-only extension)", Truth},
		{"hfsweep", "Ablation: filter threshold Hf sensitivity/cost sweep", HfSweep},
	}
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
