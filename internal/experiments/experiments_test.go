package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyLab runs at 1/2000 of the real genome sizes so the full suite
// stays test-sized; statistical assertions here are loose (the
// experiment binary uses larger scales).
func tinyLab() *Lab {
	return NewLab(Options{Scale: 0.0005, Repeats: 1, Out: &bytes.Buffer{}})
}

func labOut(l *Lab) *bytes.Buffer { return l.opts.Out.(*bytes.Buffer) }

// skipIfShort gates the end-to-end experiment drivers out of -short
// runs: each one aligns synthesized genome pairs through the full
// pipeline, which is far too slow under the race detector (the race CI
// step runs with -short; the pipeline itself gets its race coverage
// from the internal/core robustness suite).
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full experiment driver; skipped in -short mode")
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if got, ok := ByName(e.Name); !ok || got.Name != e.Name {
			t.Errorf("ByName(%q) failed", e.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestLabCachesPairsAndRuns(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	p1, err := l.Pair("dm6-droSim1")
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := l.Pair("dm6-droSim1")
	if p1 != p2 {
		t.Error("pair not cached")
	}
	r1, err := l.Run("dm6-droSim1", ModeDarwin)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := l.Run("dm6-droSim1", ModeDarwin)
	if r1 != r2 {
		t.Error("run not cached")
	}
	if _, err := l.Pair("bogus"); err == nil {
		t.Error("unknown pair accepted")
	}
}

func TestTable1And2Render(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	if err := Table1(l); err != nil {
		t.Fatal(err)
	}
	out := labOut(l).String()
	for _, want := range []string{"ce11", "cb4", "dm6", "dp4", "droYak2", "droSim1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	labOut(l).Reset()
	if err := Table2(l); err != nil {
		t.Fatal(err)
	}
	out = labOut(l).String()
	for _, want := range []string{"gap open", "Tile Size", "1110100110010101111", "9430"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestTable3SmokeAndShape(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	data, err := RunTable3(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 4 {
		t.Fatalf("got %d rows", len(data.Rows))
	}
	for _, r := range data.Rows {
		if r.DarwinMatches == 0 || r.LASTZMatches == 0 {
			t.Errorf("%s: zero matches (darwin %d, lastz %d)", r.Pair, r.DarwinMatches, r.LASTZMatches)
		}
		if r.TotalExons == 0 {
			t.Errorf("%s: no detectable exons", r.Pair)
		}
		if r.DarwinExons > r.TotalExons || r.LASTZExons > r.TotalExons {
			t.Errorf("%s: exon coverage exceeds denominator", r.Pair)
		}
	}
	// The most distant pair must show the largest matched-bp ratio at
	// any reasonable scale... at this tiny scale just require >= 1.
	if data.Rows[0].MatchRatio < 1 {
		t.Errorf("ce11-cb4 ratio %.2f < 1", data.Rows[0].MatchRatio)
	}
	labOut(l).Reset()
	if err := Table3(l); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(labOut(l).String(), "Ratio") {
		t.Error("Table3 render missing header")
	}
}

func TestTable5Shape(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	data, err := RunTable5(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range data.Rows {
		if r.Workload.FilterTiles == 0 {
			t.Errorf("%s: no filter tiles", r.Pair)
		}
		// The headline shapes: FPGA wins on perf/$, ASIC wins harder on
		// perf/W, ASIC faster than FPGA.
		if r.FPGAPerfPerDollar <= 1 {
			t.Errorf("%s: FPGA perf/$ %.2f <= 1", r.Pair, r.FPGAPerfPerDollar)
		}
		if r.ASICPerfPerWatt <= r.FPGAPerfPerDollar {
			t.Errorf("%s: ASIC perf/W %.0f not above FPGA perf/$ %.1f", r.Pair, r.ASICPerfPerWatt, r.FPGAPerfPerDollar)
		}
		if r.ASICSeconds >= r.FPGASeconds {
			t.Errorf("%s: ASIC (%.2fs) not faster than FPGA (%.2fs)", r.Pair, r.ASICSeconds, r.FPGASeconds)
		}
	}
	labOut(l).Reset()
	if err := Table5(l); err != nil {
		t.Fatal(err)
	}
	if err := Table4(l); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(labOut(l).String(), "35.92") {
		t.Error("Table4 missing total area")
	}
	if err := Table6(l); err != nil {
		t.Fatal(err)
	}
}

func TestFig2Renders(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	if err := Fig2(l); err != nil {
		t.Fatal(err)
	}
	out := labOut(l).String()
	if !strings.Contains(out, "ce11-cb4") || !strings.Contains(out, "#") {
		t.Errorf("Fig2 output unexpected:\n%s", out)
	}
}

func TestFig8Renders(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	if err := Fig8(l); err != nil {
		t.Fatal(err)
	}
	out := labOut(l).String()
	if !strings.Contains(out, "worms:") || !strings.Contains(out, "flies:") {
		t.Errorf("Fig8 missing trees:\n%s", out)
	}
	if !strings.Contains(out, "dp4") {
		t.Error("Fig8 missing taxa")
	}
}

func TestFig9Renders(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	if err := Fig9(l); err != nil {
		t.Fatal(err)
	}
	// At tiny scale a differential exon may or may not exist; the
	// experiment must either render one or say so.
	out := labOut(l).String()
	if !strings.Contains(out, "Darwin-WGA") {
		t.Errorf("Fig9 output unexpected:\n%s", out)
	}
}

func TestFig10Shape(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	points, err := RunFig10(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	gx := points[0]
	if gx.Algo != "GACT-X" || gx.RelMatched != 1 || gx.RelThroughput != 1 {
		t.Errorf("normalization wrong: %+v", gx)
	}
	// Paper shape: GACT quality grows with traceback memory.
	if points[1].MatchedBP > points[3].MatchedBP {
		t.Errorf("GACT matched bp not improving with memory: 512KB %d > 2MB %d",
			points[1].MatchedBP, points[3].MatchedBP)
	}
	// GACT-X throughput beats every GACT configuration.
	for _, p := range points[1:] {
		if p.RelThroughput >= 1 {
			t.Errorf("GACT (%dKB) throughput %.2fx >= GACT-X", p.TracebackBytes>>10, p.RelThroughput)
		}
	}
}

func TestFPRShape(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	results, err := RunFPR(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	byLabel := map[string]FPRResult{}
	for _, r := range results {
		byLabel[r.Label] = r
		if r.RealMatches == 0 {
			t.Errorf("%s: no real matches", r.Label)
		}
	}
	def := byLabel["Darwin-WGA (Hf=4000)"]
	low := byLabel["Darwin-WGA (Hf=3000)"]
	// Paper shape: lowering Hf to 3000 explodes the FPR.
	if low.FPRPercent < def.FPRPercent {
		t.Errorf("Hf=3000 FPR %.4f%% below Hf=4000 FPR %.4f%%", low.FPRPercent, def.FPRPercent)
	}
	// Default FPR must be tiny (well under 1%).
	if def.FPRPercent > 1.0 {
		t.Errorf("default FPR %.4f%% too high", def.FPRPercent)
	}
}

func TestTruthShape(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	rows, err := RunTruth(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Recall < 0 || r.Recall > 1 || r.Precision < 0 || r.Precision > 1 {
			t.Errorf("%s/%s: recall %.3f precision %.3f out of range", r.Pair, r.Mode, r.Recall, r.Precision)
		}
		if r.Precision < 0.5 {
			t.Errorf("%s/%s: precision %.3f suspiciously low", r.Pair, r.Mode, r.Precision)
		}
	}
	// Darwin-WGA's recall must meet or beat LASTZ's on the most distant
	// pair (the Table III story, validated against ground truth).
	var dw, lz float64
	for _, r := range rows {
		if r.Pair == "ce11-cb4" {
			if r.Mode == ModeDarwin {
				dw = r.Recall
			} else {
				lz = r.Recall
			}
		}
	}
	if dw < lz {
		t.Errorf("ce11-cb4 recall: darwin %.3f < lastz %.3f", dw, lz)
	}
}

func TestHfSweepShape(t *testing.T) {
	skipIfShort(t)
	l := tinyLab()
	rows, err := RunHfSweep(l, []int32{2500, 4000, 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Passed-filter counts must fall monotonically as Hf rises.
	for i := 1; i < len(rows); i++ {
		if rows[i].PassedFilter > rows[i-1].PassedFilter {
			t.Errorf("Hf %d passed %d > Hf %d passed %d",
				rows[i].Hf, rows[i].PassedFilter, rows[i-1].Hf, rows[i-1].PassedFilter)
		}
	}
	// Sensitivity cannot increase with a stricter threshold (allowing
	// small chaining noise).
	if rows[2].Matches > rows[0].Matches*11/10 {
		t.Errorf("matches grew with stricter Hf: %d vs %d", rows[2].Matches, rows[0].Matches)
	}
}
