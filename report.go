package darwinwga

import (
	"context"
	"fmt"
	"io"
	"sort"

	"darwinwga/internal/chain"
	"darwinwga/internal/core"
	"darwinwga/internal/genome"
	"darwinwga/internal/maf"
)

// Report is the outcome of a whole-assembly alignment: the raw HSPs in
// the concatenated coordinate space, the chains built from them, and
// enough metadata to write MAF with per-sequence names and coordinates.
type Report struct {
	// TargetName and QueryName label the two assemblies.
	TargetName, QueryName string
	// HSPs are all alignments; target coordinates address the
	// concatenated target, query coordinates the (strand-oriented)
	// concatenated query.
	HSPs []HSP
	// Chains are the AXTCHAIN-style chains, sorted by descending score.
	Chains []Chain
	// Workload and Timings aggregate the pipeline stages.
	Workload Workload
	Timings  core.Timings
	// Truncated is non-empty when the underlying pipeline run stopped
	// early (cancellation, deadline, budget exhaustion, or dropped
	// shards); the HSPs and chains are then a valid partial result.
	Truncated TruncationReason
	// FailedShards reports the shards dropped after exhausting
	// Config.Retry when Truncated is TruncatedShardFailures.
	FailedShards []*StageError

	target       []byte
	query        []byte
	targetStarts []int
	queryStarts  []int
	targetNames  []string
	queryNames   []string
}

// AlignAssemblies aligns a query assembly against a target assembly:
// the pipeline runs over concatenated sequences, then alignments are
// chained per strand. The target index is built once per call; to
// align many queries against one target, use NewAligner directly.
func AlignAssemblies(target, query *Assembly, cfg Config) (*Report, error) {
	return AlignAssembliesContext(context.Background(), target, query, cfg)
}

// AlignAssembliesContext is AlignAssemblies with cancellation and the
// Config resource budgets. When ctx is cancelled mid-run the partial
// report — with the HSPs and chains completed so far and
// Report.Truncated set — is returned together with ctx.Err(), so
// callers can persist what was computed. Budget exhaustion
// (Config.MaxCandidates, MaxFilterTiles, MaxExtensionCells, Deadline)
// returns a truncated report with a nil error.
func AlignAssembliesContext(ctx context.Context, target, query *Assembly, cfg Config) (*Report, error) {
	tBases, tStarts := genome.Concat(target.Seqs)
	qBases, qStarts := genome.Concat(query.Seqs)
	aligner, err := core.NewAligner(tBases, cfg)
	if err != nil {
		return nil, err
	}
	res, alignErr := aligner.AlignContext(ctx, qBases)
	if res == nil {
		return nil, alignErr
	}
	rep := &Report{
		TargetName:   target.Name,
		QueryName:    query.Name,
		HSPs:         res.HSPs,
		Workload:     res.Workload,
		Timings:      res.Timings,
		Truncated:    res.Truncated,
		FailedShards: res.FailedShards,
		target:       tBases,
		query:        qBases,
		targetStarts: tStarts,
		queryStarts:  qStarts,
	}
	for _, s := range target.Seqs {
		rep.targetNames = append(rep.targetNames, s.Name)
	}
	for _, s := range query.Seqs {
		rep.queryNames = append(rep.queryNames, s.Name)
	}
	rep.Chains = BuildChains(res.HSPs, rep.target, rep.query, chain.DefaultOptions())
	return rep, alignErr
}

// BuildChains chains HSPs per query strand and returns all chains
// sorted by descending score. The sequences are needed to tally
// matched bases and ungapped block lengths per alignment.
func BuildChains(hsps []HSP, target, query []byte, opts chain.Options) []Chain {
	rc := []byte(nil)
	var byStrand [2][]*chain.Block
	for i := range hsps {
		h := &hsps[i]
		q := query
		si := 0
		if h.Strand == '-' {
			if rc == nil {
				rc = genome.ReverseComplement(query)
			}
			q = rc
			si = 1
		}
		matches, _, _ := h.Counts(target, q)
		byStrand[si] = append(byStrand[si], &chain.Block{
			TStart: h.TStart, TEnd: h.TEnd,
			QStart: h.QStart, QEnd: h.QEnd,
			Score:          h.Score,
			Matches:        matches,
			UngappedBlocks: h.UngappedBlocks(),
		})
	}
	var chains []Chain
	for _, blocks := range byStrand {
		chains = append(chains, chain.Build(blocks, opts)...)
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i].Score > chains[j].Score })
	return chains
}

// TotalMatches sums matched base pairs over all chains (Table III's
// matched-base-pairs metric).
func (r *Report) TotalMatches() int { return chain.TotalMatches(r.Chains) }

// TopChainScores returns the scores of the k best chains.
func (r *Report) TopChainScores(k int) []int64 { return chain.TopScores(r.Chains, k) }

// SumTopChainScores sums the k best chain scores (the paper compares
// the top 10).
func (r *Report) SumTopChainScores(k int) int64 { return chain.SumTopScores(r.Chains, k) }

// WriteMAF writes every HSP as a pairwise MAF block with per-sequence
// names and strand-correct query coordinates.
func (r *Report) WriteMAF(w io.Writer) error {
	mw := maf.NewWriter(w)
	rc := []byte(nil)
	for i := range r.HSPs {
		h := &r.HSPs[i]
		q := r.query
		if h.Strand == '-' {
			if rc == nil {
				rc = genome.ReverseComplement(r.query)
			}
			q = rc
		}
		tName, tOff := locate(r.targetNames, r.targetStarts, h.TStart)
		var qName string
		var qOff int
		if h.Strand == '-' {
			// Reverse-complement space: sequence k's block occupies
			// [L-end_k, L-start_k), with sequences in reverse order.
			qName, qOff = locateRC(r.queryNames, r.queryStarts, len(r.query), h.QStart)
		} else {
			qName, qOff = locate(r.queryNames, r.queryStarts, h.QStart)
		}
		ops := make([]byte, len(h.Ops))
		for k, op := range h.Ops {
			ops[k] = byte(op)
		}
		ttext, qtext := maf.RenderTexts(r.target, q, h.TStart, h.QStart, ops)
		block := &maf.Block{
			Score:  int64(h.Score),
			TName:  r.TargetName + "." + tName,
			TStart: h.TStart - tOff, TSize: h.TSpan(), TSrc: sizeOf(r.targetStarts, r.targetNames, tName),
			TText:  ttext,
			QName:  r.QueryName + "." + qName,
			QStart: h.QStart - qOff, QSize: h.QSpan(), QSrc: sizeOf(r.queryStarts, r.queryNames, qName),
			QStrand: h.Strand,
			QText:   qtext,
		}
		if err := mw.Write(block); err != nil {
			return fmt.Errorf("darwinwga: writing MAF block %d: %w", i, err)
		}
	}
	// Close (not Flush) appends the maf.Trailer marker so downstream
	// consumers can tell a complete file from one cut short by a crash.
	return mw.Close()
}

// locate maps a concatenated-space position to (sequence name, its
// start offset).
func locate(names []string, starts []int, pos int) (string, int) {
	i := sort.SearchInts(starts, pos+1) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(names) {
		i = len(names) - 1
	}
	return names[i], starts[i]
}

// locateRC maps a reverse-complement-space position to (sequence name,
// the sequence's start offset in RC space).
func locateRC(names []string, starts []int, totalLen, pos int) (string, int) {
	fwd := totalLen - 1 - pos
	i := sort.SearchInts(starts, fwd+1) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(names) {
		i = len(names) - 1
	}
	return names[i], totalLen - starts[i+1]
}

func sizeOf(starts []int, names []string, name string) int {
	for i, n := range names {
		if n == name {
			return starts[i+1] - starts[i]
		}
	}
	return 0
}
