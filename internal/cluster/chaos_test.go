package cluster

// The chaos suite pins the failover paths deterministically: fake
// workers with scripted job lifecycles, a ManualClock driving leases,
// polls, timeouts, and backoff, and the faultinject flaky transport
// injecting resets and partitions on the coordinator→worker path. Run
// under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"darwinwga/internal/faultinject"
	"darwinwga/internal/obs"
)

const (
	testTarget = "tgt"
	testFP     = "00deadbeef00cafe"
	testFASTA  = ">chr1\nACGTACGTACGTACGTACGTACGTACGT\n"
	testMAF    = "##maf version=1\n\na score=7\ns tgt.chr1 0 4 + 28 ACGT\n"
)

// fakeWorker is a scripted worker: it accepts jobs, holds them
// "running" until the test finishes them, and serves a fixed MAF. Every
// fake worker serves the same MAF bytes, mirroring the determinism of
// the real pipeline.
type fakeWorker struct {
	srv *httptest.Server

	mu       sync.Mutex
	jobs     map[string]string // worker job id -> state
	nextID   int
	submits  int
	shipURLs []string // journal_ship from each accepted dispatch, in order
	traceIDs []string // X-Darwinwga-Trace header from each dispatch

	// Scripted observability surfaces: the span buffer served at
	// GET /v1/jobs/{id}/trace (honoring ?after) and the flight ring
	// served at GET /v1/jobs/{id}/events, shared by all the worker's
	// jobs.
	spans  []obs.Event
	flight []obs.FlightEvent
}

func newFakeWorker(t *testing.T) *fakeWorker {
	return newFakeWorkerWrapped(t, nil)
}

// newFakeWorkerWrapped builds a fake worker whose handler is wrapped by
// wrap (nil = none) — the HA tests use it to stand in an epoch gate the
// way the real worker server does.
func newFakeWorkerWrapped(t *testing.T, wrap func(http.Handler) http.Handler) *fakeWorker {
	t.Helper()
	w := &fakeWorker{jobs: make(map[string]string)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(rw http.ResponseWriter, r *http.Request) {
		var sub struct {
			JournalShip string `json:"journal_ship"`
		}
		json.NewDecoder(r.Body).Decode(&sub) //nolint:errcheck
		io.Copy(io.Discard, r.Body)          //nolint:errcheck
		w.mu.Lock()
		w.nextID++
		w.submits++
		w.shipURLs = append(w.shipURLs, sub.JournalShip)
		w.traceIDs = append(w.traceIDs, r.Header.Get(TraceHeader))
		id := fmt.Sprintf("wj-%d", w.nextID)
		w.jobs[id] = "running"
		w.mu.Unlock()
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusAccepted)
		json.NewEncoder(rw).Encode(map[string]any{"id": id, "state": "running"}) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		state, ok := w.jobs[r.PathValue("id")]
		w.mu.Unlock()
		if !ok {
			rw.WriteHeader(http.StatusNotFound)
			return
		}
		json.NewEncoder(rw).Encode(map[string]any{ //nolint:errcheck
			"id": r.PathValue("id"), "state": state, "maf_bytes": len(testMAF),
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/maf", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		_, ok := w.jobs[r.PathValue("id")]
		w.mu.Unlock()
		if !ok {
			rw.WriteHeader(http.StatusNotFound)
			return
		}
		rw.Write([]byte(testMAF)) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		_, ok := w.jobs[r.PathValue("id")]
		evs := append([]obs.Event(nil), w.spans...)
		w.mu.Unlock()
		if !ok {
			rw.WriteHeader(http.StatusNotFound)
			return
		}
		after, _ := strconv.Atoi(r.URL.Query().Get("after"))
		if after < 0 || after > len(evs) {
			after = len(evs)
		}
		json.NewEncoder(rw).Encode(obs.TraceExport{ //nolint:errcheck
			JobID: r.PathValue("id"), Total: len(evs), Events: evs[after:],
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		_, ok := w.jobs[r.PathValue("id")]
		evs := append([]obs.FlightEvent(nil), w.flight...)
		w.mu.Unlock()
		if !ok {
			rw.WriteHeader(http.StatusNotFound)
			return
		}
		json.NewEncoder(rw).Encode(map[string]any{"events": evs}) //nolint:errcheck
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		if _, ok := w.jobs[r.PathValue("id")]; ok {
			w.jobs[r.PathValue("id")] = "cancelled"
		}
		w.mu.Unlock()
		json.NewEncoder(rw).Encode(map[string]any{"state": "cancelled"}) //nolint:errcheck
	})
	h := http.Handler(mux)
	if wrap != nil {
		h = wrap(h)
	}
	w.srv = httptest.NewServer(h)
	t.Cleanup(w.srv.Close)
	return w
}

// setSpans scripts the span buffer the worker serves.
func (w *fakeWorker) setSpans(evs []obs.Event) {
	w.mu.Lock()
	w.spans = append([]obs.Event(nil), evs...)
	w.mu.Unlock()
}

// setFlight scripts the worker's flight-recorder ring.
func (w *fakeWorker) setFlight(evs []obs.FlightEvent) {
	w.mu.Lock()
	w.flight = append([]obs.FlightEvent(nil), evs...)
	w.mu.Unlock()
}

// lastTraceID returns the trace header of the most recent dispatch.
func (w *fakeWorker) lastTraceID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.traceIDs) == 0 {
		return ""
	}
	return w.traceIDs[len(w.traceIDs)-1]
}

// lastShipURL returns the journal_ship of the most recent dispatch.
func (w *fakeWorker) lastShipURL() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.shipURLs) == 0 {
		return ""
	}
	return w.shipURLs[len(w.shipURLs)-1]
}

func (w *fakeWorker) host() string { return mustHost(w.srv.URL) }

func mustHost(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		panic(err)
	}
	return u.Host
}

// finishAll flips every running job to done.
func (w *fakeWorker) finishAll() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, st := range w.jobs {
		if st == "running" {
			w.jobs[id] = "done"
		}
	}
}

func (w *fakeWorker) submitCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.submits
}

// chaosCluster bundles a coordinator on a ManualClock with its flaky
// transport and an httptest front door.
type chaosCluster struct {
	coord *Coordinator
	clock *faultinject.ManualClock
	tr    *faultinject.Transport
	front *httptest.Server
}

func newChaosCluster(t *testing.T, mutate func(*Config)) *chaosCluster {
	t.Helper()
	clock := faultinject.NewManualClock(time.Unix(1700000000, 0))
	tr := faultinject.NewTransport(http.DefaultTransport, nil)
	cfg := Config{
		LeaseTTL:         10 * time.Second,
		SweepInterval:    2 * time.Second,
		PollInterval:     time.Second,
		DispatchTimeout:  5 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Second,
		Transport:        tr,
		Clock:            clock,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coord.Shutdown(ctx) //nolint:errcheck
	})
	return &chaosCluster{coord: coord, clock: clock, tr: tr, front: front}
}

// register registers a fake worker with the coordinator over HTTP.
func (cc *chaosCluster) register(t *testing.T, id string, w *fakeWorker, targets ...string) {
	t.Helper()
	if len(targets) == 0 {
		targets = []string{testTarget}
	}
	entries := make([]map[string]string, 0, len(targets))
	for _, name := range targets {
		entries = append(entries, map[string]string{"name": name, "fingerprint": testFP})
	}
	body, _ := json.Marshal(map[string]any{
		"worker_id": id, "addr": w.srv.URL, "targets": entries,
	})
	resp, err := http.Post(cc.front.URL+"/cluster/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register %s: %v", id, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: HTTP %d", id, resp.StatusCode)
	}
}

func (cc *chaosCluster) heartbeat(t *testing.T, id string) int {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"worker_id": id})
	resp, err := http.Post(cc.front.URL+"/cluster/v1/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("heartbeat %s: %v", id, err)
	}
	defer resp.Body.Close()                               //nolint:errcheck
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
	return resp.StatusCode
}

// submit posts a job and returns the coordinator job id.
func (cc *chaosCluster) submit(t *testing.T) string {
	t.Helper()
	id, code, body := cc.trySubmit(t)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	return id
}

func (cc *chaosCluster) trySubmit(t *testing.T) (id string, code int, raw string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"target": testTarget, "query_fasta": testFASTA, "client": "chaos",
	})
	resp, err := http.Post(cc.front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	data, _ := io.ReadAll(resp.Body)
	var st clusterJobStatus
	json.Unmarshal(data, &st) //nolint:errcheck
	return st.ID, resp.StatusCode, string(data)
}

func (cc *chaosCluster) jobStatus(t *testing.T, id string) clusterJobStatus {
	t.Helper()
	resp, err := http.Get(cc.front.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var st clusterJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// pump advances the manual clock in steps until cond holds, failing the
// test after a generous real-time budget. each, when non-nil, runs
// every iteration (e.g. to keep a worker's heartbeat fresh).
func (cc *chaosCluster) pump(t *testing.T, what string, each func(), cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if each != nil {
			each()
		}
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump: %s never happened", what)
		}
		cc.clock.Advance(500 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
}

// TestChaosLeaseExpiryFailover: two workers replicate one target; the
// job's worker stops heartbeating, its lease expires, and the job fails
// over to the survivor and completes — the worker-crash path, driven
// entirely by the manual clock.
func TestChaosLeaseExpiryFailover(t *testing.T) {
	cc := newChaosCluster(t, nil)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	cc.register(t, "w1", w1)
	cc.register(t, "w2", w2)

	id := cc.submit(t)
	// Wait until the job lands on some worker.
	var first *fakeWorker
	var firstID string
	cc.pump(t, "initial dispatch", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		st := cc.jobStatus(t, id)
		if st.Worker == nil {
			return false
		}
		if st.Worker.WorkerID == "w1" {
			first, firstID = w1, "w1"
		} else {
			first, firstID = w2, "w2"
		}
		return true
	})
	survivor, survivorID := w2, "w2"
	if firstID == "w2" {
		survivor, survivorID = w1, "w1"
	}

	// The first worker goes silent: only the survivor heartbeats from
	// here. The sweeper must expire the lease and the runner must
	// re-dispatch to the survivor.
	cc.pump(t, "failover to survivor", func() {
		cc.heartbeat(t, survivorID)
	}, func() bool {
		return survivor.submitCount() > 0
	})
	if first.submitCount() != 1 {
		t.Errorf("first worker saw %d submissions, want 1", first.submitCount())
	}

	// Finish on the survivor; the coordinator's poll picks it up.
	survivor.finishAll()
	cc.pump(t, "job done after failover", func() {
		cc.heartbeat(t, survivorID)
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})

	st := cc.jobStatus(t, id)
	if st.Dispatches != 2 {
		t.Errorf("dispatches = %d, want 2", st.Dispatches)
	}
	if st.Worker == nil || st.Worker.WorkerID != survivorID {
		t.Errorf("final worker = %+v, want %s", st.Worker, survivorID)
	}
	if got := cc.coord.c.failovers.Value(); got != 1 {
		t.Errorf("failovers counter = %d, want 1", got)
	}
}

// TestChaosRetryExhaustionOpensBreakerThenPark: the only replica's
// transport resets every request, so dispatch retries exhaust, the
// worker's breaker opens, and the job parks; a healthy replica
// registering later wakes it and it completes there.
func TestChaosRetryExhaustionOpensBreakerThenPark(t *testing.T) {
	cc := newChaosCluster(t, nil)
	w1 := newFakeWorker(t)
	// Every request to w1 is reset at the transport.
	cc.tr.AddRule(faultinject.TransportRule{Host: w1.host(), Action: faultinject.TransportReset})
	cc.register(t, "w1", w1)

	id := cc.submit(t)
	// Dispatch retries burn down against resets; the breaker opens and
	// the job parks.
	cc.pump(t, "breaker opens and job parks", func() {
		cc.heartbeat(t, "w1")
	}, func() bool {
		st := cc.jobStatus(t, id)
		return cc.coord.brk.state("w1") == "open" && st.Parked
	})
	if got := w1.submitCount(); got != 0 {
		t.Errorf("resets should never reach the worker; it saw %d submissions", got)
	}

	// A healthy replica arrives; the membership broadcast unparks the
	// job and it completes there.
	w2 := newFakeWorker(t)
	cc.register(t, "w2", w2)
	cc.pump(t, "dispatch to the healthy replica", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		return w2.submitCount() > 0
	})
	w2.finishAll()
	cc.pump(t, "job done on healthy replica", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})
}

// TestChaosPartitionFailover: the job's worker stays lease-alive but a
// network partition cuts the coordinator's path to it; status polls
// exhaust their retry budget and the job fails over — the partition
// path, distinct from lease expiry.
func TestChaosPartitionFailover(t *testing.T) {
	cc := newChaosCluster(t, nil)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	cc.register(t, "w1", w1)
	cc.register(t, "w2", w2)

	id := cc.submit(t)
	var firstW *fakeWorker
	var firstID, otherID string
	var otherW *fakeWorker
	cc.pump(t, "initial dispatch", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		st := cc.jobStatus(t, id)
		if st.Worker == nil {
			return false
		}
		if st.Worker.WorkerID == "w1" {
			firstW, firstID, otherW, otherID = w1, "w1", w2, "w2"
		} else {
			firstW, firstID, otherW, otherID = w2, "w2", w1, "w1"
		}
		return true
	})

	// Partition the first worker. Both workers keep heartbeating (the
	// test stands in for their agents, which are not partitioned from
	// the coordinator's listen side).
	cc.tr.Partition(firstW.host())
	cc.pump(t, "failover through the partition", func() {
		cc.heartbeat(t, firstID)
		cc.heartbeat(t, otherID)
	}, func() bool {
		return otherW.submitCount() > 0
	})
	otherW.finishAll()
	cc.pump(t, "job done on the reachable worker", func() {
		cc.heartbeat(t, firstID)
		cc.heartbeat(t, otherID)
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})
	st := cc.jobStatus(t, id)
	if st.Worker.WorkerID != otherID {
		t.Errorf("final worker = %s, want %s", st.Worker.WorkerID, otherID)
	}
	if cc.coord.c.failovers.Value() < 1 {
		t.Error("no failover recorded despite the partition")
	}
}

// TestChaosAllReplicasDownDegradation: with every holder of a known
// target dead, submissions answer 503 + Retry-After (not 404) and
// /readyz reports the degradation; a returning worker restores 200s.
func TestChaosAllReplicasDownDegradation(t *testing.T) {
	cc := newChaosCluster(t, nil)
	w1 := newFakeWorker(t)
	cc.register(t, "w1", w1)

	// Let the lease expire with no heartbeats.
	cc.pump(t, "lease expiry", nil, func() bool {
		return cc.coord.ms.size() == 0
	})

	_, code, _ := cc.trySubmit(t)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit with all replicas down: HTTP %d, want 503", code)
	}
	resp, err := http.Post(cc.front.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"target":"tgt","query_fasta":">c\nACGT\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	resp.Body.Close() //nolint:errcheck

	// An unknown target is a 404, not a 503 — the known-target memory is
	// what separates them.
	resp, err = http.Post(cc.front.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"target":"never-seen","query_fasta":">c\nACGT\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown target: HTTP %d, want 404", resp.StatusCode)
	}
	resp.Body.Close() //nolint:errcheck

	readyz := func() int {
		resp, err := http.Get(cc.front.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()        //nolint:errcheck
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return resp.StatusCode
	}
	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Errorf("readyz with no workers: HTTP %d, want 503", code)
	}

	// The worker comes back: capacity restored.
	cc.register(t, "w1", w1)
	if code := readyz(); code != http.StatusOK {
		t.Errorf("readyz after re-register: HTTP %d, want 200", code)
	}
	if id, code, body := cc.trySubmit(t); code != http.StatusAccepted {
		t.Errorf("submit after re-register: HTTP %d (%s)", code, body)
	} else {
		w1.finishAll()
		// Drain the job so shutdown is clean.
		cc.pump(t, "post-recovery job done", func() { cc.heartbeat(t, "w1") }, func() bool {
			w1.finishAll()
			return cc.jobStatus(t, id).State == StateDone
		})
	}
}

// TestChaosCoordinatorRestartReattach: a journaled coordinator is shut
// down mid-job and a new one opens the same WAL; it reattaches to the
// worker still running the job and completes it under the original id.
func TestChaosCoordinatorRestartReattach(t *testing.T) {
	dir := t.TempDir()
	w1 := newFakeWorker(t)

	cc := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = dir })
	cc.register(t, "w1", w1)
	id := cc.submit(t)
	cc.pump(t, "dispatch before restart", func() { cc.heartbeat(t, "w1") }, func() bool {
		st := cc.jobStatus(t, id)
		return st.Worker != nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := cc.coord.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	cc.front.Close()

	// Restart on the same journal. The worker is still running the job.
	cc2 := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = dir })
	cc2.register(t, "w1", w1)
	cc2.pump(t, "reattach after restart", func() { cc2.heartbeat(t, "w1") }, func() bool {
		st := cc2.jobStatus(t, id)
		return st.State == StateRunning
	})
	if got := cc2.coord.c.recovReattach.Value(); got != 1 {
		t.Errorf("reattached counter = %d, want 1", got)
	}
	w1.finishAll()
	cc2.pump(t, "job done after restart", func() { cc2.heartbeat(t, "w1") }, func() bool {
		return cc2.jobStatus(t, id).State == StateDone
	})
	if w1.submitCount() != 1 {
		t.Errorf("worker saw %d submissions, want 1 (reattach must not re-dispatch)", w1.submitCount())
	}

	// A third open restores the job as terminal history.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	if err := cc2.coord.Shutdown(ctx2); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	cancel2()
	cc3 := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = dir })
	st := cc3.jobStatus(t, id)
	if st.State != StateDone {
		t.Errorf("restored job state = %q, want done", st.State)
	}
	if got := cc3.coord.c.recovRestored.Value(); got != 1 {
		t.Errorf("restored counter = %d, want 1", got)
	}
}
