package server

import (
	"testing"
	"time"

	"darwinwga/internal/faultinject"
	"darwinwga/internal/obs"
)

// Breaker unit tests: pure state-machine coverage on a manual clock.
// The end-to-end trip/untrip path (jobs failing through the manager)
// lives in watchdog_test.go.

func newTestBreaker(t *testing.T, threshold int, cooldown time.Duration) (*breaker, *faultinject.ManualClock) {
	t.Helper()
	mc := faultinject.NewManualClock(time.Unix(1700000000, 0))
	b := newBreaker(mc, threshold, cooldown, obs.NewRegistry())
	if b == nil {
		t.Fatal("newBreaker returned nil for an enabled configuration")
	}
	return b, mc
}

func TestBreakerDisabled(t *testing.T) {
	if b := newBreaker(faultinject.RealClock(), 0, time.Second, obs.NewRegistry()); b != nil {
		t.Fatal("threshold 0 should disable the breaker")
	}
	// Every method must be safe on the nil (disabled) breaker.
	var b *breaker
	if _, ok := b.allow("tgt"); !ok {
		t.Error("nil breaker rejected a job")
	}
	b.record("tgt", JobFailed)
	b.releaseProbe("tgt")
	if b.openFor("tgt") {
		t.Error("nil breaker reports open")
	}
	if b.states() != nil {
		t.Error("nil breaker reports states")
	}
}

func TestBreakerTripCooldownProbeClose(t *testing.T) {
	b, mc := newTestBreaker(t, 2, 30*time.Second)

	// Closed: admits, and one failure is below the threshold.
	if _, ok := b.allow("tgt"); !ok {
		t.Fatal("closed breaker rejected")
	}
	b.record("tgt", JobFailed)
	if b.openFor("tgt") {
		t.Fatal("tripped below threshold")
	}

	// Second consecutive failure trips it.
	b.record("tgt", JobFailed)
	if !b.openFor("tgt") {
		t.Fatal("did not trip at threshold")
	}
	if got := b.trips.Value(); got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}
	retryAfter, ok := b.allow("tgt")
	if ok {
		t.Fatal("open breaker admitted")
	}
	if retryAfter <= 0 || retryAfter > 30*time.Second {
		t.Errorf("retryAfter = %s, want within (0, 30s]", retryAfter)
	}
	if st := b.states()["tgt"]; st != "open" {
		t.Errorf("state = %q, want open", st)
	}

	// Cooldown elapses: half-open admits exactly one probe.
	mc.Advance(30 * time.Second)
	if st := b.states()["tgt"]; st != "half-open" {
		t.Errorf("state after cooldown = %q, want half-open", st)
	}
	if _, ok := b.allow("tgt"); !ok {
		t.Fatal("half-open breaker rejected the probe")
	}
	if _, ok := b.allow("tgt"); ok {
		t.Fatal("half-open breaker admitted a second job while probing")
	}

	// Probe succeeds: closed again, failure counter reset.
	b.record("tgt", JobDone)
	if st := b.states()["tgt"]; st != "closed" {
		t.Errorf("state after probe success = %q, want closed", st)
	}
	b.record("tgt", JobFailed)
	if b.openFor("tgt") {
		t.Error("single failure after close tripped the breaker (stale fail count)")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, mc := newTestBreaker(t, 1, 30*time.Second)
	b.record("tgt", JobFailed)
	if !b.openFor("tgt") {
		t.Fatal("did not trip")
	}
	mc.Advance(30 * time.Second)
	if _, ok := b.allow("tgt"); !ok {
		t.Fatal("probe rejected")
	}
	b.record("tgt", JobFailed)
	if !b.openFor("tgt") {
		t.Fatal("failed probe did not reopen")
	}
	if got := b.trips.Value(); got != 2 {
		t.Errorf("trips = %d, want 2 (initial + reopen)", got)
	}
	// The reopened cooldown starts from the probe failure, not the
	// original trip.
	if retryAfter, ok := b.allow("tgt"); ok || retryAfter != 30*time.Second {
		t.Errorf("allow after reopen = (%s, %v), want full cooldown", retryAfter, ok)
	}
}

func TestBreakerReleaseProbeUnwedgesHalfOpen(t *testing.T) {
	b, mc := newTestBreaker(t, 1, 30*time.Second)
	b.record("tgt", JobFailed)
	mc.Advance(30 * time.Second)
	if _, ok := b.allow("tgt"); !ok {
		t.Fatal("probe rejected")
	}
	// The admitted probe never enqueued (journal failure, drain):
	// releasing it must let the next submission probe instead.
	b.releaseProbe("tgt")
	if _, ok := b.allow("tgt"); !ok {
		t.Fatal("probe slot leaked: half-open rejected after releaseProbe")
	}
	// A cancelled probe likewise frees the slot via record.
	b.record("tgt", JobCancelled)
	if _, ok := b.allow("tgt"); !ok {
		t.Fatal("probe slot leaked after cancellation")
	}
}

func TestBreakerCancellationIsNeutral(t *testing.T) {
	b, _ := newTestBreaker(t, 1, time.Second)
	b.record("tgt", JobCancelled)
	if b.openFor("tgt") {
		t.Fatal("cancellation tripped the breaker")
	}
	if _, ok := b.allow("tgt"); !ok {
		t.Fatal("breaker rejected after a cancellation")
	}
}

func TestBreakerTargetsAreIndependent(t *testing.T) {
	b, _ := newTestBreaker(t, 1, time.Second)
	b.record("bad", JobFailed)
	if !b.openFor("bad") {
		t.Fatal("bad target did not trip")
	}
	if _, ok := b.allow("good"); !ok {
		t.Fatal("healthy target rejected because another target tripped")
	}
	states := b.states()
	if states["bad"] != "open" || states["good"] != "closed" {
		t.Errorf("states = %v", states)
	}
}
