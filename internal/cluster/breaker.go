package cluster

import (
	"sync"
	"time"

	"darwinwga/internal/faultinject"
)

// workerBreakers is the coordinator's per-worker circuit breaker layer.
// It sits above the per-target breaker each worker already runs: the
// worker-side breaker protects a target index from poisonous jobs, this
// one protects routing from a worker whose transport keeps failing
// (resets, timeouts, partitions) even though its lease may still be
// current. Consecutive transport failures reaching threshold open the
// breaker for cooldown; after cooldown one dispatch is allowed through
// as a probe (half-open), and its outcome closes or re-opens the
// breaker.
type workerBreakers struct {
	clock     faultinject.Clock
	threshold int // 0 = disabled
	cooldown  time.Duration

	mu     sync.Mutex
	states map[string]*wbState
}

type wbState struct {
	failures int
	openedAt time.Time
	open     bool
	probing  bool
}

func newWorkerBreakers(clock faultinject.Clock, threshold int, cooldown time.Duration) *workerBreakers {
	return &workerBreakers{
		clock:     clock,
		threshold: threshold,
		cooldown:  cooldown,
		states:    make(map[string]*wbState),
	}
}

// allow reports whether a dispatch to worker id may proceed. In
// half-open it admits exactly one caller as the probe.
func (b *workerBreakers) allow(id string) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[id]
	if !ok || !st.open {
		return true
	}
	if b.clock.Now().Sub(st.openedAt) < b.cooldown {
		return false
	}
	if st.probing {
		return false
	}
	st.probing = true
	return true
}

// success records a working dispatch: the breaker closes and the
// failure streak resets.
func (b *workerBreakers) success(id string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.states, id)
}

// failure records a transport failure; the streak reaching threshold
// opens the breaker. A failed half-open probe re-opens it for a fresh
// cooldown.
func (b *workerBreakers) failure(id string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[id]
	if !ok {
		st = &wbState{}
		b.states[id] = st
	}
	st.failures++
	if st.failures >= b.threshold || st.probing {
		st.open = true
		st.probing = false
		st.openedAt = b.clock.Now()
	}
}

// forget drops a worker's breaker state (it deregistered or died; a
// re-registration starts clean).
func (b *workerBreakers) forget(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.states, id)
}

// state reports "closed", "open", or "half-open" for a worker.
func (b *workerBreakers) state(id string) string {
	if b.threshold <= 0 {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.states[id]
	if !ok || !st.open {
		return "closed"
	}
	if b.clock.Now().Sub(st.openedAt) >= b.cooldown {
		return "half-open"
	}
	return "open"
}

// openCount returns how many workers currently have an open breaker.
func (b *workerBreakers) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	now := b.clock.Now()
	for _, st := range b.states {
		if st.open && now.Sub(st.openedAt) < b.cooldown {
			n++
		}
	}
	return n
}
