package genome

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadFASTA parses FASTA-formatted sequences from r. Header lines begin
// with '>'; the first whitespace-delimited token becomes the sequence
// name, which must be non-empty. Bases are case-folded to upper case,
// IUPAC ambiguity codes (and U) become 'N', and any character outside
// that alphabet is rejected with its line and column number. CRLF and
// trailing-whitespace line endings are accepted.
func ReadFASTA(r io.Reader) ([]*Sequence, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var seqs []*Sequence
	var cur *Sequence
	lineno := 0
	for {
		line, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, fmt.Errorf("genome: reading FASTA: %w", err)
		}
		lineno++
		line = bytes.TrimRight(line, "\r\n \t")
		if len(line) > 0 {
			if line[0] == '>' {
				fields := bytes.Fields(line[1:])
				if len(fields) == 0 {
					return nil, fmt.Errorf("genome: FASTA line %d: empty sequence name", lineno)
				}
				cur = &Sequence{Name: string(fields[0])}
				seqs = append(seqs, cur)
			} else if line[0] != ';' { // ';' comments are legacy FASTA
				if cur == nil {
					return nil, fmt.Errorf("genome: FASTA line %d: sequence data before first header", lineno)
				}
				start := len(cur.Bases)
				cur.Bases = append(cur.Bases, line...)
				for i := start; i < len(cur.Bases); i++ {
					c, ok := NormalizeBase(cur.Bases[i])
					if !ok {
						return nil, fmt.Errorf("genome: FASTA line %d, column %d: invalid character %q in sequence %q",
							lineno, i-start+1, cur.Bases[i], cur.Name)
					}
					cur.Bases[i] = c
				}
			}
		}
		if atEOF {
			break
		}
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("genome: FASTA input contains no sequences")
	}
	return seqs, nil
}

// ReadFASTAFile reads a FASTA file from disk and labels the assembly with
// the file's base name (without extension).
func ReadFASTAFile(path string) (*Assembly, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seqs, err := ReadFASTA(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.IndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	return &Assembly{Name: name, Seqs: seqs}, nil
}

// WriteFASTA writes sequences in FASTA format with the given line width
// (60 if width <= 0).
func WriteFASTA(w io.Writer, seqs []*Sequence, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name); err != nil {
			return err
		}
		for i := 0; i < len(s.Bases); i += width {
			end := min(i+width, len(s.Bases))
			if _, err := bw.Write(s.Bases[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes an assembly to a FASTA file.
func WriteFASTAFile(path string, a *Assembly) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFASTA(f, a.Seqs, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
