// Package stats provides the small statistics toolkit the experiment
// harness uses: log-binned histograms (Figure 2's ungapped-block-size
// distribution uses a logarithmic x-axis), summary statistics, and
// fixed-width text table rendering for regenerating the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a log-binned histogram over positive integer values.
type Histogram struct {
	// base is the bin growth factor.
	base float64
	// counts[k] counts values v with base^k <= v < base^(k+1).
	counts map[int]int
	total  int
}

// NewLogHistogram creates a histogram with the given bin growth factor
// (e.g. 2 for doubling bins).
func NewLogHistogram(base float64) *Histogram {
	if base <= 1 {
		base = 2
	}
	return &Histogram{base: base, counts: make(map[int]int)}
}

// Add records a value; non-positive values are ignored.
func (h *Histogram) Add(v int) {
	if v <= 0 {
		return
	}
	k := int(math.Floor(math.Log(float64(v)) / math.Log(h.base)))
	h.counts[k]++
	h.total++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// Bin describes one histogram bin.
type Bin struct {
	Lo, Hi int // value range [Lo, Hi)
	Count  int
	Frac   float64
}

// Bins returns the non-empty bins in ascending order.
func (h *Histogram) Bins() []Bin {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bin, 0, len(keys))
	for _, k := range keys {
		lo := int(math.Ceil(math.Pow(h.base, float64(k))))
		hi := int(math.Ceil(math.Pow(h.base, float64(k+1))))
		out = append(out, Bin{
			Lo: lo, Hi: hi,
			Count: h.counts[k],
			Frac:  float64(h.counts[k]) / float64(h.total),
		})
	}
	return out
}

// FracBelow returns the fraction of recorded values < x (bin-resolution
// approximation: bins entirely below x count fully, the straddling bin
// counts proportionally).
func (h *Histogram) FracBelow(x int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0.0
	for _, b := range h.Bins() {
		switch {
		case b.Hi <= x:
			n += float64(b.Count)
		case b.Lo < x:
			n += float64(b.Count) * float64(x-b.Lo) / float64(b.Hi-b.Lo)
		}
	}
	return n / float64(h.total)
}

// Render draws the histogram as ASCII art, one row per bin.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	bins := h.Bins()
	maxCount := 0
	for _, b := range bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bins {
		bar := 0
		if maxCount > 0 {
			bar = b.Count * width / maxCount
		}
		fmt.Fprintf(&sb, "%8d-%-8d %7d (%5.1f%%) %s\n",
			b.Lo, b.Hi-1, b.Count, 100*b.Frac, strings.Repeat("#", bar))
	}
	return sb.String()
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     int
	P10, P90     float64
}

// Summarize computes descriptive statistics of values.
func Summarize(values []int) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]int{}, values...)
	sort.Ints(sorted)
	sum := 0
	for _, v := range sorted {
		sum += v
	}
	pct := func(p float64) float64 {
		idx := p * float64(len(sorted)-1)
		lo := int(idx)
		if lo+1 >= len(sorted) {
			return float64(sorted[len(sorted)-1])
		}
		frac := idx - float64(lo)
		return float64(sorted[lo])*(1-frac) + float64(sorted[lo+1])*frac
	}
	return Summary{
		N:      len(sorted),
		Mean:   float64(sum) / float64(len(sorted)),
		Median: pct(0.5),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P10:    pct(0.1),
		P90:    pct(0.9),
	}
}

// Table renders rows of cells as a fixed-width text table with a header
// rule, matching the style the experiment harness prints the paper's
// tables in.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// F formats a float compactly (3 significant decimals, trailing zeros
// trimmed).
func F(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Comma formats an integer with thousands separators, as the paper's
// tables do.
func Comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
