package server_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"darwinwga/internal/obs"
	"darwinwga/internal/server"
)

// statusWithStats extends the basic jobStatus decode with the
// telemetry block added to /v1/jobs/{id}.
type statusWithStats struct {
	jobStatus
	Stats *struct {
		QueueWaitMS int64                 `json:"queue_wait_ms"`
		RunMS       int64                 `json:"run_ms"`
		Stages      obs.AggregateSnapshot `json:"stages"`
	} `json:"stats"`
}

// runOneJob submits a job against a freshly registered pair and waits
// for it to complete.
func runOneJob(t *testing.T, base, target, queryFASTA, queryName string) jobStatus {
	t.Helper()
	resp, st := submit(t, base, map[string]any{
		"target":      target,
		"query_fasta": queryFASTA,
		"query_name":  queryName,
		"client":      "obs",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	final := waitTerminal(t, base, st.ID)
	if final.State != "done" {
		t.Fatalf("job state %q (err %q), want done", final.State, final.Error)
	}
	return final
}

// TestMetricsEndpoint runs one job and scrapes /metrics: the response
// must be Prometheus text carrying the job counters, server gauges, and
// per-stage pipeline totals of the work just done.
func TestMetricsEndpoint(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatal(err)
	}
	final := runOneJob(t, ts.URL, pair.Target.Name, fastaText(t, pair.Query), pair.Query.Name)

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"darwinwga_jobs_accepted_total 1",
		`darwinwga_jobs_finished_total{state="done"} 1`,
		`darwinwga_jobs_state{state="done"} 1`,
		"darwinwga_server_queue_depth 0",
		"darwinwga_server_targets 1",
		"darwinwga_jobs_running 0",
		"darwinwga_jobs_queue_wait_seconds_count 1",
		"darwinwga_jobs_run_seconds_count 1",
		"darwinwga_core_aligns_total 1",
		"# TYPE darwinwga_jobs_run_seconds histogram",
		`darwinwga_jobs_run_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
	// The pipeline metrics must reflect the job's actual workload.
	var wl struct{ SeedHits, FilterTiles, ExtensionTiles int64 }
	if err := json.Unmarshal(*final.Workload, &wl); err != nil {
		t.Fatal(err)
	}
	if wl.ExtensionTiles == 0 {
		t.Fatal("job did no extension work; metric cross-check is vacuous")
	}
	for metric, want := range map[string]int64{
		"darwinwga_dsoft_seed_hits_total": wl.SeedHits,
		"darwinwga_gact_tiles_total":      wl.ExtensionTiles,
	} {
		got, ok := scrapeValue(text, metric)
		if !ok || got != want {
			t.Errorf("%s = %d (present=%v), want %d", metric, got, ok, want)
		}
	}
}

// scrapeValue extracts an integer sample for an exact series name from
// Prometheus text.
func scrapeValue(text, series string) (int64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := json.Number(rest).Int64()
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// TestJobStatsBlock checks the stats block on a completed job agrees
// with the job's own workload counters.
func TestJobStatsBlock(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatal(err)
	}
	final := runOneJob(t, ts.URL, pair.Target.Name, fastaText(t, pair.Query), pair.Query.Name)

	resp, body := get(t, ts.URL+"/v1/jobs/"+final.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: HTTP %d", resp.StatusCode)
	}
	var st statusWithStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Stats == nil {
		t.Fatal("completed job status has no stats block")
	}
	if st.Stats.QueueWaitMS < 0 || st.Stats.RunMS < 0 {
		t.Errorf("negative timings: %+v", st.Stats)
	}
	var wl struct {
		SeedHits, Candidates, FilterTiles, FilterCells int64
		PassedFilter, ExtensionTiles, ExtensionCells   int64
	}
	if err := json.Unmarshal(*st.Workload, &wl); err != nil {
		t.Fatal(err)
	}
	stages := st.Stats.Stages
	if stages.Seeding.SeedHits != wl.SeedHits || stages.Seeding.Candidates != wl.Candidates {
		t.Errorf("stats seeding %+v, workload %+v", stages.Seeding, wl)
	}
	if stages.Filter.TilesPassed+stages.Filter.TilesFailed != wl.FilterTiles ||
		stages.Filter.TilesPassed != wl.PassedFilter ||
		stages.Filter.Cells != wl.FilterCells {
		t.Errorf("stats filter %+v, workload %+v", stages.Filter, wl)
	}
	if stages.Extension.Tiles != wl.ExtensionTiles || stages.Extension.Cells != wl.ExtensionCells {
		t.Errorf("stats extension %+v, workload %+v", stages.Extension, wl)
	}
	if stages.Extension.HSPs != final.HSPs {
		t.Errorf("stats hsps = %d, job reports %d", stages.Extension.HSPs, final.HSPs)
	}
}

// TestVarzCompatibility pins the deprecated /varz surface: the legacy
// counter shape still parses, and the payload now points at /metrics
// and embeds the registry's JSON view.
func TestVarzCompatibility(t *testing.T) {
	pair := testPair(t, "dm6-droSim1", 0.0004)
	srv, ts := newTestServer(t, server.Config{}, nil)
	if _, err := srv.RegisterTarget(pair.Target.Name, pair.Target); err != nil {
		t.Fatal(err)
	}
	runOneJob(t, ts.URL, pair.Target.Name, fastaText(t, pair.Query), pair.Query.Name)

	resp, body := get(t, ts.URL+"/varz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/varz: HTTP %d", resp.StatusCode)
	}
	var varz struct {
		QueueCap   int              `json:"queue_cap"`
		Targets    int              `json:"targets"`
		Counters   map[string]int64 `json:"counters"`
		Deprecated string           `json:"deprecated"`
		Metrics    json.RawMessage  `json:"metrics"`
	}
	if err := json.Unmarshal(body, &varz); err != nil {
		t.Fatalf("/varz is not valid JSON: %v", err)
	}
	if varz.Targets != 1 || varz.QueueCap <= 0 {
		t.Errorf("varz basics: %+v", varz)
	}
	for _, key := range []string{
		"completed", "cancelled", "rejected_queue_full", "rejected_client_limit", "rejected_oversize",
	} {
		if _, ok := varz.Counters[key]; !ok {
			t.Errorf("legacy counter %q missing from /varz", key)
		}
	}
	if varz.Counters["completed"] != 1 {
		t.Errorf("completed = %d, want 1", varz.Counters["completed"])
	}
	if !strings.Contains(varz.Deprecated, "/metrics") {
		t.Errorf("deprecation notice = %q", varz.Deprecated)
	}
	var view map[string]any
	if err := json.Unmarshal(varz.Metrics, &view); err != nil {
		t.Fatalf("embedded metrics view is not JSON: %v", err)
	}
	if view["darwinwga_jobs_accepted_total"] != float64(1) {
		t.Errorf("metrics view accepted = %v", view["darwinwga_jobs_accepted_total"])
	}
}

// TestPprofGating: the profiling endpoints exist only when enabled.
func TestPprofGating(t *testing.T) {
	_, tsOff := newTestServer(t, server.Config{}, nil)
	resp, _ := get(t, tsOff.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ = HTTP %d, want 404", resp.StatusCode)
	}

	_, tsOn := newTestServer(t, server.Config{EnablePprof: true}, nil)
	resp, body := get(t, tsOn.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: GET /debug/pprof/ = HTTP %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "heap") {
		t.Error("pprof index does not list the heap profile")
	}
	resp, body = get(t, tsOn.URL+"/debug/pprof/heap?debug=1")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("heap profile: HTTP %d, %d bytes", resp.StatusCode, len(body))
	}
}
