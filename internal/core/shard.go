package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"darwinwga/internal/align"
	"darwinwga/internal/dsoft"
	"darwinwga/internal/gact"
)

// This file is the work-unit extraction behind the cluster's per-shard
// scatter/gather plane. A ShardUnit is one independently dispatchable
// slice of a whole-query alignment: one strand crossed with one
// chunk-aligned query range. A worker executes the unit with
// AlignShardUnit — seeding and filtering restricted to the range,
// then extension of every filter survivor WITHOUT the anchor-absorption
// walk — and returns one ShardFrame per above-threshold alignment.
// The gather side reassembles a strand's frames with MergeShardFrames,
// which re-runs the absorption walk over the canonically sorted union,
// reproducing exactly the alignment set and emission order a one-shot
// AlignContext call produces.
//
// Why the split is byte-exact: D-SOFT band counting never straddles a
// chunk boundary, so the candidate multiset over a chunk-aligned range
// is range-local and the union over a partition equals the whole-query
// set; filter verdicts are per-anchor pure functions; extension from an
// anchor is a pure function of (tPos, qPos). The only whole-strand
// state is the absorber, which is why it moves to the merge. The cost
// of the split is bounded wasted work: a unit extends anchors that the
// one-shot walk would have absorbed, and the merge then drops them.

// ShardUnit is one scatter/gather work unit: a strand crossed with a
// chunk-aligned query range. QStart/QEnd are half-open offsets into the
// strand-oriented query — for strand '-' they index the
// reverse-complemented query, so a unit is self-contained given the
// original query bases. Seq is the unit's dense index in its plan; the
// gather side uses it as the reorder-buffer key and the hedged-dedup
// identity.
type ShardUnit struct {
	Seq    int  `json:"seq"`
	Strand byte `json:"strand"`
	QStart int  `json:"q_start"`
	QEnd   int  `json:"q_end"`
}

// String renders the unit identity used in logs and flight events.
func (u ShardUnit) String() string {
	return fmt.Sprintf("%d/%c[%d:%d)", u.Seq, u.Strand, u.QStart, u.QEnd)
}

// PlanShards decomposes a query of queryLen bases into at most
// unitsPerStrand units per strand ('+' first, then '-' when
// cfg.BothStrands), each range aligned to cfg.DSoft.ChunkSize so the
// unit-local candidate sets union to the whole-query set. The plan is a
// pure function of (config, queryLen, unitsPerStrand): a coordinator
// can recompute it after a restart and get the same unit identities.
func PlanShards(cfg *Config, queryLen, unitsPerStrand int) []ShardUnit {
	if unitsPerStrand < 1 {
		unitsPerStrand = 1
	}
	chunk := cfg.DSoft.ChunkSize
	if chunk <= 0 {
		chunk = 1
	}
	// Same boundary rule as the pipeline's internal seeding shards:
	// ceil-ish division rounded up to a whole chunk.
	span := (queryLen/unitsPerStrand/chunk + 1) * chunk
	strands := []byte{'+'}
	if cfg.BothStrands {
		strands = append(strands, '-')
	}
	var plan []ShardUnit
	seq := 0
	for _, strand := range strands {
		for start := 0; start < queryLen; start += span {
			plan = append(plan, ShardUnit{
				Seq:    seq,
				Strand: strand,
				QStart: start,
				QEnd:   min(start+span, queryLen),
			})
			seq++
		}
	}
	return plan
}

// ShardFrame is the wire framing of one above-threshold alignment
// produced by a shard unit: the sort keys that place it in the
// canonical extension order (filter score desc, anchor target pos,
// anchor query pos — sortAnchors' comparator), plus the absorption
// footprint (target span and path diagonal range) the merge needs to
// re-run the duplicate-suppression walk. The rendered MAF block rides
// alongside in the cluster layer; the merge itself never needs the
// alignment text.
type ShardFrame struct {
	// AnchorT/AnchorQ are the filter-survivor anchor the extension
	// started from (the absorption-walk probe point).
	AnchorT int `json:"at"`
	AnchorQ int `json:"aq"`
	// FilterScore is the anchor's filter-stage score (primary sort key).
	FilterScore int32 `json:"fs"`
	// Score is the final alignment score (>= ExtensionThreshold).
	Score int32 `json:"score"`
	// TStart/TEnd is the alignment's target span; DMin/DMax the min/max
	// diagonal its path touches. Together they are the absorber footprint.
	TStart int `json:"t_start"`
	TEnd   int `json:"t_end"`
	DMin   int `json:"d_min"`
	DMax   int `json:"d_max"`
}

// sortFrameIndex orders frame indices by the canonical extension order
// — the exact comparator of sortAnchors, keyed on the anchor the
// extension started from.
func sortFrameIndex(frames []ShardFrame) []int {
	idx := make([]int, len(frames))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := &frames[idx[i]], &frames[idx[j]]
		if a.FilterScore != b.FilterScore {
			return a.FilterScore > b.FilterScore
		}
		if a.AnchorT != b.AnchorT {
			return a.AnchorT < b.AnchorT
		}
		return a.AnchorQ < b.AnchorQ
	})
	return idx
}

// MergeShardFrames reassembles ONE strand's frames (from any number of
// units, in any arrival order) into the pipeline's deterministic
// emission order: it sorts by the canonical extension order and re-runs
// the anchor-absorption walk of runExtension, dropping every frame
// whose anchor lands inside an already-kept alignment's footprint.
// It returns the indices of the kept frames, in emission order, plus
// the number absorbed. Equal-key frames are interchangeable (extension
// is a pure function of the anchor), so the output block sequence is
// independent of arrival order — the property the merge tests pin.
func MergeShardFrames(frames []ShardFrame, absorbBand int) (keep []int, absorbed int) {
	absorb := newAbsorber(absorbBand)
	for _, i := range sortFrameIndex(frames) {
		f := &frames[i]
		if absorb.covered(f.AnchorT, f.AnchorQ) {
			absorbed++
			continue
		}
		keep = append(keep, i)
		absorb.add(f.TStart, f.TEnd, f.DMin, f.DMax)
	}
	return keep, absorbed
}

// AlignShardUnit executes one work unit: D-SOFT seeding and filtering
// restricted to the strand-oriented query range [u.QStart, u.QEnd),
// then GACT-X extension of every surviving anchor in canonical order —
// without the absorption walk, which belongs to the merge. query must
// already be oriented for u.Strand (the caller reverse-complements for
// '-'). Returns one frame plus the matching full HSP (for MAF
// rendering) per above-threshold alignment; frames[i] describes
// hsps[i].
//
// Units must not carry resource budgets or a deadline: a unit is
// all-or-nothing (complete frames or an error), because a truncated
// unit would poison the deterministic merge. The dispatching layer
// enforces this by refusing to shard budgeted jobs; this function
// double-checks and errors out.
func (a *Aligner) AlignShardUnit(ctx context.Context, query []byte, u ShardUnit) ([]ShardFrame, []HSP, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if a.cfg.MaxCandidates != 0 || a.cfg.MaxFilterTiles != 0 || a.cfg.MaxExtensionCells != 0 || a.cfg.Deadline != 0 {
		return nil, nil, fmt.Errorf("core: shard units cannot run under resource budgets or a deadline")
	}
	if u.QStart < 0 || u.QEnd > len(query) || u.QStart >= u.QEnd {
		return nil, nil, fmt.Errorf("core: shard unit range [%d:%d) outside query of %d bases", u.QStart, u.QEnd, len(query))
	}
	if len(query) < a.shape.Span {
		return nil, nil, fmt.Errorf("core: query shorter than the seed span (%d < %d)", len(query), a.shape.Span)
	}
	r := a.newRun(ctx)
	defer r.stopTimer()

	anchors, _ := a.seedRange(r, query, u.QStart, u.QEnd)
	if err := r.err(); err != nil {
		return nil, nil, err
	}
	passed, _, _ := a.runFilter(r, query, anchors, u.Strand)
	if err := r.err(); err != nil {
		return nil, nil, err
	}
	sortAnchors(passed)

	// Unlike runExtension, there is no absorber here — every extension
	// is a pure function of its anchor — so the loop that must stay
	// single-goroutine in the whole-query pipeline is embarrassingly
	// parallel in a unit. That matters: a unit extends anchors the
	// one-shot walk would have absorbed, so serial extension would make
	// units far slower than their share of a one-shot run.
	ecfg := a.cfg.Extension
	ecfg.Stop = r.stop
	workers := min(a.cfg.workers(), len(passed))
	exts := make([]*gact.Extender, workers)
	for w := range exts {
		ext, err := gact.NewExtender(a.sc, ecfg)
		if err != nil {
			return nil, nil, err
		}
		exts[w] = ext
	}
	type extOut struct {
		done bool
		aln  align.Alignment
	}
	outs := make([]extOut, len(passed))
	var next, failedIdx atomic.Int64 // failedIdx holds index+1; 0 = none
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ext *gact.Extender) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(passed) || failedIdx.Load() != 0 || r.stopSlow() {
					return
				}
				p := passed[i]
				var aln align.Alignment
				ok := r.runShard(StageExtension, i, func() {
					if r.hook != nil {
						r.hook(StageExtension, i)
					}
					var st gact.Stats
					aln = ext.Extend(a.target, query, p.tPos, p.qPos, &st)
				}, nil)
				if !ok {
					failedIdx.CompareAndSwap(0, int64(i)+1)
					return
				}
				outs[i] = extOut{done: true, aln: aln}
			}
		}(exts[w])
	}
	wg.Wait()
	if err := r.err(); err != nil {
		return nil, nil, err
	}
	if fi := failedIdx.Load(); fi != 0 {
		// Retry exhausted under a per-shard retry policy: a unit has
		// no graceful degradation — the dispatcher retries the whole
		// unit elsewhere.
		return nil, nil, fmt.Errorf("core: shard unit %s: extension anchor %d failed after retries", u, fi-1)
	}
	var frames []ShardFrame
	var hsps []HSP
	for i, p := range passed {
		aln := outs[i].aln
		if !outs[i].done || aln.Score < a.cfg.ExtensionThreshold {
			continue
		}
		matches, _, _ := aln.Counts(a.target, query)
		dMin, dMax := pathDiagRange(aln.TStart, aln.QStart, aln.Ops)
		frames = append(frames, ShardFrame{
			AnchorT:     p.tPos,
			AnchorQ:     p.qPos,
			FilterScore: p.score,
			Score:       aln.Score,
			TStart:      aln.TStart,
			TEnd:        aln.TEnd,
			DMin:        dMin,
			DMax:        dMax,
		})
		hsps = append(hsps, HSP{
			Alignment:   aln,
			Strand:      u.Strand,
			Matches:     matches,
			FilterScore: p.score,
		})
	}
	// A cancelled or deadline-stopped unit is incomplete, never partial.
	if r.stopSlow() || r.truncation() != "" {
		if ctxErr := r.ctx.Err(); ctxErr != nil {
			return nil, nil, ctxErr
		}
		return nil, nil, fmt.Errorf("core: shard unit %s stopped early (%s)", u, r.truncation())
	}
	return frames, hsps, nil
}

// seedRange collects the D-SOFT candidates whose query chunks lie in
// [qs, qe), sharding the range across the configured workers on chunk
// boundaries — the same boundary rule runSeeding uses, so the
// candidate multiset is identical to the corresponding slice of a
// whole-query run.
func (a *Aligner) seedRange(r *run, query []byte, qs, qe int) ([]dsoft.Anchor, dsoft.Stats) {
	seeder, err := dsoft.NewSeeder(a.index, a.cfg.DSoft)
	if err != nil {
		// Params were validated in NewAligner; unreachable.
		panic(err)
	}
	workers := a.cfg.workers()
	chunk := a.cfg.DSoft.ChunkSize
	span := ((qe-qs)/workers/chunk + 1) * chunk
	block := seedBlockChunks * chunk

	type part struct {
		anchors []dsoft.Anchor
		stats   dsoft.Stats
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := qs + w*span
		if start >= qe {
			break
		}
		end := min(start+span, qe)
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			body := func() {
				if r.hook != nil {
					r.hook(StageSeeding, w)
				}
				scratch := dsoft.NewScratch()
				p := &parts[w]
				for bs := start; bs < end; bs += block {
					if r.seedingStopped() {
						return
					}
					be := min(bs+block, end)
					p.anchors = seeder.Collect(query, bs, be, p.anchors, &p.stats, scratch)
				}
			}
			reset := func() { parts[w] = part{} }
			r.runShard(StageSeeding, w, body, reset)
		}(w, start, end)
	}
	wg.Wait()
	var anchors []dsoft.Anchor
	var stats dsoft.Stats
	for w := range parts {
		anchors = append(anchors, parts[w].anchors...)
		stats.QueryPositions += parts[w].stats.QueryPositions
		stats.Lookups += parts[w].stats.Lookups
		stats.SeedHits += parts[w].stats.SeedHits
		stats.Candidates += parts[w].stats.Candidates
	}
	return anchors, stats
}
