// Package indexstore serializes built D-SOFT seed indexes to a
// versioned, CRC-framed on-disk format so a serving process can load a
// target's index near-instantly instead of rebuilding it from FASTA.
// This is the software analogue of the Darwin-WGA co-processor keeping
// the seed position table resident: the dominant startup cost is paid
// once, offline, by `darwin-wga index build`.
//
// File layout (all integers little-endian):
//
//	offset 0: magic "DWGAIDX\x01" (8 bytes; the trailing byte doubles
//	          as the container version and changes only if the framing
//	          itself changes)
//	then three sections, each framed exactly like a checkpoint WAL
//	record:
//
//	  u32 payload length | u8 kind | u32 CRC32-C over (kind ++ payload) | payload
//
//	  kind 1: header JSON (Header below) — format version, seed shape,
//	          frequency mask, target length and content fingerprint,
//	          table geometry
//	  kind 2: bucket-start table, raw u32s
//	  kind 3: position table, raw u32s
//
// Readers validate magic, format version, per-section CRCs, section
// geometry against the header, and (when the caller knows what target
// it expects) the target fingerprint and seed parameters — each failure
// mode has a typed error so callers can distinguish "corrupt file"
// (rebuild it) from "wrong target/config" (operator error).
package indexstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"

	"darwinwga/internal/checkpoint"
	"darwinwga/internal/seed"
)

// FormatVersion is the serialization format version. Bump it on any
// incompatible change to Header or section encoding; loaders reject
// other versions with ErrVersion.
const FormatVersion = 1

// magic identifies an index file. The final byte is the container
// version: it guards the framing, while FormatVersion (inside the
// framed header) guards the payload semantics.
var magic = []byte("DWGAIDX\x01")

// Section kinds.
const (
	kindHeader    = 1
	kindStarts    = 2
	kindPositions = 3
)

// Typed load failures. Callers match with errors.Is.
var (
	// ErrBadMagic: the file is not an index file at all.
	ErrBadMagic = errors.New("indexstore: bad magic (not an index file)")
	// ErrVersion: the file is an index file from an incompatible format
	// version.
	ErrVersion = errors.New("indexstore: unsupported format version")
	// ErrCorrupt: truncation, CRC mismatch, or framing damage.
	ErrCorrupt = errors.New("indexstore: corrupt index file")
	// ErrFingerprintMismatch: the file indexes different target content
	// than the caller holds.
	ErrFingerprintMismatch = errors.New("indexstore: target fingerprint mismatch")
	// ErrConfigMismatch: the file was built under different seed
	// parameters (pattern or max-freq) than the caller's config.
	ErrConfigMismatch = errors.New("indexstore: seed config mismatch")
)

// Header is the framed JSON header of an index file.
type Header struct {
	FormatVersion int    `json:"format_version"`
	SeedPattern   string `json:"seed_pattern"`
	MaxFreq       int    `json:"max_freq"`
	TargetLen     int    `json:"target_len"`
	// TargetFingerprint is the FNV-64a hex fingerprint of the
	// concatenated target bases — the same fingerprint the server
	// registry and cluster layer key on.
	TargetFingerprint string `json:"target_fingerprint"`
	Buckets           int    `json:"buckets"`
	Positions         int    `json:"positions"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FingerprintBases returns the canonical content fingerprint for target
// bases: FNV-64a over the concatenated sequence, as 16 hex digits. The
// server registry, checkpoint layer, and cluster membership all key on
// this value.
func FingerprintBases(bases []byte) string {
	h := fnv.New64a()
	h.Write(bases) //nolint:errcheck // fnv never errors
	return fmt.Sprintf("%016x", h.Sum64())
}

// Encode serializes ix (built over target content with fingerprint
// targetFP) to the on-disk format.
func Encode(ix *seed.Index, targetFP string) ([]byte, error) {
	if ix == nil {
		return nil, fmt.Errorf("indexstore: nil index")
	}
	starts, positions := ix.RawParts()
	hdr := Header{
		FormatVersion:     FormatVersion,
		SeedPattern:       ix.Shape().Pattern,
		MaxFreq:           ix.MaxFreq(),
		TargetLen:         ix.TargetLen(),
		TargetFingerprint: targetFP,
		Buckets:           len(starts) - 1,
		Positions:         len(positions),
	}
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	size := len(magic) +
		frameSize(len(hdrJSON)) + frameSize(4*len(starts)) + frameSize(4*len(positions))
	out := make([]byte, 0, size)
	out = append(out, magic...)
	out = appendFrame(out, kindHeader, hdrJSON)
	out = appendFrame(out, kindStarts, u32Bytes(starts))
	out = appendFrame(out, kindPositions, u32Bytes(positions))
	return out, nil
}

// Write atomically serializes ix to path: temp file in the same
// directory, fsync, rename, directory sync — the checkpoint layer's
// atomic-artifact idiom, so a crash mid-write never leaves a torn file
// under the final name.
func Write(path string, ix *seed.Index, targetFP string) error {
	data, err := Encode(ix, targetFP)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()        //nolint:errcheck
		os.Remove(tmpName) //nolint:errcheck
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()        //nolint:errcheck
		os.Remove(tmpName) //nolint:errcheck
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //nolint:errcheck
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //nolint:errcheck
		return err
	}
	return checkpoint.SyncDir(dir)
}

// Decode parses a serialized index from memory, validating magic,
// framing, CRCs, version, and geometry. It is the core of Load and the
// fuzz entry point.
func Decode(data []byte) (*seed.Index, *Header, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, nil, ErrBadMagic
	}
	rest := data[len(magic):]

	kind, payload, rest, err := readFrame(rest)
	if err != nil {
		return nil, nil, err
	}
	if kind != kindHeader {
		return nil, nil, fmt.Errorf("%w: first section has kind %d, want header", ErrCorrupt, kind)
	}
	var hdr Header
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if hdr.FormatVersion != FormatVersion {
		return nil, &hdr, fmt.Errorf("%w: file has version %d, this build reads %d",
			ErrVersion, hdr.FormatVersion, FormatVersion)
	}
	shape, err := seed.ParseShape(hdr.SeedPattern)
	if err != nil {
		return nil, &hdr, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	kind, payload, rest, err = readFrame(rest)
	if err != nil {
		return nil, &hdr, err
	}
	if kind != kindStarts {
		return nil, &hdr, fmt.Errorf("%w: second section has kind %d, want starts", ErrCorrupt, kind)
	}
	if len(payload) != 4*(hdr.Buckets+1) {
		return nil, &hdr, fmt.Errorf("%w: starts section is %d bytes, header says %d buckets",
			ErrCorrupt, len(payload), hdr.Buckets)
	}
	starts := bytesU32(payload)

	kind, payload, rest, err = readFrame(rest)
	if err != nil {
		return nil, &hdr, err
	}
	if kind != kindPositions {
		return nil, &hdr, fmt.Errorf("%w: third section has kind %d, want positions", ErrCorrupt, kind)
	}
	if len(payload) != 4*hdr.Positions {
		return nil, &hdr, fmt.Errorf("%w: positions section is %d bytes, header says %d positions",
			ErrCorrupt, len(payload), hdr.Positions)
	}
	positions := bytesU32(payload)
	if len(rest) != 0 {
		return nil, &hdr, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(rest))
	}

	ix, err := seed.IndexFromParts(shape, hdr.TargetLen, starts, positions,
		seed.IndexOptions{MaxFreq: hdr.MaxFreq})
	if err != nil {
		return nil, &hdr, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return ix, &hdr, nil
}

// Load reads and validates an index file.
func Load(path string) (*seed.Index, *Header, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return Decode(data)
}

// ReadHeader reads only the framed header of an index file — enough for
// inspect/verify tooling and for the registry to decide whether the
// file matches before paying for the table load.
func ReadHeader(path string) (*Header, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, ErrBadMagic
	}
	kind, payload, _, err := readFrame(data[len(magic):])
	if err != nil {
		return nil, err
	}
	if kind != kindHeader {
		return nil, fmt.Errorf("%w: first section has kind %d, want header", ErrCorrupt, kind)
	}
	var hdr Header
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	return &hdr, nil
}

// LoadForTarget loads an index file and additionally requires it to
// match the target content fingerprint and seed parameters the caller
// is serving. A stale file (the FASTA changed) fails with
// ErrFingerprintMismatch; a file built under other seed parameters
// fails with ErrConfigMismatch.
func LoadForTarget(path, wantFP, seedPattern string, maxFreq int) (*seed.Index, *Header, error) {
	ix, hdr, err := Load(path)
	if err != nil {
		return nil, hdr, err
	}
	if hdr.TargetFingerprint != wantFP {
		return nil, hdr, fmt.Errorf("%w: file indexes %s, target is %s",
			ErrFingerprintMismatch, hdr.TargetFingerprint, wantFP)
	}
	if hdr.SeedPattern != seedPattern || hdr.MaxFreq != maxFreq {
		return nil, hdr, fmt.Errorf("%w: file built with seed %q maxfreq %d, config wants %q %d",
			ErrConfigMismatch, hdr.SeedPattern, hdr.MaxFreq, seedPattern, maxFreq)
	}
	return ix, hdr, nil
}

// frameSize returns the on-disk size of one framed section.
func frameSize(payloadLen int) int { return 4 + 1 + 4 + payloadLen }

// appendFrame appends one WAL-style frame:
// u32 len | u8 kind | u32 crc32c(kind ++ payload) | payload.
func appendFrame(out []byte, kind byte, payload []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, kind)
	crc := crc32.Update(0, castagnoli, []byte{kind})
	crc = crc32.Update(crc, castagnoli, payload)
	out = binary.LittleEndian.AppendUint32(out, crc)
	return append(out, payload...)
}

// readFrame parses one frame off the front of data, verifying the CRC.
// Length fields are validated against the bytes actually present, so a
// hostile length can never drive an allocation or out-of-range slice.
func readFrame(data []byte) (kind byte, payload, rest []byte, err error) {
	if len(data) < 9 {
		return 0, nil, nil, fmt.Errorf("%w: truncated frame header (%d bytes)", ErrCorrupt, len(data))
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	kind = data[4]
	want := binary.LittleEndian.Uint32(data[5:9])
	body := data[9:]
	if uint64(n) > uint64(len(body)) {
		return 0, nil, nil, fmt.Errorf("%w: frame claims %d payload bytes, %d remain", ErrCorrupt, n, len(body))
	}
	payload = body[:n]
	crc := crc32.Update(0, castagnoli, data[4:5])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, nil, nil, fmt.Errorf("%w: CRC mismatch in section kind %d", ErrCorrupt, kind)
	}
	return kind, payload, body[n:], nil
}

// u32Bytes renders a u32 slice as little-endian bytes.
func u32Bytes(v []uint32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], x)
	}
	return out
}

// bytesU32 parses little-endian bytes back into u32s. len(b) must be a
// multiple of 4 (callers validate section geometry first).
func bytesU32(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}
