// Package gact implements the extension stage of Darwin-WGA: GACT-X
// (Section III-D), the tiled alignment-extension algorithm that aligns
// arbitrarily long sequences with constant traceback memory by combining
// GACT's overlapping tiles with X-drop pruning inside each tile. The
// original GACT algorithm (Darwin, ASPLOS 2018) is the special case with
// an unbounded drop threshold — every tile cell is computed — which is
// exactly how the paper's Figure 10 baseline behaves, so this package
// provides both through one Extender.
package gact

import (
	"fmt"
	"time"

	"darwinwga/internal/align"
)

// Config parameterizes an Extender. Zero values select the paper's
// Table IIb defaults via DefaultConfig.
type Config struct {
	// TileSize is Te, the maximum tile edge in bases (default 1920).
	TileSize int
	// Overlap is O, the number of bases neighbouring tiles share
	// (default 128).
	Overlap int
	// Y is the X-drop threshold inside a tile (default 9430). Y <= 0
	// means unbounded: full-tile DP, i.e. classic GACT.
	Y int32
	// Stop, when non-nil, is polled before every tile DP; returning
	// true abandons the extension at the current tile boundary, keeping
	// the transcript committed so far. Callers use it for cancellation
	// and cell budgets; nil means run to completion.
	Stop func() bool
	// TileHook, when non-nil, is invoked after every tile DP with the
	// tile's cell count and its wall-clock interval. It exists for
	// telemetry (internal/obs records per-tile spans and latency
	// histograms through it); nil — the default — costs nothing: the
	// hot loop takes no timestamps.
	TileHook func(cells int, start time.Time, dur time.Duration)
}

// DefaultConfig returns the paper's GACT-X defaults.
func DefaultConfig() Config {
	return Config{TileSize: 1920, Overlap: 128, Y: 9430}
}

// GACTConfig returns a classic-GACT configuration whose tile size is the
// largest that fits the given traceback memory at 4 bits per cell
// (Section VI-D: 2 MB -> 2048, 1 MB -> 1448, 512 KB -> 1024).
func GACTConfig(tracebackBytes int, overlap int) Config {
	cells := tracebackBytes * 2 // 4 bits per cell
	tile := 1
	for (tile+1)*(tile+1) <= cells {
		tile++
	}
	return Config{TileSize: tile, Overlap: overlap, Y: 0}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.TileSize < 2 {
		return fmt.Errorf("gact: tile size %d too small", c.TileSize)
	}
	if c.Overlap < 0 || c.Overlap >= c.TileSize {
		return fmt.Errorf("gact: overlap %d must be in [0, tile size %d)", c.Overlap, c.TileSize)
	}
	return nil
}

// Stats accumulates extension workload; Table V's "Extension tiles"
// column and Figure 10's throughput model read these.
type Stats struct {
	// Tiles is the number of tile DPs executed.
	Tiles int
	// Cells is the total DP cells computed across tiles.
	Cells int
	// MaxTileCells is the largest single-tile cell count — the traceback
	// memory high-water mark (at 4 bits per cell).
	MaxTileCells int
}

// TracebackBytes returns the traceback memory high-water mark in bytes.
func (s Stats) TracebackBytes() int { return (s.MaxTileCells + 1) / 2 }

// Extender extends anchors into full alignments. Not safe for
// concurrent use; create one per worker.
type Extender struct {
	sc  *align.Scoring
	cfg Config
	xa  *align.XDropAligner

	revT, revQ []byte
}

// NewExtender builds an extender; cfg.Y <= 0 selects classic GACT
// (unbounded in-tile DP).
func NewExtender(sc *align.Scoring, cfg Config) (*Extender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	y := cfg.Y
	if y <= 0 {
		y = 1 << 28 // unbounded: every in-tile cell stays alive
	}
	return &Extender{sc: sc, cfg: cfg, xa: align.NewXDropAligner(sc, y)}, nil
}

// Config returns the extender's configuration.
func (e *Extender) Config() Config { return e.cfg }

// Extend grows an alignment from the anchor (tAnchor, qAnchor) leftward
// and rightward (Figure 4c) and returns the stitched alignment in
// forward coordinates. The anchor is the exclusive end of the left
// extension and the inclusive start of the right extension (the Vmax
// position reported by the gapped filter). Stats are accumulated into
// stats if non-nil.
func (e *Extender) Extend(target, query []byte, tAnchor, qAnchor int, stats *Stats) align.Alignment {
	if stats == nil {
		stats = &Stats{}
	}
	// Right extension on forward sequences.
	rightOps, rdT, rdQ := e.extendDir(target[tAnchor:], query[qAnchor:], stats)

	// Left extension on reversed prefixes.
	e.revT = reverseInto(e.revT[:0], target[:tAnchor])
	e.revQ = reverseInto(e.revQ[:0], query[:qAnchor])
	leftOps, ldT, ldQ := e.extendDir(e.revT, e.revQ, stats)
	align.ReverseOps(leftOps)

	a := align.Alignment{
		TStart: tAnchor - ldT,
		TEnd:   tAnchor + rdT,
		QStart: qAnchor - ldQ,
		QEnd:   qAnchor + rdQ,
		Ops:    append(leftOps, rightOps...),
	}
	a.Score = a.Rescore(e.sc, target, query)
	return a
}

// extendDir runs the tiled extension toward increasing coordinates of
// the given (possibly reversed) sequences, starting at their origin. It
// returns the committed transcript and the distances advanced.
func (e *Extender) extendDir(target, query []byte, stats *Stats) (ops []align.EditOp, dT, dQ int) {
	ti, qi := 0, 0
	for ti < len(target) || qi < len(query) {
		if e.cfg.Stop != nil && e.cfg.Stop() {
			break
		}
		tileT := min(e.cfg.TileSize, len(target)-ti)
		tileQ := min(e.cfg.TileSize, len(query)-qi)
		if tileT == 0 && tileQ == 0 {
			break
		}
		var t0 time.Time
		if e.cfg.TileHook != nil {
			t0 = time.Now()
		}
		res := e.xa.Align(target[ti:ti+tileT], query[qi:qi+tileQ])
		if e.cfg.TileHook != nil {
			e.cfg.TileHook(res.Cells, t0, time.Since(t0))
		}
		stats.Tiles++
		stats.Cells += res.Cells
		if res.Cells > stats.MaxTileCells {
			stats.MaxTileCells = res.Cells
		}
		// Extension terminates when the tile's Vmax is not positive.
		if res.Score <= 0 {
			break
		}
		// Overlap truncation: ignore the path inside the last Overlap
		// rows/columns unless the tile was clipped by the sequence end
		// in that dimension.
		coreT, coreQ := tileT, tileQ
		if tileT == e.cfg.TileSize && ti+tileT < len(target) {
			coreT = tileT - e.cfg.Overlap
		}
		if tileQ == e.cfg.TileSize && qi+tileQ < len(query) {
			coreQ = tileQ - e.cfg.Overlap
		}
		committed, di, dj := truncatePath(res.Ops, res.TEnd, res.QEnd, coreT, coreQ)
		if di == 0 && dj == 0 {
			break // no progress: the best path never left the origin
		}
		ops = append(ops, committed...)
		ti += di
		qi += dj
		// If the tile's maximum lay strictly inside the core, the
		// alignment ended here; a further tile from this point would
		// re-discover only noise.
		if res.TEnd < coreT && res.QEnd < coreQ {
			break
		}
	}
	return ops, ti, qi
}

// truncatePath keeps the prefix of ops whose path stays within
// [0,coreT] x [0,coreQ], returning the kept prefix and its advance.
// (endI, endJ) is the full path's endpoint; if it is already inside the
// core the whole path is kept.
func truncatePath(ops []align.EditOp, endI, endJ, coreT, coreQ int) ([]align.EditOp, int, int) {
	if endI <= coreT && endJ <= coreQ {
		return ops, endI, endJ
	}
	i, j := 0, 0
	for k, op := range ops {
		ni, nj := i, j
		switch op {
		case align.OpMatch:
			ni++
			nj++
		case align.OpInsert:
			nj++
		case align.OpDelete:
			ni++
		}
		if ni > coreT || nj > coreQ {
			return ops[:k], i, j
		}
		i, j = ni, nj
	}
	return ops, i, j
}

func reverseInto(dst, src []byte) []byte {
	for i := len(src) - 1; i >= 0; i-- {
		dst = append(dst, src[i])
	}
	return dst
}
