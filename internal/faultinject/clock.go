package faultinject

import (
	"sync"
	"time"
)

// Clock abstracts the time source of supervision loops (the server's
// stuck-job watchdog, circuit-breaker cooldowns, retry backoff) so
// tests can drive them deterministically. Production code uses
// RealClock; tests install a ManualClock and advance it explicitly —
// the clock-fault counterpart of the Injector's visit rules: instead of
// perturbing where a worker fails, it perturbs when timers fire.
//
// The interface is deliberately minimal — Now, After, Sleep — because
// that is all a supervision loop needs, and every method must stay
// meaningful when time is frozen.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time
	// once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
}

// realClock delegates to package time.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// manualWaiter is one pending After/Sleep: a deadline and the channel
// to close/deliver on when the clock passes it.
type manualWaiter struct {
	at time.Time
	ch chan time.Time
}

// ManualClock is a test clock: time stands still until Advance moves
// it, and every pending timer whose deadline is reached fires during
// the Advance call, on the advancing goroutine. Combined with
// WaitForTimers — which blocks until a given number of timers are
// parked — this makes scheduler races testable as straight-line code:
// the test knows the supervision loop is parked before it moves time,
// so a "tick fires exactly between two pipeline events" scenario is a
// deterministic sequence, not a sleep-and-hope.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []manualWaiter
	parked  *sync.Cond
}

// NewManualClock returns a manual clock reading start.
func NewManualClock(start time.Time) *ManualClock {
	c := &ManualClock{now: start}
	c.parked = sync.NewCond(&c.mu)
	return c
}

// Now returns the clock's current reading.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires when the clock has been advanced
// past d. d <= 0 fires immediately.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, manualWaiter{at: c.now.Add(d), ch: ch})
	c.parked.Broadcast()
	return ch
}

// Sleep blocks until the clock has been advanced past d.
func (c *ManualClock) Sleep(d time.Duration) {
	<-c.After(d)
}

// Advance moves the clock forward by d and fires every timer whose
// deadline is now reached, in deadline order.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var fire []manualWaiter
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(now) {
			fire = append(fire, w)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// WaitForTimers blocks until at least n timers are pending (parked in
// After or Sleep). It is how a test knows a supervision loop has
// reached its select before advancing time.
func (c *ManualClock) WaitForTimers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.waiters) < n {
		c.parked.Wait()
	}
}

// Timers returns the number of pending timers.
func (c *ManualClock) Timers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
