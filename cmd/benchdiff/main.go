// Command benchdiff compares two bench2json documents — typically a
// fresh `make bench` against the committed BENCH_pipeline.json — and
// prints a per-benchmark ns/op delta table. It is a trajectory check,
// not a gate: benchmarks on shared CI runners are noisy, so the exit
// status flags only deltas past -threshold-pct, and the CI step that
// runs it is non-blocking.
//
//	make bench BENCH_OUT=new.json
//	benchdiff -old BENCH_pipeline.json -new new.json -threshold-pct 20
//
// Benchmarks are matched by (name, procs). Entries present on only one
// side are listed as added/removed and never affect the exit status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Schema  int      `json:"schema"`
	Results []result `json:"results"`
}

// deltaRow is one matched benchmark's comparison.
type deltaRow struct {
	Name     string
	OldNs    float64
	NewNs    float64
	DeltaPct float64 // positive = slower
}

// change classifies one benchmark across the two documents.
type change struct {
	Added   []string
	Removed []string
	Rows    []deltaRow
}

// key identifies a benchmark across documents.
func key(r result) string {
	if r.Procs > 0 {
		return fmt.Sprintf("%s-%d", r.Name, r.Procs)
	}
	return r.Name
}

// diff matches the two documents' results by (name, procs) and
// computes ns/op deltas, sorted worst-regression first.
func diff(oldDoc, newDoc *document) change {
	oldBy := make(map[string]result, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		oldBy[key(r)] = r
	}
	var c change
	seen := make(map[string]bool, len(newDoc.Results))
	for _, nr := range newDoc.Results {
		k := key(nr)
		seen[k] = true
		or, ok := oldBy[k]
		if !ok {
			c.Added = append(c.Added, k)
			continue
		}
		row := deltaRow{Name: k, OldNs: or.NsPerOp, NewNs: nr.NsPerOp}
		if or.NsPerOp > 0 {
			row.DeltaPct = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		}
		c.Rows = append(c.Rows, row)
	}
	for _, or := range oldDoc.Results {
		if !seen[key(or)] {
			c.Removed = append(c.Removed, key(or))
		}
	}
	sort.Slice(c.Rows, func(i, j int) bool { return c.Rows[i].DeltaPct > c.Rows[j].DeltaPct })
	sort.Strings(c.Added)
	sort.Strings(c.Removed)
	return c
}

// render prints the comparison and returns how many rows regressed
// past thresholdPct.
func render(w io.Writer, c change, thresholdPct float64) int {
	regressed := 0
	fmt.Fprintf(w, "%-40s %15s %15s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, row := range c.Rows {
		marker := ""
		if row.DeltaPct >= thresholdPct {
			marker = "  <-- regression"
			regressed++
		} else if row.DeltaPct <= -thresholdPct {
			marker = "  (improved)"
		}
		fmt.Fprintf(w, "%-40s %15.1f %15.1f %+8.1f%%%s\n",
			row.Name, row.OldNs, row.NewNs, row.DeltaPct, marker)
	}
	for _, k := range c.Added {
		fmt.Fprintf(w, "%-40s %15s %15s %9s\n", k, "-", "(new)", "")
	}
	for _, k := range c.Removed {
		fmt.Fprintf(w, "%-40s %15s %15s %9s\n", k, "(gone)", "-", "")
	}
	return regressed
}

func load(path string) (*document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, doc.Schema)
	}
	return &doc, nil
}

func main() {
	oldPath := flag.String("old", "BENCH_pipeline.json", "baseline bench2json document")
	newPath := flag.String("new", "", "fresh bench2json document to compare (required)")
	threshold := flag.Float64("threshold-pct", 15, "flag ns/op regressions at or past this percentage")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	oldDoc, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	c := diff(oldDoc, newDoc)
	if n := render(os.Stdout, c, *threshold); n > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past %.0f%%\n", n, *threshold)
		os.Exit(1)
	}
}
