package cluster

// Observability-path tests: the merged distributed trace across a
// failover, the flight-record timeline, heartbeat-federated fleet
// metrics, and the replication/ship lag gauges. Same deterministic
// harness as the chaos suite: scripted workers, manual clock.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"darwinwga/internal/checkpoint"
	"darwinwga/internal/obs"
)

// heartbeatSnap renews id's lease with a piggybacked metrics snapshot.
func (cc *chaosCluster) heartbeatSnap(t *testing.T, id string, snap *obs.WorkerSnapshot) int {
	t.Helper()
	body, _ := json.Marshal(heartbeatBody{WorkerID: id, Snapshot: snap})
	resp, err := http.Post(cc.front.URL+"/cluster/v1/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("heartbeat %s: %v", id, err)
	}
	defer resp.Body.Close()                               //nolint:errcheck
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
	return resp.StatusCode
}

// getFront GETs a coordinator path and returns status code + body.
func (cc *chaosCluster) getFront(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(cc.front.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, data
}

// mergedTraceDoc is the decode shape of GET /v1/jobs/{id}/trace.
type mergedTraceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData struct {
		TraceID string `json:"trace_id"`
		JobID   string `json:"job_id"`
	} `json:"otherData"`
}

// TestClusterTraceMergeAcrossFailover is the tentpole path: a job's
// first worker dies after the coordinator has drained some of its
// spans; the job fails over and completes on the survivor. The merged
// trace must carry both workers' spans under one trace id, on separate
// Chrome-trace processes, with the replayed attempt attributed as such.
// The flight record must tell the same story as a timeline.
func TestClusterTraceMergeAcrossFailover(t *testing.T) {
	cc := newChaosCluster(t, nil)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	w1.setSpans([]obs.Event{{Name: "span-w1", Ph: "i", Ts: 10}})
	w2.setSpans([]obs.Event{{Name: "span-w2", Ph: "i", Ts: 20}})
	flightAt := time.Unix(1700000050, 0)
	w1.setFlight([]obs.FlightEvent{{At: flightAt, Type: obs.FlightStarted, Source: "w1"}})
	w2.setFlight([]obs.FlightEvent{{At: flightAt, Type: obs.FlightStarted, Source: "w2"}})
	cc.register(t, "w1", w1)
	cc.register(t, "w2", w2)

	id := cc.submit(t)
	var first, survivor *fakeWorker
	var firstID, survivorID string
	cc.pump(t, "initial dispatch", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		st := cc.jobStatus(t, id)
		if st.Worker == nil {
			return false
		}
		firstID = st.Worker.WorkerID
		return true
	})
	first, survivor, survivorID = w1, w2, "w2"
	if firstID == "w2" {
		first, survivor, survivorID = w2, w1, "w1"
	}
	_ = first

	// The dispatch carried the trace id to the worker.
	traceID := cc.jobStatus(t, id).TraceID
	if traceID == "" {
		t.Fatal("job has no trace id")
	}
	// Give the watch loop at least one status poll so the first worker's
	// spans are drained coordinator-side before it dies.
	cc.pump(t, "first worker spans drained", func() {
		cc.heartbeat(t, firstID)
		cc.heartbeat(t, survivorID)
	}, func() bool {
		j, _ := cc.coord.getJob(id)
		snaps := j.spanSnapshot()
		return len(snaps) > 0 && len(snaps[0].Events) > 0
	})

	// First worker goes silent; lease expires; failover to the survivor.
	cc.pump(t, "failover to survivor", func() {
		cc.heartbeat(t, survivorID)
	}, func() bool {
		return survivor.submitCount() > 0
	})
	survivor.finishAll()
	cc.pump(t, "job done after failover", func() {
		cc.heartbeat(t, survivorID)
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})

	// Both workers saw the same trace header.
	if got := survivor.lastTraceID(); got != traceID {
		t.Errorf("survivor saw trace header %q, want %q", got, traceID)
	}

	code, body := cc.getFront(t, "/v1/jobs/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: HTTP %d (%s)", code, body)
	}
	var doc mergedTraceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData.TraceID != traceID || doc.OtherData.JobID != id {
		t.Errorf("otherData = %+v", doc.OtherData)
	}
	var firstPid, survivorPid int
	replayMarks, replayNames := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Name {
		case "span-" + firstID:
			firstPid = e.Pid
			if e.Args["replayed"] != nil {
				t.Errorf("first attempt's span marked replayed: %+v", e)
			}
		case "span-" + survivorID:
			survivorPid = e.Pid
			if e.Args["replayed"] != true {
				t.Errorf("replayed attempt's span lacks attribution: %+v", e)
			}
		case "replayed":
			replayMarks++
			if e.Args["worker"] != survivorID {
				t.Errorf("replayed marker names %v, want %s", e.Args["worker"], survivorID)
			}
		case "process_name":
			if strings.Contains(string(body), "[failover replay]") {
				replayNames = 1
			}
		}
	}
	if firstPid == 0 || survivorPid == 0 {
		t.Fatalf("missing per-worker spans (first pid %d, survivor pid %d):\n%s", firstPid, survivorPid, body)
	}
	if firstPid == survivorPid {
		t.Errorf("both attempts share pid %d; each assignment should be its own process", firstPid)
	}
	if replayMarks != 1 {
		t.Errorf("replayed instant events = %d, want 1", replayMarks)
	}
	if replayNames != 1 {
		t.Error("no process_name carries the failover-replay suffix")
	}

	// The flight record reads as one timeline covering the failover,
	// with the survivor's worker-side events merged in.
	code, body = cc.getFront(t, "/v1/jobs/"+id+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: HTTP %d", code)
	}
	var events struct {
		TraceID string            `json:"trace_id"`
		Events  []obs.FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatal(err)
	}
	if events.TraceID != traceID {
		t.Errorf("events trace_id = %q", events.TraceID)
	}
	seen := map[string]bool{}
	workerSourced := false
	for _, ev := range events.Events {
		seen[ev.Type] = true
		if ev.Source == survivorID {
			workerSourced = true
		}
	}
	for _, typ := range []string{
		obs.FlightAdmitted, obs.FlightDispatched, obs.FlightLeaseExpired,
		obs.FlightFailover, obs.FlightFinished,
	} {
		if !seen[typ] {
			t.Errorf("flight record missing %q: %s", typ, body)
		}
	}
	if !workerSourced {
		t.Error("flight record has no worker-sourced events")
	}
	for i := 1; i < len(events.Events); i++ {
		if events.Events[i].At.Before(events.Events[i-1].At) {
			t.Errorf("flight events out of order at %d", i)
			break
		}
	}
}

// TestClusterMetricsFederation: heartbeat-piggybacked snapshots surface
// as per-worker labeled series on GET /metrics/cluster, snapshot age
// tracks the clock, and a snapshot-less heartbeat (an agent predating
// federation) keeps the previous snapshot rather than erasing it.
func TestClusterMetricsFederation(t *testing.T) {
	cc := newChaosCluster(t, nil)
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	cc.register(t, "w1", w1)
	cc.register(t, "w2", w2)

	cc.heartbeatSnap(t, "w1", &obs.WorkerSnapshot{
		QueueDepth: 3, Running: 2, BreakersOpen: 1,
		IndexResidentBytes: 1 << 20, IndexResidentTargets: 4, IndexEvictions: 7,
		ResultCacheHits: 3, ResultCacheMisses: 1, ResultCacheBytes: 2048,
	})
	cc.heartbeatSnap(t, "w2", &obs.WorkerSnapshot{QueueDepth: 9})
	cc.clock.Advance(2 * time.Second)

	code, body := cc.getFront(t, "/metrics/cluster")
	if code != http.StatusOK {
		t.Fatalf("/metrics/cluster: HTTP %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`darwinwga_cluster_worker_queue_depth{worker="w1"} 3`,
		`darwinwga_cluster_worker_queue_depth{worker="w2"} 9`,
		`darwinwga_cluster_worker_running{worker="w1"} 2`,
		`darwinwga_cluster_worker_breakers_open{worker="w1"} 1`,
		`darwinwga_cluster_worker_index_resident_bytes{worker="w1"} 1.048576e+06`,
		`darwinwga_cluster_worker_index_resident_targets{worker="w1"} 4`,
		`darwinwga_cluster_worker_index_evictions_total{worker="w1"} 7`,
		`darwinwga_cluster_worker_result_cache_hits_total{worker="w1"} 3`,
		`darwinwga_cluster_worker_result_cache_misses_total{worker="w1"} 1`,
		`darwinwga_cluster_worker_result_cache_bytes{worker="w1"} 2048`,
		`darwinwga_cluster_worker_result_cache_hit_ratio{worker="w1"} 0.75`,
		`darwinwga_cluster_worker_snapshot_age_seconds{worker="w1"} 2`,
		"# TYPE darwinwga_cluster_worker_queue_depth gauge",
		"# TYPE darwinwga_cluster_worker_index_evictions_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics/cluster missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE darwinwga_cluster_worker_queue_depth gauge"); n != 1 {
		t.Errorf("queue_depth TYPE emitted %d times, want once", n)
	}

	// A snapshot-less renewal must not erase the stored snapshot.
	cc.heartbeat(t, "w1")
	_, body = cc.getFront(t, "/metrics/cluster")
	if !strings.Contains(string(body), `darwinwga_cluster_worker_queue_depth{worker="w1"} 3`) {
		t.Error("plain heartbeat erased the worker's snapshot")
	}
}

// TestReplicationHubFollowerLags pins the hub's follower accounting:
// lag in frames and payload bytes, zero when caught up, growing again
// on new publishes, and persisting after the follower goes away.
func TestReplicationHubFollowerLags(t *testing.T) {
	hub := newReplicationHub([]checkpoint.Record{
		{Kind: 1, Payload: []byte("aaaa")},
	})
	hub.publish(checkpoint.Record{Kind: 1, Payload: []byte("bbbbbb")})
	hub.publish(checkpoint.Record{Kind: 1, Payload: []byte("cc")})

	hub.observeFollower("standby:x", 1)
	lags := hub.followerLags()
	if lag := lags["standby:x"]; lag.frames != 2 || lag.bytes != 8 {
		t.Fatalf("lag after 1/3 = %+v, want 2 frames / 8 bytes", lag)
	}

	hub.observeFollower("standby:x", 3)
	if lag := hub.followerLags()["standby:x"]; lag.frames != 0 || lag.bytes != 0 {
		t.Fatalf("caught-up lag = %+v", lag)
	}

	// The follower disconnects (no more observes); the leader keeps
	// journaling. Its entry persists and the lag grows — the dead-standby
	// alert signal.
	hub.publish(checkpoint.Record{Kind: 1, Payload: []byte("ddd")})
	if lag := hub.followerLags()["standby:x"]; lag.frames != 1 || lag.bytes != 3 {
		t.Fatalf("post-disconnect lag = %+v, want 1 frame / 3 bytes", lag)
	}
}

// TestStandbyReplicationLagMetrics drives a real leader+standby pair:
// while the standby tails, the leader reports it caught up; once the
// standby stops and the leader keeps journaling, the leader's
// /metrics/cluster shows a nonzero replication-lag gauge for it. The
// standby's own /metrics serves its records/lag gauges pre-promotion.
func TestStandbyReplicationLagMetrics(t *testing.T) {
	leaderDir, sbDir := t.TempDir(), t.TempDir()
	cc := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = leaderDir })
	sb, _ := newStandbyFor(t, cc, sbDir, time.Hour)
	defer sb.Shutdown(context.Background()) //nolint:errcheck

	ctx, cancel := context.WithCancel(context.Background())
	go sb.Run(ctx) //nolint:errcheck

	w := newFakeWorker(t)
	cc.register(t, "w", w)
	cc.submit(t)
	waitReal(t, "standby catches up", func() bool {
		return sb.Records() == cc.coord.hub.total() && sb.Records() > 0
	})
	if sb.LagFrames() != 0 {
		t.Errorf("caught-up standby LagFrames = %d", sb.LagFrames())
	}

	// The standby serves its own gauges while replicating.
	rec := newStandbyMetricsScrape(t, sb)
	for _, want := range []string{
		"# TYPE darwinwga_standby_records gauge",
		"# TYPE darwinwga_standby_replication_lag_frames gauge",
		"darwinwga_standby_replication_lag_frames 0",
	} {
		if !strings.Contains(rec, want) {
			t.Errorf("standby /metrics missing %q:\n%s", want, rec)
		}
	}

	// Leader-side view: the follower registered itself under a stable id
	// and shows as caught up.
	_, body := cc.getFront(t, "/metrics/cluster")
	caughtUp := `darwinwga_standby_replication_lag_frames{standby="standby:` + filepathBase(sbDir) + `"} 0`
	if !strings.Contains(string(body), caughtUp) {
		t.Errorf("/metrics/cluster missing %q:\n%s", caughtUp, body)
	}

	// Standby dies; leader keeps journaling. Its lag entry persists and
	// goes nonzero.
	cancel()
	sb.Shutdown(context.Background()) //nolint:errcheck
	before := cc.coord.hub.followerLags()["standby:"+filepathBase(sbDir)]
	cc.submit(t)
	waitReal(t, "leader sees the dead standby falling behind", func() bool {
		lag := cc.coord.hub.followerLags()["standby:"+filepathBase(sbDir)]
		return lag.frames > before.frames
	})
	_, body = cc.getFront(t, "/metrics/cluster")
	text := string(body)
	prefix := `darwinwga_standby_replication_lag_frames{standby="standby:` + filepathBase(sbDir) + `"} `
	var got string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			got = strings.TrimPrefix(line, prefix)
		}
	}
	if got == "" || got == "0" {
		t.Errorf("dead standby lag gauge = %q, want nonzero:\n%s", got, text)
	}
}

// newStandbyMetricsScrape GETs the standby's pre-promotion /metrics.
func newStandbyMetricsScrape(t *testing.T, sb *Standby) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &responseBuffer{header: http.Header{}}
	sb.Handler().ServeHTTP(rec, req)
	return rec.body.String()
}

// responseBuffer is a minimal ResponseWriter (httptest.NewRecorder
// works too; this avoids importing it into the non-test-only helpers).
type responseBuffer struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (r *responseBuffer) Header() http.Header         { return r.header }
func (r *responseBuffer) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *responseBuffer) WriteHeader(code int)        { r.code = code }

// filepathBase avoids importing path/filepath just for one call.
func filepathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// TestShipLagMetric: a shipped-segment PUT stamps the job; the gauge
// tracks the manual clock until finalize clears it.
func TestShipLagMetric(t *testing.T) {
	cc := newChaosCluster(t, nil)
	cc.coord.stampShip("cj-ship-1")
	cc.clock.Advance(3 * time.Second)

	var buf bytes.Buffer
	cc.coord.writeClusterMetrics(&buf)
	want := `darwinwga_cluster_job_ship_lag_seconds{job_id="cj-ship-1"} 3`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("metrics missing %q:\n%s", want, buf.String())
	}

	cc.coord.clearShipStamp("cj-ship-1")
	buf.Reset()
	cc.coord.writeClusterMetrics(&buf)
	if strings.Contains(buf.String(), "darwinwga_cluster_job_ship_lag_seconds") {
		t.Errorf("ship lag survives finalize:\n%s", buf.String())
	}
}
