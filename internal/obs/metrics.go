package obs

import "time"

// PipelineMetrics is a Recorder that folds pipeline events into a
// Registry under the standard darwinwga_* metric names. One instance
// is shared by every concurrent Align call reporting into the same
// registry (the serving layer's arrangement); all updates are atomic.
type PipelineMetrics struct {
	aligns       *Counter
	alignSeconds *Histogram

	seedHits   *Counter
	candidates *Counter

	filterTilesPass *Counter
	filterTilesFail *Counter
	filterCells     *Counter
	filterTileSecs  *Histogram

	anchorsExtended *Counter
	extTiles        *Counter
	extCells        *Counter
	extTileSecs     *Histogram
	cellsPerAnchor  *Histogram
	hsps            *Counter
}

// NewPipelineMetrics registers the pipeline metric set on reg.
func NewPipelineMetrics(reg *Registry) *PipelineMetrics {
	latency := ExpBuckets(10e-6, 4, 10) // 10µs .. ~2.6s
	cells := ExpBuckets(1024, 4, 12)    // 1Ki .. ~4Mi cells and beyond
	seconds := ExpBuckets(0.001, 4, 12) // 1ms .. ~70min
	return &PipelineMetrics{
		aligns:       reg.Counter("darwinwga_core_aligns_total", "Align calls started"),
		alignSeconds: reg.Histogram("darwinwga_core_align_seconds", "end-to-end Align latency", seconds),

		seedHits:   reg.Counter("darwinwga_dsoft_seed_hits_total", "raw (target,query) seed hits"),
		candidates: reg.Counter("darwinwga_dsoft_candidates_total", "D-SOFT candidate anchors emitted"),

		filterTilesPass: reg.Counter(`darwinwga_filter_tiles_total{verdict="pass"}`, "filter invocations by verdict against Hf"),
		filterTilesFail: reg.Counter(`darwinwga_filter_tiles_total{verdict="fail"}`, "filter invocations by verdict against Hf"),
		filterCells:     reg.Counter("darwinwga_filter_cells_total", "DP cells computed by the filter stage"),
		filterTileSecs:  reg.Histogram("darwinwga_filter_tile_seconds", "per-tile filter latency", latency),

		anchorsExtended: reg.Counter("darwinwga_gact_anchors_total", "anchors extended by GACT-X"),
		extTiles:        reg.Counter("darwinwga_gact_tiles_total", "GACT-X tile DPs executed"),
		extCells:        reg.Counter("darwinwga_gact_cells_total", "DP cells computed by GACT-X extension"),
		extTileSecs:     reg.Histogram("darwinwga_gact_tile_seconds", "per-tile GACT-X latency", latency),
		cellsPerAnchor:  reg.Histogram("darwinwga_gact_cells_per_anchor", "extension DP cells spent per anchor", cells),
		hsps:            reg.Counter("darwinwga_core_hsps_total", "final alignments produced"),
	}
}

// AlignBegin implements Recorder.
func (p *PipelineMetrics) AlignBegin(qLen int) { p.aligns.Inc() }

// AlignEnd implements Recorder.
func (p *PipelineMetrics) AlignEnd(hsps int, dur time.Duration) {
	p.hsps.Add(int64(hsps))
	p.alignSeconds.Observe(dur.Seconds())
}

// StrandBegin implements Recorder.
func (p *PipelineMetrics) StrandBegin(strand byte) {}

// StrandEnd implements Recorder.
func (p *PipelineMetrics) StrandEnd(strand byte) {}

// StageBegin implements Recorder.
func (p *PipelineMetrics) StageBegin(strand byte, stage Stage) {}

// StageEnd implements Recorder.
func (p *PipelineMetrics) StageEnd(strand byte, stage Stage) {}

// SeedShard implements Recorder.
func (p *PipelineMetrics) SeedShard(strand byte, shard int, seedHits, candidates int64, start time.Time, dur time.Duration) {
	p.seedHits.Add(seedHits)
	p.candidates.Add(candidates)
}

// FilterTile implements Recorder.
func (p *PipelineMetrics) FilterTile(strand byte, shard int, pass bool, cells int64, start time.Time, dur time.Duration) {
	if pass {
		p.filterTilesPass.Inc()
	} else {
		p.filterTilesFail.Inc()
	}
	p.filterCells.Add(cells)
	p.filterTileSecs.Observe(dur.Seconds())
}

// AnchorBegin implements Recorder.
func (p *PipelineMetrics) AnchorBegin(strand byte, anchor int) {}

// AnchorSkipped implements Recorder.
func (p *PipelineMetrics) AnchorSkipped(strand byte, anchor int) {}

// AnchorEnd implements Recorder.
func (p *PipelineMetrics) AnchorEnd(strand byte, anchor int, tiles, cells int64, hsp bool) {
	p.anchorsExtended.Inc()
	p.cellsPerAnchor.Observe(float64(cells))
}

// ExtensionTile implements Recorder.
func (p *PipelineMetrics) ExtensionTile(strand byte, anchor int, cells int64, start time.Time, dur time.Duration) {
	p.extTiles.Inc()
	p.extCells.Add(cells)
	p.extTileSecs.Observe(dur.Seconds())
}

var _ Recorder = (*PipelineMetrics)(nil)
