package truth

import (
	"testing"

	"darwinwga/internal/core"
	"darwinwga/internal/evolve"
)

func genPair(t *testing.T) *evolve.Pair {
	t.Helper()
	p, err := evolve.Generate(evolve.Config{
		Name: "t", TargetName: "tgt", QueryName: "qry",
		Length: 40000, SubRate: 0.10, IndelRate: 0.01,
		Inversions: 0, Duplications: 0, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineRecallOnEasyPair(t *testing.T) {
	p := genPair(t)
	cfg := core.DefaultConfig()
	cfg.BothStrands = false
	a, err := core.NewAligner(p.TargetSeq(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Align(p.QuerySeq())
	if err != nil {
		t.Fatal(err)
	}
	m := Score(p, res.HSPs, 3)
	if m.TrueOrthologousBases == 0 {
		t.Fatal("ground truth empty")
	}
	if r := m.Recall(); r < 0.5 {
		t.Errorf("recall = %.3f on an easy pair; expected most orthologous bases recovered", r)
	}
	// Precision here is ORTHOLOGY precision: paralogous alignments
	// (repeat copy vs repeat copy) are genuine alignments but disagree
	// with the orthology map, so ~0.8 is the expected regime for a
	// repeat-bearing genome, not a defect.
	if pr := m.Precision(); pr < 0.7 {
		t.Errorf("precision = %.3f; even with paralogs this is too low", pr)
	}
	if m.CorrectBases > m.NearBases {
		t.Error("exact matches exceed within-slop matches")
	}
	if m.NearBases > m.AlignedBases {
		t.Error("near matches exceed aligned bases")
	}
}

func TestSlopWidensAgreement(t *testing.T) {
	p := genPair(t)
	cfg := core.DefaultConfig()
	cfg.BothStrands = false
	a, _ := core.NewAligner(p.TargetSeq(), cfg)
	res, _ := a.Align(p.QuerySeq())
	exact := Score(p, res.HSPs, 0)
	loose := Score(p, res.HSPs, 10)
	if loose.NearBases < exact.NearBases {
		t.Errorf("slop 10 agreement %d below exact %d", loose.NearBases, exact.NearBases)
	}
	if exact.CorrectBases != exact.NearBases {
		t.Error("with slop 0, correct and near must coincide")
	}
}

func TestEmptyHSPs(t *testing.T) {
	p := genPair(t)
	m := Score(p, nil, 0)
	if m.AlignedBases != 0 || m.Recall() != 0 || m.Precision() != 0 {
		t.Errorf("empty HSPs: %+v", m)
	}
}

func TestCompareModes(t *testing.T) {
	p := genPair(t)
	cfg := core.DefaultConfig()
	cfg.BothStrands = false
	a, _ := core.NewAligner(p.TargetSeq(), cfg)
	res, _ := a.Align(p.QuerySeq())
	ma, mb := CompareModes(p, res.HSPs, nil, 3)
	if ma.AlignedBases == 0 || mb.AlignedBases != 0 {
		t.Errorf("CompareModes: %+v %+v", ma, mb)
	}
}
