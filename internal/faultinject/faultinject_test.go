package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestRuleMatching(t *testing.T) {
	in := New(
		Rule{Stage: "filter", Shard: 2, Hit: 1, Action: Cancel, Cancel: func() {}},
		Rule{Stage: "seeding", Shard: -1, Hit: 3, Action: Cancel, Cancel: func() {}},
	)
	hook := in.Hook()
	hook("filter", 0)  // wrong shard
	hook("seeding", 0) // seen 1
	hook("filter", 2)  // fires rule 0
	hook("seeding", 1) // seen 2
	hook("seeding", 5) // seen 3 -> fires rule 1
	hook("seeding", 6) // past Hit, no fire

	fired := in.Fired()
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2: %+v", len(fired), fired)
	}
	if fired[0] != (Event{Stage: "filter", Shard: 2, Action: Cancel}) {
		t.Errorf("event 0 = %+v", fired[0])
	}
	if fired[1] != (Event{Stage: "seeding", Shard: 5, Action: Cancel}) {
		t.Errorf("event 1 = %+v", fired[1])
	}
}

func TestEveryVisitRule(t *testing.T) {
	in := New(Rule{Shard: -1, Action: Delay, Delay: 0})
	hook := in.Hook()
	for i := 0; i < 5; i++ {
		hook("extension", i)
	}
	if in.FiredCount() != 5 {
		t.Errorf("wildcard every-visit rule fired %d times, want 5", in.FiredCount())
	}
}

func TestPanicAction(t *testing.T) {
	in := New(Rule{Stage: "filter", Shard: -1, Hit: 1, Action: Panic, Msg: "boom"})
	hook := in.Hook()
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	hook("filter", 0)
	t.Error("panic action did not panic")
}

func TestCancelAction(t *testing.T) {
	called := false
	in := New(Rule{Shard: -1, Hit: 2, Action: Cancel, Cancel: func() { called = true }})
	hook := in.Hook()
	hook("seeding", 0)
	if called {
		t.Error("cancel fired on first visit with Hit=2")
	}
	hook("seeding", 1)
	if !called {
		t.Error("cancel did not fire on second visit")
	}
}

func TestDelayAction(t *testing.T) {
	in := New(Rule{Shard: -1, Action: Delay, Delay: 10 * time.Millisecond})
	start := time.Now()
	in.Hook()("filter", 0)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("delay action slept %v, want >= 10ms", elapsed)
	}
}

func TestSeededDeterminism(t *testing.T) {
	place := func(seed int64) int {
		in := Seeded(seed, "filter", 100, Rule{Action: Cancel, Cancel: func() {}})
		hook := in.Hook()
		for i := 1; i <= 100; i++ {
			hook("filter", i)
			if in.FiredCount() > 0 {
				return i
			}
		}
		return 0
	}
	if a, b := place(42), place(42); a != b || a == 0 {
		t.Errorf("same seed placed fault at visits %d and %d", a, b)
	}
	seen := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		seen[place(seed)] = true
	}
	if len(seen) < 5 {
		t.Errorf("20 seeds produced only %d distinct placements", len(seen))
	}
}

func TestConcurrentVisits(t *testing.T) {
	// The hook is called from pipeline worker goroutines; hammer it
	// under -race.
	in := New(Rule{Shard: -1, Hit: 50, Action: Cancel, Cancel: func() {}})
	hook := in.Hook()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				hook("filter", w)
			}
		}(w)
	}
	wg.Wait()
	if in.FiredCount() != 1 {
		t.Errorf("Hit rule fired %d times under concurrency, want 1", in.FiredCount())
	}
}
