package server

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"darwinwga/internal/core"
	"darwinwga/internal/faultinject"
	"darwinwga/internal/genome"
	"darwinwga/internal/obs"
)

// Config parameterizes a Server. The zero value is usable: defaults
// are applied by New.
type Config struct {
	// Addr is the listen address for ListenAndServe (default
	// "127.0.0.1:8053"). Embedders that mount Handler themselves can
	// ignore it.
	Addr string
	// Pipeline is the base alignment configuration jobs inherit;
	// per-job parameters override the per-call knobs. The zero value
	// means core.DefaultConfig(). Its SeedPattern/SeedMaxFreq shape
	// every target index built by this server.
	Pipeline core.Config
	// JobWorkers is the number of jobs aligned concurrently
	// (default 2). Each job additionally parallelizes internally per
	// Pipeline.Workers.
	JobWorkers int
	// QueueDepth bounds the submission queue (default 16); a full
	// queue answers 429 with Retry-After.
	QueueDepth int
	// MaxInFlightPerClient caps one client's queued+running jobs
	// (default 8; negative = unlimited). Exceeding it answers 429.
	MaxInFlightPerClient int
	// MaxQueryBases rejects oversized queries up front with 413
	// (default 64 MiB of bases).
	MaxQueryBases int
	// MaxDeadline clamps (and, when a job asks for none, imposes) the
	// per-job soft deadline. 0 = no cap.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429 responses (default 2s).
	RetryAfter time.Duration
	// DrainGrace bounds how long Shutdown lets running jobs finish
	// before cancelling them (default 30s).
	DrainGrace time.Duration
	// RetainJobs bounds how many finished jobs (and their spooled MAF)
	// stay queryable (default 256).
	RetainJobs int
	// CheckpointRoot, when set, gives each job a crash-safe journal in
	// CheckpointRoot/<job-id> (see core.Config.CheckpointDir). Combined
	// with JournalDir it is what makes a recovered mid-run job resume
	// instead of restart.
	CheckpointRoot string
	// JournalDir, when set, enables the durable job store: every job
	// lifecycle transition is fsynced to a WAL there (plus per-job
	// query/MAF artifacts), and New replays it on startup — re-queueing
	// unfinished jobs and restoring finished ones. Empty = in-memory
	// only (jobs are lost on restart).
	JournalDir string
	// StallWindow is how long a running job may go without any pipeline
	// progress (telemetry events) before the watchdog cancels it for
	// retry (default 2m; negative = watchdog disabled).
	StallWindow time.Duration
	// StallTick is the watchdog sweep interval (default StallWindow/4).
	StallTick time.Duration
	// StallRetries is how many times a stalled job is re-run before it
	// is failed (default 1; negative = no retries).
	StallRetries int
	// StallRetryDelay is the pause before re-running a stalled job
	// (default 1s).
	StallRetryDelay time.Duration
	// BreakerThreshold trips a target's circuit breaker after this many
	// consecutive job failures (default 5; negative = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects submissions
	// before admitting a probe job (default 30s).
	BreakerCooldown time.Duration
	// MemoryHighWater, when > 0, rejects submissions whose estimated
	// footprint would push the heap past this many bytes: oversize jobs
	// get 413, transient pressure gets 429. 0 = disabled.
	MemoryHighWater int64
	// IndexDir, when set, is scanned for serialized D-SOFT index files
	// (<IndexDir>/<target name>.dwx, written by `darwin-wga index
	// build`): a target whose file matches its content fingerprint and
	// the Pipeline seed parameters is loaded near-instantly instead of
	// rebuilt, and reloads after eviction come from the file too.
	IndexDir string
	// IndexBudget caps the aggregate resident bytes of target indexes;
	// past it, the least-recently-used idle (unpinned) indexes are
	// evicted and transparently reloaded on next use. 0 derives the
	// budget from MemoryHighWater (half of it) so eviction engages
	// against the same watermark admission control uses; negative
	// disables eviction.
	IndexBudget int64
	// ResultCacheBytes bounds the finished-MAF result cache, keyed by
	// (target fingerprint, query fingerprint, config fingerprint);
	// repeated identical submissions are served the artifact without a
	// pipeline run. 0 = disabled.
	ResultCacheBytes int64
	// ReadHeaderTimeout/ReadTimeout/IdleTimeout harden the HTTP server
	// against slow-client resource pinning (defaults 10s / 5m / 2m;
	// negative = disabled). The write timeout stays unset because MAF
	// streaming responses legitimately run for the life of a job.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	// Clock drives the watchdog, breaker cooldowns, retry backoff, and
	// job timestamps (default: the wall clock). The chaos tests install
	// a faultinject.ManualClock here.
	Clock faultinject.Clock
	// Log receives structured operational messages: job lifecycle
	// transitions at Info, admission rejections at Warn, each carrying
	// job_id/client attributes (default: discard).
	Log *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's handler. Off by default: the profiling endpoints expose
	// internals and cost CPU while profiling, so they are opt-in.
	EnablePprof bool
	// ShipInterval is how often a running job's checkpoint-journal
	// segments are shipped to its coordinator's artifact store, for
	// jobs submitted with a journal_ship URL (default 2s). Requires
	// CheckpointRoot.
	ShipInterval time.Duration
	// TraceEventCap bounds each job's pipeline-span buffer, served at
	// GET /v1/jobs/{id}/trace (default 4096 events; negative disables
	// per-job tracing — jobs then run with a nil tracer at zero cost).
	// Events past the cap are counted as dropped, never retained.
	TraceEventCap int
	// ShardFaults, when non-nil, injects failures into POST /v1/shards
	// work-unit executions by (seq, strand) — the chaos-test seam for
	// shard-level retry exhaustion and failover. Nil injects nothing.
	ShardFaults *faultinject.ShardFaults
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8053"
	}
	if c.Pipeline.SeedPattern == "" {
		c.Pipeline = core.DefaultConfig()
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxInFlightPerClient == 0 {
		c.MaxInFlightPerClient = 8
	}
	if c.MaxInFlightPerClient < 0 {
		c.MaxInFlightPerClient = 0 // unlimited
	}
	if c.MaxQueryBases <= 0 {
		c.MaxQueryBases = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 30 * time.Second
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	switch {
	case c.StallWindow == 0:
		c.StallWindow = 2 * time.Minute
	case c.StallWindow < 0:
		c.StallWindow = 0 // watchdog disabled
	}
	if c.StallTick <= 0 {
		c.StallTick = c.StallWindow / 4
	}
	switch {
	case c.StallRetries == 0:
		c.StallRetries = 1
	case c.StallRetries < 0:
		c.StallRetries = 0
	}
	if c.StallRetryDelay == 0 {
		c.StallRetryDelay = time.Second
	}
	switch {
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 5
	case c.BreakerThreshold < 0:
		c.BreakerThreshold = 0 // breaker disabled
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	switch {
	case c.ReadHeaderTimeout == 0:
		c.ReadHeaderTimeout = 10 * time.Second
	case c.ReadHeaderTimeout < 0:
		c.ReadHeaderTimeout = 0
	}
	switch {
	case c.ReadTimeout == 0:
		c.ReadTimeout = 5 * time.Minute
	case c.ReadTimeout < 0:
		c.ReadTimeout = 0
	}
	switch {
	case c.IdleTimeout == 0:
		c.IdleTimeout = 2 * time.Minute
	case c.IdleTimeout < 0:
		c.IdleTimeout = 0
	}
	if c.ShipInterval <= 0 {
		c.ShipInterval = 2 * time.Second
	}
	switch {
	case c.TraceEventCap == 0:
		c.TraceEventCap = 4096
	case c.TraceEventCap < 0:
		c.TraceEventCap = 0 // per-job tracing disabled
	}
	switch {
	case c.IndexBudget == 0 && c.MemoryHighWater > 0:
		c.IndexBudget = c.MemoryHighWater / 2
	case c.IndexBudget < 0:
		c.IndexBudget = 0 // eviction disabled
	}
	if c.ResultCacheBytes < 0 {
		c.ResultCacheBytes = 0
	}
	if c.Clock == nil {
		c.Clock = faultinject.RealClock()
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the embedded alignment service: registry + job manager +
// HTTP API. Construct with New, register targets, then either serve
// the Handler yourself or call ListenAndServe; Shutdown drains.
type Server struct {
	cfg     Config
	reg     *Registry
	jobs    *Manager
	metrics *obs.Registry
	handler http.Handler
	started time.Time
	version string
	log     *slog.Logger

	// clusterEpoch is the high-water fencing epoch observed from any
	// coordinator (via the agent's lease responses or request headers).
	// Requests carrying a lower epoch are rejected 409 — the worker-side
	// half of fenced leader election.
	clusterEpoch      atomic.Uint64
	staleEpochRejects *obs.Counter

	// Shard work-unit serving outcomes (POST /v1/shards).
	shardUnitsServed *obs.Counter
	shardUnitsFailed *obs.Counter

	mu       sync.Mutex
	httpSrv  *http.Server
	listener net.Listener
}

// ObserveClusterEpoch raises the worker's high-water cluster epoch.
// Lower values are ignored: epochs only move forward.
func (s *Server) ObserveClusterEpoch(e uint64) {
	for {
		cur := s.clusterEpoch.Load()
		if e <= cur || s.clusterEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// ClusterEpoch returns the highest cluster epoch this worker has seen.
func (s *Server) ClusterEpoch() uint64 { return s.clusterEpoch.Load() }

// New builds a server, replays the job journal (when JournalDir is
// set), and starts its job workers — recovered unfinished jobs are
// already queued when New returns.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := NewRegistry()
	metrics := obs.NewRegistry()
	reg.indexDir = cfg.IndexDir
	reg.budget = cfg.IndexBudget
	reg.log = cfg.Log
	reg.metrics = indexMetrics{
		loadsFile:   metrics.Counter(`darwinwga_index_loads_total{source="file"}`, "target index loads by source"),
		loadsBuild:  metrics.Counter(`darwinwga_index_loads_total{source="build"}`, "target index loads by source"),
		loadSeconds: metrics.Histogram("darwinwga_index_load_seconds", "wall-clock of target index loads (file) and builds", obs.ExpBuckets(0.0001, 4, 12)),
		evictions:   metrics.Counter("darwinwga_index_evictions_total", "idle target indexes evicted against the index budget"),
	}
	var store *jobStore
	var recovered []recoveredJob
	if cfg.JournalDir != "" {
		var err error
		store, recovered, err = openJobStore(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
	}
	brk := newBreaker(cfg.Clock, cfg.BreakerThreshold, cfg.BreakerCooldown, metrics)
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		jobs:    newManager(reg, metrics, cfg, store, brk, recovered),
		metrics: metrics,
		started: time.Now(),
		log:     cfg.Log,
	}
	s.staleEpochRejects = metrics.Counter("darwinwga_cluster_stale_epoch_rejections_total",
		"requests rejected for carrying a stale cluster epoch")
	s.shardUnitsServed = metrics.Counter(`darwinwga_server_shard_units_total{outcome="served"}`,
		"shard work units executed via POST /v1/shards, by outcome")
	s.shardUnitsFailed = metrics.Counter(`darwinwga_server_shard_units_total{outcome="failed"}`,
		"shard work units executed via POST /v1/shards, by outcome")
	s.version = obs.RegisterBuildInfo(metrics)
	s.registerGauges()
	s.handler = s.epochGate(s.buildHandler())
	s.jobs.start(cfg.JobWorkers)
	return s, nil
}

// ClusterEpochHeader is the request header a coordinator stamps its
// fencing epoch into. The cluster package re-exports it; it lives here
// because the worker server enforces it.
const ClusterEpochHeader = "X-Darwinwga-Cluster-Epoch"

// TraceHeader is the request header carrying a job's distributed trace
// id. A dispatching coordinator stamps it on every POST /v1/jobs so the
// worker's pipeline spans and flight events tag themselves with the
// cluster-wide id; the submit body's trace_id field carries the same
// value (the header wins when both are set).
const TraceHeader = "X-Darwinwga-Trace"

// epochGate rejects requests from fenced (stale-epoch) coordinators.
// Requests without the header — standalone clients, health checks — are
// never gated. The response echoes the worker's current epoch in the
// same header so the stale coordinator can tell why it was refused.
func (s *Server) epochGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(ClusterEpochHeader); v != "" {
			e, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad %s header %q", ClusterEpochHeader, v)
				return
			}
			if cur := s.clusterEpoch.Load(); e < cur {
				s.staleEpochRejects.Inc()
				s.log.Warn("rejecting request from fenced coordinator",
					"request_epoch", e, "cluster_epoch", cur, "path", r.URL.Path)
				w.Header().Set(ClusterEpochHeader, strconv.FormatUint(cur, 10))
				writeError(w, http.StatusConflict, "stale cluster epoch %d (current %d)", e, cur)
				return
			}
			s.ObserveClusterEpoch(e)
		}
		next.ServeHTTP(w, r)
	})
}

// registerGauges adds the scrape-time gauges: queue occupancy, per-state
// job counts, target registry size, uptime.
func (s *Server) registerGauges() {
	s.metrics.GaugeFunc("darwinwga_server_queue_depth", "jobs waiting for a worker",
		func() float64 { return float64(s.jobs.QueueDepth()) })
	s.metrics.GaugeFunc("darwinwga_server_queue_capacity", "submission queue capacity",
		func() float64 { return float64(cap(s.jobs.queue)) })
	s.metrics.GaugeFunc("darwinwga_server_targets", "registered target assemblies",
		func() float64 { return float64(s.reg.Len()) })
	s.metrics.GaugeFunc("darwinwga_server_uptime_seconds", "seconds since the server started",
		func() float64 { return time.Since(s.started).Seconds() })
	s.metrics.GaugeFunc("darwinwga_server_draining", "1 while the server is shutting down",
		func() float64 {
			if s.jobs.Draining() {
				return 1
			}
			return 0
		})
	s.metrics.GaugeFunc("darwinwga_index_resident_bytes", "aggregate footprint of resident target indexes",
		func() float64 { return float64(s.reg.ResidentIndexBytes()) })
	s.metrics.GaugeFunc("darwinwga_index_resident_targets", "targets whose index is currently in memory",
		func() float64 { return float64(s.reg.ResidentTargets()) })
	s.metrics.GaugeFunc("darwinwga_result_cache_bytes", "bytes of finished MAF artifacts held by the result cache",
		func() float64 { return float64(s.jobs.rcache.bytesUsed()) })
	s.metrics.GaugeFunc("darwinwga_result_cache_entries", "finished MAF artifacts held by the result cache",
		func() float64 { return float64(s.jobs.rcache.count()) })
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled} {
		st := st
		s.metrics.GaugeFunc(`darwinwga_jobs_state{state="`+string(st)+`"}`, "retained jobs by lifecycle state",
			func() float64 { return float64(s.jobs.countState(st)) })
	}
}

// Registry exposes the target registry (e.g. for startup registration).
func (s *Server) Registry() *Registry { return s.reg }

// Jobs exposes the job manager (e.g. for tests and embedders).
func (s *Server) Jobs() *Manager { return s.jobs }

// Metrics exposes the server's metrics registry, so embedders can add
// their own series or publish it via expvar.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Version returns the build version published by the
// darwinwga_build_info gauge.
func (s *Server) Version() string { return s.version }

// Snapshot assembles the compact fleet-metrics snapshot a cluster agent
// piggybacks on heartbeat renewals — the per-worker series
// GET /metrics/cluster federates without the coordinator scraping every
// worker's full /metrics.
func (s *Server) Snapshot() obs.WorkerSnapshot {
	return obs.WorkerSnapshot{
		QueueDepth:           s.jobs.QueueDepth(),
		Running:              int(s.jobs.Running.Value()),
		BreakersOpen:         s.jobs.brk.openCount(),
		IndexResidentBytes:   s.reg.ResidentIndexBytes(),
		IndexResidentTargets: s.reg.ResidentTargets(),
		IndexEvictions:       s.reg.metrics.evictions.Value(),
		ResultCacheHits:      s.jobs.rcache.metrics.hits.Value(),
		ResultCacheMisses:    s.jobs.rcache.metrics.misses.Value(),
		ResultCacheBytes:     s.jobs.rcache.bytesUsed(),
	}
}

// RegisterTarget loads one target assembly under the server's pipeline
// configuration, building its seed index once.
func (s *Server) RegisterTarget(name string, asm *genome.Assembly) (*Target, error) {
	t, err := s.reg.Register(name, asm, s.cfg.Pipeline)
	if err == nil {
		source := "build"
		if t.IndexFromFile() {
			source = "file"
		}
		s.log.Info("registered target", "target", t.Name,
			"seqs", t.NumSeqs, "bases", len(t.Bases),
			"index_bytes", t.IndexBytes(), "index_source", source)
		s.jobs.TargetRegistered(t.Name)
	}
	return t, err
}

// Handler returns the HTTP API, for embedding under another mux or an
// httptest server.
func (s *Server) Handler() http.Handler { return s.handler }

// Addr returns the bound listen address once ListenAndServe has
// started ("" before).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// ListenAndServe binds cfg.Addr and serves until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves the API on ln until Shutdown. The server is hardened
// against slow clients: header, read, and idle timeouts bound how long
// a connection can pin a goroutine without making progress (request
// bodies are additionally capped by MaxBytesReader in the handlers).
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	s.mu.Lock()
	s.httpSrv = srv
	s.listener = ln
	s.mu.Unlock()
	s.log.Info("serving", "addr", ln.Addr().String(), "version", s.version)
	return srv.Serve(ln)
}

// Shutdown drains the server: submissions are rejected immediately,
// queued jobs are cancelled, running jobs get cfg.DrainGrace (bounded
// additionally by ctx) to finish — their per-record-fsynced checkpoint
// journals, when enabled, are already durable — and then the HTTP
// listener closes once in-flight responses (including MAF streams of
// the drained jobs) complete.
func (s *Server) Shutdown(ctx context.Context) error {
	grace, cancel := context.WithTimeout(ctx, s.cfg.DrainGrace)
	defer cancel()
	drainErr := s.jobs.Drain(grace)
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			s.jobs.store.close()
			return err
		}
	}
	// The drain has finished every worker, so no more journal appends:
	// the store can seal its segment.
	s.jobs.store.close()
	return drainErr
}
