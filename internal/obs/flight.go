package obs

import (
	"sync"
	"time"
)

// Flight-recorder event types. The set mirrors the lifecycle
// transitions a job can take across the cluster: both the coordinator
// and the worker record into per-job rings under these names, so a
// merged event stream reads uniformly.
const (
	FlightAdmitted     = "admitted"      // job accepted into the queue
	FlightDispatched   = "dispatched"    // coordinator routed the job to a worker
	FlightStarted      = "started"       // worker began the pipeline attempt
	FlightLeaseExpired = "lease-expired" // the assigned worker's lease ran out
	FlightFailover     = "failover"      // job re-dispatched after losing its worker
	FlightBreakerTrip  = "breaker-trip"  // a circuit breaker opened on this job's failure
	FlightEpochFence   = "epoch-fence"   // a stale-epoch 409 fenced a dispatch
	FlightCacheHit     = "cache-hit"     // served from the result cache, no pipeline run
	FlightIndexReload  = "index-reload"  // target index loaded/rebuilt for this attempt
	FlightIndexEvicted = "index-evicted" // target index evicted while the job waited
	FlightStallRetry   = "stall-retry"   // watchdog cancelled a stalled attempt; retrying
	FlightParked       = "parked"        // no live replica; waiting for membership
	FlightFinished     = "finished"      // terminal state reached

	// Per-shard lifecycle events of the scatter/gather dispatch plane.
	// One event per work-unit transition, so /v1/jobs/{id}/events can
	// explain exactly which shard a slow job is stuck on.
	FlightShardDispatched = "shard-dispatched"  // work unit sent to a worker
	FlightShardRetried    = "shard-retried"     // unit re-dispatched after a failed attempt
	FlightShardHedged     = "shard-hedged"      // straggling unit speculatively duplicated
	FlightShardFailedOver = "shard-failed-over" // unit moved off a lost worker
	FlightShardFailed     = "shard-failed"      // unit dropped after exhausting retries
	FlightShardMerged     = "shard-merged"      // unit's frames accepted into the merge
)

// FlightEvent is one structured lifecycle event in a job's flight
// recorder.
type FlightEvent struct {
	At     time.Time `json:"at"`
	Type   string    `json:"type"`
	Source string    `json:"source,omitempty"` // "coordinator" or a worker id
	Job    string    `json:"job_id,omitempty"`
	Worker string    `json:"worker,omitempty"` // the worker the event concerns
	Detail string    `json:"detail,omitempty"`
}

// FlightRecorder is a bounded ring of FlightEvents. Once the ring is
// full the oldest events are overwritten; Total keeps counting, so a
// reader can tell how much history was shed. A nil *FlightRecorder is
// valid and free: every method no-ops, which is the "disabled"
// contract the serving layers rely on (pinned at zero allocations by
// BenchmarkFlightRecorderDisabled).
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEvent
	next  int    // index the next event lands in
	total uint64 // events ever recorded, including overwritten ones
}

// NewFlightRecorder returns a ring holding the last capacity events
// (minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next] = ev
	}
	f.next = (f.next + 1) % cap(f.buf)
	f.total++
	f.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		return append(out, f.buf...)
	}
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...)
}

// Total returns how many events were ever recorded, including any the
// ring has since overwritten.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
