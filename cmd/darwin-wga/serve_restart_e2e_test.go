package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"darwinwga"
	"darwinwga/internal/evolve"
	"darwinwga/internal/maf"
)

// spawnServe re-execs this test binary as `darwin-wga serve` (via the
// resume e2e's TestMain hook), waits for the bound-address line on
// stderr, and returns the process handle, the HTTP base URL, and the
// captured child log.
func spawnServe(t *testing.T, args []string, extraEnv ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DARWINWGA_E2E_CHILD=1")
	cmd.Env = append(cmd.Env, extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() }) //nolint:errcheck // backstop for early failures

	addrCh := make(chan string, 1)
	childLog := &bytes.Buffer{}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(childLog, line)
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	select {
	case a := <-addrCh:
		return cmd, "http://" + a, childLog
	case <-time.After(2 * time.Minute):
		t.Fatalf("server never reported its address; log:\n%s", childLog.String())
		return nil, "", nil
	}
}

// TestServeCrashRestartRecoversJob is the crash-only serving contract
// end to end: a `serve` process is SIGKILLed (injected power loss) in
// the middle of a job's pipeline, a second process started on the same
// journal and checkpoint directories must replay the job store,
// re-queue the interrupted job under its original ID, resume it from
// its per-job checkpoint, and stream a MAF byte-identical to an
// uninterrupted one-shot CLI run over the same FASTA files.
func TestServeCrashRestartRecoversJob(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash–restart e2e is not -short")
	}
	dir := t.TempDir()

	cfg, ok := evolve.StandardPair("dm6-droSim1", 0.0004)
	if !ok {
		t.Fatal("unknown pair dm6-droSim1")
	}
	pair, err := evolve.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tPath := filepath.Join(dir, pair.Target.Name+".fa")
	qPath := filepath.Join(dir, pair.Query.Name+".fa")
	if err := darwinwga.WriteFASTA(tPath, pair.Target); err != nil {
		t.Fatal(err)
	}
	if err := darwinwga.WriteFASTA(qPath, pair.Query); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference over the same files; it must have at least
	// one block, or the crash point (the first anchor checkpoint write)
	// would never be reached.
	refPath := filepath.Join(dir, "ref.maf")
	if err := run(context.Background(), options{
		targetPath: tPath, queryPath: qPath, outPath: refPath,
		scale: 0.01, topChains: 3,
	}); err != nil {
		t.Fatalf("one-shot reference: %v", err)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if blocks, complete, err := maf.ReadVerified(bytes.NewReader(ref)); err != nil || !complete || len(blocks) == 0 {
		t.Fatalf("reference MAF unusable (blocks=%d complete=%v err=%v)", len(blocks), complete, err)
	}

	journalDir := filepath.Join(dir, "journal")
	ckptRoot := filepath.Join(dir, "ckpt")
	// Both processes must be flag-identical for the recovered output to
	// be byte-identical.
	serveArgs := []string{
		"serve", "-addr", "127.0.0.1:0",
		"-register", pair.Target.Name + "=" + tPath,
		"-job-workers", "1",
		"-journal-dir", journalDir,
		"-checkpoint-root", ckptRoot,
		"-drain-grace", "2m",
	}

	// Process 1: power loss on the job's 4th pipeline checkpoint write
	// (segment magic, header, strand record, then mid-frame of the first
	// anchor record).
	cmd1, base1, log1 := spawnServe(t, serveArgs,
		"DARWINWGA_CRASH_AFTER_CKPT_WRITES=4", "DARWINWGA_CRASH_SHORT=7")
	waitHTTP(t, base1+"/readyz", http.StatusOK, 30*time.Second)
	code, body := postJSON(t, base1+"/v1/jobs", map[string]any{
		"target":     pair.Target.Name,
		"query_path": qPath,
		"client":     "restart-e2e",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", code, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd1.Wait() }()
	var err1 error
	select {
	case err1 = <-waitErr:
	case <-time.After(3 * time.Minute):
		t.Fatalf("server survived the injected crash; log:\n%s", log1.String())
	}
	var exitErr *exec.ExitError
	if !errors.As(err1, &exitErr) {
		t.Fatalf("crash child: err = %v, want an exit error; log:\n%s", err1, log1.String())
	}
	ws, okWS := exitErr.Sys().(syscall.WaitStatus)
	if !okWS || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("crash child: status %v, want death by SIGKILL", exitErr)
	}

	// The wreckage the restart depends on: job-store segments recording
	// the submission, and a (torn) per-job pipeline journal.
	if segs, err := filepath.Glob(filepath.Join(journalDir, "seg-*.wal")); err != nil || len(segs) == 0 {
		t.Fatalf("crashed server left no job-store segments (err %v)", err)
	}
	if segs, err := filepath.Glob(filepath.Join(ckptRoot, st.ID, "seg-*.wal")); err != nil || len(segs) == 0 {
		t.Fatalf("crashed server left no pipeline checkpoint for job %s (err %v)", st.ID, err)
	}

	// Process 2: same directories, same flags, no fault injection. The
	// job must come back under its original ID and finish.
	cmd2, base2, log2 := spawnServe(t, serveArgs)
	waitHTTP(t, base2+"/readyz", http.StatusOK, 30*time.Second)
	if state := awaitTerminal(t, base2, st.ID, 3*time.Minute); state != "done" {
		t.Fatalf("recovered job %s: state %q, want done; log:\n%s", st.ID, state, log2.String())
	}
	resp, err := http.Get(base2 + "/v1/jobs/" + st.ID + "/maf")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("recovered MAF (%d bytes) differs from uninterrupted one-shot output (%d bytes)",
			len(got), len(ref))
	}

	// The restart must account for the recovery in its metrics.
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !recoveredCounterPositive(string(mtext)) {
		t.Errorf("metrics do not show a recovered job:\n%s", mtext)
	}

	// Clean drain: SIGTERM must exit 0 without losing the recovered job.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wait2 := make(chan error, 1)
	go func() { wait2 <- cmd2.Wait() }()
	select {
	case err := <-wait2:
		if err != nil {
			t.Fatalf("restarted server exited non-zero after SIGTERM: %v; log:\n%s", err, log2.String())
		}
	case <-time.After(3 * time.Minute):
		t.Fatalf("restarted server did not drain after SIGTERM; log:\n%s", log2.String())
	}
}

// recoveredCounterPositive reports whether the Prometheus-style metrics
// text carries darwinwga_jobs_recovered_total with a nonzero value.
func recoveredCounterPositive(metrics string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, "darwinwga_jobs_recovered_total") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" && fields[1] != "0.0" {
			return true
		}
	}
	return false
}
