package gact

import (
	"math/rand"
	"testing"

	"darwinwga/internal/align"
)

func randSeq(rng *rand.Rand, n int) []byte {
	const bases = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

func mutate(rng *rand.Rand, seq []byte, subRate, indelRate float64) []byte {
	const bases = "ACGT"
	out := make([]byte, 0, len(seq))
	for _, b := range seq {
		r := rng.Float64()
		switch {
		case r < indelRate/2:
		case r < indelRate:
			out = append(out, bases[rng.Intn(4)], b)
		case r < indelRate+subRate:
			out = append(out, bases[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	return out
}

func newExtender(t *testing.T, cfg Config) *Extender {
	t.Helper()
	e, err := NewExtender(align.DefaultScoring(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{TileSize: 1}).Validate(); err == nil {
		t.Error("tile size 1 accepted")
	}
	if err := (Config{TileSize: 100, Overlap: 100}).Validate(); err == nil {
		t.Error("overlap == tile size accepted")
	}
	if _, err := NewExtender(align.DefaultScoring(), Config{TileSize: 0}); err == nil {
		t.Error("NewExtender accepted invalid config")
	}
}

func TestGACTConfigTileFromMemory(t *testing.T) {
	cases := map[int]int{
		2 << 20:   2048,
		1 << 20:   1448,
		512 << 10: 1024,
	}
	for mem, wantTile := range cases {
		cfg := GACTConfig(mem, 128)
		if cfg.TileSize != wantTile {
			t.Errorf("GACTConfig(%d) tile = %d, want %d", mem, cfg.TileSize, wantTile)
		}
		if cfg.Y != 0 {
			t.Errorf("GACT config must have unbounded Y")
		}
	}
}

func TestExtendIdenticalSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seq := randSeq(rng, 10000) // several tiles long
	e := newExtender(t, DefaultConfig())
	var st Stats
	a := e.Extend(seq, seq, 5000, 5000, &st)
	if a.TStart != 0 || a.TEnd != len(seq) || a.QStart != 0 || a.QEnd != len(seq) {
		t.Errorf("extension = T[%d,%d) Q[%d,%d), want full", a.TStart, a.TEnd, a.QStart, a.QEnd)
	}
	if err := a.CheckConsistency(len(seq), len(seq)); err != nil {
		t.Fatal(err)
	}
	m, mm, gaps := a.Counts(seq, seq)
	if mm != 0 || gaps != 0 || m != len(seq) {
		t.Errorf("counts = %d/%d/%d, want %d/0/0", m, mm, gaps, len(seq))
	}
	if st.Tiles < 6 { // both directions, ~5000/1920 tiles each plus finals
		t.Errorf("tiles = %d, expected several", st.Tiles)
	}
}

func TestExtendStopsAtDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	target := randSeq(rng, 8000)
	query := randSeq(rng, 8000)
	copy(query[3000:5000], target[3000:5000]) // shared island on diagonal 0
	e := newExtender(t, DefaultConfig())
	a := e.Extend(target, query, 4000, 4000, nil)
	if a.TStart > 3050 || a.TEnd < 4950 {
		t.Errorf("island not covered: T[%d,%d)", a.TStart, a.TEnd)
	}
	if a.TStart < 2800 || a.TEnd > 5200 {
		t.Errorf("extension overran island: T[%d,%d)", a.TStart, a.TEnd)
	}
	if err := a.CheckConsistency(len(target), len(query)); err != nil {
		t.Fatal(err)
	}
}

func TestExtendAcrossMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	target := randSeq(rng, 20000)
	query := mutate(rng, target, 0.10, 0.01)
	e := newExtender(t, DefaultConfig())
	var st Stats
	a := e.Extend(target, query, 10000, 10000-approxShift(target, query, 10000), &st)
	if err := a.CheckConsistency(len(target), len(query)); err != nil {
		t.Fatal(err)
	}
	if a.TSpan() < len(target)*5/10 {
		t.Errorf("alignment spans only %d of %d target bases", a.TSpan(), len(target))
	}
	if got := a.Rescore(align.DefaultScoring(), target, query); got != a.Score {
		t.Errorf("Score = %d, Rescore = %d", a.Score, got)
	}
}

// approxShift estimates the query offset matching target position tpos
// by brute-force matching a 32-mer; keeps the test anchor on the true
// diagonal after indels shifted coordinates.
func approxShift(target, query []byte, tpos int) int {
	window := target[tpos : tpos+32]
	for off := -500; off <= 500; off++ {
		q := tpos + off
		if q < 0 || q+32 > len(query) {
			continue
		}
		diff := 0
		for k := 0; k < 32; k++ {
			if query[q+k] != window[k] {
				diff++
			}
		}
		if diff <= 6 {
			return -off
		}
	}
	return 0
}

func TestExtendCrossesLongIndel(t *testing.T) {
	// A 200-base insertion in the query: within GACT-X's Y budget
	// (200 gap bases cost 430+199*30 = 6400 < 9430), so the extension
	// must bridge it.
	rng := rand.New(rand.NewSource(4))
	left := randSeq(rng, 3000)
	right := randSeq(rng, 3000)
	insert := randSeq(rng, 200)
	target := append(append([]byte{}, left...), right...)
	query := append(append(append([]byte{}, left...), insert...), right...)
	e := newExtender(t, DefaultConfig())
	a := e.Extend(target, query, 1000, 1000, nil)
	if a.TEnd < 5800 {
		t.Errorf("extension stopped at T%d; did not bridge the 200bp insertion", a.TEnd)
	}
	_, _, gaps := a.Counts(target, query)
	if gaps < 200 {
		t.Errorf("gap bases = %d, want >= 200", gaps)
	}
}

func TestExtendGiantIndelTerminates(t *testing.T) {
	// A 2000-base insertion costs far more than Y: extension must stop
	// rather than spend unbounded work.
	rng := rand.New(rand.NewSource(5))
	left := randSeq(rng, 2000)
	right := randSeq(rng, 2000)
	insert := randSeq(rng, 2000)
	target := append(append([]byte{}, left...), right...)
	query := append(append(append([]byte{}, left...), insert...), right...)
	e := newExtender(t, DefaultConfig())
	a := e.Extend(target, query, 500, 500, nil)
	if a.TEnd > 2600 {
		t.Errorf("extension claims to cross a 2000bp indel: T end %d", a.TEnd)
	}
	if err := a.CheckConsistency(len(target), len(query)); err != nil {
		t.Fatal(err)
	}
}

func TestExtendAtSequenceBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seq := randSeq(rng, 500)
	e := newExtender(t, DefaultConfig())
	// Anchor at the very start and very end.
	a := e.Extend(seq, seq, 0, 0, nil)
	if a.TStart != 0 || a.TEnd != len(seq) {
		t.Errorf("anchor at origin: T[%d,%d)", a.TStart, a.TEnd)
	}
	a = e.Extend(seq, seq, len(seq), len(seq), nil)
	if a.TStart != 0 || a.TEnd != len(seq) {
		t.Errorf("anchor at end: T[%d,%d)", a.TStart, a.TEnd)
	}
}

func TestGACTXUsesLessMemoryThanGACT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	target := randSeq(rng, 6000)
	query := mutate(rng, target, 0.08, 0.01)
	gactx := newExtender(t, DefaultConfig())
	var stX Stats
	aX := gactx.Extend(target, query, 3000, 3000-approxShift(target, query, 3000), &stX)

	gact := newExtender(t, GACTConfig(2<<20, 128))
	var stG Stats
	aG := gact.Extend(target, query, 3000, 3000-approxShift(target, query, 3000), &stG)

	if stX.MaxTileCells >= stG.MaxTileCells {
		t.Errorf("GACT-X max tile cells %d >= GACT %d; X-drop should prune", stX.MaxTileCells, stG.MaxTileCells)
	}
	if stX.Cells >= stG.Cells {
		t.Errorf("GACT-X total cells %d >= GACT %d", stX.Cells, stG.Cells)
	}
	// Both should produce comparable matched bases on this easy pair.
	mX, _, _ := aX.Counts(target, query)
	mG, _, _ := aG.Counts(target, query)
	if mX < mG*8/10 {
		t.Errorf("GACT-X matched %d vs GACT %d", mX, mG)
	}
}

func TestTruncatePath(t *testing.T) {
	ops := []align.EditOp{'M', 'M', 'M', 'M'}
	kept, di, dj := truncatePath(ops, 4, 4, 2, 2)
	if len(kept) != 2 || di != 2 || dj != 2 {
		t.Errorf("kept %d ops, advance (%d,%d); want 2,(2,2)", len(kept), di, dj)
	}
	// Endpoint inside the core: full path kept.
	kept, di, dj = truncatePath(ops, 4, 4, 10, 10)
	if len(kept) != 4 || di != 4 || dj != 4 {
		t.Errorf("full path not kept: %d,(%d,%d)", len(kept), di, dj)
	}
	// Inserts advance only j.
	ops = []align.EditOp{'I', 'I', 'I', 'M'}
	kept, di, dj = truncatePath(ops, 1, 4, 3, 3)
	if dj != 3 || di != 0 || len(kept) != 3 {
		t.Errorf("insert truncation: %d,(%d,%d)", len(kept), di, dj)
	}
}

func TestStatsTracebackBytes(t *testing.T) {
	s := Stats{MaxTileCells: 100}
	if got := s.TracebackBytes(); got != 50 {
		t.Errorf("TracebackBytes = %d, want 50", got)
	}
}

func TestExtenderReuse(t *testing.T) {
	// Repeated Extend calls on one extender must not corrupt state.
	rng := rand.New(rand.NewSource(8))
	e := newExtender(t, DefaultConfig())
	for i := 0; i < 5; i++ {
		seq := randSeq(rng, 1000)
		a := e.Extend(seq, seq, 500, 500, nil)
		if a.TSpan() != len(seq) {
			t.Fatalf("iteration %d: span %d", i, a.TSpan())
		}
	}
}
