package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"darwinwga/internal/checkpoint"
	"darwinwga/internal/core"
	"darwinwga/internal/faultinject"
)

// The coordinator's WAL journals every routing decision so a restart is
// crash-only: submissions, assignments, and terminal outcomes fold back
// into the job table, and unfinished jobs either reattach to the worker
// they were on or re-dispatch to a surviving replica. Record kinds:
//
//	1 header    — store version
//	2 submitted — job accepted: id, target, spec, client; the query has
//	              already been spilled to queries/<id>.fa (the spill is
//	              ordered before the record, so a submitted record
//	              guarantees a readable query)
//	3 assigned  — routing decision: which worker, at which address,
//	              under which worker-side job id
//	4 finished  — terminal outcome: state + error
//	5 epoch     — leadership fencing token: every coordinator start (and
//	              every standby promotion) journals max-seen + 1, so the
//	              epoch is monotone across the replicated journal
//	6 snapshot  — the folded routing state at compaction time; a fold
//	              resets at a snapshot record, which is what makes
//	              segment truncation safe
//	7 shardplan — a sharded job's work-unit decomposition, journaled
//	              before any unit dispatch so a restart reuses the
//	              identical plan (unit seqs keep meaning the same ranges)
//	8 sharddone — one work unit completed; its frames have already been
//	              spilled to shards/<id>/frames/<seq>.json (spill before
//	              record, like queries), so a restart re-dispatches only
//	              units without a done record
const (
	ckKindHeader    = 1
	ckKindSubmitted = 2
	ckKindAssigned  = 3
	ckKindFinished  = 4
	ckKindEpoch     = 5
	ckKindSnapshot  = 6
	ckKindShardPlan = 7
	ckKindShardDone = 8

	ckVersion = 1
)

// errArtifactStore marks journal/spill write failures (disk full) so
// the HTTP layer can answer 503 + Retry-After instead of a generic 500:
// the atomic writer guarantees no corrupt artifact landed, which makes
// the request safely retryable.
var errArtifactStore = errors.New("artifact store unavailable")

// defaultSnapshotThreshold is the record count past which the journal is
// compacted to a snapshot at open.
const defaultSnapshotThreshold = 4096

type ckHeader struct {
	Version int `json:"version"`
}

type ckSubmitted struct {
	ID          string  `json:"id"`
	Target      string  `json:"target"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Client      string  `json:"client,omitempty"`
	QueryName   string  `json:"query_name,omitempty"`
	TraceID     string  `json:"trace_id,omitempty"`
	Spec        jobSpec `json:"spec"`
	CreatedNS   int64   `json:"created_ns"`
}

type ckAssigned struct {
	ID          string `json:"id"`
	WorkerID    string `json:"worker_id"`
	WorkerAddr  string `json:"worker_addr"`
	WorkerJobID string `json:"worker_job_id"`
	AtNS        int64  `json:"at_ns"`
}

type ckFinished struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	AtNS  int64  `json:"at_ns"`
}

type ckEpoch struct {
	Epoch uint64 `json:"epoch"`
}

type ckShardPlan struct {
	ID    string           `json:"id"`
	Units []core.ShardUnit `json:"units"`
}

type ckShardDone struct {
	ID       string `json:"id"`
	Seq      int    `json:"seq"`
	WorkerID string `json:"worker_id,omitempty"`
	AtNS     int64  `json:"at_ns"`
}

// ckSnapJob is one job's full routing history inside a snapshot record.
type ckSnapJob struct {
	Sub       ckSubmitted      `json:"sub"`
	Assigns   []ckAssigned     `json:"assigns,omitempty"`
	Finished  *ckFinished      `json:"finished,omitempty"`
	ShardPlan []core.ShardUnit `json:"shard_plan,omitempty"`
	ShardDone []int            `json:"shard_done,omitempty"`
}

type ckSnapshot struct {
	Epoch uint64      `json:"epoch"`
	Jobs  []ckSnapJob `json:"jobs"`
}

// recoveredRouting is one job folded out of the WAL.
type recoveredRouting struct {
	sub        ckSubmitted
	assigns    []ckAssigned
	finished   bool
	finalState string
	finalErr   string
	finishedAt time.Time
	shardPlan  []core.ShardUnit
	shardDone  []int
}

// coordJournal wraps a checkpoint.Journal with the locking the
// coordinator needs (runners journal concurrently; checkpoint.Journal
// itself is single-writer) plus the query spill directory, the shipped
// pipeline-journal artifact store, and the replication hub every
// appended record is published to (appends and publishes share cj.mu,
// so hub order is WAL order).
type coordJournal struct {
	mu  sync.Mutex
	j   *checkpoint.Journal
	dir string
	hub *replicationHub
	// io is the artifact-store fault seam: every spill (queries, shipped
	// segments, shard frames, merged MAFs) writes through it so tests
	// inject ENOSPC/short writes exactly where a full disk would bite.
	io *faultinject.IOFaults
}

// journalState is what openCoordJournal recovered: the folded per-job
// routing histories, the highest journaled epoch, and the journal's
// current raw records (post-compaction) for seeding the replication hub.
type journalState struct {
	recovered []recoveredRouting
	epoch     uint64
	records   []checkpoint.Record
}

// openCoordJournal opens (creating if needed) the coordinator WAL in
// dir and folds every valid record into per-job routing histories, in
// submission order. When the journal has grown past snapshotThreshold
// records (0 = defaultSnapshotThreshold) it is compacted to a single
// snapshot record so restart replay — and the journal a standby must
// sync — stays bounded.
func openCoordJournal(dir string, snapshotThreshold int) (*coordJournal, *journalState, error) {
	if err := os.MkdirAll(filepath.Join(dir, "queries"), 0o755); err != nil {
		return nil, nil, err
	}
	j, recs, err := checkpoint.Open(filepath.Join(dir, "wal"), checkpoint.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: opening coordinator journal: %w", err)
	}
	cj := &coordJournal{j: j, dir: dir}
	recovered, epoch, err := foldRouting(recs)
	if err != nil {
		j.Close() //nolint:errcheck
		return nil, nil, err
	}
	if snapshotThreshold <= 0 {
		snapshotThreshold = defaultSnapshotThreshold
	}
	if len(recs) > snapshotThreshold {
		recs, err = cj.compact(recovered, epoch)
		if err != nil {
			j.Close() //nolint:errcheck
			return nil, nil, fmt.Errorf("cluster: compacting coordinator journal: %w", err)
		}
	}
	if len(recs) == 0 {
		hdr, err := jsonRecord(ckKindHeader, ckHeader{Version: ckVersion})
		if err != nil {
			j.Close() //nolint:errcheck
			return nil, nil, err
		}
		if err := cj.j.Append(hdr.Kind, hdr.Payload); err != nil {
			j.Close() //nolint:errcheck
			return nil, nil, err
		}
		recs = []checkpoint.Record{hdr}
	}
	return cj, &journalState{recovered: recovered, epoch: epoch, records: recs}, nil
}

// compact rewrites the journal as header + snapshot and returns the new
// raw record set.
func (cj *coordJournal) compact(recovered []recoveredRouting, epoch uint64) ([]checkpoint.Record, error) {
	hdr, err := jsonRecord(ckKindHeader, ckHeader{Version: ckVersion})
	if err != nil {
		return nil, err
	}
	snap, err := jsonRecord(ckKindSnapshot, snapshotOf(recovered, epoch))
	if err != nil {
		return nil, err
	}
	recs := []checkpoint.Record{hdr, snap}
	if err := cj.j.Compact(recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// snapshotOf serializes the folded routing state.
func snapshotOf(recovered []recoveredRouting, epoch uint64) ckSnapshot {
	snap := ckSnapshot{Epoch: epoch, Jobs: make([]ckSnapJob, 0, len(recovered))}
	for _, r := range recovered {
		sj := ckSnapJob{Sub: r.sub, Assigns: r.assigns, ShardPlan: r.shardPlan, ShardDone: r.shardDone}
		if r.finished {
			sj.Finished = &ckFinished{ID: r.sub.ID, State: r.finalState, Error: r.finalErr, AtNS: r.finishedAt.UnixNano()}
		}
		snap.Jobs = append(snap.Jobs, sj)
	}
	return snap
}

func jsonRecord(kind uint8, v any) (checkpoint.Record, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return checkpoint.Record{}, err
	}
	return checkpoint.Record{Kind: kind, Payload: payload}, nil
}

// foldRouting replays records into routing histories keyed by job id,
// preserving submission order, and tracks the highest journaled epoch.
// A snapshot record resets the folded state to the snapshot's — exactly
// the semantics Compact's crash window needs.
func foldRouting(recs []checkpoint.Record) ([]recoveredRouting, uint64, error) {
	byID := make(map[string]*recoveredRouting)
	var order []string
	var epoch uint64
	for _, rec := range recs {
		switch rec.Kind {
		case ckKindHeader:
			var h ckHeader
			if err := json.Unmarshal(rec.Payload, &h); err != nil {
				return nil, 0, fmt.Errorf("cluster: journal header: %w", err)
			}
			if h.Version != ckVersion {
				return nil, 0, fmt.Errorf("cluster: journal version %d, want %d", h.Version, ckVersion)
			}
		case ckKindSubmitted:
			var sub ckSubmitted
			if err := json.Unmarshal(rec.Payload, &sub); err != nil {
				return nil, 0, fmt.Errorf("cluster: submitted record: %w", err)
			}
			if _, dup := byID[sub.ID]; !dup {
				byID[sub.ID] = &recoveredRouting{sub: sub}
				order = append(order, sub.ID)
			}
		case ckKindAssigned:
			var a ckAssigned
			if err := json.Unmarshal(rec.Payload, &a); err != nil {
				return nil, 0, fmt.Errorf("cluster: assigned record: %w", err)
			}
			if r, ok := byID[a.ID]; ok {
				r.assigns = append(r.assigns, a)
			}
		case ckKindFinished:
			var f ckFinished
			if err := json.Unmarshal(rec.Payload, &f); err != nil {
				return nil, 0, fmt.Errorf("cluster: finished record: %w", err)
			}
			if r, ok := byID[f.ID]; ok {
				r.finished = true
				r.finalState = f.State
				r.finalErr = f.Error
				r.finishedAt = time.Unix(0, f.AtNS)
			}
		case ckKindEpoch:
			var e ckEpoch
			if err := json.Unmarshal(rec.Payload, &e); err != nil {
				return nil, 0, fmt.Errorf("cluster: epoch record: %w", err)
			}
			if e.Epoch > epoch {
				epoch = e.Epoch
			}
		case ckKindShardPlan:
			var p ckShardPlan
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return nil, 0, fmt.Errorf("cluster: shard plan record: %w", err)
			}
			if r, ok := byID[p.ID]; ok && r.shardPlan == nil {
				r.shardPlan = p.Units
			}
		case ckKindShardDone:
			var d ckShardDone
			if err := json.Unmarshal(rec.Payload, &d); err != nil {
				return nil, 0, fmt.Errorf("cluster: shard done record: %w", err)
			}
			if r, ok := byID[d.ID]; ok {
				dup := false
				for _, seq := range r.shardDone {
					if seq == d.Seq {
						dup = true
						break
					}
				}
				if !dup {
					r.shardDone = append(r.shardDone, d.Seq)
				}
			}
		case ckKindSnapshot:
			var s ckSnapshot
			if err := json.Unmarshal(rec.Payload, &s); err != nil {
				return nil, 0, fmt.Errorf("cluster: snapshot record: %w", err)
			}
			byID = make(map[string]*recoveredRouting)
			order = order[:0]
			if s.Epoch > epoch {
				epoch = s.Epoch
			}
			for _, sj := range s.Jobs {
				r := &recoveredRouting{sub: sj.Sub, assigns: sj.Assigns, shardPlan: sj.ShardPlan, shardDone: sj.ShardDone}
				if sj.Finished != nil {
					r.finished = true
					r.finalState = sj.Finished.State
					r.finalErr = sj.Finished.Error
					r.finishedAt = time.Unix(0, sj.Finished.AtNS)
				}
				byID[sj.Sub.ID] = r
				order = append(order, sj.Sub.ID)
			}
		default:
			// Unknown kinds from a newer writer are skipped, not fatal.
		}
	}
	out := make([]recoveredRouting, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, epoch, nil
}

func (cj *coordJournal) append(kind uint8, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if err := cj.j.Append(kind, payload); err != nil {
		return err
	}
	if cj.hub != nil {
		cj.hub.publish(checkpoint.Record{Kind: kind, Payload: payload})
	}
	return nil
}

// epoch journals a fencing-token bump.
func (cj *coordJournal) epoch(e uint64) error {
	if cj == nil {
		return nil
	}
	return cj.append(ckKindEpoch, ckEpoch{Epoch: e})
}

// queryPath is where job id's spilled query lives.
func (cj *coordJournal) queryPath(id string) string {
	return filepath.Join(cj.dir, "queries", id+".fa")
}

// saveQuery durably spills the job's already-normalized FASTA text
// before the submitted record is journaled — the spill-before-journal
// order is the crash-safety invariant: a submitted record implies a
// readable query.
func (cj *coordJournal) saveQuery(id, fasta string) error {
	return writeFileAtomicFaults(cj.queryPath(id), []byte(fasta), cj.io)
}

// loadQuery reads back a spilled query as FASTA text for dispatch.
func (cj *coordJournal) loadQuery(id string) (string, error) {
	data, err := os.ReadFile(cj.queryPath(id))
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func (cj *coordJournal) submitted(j *coordJob) error {
	if cj == nil {
		return nil
	}
	return cj.append(ckKindSubmitted, ckSubmitted{
		ID:          j.ID,
		Target:      j.Target,
		Fingerprint: j.Fingerprint,
		Client:      j.Client,
		QueryName:   j.QueryName,
		TraceID:     j.TraceID,
		Spec:        j.Spec,
		CreatedNS:   j.Created.UnixNano(),
	})
}

func (cj *coordJournal) assigned(j *coordJob, a assignment) error {
	if cj == nil {
		return nil
	}
	return cj.append(ckKindAssigned, ckAssigned{
		ID:          j.ID,
		WorkerID:    a.WorkerID,
		WorkerAddr:  a.WorkerAddr,
		WorkerJobID: a.WorkerJobID,
		AtNS:        a.At.UnixNano(),
	})
}

func (cj *coordJournal) finished(j *coordJob, state, errMsg string, at time.Time) error {
	if cj == nil {
		return nil
	}
	return cj.append(ckKindFinished, ckFinished{
		ID:    j.ID,
		State: state,
		Error: errMsg,
		AtNS:  at.UnixNano(),
	})
}

func (cj *coordJournal) shardPlanned(j *coordJob, units []core.ShardUnit) error {
	if cj == nil {
		return nil
	}
	return cj.append(ckKindShardPlan, ckShardPlan{ID: j.ID, Units: units})
}

func (cj *coordJournal) shardDone(j *coordJob, seq int, worker string, at time.Time) error {
	if cj == nil {
		return nil
	}
	return cj.append(ckKindShardDone, ckShardDone{ID: j.ID, Seq: seq, WorkerID: worker, AtNS: at.UnixNano()})
}

// The shard artifact store holds each sharded job's gathered unit
// frames (shards/<id>/frames/<seq>.json, removed once the job is
// terminal) and its merged MAF (shards/<id>/result.maf, retained so a
// restarted coordinator can still serve the result).

func (cj *coordJournal) shardDir(id string) string {
	return filepath.Join(cj.dir, "shards", id)
}

func (cj *coordJournal) saveShardFrames(id string, seq int, data []byte) error {
	dir := filepath.Join(cj.shardDir(id), "frames")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFileAtomicFaults(filepath.Join(dir, fmt.Sprintf("%d.json", seq)), data, cj.io)
}

func (cj *coordJournal) loadShardFrames(id string, seq int) ([]byte, error) {
	return os.ReadFile(filepath.Join(cj.shardDir(id), "frames", fmt.Sprintf("%d.json", seq)))
}

func (cj *coordJournal) saveShardMAF(id string, data []byte) error {
	if err := os.MkdirAll(cj.shardDir(id), 0o755); err != nil {
		return err
	}
	return writeFileAtomicFaults(filepath.Join(cj.shardDir(id), "result.maf"), data, cj.io)
}

func (cj *coordJournal) loadShardMAF(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(cj.shardDir(id), "result.maf"))
}

// removeShardFrames drops a terminal job's per-unit frame spills; the
// merged result.maf stays serveable.
func (cj *coordJournal) removeShardFrames(id string) {
	if cj == nil {
		return
	}
	os.RemoveAll(filepath.Join(cj.shardDir(id), "frames")) //nolint:errcheck // best effort cleanup
}

// removeShards drops everything a sharded job spilled, merged MAF
// included — eviction-time cleanup.
func (cj *coordJournal) removeShards(id string) {
	if cj == nil {
		return
	}
	os.RemoveAll(cj.shardDir(id)) //nolint:errcheck // best effort cleanup
}

// The shipped-artifact store holds pipeline-journal segments workers
// PUT for their running jobs (shipped/<coord job id>/seg-*.wal). On
// failover the replacement worker GETs them back and resumes
// mid-pipeline instead of recomputing.

func (cj *coordJournal) shippedDir(id string) string {
	return filepath.Join(cj.dir, "shipped", id)
}

// saveShipped stores one shipped segment atomically. The name has been
// validated (checkpoint.IsSegmentName) by the caller.
func (cj *coordJournal) saveShipped(id, name string, data []byte) error {
	dir := cj.shippedDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFileAtomicFaults(filepath.Join(dir, name), data, cj.io)
}

func (cj *coordJournal) listShipped(id string) ([]checkpoint.SegmentInfo, error) {
	return checkpoint.ListSegments(cj.shippedDir(id))
}

func (cj *coordJournal) loadShipped(id, name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(cj.shippedDir(id), name))
}

// removeShipped drops a job's shipped segments — called when the job
// reaches a terminal state and the pipeline journal has no further use.
func (cj *coordJournal) removeShipped(id string) {
	if cj == nil {
		return
	}
	os.RemoveAll(cj.shippedDir(id)) //nolint:errcheck // best effort cleanup
}

func (cj *coordJournal) close() {
	if cj == nil {
		return
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	cj.j.Close() //nolint:errcheck // shutdown path
}

// writeFileAtomicCluster writes data to path via temp + fsync + rename
// + dirsync, so a crash leaves either the old file or the new one.
func writeFileAtomicCluster(path string, data []byte) error {
	return writeFileAtomicFaults(path, data, nil)
}

// writeFileAtomicFaults is writeFileAtomicCluster with an IO fault seam
// threaded through write/sync/rename: an injected ENOSPC or short write
// surfaces as an error with the temp file removed — never a corrupt or
// truncated artifact at the final path. A nil fault set is a plain
// atomic write.
func writeFileAtomicFaults(path string, data []byte, flt *faultinject.IOFaults) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = flt.Write(f, data)
	if err == nil {
		if err = flt.Check(faultinject.OpSync); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err == nil {
		if err = flt.Check(faultinject.OpRename); err == nil {
			err = os.Rename(tmp, path)
		}
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	return checkpoint.SyncDir(filepath.Dir(path))
}
