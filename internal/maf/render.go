package maf

import (
	"fmt"
	"sort"
	"sync"

	"darwinwga/internal/genome"
)

// SeqMap maps positions in a concatenated assembly (genome.Concat's
// coordinate space) back to the member sequences, for MAF lines that
// need per-sequence names and coordinates. It is immutable after
// construction and safe for concurrent use.
type SeqMap struct {
	// Assembly is the assembly-level name prefixed onto every sequence
	// name ("assembly.sequence"), MAF's usual src convention.
	Assembly string
	// Names are the member sequence names, in concatenation order.
	Names []string
	// Starts are the cumulative start offsets, with the total length as
	// a final sentinel: len(Starts) == len(Names)+1.
	Starts []int
}

// NewSeqMap builds the map for a concatenated assembly.
func NewSeqMap(assembly string, names []string, starts []int) (*SeqMap, error) {
	if len(starts) != len(names)+1 {
		return nil, fmt.Errorf("maf: SeqMap wants len(starts) == len(names)+1, got %d and %d", len(starts), len(names))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("maf: SeqMap with no sequences")
	}
	return &SeqMap{Assembly: assembly, Names: names, Starts: starts}, nil
}

// Total returns the concatenated length.
func (m *SeqMap) Total() int { return m.Starts[len(m.Names)] }

// locate maps a forward-space position to its member sequence index.
func (m *SeqMap) locate(pos int) int {
	i := sort.SearchInts(m.Starts[:len(m.Names)], pos+1) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Locate maps a forward-space position to (qualified name, sequence
// start offset in the concatenated space, sequence length).
func (m *SeqMap) Locate(pos int) (name string, off, size int) {
	i := m.locate(pos)
	return m.Assembly + "." + m.Names[i], m.Starts[i], m.Starts[i+1] - m.Starts[i]
}

// LocateRC is Locate for a position in reverse-complement space:
// sequence k's block occupies [L-end_k, L-start_k), with sequences in
// reverse order. The returned offset is the sequence's start in RC
// space.
func (m *SeqMap) LocateRC(pos int) (name string, off, size int) {
	total := m.Total()
	i := m.locate(total - 1 - pos)
	return m.Assembly + "." + m.Names[i], total - m.Starts[i+1], m.Starts[i+1] - m.Starts[i]
}

// BlockRenderer turns concatenated-space alignments into MAF blocks
// with per-sequence names and strand-correct coordinates. It is the
// one rendering path shared by the batch report writer and the serving
// layer's per-HSP streaming, which is what keeps their outputs
// byte-identical. Safe for concurrent use by multiple goroutines.
type BlockRenderer struct {
	TMap, QMap *SeqMap
	// Target and Query are the concatenated sequences; Query is the
	// '+'-strand orientation.
	Target, Query []byte

	rcOnce sync.Once
	rc     []byte // reverse complement of Query, built on first '-' block
}

// rcQuery returns the reverse-complemented query, building it once.
func (br *BlockRenderer) rcQuery() []byte {
	br.rcOnce.Do(func() { br.rc = genome.ReverseComplement(br.Query) })
	return br.rc
}

// Render builds the MAF block for one alignment. ops is the edit
// transcript ('M'/'I'/'D' bytes) consuming Target[tStart:] and, for
// strand '-', the reverse-complemented query at qStart.
func (br *BlockRenderer) Render(score int64, strand byte, tStart, qStart int, ops []byte) (*Block, error) {
	q := br.Query
	var qName string
	var qOff, qSrc int
	if strand == '-' {
		q = br.rcQuery()
		qName, qOff, qSrc = br.QMap.LocateRC(qStart)
	} else {
		qName, qOff, qSrc = br.QMap.Locate(qStart)
	}
	tName, tOff, tSrc := br.TMap.Locate(tStart)
	tUsed, qUsed := 0, 0
	for _, op := range ops {
		switch op {
		case 'M':
			tUsed++
			qUsed++
		case 'I':
			qUsed++
		case 'D':
			tUsed++
		default:
			return nil, fmt.Errorf("maf: transcript op %q is not M/I/D", op)
		}
	}
	if tStart < 0 || qStart < 0 || tStart+tUsed > len(br.Target) || qStart+qUsed > len(q) {
		return nil, fmt.Errorf("maf: transcript overruns sequences (target %d+%d/%d, query %d+%d/%d)",
			tStart, tUsed, len(br.Target), qStart, qUsed, len(q))
	}
	ttext, qtext := RenderTexts(br.Target, q, tStart, qStart, ops)
	b := &Block{
		Score: score,
		TName: tName, TStart: tStart - tOff, TSize: countNonGap(ttext), TSrc: tSrc,
		TText: ttext,
		QName: qName, QStart: qStart - qOff, QSize: countNonGap(qtext), QSrc: qSrc,
		QStrand: strand,
		QText:   qtext,
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}
