package align

import (
	"math/rand"
	"testing"
)

func randSeq(rng *rand.Rand, n int) []byte {
	const bases = "ACGT"
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

// mutate produces a noisy copy of seq with the given substitution and
// indel rates.
func mutate(rng *rand.Rand, seq []byte, subRate, indelRate float64) []byte {
	const bases = "ACGT"
	out := make([]byte, 0, len(seq))
	for _, b := range seq {
		r := rng.Float64()
		switch {
		case r < indelRate/2: // deletion
		case r < indelRate: // insertion
			out = append(out, bases[rng.Intn(4)], b)
		case r < indelRate+subRate:
			out = append(out, bases[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	return out
}

func TestDefaultScoring(t *testing.T) {
	sc := DefaultScoring()
	if err := sc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := sc.Score('A', 'A'); got != 91 {
		t.Errorf("A/A = %d, want 91", got)
	}
	if got := sc.Score('C', 'C'); got != 100 {
		t.Errorf("C/C = %d, want 100", got)
	}
	if got := sc.Score('A', 'G'); got != -25 {
		t.Errorf("A/G transition = %d, want -25", got)
	}
	if got := sc.Score('A', 'T'); got != -100 {
		t.Errorf("A/T = %d, want -100", got)
	}
	if got := sc.Score('N', 'A'); got != -100 {
		t.Errorf("N/A = %d, want -100", got)
	}
	if got := sc.GapCost(1); got != 430 {
		t.Errorf("GapCost(1) = %d, want 430", got)
	}
	if got := sc.GapCost(5); got != 430+4*30 {
		t.Errorf("GapCost(5) = %d, want %d", got, 430+4*30)
	}
	if got := sc.GapCost(0); got != 0 {
		t.Errorf("GapCost(0) = %d, want 0", got)
	}
}

func TestScoringValidateRejectsBad(t *testing.T) {
	sc := DefaultScoring()
	sc.GapOpen = -1
	if err := sc.Validate(); err == nil {
		t.Error("negative gap open accepted")
	}
	sc = DefaultScoring()
	sc.GapExtend = sc.GapOpen + 1
	if err := sc.Validate(); err == nil {
		t.Error("extend > open accepted")
	}
	sc = DefaultScoring()
	for i := 0; i < 4; i++ {
		sc.Sub[i][i] = -1
	}
	if err := sc.Validate(); err == nil {
		t.Error("all-negative diagonal accepted")
	}
}

func TestSmithWatermanExactMatch(t *testing.T) {
	sc := DefaultScoring()
	seq := []byte("ACGTACGTAC")
	a := SmithWaterman(sc, seq, seq)
	want := a.Rescore(sc, seq, seq)
	if a.Score != want {
		t.Errorf("Score = %d, Rescore = %d", a.Score, want)
	}
	if a.TStart != 0 || a.TEnd != len(seq) || a.QStart != 0 || a.QEnd != len(seq) {
		t.Errorf("interval = T[%d,%d) Q[%d,%d)", a.TStart, a.TEnd, a.QStart, a.QEnd)
	}
	for _, op := range a.Ops {
		if op != OpMatch {
			t.Errorf("unexpected op %c in exact match", op)
		}
	}
}

func TestSmithWatermanFindsEmbeddedMatch(t *testing.T) {
	sc := DefaultScoring()
	target := []byte("TTTTTTTTTTACGTACGTACGTACGTTTTTTTTTTT")
	query := []byte("CCCCCACGTACGTACGTACGTCCCCC")
	a := SmithWaterman(sc, target, query)
	if a.TStart != 10 || a.QStart != 5 {
		t.Errorf("start = T%d Q%d, want T10 Q5", a.TStart, a.QStart)
	}
	if a.TSpan() != 16 || a.QSpan() != 16 {
		t.Errorf("span = %d/%d, want 16/16", a.TSpan(), a.QSpan())
	}
}

func TestSmithWatermanGap(t *testing.T) {
	sc := DefaultScoring()
	// 20 matches, a 3-base deletion in the query, 20 more matches.
	left := []byte("ACGTACGTACGTACGTACGT")
	right := []byte("TGCATGCATGCATGCATGCA")
	target := append(append(append([]byte{}, left...), []byte("GGG")...), right...)
	query := append(append([]byte{}, left...), right...)
	a := SmithWaterman(sc, target, query)
	if err := a.CheckConsistency(len(target), len(query)); err != nil {
		t.Fatal(err)
	}
	if got := a.Rescore(sc, target, query); got != a.Score {
		t.Errorf("Rescore = %d, Score = %d", got, a.Score)
	}
	wantGaps := 3
	_, _, gaps := a.Counts(target, query)
	if gaps != wantGaps {
		t.Errorf("gap bases = %d, want %d (cigar %s)", gaps, wantGaps, a.CIGAR())
	}
}

func TestSmithWatermanEmptyInputs(t *testing.T) {
	sc := DefaultScoring()
	if a := SmithWaterman(sc, nil, []byte("ACGT")); a.Score != 0 {
		t.Error("empty target should score 0")
	}
	if a := SmithWaterman(sc, []byte("ACGT"), nil); a.Score != 0 {
		t.Error("empty query should score 0")
	}
	// All-mismatch pair has no positive local alignment... except single
	// bases still score negative; best is empty.
	a := SmithWaterman(sc, []byte("AAAA"), []byte("TTTT"))
	if a.Score != 0 || len(a.Ops) != 0 {
		t.Errorf("all-mismatch: score %d ops %d", a.Score, len(a.Ops))
	}
}

// Property: for random mutated pairs, the traceback transcript must be
// internally consistent and re-score to exactly the DP score.
func TestSmithWatermanRescoreProperty(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		target := randSeq(rng, 50+rng.Intn(200))
		query := mutate(rng, target, 0.1, 0.05)
		a := SmithWaterman(sc, target, query)
		if a.Score == 0 {
			continue
		}
		if err := a.CheckConsistency(len(target), len(query)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := a.Rescore(sc, target, query); got != a.Score {
			t.Fatalf("trial %d: Rescore = %d, Score = %d (cigar %s)", trial, got, a.Score, a.CIGAR())
		}
	}
}

func TestNeedlemanWunsch(t *testing.T) {
	sc := DefaultScoring()
	seq := []byte("ACGTACGT")
	var matchScore int32
	for _, b := range seq {
		matchScore += sc.Score(b, b)
	}
	if got := NeedlemanWunsch(sc, seq, seq); got != matchScore {
		t.Errorf("NW identical = %d, want %d", got, matchScore)
	}
	// Global alignment of a sequence against itself plus a 2-base tail:
	// matches minus one gap of length 2.
	longer := append(append([]byte{}, seq...), 'G', 'G')
	want := matchScore - sc.GapCost(2)
	if got := NeedlemanWunsch(sc, longer, seq); got != want {
		t.Errorf("NW with tail = %d, want %d", got, want)
	}
	// NW of empty vs non-empty is a pure gap.
	if got := NeedlemanWunsch(sc, seq, nil); got != -sc.GapCost(len(seq)) {
		t.Errorf("NW vs empty = %d, want %d", got, -sc.GapCost(len(seq)))
	}
}

func TestBandedMatchesFullSWNearDiagonal(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(7))
	ba := NewBandedAligner(sc, 32)
	for trial := 0; trial < 30; trial++ {
		target := randSeq(rng, 100+rng.Intn(100))
		query := mutate(rng, target, 0.08, 0.01) // few indels: stays near diagonal
		full := SmithWaterman(sc, target, query)
		banded := ba.Align(target, query)
		if banded.Score > full.Score {
			t.Fatalf("trial %d: banded %d > full %d", trial, banded.Score, full.Score)
		}
		// With rare short indels the optimum stays inside a 32-band.
		if banded.Score < full.Score*9/10 {
			t.Errorf("trial %d: banded %d far below full %d", trial, banded.Score, full.Score)
		}
	}
}

func TestBandedNeverExceedsFullSW(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(11))
	for _, band := range []int{1, 4, 16, 64} {
		ba := NewBandedAligner(sc, band)
		for trial := 0; trial < 20; trial++ {
			target := randSeq(rng, 80)
			query := randSeq(rng, 80)
			full := SmithWaterman(sc, target, query)
			banded := ba.Align(target, query)
			if banded.Score > full.Score {
				t.Fatalf("band %d trial %d: banded %d > full %d", band, trial, banded.Score, full.Score)
			}
			if banded.Score < 0 {
				t.Fatalf("banded score negative: %d", banded.Score)
			}
		}
	}
}

func TestBandedCellsWithinBudget(t *testing.T) {
	sc := DefaultScoring()
	band := 32
	ba := NewBandedAligner(sc, band)
	rng := rand.New(rand.NewSource(3))
	n := 320
	target := randSeq(rng, n)
	query := randSeq(rng, n)
	res := ba.Align(target, query)
	budget := n * (2*band + 1)
	if res.Cells > budget {
		t.Errorf("cells = %d exceeds band budget %d", res.Cells, budget)
	}
	if res.Cells < n { // at least the diagonal
		t.Errorf("cells = %d below diagonal length %d", res.Cells, n)
	}
}

func TestFilterTileCentersSeed(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(5))
	// Construct a target/query pair identical in a window around the hit.
	target := randSeq(rng, 1000)
	query := randSeq(rng, 1000)
	copy(query[480:560], target[480:560])
	ba := NewBandedAligner(sc, 32)
	res := ba.FilterTile(target, query, 500, 500, 320)
	if res.Score < 70*91 {
		t.Errorf("filter score = %d, want >= %d", res.Score, 70*91)
	}
	if res.TPos < 480 || res.TPos > 570 {
		t.Errorf("anchor TPos = %d outside planted window", res.TPos)
	}
}

func TestFilterTileAtBoundary(t *testing.T) {
	sc := DefaultScoring()
	seq := []byte("ACGTACGTACGTACGTACGT")
	ba := NewBandedAligner(sc, 8)
	// Seed at position 0: tile clips to sequence start without panicking.
	res := ba.FilterTile(seq, seq, 0, 0, 320)
	if res.Score <= 0 {
		t.Errorf("boundary tile score = %d", res.Score)
	}
	res = ba.FilterTile(seq, seq, len(seq)-1, len(seq)-1, 320)
	if res.Score <= 0 {
		t.Errorf("end-boundary tile score = %d", res.Score)
	}
}

func TestUngappedExtendPerfect(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(9))
	seq := randSeq(rng, 200)
	u := NewUngappedExtender(sc, 340)
	res := u.Extend(seq, seq, 100, 100, 19)
	if res.TStart != 0 || res.TEnd != 200 {
		t.Errorf("perfect extension = [%d,%d), want [0,200)", res.TStart, res.TEnd)
	}
	var want int32
	for _, b := range seq {
		want += sc.Score(b, b)
	}
	if res.Score != want {
		t.Errorf("score = %d, want %d", res.Score, want)
	}
}

func TestUngappedExtendStopsAtDivergence(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(13))
	target := randSeq(rng, 400)
	query := randSeq(rng, 400)
	copy(query[150:250], target[150:250]) // 100 bp identical island
	u := NewUngappedExtender(sc, 340)
	res := u.Extend(target, query, 200, 200, 19)
	if res.TStart > 150 || res.TEnd < 250 {
		t.Errorf("island not covered: [%d,%d)", res.TStart, res.TEnd)
	}
	// Extension should stop well before the sequence ends.
	if res.TStart < 100 || res.TEnd > 300 {
		t.Errorf("extension ran away: [%d,%d)", res.TStart, res.TEnd)
	}
}

func TestUngappedIndelKillsScore(t *testing.T) {
	// The motivating observation of the paper: an indel near the seed
	// makes the ungapped score low while the gapped (banded) score stays
	// high.
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(17))
	base := randSeq(rng, 400)
	target := append([]byte{}, base...)
	// Query: same, but with a 10-base insertion 25 bp right of the seed.
	query := append([]byte{}, base[:225]...)
	query = append(query, randSeq(rng, 10)...)
	query = append(query, base[225:]...)
	u := NewUngappedExtender(sc, 340)
	ung := u.Extend(target, query, 200, 200, 19)
	ba := NewBandedAligner(sc, 32)
	gap := ba.FilterTile(target, query, 200, 200, 320)
	if gap.Score <= ung.Score {
		t.Errorf("gapped %d should beat ungapped %d across an indel", gap.Score, ung.Score)
	}
	if gap.Score < 2*ung.Score {
		t.Logf("note: gapped %d vs ungapped %d (expected large ratio)", gap.Score, ung.Score)
	}
}

func TestXDropExactMatch(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(21))
	seq := randSeq(rng, 300)
	xa := NewXDropAligner(sc, 9430)
	res := xa.Align(seq, seq)
	var want int32
	for _, b := range seq {
		want += sc.Score(b, b)
	}
	if res.Score != want {
		t.Errorf("score = %d, want %d", res.Score, want)
	}
	if res.TEnd != len(seq) || res.QEnd != len(seq) {
		t.Errorf("end = (%d,%d), want (%d,%d)", res.TEnd, res.QEnd, len(seq), len(seq))
	}
	for _, op := range res.Ops {
		if op != OpMatch {
			t.Fatalf("non-match op %c on identical sequences", op)
		}
	}
}

// bruteBestPrefix computes max over all (i,j) of the best global
// alignment score of target[:i] vs query[:j] — the oracle for X-drop
// with an unbounded drop threshold.
func bruteBestPrefix(sc *Scoring, target, query []byte) int32 {
	n, m := len(target), len(query)
	v := make([][]int32, n+1)
	d := make([][]int32, n+1)
	for i := range v {
		v[i] = make([]int32, m+1)
		d[i] = make([]int32, m+1)
	}
	best := int32(0)
	for i := 0; i <= n; i++ {
		var iRow int32 = negInf
		for j := 0; j <= m; j++ {
			switch {
			case i == 0 && j == 0:
				v[0][0] = 0
				d[0][0] = negInf
			case i == 0:
				v[0][j] = -sc.GapCost(j)
				d[0][j] = negInf
			case j == 0:
				v[i][0] = -sc.GapCost(i)
				d[i][0] = v[i][0]
				iRow = negInf
			default:
				iRow = max2(v[i][j-1]-sc.GapOpen, iRow-sc.GapExtend)
				d[i][j] = max2(v[i-1][j]-sc.GapOpen, d[i-1][j]-sc.GapExtend)
				v[i][j] = max3(v[i-1][j-1]+sc.Score(target[i-1], query[j-1]), d[i][j], iRow)
			}
			if v[i][j] > best {
				best = v[i][j]
			}
		}
	}
	return best
}

func TestXDropMatchesBruteForceWithLargeY(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(23))
	xa := NewXDropAligner(sc, 1<<28) // effectively unbounded
	for trial := 0; trial < 25; trial++ {
		target := randSeq(rng, 30+rng.Intn(60))
		query := mutate(rng, target, 0.15, 0.05)
		want := bruteBestPrefix(sc, target, query)
		res := xa.Align(target, query)
		if res.Score != want {
			t.Fatalf("trial %d: xdrop %d, brute force %d", trial, res.Score, want)
		}
	}
}

func TestXDropRescoreProperty(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(29))
	xa := NewXDropAligner(sc, 9430)
	for trial := 0; trial < 40; trial++ {
		target := randSeq(rng, 50+rng.Intn(300))
		query := mutate(rng, target, 0.1, 0.03)
		res := xa.Align(target, query)
		a := Alignment{Score: res.Score, TEnd: res.TEnd, QEnd: res.QEnd, Ops: res.Ops}
		if err := a.CheckConsistency(len(target), len(query)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := a.Rescore(sc, target, query); got != res.Score {
			t.Fatalf("trial %d: Rescore = %d, Score = %d (cigar %s)", trial, got, res.Score, a.CIGAR())
		}
	}
}

func TestXDropPrunesCells(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(31))
	n := 1000
	target := randSeq(rng, n)
	query := mutate(rng, target, 0.1, 0.01)
	xa := NewXDropAligner(sc, 9430)
	res := xa.Align(target, query)
	fullCells := (n + 1) * (len(query) + 1)
	if res.Cells >= fullCells/2 {
		t.Errorf("x-drop computed %d of %d cells; expected substantial pruning", res.Cells, fullCells)
	}
	if res.Score <= 0 {
		t.Errorf("score = %d on 90%% identical pair", res.Score)
	}
}

func TestXDropTerminatesOnJunk(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(37))
	target := randSeq(rng, 2000)
	query := randSeq(rng, 2000)
	xa := NewXDropAligner(sc, 500)
	res := xa.Align(target, query)
	// Unrelated sequences: X-drop should abandon quickly.
	if res.Cells > 400*400 {
		t.Errorf("x-drop computed %d cells on unrelated sequences", res.Cells)
	}
}

func TestXDropEmptyInputs(t *testing.T) {
	sc := DefaultScoring()
	xa := NewXDropAligner(sc, 1000)
	res := xa.Align(nil, nil)
	if res.Score != 0 || len(res.Ops) != 0 {
		t.Errorf("empty alignment: %+v", res)
	}
	res = xa.Align([]byte("ACGT"), nil)
	if res.Score != 0 {
		t.Errorf("vs empty query: score %d, want 0", res.Score)
	}
}

func TestCIGARAndBlocks(t *testing.T) {
	a := Alignment{Ops: []EditOp{'M', 'M', 'M', 'I', 'I', 'M', 'D', 'M', 'M'}}
	if got := a.CIGAR(); got != "3M2I1M1D2M" {
		t.Errorf("CIGAR = %q", got)
	}
	blocks := a.UngappedBlocks()
	want := []int{3, 1, 2}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v, want %v", blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Errorf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestReverseOps(t *testing.T) {
	ops := []EditOp{'M', 'I', 'D'}
	ReverseOps(ops)
	if ops[0] != 'D' || ops[1] != 'I' || ops[2] != 'M' {
		t.Errorf("ReverseOps = %v", ops)
	}
}

func TestAlignmentCounts(t *testing.T) {
	target := []byte("ACGTA")
	query := []byte("ACCTA")
	a := Alignment{TStart: 0, TEnd: 5, QStart: 0, QEnd: 5,
		Ops: []EditOp{'M', 'M', 'M', 'M', 'M'}}
	m, mm, g := a.Counts(target, query)
	if m != 4 || mm != 1 || g != 0 {
		t.Errorf("counts = %d/%d/%d, want 4/1/0", m, mm, g)
	}
	if id := a.Identity(target, query); id != 0.8 {
		t.Errorf("identity = %v, want 0.8", id)
	}
}
