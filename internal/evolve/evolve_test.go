package evolve

import (
	"testing"

	"darwinwga/internal/genome"
)

func genPair(t *testing.T, cfg Config) *Pair {
	t.Helper()
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func smallConfig() Config {
	return Config{
		Name: "test", TargetName: "tgt", QueryName: "qry",
		Length: 50000, SubRate: 0.10, IndelRate: 0.01, Seed: 1,
	}
}

func TestGenerateBasics(t *testing.T) {
	p := genPair(t, smallConfig())
	if p.Target.TotalLen() != 50000 {
		t.Errorf("target length = %d, want 50000", p.Target.TotalLen())
	}
	// Query length should be within ~15% of target (indels balance).
	ql := p.Query.TotalLen()
	if ql < 42000 || ql > 58000 {
		t.Errorf("query length = %d, far from target", ql)
	}
	if err := p.Target.Seqs[0].Validate(); err != nil {
		t.Errorf("target bases invalid: %v", err)
	}
	if err := p.Query.Seqs[0].Validate(); err != nil {
		t.Errorf("query bases invalid: %v", err)
	}
	if len(p.Genes) == 0 {
		t.Error("no genes annotated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genPair(t, smallConfig())
	b := genPair(t, smallConfig())
	if string(a.TargetSeq()) != string(b.TargetSeq()) {
		t.Error("target not deterministic for equal seeds")
	}
	if string(a.QuerySeq()) != string(b.QuerySeq()) {
		t.Error("query not deterministic for equal seeds")
	}
	c := smallConfig()
	c.Seed = 2
	d := genPair(t, c)
	if string(a.TargetSeq()) == string(d.TargetSeq()) {
		t.Error("different seeds produced identical genomes")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Length = 10
	if _, err := Generate(cfg); err == nil {
		t.Error("tiny genome accepted")
	}
	cfg = smallConfig()
	cfg.SubRate = 0.9
	if _, err := Generate(cfg); err == nil {
		t.Error("huge substitution rate accepted")
	}
	cfg = smallConfig()
	cfg.IndelRate = 0.5
	if _, err := Generate(cfg); err == nil {
		t.Error("huge indel rate accepted")
	}
}

func TestCoordMapPointsAtConservedBases(t *testing.T) {
	cfg := smallConfig()
	cfg.Inversions = 0
	cfg.Duplications = 0
	p := genPair(t, cfg)
	target, query := p.TargetSeq(), p.QuerySeq()
	m := p.Map
	if len(m.QPos) != len(target) {
		t.Fatalf("map length %d != target %d", len(m.QPos), len(target))
	}
	// Mapped positions must be monotone increasing and mostly agree on
	// the base (1 - SubRate, modulo region factors).
	lastQ := int32(-1)
	mapped, agree := 0, 0
	for tpos, qp := range m.QPos {
		if qp == Unmapped {
			continue
		}
		if qp <= lastQ {
			t.Fatalf("map not monotone at t=%d: %d after %d", tpos, qp, lastQ)
		}
		lastQ = qp
		if int(qp) >= len(query) {
			t.Fatalf("map out of range: q=%d len=%d", qp, len(query))
		}
		mapped++
		if target[tpos] == query[qp] {
			agree++
		}
	}
	// Default FastFraction (0.30) turns over that share of the genome;
	// deletions take a few percent more.
	if mapped < len(target)*55/100 || mapped > len(target)*85/100 {
		t.Errorf("%d of %d bases mapped; inconsistent with 30%% turnover", mapped, len(target))
	}
	frac := float64(agree) / float64(mapped)
	if frac < 0.75 || frac > 0.97 {
		t.Errorf("mapped-base agreement %.3f outside plausible band for SubRate 0.10", frac)
	}
}

func TestExonsConservedMoreThanNeutral(t *testing.T) {
	cfg := smallConfig()
	cfg.Length = 200000
	cfg.Inversions = 0
	cfg.Duplications = 0
	p := genPair(t, cfg)
	target, query := p.TargetSeq(), p.QuerySeq()
	inExon := make([]bool, len(target))
	for _, g := range p.Genes {
		for _, e := range g.Exons {
			for i := e.Start; i < e.End; i++ {
				inExon[i] = true
			}
		}
	}
	var exonAgree, exonTot, otherAgree, otherTot int
	for tpos, qp := range p.Map.QPos {
		if qp == Unmapped {
			continue
		}
		same := target[tpos] == query[qp]
		if inExon[tpos] {
			exonTot++
			if same {
				exonAgree++
			}
		} else {
			otherTot++
			if same {
				otherAgree++
			}
		}
	}
	exonID := float64(exonAgree) / float64(exonTot)
	otherID := float64(otherAgree) / float64(otherTot)
	if exonID <= otherID {
		t.Errorf("exon identity %.3f not above background %.3f", exonID, otherID)
	}
}

func TestIndelDensityTracksConfig(t *testing.T) {
	mk := func(indelRate float64) float64 {
		cfg := smallConfig()
		cfg.Length = 100000
		cfg.IndelRate = indelRate
		cfg.Inversions = 0
		cfg.Duplications = 0
		p := genPair(t, cfg)
		// Count gap events: transitions between mapped and unmapped, and
		// jumps in query position (insertions).
		events := 0
		lastQ := int32(-10)
		for _, qp := range p.Map.QPos {
			if qp == Unmapped {
				if lastQ != Unmapped {
					events++
				}
				lastQ = Unmapped
				continue
			}
			if lastQ >= 0 && qp > lastQ+1 {
				events++
			}
			lastQ = qp
		}
		return float64(events) / float64(cfg.Length)
	}
	sparse := mk(0.002)
	dense := mk(0.02)
	if dense < sparse*4 {
		t.Errorf("indel density did not scale: %.5f vs %.5f", sparse, dense)
	}
}

func TestInversionsRecordedInMap(t *testing.T) {
	cfg := smallConfig()
	cfg.Length = 100000
	cfg.Inversions = 3
	cfg.Duplications = 0
	p := genPair(t, cfg)
	rev := 0
	for _, r := range p.Map.Reverse {
		if r {
			rev++
		}
	}
	if rev == 0 {
		t.Error("no bases marked as inverted despite 3 inversions")
	}
	// Inverted bases must complement-match their mapped query base more
	// often than not.
	target, query := p.TargetSeq(), p.QuerySeq()
	agree, tot := 0, 0
	for tpos, qp := range p.Map.QPos {
		if qp == Unmapped || !p.Map.Reverse[tpos] {
			continue
		}
		tot++
		if genome.ComplementBase(target[tpos]) == query[qp] {
			agree++
		}
	}
	if tot > 0 && agree*2 < tot {
		t.Errorf("inverted bases complement-agree %d/%d", agree, tot)
	}
}

func TestDuplicationsGrowQuery(t *testing.T) {
	cfg := smallConfig()
	cfg.Length = 100000
	cfg.Inversions = 0
	cfg.Duplications = 0
	base := genPair(t, cfg)
	cfg.Duplications = 5
	dup := genPair(t, cfg)
	if dup.Query.TotalLen() <= base.Query.TotalLen() {
		t.Errorf("duplications did not grow the query: %d vs %d",
			dup.Query.TotalLen(), base.Query.TotalLen())
	}
	// The map must still be consistent after insertion shifts.
	target, query := dup.TargetSeq(), dup.QuerySeq()
	agree, tot := 0, 0
	for tpos, qp := range dup.Map.QPos {
		if qp == Unmapped || dup.Map.Reverse[tpos] {
			continue
		}
		if int(qp) >= len(query) {
			t.Fatalf("map out of range after duplication: %d", qp)
		}
		tot++
		if target[tpos] == query[qp] {
			agree++
		}
	}
	if float64(agree)/float64(tot) < 0.75 {
		t.Errorf("map agreement %.3f after duplications", float64(agree)/float64(tot))
	}
}

func TestMapInterval(t *testing.T) {
	m := &CoordMap{
		QPos:    []int32{10, 11, Unmapped, 13, 14},
		Reverse: make([]bool, 5),
	}
	q, frac, inv := m.MapInterval(Interval{Start: 0, End: 5})
	if q.Start != 10 || q.End != 15 {
		t.Errorf("mapped interval = %+v", q)
	}
	if frac != 0.8 {
		t.Errorf("mapped fraction = %v, want 0.8", frac)
	}
	if inv {
		t.Error("not inverted")
	}
	q, frac, _ = m.MapInterval(Interval{Start: 2, End: 3})
	if frac != 0 {
		t.Errorf("unmapped interval frac = %v", frac)
	}
	_ = q
}

func TestStandardPairs(t *testing.T) {
	cfgs := StandardPairs(0.002) // tiny for test speed
	if len(cfgs) != 4 {
		t.Fatalf("got %d pairs", len(cfgs))
	}
	for _, cfg := range cfgs {
		if cfg.Length < 1000 {
			t.Errorf("%s: length %d", cfg.Name, cfg.Length)
		}
		p, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if p.Target.Name != cfg.TargetName || p.Query.Name != cfg.QueryName {
			t.Errorf("%s: assembly names %s/%s", cfg.Name, p.Target.Name, p.Query.Name)
		}
	}
	if _, ok := StandardPair("nope", 1); ok {
		t.Error("unknown pair accepted")
	}
	if ScaledQueryLen("ce11-cb4", 0.01) != 1050000 {
		t.Errorf("ScaledQueryLen = %d", ScaledQueryLen("ce11-cb4", 0.01))
	}
}

func TestStandardPairDivergenceOrdering(t *testing.T) {
	// The four pairs must be ordered from most to least diverged, which
	// drives every sensitivity table in the paper.
	var lastSub, lastIndel float64 = 1, 1
	for _, name := range StandardPairNames {
		cfg, ok := StandardPair(name, 0.01)
		if !ok {
			t.Fatalf("missing pair %s", name)
		}
		if cfg.SubRate >= lastSub || cfg.IndelRate >= lastIndel {
			t.Errorf("%s: divergence not strictly decreasing", name)
		}
		lastSub, lastIndel = cfg.SubRate, cfg.IndelRate
	}
}

func TestGeneSpan(t *testing.T) {
	g := Gene{Exons: []Interval{{10, 20}, {50, 70}}}
	s := g.Span()
	if s.Start != 10 || s.End != 70 {
		t.Errorf("span = %+v", s)
	}
	if (Interval{3, 8}).Len() != 5 {
		t.Error("Interval.Len wrong")
	}
}
