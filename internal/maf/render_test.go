package maf

import (
	"bytes"
	"strings"
	"testing"

	"darwinwga/internal/genome"
)

func testSeqMap(t *testing.T) *SeqMap {
	t.Helper()
	// Three sequences of lengths 10, 5, 7 → starts [0 10 15 22].
	m, err := NewSeqMap("asm", []string{"chr1", "chr2", "chr3"}, []int{0, 10, 15, 22})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewSeqMapValidates(t *testing.T) {
	if _, err := NewSeqMap("a", []string{"x"}, []int{0}); err == nil {
		t.Error("short starts accepted")
	}
	if _, err := NewSeqMap("a", nil, []int{0}); err == nil {
		t.Error("empty map accepted")
	}
}

func TestSeqMapLocate(t *testing.T) {
	m := testSeqMap(t)
	if m.Total() != 22 {
		t.Fatalf("Total = %d", m.Total())
	}
	cases := []struct {
		pos     int
		name    string
		off, sz int
	}{
		{0, "asm.chr1", 0, 10},
		{9, "asm.chr1", 0, 10},
		{10, "asm.chr2", 10, 5},
		{14, "asm.chr2", 10, 5},
		{15, "asm.chr3", 15, 7},
		{21, "asm.chr3", 15, 7},
	}
	for _, tc := range cases {
		name, off, sz := m.Locate(tc.pos)
		if name != tc.name || off != tc.off || sz != tc.sz {
			t.Errorf("Locate(%d) = (%s, %d, %d), want (%s, %d, %d)",
				tc.pos, name, off, sz, tc.name, tc.off, tc.sz)
		}
	}
}

func TestSeqMapLocateRC(t *testing.T) {
	m := testSeqMap(t)
	// In RC space the layout reverses: chr3 occupies [0,7), chr2 [7,12),
	// chr1 [12,22).
	cases := []struct {
		pos     int
		name    string
		off, sz int
	}{
		{0, "asm.chr3", 0, 7},
		{6, "asm.chr3", 0, 7},
		{7, "asm.chr2", 7, 5},
		{11, "asm.chr2", 7, 5},
		{12, "asm.chr1", 12, 10},
		{21, "asm.chr1", 12, 10},
	}
	for _, tc := range cases {
		name, off, sz := m.LocateRC(tc.pos)
		if name != tc.name || off != tc.off || sz != tc.sz {
			t.Errorf("LocateRC(%d) = (%s, %d, %d), want (%s, %d, %d)",
				tc.pos, name, off, sz, tc.name, tc.off, tc.sz)
		}
	}
}

func TestBlockRendererBothStrands(t *testing.T) {
	target := []byte("ACGTACGTACGTACGTACGT")
	query := []byte("ACGTACGTAC")
	tMap, err := NewSeqMap("tgt", []string{"c1"}, []int{0, len(target)})
	if err != nil {
		t.Fatal(err)
	}
	qMap, err := NewSeqMap("qry", []string{"s1"}, []int{0, len(query)})
	if err != nil {
		t.Fatal(err)
	}
	br := &BlockRenderer{TMap: tMap, QMap: qMap, Target: target, Query: query}

	// Forward: 6 matches starting at t=4, q=2.
	b, err := br.Render(600, '+', 4, 2, bytes.Repeat([]byte{'M'}, 6))
	if err != nil {
		t.Fatal(err)
	}
	if b.TName != "tgt.c1" || b.QName != "qry.s1" || b.TStart != 4 || b.QStart != 2 {
		t.Errorf("forward block: %+v", b)
	}
	if b.TText != "ACGTAC" || b.QText != string(query[2:8]) {
		t.Errorf("forward texts: %q / %q", b.TText, b.QText)
	}

	// Reverse: ops consume the reverse-complemented query.
	rc := genome.ReverseComplement(query)
	b2, err := br.Render(300, '-', 0, 3, bytes.Repeat([]byte{'M'}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if b2.QStrand != '-' || b2.QText != string(rc[3:7]) {
		t.Errorf("reverse block: %+v", b2)
	}
	if b2.QSrc != len(query) || b2.QStart != 3 {
		t.Errorf("reverse coords: %+v", b2)
	}

	// Inconsistent transcript → validation error, not a bad block.
	if _, err := br.Render(0, '+', 0, 0, []byte("MMMMMMMMMMMMMMMMMMMMMMMMMMMMMM")); err == nil {
		t.Error("overlong transcript accepted")
	}
}

// TestStreamWriterMatchesBatchWriter pins the serving-layer guarantee:
// for the same blocks, the incremental stream writer and the batch
// writer produce byte-identical output, and every prefix of the stream
// (header, then per-block flushes) is already on the wire.
func TestStreamWriterMatchesBatchWriter(t *testing.T) {
	b1, b2 := sampleBlock(), sampleBlock()
	b2.Score = -7
	b2.QStrand = '-'

	var batch bytes.Buffer
	bw := NewWriter(&batch)
	for _, b := range []*Block{b1, b2} {
		if err := bw.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	sw, err := NewStreamWriter(&stream)
	if err != nil {
		t.Fatal(err)
	}
	// The header is flushed before any block exists.
	if got := stream.String(); !strings.HasPrefix(got, "##maf") || strings.Contains(got, "a score") {
		t.Errorf("stream after construction: %q", got)
	}
	if err := sw.Write(b1); err != nil {
		t.Fatal(err)
	}
	afterOne := stream.Len()
	if !strings.Contains(stream.String(), "a score=12345") {
		t.Error("first block not flushed incrementally")
	}
	if err := sw.Write(b2); err != nil {
		t.Fatal(err)
	}
	if stream.Len() <= afterOne {
		t.Error("second block not flushed incrementally")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(stream.Bytes(), batch.Bytes()) {
		t.Errorf("stream output differs from batch output:\n%q\nvs\n%q", stream.String(), batch.String())
	}
	blocks, complete, err := ReadVerified(bytes.NewReader(stream.Bytes()))
	if err != nil || !complete || len(blocks) != 2 {
		t.Errorf("ReadVerified(stream): %d blocks complete=%v err=%v", len(blocks), complete, err)
	}
}
