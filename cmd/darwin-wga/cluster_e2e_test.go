package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darwinwga"
	"darwinwga/internal/evolve"
	"darwinwga/internal/maf"
)

// TestClusterFailoverE2E is the sharded-serving contract end to end,
// over real processes and real sockets:
//
//  1. Worker crash: a coordinator routes a job to one of two workers
//     replicating the same target; that worker is SIGKILLed. The
//     coordinator must fail the job over to the surviving replica and
//     finish it under the original job id, with a MAF byte-identical
//     to an uninterrupted one-shot CLI run over the same FASTA files.
//  2. Coordinator crash: a second job is routed, then the coordinator
//     is SIGKILLed and restarted on the same address and -journal-dir.
//     The restart must recover the routing state from its WAL and the
//     job must still complete — again byte-identical — under its
//     original id, with the recovery visible in /metrics.
func TestClusterFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster e2e is not -short")
	}
	dir := t.TempDir()

	cfg, ok := evolve.StandardPair("dm6-droSim1", 0.0004)
	if !ok {
		t.Fatal("unknown pair dm6-droSim1")
	}
	pair, err := evolve.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tPath := filepath.Join(dir, pair.Target.Name+".fa")
	qPath := filepath.Join(dir, pair.Query.Name+".fa")
	if err := darwinwga.WriteFASTA(tPath, pair.Target); err != nil {
		t.Fatal(err)
	}
	if err := darwinwga.WriteFASTA(qPath, pair.Query); err != nil {
		t.Fatal(err)
	}
	queryRaw, err := os.ReadFile(qPath)
	if err != nil {
		t.Fatal(err)
	}
	queryFASTA := string(queryRaw)

	// The single-node reference every failover result must match.
	refPath := filepath.Join(dir, "ref.maf")
	if err := run(context.Background(), options{
		targetPath: tPath, queryPath: qPath, outPath: refPath,
		scale: 0.01, topChains: 3,
	}); err != nil {
		t.Fatalf("one-shot reference: %v", err)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if blocks, complete, err := maf.ReadVerified(bytes.NewReader(ref)); err != nil || !complete || len(blocks) == 0 {
		t.Fatalf("reference MAF unusable (blocks=%d complete=%v err=%v)", len(blocks), complete, err)
	}

	// A long -poll-interval holds the coordinator's first status poll
	// back, which is the deterministic "mid-job" window: the worker is
	// killed after the routing decision but before the coordinator can
	// observe any outcome from it.
	journalDir := filepath.Join(dir, "coord-journal")
	coordArgs := func(addr string) []string {
		return []string{
			"serve", "-role=coordinator", "-addr", addr,
			"-replication", "2",
			"-lease-ttl", "3s",
			"-poll-interval", "2s",
			"-journal-dir", journalDir,
		}
	}
	coordCmd, coordBase, coordLog := spawnServe(t, coordArgs("127.0.0.1:0"))
	waitHTTP(t, coordBase+"/healthz", http.StatusOK, 30*time.Second)

	workerArgs := func(id string) []string {
		return []string{
			"serve", "-role=worker", "-addr", "127.0.0.1:0",
			"-coordinator", coordBase,
			"-worker-id", id,
			"-register", pair.Target.Name + "=" + tPath,
			"-job-workers", "1",
		}
	}
	w1Cmd, w1Base, w1Log := spawnServe(t, workerArgs("w1"))
	w2Cmd, w2Base, w2Log := spawnServe(t, workerArgs("w2"))
	workers := map[string]*exec.Cmd{w1Base: w1Cmd, w2Base: w2Cmd}
	waitReplicas(t, coordBase, pair.Target.Name, 2, 30*time.Second)

	// ---- Phase 1: worker crash mid-job -------------------------------

	submit := map[string]any{
		"target":      pair.Target.Name,
		"query_fasta": queryFASTA,
		"query_name":  pair.Query.Name,
		"client":      "cluster-e2e",
	}
	code, body := postJSON(t, coordBase+"/v1/jobs", submit)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", code, body)
	}
	var st1 struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st1); err != nil {
		t.Fatal(err)
	}

	assigned := awaitAssignment(t, coordBase, st1.ID, 30*time.Second)
	victim, ok := workers[assigned]
	if !ok {
		t.Fatalf("job %s assigned to %q, which is neither %s nor %s", st1.ID, assigned, w1Base, w2Base)
	}
	survivorBase := w1Base
	if assigned == w1Base {
		survivorBase = w2Base
	}
	// Before the kill, poll the coordinator's merged trace until the
	// first worker's spans have been drained coordinator-side — that is
	// what must survive the SIGKILL.
	traceID := awaitTraceSpans(t, coordBase, st1.ID, 30*time.Second)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go victim.Wait() //nolint:errcheck // reap the killed worker

	if state := awaitTerminal(t, coordBase, st1.ID, 3*time.Minute); state != "done" {
		t.Fatalf("job %s after worker crash: state %q, want done; coordinator log:\n%s",
			st1.ID, state, coordLog.String())
	}
	final1 := clusterStatus(t, coordBase, st1.ID)
	if final1.Dispatches < 2 {
		t.Errorf("job %s finished with %d dispatches, want >= 2 (failover)", st1.ID, final1.Dispatches)
	}
	if final1.Worker == nil || final1.Worker.WorkerAddr == assigned {
		t.Errorf("job %s still credited to the killed worker %s", st1.ID, assigned)
	}
	workerLogs := map[string]*bytes.Buffer{w1Base: w1Log, w2Base: w2Log}
	got1 := fetchMAF(t, coordBase, st1.ID)
	if !bytes.Equal(got1, ref) {
		t.Errorf("failover MAF (%d bytes) differs from one-shot reference (%d bytes); survivor %s log:\n%s",
			len(got1), len(ref), survivorBase, workerLogs[survivorBase].String())
	}

	// The merged trace spans both workers under the one trace id minted
	// at admission, with the replayed (post-failover) portion attributed.
	doc := fetchMergedTrace(t, coordBase, st1.ID)
	if doc.OtherData.TraceID == "" || doc.OtherData.TraceID != traceID {
		t.Errorf("trace id changed across failover: %q then %q", traceID, doc.OtherData.TraceID)
	}
	pids := map[int]bool{}
	originals, replays, replaySuffix := 0, 0, false
	for _, e := range doc.TraceEvents {
		switch e.Name {
		case "process_name":
			if name, _ := e.Args["name"].(string); strings.Contains(name, "[failover replay]") {
				replaySuffix = true
			}
			continue
		case "replayed", "spans-dropped":
			continue
		}
		pids[e.Pid] = true
		if e.Args["replayed"] == true {
			replays++
		} else {
			originals++
		}
	}
	if len(pids) < 2 {
		t.Errorf("merged trace covers %d processes, want 2 (one per worker); coordinator log:\n%s",
			len(pids), coordLog.String())
	}
	if originals == 0 || replays == 0 {
		t.Errorf("merged trace has %d original and %d replayed spans; want both nonzero", originals, replays)
	}
	if !replaySuffix {
		t.Error("no process_name metadata marks the failover replay")
	}

	// The flight record reads as the job's full lifecycle, failover
	// included.
	flightTypes := fetchFlightTypes(t, coordBase, st1.ID)
	for _, typ := range []string{"admitted", "dispatched", "failover", "finished"} {
		if !flightTypes[typ] {
			t.Errorf("flight record missing %q (got %v)", typ, flightTypes)
		}
	}

	// Fleet federation: the survivor's heartbeat snapshots surface as
	// per-worker series on the coordinator.
	awaitClusterSeries(t, coordBase, "darwinwga_cluster_worker_queue_depth{worker=", 30*time.Second)

	// The serve startup line identifies the build (satellite: version in
	// the log, build_info on the scrape).
	if !strings.Contains(workerLogs[survivorBase].String(), "version=") {
		t.Errorf("survivor startup log has no version field:\n%s", workerLogs[survivorBase].String())
	}
	if !scrapeContains(t, survivorBase+"/metrics", "darwinwga_build_info{version=") {
		t.Error("survivor /metrics has no darwinwga_build_info gauge")
	}

	// ---- Phase 2: coordinator crash + restart ------------------------

	code, body = postJSON(t, coordBase+"/v1/jobs", submit)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d (%s)", code, body)
	}
	var st2 struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	awaitAssignment(t, coordBase, st2.ID, 30*time.Second)

	if err := coordCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go coordCmd.Wait() //nolint:errcheck // reap the killed coordinator

	// The WAL must already record the submission and its assignment —
	// that is what the restart folds back.
	if segs, err := filepath.Glob(filepath.Join(journalDir, "wal", "seg-*.wal")); err != nil || len(segs) == 0 {
		t.Fatalf("killed coordinator left no WAL segments in %s (err %v)", journalDir, err)
	}

	// Restart on the same address so the surviving worker's agent
	// re-registers on its own (heartbeat misses force a re-register).
	coordAddr := strings.TrimPrefix(coordBase, "http://")
	_, coordBase2, coordLog2 := spawnServe(t, coordArgs(coordAddr))
	if coordBase2 != coordBase {
		t.Fatalf("restarted coordinator bound %s, want %s", coordBase2, coordBase)
	}
	waitReplicas(t, coordBase, pair.Target.Name, 1, time.Minute)

	if state := awaitTerminal(t, coordBase, st2.ID, 3*time.Minute); state != "done" {
		t.Fatalf("job %s after coordinator restart: state %q, want done; restart log:\n%s",
			st2.ID, state, coordLog2.String())
	}
	got2 := fetchMAF(t, coordBase, st2.ID)
	if !bytes.Equal(got2, ref) {
		t.Errorf("recovered MAF (%d bytes) differs from one-shot reference (%d bytes); survivor %s log:\n%s",
			len(got2), len(ref), survivorBase, workerLogs[survivorBase].String())
	}
	if !clusterRecoveredPositive(t, coordBase) {
		t.Errorf("restarted coordinator metrics do not account for the recovered job; log:\n%s",
			coordLog2.String())
	}
}

// clusterStatusView is the slice of the coordinator's job status the
// test reads.
type clusterStatusView struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Error      string `json:"error"`
	Dispatches int    `json:"dispatches"`
	Parked     bool   `json:"parked"`
	Worker     *struct {
		WorkerID    string `json:"worker_id"`
		WorkerAddr  string `json:"worker_addr"`
		WorkerJobID string `json:"worker_job_id"`
	} `json:"worker"`
}

func clusterStatus(t *testing.T, base, id string) clusterStatusView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var st clusterStatusView
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding cluster status: %v (%s)", err, data)
	}
	return st
}

// awaitAssignment polls until the coordinator reports which worker the
// job landed on, and returns that worker's base URL.
func awaitAssignment(t *testing.T, base, id string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := clusterStatus(t, base, id)
		if st.Worker != nil && st.Worker.WorkerAddr != "" {
			return st.Worker.WorkerAddr
		}
		switch st.State {
		case "done", "failed", "cancelled":
			t.Fatalf("job %s reached %q before any assignment was visible", id, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never assigned (state %q, parked %v)", id, st.State, st.Parked)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitReplicas polls /v1/targets until the target has at least want
// live replicas.
func waitReplicas(t *testing.T, base, target string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	last := -1
	for {
		resp, err := http.Get(base + "/v1/targets")
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				var out struct {
					Targets []struct {
						Name     string `json:"name"`
						Replicas int    `json:"replicas"`
					} `json:"targets"`
				}
				if json.Unmarshal(data, &out) == nil {
					for _, e := range out.Targets {
						if e.Name == target {
							last = e.Replicas
							if last >= want {
								return
							}
						}
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("target %s never reached %d replicas (last %d)", target, want, last)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchMAF(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/maf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET maf for %s: HTTP %d (%s)", id, resp.StatusCode, data)
	}
	return data
}

// tracedDoc is the decode shape of the coordinator's merged trace.
type tracedDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData struct {
		TraceID string `json:"trace_id"`
		JobID   string `json:"job_id"`
	} `json:"otherData"`
}

func fetchMergedTrace(t *testing.T, base, id string) tracedDoc {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace for %s: HTTP %d (%s)", id, resp.StatusCode, data)
	}
	var doc tracedDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decoding merged trace: %v (%s)", err, data)
	}
	return doc
}

// awaitTraceSpans polls the coordinator's merged trace until at least
// one pipeline span has been drained from the assigned worker, and
// returns the trace id. Each poll actively pulls the live worker's span
// buffer, so this both waits for and forces the drain.
func awaitTraceSpans(t *testing.T, base, id string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		doc := fetchMergedTrace(t, base, id)
		for _, e := range doc.TraceEvents {
			switch e.Name {
			case "process_name", "replayed", "spans-dropped":
			default:
				return doc.OtherData.TraceID
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: no spans drained from its worker", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchFlightTypes returns the set of event types in the job's merged
// flight record.
func fetchFlightTypes(t *testing.T, base, id string) map[string]bool {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events for %s: HTTP %d (%s)", id, resp.StatusCode, data)
	}
	var doc struct {
		Events []struct {
			Type string `json:"type"`
		} `json:"events"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decoding flight record: %v (%s)", err, data)
	}
	types := map[string]bool{}
	for _, ev := range doc.Events {
		types[ev.Type] = true
	}
	return types
}

// awaitClusterSeries polls GET /metrics/cluster until a line with the
// given prefix appears (heartbeat snapshots arrive asynchronously).
func awaitClusterSeries(t *testing.T, base, prefix string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if scrapeContains(t, base+"/metrics/cluster", prefix) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics/cluster never served a %q series", prefix)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func scrapeContains(t *testing.T, url, want string) bool {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return strings.Contains(string(data), want)
}

// clusterRecoveredPositive reports whether the coordinator's metrics
// carry a nonzero darwinwga_cluster_recovered_jobs_total outcome.
func clusterRecoveredPositive(t *testing.T, base string) bool {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, "darwinwga_cluster_recovered_jobs_total") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" && fields[1] != "0.0" {
			return true
		}
	}
	return false
}
