package experiments

import (
	"fmt"

	"darwinwga/internal/evolve"
	"darwinwga/internal/stats"
	"darwinwga/internal/truth"
)

// TruthRow is the ground-truth evaluation of one pair and mode.
type TruthRow struct {
	Pair      string
	Mode      Mode
	Recall    float64
	Precision float64
}

// RunTruth scores both pipelines against the simulator's exact
// coordinate maps — an evaluation the paper could not run on real
// genomes (Section V-E: "In absence of ground-truth, measuring the
// sensitivity ... is a challenge"). It independently validates the
// Table III story: gapped filtering's extra matched bp are real
// orthology (recall gain at equal precision), not noise.
func RunTruth(l *Lab) ([]TruthRow, error) {
	var rows []TruthRow
	const slop = 5
	for _, name := range evolve.StandardPairNames {
		for _, mode := range []Mode{ModeDarwin, ModeLASTZ} {
			run, err := l.Run(name, mode)
			if err != nil {
				return nil, err
			}
			m := truth.Score(run.Pair, run.Result.HSPs, slop)
			rows = append(rows, TruthRow{
				Pair: name, Mode: mode,
				Recall: m.Recall(), Precision: m.Precision(),
			})
		}
	}
	return rows, nil
}

// Truth renders the ground-truth evaluation.
func Truth(l *Lab) error {
	rows, err := RunTruth(l)
	if err != nil {
		return err
	}
	out := l.Out()
	fmt.Fprintln(out, "Ground-truth evaluation (simulator coordinate maps; not in the paper —")
	fmt.Fprintln(out, "real genomes have no ground truth, which is why the paper uses proxies)")
	fmt.Fprintln(out)
	tbl := stats.NewTable("Species pair", "Aligner", "Recall", "Precision")
	for _, r := range rows {
		tbl.AddRow(r.Pair, string(r.Mode),
			fmt.Sprintf("%.3f", r.Recall),
			fmt.Sprintf("%.3f", r.Precision))
	}
	_, err = fmt.Fprintln(out, tbl)
	return err
}
