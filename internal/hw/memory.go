package hw

import (
	"math"

	"darwinwga/internal/systolic"
)

// MemorySystem models the accelerator's DRAM subsystem. The paper uses
// Ramulator to estimate peak bandwidth for four DDR4-2400R x8 channels
// and provisions the ASIC's array counts so that DRAM bandwidth — not
// compute — is the bottleneck (Section V-D); Section VI-A notes the
// chip's performance is bandwidth-limited.
type MemorySystem struct {
	// Channels is the number of independent DRAM channels.
	Channels int
	// TransfersPerSec is the per-pin transfer rate (2400 MT/s for
	// DDR4-2400).
	TransfersPerSec float64
	// BusBytes is the channel data-bus width in bytes (8 for a 64-bit
	// channel).
	BusBytes int
	// Efficiency derates the peak for row misses, refresh and
	// read/write turnaround (Ramulator-style effective bandwidth).
	Efficiency float64
}

// DDR4x2400R4 is the paper's ASIC memory system: four DDR4-2400R
// channels.
func DDR4x2400R4() MemorySystem {
	return MemorySystem{Channels: 4, TransfersPerSec: 2400e6, BusBytes: 8, Efficiency: 0.60}
}

// PeakBandwidth returns bytes/second at the pins.
func (m MemorySystem) PeakBandwidth() float64 {
	return float64(m.Channels) * m.TransfersPerSec * float64(m.BusBytes)
}

// EffectiveBandwidth returns the sustainable bytes/second.
func (m MemorySystem) EffectiveBandwidth() float64 {
	return m.PeakBandwidth() * m.Efficiency
}

// BSWTileBytes is the DRAM traffic of one gapped-filter tile: both
// sequence windows stream in once (1 byte per base; only Vmax and its
// position return).
func BSWTileBytes(tileSize int) int { return 2 * tileSize }

// GACTXTileBytes is the DRAM traffic of one extension tile: both
// sequence windows in, traceback pointers out (2 bits each, folded into
// the same round number the paper's 1.15 GB/s at 300K tiles/s implies —
// 2 bytes per tile base).
func GACTXTileBytes(tileSize int) int { return 2 * tileSize }

// Demand is an accelerator configuration's DRAM bandwidth demand at
// full compute throughput.
type Demand struct {
	BSWBytesPerSec   float64
	GACTXBytesPerSec float64
}

// Total returns the summed demand in bytes/second.
func (d Demand) Total() float64 { return d.BSWBytesPerSec + d.GACTXBytesPerSec }

// BandwidthDemand computes the demand of a platform running flat out
// with the given tile geometries.
func BandwidthDemand(p Platform, filterTile, filterBand, extTile int, extCells, extRows, extTb int) Demand {
	return Demand{
		BSWBytesPerSec:   p.BSWThroughput(filterTile, filterBand) * float64(BSWTileBytes(filterTile)),
		GACTXBytesPerSec: p.GACTXThroughput(extCells, extRows, extTb) * float64(GACTXTileBytes(extTile)),
	}
}

// ProvisionBSWArrays returns the largest BSW array count a memory
// system can feed at full rate, after reserving the GACT-X demand —
// the paper's provisioning rule ("we provisioned the number of BSW and
// GACT-X arrays on the ASIC to make DRAM bandwidth the bottleneck").
func ProvisionBSWArrays(m MemorySystem, arr systolic.Array, filterTile, filterBand int, gactxDemand float64) int {
	perArray := arr.BSWTileRate(filterTile, filterBand) * float64(BSWTileBytes(filterTile))
	if perArray <= 0 {
		return 0
	}
	budget := m.EffectiveBandwidth() - gactxDemand
	if budget <= 0 {
		return 0
	}
	return int(math.Floor(budget / perArray))
}

// Utilization returns demand over effective bandwidth (1.0 = exactly
// bandwidth-bound).
func Utilization(m MemorySystem, d Demand) float64 {
	return d.Total() / m.EffectiveBandwidth()
}
