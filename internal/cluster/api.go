package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"darwinwga/internal/checkpoint"
	"darwinwga/internal/genome"
	"darwinwga/internal/obs"
)

// clusterSubmit is the coordinator's POST /v1/jobs body: the worker
// submitRequest shape, inline FASTA only (a server-local query_path is
// meaningless across machines).
type clusterSubmit struct {
	Target     string `json:"target"`
	QueryFASTA string `json:"query_fasta"`
	QueryPath  string `json:"query_path,omitempty"` // rejected; here to diagnose
	QueryName  string `json:"query_name,omitempty"`
	Client     string `json:"client,omitempty"`
	// TraceID lets a client thread its own distributed trace id through
	// the job; the X-Darwinwga-Trace header wins over the body, and an
	// absent id is minted at admission.
	TraceID string `json:"trace_id,omitempty"`

	Ungapped          bool  `json:"ungapped,omitempty"`
	ForwardOnly       bool  `json:"forward_only,omitempty"`
	Hf                int32 `json:"hf,omitempty"`
	He                int32 `json:"he,omitempty"`
	MaxCandidates     int64 `json:"max_candidates,omitempty"`
	MaxFilterTiles    int64 `json:"max_filter_tiles,omitempty"`
	MaxExtensionCells int64 `json:"max_extension_cells,omitempty"`
	DeadlineMS        int64 `json:"deadline_ms,omitempty"`
}

// clusterJobStatus is the coordinator's job view: routing history plus
// the client-facing state. Assignments expose which worker holds the
// job — the failover e2e reads it to know whom to kill.
type clusterJobStatus struct {
	ID          string       `json:"id"`
	Target      string       `json:"target"`
	QueryName   string       `json:"query_name,omitempty"`
	Client      string       `json:"client,omitempty"`
	State       string       `json:"state"`
	Error       string       `json:"error,omitempty"`
	Created     time.Time    `json:"created"`
	Finished    *time.Time   `json:"finished,omitempty"`
	Dispatches  int          `json:"dispatches"`
	Parked      bool         `json:"parked,omitempty"`
	Assignments []assignment `json:"assignments,omitempty"`
	Worker      *assignment  `json:"worker,omitempty"`
	TraceID     string       `json:"trace_id,omitempty"`
	// Sharded jobs expose the work-unit map and the partial-result
	// contract: Truncated/FailedShards name the units that exhausted
	// retries; the MAF endpoint answers 206 when any did.
	Sharded      bool             `json:"sharded,omitempty"`
	Truncated    string           `json:"truncated,omitempty"`
	FailedShards []string         `json:"failed_shards,omitempty"`
	Shards       *shardStatusView `json:"shards,omitempty"`
	StatusURL    string           `json:"status_url"`
	MAFURL       string           `json:"maf_url"`
	TraceURL     string           `json:"trace_url"`
	EventsURL    string           `json:"events_url"`
}

// registerBody is POST /cluster/v1/register.
type registerBody struct {
	WorkerID string `json:"worker_id"`
	Addr     string `json:"addr"`
	Targets  []struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint"`
		Serialized  bool   `json:"serialized_index"`
	} `json:"targets"`
}

// heartbeatBody is POST /cluster/v1/heartbeat. Snapshot is the
// worker's piggybacked metrics snapshot (optional; agents predating
// federation omit it).
type heartbeatBody struct {
	WorkerID string              `json:"worker_id"`
	Snapshot *obs.WorkerSnapshot `json:"snapshot,omitempty"`
}

func (c *Coordinator) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/maf", c.handleMAF)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/targets", c.handleTargets)
	mux.HandleFunc("POST /cluster/v1/register", c.handleRegister)
	mux.HandleFunc("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /cluster/v1/workers", c.handleWorkers)
	mux.HandleFunc("GET /cluster/v1/replicate", c.serveReplicate)
	mux.HandleFunc("GET /cluster/v1/jobs/{id}/journal", c.handleShippedList)
	mux.HandleFunc("GET /cluster/v1/jobs/{id}/journal/{seg}", c.handleShippedGet)
	mux.HandleFunc("PUT /cluster/v1/jobs/{id}/journal/{seg}", c.handleShippedPut)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /metrics/cluster", c.handleClusterMetrics)
	return mux
}

func cWriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response committed
}

func cWriteError(w http.ResponseWriter, code int, format string, args ...any) {
	cWriteJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	limit := int64(c.cfg.MaxQueryBases) + int64(c.cfg.MaxQueryBases)/8 + 1<<20
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	var req clusterSubmit
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		cWriteError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Target == "" {
		cWriteError(w, http.StatusBadRequest, "missing target")
		return
	}
	if req.QueryPath != "" {
		cWriteError(w, http.StatusBadRequest,
			"query_path is not supported by the coordinator; inline the query as query_fasta")
		return
	}
	if req.QueryFASTA == "" {
		cWriteError(w, http.StatusBadRequest, "missing query_fasta")
		return
	}
	seqs, err := genome.ReadFASTA(strings.NewReader(req.QueryFASTA))
	if err != nil {
		cWriteError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	queryName := req.QueryName
	if queryName == "" {
		queryName = "query"
	}
	asm := &genome.Assembly{Name: queryName, Seqs: seqs}
	if n := asm.TotalLen(); n > c.cfg.MaxQueryBases {
		cWriteError(w, http.StatusRequestEntityTooLarge,
			"query is %d bases; this coordinator accepts at most %d", n, c.cfg.MaxQueryBases)
		return
	}

	fp, known := c.ms.targetKnown(req.Target)
	if !known {
		cWriteError(w, http.StatusNotFound, "unknown target %q: no worker has ever advertised it", req.Target)
		return
	}
	if len(c.ms.replicasFor(req.Target, c.cfg.ReplicationFactor)) == 0 {
		c.c.noReplica503.Inc()
		c.writeNoReplica(w, req.Target)
		return
	}

	// Normalize the query once; the same bytes are spilled, dispatched,
	// and re-dispatched, so every attempt aligns identical input.
	var buf bytes.Buffer
	if err := genome.WriteFASTA(&buf, asm.Seqs, 80); err != nil {
		cWriteError(w, http.StatusInternalServerError, "normalizing query: %v", err)
		return
	}
	spec := jobSpec{
		Ungapped:          req.Ungapped,
		ForwardOnly:       req.ForwardOnly,
		Hf:                req.Hf,
		He:                req.He,
		MaxCandidates:     req.MaxCandidates,
		MaxFilterTiles:    req.MaxFilterTiles,
		MaxExtensionCells: req.MaxExtensionCells,
		DeadlineMS:        req.DeadlineMS,
	}
	client := req.Client
	if client == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}
	traceID := req.TraceID
	if h := r.Header.Get(TraceHeader); h != "" {
		traceID = h
	}
	j, err := c.submit(req.Target, fp, client, queryName, traceID, buf.String(), spec)
	if err != nil {
		if errors.Is(err, errArtifactStore) {
			c.writeStoreUnavailable(w, err)
			return
		}
		cWriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	cWriteJSON(w, http.StatusAccepted, c.statusOf(j))
}

// writeStoreUnavailable answers 503 + Retry-After for artifact-store
// write failures (disk full): the atomic writer left no partial state,
// so the request is safely retryable once space frees up.
func (c *Coordinator) writeStoreUnavailable(w http.ResponseWriter, err error) {
	c.c.store503.Inc()
	secs := int(c.cfg.LeaseTTL / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	cWriteJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":            fmt.Sprintf("artifact store unavailable: %v", err),
		"retry_after_secs": secs,
	})
}

// writeNoReplica answers graceful degradation: the target is known to
// the cluster but every worker holding it is dead right now.
func (c *Coordinator) writeNoReplica(w http.ResponseWriter, target string) {
	secs := int(c.cfg.LeaseTTL / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	cWriteJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":            fmt.Sprintf("target %q currently has no live replica", target),
		"retry_after_secs": secs,
	})
}

func (c *Coordinator) statusOf(j *coordJob) clusterJobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := clusterJobStatus{
		ID:         j.ID,
		Target:     j.Target,
		QueryName:  j.QueryName,
		Client:     j.Client,
		State:      j.state,
		Error:      j.errMsg,
		Created:    j.Created,
		Dispatches: len(j.assignments),
		Parked:     j.parked,
		TraceID:    j.TraceID,
		StatusURL:  "/v1/jobs/" + j.ID,
		MAFURL:     "/v1/jobs/" + j.ID + "/maf",
		TraceURL:   "/v1/jobs/" + j.ID + "/trace",
		EventsURL:  "/v1/jobs/" + j.ID + "/events",
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.Finished = &t
	}
	st.Sharded = j.sharded
	st.Truncated = j.truncated
	st.FailedShards = append([]string(nil), j.failedShards...)
	if j.shard != nil {
		st.Shards = j.shard.snapshot()
	}
	st.Assignments = append(st.Assignments, j.assignments...)
	if len(j.assignments) > 0 {
		a := j.assignments[len(j.assignments)-1]
		st.Worker = &a
	}
	return st
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := c.getJob(r.PathValue("id"))
	if !ok {
		cWriteError(w, http.StatusNotFound, "unknown job")
		return
	}
	cWriteJSON(w, http.StatusOK, c.statusOf(j))
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	state, ok := c.cancelJob(r.PathValue("id"))
	if !ok {
		cWriteError(w, http.StatusNotFound, "unknown job")
		return
	}
	cWriteJSON(w, http.StatusOK, map[string]any{"state": state})
}

// handleMAF proxies a job's MAF stream from its worker. Failover makes
// this more than a dumb pipe: if the stream breaks because the worker
// died, the proxy re-opens the stream on the job's next assignment and
// splices at the byte offset already sent — correct because the
// deterministic pipeline makes every attempt's MAF byte-identical.
func (c *Coordinator) handleMAF(w http.ResponseWriter, r *http.Request) {
	j, ok := c.getJob(r.PathValue("id"))
	if !ok {
		cWriteError(w, http.StatusNotFound, "unknown job")
		return
	}
	if j.sharded {
		// Sharded jobs have no single worker stream: the coordinator
		// merged the MAF itself.
		c.serveShardMAF(w, r, j)
		return
	}
	sent := 0
	headerWritten := false
	rc := http.NewResponseController(w)
	terminalTries := 0
	for {
		if r.Context().Err() != nil {
			return
		}
		state, _ := j.snapshotState()
		a, assigned := j.lastAssignment()
		if !assigned {
			if terminalState(state) {
				// Failed/cancelled before any dispatch: nothing to stream.
				if !headerWritten {
					cWriteError(w, http.StatusGone, "job %s: no MAF (state %s)", j.ID, state)
				}
				return
			}
			// Parked: wait for an assignment or terminal state.
			select {
			case <-j.doneCh:
			case <-c.cfg.Clock.After(c.cfg.PollInterval):
			case <-r.Context().Done():
				return
			}
			continue
		}

		resp, err := c.openMAFStream(r.Context(), a)
		if err == nil {
			if !headerWritten {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				w.Header().Set("X-Job-ID", j.ID)
				w.WriteHeader(http.StatusOK)
				headerWritten = true
			}
			var streamErr error
			sent, streamErr = c.relayMAF(w, rc, resp, sent)
			if streamErr == nil {
				// Clean end of the worker's stream. If the job is
				// terminal and still on this assignment, we are done;
				// otherwise a failover superseded the stream we just
				// drained — loop and splice from the new assignment.
				state, _ = j.snapshotState()
				if cur, _ := j.lastAssignment(); terminalState(state) && cur.WorkerJobID == a.WorkerJobID {
					return
				}
			}
		}
		state, _ = j.snapshotState()
		if terminalState(state) {
			terminalTries++
			if terminalTries >= c.cfg.Retry.Attempts() {
				if !headerWritten {
					cWriteError(w, http.StatusBadGateway,
						"job %s finished but its MAF is unreachable on %s", j.ID, a.WorkerAddr)
				}
				return
			}
		}
		select {
		case <-j.doneCh:
			// Fall through and re-check; doneCh is closed permanently.
			select {
			case <-c.cfg.Clock.After(c.cfg.PollInterval):
			case <-r.Context().Done():
				return
			}
		case <-c.cfg.Clock.After(c.cfg.PollInterval):
		case <-r.Context().Done():
			return
		}
	}
}

// relayMAF copies a worker MAF stream to the client, skipping the
// first skip bytes (already sent from a previous assignment) and
// flushing each chunk. Returns the updated sent offset.
func (c *Coordinator) relayMAF(w http.ResponseWriter, rc *http.ResponseController, resp *http.Response, skip int) (int, error) {
	defer resp.Body.Close() //nolint:errcheck
	buf := make([]byte, 32<<10)
	seen := 0
	sent := skip
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if seen < skip {
				drop := skip - seen
				if drop >= n {
					seen += n
					chunk = nil
				} else {
					chunk = chunk[drop:]
					seen = skip
				}
			}
			if seen >= skip {
				seen += len(chunk)
			}
			if len(chunk) > 0 {
				if _, werr := w.Write(chunk); werr != nil {
					return sent, werr
				}
				rc.Flush() //nolint:errcheck // best-effort chunk delivery
				sent += len(chunk)
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return sent, nil
			}
			return sent, err
		}
	}
}

func (c *Coordinator) handleTargets(w http.ResponseWriter, r *http.Request) {
	counts := c.ms.replicaCount()
	type entry struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint,omitempty"`
		Replicas    int    `json:"replicas"`
		Degraded    bool   `json:"degraded"`
	}
	out := make([]entry, 0, len(counts))
	for _, name := range c.ms.knownTargetNames() {
		fp, _ := c.ms.targetKnown(name)
		out = append(out, entry{
			Name: name, Fingerprint: fp,
			Replicas: counts[name], Degraded: counts[name] == 0,
		})
	}
	cWriteJSON(w, http.StatusOK, map[string]any{"targets": out})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		cWriteError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.WorkerID == "" || req.Addr == "" {
		cWriteError(w, http.StatusBadRequest, "worker_id and addr are required")
		return
	}
	targets := make(map[string]string, len(req.Targets))
	serialized := make(map[string]bool, len(req.Targets))
	for _, t := range req.Targets {
		if t.Name == "" {
			cWriteError(w, http.StatusBadRequest, "target with empty name")
			return
		}
		if known, ok := c.ms.targetKnown(t.Name); ok && t.Fingerprint != "" && known != "" && known != t.Fingerprint {
			c.log.Warn("worker advertises divergent assembly for target",
				"worker", req.WorkerID, "target", t.Name,
				"fingerprint", t.Fingerprint, "cluster_fingerprint", known)
		}
		targets[t.Name] = t.Fingerprint
		if t.Serialized {
			serialized[t.Name] = true
		}
	}
	fresh := c.ms.register(req.WorkerID, strings.TrimSuffix(req.Addr, "/"), targets, serialized)
	c.brk.forget(req.WorkerID)
	c.c.registrations.Inc()
	if fresh {
		c.log.Info("worker registered", "worker", req.WorkerID, "addr", req.Addr, "targets", len(targets))
	}
	cWriteJSON(w, http.StatusOK, c.leaseResponse())
}

// leaseResponse is the register/heartbeat reply: the lease to keep, the
// coordinator's fencing epoch (workers gate stale leaders on it), and
// the advertised standby set (where agents fail over to).
func (c *Coordinator) leaseResponse() map[string]any {
	return map[string]any{
		"lease_ttl_ms": c.cfg.LeaseTTL.Milliseconds(),
		"epoch":        c.epoch,
		"coordinators": c.cfg.Standbys,
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		cWriteError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if !c.ms.heartbeat(req.WorkerID, req.Snapshot) {
		// Unknown lease: the worker must re-register (coordinator
		// restarted, or the lease expired).
		cWriteError(w, http.StatusNotFound, "unknown worker %q: re-register", req.WorkerID)
		return
	}
	cWriteJSON(w, http.StatusOK, c.leaseResponse())
}

// The shipped-journal endpoints back checkpoint shipping: a worker PUTs
// its running job's pipeline-WAL segments here; after a failover the
// replacement worker lists and downloads them, then resumes
// mid-pipeline.

func (c *Coordinator) shippedJob(w http.ResponseWriter, r *http.Request) (*coordJob, string, bool) {
	if c.wal == nil {
		cWriteError(w, http.StatusServiceUnavailable, "checkpoint shipping requires -journal-dir")
		return nil, "", false
	}
	id := r.PathValue("id")
	j, ok := c.getJob(id)
	if !ok {
		cWriteError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, "", false
	}
	return j, id, true
}

func (c *Coordinator) handleShippedList(w http.ResponseWriter, r *http.Request) {
	_, id, ok := c.shippedJob(w, r)
	if !ok {
		return
	}
	segs, err := c.wal.listShipped(id)
	if err != nil {
		cWriteError(w, http.StatusInternalServerError, "listing shipped segments: %v", err)
		return
	}
	if segs == nil {
		segs = []checkpoint.SegmentInfo{}
	}
	cWriteJSON(w, http.StatusOK, map[string]any{"segments": segs})
}

func (c *Coordinator) handleShippedGet(w http.ResponseWriter, r *http.Request) {
	_, id, ok := c.shippedJob(w, r)
	if !ok {
		return
	}
	seg := r.PathValue("seg")
	if !checkpoint.IsSegmentName(seg) {
		cWriteError(w, http.StatusBadRequest, "bad segment name %q", seg)
		return
	}
	data, err := c.wal.loadShipped(id, seg)
	if err != nil {
		cWriteError(w, http.StatusNotFound, "segment %q: %v", seg, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // response committed
}

func (c *Coordinator) handleShippedPut(w http.ResponseWriter, r *http.Request) {
	j, id, ok := c.shippedJob(w, r)
	if !ok {
		return
	}
	seg := r.PathValue("seg")
	if !checkpoint.IsSegmentName(seg) {
		cWriteError(w, http.StatusBadRequest, "bad segment name %q", seg)
		return
	}
	if st, _ := j.snapshotState(); terminalState(st) {
		// Nothing will resume a terminal job; don't re-accumulate.
		cWriteError(w, http.StatusConflict, "job %q is %s", id, st)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, checkpoint.DefaultSegmentBytes*2))
	if err != nil {
		cWriteError(w, http.StatusRequestEntityTooLarge, "reading segment: %v", err)
		return
	}
	if err := c.wal.saveShipped(id, seg, data); err != nil {
		// Storage trouble (disk full) is transient from the worker's
		// perspective: the atomic writer guarantees no corrupt segment
		// landed, so the worker just retries the PUT after a beat.
		c.writeStoreUnavailable(w, err)
		return
	}
	c.stampShip(id)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID      string   `json:"id"`
		Addr    string   `json:"addr"`
		Targets []string `json:"targets"`
		// SerializedTargets are the targets this worker holds as
		// serialized index files (near-instant reloads).
		SerializedTargets []string  `json:"serialized_targets,omitempty"`
		Breaker           string    `json:"breaker"`
		RegisteredAt      time.Time `json:"registered_at"`
		ExpiresAt         time.Time `json:"expires_at"`
	}
	members := c.ms.list()
	out := make([]entry, 0, len(members))
	for _, m := range members {
		names := make([]string, 0, len(m.Targets))
		for name := range m.Targets {
			names = append(names, name)
		}
		sort.Strings(names)
		var serialized []string
		for name := range m.Serialized {
			serialized = append(serialized, name)
		}
		sort.Strings(serialized)
		out = append(out, entry{
			ID: m.ID, Addr: m.Addr, Targets: names,
			SerializedTargets: serialized,
			Breaker:           c.brk.state(m.ID),
			RegisteredAt:      m.RegisteredAt, ExpiresAt: m.ExpiresAt,
		})
	}
	cWriteJSON(w, http.StatusOK, map[string]any{"workers": out})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cWriteJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(c.started).Milliseconds(),
	})
}

// handleReadyz reflects cluster capacity: 503 with no live workers (or
// when every known target lost all replicas), 200 otherwise — with the
// degraded target list in the body so partial capacity is visible.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	counts := c.ms.replicaCount()
	var degraded []string
	served := 0
	for _, name := range c.ms.knownTargetNames() {
		if counts[name] == 0 {
			degraded = append(degraded, name)
		} else {
			served++
		}
	}
	workers := c.ms.size()
	body := map[string]any{
		"workers":          workers,
		"targets_served":   served,
		"targets_degraded": degraded,
		"epoch":            c.epoch,
	}
	switch {
	case c.fenced.Load():
		body["status"] = "fenced"
		cWriteJSON(w, http.StatusServiceUnavailable, body)
	case workers == 0:
		body["status"] = "unavailable"
		cWriteJSON(w, http.StatusServiceUnavailable, body)
	case len(counts) > 0 && served == 0:
		body["status"] = "unavailable"
		cWriteJSON(w, http.StatusServiceUnavailable, body)
	case len(degraded) > 0:
		body["status"] = "degraded"
		cWriteJSON(w, http.StatusOK, body)
	default:
		body["status"] = "ok"
		cWriteJSON(w, http.StatusOK, body)
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.metrics.WritePrometheus(w) //nolint:errcheck // response committed
}

// ListenAndServe binds cfg.Addr and serves the coordinator API.
func (c *Coordinator) ListenAndServe() error {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return err
	}
	return c.Serve(ln)
}

// Serve runs the coordinator API on ln until Shutdown.
func (c *Coordinator) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler:           c.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	c.httpMu.Lock()
	c.httpSrv = srv
	c.httpMu.Unlock()
	c.listener.mu.Lock()
	c.listener.addr = ln.Addr().String()
	c.listener.mu.Unlock()
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Addr reports the bound listen address once Serve has been called.
func (c *Coordinator) Addr() string {
	c.listener.mu.Lock()
	defer c.listener.mu.Unlock()
	return c.listener.addr
}
