GO ?= go

.PHONY: all build vet test test-race ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The robustness suite (cancellation, budgets, fault-injected panics in
# worker goroutines) is only meaningful under the race detector. -short
# skips the end-to-end experiment renders, which the race detector
# slows by an order of magnitude; the pipeline's race coverage comes
# from the internal/core robustness suite, which always runs.
test-race:
	$(GO) test -race -short -timeout 30m ./...

ci: build vet test test-race
