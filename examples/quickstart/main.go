// Quickstart: align two short sequences with the Darwin-WGA pipeline
// and print the resulting alignments.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"darwinwga"
)

func main() {
	// Build a toy "genome": 50 kb of random sequence.
	rng := rand.New(rand.NewSource(42))
	target := make([]byte, 50_000)
	for i := range target {
		target[i] = "ACGT"[rng.Intn(4)]
	}

	// The "query" shares two regions with the target: a mutated copy of
	// target[10k:20k] and an exact copy of target[30k:35k], embedded in
	// unrelated sequence.
	query := make([]byte, 40_000)
	for i := range query {
		query[i] = "ACGT"[rng.Intn(4)]
	}
	copy(query[5_000:15_000], mutate(rng, target[10_000:20_000]))
	copy(query[25_000:30_000], target[30_000:35_000])

	// Index the target once; Align can then be called for many queries.
	cfg := darwinwga.DefaultConfig()
	aligner, err := darwinwga.NewAligner(target, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := aligner.Align(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d alignments\n", len(res.HSPs))
	for i, h := range res.HSPs {
		fmt.Printf("  %d: target[%d:%d] ~ query[%d:%d] strand %c score %d (%d matched bp)\n",
			i+1, h.TStart, h.TEnd, h.QStart, h.QEnd, h.Strand, h.Score, h.Matches)
	}
	w := res.Workload
	fmt.Printf("pipeline workload: %d seed hits -> %d filter tiles -> %d passed -> %d extension tiles\n",
		w.SeedHits, w.FilterTiles, w.PassedFilter, w.ExtensionTiles)
}

// mutate applies ~5% substitutions and sparse short indels.
func mutate(rng *rand.Rand, seq []byte) []byte {
	out := make([]byte, 0, len(seq))
	for _, b := range seq {
		switch r := rng.Float64(); {
		case r < 0.002: // deletion
		case r < 0.004: // insertion
			out = append(out, "ACGT"[rng.Intn(4)], b)
		case r < 0.054: // substitution
			out = append(out, "ACGT"[rng.Intn(4)])
		default:
			out = append(out, b)
		}
	}
	return out
}
