package seed

import (
	"fmt"

	"darwinwga/internal/genome"
)

// Index is a direct-addressed seed position table over a target
// sequence: for every seed key it stores the sorted list of target
// positions whose window produces that key. This mirrors the seed
// position table Darwin keeps in DRAM. The index is immutable after
// construction and safe for concurrent lookups.
type Index struct {
	shape *Shape
	// starts has 4^Weight+1 entries; bucket k occupies
	// positions[starts[k]:starts[k+1]].
	starts    []uint32
	positions []uint32
	// maxFreq masks buckets with more than this many positions (0 = no
	// masking). Over-represented seeds come from repeats and would
	// otherwise flood downstream stages — same rationale as LASTZ's word
	// masking.
	maxFreq int

	targetLen int
}

// IndexOptions configures index construction.
type IndexOptions struct {
	// MaxFreq masks seed keys occurring more than this many times in the
	// target (0 disables masking).
	MaxFreq int
}

// BuildIndex constructs the position table for target under the shape.
func BuildIndex(target []byte, shape *Shape, opts IndexOptions) (*Index, error) {
	size, err := shape.TableSize()
	if err != nil {
		return nil, err
	}
	if len(target) > 1<<31 {
		return nil, fmt.Errorf("seed: target longer than 2^31 bases")
	}
	ix := &Index{
		shape:     shape,
		starts:    make([]uint32, size+1),
		maxFreq:   opts.MaxFreq,
		targetLen: len(target),
	}
	counts := ix.starts[1:] // counts[k] accumulates into starts[k+1]
	nPos := 0
	last := len(target) - shape.Span
	for pos := 0; pos <= last; pos++ {
		if key, ok := shape.Key(target, pos); ok {
			counts[key]++
			nPos++
		}
	}
	// Prefix-sum counts into bucket starts.
	var sum uint32
	for k := range counts {
		sum += counts[k]
		counts[k] = sum
	}
	// starts[0] is already 0; starts[k+1] now holds the end of bucket k.
	ix.positions = make([]uint32, nPos)
	// Fill backwards within each bucket so positions end up ascending.
	for pos := last; pos >= 0; pos-- {
		if key, ok := shape.Key(target, pos); ok {
			counts[key]--
			ix.positions[counts[key]] = uint32(pos)
		}
	}
	// counts[k] (== starts[k+1] before filling) has been decremented down
	// to the bucket start; shift the starts array back into place.
	// After the fill, starts[k+1] holds bucket k's START. Rebuild ends.
	// Simplest correct fix: recompute via a second prefix pass.
	// (starts[0] = 0 is bucket 0's start, which equals counts[-1]; the
	// array currently holds starts, we need [start_0, start_1, ...,
	// total]. counts[k] = start of bucket k, so starts = [0-shifted].)
	// Move every entry down one slot and append the total.
	copy(ix.starts[0:], ix.starts[1:])
	ix.starts[size] = uint32(nPos)
	return ix, nil
}

// Shape returns the seed shape the index was built with.
func (ix *Index) Shape() *Shape { return ix.shape }

// TargetLen returns the length of the indexed target.
func (ix *Index) TargetLen() int { return ix.targetLen }

// Positions returns the target positions whose seed window hashes to
// key, in ascending order. Buckets masked by MaxFreq return nil.
func (ix *Index) Positions(key genome.KmerKey) []uint32 {
	lo, hi := ix.starts[key], ix.starts[key+1]
	if ix.maxFreq > 0 && int(hi-lo) > ix.maxFreq {
		return nil
	}
	return ix.positions[lo:hi]
}

// RawPositions ignores frequency masking; diagnostics only.
func (ix *Index) RawPositions(key genome.KmerKey) []uint32 {
	return ix.positions[ix.starts[key]:ix.starts[key+1]]
}

// Stats summarizes the index for logging.
func (ix *Index) Stats() (buckets, filled, totalPositions, maskedBuckets int) {
	buckets = len(ix.starts) - 1
	for k := 0; k < buckets; k++ {
		n := int(ix.starts[k+1] - ix.starts[k])
		if n > 0 {
			filled++
		}
		if ix.maxFreq > 0 && n > ix.maxFreq {
			maskedBuckets++
		}
	}
	totalPositions = len(ix.positions)
	return
}

// MemoryBytes estimates the index's resident size. It counts slice
// capacity, not length: the backing arrays are what the heap holds, and
// eviction decisions made from this number must reflect real footprint.
func (ix *Index) MemoryBytes() int {
	return 4*cap(ix.starts) + 4*cap(ix.positions)
}

// MaxFreq returns the frequency-masking threshold the index was built
// with (0 = no masking).
func (ix *Index) MaxFreq() int { return ix.maxFreq }

// RawParts exposes the bucket-start and position tables for
// serialization. The returned slices alias the index's internal arrays
// and must not be mutated.
func (ix *Index) RawParts() (starts, positions []uint32) {
	return ix.starts, ix.positions
}

// IndexFromParts reassembles an Index from previously serialized
// tables, validating the structural invariants BuildIndex guarantees:
// starts has exactly TableSize+1 entries, begins at 0, is monotonically
// non-decreasing, and its final entry equals len(positions). The slices
// are adopted, not copied.
func IndexFromParts(shape *Shape, targetLen int, starts, positions []uint32, opts IndexOptions) (*Index, error) {
	size, err := shape.TableSize()
	if err != nil {
		return nil, err
	}
	if len(starts) != size+1 {
		return nil, fmt.Errorf("seed: starts table has %d entries, want %d for shape %q",
			len(starts), size+1, shape.Pattern)
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("seed: starts table begins at %d, want 0", starts[0])
	}
	for k := 1; k < len(starts); k++ {
		if starts[k] < starts[k-1] {
			return nil, fmt.Errorf("seed: starts table decreases at bucket %d", k-1)
		}
	}
	if int(starts[len(starts)-1]) != len(positions) {
		return nil, fmt.Errorf("seed: starts table ends at %d but %d positions given",
			starts[len(starts)-1], len(positions))
	}
	if targetLen < 0 {
		return nil, fmt.Errorf("seed: negative target length %d", targetLen)
	}
	for _, p := range positions {
		if int(p) >= targetLen {
			return nil, fmt.Errorf("seed: position %d beyond target length %d", p, targetLen)
		}
	}
	return &Index{
		shape:     shape,
		starts:    starts,
		positions: positions,
		maxFreq:   opts.MaxFreq,
		targetLen: targetLen,
	}, nil
}
