package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestFlightRecorderRing: events come back oldest-first, the ring
// overwrites at capacity, and Total keeps counting past the wrap.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	at := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		f.Record(FlightEvent{At: at.Add(time.Duration(i) * time.Second),
			Type: FlightStarted, Detail: fmt.Sprintf("ev-%d", i)})
	}
	got := f.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, ev := range got {
		want := fmt.Sprintf("ev-%d", i+2)
		if ev.Detail != want {
			t.Errorf("event %d detail = %q, want %q (oldest-first after wrap)", i, ev.Detail, want)
		}
	}
	if f.Total() != 5 {
		t.Errorf("Total = %d, want 5 (overwritten events still counted)", f.Total())
	}
}

// TestFlightRecorderPartial: before the ring fills, Events returns
// exactly what was recorded, in order.
func TestFlightRecorderPartial(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(FlightEvent{Type: FlightAdmitted})
	f.Record(FlightEvent{Type: FlightDispatched})
	got := f.Events()
	if len(got) != 2 || got[0].Type != FlightAdmitted || got[1].Type != FlightDispatched {
		t.Fatalf("partial ring events = %+v", got)
	}
	if f.Total() != 2 {
		t.Errorf("Total = %d, want 2", f.Total())
	}
}

// TestFlightRecorderNil: a nil recorder is the "disabled" contract —
// every method no-ops without panicking.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{Type: FlightFinished})
	if ev := f.Events(); ev != nil {
		t.Errorf("nil recorder Events = %v, want nil", ev)
	}
	if f.Total() != 0 {
		t.Errorf("nil recorder Total = %d, want 0", f.Total())
	}
}

// TestFlightRecorderMinCapacity: capacity is clamped to at least 1.
func TestFlightRecorderMinCapacity(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Record(FlightEvent{Detail: "a"})
	f.Record(FlightEvent{Detail: "b"})
	got := f.Events()
	if len(got) != 1 || got[0].Detail != "b" {
		t.Fatalf("cap-0 ring = %+v, want just the newest event", got)
	}
}

// TestTracerCapAndExport: the cap drops events past the limit, the
// dropped count is reported, and Export's cursor returns only the tail.
func TestTracerCapAndExport(t *testing.T) {
	tr := NewTracerCapped(4)
	tr.Identify("tr-abc", "job-1")
	for i := 0; i < 7; i++ {
		tr.AnchorSkipped('+', i)
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("capped tracer holds %d events, want 4", got)
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
	ex := tr.Export(0)
	if ex.TraceID != "tr-abc" || ex.JobID != "job-1" {
		t.Errorf("export identity = %q/%q", ex.TraceID, ex.JobID)
	}
	if ex.Total != 4 || len(ex.Events) != 4 || ex.Dropped != 3 {
		t.Errorf("export = total %d, %d events, dropped %d", ex.Total, len(ex.Events), ex.Dropped)
	}
	// Cursor semantics: after=Total returns nothing; a later cursor is
	// just empty (the worker restarted case is handled by the caller).
	tail := tr.Export(2)
	if tail.Total != 4 || len(tail.Events) != 2 {
		t.Errorf("Export(2) = total %d, %d events, want 4, 2", tail.Total, len(tail.Events))
	}
	if empty := tr.Export(4); len(empty.Events) != 0 {
		t.Errorf("Export(total) returned %d events", len(empty.Events))
	}
	if neg := tr.Export(-5); len(neg.Events) != 4 {
		t.Errorf("Export(-5) = %d events, want all 4", len(neg.Events))
	}
}

// TestTracerIdentityOnRootSpan: Identify tags the root align span's
// args so a single-worker trace is self-describing.
func TestTracerIdentityOnRootSpan(t *testing.T) {
	tr := NewTracer()
	tr.Identify("tr-xyz", "job-9")
	tr.AlignBegin(100)
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].Args["trace_id"] != "tr-xyz" || ev[0].Args["job_id"] != "job-9" {
		t.Errorf("root span args = %v", ev[0].Args)
	}
	if id, job := tr.Identity(); id != "tr-xyz" || job != "job-9" {
		t.Errorf("Identity = %q, %q", id, job)
	}
}

// TestWorkerSnapshotHitRatio covers the zero-lookup and mixed cases.
func TestWorkerSnapshotHitRatio(t *testing.T) {
	if r := (WorkerSnapshot{}).HitRatio(); r != 0 {
		t.Errorf("empty snapshot hit ratio = %g, want 0", r)
	}
	s := WorkerSnapshot{ResultCacheHits: 3, ResultCacheMisses: 1}
	if r := s.HitRatio(); r != 0.75 {
		t.Errorf("hit ratio = %g, want 0.75", r)
	}
}

// TestRegisterBuildInfo: the gauge lands in the Prometheus exposition
// with version and go_version labels, value 1.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	v := RegisterBuildInfo(reg)
	if v == "" {
		t.Fatal("RegisterBuildInfo returned empty version")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE darwinwga_build_info gauge") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `darwinwga_build_info{version="`) ||
		!strings.Contains(out, `go_version="go`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
	if !strings.Contains(out, "} 1\n") {
		t.Errorf("build info gauge not 1:\n%s", out)
	}
}

// TestEscapeLabel: quote, backslash, and newline must come out escaped
// per the Prometheus text format.
func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Errorf("escapeLabel = %q", got)
	}
}

// TestDisabledInstrumentationAllocs pins the "disabled" contract: a nil
// flight recorder must cost zero allocations on the record path, and a
// capped-out tracer must not allocate for dropped events.
func TestDisabledInstrumentationAllocs(t *testing.T) {
	var f *FlightRecorder
	ev := FlightEvent{Type: FlightStarted, Job: "j", Worker: "w"}
	if n := testing.AllocsPerRun(100, func() { f.Record(ev) }); n != 0 {
		t.Errorf("nil FlightRecorder.Record allocates %g per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = f.Total() }); n != 0 {
		t.Errorf("nil FlightRecorder.Total allocates %g per op, want 0", n)
	}
}

// BenchmarkFlightRecorderDisabled is the allocation guard the
// FlightRecorder doc comment points at: the nil (disabled) recorder
// must stay free on the serving hot path.
func BenchmarkFlightRecorderDisabled(b *testing.B) {
	var f *FlightRecorder
	ev := FlightEvent{Type: FlightStarted, Job: "j", Worker: "w"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(ev)
	}
}

// BenchmarkFlightRecorderEnabled measures the live ring for contrast —
// steady state after the ring fills, so no growth allocations.
func BenchmarkFlightRecorderEnabled(b *testing.B) {
	f := NewFlightRecorder(64)
	ev := FlightEvent{Type: FlightStarted, Job: "j", Worker: "w"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(ev)
	}
}
