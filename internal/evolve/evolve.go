// Package evolve synthesizes species pairs for whole genome alignment
// experiments. It substitutes for the real assemblies in Table I of the
// paper (ce11, cb4, dm6, droSim1, droYak2, dp4): an ancestral genome
// with realistic composition (target GC content, interspersed repeat
// families, protein-coding genes with exon/intron structure) is evolved
// into a query species at a configurable phylogenetic distance —
// substitutions with transition bias, indels with a geometric length
// distribution plus a heavy structural tail, segmental duplications and
// inversions. Purifying selection slows evolution inside exons; a "fast"
// fraction of the intergenic sequence diverges beyond recognition, as in
// real genomes.
//
// Crucially the simulator records the exact target-to-query coordinate
// map, giving experiments a ground-truth orthology oracle that the paper
// had to approximate with TBLASTX.
package evolve

import (
	"fmt"
	"math/rand"

	"darwinwga/internal/genome"
)

// Interval is a half-open [Start, End) span.
type Interval struct {
	Start, End int
}

// Len returns the interval length.
func (iv Interval) Len() int { return iv.End - iv.Start }

// Gene is an annotated gene on the target genome.
type Gene struct {
	Name  string
	Exons []Interval
}

// Span returns the gene's full extent.
func (g *Gene) Span() Interval {
	return Interval{Start: g.Exons[0].Start, End: g.Exons[len(g.Exons)-1].End}
}

// Config describes one species pair to synthesize.
type Config struct {
	// Name labels the pair, e.g. "ce11-cb4".
	Name string
	// TargetName and QueryName label the two assemblies.
	TargetName, QueryName string
	// Length is the target genome length in bases.
	Length int
	// GC is the target GC fraction (default 0.40 if zero).
	GC float64
	// GeneFraction is the portion of the genome covered by genes
	// (default 0.15 if zero).
	GeneFraction float64
	// RepeatFraction is the portion covered by interspersed repeats
	// (default 0.04 if zero).
	RepeatFraction float64

	// SubRate is the neutral substitution probability per site.
	SubRate float64
	// IndelRate is the neutral indel-event probability per site.
	IndelRate float64
	// MeanIndelLen is the geometric mean indel length (default 3).
	MeanIndelLen float64
	// LongIndelProb is the chance an indel is structural: length drawn
	// uniformly in [50, 400) (default 0.01 of indel events).
	LongIndelProb float64
	// ExonRateFactor scales rates inside exons (default 0.25).
	ExonRateFactor float64
	// FastFraction is the portion of the genome whose sequence turns
	// over completely between the species — no detectable homology
	// remains (default 0.30). The rest of the genome forms conserved
	// "islands".
	FastFraction float64
	// IslandMeanLen is the mean conserved-island length in bases
	// (default 800). Distant species pairs have shorter islands.
	IslandMeanLen int

	// Inversions and Duplications count large-scale events applied to
	// the query after base-level evolution.
	Inversions   int
	Duplications int

	// Seed makes the pair reproducible.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.GC == 0 {
		c.GC = 0.40
	}
	if c.GeneFraction == 0 {
		c.GeneFraction = 0.15
	}
	if c.RepeatFraction == 0 {
		c.RepeatFraction = 0.04
	}
	if c.MeanIndelLen == 0 {
		c.MeanIndelLen = 3
	}
	if c.LongIndelProb == 0 {
		c.LongIndelProb = 0.01
	}
	if c.ExonRateFactor == 0 {
		c.ExonRateFactor = 0.25
	}
	if c.FastFraction == 0 {
		c.FastFraction = 0.30
	}
	if c.IslandMeanLen == 0 {
		c.IslandMeanLen = 800
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Length < 1000 {
		return fmt.Errorf("evolve: length %d too small", c.Length)
	}
	if c.SubRate < 0 || c.SubRate > 0.8 {
		return fmt.Errorf("evolve: substitution rate %v out of range", c.SubRate)
	}
	if c.IndelRate < 0 || c.IndelRate > 0.3 {
		return fmt.Errorf("evolve: indel rate %v out of range", c.IndelRate)
	}
	return nil
}

// Unmapped marks a target base with no query counterpart in a CoordMap.
const Unmapped = -1

// CoordMap records, for every target base, its query coordinate (or
// Unmapped) and strand. It is the ground-truth orthology oracle.
type CoordMap struct {
	// QPos[t] is the query position of target base t, or Unmapped.
	QPos []int32
	// Reverse[t] is true when the counterpart lies on the reverse
	// strand (inside an inverted segment).
	Reverse []bool
}

// MapInterval projects a target interval through the map: the query
// interval spanned by the mapped bases, the fraction of bases mapped,
// and whether the majority of mapped bases are inverted.
func (m *CoordMap) MapInterval(iv Interval) (q Interval, mappedFrac float64, inverted bool) {
	lo, hi := int32(1<<30), int32(-1)
	mapped, rev := 0, 0
	for t := iv.Start; t < iv.End && t < len(m.QPos); t++ {
		qp := m.QPos[t]
		if qp == Unmapped {
			continue
		}
		mapped++
		if m.Reverse[t] {
			rev++
		}
		if qp < lo {
			lo = qp
		}
		if qp > hi {
			hi = qp
		}
	}
	if mapped == 0 {
		return Interval{}, 0, false
	}
	return Interval{Start: int(lo), End: int(hi) + 1}, float64(mapped) / float64(iv.Len()), rev*2 > mapped
}

// Pair is a synthesized species pair.
type Pair struct {
	Config Config
	Target *genome.Assembly
	Query  *genome.Assembly
	// Genes are annotated on the target.
	Genes []Gene
	// Map is the ground-truth target-to-query coordinate map.
	Map *CoordMap
}

// TargetSeq and QuerySeq return the single-chromosome sequences.
func (p *Pair) TargetSeq() []byte { return p.Target.Seqs[0].Bases }
func (p *Pair) QuerySeq() []byte  { return p.Query.Seqs[0].Bases }

// regionClass tags each target base with its selective regime.
type regionClass byte

const (
	regionNeutral regionClass = iota
	regionExon
	regionFast
)

// Generate synthesizes the pair described by cfg.
func Generate(cfg Config) (*Pair, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	target, genes := buildAncestor(rng, &cfg)
	regions, rateScale := classifyRegions(rng, &cfg, len(target), genes)
	query, m := evolveQuery(rng, &cfg, target, regions, rateScale)
	applyInversions(rng, &cfg, query, m)
	query = applyDuplications(rng, &cfg, query, m)

	p := &Pair{
		Config: cfg,
		Target: &genome.Assembly{Name: cfg.TargetName, Seqs: []*genome.Sequence{{Name: "chr1", Bases: target}}},
		Query:  &genome.Assembly{Name: cfg.QueryName, Seqs: []*genome.Sequence{{Name: "chr1", Bases: query}}},
		Genes:  genes,
		Map:    m,
	}
	return p, nil
}

// buildAncestor composes the target genome left to right: intergenic
// background, interspersed repeat copies, and genes with exon/intron
// structure.
func buildAncestor(rng *rand.Rand, cfg *Config) ([]byte, []Gene) {
	seq := make([]byte, 0, cfg.Length+1000)
	var genes []Gene

	// A handful of repeat family consensus sequences.
	nFamilies := 5
	families := make([][]byte, nFamilies)
	for i := range families {
		families[i] = randomBases(rng, 150+rng.Intn(350), cfg.GC)
	}

	// Per-base budget shares.
	geneBudget := int(float64(cfg.Length) * cfg.GeneFraction)
	repeatBudget := int(float64(cfg.Length) * cfg.RepeatFraction)
	geneCount := 0

	for len(seq) < cfg.Length {
		r := rng.Float64()
		switch {
		case geneBudget > 0 && r < 0.25:
			g, gseq := makeGene(rng, cfg, len(seq), geneCount)
			genes = append(genes, g)
			seq = append(seq, gseq...)
			geneBudget -= len(gseq)
			geneCount++
		case repeatBudget > 0 && r < 0.40:
			fam := families[rng.Intn(nFamilies)]
			copyOf := mutateCopy(rng, fam, 0.15)
			seq = append(seq, copyOf...)
			repeatBudget -= len(copyOf)
		default:
			seq = append(seq, randomBases(rng, 300+rng.Intn(1200), cfg.GC)...)
		}
	}
	return seq[:cfg.Length], clipGenes(genes, cfg.Length)
}

// makeGene emits a gene (exons separated by introns) starting at offset.
func makeGene(rng *rand.Rand, cfg *Config, offset, idx int) (Gene, []byte) {
	nExons := 3 + rng.Intn(6)
	g := Gene{Name: fmt.Sprintf("gene%04d", idx)}
	var seq []byte
	for e := 0; e < nExons; e++ {
		if e > 0 {
			intron := randomBases(rng, 150+rng.Intn(700), cfg.GC)
			seq = append(seq, intron...)
		}
		exonLen := 80 + rng.Intn(220)
		start := offset + len(seq)
		// Exons are slightly GC-richer, as in real genomes.
		seq = append(seq, randomBases(rng, exonLen, min(cfg.GC+0.08, 0.8))...)
		g.Exons = append(g.Exons, Interval{Start: start, End: start + exonLen})
	}
	return g, seq
}

// clipGenes drops genes (and exons) extending past the genome end.
func clipGenes(genes []Gene, length int) []Gene {
	out := genes[:0]
	for _, g := range genes {
		var exons []Interval
		for _, e := range g.Exons {
			if e.End <= length {
				exons = append(exons, e)
			}
		}
		if len(exons) > 0 {
			g.Exons = exons
			out = append(out, g)
		}
	}
	return out
}

// classifyRegions assigns a selective regime to every target base:
// alternating conserved islands (mean IslandMeanLen) and fully
// turned-over segments sized so that turnover covers FastFraction of
// the genome. Each island gets its own divergence multiplier (drawn
// uniformly in [0.7, 1.9]) — real conserved elements span a wide
// conservation range, and it is the weakly-conserved "twilight zone"
// tail that ungapped filtering loses (Figure 9's example region aligns
// at only 58%% identity).
func classifyRegions(rng *rand.Rand, cfg *Config, length int, genes []Gene) ([]regionClass, []float32) {
	regions := make([]regionClass, length)
	scale := make([]float32, length)
	for i := range scale {
		scale[i] = 1
	}
	f := cfg.FastFraction
	islandMean := float64(cfg.IslandMeanLen)
	turnMean := islandMean * f / (1 - f)
	expLen := func(mean float64) int {
		l := int(rng.ExpFloat64() * mean)
		return max(l, 40)
	}
	// Exons first: purifying selection slows them...
	for _, g := range genes {
		for _, e := range g.Exons {
			for i := e.Start; i < e.End && i < length; i++ {
				regions[i] = regionExon
			}
		}
	}
	pos := 0
	for pos < length {
		// Island lengths are uniform in [80, 2.5*mean): real conserved
		// elements have a bounded size distribution, and an unbounded
		// exponential tail would concentrate the alignable mass in a few
		// long, easy islands.
		islandLen := 80 + rng.Intn(max(int(2.5*islandMean)-80, 1))
		// Island divergence multiplier: most islands sit near the pair's
		// nominal rate, but a heavy tail of fast islands exists at every
		// phylogenetic distance (young repeats, relaxed constraint) — for
		// close pairs these are the twilight-zone alignments ungapped
		// filtering loses; for distant pairs they fall out of reach of
		// any aligner.
		factor := float32(0.6 + 1.0*rng.Float64())
		if rng.Float64() < 0.18 {
			factor = float32(2.0 + 3.0*rng.Float64())
		}
		for i := pos; i < min(pos+islandLen, length); i++ {
			scale[i] = factor
		}
		pos += islandLen
		// ...but turnover overrides even exons: distantly related species
		// really do lose genes, which is why the paper's TBLASTX
		// denominator sits below the full exon count.
		turnLen := expLen(turnMean)
		for i := pos; i < min(pos+turnLen, length); i++ {
			regions[i] = regionFast
		}
		pos += turnLen
	}
	return regions, scale
}

// evolveQuery walks the target emitting query bases, recording the
// coordinate map.
func evolveQuery(rng *rand.Rand, cfg *Config, target []byte, regions []regionClass, rateScale []float32) ([]byte, *CoordMap) {
	query := make([]byte, 0, len(target)+len(target)/8)
	m := &CoordMap{
		QPos:    make([]int32, len(target)),
		Reverse: make([]bool, len(target)),
	}
	t := 0
	for t < len(target) {
		// Fast regions turn over completely: between diverged species the
		// fast-evolving fraction of the genome retains no detectable
		// similarity, so the query gets fresh sequence of comparable
		// length and the target bases map nowhere. This is what confines
		// homology to islands, the structure whole genome aligners
		// actually face.
		if regions[t] == regionFast {
			start := t
			for t < len(target) && regions[t] == regionFast {
				m.QPos[t] = Unmapped
				t++
			}
			turnLen := scaledLen(rng, t-start)
			query = append(query, randomBases(rng, turnLen, cfg.GC)...)
			continue
		}
		factor := float64(rateScale[t])
		if regions[t] == regionExon {
			// Exons evolve slower than their surroundings but inherit the
			// island's divergence multiplier: exons of weakly-constrained
			// genes sit in the twilight zone too, which is exactly where
			// the paper's differential exon coverage (Table III, Figure 9)
			// comes from.
			factor *= cfg.ExonRateFactor * 2.2
		}
		subP := clamp01(cfg.SubRate * factor)
		indelP := clamp01(cfg.IndelRate * factor)
		r := rng.Float64()
		switch {
		case r < indelP/2: // deletion of L target bases
			l := indelLen(rng, cfg)
			for k := 0; k < l && t < len(target); k++ {
				m.QPos[t] = Unmapped
				t++
			}
		case r < indelP: // insertion of L query bases
			l := indelLen(rng, cfg)
			query = append(query, randomBases(rng, l, cfg.GC)...)
			// The current target base maps to the base after the insert.
			fallthrough
		default:
			b := target[t]
			if r >= indelP && r < indelP+subP {
				b = substituteBase(rng, b)
			}
			m.QPos[t] = int32(len(query))
			query = append(query, b)
			t++
		}
	}
	return query, m
}

// scaledLen jitters a length by ±20%.
func scaledLen(rng *rand.Rand, n int) int {
	if n <= 1 {
		return n
	}
	return n - n/5 + rng.Intn(max(1, 2*n/5))
}

// indelLen draws an indel length: geometric with the configured mean, or
// a long structural event.
func indelLen(rng *rand.Rand, cfg *Config) int {
	if rng.Float64() < cfg.LongIndelProb {
		return 50 + rng.Intn(350)
	}
	// Geometric with mean MeanIndelLen: p = 1/mean.
	p := 1.0 / cfg.MeanIndelLen
	l := 1
	for rng.Float64() > p && l < 50 {
		l++
	}
	return l
}

// substituteBase mutates a base with transition bias (kappa = 4: two
// thirds of substitutions are transitions, as the paper's seed design
// assumes).
func substituteBase(rng *rand.Rand, b byte) byte {
	code := genome.EncodeBase(b)
	if code >= genome.CodeN {
		return b
	}
	if rng.Float64() < 2.0/3.0 {
		return genome.DecodeBase(code ^ 2) // transition partner
	}
	// Transversion: flip the complement bit, maybe both.
	if rng.Float64() < 0.5 {
		return genome.DecodeBase(code ^ 1)
	}
	return genome.DecodeBase(code ^ 3)
}

// applyInversions reverse-complements segments of the query in place and
// updates the coordinate map.
func applyInversions(rng *rand.Rand, cfg *Config, query []byte, m *CoordMap) {
	for k := 0; k < cfg.Inversions; k++ {
		if len(query) < 4000 {
			return
		}
		l := 1000 + rng.Intn(3000)
		a := rng.Intn(len(query) - l)
		b := a + l
		genome.ReverseComplementInPlace(query[a:b])
		for t := range m.QPos {
			if q := m.QPos[t]; q != Unmapped && int(q) >= a && int(q) < b {
				m.QPos[t] = int32(a + b - 1 - int(q))
				m.Reverse[t] = !m.Reverse[t]
			}
		}
	}
}

// applyDuplications inserts mutated copies of random query segments —
// the source of paralogous alignments — and shifts the coordinate map
// past each insertion point.
func applyDuplications(rng *rand.Rand, cfg *Config, query []byte, m *CoordMap) []byte {
	for k := 0; k < cfg.Duplications; k++ {
		if len(query) < 4000 {
			break
		}
		l := 800 + rng.Intn(2400)
		a := rng.Intn(len(query) - l)
		dup := mutateCopy(rng, query[a:a+l], 0.03)
		// Insert at a random position rather than appending, so the
		// paralog lands between orthologous context.
		at := rng.Intn(len(query))
		query = append(query[:at:at], append(dup, query[at:]...)...)
		for t := range m.QPos {
			if q := m.QPos[t]; q != Unmapped && int(q) >= at {
				m.QPos[t] = q + int32(len(dup))
			}
		}
	}
	return query
}

func randomBases(rng *rand.Rand, n int, gc float64) []byte {
	out := make([]byte, n)
	for i := range out {
		if rng.Float64() < gc {
			if rng.Intn(2) == 0 {
				out[i] = 'G'
			} else {
				out[i] = 'C'
			}
		} else {
			if rng.Intn(2) == 0 {
				out[i] = 'A'
			} else {
				out[i] = 'T'
			}
		}
	}
	return out
}

// mutateCopy returns a copy of seq with the given substitution rate.
func mutateCopy(rng *rand.Rand, seq []byte, rate float64) []byte {
	out := append([]byte{}, seq...)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = substituteBase(rng, out[i])
		}
	}
	return out
}

func clamp01(x float64) float64 {
	if x > 0.95 {
		return 0.95
	}
	if x < 0 {
		return 0
	}
	return x
}
