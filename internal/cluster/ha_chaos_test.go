package cluster

// HA chaos suite: journal shipping to a warm standby, fenced leader
// election, snapshot compaction, and the shipped-checkpoint artifact
// store, all driven deterministically on manual clocks. Run under
// -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"darwinwga/internal/checkpoint"
	"darwinwga/internal/faultinject"
)

// pumpClock advances a manual clock in steps until cond holds, failing
// the test after a generous real-time budget.
func pumpClock(t *testing.T, clock *faultinject.ManualClock, what string, each func(), cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if each != nil {
			each()
		}
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pumpClock: %s never happened", what)
		}
		clock.Advance(500 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
}

// waitReal polls cond in real time (for conditions driven by streaming
// I/O rather than the manual clock).
func waitReal(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("waitReal: %s never happened", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// newStandbyFor tails cc's coordinator from its own journal dir on its
// own manual clock (never advanced while the leader lives, so the
// standby cannot spuriously promote; advanced by the test to simulate
// the silence window after a leader death).
func newStandbyFor(t *testing.T, cc *chaosCluster, dir string, promoteAfter time.Duration) (*Standby, *faultinject.ManualClock) {
	t.Helper()
	sbClock := faultinject.NewManualClock(time.Unix(1700000000, 0))
	sb, err := NewStandby(StandbyConfig{
		LeaderURL:    cc.front.URL,
		JournalDir:   dir,
		PromoteAfter: promoteAfter,
		Clock:        sbClock,
		Coordinator: Config{
			LeaseTTL:         10 * time.Second,
			SweepInterval:    2 * time.Second,
			PollInterval:     time.Second,
			DispatchTimeout:  5 * time.Second,
			BreakerThreshold: 3,
			BreakerCooldown:  30 * time.Second,
			Clock:            sbClock,
		},
	})
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	return sb, sbClock
}

// TestHAJournalShippingTracksLeader: a standby tailing the leader's
// replication stream converges on the leader's exact record sequence —
// including the spilled query FASTA for submitted jobs — while the
// leader keeps journaling.
func TestHAJournalShippingTracksLeader(t *testing.T) {
	leaderDir, sbDir := t.TempDir(), t.TempDir()
	cc := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = leaderDir })
	sb, _ := newStandbyFor(t, cc, sbDir, 10*time.Second)
	defer sb.Shutdown(context.Background()) //nolint:errcheck

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sb.Run(ctx) //nolint:errcheck

	// A worker advertises the target so submissions are admitted; the
	// journal grows with every submit/assign the leader makes.
	w := newFakeWorker(t)
	cc.register(t, "w", w)
	id1 := cc.submit(t)
	id2 := cc.submit(t)
	waitReal(t, "standby catches up with the leader journal", func() bool {
		return sb.Records() == cc.coord.hub.total() && sb.Records() >= 4
	})

	// The shipped journal folds to the same routing state.
	recs, err := checkpoint.Replay(filepath.Join(sbDir, "wal"))
	if err != nil {
		t.Fatalf("replaying standby journal: %v", err)
	}
	folded, epoch, err := foldRouting(recs)
	if err != nil {
		t.Fatalf("folding standby journal: %v", err)
	}
	if len(folded) != 2 || folded[0].sub.ID != id1 || folded[1].sub.ID != id2 {
		t.Fatalf("standby routing state = %d jobs, want [%s %s]", len(folded), id1, id2)
	}
	if epoch != cc.coord.Epoch() {
		t.Errorf("standby epoch = %d, leader = %d", epoch, cc.coord.Epoch())
	}

	// Spill-before-journal holds on the standby's own disk: the query
	// arrived with the submitted frame.
	q, err := os.ReadFile(filepath.Join(sbDir, "queries", id1+".fa"))
	if err != nil || string(q) != testFASTA {
		t.Errorf("standby query spill = %q, %v; want the submitted FASTA", q, err)
	}
}

// TestHAStandbyPromotionCompletesJob: the leader dies mid-job; the
// standby's replication stream goes silent past the promotion window,
// it promotes with a higher fencing epoch, the worker re-registers, and
// the job completes under its original id with the same MAF bytes.
func TestHAStandbyPromotionCompletesJob(t *testing.T) {
	leaderDir, sbDir := t.TempDir(), t.TempDir()
	cc := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = leaderDir })
	leaderEpoch := cc.coord.Epoch()

	w1 := newFakeWorker(t)
	cc.register(t, "w1", w1)
	id := cc.submit(t)
	cc.pump(t, "dispatch before leader death", func() { cc.heartbeat(t, "w1") }, func() bool {
		return cc.jobStatus(t, id).Worker != nil
	})

	sb, sbClock := newStandbyFor(t, cc, sbDir, 10*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- sb.Run(ctx) }()
	waitReal(t, "standby syncs the routed job", func() bool {
		return sb.Records() == cc.coord.hub.total()
	})

	// Leader dies. The replication stream breaks; nothing but silence
	// from here, so advancing the standby clock walks it through the
	// promotion window.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := cc.coord.Shutdown(sctx); err != nil {
		t.Fatalf("leader shutdown: %v", err)
	}
	scancel()
	cc.front.Close()

	pumpClock(t, sbClock, "standby promotion", nil, func() bool {
		select {
		case <-sb.PromotedCh():
			return true
		default:
			return false
		}
	})
	if err := <-runDone; err != nil {
		t.Fatalf("standby Run: %v", err)
	}
	promoted := sb.Promoted()
	defer promoted.Shutdown(context.Background()) //nolint:errcheck
	if promoted.Epoch() <= leaderEpoch {
		t.Fatalf("promoted epoch = %d, want > leader's %d (fencing)", promoted.Epoch(), leaderEpoch)
	}

	// The standby's handler now serves the full coordinator API. The
	// worker re-registers (its agent would, steered by the standby list)
	// and the new leader reattaches to the still-running assignment.
	front2 := httptest.NewServer(sb.Handler())
	defer front2.Close()
	cc2 := &chaosCluster{coord: promoted, clock: sbClock, front: front2}
	cc2.register(t, "w1", w1)
	cc2.pump(t, "reattach on the promoted leader", func() { cc2.heartbeat(t, "w1") }, func() bool {
		return cc2.jobStatus(t, id).State == StateRunning
	})
	w1.finishAll()
	cc2.pump(t, "job done under the original id", func() { cc2.heartbeat(t, "w1") }, func() bool {
		return cc2.jobStatus(t, id).State == StateDone
	})
	if got := w1.submitCount(); got != 1 {
		t.Errorf("worker saw %d submissions, want 1 (failover must reattach, not re-dispatch)", got)
	}
	resp, err := http.Get(front2.URL + "/v1/jobs/" + id + "/maf")
	if err != nil {
		t.Fatalf("maf after promotion: %v", err)
	}
	maf, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if string(maf) != testMAF {
		t.Errorf("maf after promotion = %q, want the worker's bytes", maf)
	}
}

// epochGate mimics the worker server's stale-epoch middleware: track
// the highest coordinator epoch seen, answer anything lower with 409 +
// the current epoch in the response header.
func epochGate() (wrap func(http.Handler) http.Handler, rejected *int, mu *sync.Mutex) {
	mu = &sync.Mutex{}
	rejected = new(int)
	var highest uint64
	wrap = func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := r.Header.Get(EpochHeader); h != "" {
				e, err := strconv.ParseUint(h, 10, 64)
				if err == nil {
					mu.Lock()
					if e < highest {
						cur := highest
						mu.Unlock()
						w.Header().Set(EpochHeader, strconv.FormatUint(cur, 10))
						w.WriteHeader(http.StatusConflict)
						mu.Lock()
						*rejected++
						mu.Unlock()
						return
					}
					highest = e
					mu.Unlock()
				}
			}
			next.ServeHTTP(w, r)
		})
	}
	return wrap, rejected, mu
}

// TestHAFencingRejectsStaleLeader: a worker that has seen a newer
// coordinator epoch answers an older leader's requests 409; the old
// leader latches fenced, parks instead of dispatching, and reports it
// on readyz — no split-brain double execution.
func TestHAFencingRejectsStaleLeader(t *testing.T) {
	wrap, rejected, mu := epochGate()
	w := newFakeWorkerWrapped(t, wrap)

	// Leader A: fresh journal, epoch 1.
	ccA := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = t.TempDir() })
	ccA.register(t, "w", w)
	idA := ccA.submit(t)
	ccA.pump(t, "A's job dispatches at its epoch", func() { ccA.heartbeat(t, "w") }, func() bool {
		return w.submitCount() == 1
	})
	w.finishAll()
	ccA.pump(t, "A's job completes before B exists", func() { ccA.heartbeat(t, "w") }, func() bool {
		return ccA.jobStatus(t, idA).State == StateDone
	})

	// Leader B reopens its own journal once first, so its epoch exceeds
	// A's — the same monotone bump a standby promotion performs.
	dirB := t.TempDir()
	pre, err := New(Config{JournalDir: dirB, Clock: faultinject.NewManualClock(time.Unix(1700000000, 0))})
	if err != nil {
		t.Fatalf("pre-open B journal: %v", err)
	}
	if err := pre.Shutdown(context.Background()); err != nil {
		t.Fatalf("pre-open shutdown: %v", err)
	}
	ccB := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = dirB })
	if ccB.coord.Epoch() <= ccA.coord.Epoch() {
		t.Fatalf("epoch B = %d not above A = %d", ccB.coord.Epoch(), ccA.coord.Epoch())
	}
	ccB.register(t, "w", w)
	idB := ccB.submit(t)
	ccB.pump(t, "B's job dispatches, raising the worker's epoch", func() { ccB.heartbeat(t, "w") }, func() bool {
		return w.submitCount() == 2
	})

	// A dispatches again: the worker now knows B's higher epoch, so A's
	// requests bounce 409 and A fences itself instead of double-running.
	idA2 := ccA.submit(t)
	ccA.pump(t, "A fences and parks", func() { ccA.heartbeat(t, "w") }, func() bool {
		st := ccA.jobStatus(t, idA2)
		return ccA.coord.Fenced() && st.Parked
	})
	if got := w.submitCount(); got != 2 {
		t.Errorf("stale leader's dispatch reached the worker: %d submissions, want 2", got)
	}
	mu.Lock()
	if *rejected == 0 {
		t.Error("worker rejected no stale-epoch requests")
	}
	mu.Unlock()

	// The fenced leader advertises it.
	resp, err := http.Get(ccA.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("fenced")) {
		t.Errorf("fenced readyz = HTTP %d %q, want 503 with \"fenced\"", resp.StatusCode, body)
	}

	// B remains healthy and finishes its job.
	w.finishAll()
	ccB.pump(t, "B's job completes despite A", func() { ccB.heartbeat(t, "w") }, func() bool {
		return ccB.jobStatus(t, idB).State == StateDone
	})
}

// TestHASnapshotCompactionBoundsReplay: the routing WAL compacts to a
// snapshot at open once past the threshold, so replayed record count
// stays bounded across restarts while the folded job history is intact.
func TestHASnapshotCompactionBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	const threshold = 8
	const cycles = 5
	const perCycle = 6 // jobs per cycle, 2 records each

	total := 0
	for cycle := 0; cycle < cycles; cycle++ {
		cj, st, err := openCoordJournal(dir, threshold)
		if err != nil {
			t.Fatalf("cycle %d open: %v", cycle, err)
		}
		if len(st.records) > threshold {
			t.Fatalf("cycle %d: %d records survived open, want <= %d (compaction)",
				cycle, len(st.records), threshold)
		}
		if len(st.recovered) != total {
			t.Fatalf("cycle %d: recovered %d jobs, want %d", cycle, len(st.recovered), total)
		}
		for i := 0; i < perCycle; i++ {
			j := &coordJob{ID: fmt.Sprintf("cj-%d-%d", cycle, i), Target: testTarget,
				Fingerprint: testFP, Client: "snap", Created: time.Unix(int64(cycle), 0)}
			if err := cj.submitted(j); err != nil {
				t.Fatalf("submitted: %v", err)
			}
			if err := cj.finished(j, StateDone, "", time.Unix(int64(cycle), 1)); err != nil {
				t.Fatalf("finished: %v", err)
			}
		}
		total += perCycle
		cj.close()
	}

	// Final open: everything folded, nothing replayed beyond the bound.
	cj, st, err := openCoordJournal(dir, threshold)
	if err != nil {
		t.Fatalf("final open: %v", err)
	}
	defer cj.close()
	if len(st.recovered) != total {
		t.Fatalf("final recovered = %d jobs, want %d", len(st.recovered), total)
	}
	for _, r := range st.recovered {
		if !r.finished || r.finalState != StateDone {
			t.Fatalf("job %s lost its terminal state through compaction", r.sub.ID)
		}
	}
	if len(st.records) > threshold {
		t.Errorf("final replay = %d records, want <= %d", len(st.records), threshold)
	}
}

// TestHAShippedSegmentsFollowFailover: a worker ships pipeline-journal
// segments to the coordinator's artifact store; after the worker dies,
// the re-dispatch carries the same journal_ship URL and the stored
// segments are still downloadable — the replacement resumes instead of
// recomputing. Terminal jobs drop their segments and refuse new ones.
func TestHAShippedSegmentsFollowFailover(t *testing.T) {
	dir := t.TempDir()
	cc := newChaosCluster(t, func(cfg *Config) { cfg.JournalDir = dir })
	// httptest picks the address after New, so point the advertised ship
	// URL at the front door before any dispatch can read it.
	cc.coord.cfg.AdvertiseURL = cc.front.URL

	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	cc.register(t, "w1", w1)
	cc.register(t, "w2", w2)
	id := cc.submit(t)

	var first, survivor *fakeWorker
	var firstID, survivorID string
	cc.pump(t, "initial dispatch", func() {
		cc.heartbeat(t, "w1")
		cc.heartbeat(t, "w2")
	}, func() bool {
		st := cc.jobStatus(t, id)
		if st.Worker == nil {
			return false
		}
		if st.Worker.WorkerID == "w1" {
			first, firstID, survivor, survivorID = w1, "w1", w2, "w2"
		} else {
			first, firstID, survivor, survivorID = w2, "w2", w1, "w1"
		}
		return true
	})
	_ = firstID

	shipURL := first.lastShipURL()
	want := cc.front.URL + "/cluster/v1/jobs/" + id + "/journal"
	if shipURL != want {
		t.Fatalf("dispatch journal_ship = %q, want %q", shipURL, want)
	}

	// The first worker ships one segment, then dies (stops heartbeating).
	const seg = "seg-00000000.wal"
	segData := []byte("checkpoint-journal-bytes")
	putSeg := func(wantCode int) {
		req, err := http.NewRequest(http.MethodPut, shipURL+"/"+seg, bytes.NewReader(segData))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT segment: %v", err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
		if resp.StatusCode != wantCode {
			t.Fatalf("PUT segment: HTTP %d, want %d", resp.StatusCode, wantCode)
		}
	}
	putSeg(http.StatusNoContent)

	// A bad segment name never lands in the store.
	req, _ := http.NewRequest(http.MethodPut, shipURL+"/../escape.wal", bytes.NewReader(segData))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
	if resp.StatusCode == http.StatusNoContent {
		t.Fatal("PUT with a traversal segment name was accepted")
	}

	cc.pump(t, "failover re-dispatch", func() {
		cc.heartbeat(t, survivorID)
	}, func() bool {
		return survivor.submitCount() > 0
	})
	if got := survivor.lastShipURL(); got != want {
		t.Fatalf("failover journal_ship = %q, want %q (resume needs the same store)", got, want)
	}

	// The shipped segment survived the failover: list, then download.
	resp, err = http.Get(shipURL)
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Segments []checkpoint.SegmentInfo `json:"segments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("decoding listing: %v", err)
	}
	resp.Body.Close() //nolint:errcheck
	if len(listing.Segments) != 1 || listing.Segments[0].Name != seg ||
		listing.Segments[0].Size != int64(len(segData)) {
		t.Fatalf("listing after failover = %+v, want [%s %d bytes]", listing.Segments, seg, len(segData))
	}
	resp, err = http.Get(shipURL + "/" + seg)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if !bytes.Equal(got, segData) {
		t.Fatalf("downloaded segment = %q, want the shipped bytes", got)
	}

	// Completion drops the store; late shippers are refused.
	survivor.finishAll()
	cc.pump(t, "job done on the survivor", func() {
		cc.heartbeat(t, survivorID)
	}, func() bool {
		return cc.jobStatus(t, id).State == StateDone
	})
	resp, err = http.Get(shipURL)
	if err != nil {
		t.Fatal(err)
	}
	listing.Segments = nil
	json.NewDecoder(resp.Body).Decode(&listing) //nolint:errcheck
	resp.Body.Close()                           //nolint:errcheck
	if len(listing.Segments) != 0 {
		t.Errorf("terminal job still lists %d shipped segments, want 0", len(listing.Segments))
	}
	putSeg(http.StatusConflict)
}
